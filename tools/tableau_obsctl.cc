// tableau_obsctl: run one scenario with the windowed telemetry layer
// attached and render its output — per-VM SLO verdicts, causal latency
// attribution, windowed time series (JSON/CSV), and a Perfetto trace with
// wakeup->dispatch flow events.
//
// Usage:
//   tableau_obsctl [--scheduler credit|credit2|rtds|tableau|cfs]
//                  [--cpus N] [--seconds S] [--capped|--uncapped]
//                  [--window-ms W] [--slo-ms L]
//                  [--json FILE] [--csv FILE] [--trace FILE]
//                  [--validate] [--check-determinism]
//
// --check-determinism re-runs the identical scenario with telemetry disabled
// and fails if the trace fingerprint differs: the telemetry layer must be a
// pure observer (no simulation events, no feedback into scheduling).
// --validate schema-checks the emitted Perfetto JSON (including the flow
// events) and fails the process on nonconformance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace_export.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct Options {
  SchedKind scheduler = SchedKind::kTableau;
  int cpus = 4;
  double seconds = 0.5;
  bool capped = true;
  double window_ms = 10;
  double slo_ms = 10;
  std::string json_out;
  std::string csv_out;
  std::string trace_out;
  bool validate = false;
  bool check_determinism = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scheduler credit|credit2|rtds|tableau|cfs] [--cpus N]\n"
               "          [--seconds S] [--capped|--uncapped] [--window-ms W]\n"
               "          [--slo-ms L] [--json FILE] [--csv FILE] [--trace FILE]\n"
               "          [--validate] [--check-determinism]\n",
               argv0);
  std::exit(2);
}

// Everything one run produces; the scenario owns the machine, the rest are
// the telemetry products. Workloads are kept alive alongside the scenario.
struct RunResult {
  Scenario scenario;
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<WorkQueueGuest> vantage_guest;
  std::unique_ptr<SystemNoiseWorkload> vantage_noise;
  std::unique_ptr<PingTraffic> ping;
  BackgroundWorkloads background;
};

// A Fig. 6-style cell: ping traffic into the vantage VM, system noise on the
// vantage, I/O-intensive stress in every other VM.
RunResult RunScenario(const Options& options, bool telemetry_enabled) {
  RunResult run;
  ScenarioConfig config;
  config.scheduler = options.scheduler;
  config.capped = options.capped;
  config.guest_cpus = options.cpus;
  config.cores_per_socket = options.cpus >= 2 ? options.cpus / 2 : 1;
  run.scenario = BuildScenario(config);
  run.scenario.machine->trace().set_enabled(true);

  obs::Telemetry::Config telemetry_config;
  telemetry_config.window_ns = static_cast<TimeNs>(options.window_ms * kMillisecond);
  telemetry_config.slo.target_latency_ns =
      static_cast<TimeNs>(options.slo_ms * kMillisecond);
  run.telemetry = std::make_unique<obs::Telemetry>(telemetry_config);
  run.telemetry->set_enabled(telemetry_enabled);
  AttachTelemetry(run.scenario, run.telemetry.get());

  run.vantage_guest = std::make_unique<WorkQueueGuest>(run.scenario.machine,
                                                       run.scenario.vantage);
  SystemNoiseWorkload::Config noise_config;
  noise_config.seed = 1;
  run.vantage_noise = std::make_unique<SystemNoiseWorkload>(
      run.scenario.machine, run.vantage_guest.get(), noise_config);
  run.vantage_noise->Start(0);
  AttachBackground(run.scenario, Background::kIo, 1, run.background);

  PingTraffic::Config ping_config;
  ping_config.threads = 4;
  ping_config.pings_per_thread = 1 << 20;  // Bounded by the horizon, not count.
  ping_config.max_spacing = 10 * kMillisecond;
  run.ping = std::make_unique<PingTraffic>(run.scenario.machine,
                                           run.vantage_guest.get(), ping_config);
  run.ping->AttachTelemetry(run.telemetry.get());
  run.ping->Start(0);

  run.scenario.machine->Start();
  run.scenario.machine->RunFor(static_cast<TimeNs>(options.seconds * kSecond));
  return run;
}

// FNV-1a over every retained trace record plus the engine event count — the
// same fingerprint golden/engine tests pin.
std::uint64_t TraceFingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  return hash;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

void PrintSummary(const RunResult& run) {
  const obs::Telemetry& telemetry = *run.telemetry;
  std::printf("\n--- SLO verdicts (target p%g <= %.3f ms, budget %.2f%%) ---\n",
              telemetry.slo().config().target_quantile * 100,
              ToMs(telemetry.slo().config().target_latency_ns),
              telemetry.slo().config().miss_budget * 100);
  std::printf("%-8s %9s %7s %11s %8s %9s %7s %6s\n", "vm", "requests", "misses",
              "attainment", "met", "burnrate", "streak", "burst");
  for (int vm = 0; vm < telemetry.num_vms(); ++vm) {
    const obs::SloVerdict v = telemetry.slo().VerdictFor(vm);
    if (v.requests == 0) {
      continue;
    }
    std::printf("vm%-6d %9llu %7llu %10.4f%% %8s %9.3f %7d %6s\n", vm,
                static_cast<unsigned long long>(v.requests),
                static_cast<unsigned long long>(v.misses), v.attainment * 100,
                v.slo_met ? "yes" : "NO", v.burn_rate, v.longest_streak,
                v.burst_detected ? "YES" : "no");
  }

  std::printf("\n--- causal latency attribution (mean ms per request) ---\n");
  std::printf("%-8s %9s", "vm", "latency");
  for (int c = 0; c < obs::kNumLatencyComponents; ++c) {
    std::printf(" %11s",
                obs::LatencyComponentName(static_cast<obs::LatencyComponent>(c)));
  }
  std::printf("\n");
  for (int vm = 0; vm < telemetry.num_vms(); ++vm) {
    const obs::HistogramValue latency = telemetry.RequestLatencyHistogram(vm);
    if (latency.count == 0) {
      continue;
    }
    std::printf("vm%-6d %9.3f", vm, ToMs(static_cast<TimeNs>(latency.Mean())));
    for (int c = 0; c < obs::kNumLatencyComponents; ++c) {
      const obs::HistogramValue h =
          telemetry.AttributionHistogram(vm, static_cast<obs::LatencyComponent>(c));
      std::printf(" %11.4f", ToMs(static_cast<TimeNs>(h.Mean())));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto NextValue = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scheduler") == 0) {
      const std::optional<SchedKind> kind = SchedKindFromName(NextValue());
      if (!kind.has_value()) {
        Usage(argv[0]);
      }
      options.scheduler = *kind;
    } else if (std::strcmp(arg, "--cpus") == 0) {
      options.cpus = std::atoi(NextValue());
      if (options.cpus < 1) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--seconds") == 0) {
      options.seconds = std::atof(NextValue());
      if (options.seconds <= 0) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--capped") == 0) {
      options.capped = true;
    } else if (std::strcmp(arg, "--uncapped") == 0) {
      options.capped = false;
    } else if (std::strcmp(arg, "--window-ms") == 0) {
      options.window_ms = std::atof(NextValue());
      if (options.window_ms <= 0) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--slo-ms") == 0) {
      options.slo_ms = std::atof(NextValue());
      if (options.slo_ms <= 0) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json_out = NextValue();
    } else if (std::strcmp(arg, "--csv") == 0) {
      options.csv_out = NextValue();
    } else if (std::strcmp(arg, "--trace") == 0) {
      options.trace_out = NextValue();
    } else if (std::strcmp(arg, "--validate") == 0) {
      options.validate = true;
    } else if (std::strcmp(arg, "--check-determinism") == 0) {
      options.check_determinism = true;
    } else {
      Usage(argv[0]);
    }
  }

  const RunResult run = RunScenario(options, /*telemetry_enabled=*/true);
  PrintSummary(run);

  if (!options.json_out.empty() &&
      !WriteFile(options.json_out, run.telemetry->ToJson() + "\n")) {
    return 1;
  }
  if (!options.csv_out.empty() &&
      !WriteFile(options.csv_out, run.telemetry->TimeSeries().ToCsv())) {
    return 1;
  }

  if (!options.trace_out.empty() || options.validate) {
    obs::PerfettoExportOptions export_options;
    export_options.process_name =
        std::string("tableau-obs/") + SchedKindName(options.scheduler);
    export_options.include_flows = true;
    for (const Vcpu* vcpu : run.scenario.vcpus) {
      export_options.vcpu_names[vcpu->id()] = vcpu->params().name;
    }
    const std::string trace_json = obs::TraceToPerfettoJson(
        run.scenario.machine->trace(), run.scenario.machine->num_cpus(),
        export_options);
    if (options.validate) {
      std::string error;
      if (!obs::ValidatePerfettoJson(trace_json, &error)) {
        std::fprintf(stderr, "FAIL: emitted Perfetto JSON invalid: %s\n",
                     error.c_str());
        return 1;
      }
      std::printf("validate: OK (%zu bytes, flow events on)\n", trace_json.size());
    }
    if (!options.trace_out.empty() && !WriteFile(options.trace_out, trace_json)) {
      return 1;
    }
  }

  if (options.check_determinism) {
    const std::uint64_t with_telemetry = TraceFingerprint(run.scenario);
    const RunResult replay = RunScenario(options, /*telemetry_enabled=*/false);
    const std::uint64_t without_telemetry = TraceFingerprint(replay.scenario);
    if (with_telemetry != without_telemetry) {
      std::fprintf(stderr,
                   "FAIL: telemetry-enabled trace fingerprint 0x%016llx differs "
                   "from telemetry-disabled 0x%016llx\n",
                   static_cast<unsigned long long>(with_telemetry),
                   static_cast<unsigned long long>(without_telemetry));
      return 1;
    }
    std::printf(
        "\ncheck-determinism: OK (fingerprint 0x%016llx, telemetry on == off)\n",
        static_cast<unsigned long long>(with_telemetry));
  }
  return 0;
}
