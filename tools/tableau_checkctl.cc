// tableau_checkctl: command-line front end for the verification subsystem
// (src/check). Runs single fuzzed scenarios, seed-range fuzzing campaigns
// with automatic shrinking, and replay of saved reproducers.
//
// Usage:
//   tableau_checkctl run --seed N            one generated scenario, verbose
//   tableau_checkctl fuzz --seeds A:B        seed range [A, B); exit 1 on any
//       [--shrink] [--repro-dir DIR]         violation, optionally shrinking
//                                            and writing reproducer files
//   tableau_checkctl replay FILE...          replay saved reproducers
//   tableau_checkctl selftest                prove the checkers catch planted
//                                            scheduler mutations
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/mutants.h"
#include "src/check/scenario_fuzz.h"
#include "src/schedulers/factory.h"

namespace {

using tableau::SchedKind;
using tableau::SchedKindName;
using tableau::check::CategoryOf;
using tableau::check::CheckOutcome;
using tableau::check::FormatSpec;
using tableau::check::GenerateSpec;
using tableau::check::MutantKind;
using tableau::check::ParseSpec;
using tableau::check::RunCheckedScenario;
using tableau::check::ScenarioSpec;
using tableau::check::Shrink;
using tableau::check::ShrinkResult;

int Usage() {
  std::fprintf(stderr,
               "usage: tableau_checkctl run --seed N\n"
               "       tableau_checkctl fuzz --seeds A:B [--shrink] "
               "[--repro-dir DIR]\n"
               "       tableau_checkctl replay FILE...\n"
               "       tableau_checkctl selftest\n");
  return 2;
}

void PrintOutcome(const ScenarioSpec& spec, const CheckOutcome& outcome) {
  std::printf("scheduler=%s vcpus=%d duration=%lld ms records=%llu violations=%zu\n",
              SchedKindName(spec.scheduler), spec.TotalVcpus(),
              static_cast<long long>(spec.duration / tableau::kMillisecond),
              static_cast<unsigned long long>(outcome.records),
              outcome.violations.size());
  for (const std::string& violation : outcome.violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
}

int RunCommand(std::uint64_t seed) {
  const ScenarioSpec spec = GenerateSpec(seed);
  std::printf("%s", FormatSpec(spec).c_str());
  const CheckOutcome outcome = RunCheckedScenario(spec);
  PrintOutcome(spec, outcome);
  return outcome.violations.empty() ? 0 : 1;
}

int FuzzCommand(std::uint64_t begin, std::uint64_t end, bool shrink,
                const std::string& repro_dir) {
  int failures = 0;
  for (std::uint64_t seed = begin; seed < end; ++seed) {
    const ScenarioSpec spec = GenerateSpec(seed);
    const CheckOutcome outcome = RunCheckedScenario(spec);
    if (outcome.violations.empty()) {
      continue;
    }
    ++failures;
    std::printf("seed %llu: %zu violation(s), first: %s\n",
                static_cast<unsigned long long>(seed), outcome.violations.size(),
                outcome.violations.front().c_str());
    ScenarioSpec repro = spec;
    if (shrink) {
      const ShrinkResult shrunk = Shrink(spec, CategoryOf(outcome.violations));
      repro = shrunk.spec;
      std::printf("  shrunk to %d vCPU(s) in %d run(s)\n", repro.TotalVcpus(),
                  shrunk.runs);
    }
    if (!repro_dir.empty()) {
      std::ostringstream path;
      path << repro_dir << "/seed" << seed << ".txt";
      std::ofstream out(path.str());
      out << "# " << outcome.violations.front() << "\n" << FormatSpec(repro);
      std::printf("  wrote %s\n", path.str().c_str());
    } else {
      std::printf("%s", FormatSpec(repro).c_str());
    }
  }
  std::printf("fuzz: %llu seed(s), %d failing\n",
              static_cast<unsigned long long>(end - begin), failures);
  return failures == 0 ? 0 : 1;
}

int ReplayCommand(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    std::string line;
    // Skip leading comment lines (the recorded violation).
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '#') continue;
      text << line << "\n";
    }
    const auto spec = ParseSpec(text.str());
    if (!spec) {
      std::fprintf(stderr, "%s: malformed reproducer\n", path.c_str());
      return 2;
    }
    std::printf("replay %s:\n", path.c_str());
    const CheckOutcome outcome = RunCheckedScenario(*spec);
    PrintOutcome(*spec, outcome);
    if (!outcome.violations.empty()) {
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// Plants each mutant into a Tableau scenario and demands the oracles notice:
// a verification subsystem that can't catch a planted bug proves nothing.
int SelftestCommand() {
  ScenarioSpec spec = GenerateSpec(1);
  spec.scheduler = SchedKind::kTableau;
  spec.capped = true;
  spec.replan_at = 0;
  spec.planner_failure = 0.0;
  spec.mutant_stride = 7;
  int failures = 0;
  for (MutantKind mutant : {MutantKind::kWrongVcpu, MutantKind::kOverrunSlice}) {
    spec.mutant = mutant;
    const CheckOutcome outcome = RunCheckedScenario(spec);
    const bool caught = !outcome.violations.empty();
    std::printf("mutant %s: %s\n", tableau::check::MutantKindName(mutant),
                caught ? "caught" : "MISSED");
    if (caught) {
      std::printf("  first: %s\n", outcome.violations.front().c_str());
    } else {
      ++failures;
    }
  }
  spec.mutant = MutantKind::kNone;
  const CheckOutcome clean = RunCheckedScenario(spec);
  std::printf("no mutant: %zu violation(s) (want 0)\n", clean.violations.size());
  if (!clean.violations.empty()) {
    std::printf("  first: %s\n", clean.violations.front().c_str());
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "run") {
    std::uint64_t seed = 1;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 10);
      } else {
        return Usage();
      }
    }
    return RunCommand(seed);
  }
  if (command == "fuzz") {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool shrink = false;
    std::string repro_dir;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
        const std::string range = argv[++i];
        const std::size_t colon = range.find(':');
        if (colon == std::string::npos) {
          return Usage();
        }
        begin = std::strtoull(range.substr(0, colon).c_str(), nullptr, 10);
        end = std::strtoull(range.substr(colon + 1).c_str(), nullptr, 10);
      } else if (std::strcmp(argv[i], "--shrink") == 0) {
        shrink = true;
      } else if (std::strcmp(argv[i], "--repro-dir") == 0 && i + 1 < argc) {
        repro_dir = argv[++i];
      } else {
        return Usage();
      }
    }
    if (end <= begin) {
      return Usage();
    }
    return FuzzCommand(begin, end, shrink, repro_dir);
  }
  if (command == "replay") {
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
      paths.push_back(argv[i]);
    }
    if (paths.empty()) {
      return Usage();
    }
    return ReplayCommand(paths);
  }
  if (command == "selftest") {
    return SelftestCommand();
  }
  return Usage();
}
