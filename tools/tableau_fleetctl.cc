// tableau_fleetctl: command-line front end to the fleet simulation — run a
// multi-host cluster with the placement/migration control plane, describe
// the resulting placement, or assert execution-mode determinism.
//
// Usage:
//   tableau_fleetctl run      [options]   Run and print the fleet summary.
//   tableau_fleetctl describe [options]   Run, then print per-host placement
//                                         and every VM's control-plane state.
//   Options:
//     --hosts N --cpus N --cores-per-socket K --slots N   fleet shape
//     --vms N --utilization U --rps R --service-us S      reservation stream
//     --latency-goal-ms L --arrival-spread-ms A
//     --surge-vms N --surge-at-ms T --surge-factor F      scripted overload
//     --first-fit                                         packing policy
//     --seconds S --seed S
//     --sharded [--parallel [--threads T]]                execution mode
//     --json FILE                                         metrics snapshot out
//     --check-determinism   re-run serial + sharded-parallel + repeat and
//                           fail unless fingerprints and merged metrics are
//                           byte-identical (exit 1 on violation)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/harness/fleet_scenario.h"

using namespace tableau;

namespace {

struct Options {
  FleetScenarioConfig fleet;
  double seconds = 0.5;
  bool check_determinism = false;
  bool describe = false;
  std::string json_out;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run|describe [--hosts N] [--cpus N] [--cores-per-socket K]\n"
               "          [--slots N] [--vms N] [--utilization U] [--rps R]\n"
               "          [--service-us S] [--latency-goal-ms L] [--arrival-spread-ms A]\n"
               "          [--surge-vms N] [--surge-at-ms T] [--surge-factor F]\n"
               "          [--first-fit] [--seconds S] [--seed S] [--sharded]\n"
               "          [--parallel] [--threads T] [--json FILE] [--check-determinism]\n",
               argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options options;
  if (argc < 2) {
    Usage(argv[0]);
  }
  if (std::strcmp(argv[1], "run") == 0) {
    options.describe = false;
  } else if (std::strcmp(argv[1], "describe") == 0) {
    options.describe = true;
  } else {
    Usage(argv[0]);
  }
  FleetScenarioConfig& fleet = options.fleet;
  for (int arg = 2; arg < argc; ++arg) {
    const char* current = argv[arg];
    auto value = [&]() -> const char* {
      if (arg + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++arg];
    };
    if (std::strcmp(current, "--hosts") == 0) {
      fleet.num_hosts = std::atoi(value());
    } else if (std::strcmp(current, "--cpus") == 0) {
      fleet.cpus_per_host = std::atoi(value());
    } else if (std::strcmp(current, "--cores-per-socket") == 0) {
      fleet.cores_per_socket = std::atoi(value());
    } else if (std::strcmp(current, "--slots") == 0) {
      fleet.slots_per_core = std::atoi(value());
    } else if (std::strcmp(current, "--vms") == 0) {
      fleet.num_vms = std::atoi(value());
    } else if (std::strcmp(current, "--utilization") == 0) {
      fleet.utilization = std::atof(value());
    } else if (std::strcmp(current, "--rps") == 0) {
      fleet.requests_per_sec = std::atof(value());
    } else if (std::strcmp(current, "--service-us") == 0) {
      fleet.service_ns = static_cast<TimeNs>(std::atof(value()) * kMicrosecond);
    } else if (std::strcmp(current, "--latency-goal-ms") == 0) {
      fleet.latency_goal = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--arrival-spread-ms") == 0) {
      fleet.arrival_spread = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--surge-vms") == 0) {
      fleet.surge_vms = std::atoi(value());
    } else if (std::strcmp(current, "--surge-at-ms") == 0) {
      fleet.surge_at = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--surge-factor") == 0) {
      fleet.surge_factor = std::atof(value());
    } else if (std::strcmp(current, "--first-fit") == 0) {
      fleet.placement = fleet::PlacementPolicy::kFirstFit;
    } else if (std::strcmp(current, "--seconds") == 0) {
      options.seconds = std::atof(value());
    } else if (std::strcmp(current, "--seed") == 0) {
      fleet.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (std::strcmp(current, "--sharded") == 0) {
      fleet.sharded = true;
    } else if (std::strcmp(current, "--parallel") == 0) {
      fleet.sharded = true;
      fleet.parallel = true;
    } else if (std::strcmp(current, "--threads") == 0) {
      fleet.num_threads = std::atoi(value());
    } else if (std::strcmp(current, "--json") == 0) {
      options.json_out = value();
    } else if (std::strcmp(current, "--check-determinism") == 0) {
      options.check_determinism = true;
    } else {
      Usage(argv[0]);
    }
  }
  return options;
}

struct FleetRun {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  fleet::Cluster::SloSummary slo;
  int migrations = 0;
};

FleetRun Execute(const FleetScenarioConfig& config, TimeNs duration) {
  fleet::Cluster cluster(BuildFleetConfig(config));
  cluster.Start();
  cluster.RunUntil(duration);
  FleetRun run;
  run.fingerprint = cluster.Fingerprint();
  run.metrics_json = cluster.MergedMetrics().ToJson(/*indent=*/2);
  run.slo = cluster.Slo();
  run.migrations = static_cast<int>(cluster.migrations().size());
  return run;
}

void PrintSummary(const fleet::Cluster& cluster) {
  const fleet::Cluster::SloSummary slo = cluster.Slo();
  std::printf("fleet: %d hosts, %d VMs admitted, %d rejected, %zu migrations\n",
              cluster.num_hosts(), slo.vms_admitted, slo.vms_rejected,
              cluster.migrations().size());
  std::printf("slo:   %llu requests, %llu misses, attainment %.4f%% (worst VM %.4f%%)\n",
              static_cast<unsigned long long>(slo.requests),
              static_cast<unsigned long long>(slo.misses), 100.0 * slo.attainment,
              100.0 * slo.worst_vm_attainment);
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(cluster.Fingerprint()));
}

const char* StatusName(fleet::Cluster::VmState::Status status) {
  switch (status) {
    case fleet::Cluster::VmState::Status::kPending:
      return "pending";
    case fleet::Cluster::VmState::Status::kActive:
      return "active";
    case fleet::Cluster::VmState::Status::kDraining:
      return "draining";
    case fleet::Cluster::VmState::Status::kRejected:
      return "rejected";
  }
  return "?";
}

void Describe(fleet::Cluster& cluster, const FleetScenarioConfig& config) {
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    fleet::Host& host = cluster.host(h);
    std::printf("host %-3d %2d pCPUs, %3d/%3d slots free, committed %5.2f cores",
                h, host.config().num_cpus, host.free_slots(), host.num_slots(),
                host.committed());
    if (host.plan().success) {
      std::printf(", table: %s, %zu reservations",
                  PlanMethodName(host.plan().method), host.plan().requests.size());
    } else {
      std::printf(", table: empty");
    }
    std::printf("\n");
  }
  for (int vm = 0; vm < config.num_vms; ++vm) {
    const fleet::Cluster::VmState& state = cluster.vm_state(vm);
    const fleet::VmStream& stream = cluster.stream(vm);
    std::printf(
        "vm %-4d %-8s host %-3d slot %-3d migrations %d  posted %llu completed "
        "%llu misses %llu\n",
        vm, StatusName(state.status), state.host, state.slot, state.migrations,
        static_cast<unsigned long long>(stream.posted()),
        static_cast<unsigned long long>(stream.completed()),
        static_cast<unsigned long long>(stream.misses()));
  }
}

int CheckDeterminism(const Options& options, TimeNs duration) {
  struct Mode {
    const char* name;
    bool sharded;
    bool parallel;
  };
  const std::vector<Mode> modes = {
      {"serial", false, false},
      {"sharded", true, false},
      {"parallel", true, true},
      {"repeat", false, false},
  };
  std::vector<FleetRun> runs;
  for (const Mode& mode : modes) {
    FleetScenarioConfig config = options.fleet;
    config.sharded = mode.sharded;
    config.parallel = mode.parallel;
    if (mode.parallel && config.num_threads <= 0) {
      config.num_threads = 2;
    }
    runs.push_back(Execute(config, duration));
    std::printf("%-10s fingerprint %016llx  requests %llu  migrations %d\n",
                mode.name, static_cast<unsigned long long>(runs.back().fingerprint),
                static_cast<unsigned long long>(runs.back().slo.requests),
                runs.back().migrations);
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].fingerprint != runs[0].fingerprint ||
        runs[i].metrics_json != runs[0].metrics_json) {
      std::fprintf(stderr, "determinism violation: %s differs from serial\n",
                   modes[i].name);
      return 1;
    }
  }
  std::printf("determinism: ok (fingerprints and merged metrics identical)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Parse(argc, argv);
  const TimeNs duration = static_cast<TimeNs>(options.seconds * kSecond);

  if (options.check_determinism) {
    return CheckDeterminism(options, duration);
  }

  fleet::Cluster cluster(BuildFleetConfig(options.fleet));
  cluster.Start();
  cluster.RunUntil(duration);
  PrintSummary(cluster);
  if (options.describe) {
    Describe(cluster, options.fleet);
  }
  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_out.c_str());
      return 1;
    }
    out << cluster.MergedMetrics().ToJson(/*indent=*/2) << "\n";
    std::printf("wrote merged metrics to %s\n", options.json_out.c_str());
  }
  return 0;
}
