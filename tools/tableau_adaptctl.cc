// tableau_adaptctl: command-line front end to the closed-loop adaptive
// reservation controller — run an elastic fleet scenario and print the
// controller's actions, describe every VM's final reservation, replay a
// property-test reproducer, or assert execution-mode determinism.
//
// Usage:
//   tableau_adaptctl run      [options]   Run and print the adaptive summary.
//   tableau_adaptctl describe [options]   Run, then print per-host packing
//                                         and every VM's reservation.
//   tableau_adaptctl replay FILE          Replay a tests/repro/adapt/
//                                         reproducer through the property
//                                         harness (exit 1 on any violation).
//   Options:
//     --hosts N --cpus N --cores-per-socket K --slots N   fleet shape
//     --vms N --utilization U --rps R --service-us S      reservation stream
//     --latency-goal-ms L --window-ms W                   SLO goal, control tick
//     --shape-period-ms P --shape-min F --shape-max F     diurnal demand
//     --surge-vms N --surge-at-ms T --surge-until-ms T    flash crowd
//     --surge-factor F
//     --headroom H --cooldown N --quantize Q              controller policy
//     --min-utilization U --max-utilization U             per-VM clamps
//     --static                                            controller off
//     --seconds S --seed S
//     --sharded [--parallel [--threads T]]                execution mode
//     --json FILE                                         metrics snapshot out
//     --check-determinism   re-run serial + sharded + parallel + repeat and
//                           fail unless fingerprints, merged metrics, and
//                           resize counts are byte-identical (exit 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/adapt_fuzz.h"
#include "src/harness/fleet_scenario.h"

using namespace tableau;

namespace {

struct Options {
  FleetScenarioConfig fleet;
  double seconds = 10.0;
  bool check_determinism = false;
  bool describe = false;
  std::string json_out;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run|describe [--hosts N] [--cpus N] [--cores-per-socket K]\n"
               "          [--slots N] [--vms N] [--utilization U] [--rps R]\n"
               "          [--service-us S] [--latency-goal-ms L] [--window-ms W]\n"
               "          [--shape-period-ms P] [--shape-min F] [--shape-max F]\n"
               "          [--surge-vms N] [--surge-at-ms T] [--surge-until-ms T]\n"
               "          [--surge-factor F] [--headroom H] [--cooldown N]\n"
               "          [--quantize Q] [--min-utilization U] [--max-utilization U]\n"
               "          [--static] [--seconds S] [--seed S] [--sharded]\n"
               "          [--parallel] [--threads T] [--json FILE]\n"
               "          [--check-determinism]\n"
               "       %s replay FILE\n",
               argv0, argv0);
  std::exit(2);
}

// Defaults mirror bench_adaptive's elastic diurnal arm: a fleet whose
// admission cap binds before its slot pool, staggered diurnal demand, and a
// control cadence of at least two table rounds so every resize engages
// before the next tick can supersede it.
FleetScenarioConfig DefaultScenario() {
  FleetScenarioConfig config;
  config.num_hosts = 4;
  config.cpus_per_host = 8;
  config.cores_per_socket = 4;
  config.slots_per_core = 2;
  config.control_period = 210 * kMillisecond;
  config.admission_latency = 210 * kMillisecond;
  config.migrate_burn_threshold = 1e9;
  config.num_vms = 56;
  config.utilization = 0.5;
  config.latency_goal = 40 * kMillisecond;
  config.requests_per_sec = 400;
  config.service_ns = 1000 * kMicrosecond;
  config.shape = fleet::DemandShape::kDiurnal;
  config.shape_period = 8000 * kMillisecond;
  config.shape_min = 0.2;
  config.shape_max = 0.8;
  config.stagger_phases = true;
  config.adaptive = true;
  config.adapt_policy.cooldown_windows = 2;
  config.seed = 1;
  return config;
}

int Replay(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 2;
  }
  std::ostringstream text;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') {
      continue;  // Reproducer header comments (category, provenance).
    }
    text << line << "\n";
  }
  const std::optional<check::AdaptScenarioSpec> spec = check::ParseAdaptSpec(text.str());
  if (!spec.has_value()) {
    std::fprintf(stderr, "parse error: %s is not a valid adapt scenario spec\n", path);
    return 2;
  }
  const check::AdaptCheckOutcome outcome = check::RunAdaptScenario(*spec);
  std::printf("replayed %s: %d resizes, %zu violations\n", path, outcome.resizes,
              outcome.violations.size());
  for (const std::string& entry : outcome.resize_log) {
    std::printf("  resize %s\n", entry.c_str());
  }
  for (const std::string& violation : outcome.violations) {
    std::printf("  VIOLATION %s\n", violation.c_str());
  }
  return outcome.violations.empty() ? 0 : 1;
}

Options Parse(int argc, char** argv) {
  Options options;
  options.fleet = DefaultScenario();
  if (argc < 2) {
    Usage(argv[0]);
  }
  if (std::strcmp(argv[1], "run") == 0) {
    options.describe = false;
  } else if (std::strcmp(argv[1], "describe") == 0) {
    options.describe = true;
  } else {
    Usage(argv[0]);
  }
  FleetScenarioConfig& fleet = options.fleet;
  for (int arg = 2; arg < argc; ++arg) {
    const char* current = argv[arg];
    auto value = [&]() -> const char* {
      if (arg + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++arg];
    };
    if (std::strcmp(current, "--hosts") == 0) {
      fleet.num_hosts = std::atoi(value());
    } else if (std::strcmp(current, "--cpus") == 0) {
      fleet.cpus_per_host = std::atoi(value());
    } else if (std::strcmp(current, "--cores-per-socket") == 0) {
      fleet.cores_per_socket = std::atoi(value());
    } else if (std::strcmp(current, "--slots") == 0) {
      fleet.slots_per_core = std::atoi(value());
    } else if (std::strcmp(current, "--vms") == 0) {
      fleet.num_vms = std::atoi(value());
    } else if (std::strcmp(current, "--utilization") == 0) {
      fleet.utilization = std::atof(value());
    } else if (std::strcmp(current, "--rps") == 0) {
      fleet.requests_per_sec = std::atof(value());
    } else if (std::strcmp(current, "--service-us") == 0) {
      fleet.service_ns = static_cast<TimeNs>(std::atof(value()) * kMicrosecond);
    } else if (std::strcmp(current, "--latency-goal-ms") == 0) {
      fleet.latency_goal = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--window-ms") == 0) {
      fleet.control_period = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--shape-period-ms") == 0) {
      fleet.shape_period = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--shape-min") == 0) {
      fleet.shape_min = std::atof(value());
    } else if (std::strcmp(current, "--shape-max") == 0) {
      fleet.shape_max = std::atof(value());
    } else if (std::strcmp(current, "--surge-vms") == 0) {
      fleet.surge_vms = std::atoi(value());
    } else if (std::strcmp(current, "--surge-at-ms") == 0) {
      fleet.surge_at = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--surge-until-ms") == 0) {
      fleet.surge_until = static_cast<TimeNs>(std::atof(value()) * kMillisecond);
    } else if (std::strcmp(current, "--surge-factor") == 0) {
      fleet.surge_factor = std::atof(value());
    } else if (std::strcmp(current, "--headroom") == 0) {
      fleet.adapt_policy.headroom = std::atof(value());
    } else if (std::strcmp(current, "--cooldown") == 0) {
      fleet.adapt_policy.cooldown_windows = std::atoi(value());
    } else if (std::strcmp(current, "--quantize") == 0) {
      fleet.adapt_policy.quantize = std::atof(value());
    } else if (std::strcmp(current, "--min-utilization") == 0) {
      fleet.adapt_min_utilization = std::atof(value());
    } else if (std::strcmp(current, "--max-utilization") == 0) {
      fleet.adapt_max_utilization = std::atof(value());
    } else if (std::strcmp(current, "--static") == 0) {
      fleet.adaptive = false;
    } else if (std::strcmp(current, "--seconds") == 0) {
      options.seconds = std::atof(value());
    } else if (std::strcmp(current, "--seed") == 0) {
      fleet.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (std::strcmp(current, "--sharded") == 0) {
      fleet.sharded = true;
    } else if (std::strcmp(current, "--parallel") == 0) {
      fleet.sharded = true;
      fleet.parallel = true;
    } else if (std::strcmp(current, "--threads") == 0) {
      fleet.num_threads = std::atoi(value());
    } else if (std::strcmp(current, "--json") == 0) {
      options.json_out = value();
    } else if (std::strcmp(current, "--check-determinism") == 0) {
      options.check_determinism = true;
    } else {
      Usage(argv[0]);
    }
  }
  return options;
}

struct AdaptRun {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  fleet::Cluster::SloSummary slo;
  std::uint64_t resizes = 0;
  double avg_committed = 0;
  adapt::AdaptiveController::Counters totals;
};

AdaptRun Collect(fleet::Cluster& cluster) {
  AdaptRun run;
  run.fingerprint = cluster.Fingerprint();
  run.metrics_json = cluster.MergedMetrics().ToJson(/*indent=*/2);
  run.slo = cluster.Slo();
  run.resizes = cluster.resizes();
  run.avg_committed = cluster.AvgCommittedFraction();
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    const adapt::AdaptiveController* controller = cluster.host(h).adaptive();
    if (controller == nullptr) {
      continue;
    }
    const adapt::AdaptiveController::Counters& counters = controller->counters();
    run.totals.observations += counters.observations;
    run.totals.no_data += counters.no_data;
    run.totals.saturated += counters.saturated;
    run.totals.holds += counters.holds;
    run.totals.cooldown_holds += counters.cooldown_holds;
    run.totals.grows += counters.grows;
    run.totals.shrinks += counters.shrinks;
    run.totals.commits += counters.commits;
    run.totals.rejects += counters.rejects;
  }
  return run;
}

AdaptRun Execute(const FleetScenarioConfig& config, TimeNs duration) {
  fleet::Cluster cluster(BuildFleetConfig(config));
  cluster.Start();
  cluster.RunUntil(duration);
  return Collect(cluster);
}

void PrintSummary(const AdaptRun& run) {
  std::printf("slo:     %llu requests, %llu misses, attainment %.4f%% (worst VM %.4f%%)\n",
              static_cast<unsigned long long>(run.slo.requests),
              static_cast<unsigned long long>(run.slo.misses), 100.0 * run.slo.attainment,
              100.0 * run.slo.worst_vm_attainment);
  std::printf("packing: %d admitted, %d rejected, avg committed fraction %.4f\n",
              run.slo.vms_admitted, run.slo.vms_rejected, run.avg_committed);
  std::printf(
      "control: %llu resizes installed (%llu grows, %llu shrinks, %llu rejects), "
      "%llu observations (%llu no-data, %llu saturated, %llu cooldown holds)\n",
      static_cast<unsigned long long>(run.resizes),
      static_cast<unsigned long long>(run.totals.grows),
      static_cast<unsigned long long>(run.totals.shrinks),
      static_cast<unsigned long long>(run.totals.rejects),
      static_cast<unsigned long long>(run.totals.observations),
      static_cast<unsigned long long>(run.totals.no_data),
      static_cast<unsigned long long>(run.totals.saturated),
      static_cast<unsigned long long>(run.totals.cooldown_holds));
  std::printf("fingerprint: %016llx\n", static_cast<unsigned long long>(run.fingerprint));
}

void Describe(fleet::Cluster& cluster, const FleetScenarioConfig& config) {
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    fleet::Host& host = cluster.host(h);
    std::printf("host %-3d %2d pCPUs, %3d/%3d slots free, committed %5.2f cores\n", h,
                host.config().num_cpus, host.free_slots(), host.num_slots(),
                host.committed());
  }
  for (int vm = 0; vm < config.num_vms; ++vm) {
    const fleet::Cluster::VmState& state = cluster.vm_state(vm);
    if (state.status != fleet::Cluster::VmState::Status::kActive) {
      std::printf("vm %-4d rejected\n", vm);
      continue;
    }
    const adapt::AdaptiveController* controller = cluster.host(state.host).adaptive();
    const double reservation = controller != nullptr && controller->bound(state.slot)
                                   ? controller->reservation(state.slot)
                                   : config.utilization;
    const fleet::VmStream& stream = cluster.stream(vm);
    std::printf("vm %-4d host %-3d slot %-3d reservation %.5f (admitted %.5f)  "
                "completed %llu misses %llu\n",
                vm, state.host, state.slot, reservation, config.utilization,
                static_cast<unsigned long long>(stream.completed()),
                static_cast<unsigned long long>(stream.misses()));
  }
}

int CheckDeterminism(const Options& options, TimeNs duration) {
  struct Mode {
    const char* name;
    bool sharded;
    bool parallel;
  };
  const std::vector<Mode> modes = {
      {"serial", false, false},
      {"sharded", true, false},
      {"parallel", true, true},
      {"repeat", false, false},
  };
  std::vector<AdaptRun> runs;
  for (const Mode& mode : modes) {
    FleetScenarioConfig config = options.fleet;
    config.sharded = mode.sharded;
    config.parallel = mode.parallel;
    if (mode.parallel && config.num_threads <= 0) {
      config.num_threads = 2;
    }
    runs.push_back(Execute(config, duration));
    std::printf("%-10s fingerprint %016llx  requests %llu  resizes %llu\n", mode.name,
                static_cast<unsigned long long>(runs.back().fingerprint),
                static_cast<unsigned long long>(runs.back().slo.requests),
                static_cast<unsigned long long>(runs.back().resizes));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].fingerprint != runs[0].fingerprint ||
        runs[i].metrics_json != runs[0].metrics_json ||
        runs[i].resizes != runs[0].resizes) {
      std::fprintf(stderr, "determinism violation: %s differs from serial\n",
                   modes[i].name);
      return 1;
    }
  }
  std::printf("determinism: ok (fingerprints, merged metrics, resizes identical)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "replay") == 0) {
    if (argc != 3) {
      Usage(argv[0]);
    }
    return Replay(argv[2]);
  }
  const Options options = Parse(argc, argv);
  const TimeNs duration = static_cast<TimeNs>(options.seconds * kSecond);

  if (options.check_determinism) {
    return CheckDeterminism(options, duration);
  }

  fleet::Cluster cluster(BuildFleetConfig(options.fleet));
  cluster.Start();
  cluster.RunUntil(duration);
  const AdaptRun run = Collect(cluster);
  PrintSummary(run);
  if (options.describe) {
    Describe(cluster, options.fleet);
  }
  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_out.c_str());
      return 1;
    }
    out << run.metrics_json << "\n";
    std::printf("wrote merged metrics to %s\n", options.json_out.c_str());
  }
  return 0;
}
