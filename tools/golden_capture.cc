// Captures the golden trace fingerprints for the engine determinism test
// (tests/engine_golden_test.cc). The printed constants are pinned in the
// test so engine changes can be checked for byte-identical event sequences.
//
// Default mode prints the four fingerprints. `--update` additionally
// rewrites the pinned constants in tests/engine_golden_test.cc in place —
// the one-command flow for *intentionally* regenerating the goldens (e.g.
// after a semantics-affecting scenario change), so perf PRs never hand-edit
// hex constants. The diff still goes through review like any other change.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "src/workloads/stress.h"

#ifndef TABLEAU_GOLDEN_TEST_PATH
#define TABLEAU_GOLDEN_TEST_PATH "tests/engine_golden_test.cc"
#endif

using namespace tableau;
using namespace tableau::bench;

namespace {

// FNV-1a over every retained trace record plus the run's aggregate counters.
std::uint64_t Fingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  mix(scenario.machine->context_switches());
  mix(scenario.machine->schedule_invocations());
  return hash;
}

std::uint64_t RunOne(SchedKind kind, bool capped) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  Scenario scenario = BuildScenario(config);
  scenario.machine->trace().set_enabled(true);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(300 * kMillisecond);
  return Fingerprint(scenario);
}

struct Golden {
  const char* label;     // Human-readable, for the default print mode.
  const char* anchor;    // Unique call-site text preceding the constant.
  SchedKind kind;
  bool capped;
  std::uint64_t value = 0;
};

std::string HexConstant(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llxull",
                static_cast<unsigned long long>(value));
  return buf;
}

// Replaces the `0x<16 hex>ull` token following `anchor` in `text`. Returns
// 1 if the constant changed, 0 if it already matched, -1 if the anchor or a
// well-formed constant was not found.
int RewriteConstant(std::string& text, const std::string& anchor,
                    std::uint64_t value) {
  const std::size_t at = text.find(anchor);
  if (at == std::string::npos) {
    return -1;
  }
  const std::size_t hex = text.find("0x", at + anchor.size());
  constexpr std::size_t kTokenLength = 21;  // "0x" + 16 digits + "ull".
  if (hex == std::string::npos ||
      text.compare(hex + 18, 3, "ull") != 0) {
    return -1;
  }
  const std::string replacement = HexConstant(value);
  if (text.compare(hex, kTokenLength, replacement) == 0) {
    return 0;
  }
  text.replace(hex, kTokenLength, replacement);
  return 1;
}

int UpdateGoldenTest(Golden (&goldens)[4]) {
  const char* path = TABLEAU_GOLDEN_TEST_PATH;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s for update\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  in.close();

  int changed = 0;
  for (const Golden& golden : goldens) {
    const int result = RewriteConstant(text, golden.anchor, golden.value);
    if (result < 0) {
      std::fprintf(stderr, "anchor not found in %s: %s\n", path, golden.anchor);
      return 1;
    }
    if (result > 0) {
      std::printf("updated  %-16s -> %s\n", golden.label,
                  HexConstant(golden.value).c_str());
      ++changed;
    }
  }
  if (changed == 0) {
    std::printf("%s already up to date\n", path);
    return 0;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << text;
  std::printf("rewrote %d constant(s) in %s — rebuild and rerun "
              "engine_golden_test to confirm\n",
              changed, path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool update = argc > 1 && std::strcmp(argv[1], "--update") == 0;
  if (argc > 1 && !update) {
    std::fprintf(stderr, "usage: %s [--update]\n", argv[0]);
    return 2;
  }

  Golden goldens[4] = {
      {"kCredit/capped", "RunOne(SchedKind::kCredit, /*capped=*/true), ",
       SchedKind::kCredit, true},
      {"kRtds/capped", "RunOne(SchedKind::kRtds, /*capped=*/true), ",
       SchedKind::kRtds, true},
      {"kTableau/capped", "RunOne(SchedKind::kTableau, /*capped=*/true), ",
       SchedKind::kTableau, true},
      {"kCredit/uncapped", "RunOne(SchedKind::kCredit, /*capped=*/false), ",
       SchedKind::kCredit, false},
  };
  for (Golden& golden : goldens) {
    golden.value = RunOne(golden.kind, golden.capped);
    std::printf("%-16s %s\n", golden.label, HexConstant(golden.value).c_str());
  }
  return update ? UpdateGoldenTest(goldens) : 0;
}
