// Captures the golden trace fingerprints for the engine determinism test
// (tests/engine_golden_test.cc). Run against the seed (binary-heap) engine
// once; the printed constants are pinned in the test so the timer-wheel
// engine can be checked for byte-identical event sequences.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/stress.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

// FNV-1a over every retained trace record plus the run's aggregate counters.
std::uint64_t Fingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  mix(scenario.machine->context_switches());
  mix(scenario.machine->schedule_invocations());
  return hash;
}

std::uint64_t RunOne(SchedKind kind, bool capped) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  Scenario scenario = BuildScenario(config);
  scenario.machine->trace().set_enabled(true);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine.get(), scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(300 * kMillisecond);
  return Fingerprint(scenario);
}

}  // namespace

int main() {
  std::printf("kCredit/capped   0x%016llxull\n",
              static_cast<unsigned long long>(RunOne(SchedKind::kCredit, true)));
  std::printf("kRtds/capped     0x%016llxull\n",
              static_cast<unsigned long long>(RunOne(SchedKind::kRtds, true)));
  std::printf("kTableau/capped  0x%016llxull\n",
              static_cast<unsigned long long>(RunOne(SchedKind::kTableau, true)));
  std::printf("kCredit/uncapped 0x%016llxull\n",
              static_cast<unsigned long long>(RunOne(SchedKind::kCredit, false)));
  return 0;
}
