// tableau_tracedump: run one scenario with tracing on and render its trace
// as Chrome/Perfetto trace_event JSON (load the output in ui.perfetto.dev or
// chrome://tracing) plus a metrics table on stdout.
//
// Usage:
//   tableau_tracedump [--scheduler credit|credit2|rtds|tableau|cfs]
//                     [--cpus N] [--seconds S] [--capped]
//                     [--out FILE] [--validate] [--check-determinism]
//
// --validate runs the built-in Perfetto schema check on the emitted JSON and
// fails the process if it does not conform. --check-determinism re-runs the
// identical scenario with metrics disabled and fails if the trace fingerprint
// differs (observability must not perturb the simulation).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/trace_export.h"
#include "src/workloads/stress.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct Options {
  SchedKind scheduler = SchedKind::kTableau;
  int cpus = 4;
  double seconds = 0.3;
  bool capped = true;
  std::string out;  // Default derived from the scheduler name.
  bool validate = false;
  bool check_determinism = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scheduler credit|credit2|rtds|tableau|cfs] [--cpus N]\n"
               "          [--seconds S] [--capped] [--out FILE] [--validate]\n"
               "          [--check-determinism]\n",
               argv0);
  std::exit(2);
}

// A Fig. 5-style cell: a CPU-bound loop in the vantage VM, I/O-intensive
// stress in every other VM, 4 VMs per guest core.
Scenario RunScenario(const Options& options, bool metrics_enabled) {
  ScenarioConfig config;
  config.scheduler = options.scheduler;
  config.capped = options.capped;
  config.guest_cpus = options.cpus;
  config.cores_per_socket = options.cpus >= 2 ? options.cpus / 2 : 1;
  Scenario scenario = BuildScenario(config);
  scenario.machine->metrics().set_enabled(metrics_enabled);
  scenario.machine->trace().set_enabled(true);
  scenario.vantage->EnableInstrumentation();
  // Workloads must outlive the run but not the scenario; keep them static-free
  // by running inside this scope.
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(static_cast<TimeNs>(options.seconds * kSecond));
  return scenario;
}

// FNV-1a over every retained trace record (the engine-golden fingerprint).
std::uint64_t TraceFingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto NextValue = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scheduler") == 0) {
      const std::optional<SchedKind> kind = SchedKindFromName(NextValue());
      if (!kind.has_value()) {
        Usage(argv[0]);
      }
      options.scheduler = *kind;
    } else if (std::strcmp(arg, "--cpus") == 0) {
      options.cpus = std::atoi(NextValue());
      if (options.cpus < 1) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--seconds") == 0) {
      options.seconds = std::atof(NextValue());
      if (options.seconds <= 0) {
        Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--capped") == 0) {
      options.capped = true;
    } else if (std::strcmp(arg, "--uncapped") == 0) {
      options.capped = false;
    } else if (std::strcmp(arg, "--out") == 0) {
      options.out = NextValue();
    } else if (std::strcmp(arg, "--validate") == 0) {
      options.validate = true;
    } else if (std::strcmp(arg, "--check-determinism") == 0) {
      options.check_determinism = true;
    } else {
      Usage(argv[0]);
    }
  }

  Scenario scenario = RunScenario(options, /*metrics_enabled=*/true);

  obs::PerfettoExportOptions export_options;
  export_options.process_name =
      std::string("tableau-sim/") + SchedKindName(options.scheduler);
  for (const Vcpu* vcpu : scenario.vcpus) {
    export_options.vcpu_names[vcpu->id()] = vcpu->params().name;
  }
  const std::string json = obs::TraceToPerfettoJson(
      scenario.machine->trace(), scenario.machine->num_cpus(), export_options);

  if (options.validate) {
    std::string error;
    if (!obs::ValidatePerfettoJson(json, &error)) {
      std::fprintf(stderr, "FAIL: emitted Perfetto JSON invalid: %s\n", error.c_str());
      return 1;
    }
    std::printf("validate: OK (%zu bytes)\n", json.size());
  }

  const std::string out_path =
      options.out.empty()
          ? std::string(SchedKindName(options.scheduler)) + ".perfetto.json"
          : options.out;
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes, %llu trace records, %llu dropped)\n",
              out_path.c_str(), json.size(),
              static_cast<unsigned long long>(scenario.machine->trace().size()),
              static_cast<unsigned long long>(scenario.machine->trace().dropped()));

  std::printf("\n--- metrics (CSV) ---\n%s",
              scenario.machine->SnapshotMetrics().ToCsv().c_str());

  if (options.check_determinism) {
    const std::uint64_t with_metrics = TraceFingerprint(scenario);
    const Scenario replay = RunScenario(options, /*metrics_enabled=*/false);
    const std::uint64_t without_metrics = TraceFingerprint(replay);
    if (with_metrics != without_metrics) {
      std::fprintf(stderr,
                   "FAIL: metrics-enabled trace fingerprint 0x%016llx differs from "
                   "metrics-disabled 0x%016llx\n",
                   static_cast<unsigned long long>(with_metrics),
                   static_cast<unsigned long long>(without_metrics));
      return 1;
    }
    std::printf("\ncheck-determinism: OK (fingerprint 0x%016llx, metrics on == off)\n",
                static_cast<unsigned long long>(with_metrics));
  }
  return 0;
}
