// tableau_planctl: command-line front end to the Tableau planner — the
// standalone analog of the paper's dom0 userspace planner daemon. It plans
// configurations through the redesigned single entry point
// (Planner::Solve(PlanRequest), the same funnel the harness and the fleet
// control plane use), writes tables in the binary "hypercall" format the
// dispatcher consumes, and inspects existing table files. For multi-host
// placement and migration, see tableau_fleetctl.
//
// Usage:
//   tableau_planctl plan --cpus N [--cores-per-socket K] [--peephole]
//                        [--threads T] [--out FILE] VM [VM...]
//       VM spec: U:L_ms   or   U:L_ms:SOCKET     (e.g. 0.25:20  0.5:10:1)
//   tableau_planctl show FILE
//       Prints structure and per-vCPU statistics of a serialized table.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/planner.h"

using namespace tableau;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tableau_planctl plan --cpus N [--cores-per-socket K] [--peephole]\n"
               "                       [--threads T] [--out FILE] U:L_ms[:SOCKET] ...\n"
               "  tableau_planctl show FILE\n");
  return 2;
}

bool ParseVmSpec(const char* spec, VcpuId id, VcpuRequest* out) {
  double utilization = 0;
  double latency_ms = 0;
  int socket = -1;
  const int fields = std::sscanf(spec, "%lf:%lf:%d", &utilization, &latency_ms, &socket);
  if (fields < 2) {
    return false;
  }
  out->vcpu = id;
  out->utilization = utilization;
  out->latency_goal = static_cast<TimeNs>(latency_ms * kMillisecond);
  out->socket_affinity = fields >= 3 ? socket : -1;
  return true;
}

void PrintPlanReport(const PlanResult& plan) {
  std::printf("method: %s; table %s, %zu bytes serialized\n",
              PlanMethodName(plan.method), FormatDuration(plan.table.length()).c_str(),
              plan.table.SerializedSizeBytes());
  std::printf("%-5s %8s %12s %12s %14s %12s %12s %6s\n", "vcpu", "U", "C", "T",
              "latency bound", "E[wait]", "max wait", "split");
  for (const VcpuPlan& vcpu : plan.vcpus) {
    const LatencyProfile profile = AnalyzeWakeupLatency(plan.table, vcpu.vcpu);
    std::printf("%-5d %7.2f%% %12s %12s %14s %12s %12s %6s\n", vcpu.vcpu,
                100.0 * vcpu.requested_utilization, FormatDuration(vcpu.cost).c_str(),
                FormatDuration(vcpu.period).c_str(),
                FormatDuration(vcpu.blackout_bound).c_str(),
                FormatDuration(profile.mean).c_str(),
                FormatDuration(profile.max).c_str(), vcpu.split ? "yes" : "no");
  }
}

int CmdPlan(int argc, char** argv) {
  PlannerConfig config;
  config.num_cpus = 0;
  std::string out_path;
  std::vector<VcpuRequest> requests;

  for (int arg = 0; arg < argc; ++arg) {
    const char* current = argv[arg];
    if (std::strcmp(current, "--cpus") == 0 && arg + 1 < argc) {
      config.num_cpus = std::atoi(argv[++arg]);
    } else if (std::strcmp(current, "--cores-per-socket") == 0 && arg + 1 < argc) {
      config.cores_per_socket = std::atoi(argv[++arg]);
    } else if (std::strcmp(current, "--peephole") == 0) {
      config.peephole_pass = true;
    } else if (std::strcmp(current, "--threads") == 0 && arg + 1 < argc) {
      config.num_threads = std::atoi(argv[++arg]);
    } else if (std::strcmp(current, "--out") == 0 && arg + 1 < argc) {
      out_path = argv[++arg];
    } else {
      VcpuRequest request;
      if (!ParseVmSpec(current, static_cast<VcpuId>(requests.size()), &request)) {
        std::fprintf(stderr, "bad VM spec '%s'\n", current);
        return Usage();
      }
      requests.push_back(request);
    }
  }
  if (config.num_cpus <= 0 || requests.empty()) {
    return Usage();
  }

  const Planner planner(config);
  const PlanResult plan = planner.Solve(PlanRequest::Full(requests));
  if (!plan.success) {
    std::fprintf(stderr, "planning failed: %s\n", plan.error.c_str());
    return 1;
  }
  PrintPlanReport(plan);

  if (!out_path.empty()) {
    const std::vector<std::uint8_t> bytes = plan.table.Serialize();
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("wrote %zu bytes to %s\n", bytes.size(), out_path.c_str());
  }
  return 0;
}

int CmdShow(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  const SchedulingTable table = SchedulingTable::Deserialize(bytes);
  const std::string violation = table.Validate();
  std::printf("table: %d pCPUs, length %s, %zu bytes; validation: %s\n",
              table.num_cpus(), FormatDuration(table.length()).c_str(), bytes.size(),
              violation.empty() ? "ok" : violation.c_str());
  for (int cpu = 0; cpu < table.num_cpus(); ++cpu) {
    const CpuTable& cpu_table = table.cpu(cpu);
    TimeNs busy = 0;
    for (const Allocation& alloc : cpu_table.allocations) {
      busy += alloc.Length();
    }
    std::printf(
        "  cpu%-2d: %3zu allocations, %4zu slices x %s, %5.1f%% reserved, locals:",
        cpu, cpu_table.allocations.size(), cpu_table.num_slices(),
        FormatDuration(cpu_table.slice_length).c_str(),
        100.0 * static_cast<double>(busy) / static_cast<double>(table.length()));
    for (const VcpuId vcpu : cpu_table.local_vcpus) {
      std::printf(" %d", vcpu);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "plan") == 0) {
    return CmdPlan(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "show") == 0 && argc >= 3) {
    return CmdShow(argv[2]);
  }
  return Usage();
}
