// NUMA-affinity placement tests (VcpuRequest::socket_affinity and the
// NUMA-aware worst-fit-decreasing partitioner).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/thread_pool.h"
#include "src/core/planner.h"
#include "src/rt/hyperperiod.h"
#include "src/rt/partition.h"

namespace tableau {
namespace {

TEST(NumaPartition, RespectsSocketConstraint) {
  const TimeNs h = 1000;
  std::vector<PeriodicTask> tasks = {
      PeriodicTask::Implicit(0, 300, 1000), PeriodicTask::Implicit(1, 300, 1000),
      PeriodicTask::Implicit(2, 300, 1000), PeriodicTask::Implicit(3, 300, 1000)};
  // 4 cores, 2 per socket; all tasks pinned to socket 1.
  std::map<VcpuId, int> socket_of = {{0, 1}, {1, 1}, {2, 1}, {3, 1}};
  const PartitionResult result = WorstFitDecreasingNuma(tasks, socket_of, 4, 2, h);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.core_tasks[0].empty());
  EXPECT_TRUE(result.core_tasks[1].empty());
  EXPECT_EQ(result.core_tasks[2].size() + result.core_tasks[3].size(), 4u);
}

TEST(NumaPartition, UnconstrainedTasksUseAnyCore) {
  const TimeNs h = 1000;
  std::vector<PeriodicTask> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(PeriodicTask::Implicit(i, 400, 1000));
  }
  const PartitionResult result = WorstFitDecreasingNuma(tasks, {}, 4, 2, h);
  ASSERT_TRUE(result.complete);
  for (const auto& core : result.core_tasks) {
    EXPECT_EQ(core.size(), 2u);  // Worst-fit balances 2 per core.
  }
}

TEST(NumaPartition, ConstraintCanForceFailure) {
  const TimeNs h = 1000;
  // Three 60% tasks pinned to socket 0 (2 cores): only two can fit.
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 600, 1000),
                                     PeriodicTask::Implicit(1, 600, 1000),
                                     PeriodicTask::Implicit(2, 600, 1000)};
  std::map<VcpuId, int> socket_of = {{0, 0}, {1, 0}, {2, 0}};
  const PartitionResult result = WorstFitDecreasingNuma(tasks, socket_of, 4, 2, h);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.unassigned.size(), 1u);
  // Socket 1 stays empty despite having capacity.
  EXPECT_TRUE(result.core_tasks[2].empty());
  EXPECT_TRUE(result.core_tasks[3].empty());
}

TEST(NumaPartition, PartialTailSocketClampedToMachine) {
  const TimeNs h = 1000;
  // 5 cores at 2 per socket: socket 2 is a partial socket holding only core
  // 4. The scan range must clamp to the machine instead of touching a
  // nonexistent core 5.
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 400, 1000),
                                     PeriodicTask::Implicit(1, 400, 1000)};
  std::map<VcpuId, int> socket_of = {{0, 2}, {1, 2}};
  const PartitionResult result = WorstFitDecreasingNuma(tasks, socket_of, 5, 2, h);
  ASSERT_TRUE(result.complete);
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(result.core_tasks[static_cast<std::size_t>(c)].empty()) << "core " << c;
  }
  EXPECT_EQ(result.core_tasks[4].size(), 2u);
}

TEST(NumaPartition, ParallelScanMatchesSerialOnWideMachine) {
  const TimeNs h = 1000;
  // 512 cores crosses the parallel-scan threshold; the chunked scan must
  // reproduce the serial min-load / lowest-index placement exactly, both for
  // unconstrained tasks (full-range scan) and socket-pinned ones.
  const int num_cores = 512;
  const int cores_per_socket = 128;
  std::vector<PeriodicTask> tasks;
  std::map<VcpuId, int> socket_of;
  for (int i = 0; i < 300; ++i) {
    tasks.push_back(PeriodicTask::Implicit(i, 100 + (i * 37) % 400, 1000));
    if (i % 3 == 0) {
      socket_of[i] = (i / 3) % 4;
    }
  }
  const PartitionResult serial =
      WorstFitDecreasingNuma(tasks, socket_of, num_cores, cores_per_socket, h);
  ThreadPool pool(4);
  const PartitionResult parallel =
      WorstFitDecreasingNuma(tasks, socket_of, num_cores, cores_per_socket, h, &pool);
  ASSERT_EQ(serial.complete, parallel.complete);
  ASSERT_EQ(serial.core_tasks.size(), parallel.core_tasks.size());
  for (std::size_t c = 0; c < serial.core_tasks.size(); ++c) {
    ASSERT_EQ(serial.core_tasks[c].size(), parallel.core_tasks[c].size()) << "core " << c;
    for (std::size_t i = 0; i < serial.core_tasks[c].size(); ++i) {
      EXPECT_EQ(serial.core_tasks[c][i].vcpu, parallel.core_tasks[c][i].vcpu);
    }
  }
}

TEST(NumaPlanner, AffinityReflectedInTable) {
  PlannerConfig config;
  config.num_cpus = 4;
  config.cores_per_socket = 2;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 8; ++i) {
    VcpuRequest request{i, 0.25, 20 * kMillisecond};
    request.socket_affinity = i < 4 ? 0 : 1;
    requests.push_back(request);
  }
  const PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success) << plan.error;
  for (const VcpuPlan& vcpu : plan.vcpus) {
    const std::vector<int> cpus = plan.table.CpusOf(vcpu.vcpu);
    ASSERT_EQ(cpus.size(), 1u);
    const int expected_socket = vcpu.vcpu < 4 ? 0 : 1;
    EXPECT_EQ(cpus[0] / 2, expected_socket) << "vcpu " << vcpu.vcpu;
  }
}

TEST(NumaPlanner, RejectsOutOfRangeSocket) {
  PlannerConfig config;
  config.num_cpus = 4;
  config.cores_per_socket = 2;
  const Planner planner(config);
  VcpuRequest request{0, 0.25, 20 * kMillisecond};
  request.socket_affinity = 5;
  const PlanResult plan = planner.Plan({request});
  EXPECT_FALSE(plan.success);
  EXPECT_NE(plan.error.find("socket affinity"), std::string::npos);
}

TEST(NumaPlanner, AffinityIgnoredWhenTopologyDisabled) {
  PlannerConfig config;
  config.num_cpus = 2;  // cores_per_socket defaults to 0 = flat machine.
  const Planner planner(config);
  VcpuRequest request{0, 0.25, 20 * kMillisecond};
  request.socket_affinity = 7;  // Would be invalid if topology were active.
  const PlanResult plan = planner.Plan({request});
  EXPECT_TRUE(plan.success) << plan.error;
}

TEST(NumaPlanner, MixedAffinityStaysWithinGuarantees) {
  PlannerConfig config;
  config.num_cpus = 6;
  config.cores_per_socket = 3;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  int id = 0;
  for (int i = 0; i < 6; ++i) {
    VcpuRequest request{id++, 0.3, 30 * kMillisecond};
    request.socket_affinity = i % 2;
    requests.push_back(request);
  }
  for (int i = 0; i < 6; ++i) {
    requests.push_back({id++, 0.2, 60 * kMillisecond});  // Unconstrained.
  }
  const PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success) << plan.error;
  ASSERT_EQ(plan.table.Validate(), "");
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_GE(static_cast<double>(plan.table.TotalService(vcpu.vcpu)) /
                  static_cast<double>(plan.table.length()),
              vcpu.requested_utilization - 1e-3)
        << vcpu.vcpu;
    EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), vcpu.latency_goal) << vcpu.vcpu;
  }
}

}  // namespace
}  // namespace tableau
