// Closed-loop adaptive-reservation property battery (`ctest -L check`):
// 1000 seeded bursty scenarios drive the real fleet::Host + controller +
// planner-delta actuation loop and check, per scenario:
//
//   - every installed resize's table passes the TableVerifier;
//   - oscillation is bounded by the hysteresis contract (deadbands, at
//     least cooldown_windows + 1 data windows between commits per VM);
//   - no VM ever shrinks below the independently recomputed floor quantile
//     of its observed demand, or outside its [min, max] clamps;
//   - idle (no-data) windows never trigger a resize.
//
// A violation greedily shrinks to a minimal reproducer written under
// tests/repro/adapt/ in the committed-corpus format, and the corpus replays
// clean here so past bugs stay fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/adapt_fuzz.h"

#ifndef TABLEAU_REPRO_DIR
#error "TABLEAU_REPRO_DIR must point at the committed reproducer corpus"
#endif

namespace tableau::check {
namespace {

constexpr int kBatterySeeds = 1000;

std::string WriteReproducer(const AdaptScenarioSpec& spec,
                            const std::string& category, std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(TABLEAU_REPRO_DIR) / "adapt";
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path file = dir / ("shrunk-seed-" + std::to_string(seed) + ".txt");
  std::ofstream out(file);
  out << "# category: " << category << "\n";
  out << FormatAdaptSpec(spec);
  return file.string();
}

TEST(AdaptFuzz, ThousandSeedBatteryHoldsEveryProperty) {
  int total_resizes = 0;
  for (int seed = 1; seed <= kBatterySeeds; ++seed) {
    const AdaptScenarioSpec spec =
        GenerateAdaptSpec(static_cast<std::uint64_t>(seed));
    const AdaptCheckOutcome outcome = RunAdaptScenario(spec);
    total_resizes += outcome.resizes;
    if (outcome.violations.empty()) {
      continue;
    }
    const std::string category = AdaptCategoryOf(outcome.violations);
    const AdaptShrinkResult shrunk = ShrinkAdaptSpec(spec, category);
    const std::string path =
        WriteReproducer(shrunk.spec, category, static_cast<std::uint64_t>(seed));
    FAIL() << "seed " << seed << " (" << outcome.violations.size()
           << " violations, category '" << category
           << "'): " << outcome.violations.front()
           << "\nshrunk reproducer written to " << path;
  }
  // The battery is vacuous if the loop never actuates: across 1000 bursty
  // scenarios the controller must commit plenty of real resizes.
  EXPECT_GT(total_resizes, 1000);
}

TEST(AdaptFuzz, ControlLoopIsDeterministic) {
  for (const std::uint64_t seed : {3u, 17u, 101u, 977u}) {
    const AdaptScenarioSpec spec = GenerateAdaptSpec(seed);
    const AdaptCheckOutcome first = RunAdaptScenario(spec);
    const AdaptCheckOutcome second = RunAdaptScenario(spec);
    EXPECT_EQ(first.resizes, second.resizes) << "seed " << seed;
    EXPECT_EQ(first.resize_log, second.resize_log) << "seed " << seed;
    EXPECT_EQ(first.violations, second.violations) << "seed " << seed;
  }
}

TEST(AdaptFuzz, SpecRoundTripsThroughText) {
  for (int seed = 1; seed <= 50; ++seed) {
    const AdaptScenarioSpec spec =
        GenerateAdaptSpec(static_cast<std::uint64_t>(seed));
    const std::string text = FormatAdaptSpec(spec);
    const auto parsed = ParseAdaptSpec(text);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    // Canonical form is a fixed point: format(parse(format(s))) == format(s).
    EXPECT_EQ(FormatAdaptSpec(*parsed), text) << "seed " << seed;
  }
}

TEST(AdaptFuzz, ParserRejectsMalformedSpecs) {
  EXPECT_FALSE(ParseAdaptSpec("").has_value());
  EXPECT_FALSE(ParseAdaptSpec("tableau-repro v1\nseed=1\n").has_value());
  EXPECT_FALSE(
      ParseAdaptSpec("tableau-adapt-repro v1\nbogus_key=1\n").has_value());
  EXPECT_FALSE(  // No VMs.
      ParseAdaptSpec("tableau-adapt-repro v1\nseed=1\n").has_value());
  EXPECT_FALSE(  // VM line without a demand trace.
      ParseAdaptSpec("tableau-adapt-repro v1\nvm=init:0.25\n").has_value());
}

TEST(AdaptFuzz, ShrinkWithoutCategoryIsIdentity) {
  const AdaptScenarioSpec spec = GenerateAdaptSpec(7);
  const AdaptShrinkResult result = ShrinkAdaptSpec(spec, "");
  EXPECT_EQ(result.runs, 0);
  EXPECT_EQ(FormatAdaptSpec(result.spec), FormatAdaptSpec(spec));
}

std::vector<std::filesystem::path> AdaptCorpusFiles() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir =
      std::filesystem::path(TABLEAU_REPRO_DIR) / "adapt";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".txt") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(AdaptReproCorpus, HasSeedScenarios) {
  EXPECT_GE(AdaptCorpusFiles().size(), 2u);
}

TEST(AdaptReproCorpus, EveryReproducerReplaysClean) {
  const std::vector<std::filesystem::path> files = AdaptCorpusFiles();
  ASSERT_FALSE(files.empty());
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '#') {
        continue;  // Leading comment records the pinned regime / violation.
      }
      text << line << "\n";
    }
    const auto spec = ParseAdaptSpec(text.str());
    ASSERT_TRUE(spec.has_value()) << path << ": malformed reproducer";
    const AdaptCheckOutcome outcome = RunAdaptScenario(*spec);
    EXPECT_TRUE(outcome.violations.empty())
        << path << ": " << outcome.violations.front();
  }
}

}  // namespace
}  // namespace tableau::check
