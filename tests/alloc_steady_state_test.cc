// Zero-allocation steady-state proof (DESIGN.md "Simulation hot loop").
//
// This binary replaces the global allocator with a counting wrapper and
// drives the hot paths — the event engine's schedule/fire/cancel churn, the
// trace ring, and the metrics handles — asserting that after a warm-up phase
// (pool chunks, heap capacity, batch buffer all at their high-water marks)
// the per-event path performs literally zero heap allocations.
//
// The test lives in its own executable because the operator new/delete
// replacement is process-global; mixing it into another test binary would
// count that binary's unrelated traffic.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "gtest/gtest.h"
#include "src/hypervisor/trace.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/sim/simulation.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tableau {
namespace {

constexpr TimeNs kMillisecond = 1'000'000;

// The bench_sim_engine churn mix: self-rearming actors, strictly periodic
// ticks, one-shot schedule/cancel traffic at simulator delay scales.
struct Churn {
  std::uint64_t lcg = 42;
  std::uint64_t fired = 0;

  std::uint64_t Next() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  }
  TimeNs Delay() {
    const std::uint64_t pick = Next() % 16;
    if (pick < 12) return 1 + static_cast<TimeNs>(Next() % 100000);
    if (pick < 15) return 1 + static_cast<TimeNs>(Next() % 3000000);
    return 1 + static_cast<TimeNs>(Next() % 50000000);
  }
};

// Pushes the node pool and auxiliary buffers to a high-water mark well above
// anything the steady-state churn reaches, so a post-warm-up AllocNode can
// never trigger a fresh chunk.
void PrimePool(Simulation& sim, int nodes) {
  std::vector<EventId> primer;
  primer.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    primer.push_back(sim.ScheduleAfter(kMillisecond + i, [] {}));
  }
  for (const EventId id : primer) {
    sim.Cancel(id);
  }
}

TEST(AllocSteadyState, EngineChurnRunsAllocationFree) {
  Simulation sim;
  Churn churn;
  PrimePool(sim, 4096);

  constexpr int kActors = 64;
  constexpr int kPeriodics = 16;
  std::vector<EventId> actors;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(sim.CreateTimer([&sim, &churn, &actors, i] {
      ++churn.fired;
      sim.Arm(actors[static_cast<std::size_t>(i)], sim.Now() + churn.Delay());
      const EventId one =
          sim.ScheduleAfter(1 + static_cast<TimeNs>(churn.Next() % 200000),
                            [&churn] { ++churn.fired; });
      if (churn.Next() % 2 == 0) {
        sim.Cancel(one);
      }
    }));
    sim.Arm(actors.back(), static_cast<TimeNs>(churn.Next() % 100000));
  }
  for (int i = 0; i < kPeriodics; ++i) {
    const TimeNs period = 30000 + 1000 * i;
    sim.SchedulePeriodic(period, period, [&churn] { ++churn.fired; });
  }

  // Warm-up: several hundred thousand events, spanning many level-0
  // rotations, cascades, and the longest (50 ms) delay class.
  sim.RunUntil(400 * kMillisecond);

  const std::uint64_t allocs_before = AllocationCount();
  const std::uint64_t events_before = sim.events_executed();
  const std::size_t capacity_before = sim.pool_capacity();

  sim.RunUntil(800 * kMillisecond);

  const std::uint64_t events_run = sim.events_executed() - events_before;
  EXPECT_GT(events_run, 100000u) << "steady-state window too small to be meaningful";
  EXPECT_EQ(AllocationCount() - allocs_before, 0u)
      << "engine allocated during steady-state churn (" << events_run
      << " events)";
  EXPECT_EQ(sim.pool_capacity(), capacity_before);

  for (const EventId id : actors) {
    sim.Cancel(id);
  }
}

TEST(AllocSteadyState, TraceRecordingIsAllocationFreeFromConstruction) {
  constexpr std::size_t kCapacity = 1 << 12;
  TraceBuffer trace(kCapacity);

  // The ring arena is sized in the constructor: even the fill phase (before
  // the ring wraps) must not allocate, let alone the overwrite phase.
  const std::uint64_t allocs_before = AllocationCount();
  for (std::size_t i = 0; i < 3 * kCapacity; ++i) {
    trace.Record(static_cast<TimeNs>(i) * 1000,
                 static_cast<TraceEvent>(i % 6), static_cast<int>(i % 8),
                 static_cast<VcpuId>(i % 32), static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(AllocationCount() - allocs_before, 0u);
  EXPECT_EQ(trace.size(), kCapacity);
  EXPECT_EQ(trace.total_recorded(), 3 * kCapacity);
}

TEST(AllocSteadyState, MetricHandlesRecordAllocationFree) {
  obs::MetricsRegistry registry;
  // Handle lookup allocates (registry map nodes) — done once at setup.
  obs::Counter* counter = registry.GetCounter("test.counter");
  obs::Gauge* gauge = registry.GetGauge("test.gauge");
  obs::LatencyHistogram* hist = registry.GetHistogram("test.hist");

  const std::uint64_t allocs_before = AllocationCount();
  for (int i = 0; i < 100000; ++i) {
    counter->Increment();
    gauge->Set(static_cast<double>(i));
    hist->Record(static_cast<TimeNs>(i) * 37 % 5000000);
  }
  EXPECT_EQ(AllocationCount() - allocs_before, 0u);
  EXPECT_EQ(counter->value(), 100000);
  EXPECT_EQ(hist->Count(), 100000u);
}

TEST(AllocSteadyState, InstrumentedChurnIsAllocationFreePerEvent) {
  // Full per-event observer stack: every event appends a trace record and a
  // histogram sample, the way Machine's dispatch cycle does.
  Simulation sim;
  TraceBuffer trace(1 << 14);
  obs::MetricsRegistry registry;
  obs::LatencyHistogram* hist = registry.GetHistogram("sim.event_gap_ns");
  obs::Counter* fired = registry.GetCounter("sim.fired");
  PrimePool(sim, 2048);

  // Shared observer state bundled behind one pointer so each callback
  // capture stays within EventCallback's inline buffer.
  struct Ctx {
    Simulation& sim;
    TraceBuffer& trace;
    obs::LatencyHistogram* hist;
    obs::Counter* fired;
    TimeNs last = 0;
    std::uint64_t rng = 7;
    std::vector<EventId> actors{};

    std::uint64_t Next() {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      return rng >> 16;
    }
  } ctx{sim, trace, hist, fired};

  constexpr int kActors = 32;
  ctx.actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    ctx.actors.push_back(sim.CreateTimer([c = &ctx, i] {
      c->fired->Increment();
      c->hist->Record(c->sim.Now() - c->last);
      c->trace.Record(c->sim.Now(), TraceEvent::kDispatch, i % 8,
                      static_cast<VcpuId>(i));
      c->last = c->sim.Now();
      c->sim.Arm(c->actors[static_cast<std::size_t>(i)],
                 c->sim.Now() + 1 + static_cast<TimeNs>(c->Next() % 150000));
    }));
    sim.Arm(ctx.actors.back(), static_cast<TimeNs>(ctx.Next() % 50000));
  }

  sim.RunUntil(200 * kMillisecond);  // Warm-up, wraps the trace ring.
  EXPECT_GT(trace.dropped(), 0u) << "ring should have wrapped during warm-up";

  const std::uint64_t allocs_before = AllocationCount();
  const std::uint64_t events_before = sim.events_executed();
  sim.RunUntil(400 * kMillisecond);
  const std::uint64_t events_run = sim.events_executed() - events_before;
  EXPECT_GT(events_run, 10000u);
  EXPECT_EQ(AllocationCount() - allocs_before, 0u)
      << "instrumented event path allocated (" << events_run << " events)";

  for (const EventId id : ctx.actors) {
    sim.Cancel(id);
  }
}

TEST(AllocSteadyState, TelemetryRecordingHotPathIsAllocationFree) {
  // The full telemetry bundle (windowed rings + attributor + SLO tracker +
  // per-VM histograms): everything is sized at Bind, so the recording hooks
  // — the ones Machine drives once per dispatch cycle — must be
  // allocation-free, including ring eviction when samples advance past the
  // retained windows.
  obs::Telemetry::Config config;
  config.window_ns = kMillisecond;
  config.window_capacity = 32;
  obs::Telemetry telemetry(config);
  telemetry.Bind(/*num_cpus=*/2, /*num_vcpus=*/4, /*table_driven=*/true,
                 /*start=*/0);

  std::uint64_t rng = 11;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 16;
  };

  // Warm-up pass, then the measured pass: same mix, later times.
  const auto churn = [&](TimeNs base, int rounds) {
    TimeNs now = base;
    for (int i = 0; i < rounds; ++i) {
      const int vcpu = static_cast<int>(next() % 4);
      const obs::Telemetry::RequestMark mark = telemetry.BeginRequest(vcpu, now);
      telemetry.OnWakeup(vcpu, now);
      now += 1 + static_cast<TimeNs>(next() % 200000);
      telemetry.OnDispatch(vcpu, now);
      now += 1 + static_cast<TimeNs>(next() % 300000);
      telemetry.OnServiceRange(vcpu, static_cast<int>(next() % 2),
                               now - 50000, now);
      if (next() % 4 == 0) {
        telemetry.OnDeschedule(vcpu, now);
        now += 1 + static_cast<TimeNs>(next() % 100000);
        telemetry.OnTableSwitch(now, static_cast<TimeNs>(next() % 20000));
        telemetry.OnDispatch(vcpu, now);
      }
      telemetry.OnBlock(vcpu, now);
      telemetry.EndRequest(vcpu, mark, now,
                           static_cast<TimeNs>(next() % 100000));
      if (i % 16 == 0) {
        telemetry.OnCadenceSample(now, static_cast<int>(next() % 4),
                                  static_cast<int>(next() % 2));
      }
    }
    return now;
  };

  const TimeNs resume = churn(0, 2000);
  const std::uint64_t allocs_before = AllocationCount();
  churn(resume, 20000);
  EXPECT_EQ(AllocationCount() - allocs_before, 0u)
      << "telemetry recording hot path allocated";
  EXPECT_GT(telemetry.RequestLatencyHistogram(3).count, 0u);
}

}  // namespace
}  // namespace tableau
