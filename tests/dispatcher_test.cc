#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/dispatcher.h"
#include "src/table/scheduling_table.h"

namespace tableau {
namespace {

std::shared_ptr<const SchedulingTable> MakeTable(
    TimeNs length, std::vector<std::vector<Allocation>> per_cpu) {
  return std::make_shared<SchedulingTable>(
      SchedulingTable::Build(length, std::move(per_cpu)));
}

TableauDispatcher::Config WorkConserving() {
  TableauDispatcher::Config config;
  config.work_conserving = true;
  return config;
}

TEST(Dispatcher, FirstInstallTakesEffectImmediately) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{7, 0, 500}}}), /*now=*/0);
  const auto slot = dispatcher.LookupSlot(0, 100);
  EXPECT_EQ(slot.vcpu, 7);
  EXPECT_EQ(slot.slot_end, 500);
}

TEST(Dispatcher, LookupSlotAbsoluteTimesWrapModuloLength) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{7, 0, 500}}}), 0);
  // Third cycle, offset 100.
  const auto slot = dispatcher.LookupSlot(0, 2100);
  EXPECT_EQ(slot.vcpu, 7);
  EXPECT_EQ(slot.slot_end, 2500);
  // Idle part of the cycle.
  const auto idle = dispatcher.LookupSlot(0, 2600);
  EXPECT_EQ(idle.vcpu, kIdleVcpu);
  EXPECT_EQ(idle.slot_end, 3000);
}

TEST(Dispatcher, TableSwitchIsDeferredToSecondWrap) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  // Push a new table mid-cycle at t=300: next_table is timed for the middle
  // of the next round, so the switch lands at the wrap after that (t=2000).
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 300);
  EXPECT_EQ(dispatcher.pending_switch_time(), 2000);
  EXPECT_EQ(dispatcher.LookupSlot(0, 500).vcpu, 1);
  EXPECT_EQ(dispatcher.LookupSlot(0, 1999).vcpu, 1);
  EXPECT_EQ(dispatcher.LookupSlot(0, 2000).vcpu, 2);
  EXPECT_EQ(dispatcher.pending_switch_time(), kTimeNever);
}

TEST(Dispatcher, SlotEndClampedToPendingSwitch) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 1500);
  // Switch at wrap after middle of next round: (1500/1000+2)*1000 = 3000.
  EXPECT_EQ(dispatcher.pending_switch_time(), 3000);
  const auto slot = dispatcher.LookupSlot(0, 2500);
  EXPECT_EQ(slot.vcpu, 1);
  EXPECT_EQ(slot.slot_end, 3000);
}

TEST(Dispatcher, AllCoresSwitchAtTheSameBoundary) {
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}, {{2, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{3, 0, 1000}}, {{4, 0, 1000}}}), 100);
  // Both cores still see the old table right before the boundary...
  EXPECT_EQ(dispatcher.LookupSlot(0, 1999).vcpu, 1);
  EXPECT_EQ(dispatcher.LookupSlot(1, 1999).vcpu, 2);
  // ...and the new one right at it.
  EXPECT_EQ(dispatcher.LookupSlot(0, 2000).vcpu, 3);
  EXPECT_EQ(dispatcher.LookupSlot(1, 2000).vcpu, 4);
}

// Re-install while a switch is pending: the latest table wins, and the
// promised switch time never moves earlier (cores were already handed
// slot_ends clamped to it).
TEST(Dispatcher, ReinstallDuringPendingSwitchKeepsLaterWrap) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 1500);
  EXPECT_EQ(dispatcher.pending_switch_time(), 3000);
  // Second install observed from a lagging clock: its recomputed wrap (2000)
  // is earlier than the promised 3000 and must not win.
  dispatcher.InstallTable(MakeTable(1000, {{{3, 0, 1000}}}), 900);
  EXPECT_EQ(dispatcher.pending_switch_time(), 3000);
  // The old table stays in effect until the promised boundary...
  EXPECT_EQ(dispatcher.LookupSlot(0, 2999).vcpu, 1);
  // ...and the switch lands on the *latest* installed table, not the dropped
  // intermediate one.
  EXPECT_EQ(dispatcher.LookupSlot(0, 3000).vcpu, 3);
}

TEST(Dispatcher, ReinstallDuringPendingSwitchMovesLaterWhenTimeAdvanced) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 300);
  EXPECT_EQ(dispatcher.pending_switch_time(), 2000);
  // A later re-install whose wrap computes past the promise pushes it out.
  dispatcher.InstallTable(MakeTable(1000, {{{3, 0, 1000}}}), 2100);
  EXPECT_EQ(dispatcher.pending_switch_time(), 4000);
  EXPECT_EQ(dispatcher.LookupSlot(0, 3999).vcpu, 1);
  EXPECT_EQ(dispatcher.LookupSlot(0, 4000).vcpu, 3);
}

TEST(Dispatcher, ReinstallAtSameRoundReplacesTableKeepsTime) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 300);
  dispatcher.InstallTable(MakeTable(1000, {{{3, 0, 1000}}}), 600);
  // Same round, same wrap: promise unchanged, latest table wins.
  EXPECT_EQ(dispatcher.pending_switch_time(), 2000);
  const auto slot = dispatcher.LookupSlot(0, 1500);
  EXPECT_EQ(slot.vcpu, 1);
  EXPECT_EQ(slot.slot_end, 2000);  // Still clamped to the promise.
  EXPECT_EQ(dispatcher.LookupSlot(0, 2000).vcpu, 3);
}

TEST(Dispatcher, WakeupTargetCurrentAllocation) {
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(
      MakeTable(1000, {{{1, 0, 500}}, {{1, 500, 800}, {2, 800, 1000}}}), 0);
  EXPECT_EQ(dispatcher.WakeupTargetCpu(1, 100), 0);   // In cpu0 allocation.
  EXPECT_EQ(dispatcher.WakeupTargetCpu(1, 600), 1);   // In cpu1 allocation.
  EXPECT_EQ(dispatcher.WakeupTargetCpu(2, 900), 1);
  EXPECT_EQ(dispatcher.WakeupTargetCpu(99, 0), -1);   // Unknown vCPU.
}

TEST(Dispatcher, WakeupTargetFallsBackToLastAllocation) {
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 100, 200}}, {{2, 0, 50}}}), 0);
  // t=500: vCPU 1 has no current allocation; last one was on cpu 0.
  EXPECT_EQ(dispatcher.WakeupTargetCpu(1, 500), 0);
  // t=60 for vCPU 2: last allocation (cyclically) ended at 50 on cpu 1.
  EXPECT_EQ(dispatcher.WakeupTargetCpu(2, 60), 1);
  // Before vCPU 1's first allocation: wraps to the previous cycle's last.
  EXPECT_EQ(dispatcher.WakeupTargetCpu(1, 50), 0);
}

TEST(Dispatcher, InOwnSlot) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{5, 200, 600}}}), 0);
  EXPECT_FALSE(dispatcher.InOwnSlot(5, 0, 100));
  EXPECT_TRUE(dispatcher.InOwnSlot(5, 0, 300));
  EXPECT_FALSE(dispatcher.InOwnSlot(5, 0, 700));
}

TEST(Dispatcher, IsSplitDetection) {
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(
      MakeTable(1000, {{{1, 0, 500}, {2, 500, 900}}, {{1, 500, 800}}}), 0);
  EXPECT_TRUE(dispatcher.IsSplit(1));
  EXPECT_FALSE(dispatcher.IsSplit(2));
  EXPECT_FALSE(dispatcher.IsSplit(99));
}

TEST(Dispatcher, SecondLevelPicksOnlyEligibleLocals) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 300}, {2, 300, 600}}}), 0);
  // Only vCPU 2 eligible.
  const auto pick = dispatcher.PickSecondLevel(
      0, 700, 1000, [](VcpuId id) { return id == 2; });
  EXPECT_EQ(pick.vcpu, 2);
  EXPECT_GT(pick.until, 700);
  EXPECT_LE(pick.until, 1000);
}

TEST(Dispatcher, SecondLevelIdleWhenNoneEligible) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 300}}}), 0);
  const auto pick =
      dispatcher.PickSecondLevel(0, 700, 1000, [](VcpuId) { return false; });
  EXPECT_EQ(pick.vcpu, kIdleVcpu);
  EXPECT_EQ(pick.until, 1000);
}

TEST(Dispatcher, SecondLevelDisabledWhenNotWorkConserving) {
  TableauDispatcher::Config config;
  config.work_conserving = false;
  TableauDispatcher dispatcher(1, config);
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 300}}}), 0);
  const auto pick =
      dispatcher.PickSecondLevel(0, 700, 1000, [](VcpuId) { return true; });
  EXPECT_EQ(pick.vcpu, kIdleVcpu);
}

TEST(Dispatcher, SecondLevelExcludesSplitVcpus) {
  // Mirrors the paper's prototype: split vCPUs do not take part in
  // second-level scheduling.
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(
      MakeTable(1000, {{{1, 0, 500}, {2, 500, 600}}, {{1, 500, 800}}}), 0);
  const auto pick = dispatcher.PickSecondLevel(
      0, 700, 1000, [](VcpuId) { return true; });
  EXPECT_EQ(pick.vcpu, 2);  // Never split vCPU 1.
}

TEST(Dispatcher, SecondLevelEpochFairShare) {
  // Two eligible locals: budgets replenish to epoch/2 and alternate by
  // highest-remaining-budget as budget is accrued.
  TableauDispatcher::Config config;
  config.work_conserving = true;
  config.second_level_epoch = 10 * kMillisecond;
  TableauDispatcher dispatcher(1, config);
  dispatcher.InstallTable(
      MakeTable(100 * kMillisecond,
                {{{1, 0, kMillisecond}, {2, kMillisecond, 2 * kMillisecond}}}),
      0);
  auto all = [](VcpuId) { return true; };

  const TimeNs now = 50 * kMillisecond;
  const auto first = dispatcher.PickSecondLevel(0, now, 100 * kMillisecond, all);
  ASSERT_NE(first.vcpu, kIdleVcpu);
  // Replenished to 5 ms each; grant capped at remaining budget.
  EXPECT_EQ(first.until, now + 5 * kMillisecond);

  // Burn 5 ms of the first pick's budget: the other vCPU must be next.
  dispatcher.AccrueSecondLevel(0, first.vcpu, 5 * kMillisecond);
  const auto second =
      dispatcher.PickSecondLevel(0, first.until, 100 * kMillisecond, all);
  ASSERT_NE(second.vcpu, kIdleVcpu);
  EXPECT_NE(second.vcpu, first.vcpu);

  // Burn the second budget too: both at zero triggers a fresh replenish.
  dispatcher.AccrueSecondLevel(0, second.vcpu, 5 * kMillisecond);
  const auto third =
      dispatcher.PickSecondLevel(0, second.until, 100 * kMillisecond, all);
  EXPECT_NE(third.vcpu, kIdleVcpu);
}

TEST(Dispatcher, SecondLevelGrantFlooredAtMinGrant) {
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(100 * kMillisecond, {{{1, 0, kMillisecond}}}), 0);
  auto all = [](VcpuId) { return true; };
  const auto first = dispatcher.PickSecondLevel(0, 0, 100 * kMillisecond, all);
  // Leave 1 ns of budget.
  dispatcher.AccrueSecondLevel(0, first.vcpu, 10 * kMillisecond - 1);
  const auto tiny = dispatcher.PickSecondLevel(0, 5, 100 * kMillisecond, all);
  EXPECT_EQ(tiny.vcpu, first.vcpu);
  EXPECT_GE(tiny.until - 5, kMinGrantNs);
}

TEST(Dispatcher, TrailingCorePolicyForSplitVcpus) {
  // With split_participation enabled, a split vCPU takes part in
  // second-level scheduling only on the core of its most recent allocation.
  TableauDispatcher::Config config;
  config.work_conserving = true;
  config.split_participation = true;
  TableauDispatcher dispatcher(2, config);
  // vCPU 1 split: cpu0 [0,400), cpu1 [500,800).
  dispatcher.InstallTable(
      MakeTable(1000, {{{1, 0, 400}}, {{1, 500, 800}}}), 0);
  ASSERT_TRUE(dispatcher.IsSplit(1));
  // At t=450 the last allocation was on cpu 0.
  EXPECT_TRUE(dispatcher.SecondLevelLocal(1, 0, 450));
  EXPECT_FALSE(dispatcher.SecondLevelLocal(1, 1, 450));
  // At t=900 the last allocation was on cpu 1.
  EXPECT_FALSE(dispatcher.SecondLevelLocal(1, 0, 900));
  EXPECT_TRUE(dispatcher.SecondLevelLocal(1, 1, 900));
  // And it is actually picked on its trailing core.
  const auto pick =
      dispatcher.PickSecondLevel(1, 900, 1000, [](VcpuId) { return true; });
  EXPECT_EQ(pick.vcpu, 1);
}

TEST(Dispatcher, SplitParticipationOffMatchesPrototype) {
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(
      MakeTable(1000, {{{1, 0, 400}}, {{1, 500, 800}}}), 0);
  EXPECT_FALSE(dispatcher.SecondLevelLocal(1, 0, 450));
  EXPECT_FALSE(dispatcher.SecondLevelLocal(1, 1, 900));
  // Non-split vCPUs are always local.
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 400}}, {}}), 0);
  EXPECT_TRUE(dispatcher.SecondLevelLocal(2, 0, 450));
}

TEST(Dispatcher, LateSwitchPromotesImmediatelyByDefault) {
  // Default (kTimeNever tolerance): however late the first lookup after the
  // promised boundary arrives, the pending table promotes right away — the
  // pre-degradation behavior the goldens pin down.
  TableauDispatcher dispatcher(1, WorkConserving());
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 300);
  EXPECT_EQ(dispatcher.pending_switch_time(), 2000);
  EXPECT_EQ(dispatcher.LookupSlot(0, 9700).vcpu, 2);  // 7.7 rounds late.
  EXPECT_EQ(dispatcher.pending_switch_time(), kTimeNever);
}

TEST(Dispatcher, SlipToleranceReArmsMissedSwitchAtNextWrap) {
  TableauDispatcher::Config config = WorkConserving();
  config.switch_slip_tolerance = 100;
  TableauDispatcher dispatcher(1, config);
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 300);
  EXPECT_EQ(dispatcher.pending_switch_time(), 2000);
  // First lookup observes the switch 500 > 100 late: the old table stays in
  // effect and the switch re-arms at the next wrap of the current table.
  EXPECT_EQ(dispatcher.LookupSlot(0, 2500).vcpu, 1);
  EXPECT_EQ(dispatcher.pending_switch_time(), 3000);
  // On time at the re-armed boundary: the new table takes over.
  EXPECT_EQ(dispatcher.LookupSlot(0, 3000).vcpu, 2);
  EXPECT_EQ(dispatcher.pending_switch_time(), kTimeNever);
}

TEST(Dispatcher, SlipWithinToleranceStillPromotes) {
  TableauDispatcher::Config config = WorkConserving();
  config.switch_slip_tolerance = 100;
  TableauDispatcher dispatcher(1, config);
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 1000}}}), 0);
  dispatcher.InstallTable(MakeTable(1000, {{{2, 0, 1000}}}), 300);
  // 50 ns late is within tolerance: promote as usual.
  EXPECT_EQ(dispatcher.LookupSlot(0, 2050).vcpu, 2);
  EXPECT_EQ(dispatcher.pending_switch_time(), kTimeNever);
}

TEST(Dispatcher, TimelinesRebuiltAfterSwitch) {
  TableauDispatcher dispatcher(2, WorkConserving());
  dispatcher.InstallTable(
      MakeTable(1000, {{{1, 0, 500}}, {{1, 500, 800}}}), 0);  // Split.
  EXPECT_TRUE(dispatcher.IsSplit(1));
  dispatcher.InstallTable(MakeTable(1000, {{{1, 0, 500}}, {}}), 100);
  // After the switch boundary, vCPU 1 is no longer split.
  dispatcher.ActiveTable(2000);
  EXPECT_FALSE(dispatcher.IsSplit(1));
  EXPECT_EQ(dispatcher.WakeupTargetCpu(1, 2600), 0);
}

}  // namespace
}  // namespace tableau
