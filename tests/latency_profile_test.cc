// Tests for the analytical wake-up latency profile, including the
// model-vs-simulation cross-validation: the closed-form prediction from
// table structure must match the ping latencies the DES measures.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/planner.h"
#include "src/harness/scenario.h"
#include "src/workloads/ping.h"

namespace tableau {
namespace {

TEST(LatencyProfile, SingleSlotClosedForm) {
  // One 25% slot per 1000 ns round: gap 750, E[wait] = 750^2/2/1000 = 281.25.
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 250}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LatencyProfile profile = AnalyzeWakeupLatency(table, 0);
  EXPECT_DOUBLE_EQ(profile.service_fraction, 0.25);
  EXPECT_EQ(profile.mean, 281);
  EXPECT_EQ(profile.max, 750);
  // P(wait > w) = (750 - w)/1000 = 0.01 at w = 740.
  EXPECT_EQ(profile.p99, 740);
}

TEST(LatencyProfile, TwoGapsWeightedCorrectly) {
  // Slots [0,100) and [500,600): gaps 400 and 500 (wrap 400 + ... compute):
  // gaps: [100,500)=400 and [600,1000)+[0,0)=400. E = 2*(400^2/2)/1000 = 160.
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {0, 500, 600}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LatencyProfile profile = AnalyzeWakeupLatency(table, 0);
  EXPECT_EQ(profile.mean, 160);
  EXPECT_EQ(profile.max, 400);
}

TEST(LatencyProfile, FullCoreHasZeroWait) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 1000}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LatencyProfile profile = AnalyzeWakeupLatency(table, 0);
  EXPECT_DOUBLE_EQ(profile.service_fraction, 1.0);
  EXPECT_EQ(profile.mean, 0);
  EXPECT_EQ(profile.max, 0);
}

TEST(LatencyProfile, UnknownVcpuWaitsForever) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 1000}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LatencyProfile profile = AnalyzeWakeupLatency(table, 99);
  EXPECT_EQ(profile.mean, 1000);
}

TEST(LatencyProfile, MaxMatchesMaxBlackout) {
  PlannerConfig config;
  config.num_cpus = 4;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back({i, 0.3, 40 * kMillisecond});
  }
  const PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success);
  for (const VcpuPlan& vcpu : plan.vcpus) {
    const LatencyProfile profile = AnalyzeWakeupLatency(plan.table, vcpu.vcpu);
    EXPECT_EQ(profile.max, plan.table.MaxBlackout(vcpu.vcpu)) << vcpu.vcpu;
    EXPECT_LE(profile.mean, profile.p99);
    EXPECT_LE(profile.p99, profile.max);
  }
}

TEST(LatencyProfile, PredictsSimulatedPingLatency) {
  // The paper-config capped Tableau host: the analytical profile of the
  // vantage vCPU's table must predict the DES-measured ping RTT
  // (up to the constant network + handling offsets).
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  config.capped = true;
  Scenario scenario = BuildScenario(config);
  const LatencyProfile profile = AnalyzeWakeupLatency(scenario.plan.table, 0);

  WorkQueueGuest guest(scenario.machine, scenario.vantage);
  PingTraffic::Config ping_config;
  ping_config.threads = 8;
  ping_config.pings_per_thread = 800;
  ping_config.max_spacing = 10 * kMillisecond;
  PingTraffic ping(scenario.machine, &guest, ping_config);
  ping.Start(0);
  scenario.machine->Start();
  scenario.machine->RunFor(6 * kSecond);
  ASSERT_EQ(ping.latencies().Count(), 6400u);

  // RTT = wait + 2 x 50 us network + ~20 us handling + dispatch overhead.
  const double overhead_us = 125.0;
  EXPECT_NEAR(ToUs(static_cast<TimeNs>(ping.latencies().Mean())),
              ToUs(profile.mean) + overhead_us, 350.0);
  EXPECT_NEAR(ToUs(ping.latencies().Max()), ToUs(profile.max) + overhead_us, 600.0);
}

}  // namespace
}  // namespace tableau
