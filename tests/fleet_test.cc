// Fleet control-plane properties: execution-mode determinism (serial vs
// sharded vs parallel with any worker count), placement policy behavior,
// and the live-migration oracle (destination tables pass the TableVerifier;
// no request span is lost across a drain).
#include <gtest/gtest.h>

#include <algorithm>

#include <string>
#include <vector>

#include "src/check/table_verifier.h"
#include "src/harness/fleet_scenario.h"

namespace tableau {
namespace {

FleetScenarioConfig SmallFleet() {
  FleetScenarioConfig config;
  config.num_hosts = 4;
  config.cpus_per_host = 4;
  config.cores_per_socket = 2;
  config.slots_per_core = 2;  // 8 slots per host.
  config.num_vms = 12;
  config.utilization = 0.25;
  config.requests_per_sec = 400;
  config.service_ns = 300 * kMicrosecond;
  config.arrival_spread = 30 * kMillisecond;
  config.seed = 7;
  return config;
}

struct FleetRun {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  fleet::Cluster::SloSummary slo;
  int migrations = 0;
  std::uint64_t resizes = 0;
};

FleetRun RunFleet(FleetScenarioConfig config, TimeNs duration) {
  fleet::Cluster cluster(BuildFleetConfig(config));
  cluster.Start();
  cluster.RunUntil(duration);
  FleetRun run;
  run.fingerprint = cluster.Fingerprint();
  run.metrics_json = cluster.MergedMetrics().ToJson();
  run.slo = cluster.Slo();
  run.migrations = static_cast<int>(cluster.migrations().size());
  run.resizes = cluster.resizes();
  return run;
}

TEST(FleetDeterminismTest, IdenticalAcrossExecutionModes) {
  const FleetScenarioConfig base = SmallFleet();
  const TimeNs duration = 200 * kMillisecond;

  const FleetRun serial = RunFleet(base, duration);
  EXPECT_GT(serial.slo.requests, 0u);
  EXPECT_EQ(serial.slo.vms_admitted, base.num_vms);

  // Same scenario under every execution strategy: sharded single-threaded,
  // and parallel with 1, 2, and 4 worker threads. The merged fingerprint
  // and the merged metrics block must be byte-identical to the serial run.
  std::vector<FleetScenarioConfig> modes;
  {
    FleetScenarioConfig sharded = base;
    sharded.sharded = true;
    modes.push_back(sharded);
    for (const int threads : {1, 2, 4}) {
      FleetScenarioConfig parallel = base;
      parallel.sharded = true;
      parallel.parallel = true;
      parallel.num_threads = threads;
      modes.push_back(parallel);
    }
  }
  for (const FleetScenarioConfig& mode : modes) {
    const FleetRun run = RunFleet(mode, duration);
    EXPECT_EQ(run.fingerprint, serial.fingerprint)
        << "sharded=" << mode.sharded << " parallel=" << mode.parallel
        << " threads=" << mode.num_threads;
    EXPECT_EQ(run.metrics_json, serial.metrics_json)
        << "sharded=" << mode.sharded << " parallel=" << mode.parallel
        << " threads=" << mode.num_threads;
  }

  // Repeatability: the same mode twice is bit-identical too.
  const FleetRun repeat = RunFleet(base, duration);
  EXPECT_EQ(repeat.fingerprint, serial.fingerprint);
  EXPECT_EQ(repeat.metrics_json, serial.metrics_json);
}

TEST(FleetDeterminismTest, AdaptiveLoopIdenticalAcrossExecutionModes) {
  // Closed-loop adaptive reservations under diurnal per-VM demand: the
  // controller ticks at cluster barriers only, so the resize sequence — and
  // with it the full fleet fingerprint and merged metrics — must stay
  // byte-identical across serial, sharded, and parallel execution.
  FleetScenarioConfig base = SmallFleet();
  base.shape = fleet::DemandShape::kDiurnal;
  base.shape_period = 200 * kMillisecond;
  base.shape_min = 0.2;
  base.shape_max = 1.6;
  base.stagger_phases = true;
  base.adaptive = true;
  const TimeNs duration = 600 * kMillisecond;

  const FleetRun serial = RunFleet(base, duration);
  EXPECT_GT(serial.slo.requests, 0u);
  // The loop actually actuated: a detached controller would make this test
  // vacuously identical to the static determinism test above.
  EXPECT_GT(serial.resizes, 0u);

  std::vector<FleetScenarioConfig> modes;
  {
    FleetScenarioConfig sharded = base;
    sharded.sharded = true;
    modes.push_back(sharded);
    for (const int threads : {1, 2, 4}) {
      FleetScenarioConfig parallel = base;
      parallel.sharded = true;
      parallel.parallel = true;
      parallel.num_threads = threads;
      modes.push_back(parallel);
    }
  }
  for (const FleetScenarioConfig& mode : modes) {
    const FleetRun run = RunFleet(mode, duration);
    EXPECT_EQ(run.resizes, serial.resizes)
        << "sharded=" << mode.sharded << " parallel=" << mode.parallel
        << " threads=" << mode.num_threads;
    EXPECT_EQ(run.fingerprint, serial.fingerprint)
        << "sharded=" << mode.sharded << " parallel=" << mode.parallel
        << " threads=" << mode.num_threads;
    EXPECT_EQ(run.metrics_json, serial.metrics_json)
        << "sharded=" << mode.sharded << " parallel=" << mode.parallel
        << " threads=" << mode.num_threads;
  }

  const FleetRun repeat = RunFleet(base, duration);
  EXPECT_EQ(repeat.fingerprint, serial.fingerprint);
  EXPECT_EQ(repeat.metrics_json, serial.metrics_json);

  // Every host's final table — after an arbitrary number of controller
  // resizes — still satisfies the admitted reservations' contracts.
  fleet::Cluster cluster(BuildFleetConfig(base));
  cluster.Start();
  cluster.RunUntil(duration);
  for (int h = 0; h < base.num_hosts; ++h) {
    fleet::Host& host = cluster.host(h);
    if (!host.plan().success) {
      continue;
    }
    const std::vector<std::string> violations =
        check::VerifyPlan(host.plan(), host.planner_config());
    EXPECT_TRUE(violations.empty()) << "host " << h << ": " << violations.front();
  }
}

TEST(FleetPlacementTest, WorstFitSpreadsFirstFitPacks) {
  FleetScenarioConfig config = SmallFleet();
  config.arrival_spread = 0;  // All VMs arrive at t=0, one admission tick.
  config.num_vms = 8;

  fleet::Cluster spread(BuildFleetConfig(config));
  spread.Start();
  std::vector<int> spread_hosts;
  for (int vm = 0; vm < config.num_vms; ++vm) {
    ASSERT_EQ(spread.vm_state(vm).status, fleet::Cluster::VmState::Status::kActive);
    spread_hosts.push_back(spread.vm_state(vm).host);
  }
  // Worst fit rotates over the emptiest hosts: 8 VMs on 4 equal hosts land
  // 2 per host.
  for (int h = 0; h < config.num_hosts; ++h) {
    EXPECT_EQ(std::count(spread_hosts.begin(), spread_hosts.end(), h), 2)
        << "host " << h;
  }

  config.placement = fleet::PlacementPolicy::kFirstFit;
  fleet::Cluster packed(BuildFleetConfig(config));
  packed.Start();
  // First fit packs host 0 until its committed-utilization cap (0.9 * 4
  // cores = 3.6 -> 14 quarter-core VMs would fit; our 8 all land there).
  for (int vm = 0; vm < config.num_vms; ++vm) {
    EXPECT_EQ(packed.vm_state(vm).host, 0) << "vm " << vm;
  }
}

TEST(FleetPlacementTest, RejectsWhenFleetIsFull) {
  FleetScenarioConfig config = SmallFleet();
  config.arrival_spread = 0;
  // Capacity: 4 hosts * floor(0.9 * 4 cores / 0.25) = 4 * 14 VMs by the
  // committed-utilization cap (the 8-slot pool binds earlier: 8 per host).
  config.num_vms = 40;

  fleet::Cluster cluster(BuildFleetConfig(config));
  cluster.Start();
  const fleet::Cluster::SloSummary slo = cluster.Slo();
  EXPECT_EQ(slo.vms_admitted, 32);  // 4 hosts x 8 slots.
  EXPECT_EQ(slo.vms_rejected, 8);
}

TEST(FleetMigrationTest, OverloadDrainsMigratesAndVerifies) {
  FleetScenarioConfig config = SmallFleet();
  config.arrival_spread = 0;
  config.num_vms = 6;
  config.requests_per_sec = 200;
  config.service_ns = 500 * kMicrosecond;
  // VM 0 surges 10x at t=100ms: demand 1000 ms/s against a quarter-core
  // reservation (250 ms/s) — a sustained overload the burn-rate detector
  // must catch.
  config.surge_vms = 1;
  config.surge_at = 100 * kMillisecond;
  config.surge_factor = 10.0;
  config.min_requests_before_migration = 20;

  fleet::Cluster cluster(BuildFleetConfig(config));
  cluster.Start();
  cluster.RunUntil(1 * kSecond);

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const fleet::Cluster::MigrationRecord& migration = cluster.migrations()[0];
  EXPECT_EQ(migration.vm, 0);
  EXPECT_NE(migration.from, migration.to);
  EXPECT_GT(migration.transferred, migration.drain_started);
  EXPECT_GE(migration.drain_started, config.surge_at);

  const fleet::Cluster::VmState& state = cluster.vm_state(0);
  EXPECT_EQ(state.status, fleet::Cluster::VmState::Status::kActive);
  EXPECT_EQ(state.host, migration.to);
  EXPECT_EQ(state.migrations, 1);

  // Oracle 1: the destination host's live table still satisfies every
  // admitted reservation's contract.
  fleet::Host& destination = cluster.host(migration.to);
  ASSERT_TRUE(destination.plan().success);
  const std::vector<std::string> violations =
      check::VerifyPlan(destination.plan(), destination.planner_config());
  EXPECT_TRUE(violations.empty()) << violations.front();

  // Oracle 2: span conservation across the drain. Every intended grid slot
  // was posted exactly once (downtime becomes catch-up latency, never a
  // dropped request), and the queue was fully drained before the transfer.
  const fleet::VmStream& stream = cluster.stream(0);
  EXPECT_EQ(stream.posted(), stream.next_k());
  EXPECT_LE(stream.completed(), stream.posted());
  EXPECT_GT(stream.completed(), config.min_requests_before_migration);

  // The migrated VM saw SLO pressure; the fleet summary reflects it.
  const fleet::Cluster::SloSummary slo = cluster.Slo();
  EXPECT_GT(slo.misses, 0u);
  EXPECT_LT(slo.worst_vm_attainment, 1.0);
}

TEST(FleetMigrationTest, MigrationIsDeterministicAcrossModes) {
  FleetScenarioConfig config = SmallFleet();
  config.arrival_spread = 0;
  config.num_vms = 6;
  config.surge_vms = 1;
  config.surge_at = 50 * kMillisecond;
  config.surge_factor = 10.0;
  config.min_requests_before_migration = 20;

  const FleetRun serial = RunFleet(config, 600 * kMillisecond);
  ASSERT_GE(serial.migrations, 1);

  FleetScenarioConfig parallel = config;
  parallel.sharded = true;
  parallel.parallel = true;
  parallel.num_threads = 2;
  const FleetRun threaded = RunFleet(parallel, 600 * kMillisecond);
  EXPECT_EQ(threaded.migrations, serial.migrations);
  EXPECT_EQ(threaded.fingerprint, serial.fingerprint);
  EXPECT_EQ(threaded.metrics_json, serial.metrics_json);
}

TEST(FleetHostTest, SlotPoolAdmitsAndRemoves) {
  fleet::HostConfig config;
  config.num_cpus = 4;
  config.cores_per_socket = 2;
  config.slots_per_core = 2;
  config.attach_telemetry = false;
  fleet::Host host(config);

  EXPECT_EQ(host.num_slots(), 8);
  EXPECT_EQ(host.free_slots(), 8);
  EXPECT_FALSE(host.plan().success);

  const int a = host.AdmitVm(0.25, 20 * kMillisecond);
  const int b = host.AdmitVm(0.5, 10 * kMillisecond);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(host.free_slots(), 6);
  EXPECT_DOUBLE_EQ(host.committed(), 0.75);
  ASSERT_TRUE(host.plan().success);
  EXPECT_EQ(host.plan().requests.size(), 2u);
  EXPECT_TRUE(
      check::VerifyPlan(host.plan(), host.planner_config()).empty());

  host.RemoveVm(a);
  EXPECT_EQ(host.free_slots(), 7);
  EXPECT_DOUBLE_EQ(host.committed(), 0.5);
  // The freed slot is the lowest again.
  EXPECT_EQ(host.AdmitVm(0.25, 20 * kMillisecond), 0);

  // Removing the last VMs resets to the empty table.
  host.RemoveVm(0);
  host.RemoveVm(b);
  EXPECT_FALSE(host.plan().success);
  EXPECT_EQ(host.free_slots(), 8);
  EXPECT_DOUBLE_EQ(host.committed(), 0.0);
}

}  // namespace
}  // namespace tableau
