#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/rt/hyperperiod.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/gang.h"

namespace tableau {
namespace {

struct GangRig {
  explicit GangRig(int cpus) {
    TableauDispatcher::Config config;
    config.work_conserving = false;
    auto owned = std::make_unique<TableauScheduler>(config);
    scheduler = owned.get();
    MachineConfig machine_config;
    machine_config.num_cpus = cpus;
    machine_config.cores_per_socket = cpus;
    machine = std::make_unique<Machine>(machine_config, std::move(owned));
  }
  std::unique_ptr<Machine> machine;
  TableauScheduler* scheduler;
};

TEST(Gang, PhasesCompleteOnDedicatedCores) {
  GangRig rig(2);
  std::vector<Vcpu*> members = {rig.machine->AddVcpu({}), rig.machine->AddVcpu({})};
  std::vector<std::vector<Allocation>> per_cpu = {{{0, 0, kHyperperiodNs}},
                                                  {{1, 0, kHyperperiodNs}}};
  rig.scheduler->PushTable(std::make_shared<SchedulingTable>(
      SchedulingTable::Build(kHyperperiodNs, std::move(per_cpu))));
  GangWorkload::Config config;
  config.phase_cpu = kMillisecond;
  config.barrier_overhead = 0 + 10 * kMicrosecond;
  GangWorkload gang(rig.machine.get(), members, config);
  gang.Start(0);
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  // ~1 ms + barrier per phase: close to 950+ phases.
  EXPECT_GT(gang.phases_completed(), 900u);
  EXPECT_LE(gang.phases_completed(), 1000u);
  // Both members did the same work.
  EXPECT_NEAR(static_cast<double>(members[0]->total_service()),
              static_cast<double>(members[1]->total_service()), 2.0 * kMillisecond);
}

TEST(Gang, SlowestMemberGatesThePhase) {
  // Member 1 only has a slot in the second half of each 10 ms round: the
  // gang completes ~1 phase per round even though member 0 has a full core.
  GangRig rig(2);
  std::vector<Vcpu*> members = {rig.machine->AddVcpu({}), rig.machine->AddVcpu({})};
  const TimeNs len = 10 * kMillisecond;
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, len}};
  per_cpu[1] = {{1, 8 * kMillisecond, len}};
  rig.scheduler->PushTable(std::make_shared<SchedulingTable>(
      SchedulingTable::Build(len, std::move(per_cpu))));
  GangWorkload::Config config;
  config.phase_cpu = kMillisecond;
  GangWorkload gang(rig.machine.get(), members, config);
  gang.Start(0);
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  // Member 1 can compute at most 2 ms per round => at most 2 phases/round,
  // and phase starts gate on the barrier: ~100-200 phases.
  EXPECT_GT(gang.phases_completed(), 80u);
  EXPECT_LT(gang.phases_completed(), 220u);
}

TEST(Gang, SingleMemberGangIsJustALoop) {
  GangRig rig(1);
  std::vector<Vcpu*> members = {rig.machine->AddVcpu({})};
  std::vector<std::vector<Allocation>> per_cpu = {{{0, 0, kHyperperiodNs}}};
  rig.scheduler->PushTable(std::make_shared<SchedulingTable>(
      SchedulingTable::Build(kHyperperiodNs, std::move(per_cpu))));
  GangWorkload::Config config;
  config.phase_cpu = 5 * kMillisecond;
  GangWorkload gang(rig.machine.get(), members, config);
  gang.Start(0);
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  EXPECT_GT(gang.phases_completed(), 190u);
  EXPECT_LE(gang.phases_completed(), 200u);
}

}  // namespace
}  // namespace tableau
