// Table-switch trace events: the dispatcher bumps a generation counter when
// a pushed table takes effect; the adapter turns that into a kTableSwitch
// trace record the first time any CPU observes the new table.
#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

std::shared_ptr<SchedulingTable> MakeTable(TimeNs length, VcpuId vcpu) {
  std::vector<std::vector<Allocation>> per_cpu = {{{vcpu, 0, length / 2}}};
  return std::make_shared<SchedulingTable>(
      SchedulingTable::Build(length, std::move(per_cpu)));
}

TEST(TableSwitchTrace, GenerationCountsInstalls) {
  TableauDispatcher dispatcher(1, TableauDispatcher::Config{});
  EXPECT_EQ(dispatcher.table_generation(), 0u);
  dispatcher.InstallTable(MakeTable(1000, 0), 0);
  EXPECT_EQ(dispatcher.table_generation(), 1u);
  dispatcher.InstallTable(MakeTable(1000, 1), 100);
  EXPECT_EQ(dispatcher.table_generation(), 1u);  // Pending, not yet promoted.
  dispatcher.ActiveTable(2000);
  EXPECT_EQ(dispatcher.table_generation(), 2u);
}

TEST(TableSwitchTrace, SwitchEventRecorded) {
  TableauDispatcher::Config config;
  config.work_conserving = false;
  auto owned = std::make_unique<TableauScheduler>(config);
  TableauScheduler* scheduler = owned.get();
  MachineConfig machine_config;
  machine_config.num_cpus = 1;
  machine_config.cores_per_socket = 1;
  Machine machine(machine_config, std::move(owned));
  machine.trace().set_enabled(true);
  Vcpu* vcpu = machine.AddVcpu(VcpuParams{});
  const TimeNs len = 10 * kMillisecond;
  scheduler->PushTable(MakeTable(len, 0));
  CpuHogWorkload hog(&machine, vcpu);
  hog.Start(0);
  machine.Start();
  machine.RunFor(50 * kMillisecond);

  // One switch event for the initial table.
  TraceBuffer::Filter filter;
  filter.event = TraceEvent::kTableSwitch;
  ASSERT_EQ(machine.trace().Query(filter).size(), 1u);

  // Push a new table: exactly one more switch event, at/after the boundary.
  scheduler->PushTable(MakeTable(len, 0));
  machine.RunFor(100 * kMillisecond);
  const auto events = machine.trace().Query(filter);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[1].time, 60 * kMillisecond);  // Two rounds after ~50 ms.
  EXPECT_EQ(events[1].arg, 2);
}

}  // namespace
}  // namespace tableau
