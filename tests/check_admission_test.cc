// Differential property test for the analytic admission ladder
// (src/rt/admission.h): on fuzzed uniprocessor task sets, the ladder's
// verdict must equal the exact EDF simulation's, and the analytic rungs must
// never contradict it (accept => simulation accepts; reject => simulation
// rejects). Any disagreement is greedily shrunk to a minimal task set and
// printed as a reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/rt/admission.h"
#include "src/rt/edf_sim.h"
#include "src/rt/periodic_task.h"

namespace tableau {
namespace {

// Small, highly divisible hyperperiod so each EDF simulation is cheap and the
// sweep can afford thousands of sets. 55440 = 2^4 * 3^2 * 5 * 7 * 11.
constexpr TimeNs kFuzzHyperperiod = 55440;
constexpr int kFuzzSets = 4000;

std::vector<TimeNs> DivisorsOf(TimeNs h, TimeNs min_divisor) {
  std::vector<TimeNs> divisors;
  for (TimeNs d = min_divisor; d <= h; ++d) {
    if (h % d == 0) {
      divisors.push_back(d);
    }
  }
  return divisors;
}

// One fuzzed task set: mixed implicit / constrained-deadline / offset tasks
// over divisor periods, with total utilization biased into [0.7, 1.1] so the
// sweep concentrates near the schedulability boundary.
std::vector<PeriodicTask> FuzzTaskSet(Rng& rng, const std::vector<TimeNs>& periods) {
  const int n = static_cast<int>(rng.UniformInt(1, 6));
  const double target_util = rng.UniformDouble(0.7, 1.1);
  std::vector<PeriodicTask> tasks;
  for (int i = 0; i < n; ++i) {
    PeriodicTask task;
    task.vcpu = i;
    task.period = periods[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(periods.size()) - 1))];
    const double share = target_util / n * rng.UniformDouble(0.5, 1.5);
    task.cost = std::max<TimeNs>(
        1, static_cast<TimeNs>(share * static_cast<double>(task.period)));
    task.cost = std::min(task.cost, task.period);
    switch (rng.UniformInt(0, 2)) {
      case 0:  // Implicit deadline.
        task.deadline = task.period;
        task.offset = 0;
        break;
      case 1:  // Constrained deadline, synchronous release.
        task.deadline = rng.UniformInt(task.cost, task.period);
        task.offset = 0;
        break;
      default:  // Release offset; D <= T - offset (the C=D piece shape).
        task.offset = rng.UniformInt(0, task.period - task.cost);
        task.deadline = rng.UniformInt(task.cost, task.period - task.offset);
        break;
    }
    tasks.push_back(task);
  }
  return tasks;
}

std::string FormatTaskSet(const std::vector<PeriodicTask>& tasks) {
  std::ostringstream out;
  out << "hyperperiod=" << kFuzzHyperperiod << "\n";
  for (const PeriodicTask& t : tasks) {
    out << "  task vcpu=" << t.vcpu << " C=" << t.cost << " T=" << t.period
        << " D=" << t.deadline << " offset=" << t.offset << "\n";
  }
  return out.str();
}

// True when the ladder and the exact simulation disagree on `tasks`.
bool Disagrees(const std::vector<PeriodicTask>& tasks) {
  const bool exact = EdfSchedulable(tasks, kFuzzHyperperiod);
  return AdmitCore(tasks, kFuzzHyperperiod).schedulable != exact;
}

// Greedy delta-debugging: repeatedly drop any task whose removal preserves
// the disagreement, until no single removal does.
std::vector<PeriodicTask> Shrink(std::vector<PeriodicTask> tasks) {
  bool shrunk = true;
  while (shrunk && tasks.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      std::vector<PeriodicTask> without = tasks;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      if (Disagrees(without)) {
        tasks = std::move(without);
        shrunk = true;
        break;
      }
    }
  }
  return tasks;
}

TEST(AdmissionDifferential, LadderVerdictMatchesEdfSimulation) {
  const std::vector<TimeNs> periods = DivisorsOf(kFuzzHyperperiod, 8);
  ASSERT_FALSE(periods.empty());
  Rng rng(0xad1155u);
  AdmissionTally tally;
  for (int set = 0; set < kFuzzSets; ++set) {
    const std::vector<PeriodicTask> tasks = FuzzTaskSet(rng, periods);
    const bool exact = EdfSchedulable(tasks, kFuzzHyperperiod);
    const AdmissionDecision decision = AdmitCore(tasks, kFuzzHyperperiod, &tally);
    if (decision.schedulable != exact) {
      const std::vector<PeriodicTask> minimal = Shrink(tasks);
      FAIL() << "ladder said " << (decision.schedulable ? "schedulable" : "unschedulable")
             << " at rung " << AdmissionRungName(decision.rung) << ", simulation says "
             << (exact ? "schedulable" : "unschedulable") << " (set " << set
             << ")\nshrunk reproducer:\n"
             << FormatTaskSet(minimal);
    }
    // The analytic rungs alone must never contradict the simulation either.
    if (const std::optional<AdmissionDecision> analytic =
            AdmitCoreAnalytic(tasks, kFuzzHyperperiod)) {
      ASSERT_EQ(analytic->schedulable, exact)
          << "analytic rung " << AdmissionRungName(analytic->rung)
          << " contradicts the simulation\n"
          << FormatTaskSet(Shrink(tasks));
      ASSERT_NE(analytic->rung, AdmissionRung::kSimulation);
    }
  }
  // The sweep must exercise the whole ladder: every rung decides some sets,
  // and the analytic rungs together resolve a solid majority.
  const std::int64_t analytic = tally.Count(AdmissionRung::kUtilization) +
                                tally.Count(AdmissionRung::kDensity) +
                                tally.Count(AdmissionRung::kQpa);
  EXPECT_GT(tally.Count(AdmissionRung::kUtilization), 0);
  EXPECT_GT(tally.Count(AdmissionRung::kDensity), 0);
  EXPECT_GT(tally.Count(AdmissionRung::kQpa), 0);
  EXPECT_GT(tally.Count(AdmissionRung::kSimulation), 0);
  EXPECT_GT(analytic, kFuzzSets / 2);
}

// The empty set is trivially schedulable and must not reach the simulator.
TEST(AdmissionDifferential, EmptySetDecidedAnalytically) {
  AdmissionTally tally;
  const AdmissionDecision decision = AdmitCore({}, kFuzzHyperperiod, &tally);
  EXPECT_TRUE(decision.schedulable);
  EXPECT_EQ(decision.rung, AdmissionRung::kUtilization);
  EXPECT_EQ(tally.Count(AdmissionRung::kSimulation), 0);
}

}  // namespace
}  // namespace tableau
