// Linked into the planner-facing test binaries: installs the TableVerifier
// audit hook before any test runs, so every table the planner emits anywhere
// in the suite is independently re-verified (and the process aborts with a
// violation report if one fails the reservation contract).
#include <gtest/gtest.h>

#include "src/check/table_verifier.h"

namespace tableau::check {
namespace {

class PlannerVerifyEnv : public ::testing::Environment {
 public:
  void SetUp() override { InstallPlannerVerification(); }
};

const ::testing::Environment* const kPlannerVerifyEnv =
    ::testing::AddGlobalTestEnvironment(new PlannerVerifyEnv);

}  // namespace
}  // namespace tableau::check
