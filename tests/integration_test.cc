// End-to-end scenario tests: the paper's high-density configuration
// (4 single-vCPU VMs per core) under all four schedulers, capped and
// uncapped, with the paper's workloads driving real scheduler decisions.
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/scenario.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"
#include "src/workloads/stress.h"
#include "src/workloads/web.h"

namespace tableau {
namespace {

// Small machine (4 guest cores, 16 VMs) to keep tests fast.
ScenarioConfig SmallConfig(SchedKind kind, bool capped) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  config.capped = capped;
  return config;
}

void AttachStress(Scenario& scenario, std::vector<std::unique_ptr<StressIoWorkload>>& out,
                  std::size_t first_vcpu) {
  for (std::size_t i = first_vcpu; i < scenario.vcpus.size(); ++i) {
    StressIoWorkload::Config config;
    config.seed = i + 1;
    out.push_back(std::make_unique<StressIoWorkload>(scenario.machine,
                                                     scenario.vcpus[i], config));
    out.back()->Start(0);
  }
}

double Share(const Vcpu* vcpu, TimeNs duration) {
  return static_cast<double>(vcpu->total_service()) / static_cast<double>(duration);
}

struct SchedulerCase {
  SchedKind kind;
  bool capped;
};

class AllSchedulers : public ::testing::TestWithParam<SchedulerCase> {};

TEST_P(AllSchedulers, HighDensityStressRunsToCompletion) {
  const SchedulerCase param = GetParam();
  Scenario scenario = BuildScenario(SmallConfig(param.kind, param.capped));
  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  AttachStress(scenario, stress, 0);
  scenario.machine->Start();
  scenario.machine->RunFor(2 * kSecond);
  // Sanity: every VM made progress and no CPU exceeded wall time.
  for (const Vcpu* vcpu : scenario.vcpus) {
    EXPECT_GT(vcpu->total_service(), 50 * kMillisecond) << vcpu->id();
  }
  for (int cpu = 0; cpu < scenario.machine->num_cpus(); ++cpu) {
    EXPECT_LE(scenario.machine->cpu_busy_ns(cpu) + scenario.machine->cpu_overhead_ns(cpu),
              2 * kSecond + kMillisecond);
  }
  EXPECT_GT(scenario.machine->op_stats().Of(SchedOp::kSchedule).Count(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllSchedulers,
    ::testing::Values(SchedulerCase{SchedKind::kCredit, true},
                      SchedulerCase{SchedKind::kCredit, false},
                      SchedulerCase{SchedKind::kCredit2, false},
                      SchedulerCase{SchedKind::kRtds, true},
                      SchedulerCase{SchedKind::kTableau, true},
                      SchedulerCase{SchedKind::kTableau, false}),
    [](const ::testing::TestParamInfo<SchedulerCase>& info) {
      return std::string(SchedKindName(info.param.kind)) +
             (info.param.capped ? "Capped" : "Uncapped");
    });

TEST(Integration, TableauCappedVantageBoundedDelayUnderIoStress) {
  // Fig. 5(a): Tableau always shows ~10 ms max intrinsic delay, regardless
  // of background workload.
  Scenario scenario = BuildScenario(SmallConfig(SchedKind::kTableau, /*capped=*/true));
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload vantage_loop(scenario.machine, scenario.vantage);
  vantage_loop.Start(0);
  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  AttachStress(scenario, stress, 1);
  scenario.machine->Start();
  scenario.machine->RunFor(5 * kSecond);
  const TimeNs bound = scenario.plan.vcpus[0].blackout_bound;
  EXPECT_LE(scenario.vantage->service_gaps().Max(), bound);
  // And the vantage VM received its full 25% reservation.
  EXPECT_GE(Share(scenario.vantage, 5 * kSecond), 0.249);
}

TEST(Integration, TableauUncappedVantageUsesSecondLevel) {
  // Sec. 7.4: ">85% of the scheduling decisions resulting in the vantage
  // VM's execution were made by the level-2 round-robin scheduler" when the
  // vantage VM is busy and background VMs block frequently.
  Scenario scenario = BuildScenario(SmallConfig(SchedKind::kTableau, /*capped=*/false));
  CpuHogWorkload vantage_loop(scenario.machine, scenario.vantage);
  vantage_loop.Start(0);
  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  AttachStress(scenario, stress, 1);
  scenario.machine->Start();
  scenario.machine->RunFor(3 * kSecond);
  EXPECT_GT(scenario.machine->SecondLevelFraction(scenario.vantage->id()), 0.5);
  // Work conservation: the vantage VM exceeds its 25% reservation.
  EXPECT_GT(Share(scenario.vantage, 3 * kSecond), 0.3);
}

TEST(Integration, CreditCappedDelaysExceedTableau) {
  // Fig. 5(a): Credit's capped delays reach tens of ms; Tableau stays at
  // the table gap (~10 ms).
  TimeNs max_gap[2];
  int index = 0;
  for (const SchedKind kind : {SchedKind::kCredit, SchedKind::kTableau}) {
    Scenario scenario = BuildScenario(SmallConfig(kind, /*capped=*/true));
    scenario.vantage->EnableInstrumentation();
    CpuHogWorkload vantage_loop(scenario.machine, scenario.vantage);
    vantage_loop.Start(0);
    std::vector<std::unique_ptr<StressIoWorkload>> stress;
    AttachStress(scenario, stress, 1);
    scenario.machine->Start();
    scenario.machine->RunFor(5 * kSecond);
    max_gap[index++] = scenario.vantage->service_gaps().Max();
  }
  EXPECT_GT(max_gap[0], max_gap[1]);
}

TEST(Integration, TableauSchedulerOverheadLowestUnderIoStress) {
  // Table 1's ordering for the schedule op at the paper's 16-core scale
  // (Credit's work-stealing scans and RTDS's global lock only get expensive
  // with enough cores): Tableau < RTDS < Credit.
  double schedule_cost[3];
  int index = 0;
  for (const SchedKind kind : {SchedKind::kTableau, SchedKind::kRtds, SchedKind::kCredit}) {
    ScenarioConfig config;
    config.scheduler = kind;
    config.capped = true;  // 12 guest cores, 48 VMs.
    Scenario scenario = BuildScenario(config);
    std::vector<std::unique_ptr<StressIoWorkload>> stress;
    AttachStress(scenario, stress, 0);
    scenario.machine->Start();
    scenario.machine->RunFor(2 * kSecond);
    schedule_cost[index++] = scenario.machine->op_stats().Of(SchedOp::kSchedule).Mean();
  }
  EXPECT_LT(schedule_cost[0], schedule_cost[1]);  // Tableau < RTDS.
  EXPECT_LT(schedule_cost[1], schedule_cost[2]);  // RTDS < Credit.
}

TEST(Integration, PingLatencyCappedScenario) {
  // Fig. 6(d), no-background case: every VM occasionally needs CPU for
  // system processes, so under Credit the capped vantage VM can exhaust its
  // credit and wait out the other VMs (paper: up to 15 ms even without a
  // benchmark running); under Tableau the RTT never exceeds the table
  // structure (~10 ms for this config).
  TimeNs max_rtt_tableau = 0;
  TimeNs max_rtt_credit = 0;
  for (const SchedKind kind : {SchedKind::kTableau, SchedKind::kCredit}) {
    Scenario scenario = BuildScenario(SmallConfig(kind, /*capped=*/true));
    std::vector<std::unique_ptr<WorkQueueGuest>> guests;
    std::vector<std::unique_ptr<SystemNoiseWorkload>> noise;
    for (std::size_t i = 0; i < scenario.vcpus.size(); ++i) {
      guests.push_back(std::make_unique<WorkQueueGuest>(scenario.machine,
                                                        scenario.vcpus[i]));
      SystemNoiseWorkload::Config noise_config;
      noise_config.min_interval = 20 * kMillisecond;
      noise_config.max_interval = 60 * kMillisecond;
      noise_config.min_burst = 2 * kMillisecond;
      noise_config.max_burst = 6 * kMillisecond;
      noise_config.seed = i + 1;
      noise.push_back(std::make_unique<SystemNoiseWorkload>(
          scenario.machine, guests.back().get(), noise_config));
      noise.back()->Start(0);
    }
    PingTraffic::Config ping_config;
    ping_config.threads = 4;
    ping_config.pings_per_thread = 500;
    ping_config.max_spacing = 10 * kMillisecond;
    PingTraffic ping(scenario.machine, guests.front().get(), ping_config);
    ping.Start(0);
    scenario.machine->Start();
    scenario.machine->RunFor(8 * kSecond);
    EXPECT_EQ(ping.latencies().Count(), 2000u) << SchedKindName(kind);
    if (kind == SchedKind::kTableau) {
      max_rtt_tableau = ping.latencies().Max();
    } else {
      max_rtt_credit = ping.latencies().Max();
    }
  }
  EXPECT_LE(max_rtt_tableau, 11 * kMillisecond);
  EXPECT_GT(max_rtt_credit, max_rtt_tableau);
}

TEST(Integration, WebServerSlaThroughputTableauVsRtds) {
  // Fig. 7(b): at the paper's scale (48 VMs on 12 cores, I/O background
  // stress), the highest request rate whose p99 stays under the 100 ms SLA
  // is higher for Tableau than for RTDS, whose global-lock overhead eats
  // guest cycles.
  const std::vector<double> rates = {1500, 1600, 1650};
  double peak[2] = {0, 0};
  int index = 0;
  for (const SchedKind kind : {SchedKind::kTableau, SchedKind::kRtds}) {
    for (const double rate : rates) {
      ScenarioConfig config;
      config.scheduler = kind;
      config.capped = true;
      Scenario scenario = BuildScenario(config);
      WebServerWorkload::Config web_config;
      web_config.file_bytes = 1024;
      WebServerWorkload server(scenario.machine, scenario.vantage, web_config);
      OpenLoopClient::Config client_config;
      client_config.requests_per_sec = rate;
      client_config.duration = 3 * kSecond;
      OpenLoopClient client(scenario.machine, &server, client_config);
      client.Start(0);
      std::vector<std::unique_ptr<StressIoWorkload>> stress;
      AttachStress(scenario, stress, 1);
      scenario.machine->Start();
      scenario.machine->RunFor(3 * kSecond);
      const double throughput = static_cast<double>(server.completed()) / 3.0;
      if (server.latencies().Percentile(0.99) <
              static_cast<TimeNs>(100 * kMillisecond) &&
          throughput > peak[index]) {
        peak[index] = throughput;
      }
    }
    ++index;
  }
  EXPECT_GT(peak[0], 0);
  EXPECT_GT(peak[0], peak[1]);  // Tableau's SLA-aware peak beats RTDS's.
}

TEST(Integration, CappedSharesMatchReservationAcrossSchedulers) {
  // All three capped schedulers must deliver ~25% to every CPU-bound VM.
  for (const SchedKind kind : {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}) {
    Scenario scenario = BuildScenario(SmallConfig(kind, /*capped=*/true));
    std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
    for (Vcpu* vcpu : scenario.vcpus) {
      hogs.push_back(std::make_unique<CpuHogWorkload>(scenario.machine, vcpu));
      hogs.back()->Start(0);
    }
    scenario.machine->Start();
    scenario.machine->RunFor(3 * kSecond);
    for (const Vcpu* vcpu : scenario.vcpus) {
      EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.04)
          << SchedKindName(kind) << " vcpu " << vcpu->id();
    }
  }
}

TEST(Integration, UncappedWorkConservationAcrossSchedulers) {
  // One busy VM on an otherwise idle uncapped machine gets nearly a full
  // core under every uncapped scheduler.
  for (const SchedKind kind :
       {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}) {
    Scenario scenario = BuildScenario(SmallConfig(kind, /*capped=*/false));
    CpuHogWorkload hog(scenario.machine, scenario.vantage);
    hog.Start(0);
    scenario.machine->Start();
    scenario.machine->RunFor(2 * kSecond);
    EXPECT_GT(Share(scenario.vantage, 2 * kSecond), 0.9) << SchedKindName(kind);
  }
}

TEST(Integration, PaperScale48VmsOn12Cores) {
  // The full paper configuration at shortened duration: a smoke test that
  // the 16-core (12 guest cores) setup runs under every scheduler.
  for (const SchedKind kind : {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}) {
    ScenarioConfig config;
    config.scheduler = kind;
    config.capped = true;
    Scenario scenario = BuildScenario(config);
    ASSERT_EQ(scenario.vcpus.size(), 48u);
    std::vector<std::unique_ptr<StressIoWorkload>> stress;
    AttachStress(scenario, stress, 0);
    scenario.machine->Start();
    scenario.machine->RunFor(kSecond);
    TimeNs total_service = 0;
    for (const Vcpu* vcpu : scenario.vcpus) {
      total_service += vcpu->total_service();
    }
    // 48 VMs with ~15% I/O duty each, capped at 25%. Credit and RTDS serve
    // a VM whenever it is runnable, so total service approaches the duty
    // demand (~7.2 core-seconds). Capped Tableau confines each VM to its
    // table slots and time blocked inside a slot is lost (the Sec. 7.5
    // capped-I/O inefficiency), so its total is markedly lower.
    if (kind == SchedKind::kTableau) {
      EXPECT_GT(total_service, kSecond) << SchedKindName(kind);
      EXPECT_LT(total_service, 5 * kSecond) << SchedKindName(kind);
    } else {
      EXPECT_GT(total_service, 6 * kSecond) << SchedKindName(kind);
    }
  }
}

}  // namespace
}  // namespace tableau
