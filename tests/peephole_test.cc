#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/peephole.h"
#include "src/core/planner.h"
#include "src/rt/edf_sim.h"
#include "src/rt/hyperperiod.h"

namespace tableau {
namespace {

TEST(Peephole, MergesFragmentedJob) {
  // Task 0's job is served in two fragments around task 1 — all inside both
  // tasks' first window. A-B-A must become a merged A run plus B.
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 40, 100),
                                     PeriodicTask::Implicit(1, 30, 100)};
  std::vector<Allocation> allocations = {{0, 0, 20}, {1, 20, 50}, {0, 50, 70}};
  const PeepholeStats stats = PeepholeOptimizeCore(allocations, tasks);
  EXPECT_EQ(stats.allocations_before, 3);
  EXPECT_EQ(stats.allocations_after, 2);
  EXPECT_GE(stats.swaps, 1);
  EXPECT_TRUE(ServicePerWindowPreserved(allocations, tasks, 100));
  // Non-overlapping, ordered.
  for (std::size_t i = 1; i < allocations.size(); ++i) {
    EXPECT_GE(allocations[i].start, allocations[i - 1].end);
  }
}

TEST(Peephole, RefusesSwapAcrossDeadline) {
  // The A-B-A triple [30,50) B[50,70) A[70,120): pushing B later lands it at
  // [100,120), past its own window [50,100); pulling it earlier lands it at
  // [30,50), before its release at 50. Both directions are illegal, so the
  // pattern must survive untouched.
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 70, 200),
                                     PeriodicTask::Implicit(1, 20, 50)};
  std::vector<Allocation> allocations = {{1, 0, 20},    {0, 30, 50},  {1, 50, 70},
                                         {0, 70, 120},  {1, 120, 140}, {1, 150, 170}};
  ASSERT_TRUE(ServicePerWindowPreserved(allocations, tasks, 200));
  const PeepholeStats stats = PeepholeOptimizeCore(allocations, tasks);
  EXPECT_EQ(stats.swaps, 0);
  EXPECT_EQ(stats.allocations_after, 6);
  EXPECT_TRUE(ServicePerWindowPreserved(allocations, tasks, 200));
}

TEST(Peephole, NoChangeWhenNothingToGain) {
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 50, 100),
                                     PeriodicTask::Implicit(1, 50, 100)};
  std::vector<Allocation> allocations = {{0, 0, 50}, {1, 50, 100}};
  const PeepholeStats stats = PeepholeOptimizeCore(allocations, tasks);
  EXPECT_EQ(stats.swaps, 0);
  EXPECT_EQ(stats.allocations_after, 2);
}

TEST(Peephole, DoesNotMoveBoundarySpanningRun) {
  // A merged allocation of task 0 spanning its own period boundary (job k
  // ends exactly where job k+1 starts) must never be relocated.
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 50, 100),
                                     PeriodicTask::Implicit(1, 40, 200)};
  // Task 0: [60,100) of job 0 merged with [100,140) of job 1.
  std::vector<Allocation> allocations = {
      {0, 0, 10}, {1, 10, 50}, {0, 60, 140}, {0, 150, 160}};
  PeepholeOptimizeCore(allocations, tasks);
  EXPECT_TRUE(ServicePerWindowPreserved(allocations, tasks, 200));
}

TEST(Peephole, RandomizedEdfTablesStayCorrect) {
  // Run the pass over real EDF-generated tables and verify it never breaks
  // the per-window service property and never increases fragmentation.
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<PeriodicTask> tasks;
    const std::vector<TimeNs> periods = {100, 200, 300, 400, 600, 1200};
    TimeNs demand = 0;
    int id = 0;
    while (id < 6) {
      const TimeNs period = periods[static_cast<std::size_t>(rng.UniformInt(0, 5))];
      const TimeNs cost = rng.UniformInt(5, period / 2);
      if (demand + cost * (1200 / period) > 1200) {
        break;
      }
      demand += cost * (1200 / period);
      tasks.push_back(PeriodicTask::Implicit(id++, cost, period));
    }
    if (tasks.empty()) {
      continue;
    }
    EdfSimResult sim = SimulateEdf(tasks, 1200);
    ASSERT_TRUE(sim.schedulable);
    ASSERT_TRUE(ServicePerWindowPreserved(sim.allocations, tasks, 1200));
    std::vector<Allocation> optimized = sim.allocations;
    const PeepholeStats stats = PeepholeOptimizeCore(optimized, tasks);
    EXPECT_TRUE(ServicePerWindowPreserved(optimized, tasks, 1200)) << "trial " << trial;
    EXPECT_LE(stats.allocations_after, stats.allocations_before) << "trial " << trial;
    TimeNs prev_end = 0;
    for (const Allocation& alloc : optimized) {
      EXPECT_GE(alloc.start, prev_end) << "trial " << trial;
      prev_end = alloc.end;
    }
  }
}

TEST(Peephole, PlannerIntegrationReducesAllocations) {
  // A mixed-tier workload fragments heavily; the pass must shrink the table
  // without violating any guarantee.
  std::vector<VcpuRequest> requests;
  int id = 0;
  for (int i = 0; i < 2; ++i) {
    requests.push_back({id++, 0.5, 10 * kMillisecond});
  }
  for (int i = 0; i < 4; ++i) {
    requests.push_back({id++, 0.25, 30 * kMillisecond});
  }
  for (int i = 0; i < 6; ++i) {
    requests.push_back({id++, 0.10, 100 * kMillisecond});
  }

  PlannerConfig plain_config;
  plain_config.num_cpus = 4;
  const PlanResult plain = Planner(plain_config).Plan(requests);
  ASSERT_TRUE(plain.success);

  PlannerConfig optimized_config = plain_config;
  optimized_config.peephole_pass = true;
  const PlanResult optimized = Planner(optimized_config).Plan(requests);
  ASSERT_TRUE(optimized.success);
  ASSERT_EQ(optimized.table.Validate(), "");

  std::size_t plain_allocs = 0;
  std::size_t optimized_allocs = 0;
  for (int c = 0; c < 4; ++c) {
    plain_allocs += plain.table.cpu(c).allocations.size();
    optimized_allocs += optimized.table.cpu(c).allocations.size();
  }
  EXPECT_LT(optimized_allocs, plain_allocs);

  for (const VcpuPlan& vcpu : optimized.vcpus) {
    const double donated = static_cast<double>(vcpu.donated_ns) /
                           static_cast<double>(optimized.table.length());
    EXPECT_GE(static_cast<double>(optimized.table.TotalService(vcpu.vcpu)) /
                  static_cast<double>(optimized.table.length()),
              vcpu.requested_utilization - donated - 1e-6)
        << vcpu.vcpu;
    EXPECT_LE(optimized.table.MaxBlackout(vcpu.vcpu), vcpu.blackout_bound) << vcpu.vcpu;
  }
}

TEST(Peephole, SkipsCoresWithSplitPieces) {
  std::vector<std::vector<PeriodicTask>> core_tasks(1);
  PeriodicTask piece;
  piece.vcpu = 0;
  piece.cost = 30;
  piece.period = 100;
  piece.deadline = 30;  // Zero-laxity C=D piece.
  piece.offset = 0;
  core_tasks[0] = {piece, PeriodicTask::Implicit(1, 20, 100)};
  std::vector<std::vector<Allocation>> per_core = {
      {{0, 0, 30}, {1, 30, 40}, {0, 100, 130}}};
  const auto before = per_core[0];
  PeepholeOptimize(per_core, core_tasks);
  EXPECT_EQ(per_core[0], before);
}

}  // namespace
}  // namespace tableau
