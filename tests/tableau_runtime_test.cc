// Runtime tests for the Tableau scheduler adapter: split-vCPU hand-off
// (Sec. 6 "Cross-core migrations"), live table switches, wake-up IPI
// targeting, and the trailing-core second level — all executed on the
// simulated machine (the machine aborts if any scheduler ever runs one vCPU
// on two cores at once, so these tests double as race checks).
#include <gtest/gtest.h>

#include <memory>

#include "src/core/planner.h"
#include "src/rt/dpfair.h"
#include "src/hypervisor/machine.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

std::shared_ptr<SchedulingTable> MakeTable(TimeNs length,
                                           std::vector<std::vector<Allocation>> per_cpu) {
  return std::make_shared<SchedulingTable>(
      SchedulingTable::Build(length, std::move(per_cpu)));
}

struct Rig {
  Rig(int cpus, TableauDispatcher::Config config) {
    auto owned = std::make_unique<TableauScheduler>(config);
    scheduler = owned.get();
    MachineConfig machine_config;
    machine_config.num_cpus = cpus;
    machine_config.cores_per_socket = cpus;
    machine = std::make_unique<Machine>(machine_config, std::move(owned));
  }
  std::unique_ptr<Machine> machine;
  TableauScheduler* scheduler;
};

double Share(const Vcpu* vcpu, TimeNs duration) {
  return static_cast<double>(vcpu->total_service()) / static_cast<double>(duration);
}

TEST(TableauRuntime, BackToBackSplitAllocationsHandOffSafely) {
  // vCPU 0's allocation on cpu1 begins exactly when its allocation on cpu0
  // ends, every 10 ms — the hand-off race of Sec. 6. The machine CHECKs
  // against concurrent execution; the vCPU must still receive its full 40%.
  TableauDispatcher::Config config;
  config.work_conserving = false;
  Rig rig(2, config);
  Vcpu* split = rig.machine->AddVcpu(VcpuParams{});
  Vcpu* other = rig.machine->AddVcpu(VcpuParams{});
  const TimeNs period = 10 * kMillisecond;
  std::vector<std::vector<Allocation>> per_cpu(2);
  for (TimeNs t = 0; t < 100 * kMillisecond; t += period) {
    per_cpu[0].push_back({0, t, t + period / 5});
    per_cpu[1].push_back({0, t + period / 5, t + 2 * period / 5});
    per_cpu[1].push_back({1, t + 2 * period / 5, t + 3 * period / 5});
  }
  rig.scheduler->PushTable(MakeTable(100 * kMillisecond, std::move(per_cpu)));

  CpuHogWorkload hog_a(rig.machine.get(), split);
  CpuHogWorkload hog_b(rig.machine.get(), other);
  hog_a.Start(0);
  hog_b.Start(0);
  rig.machine->Start();
  rig.machine->RunFor(2 * kSecond);
  EXPECT_NEAR(Share(split, 2 * kSecond), 0.4, 0.02);
  EXPECT_NEAR(Share(other, 2 * kSecond), 0.2, 0.02);
}

TEST(TableauRuntime, SplitVcpuNeverRunsConcurrently) {
  // Planner-produced semi-partitioned table under live load: the machine's
  // internal CHECK would abort on any dual dispatch.
  TableauDispatcher::Config config;
  config.work_conserving = false;
  Rig rig(2, config);
  std::vector<VcpuRequest> requests = {{0, 0.6, 40 * kMillisecond},
                                       {1, 0.6, 40 * kMillisecond},
                                       {2, 0.6, 40 * kMillisecond}};
  PlannerConfig planner_config;
  planner_config.num_cpus = 2;
  PlanResult plan = Planner(planner_config).Plan(requests);
  ASSERT_TRUE(plan.success);

  std::vector<std::unique_ptr<Vcpu>> dummy;
  std::vector<Vcpu*> vcpus;
  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  for (int i = 0; i < 3; ++i) {
    VcpuParams params;
    params.cap = 0.6;
    vcpus.push_back(rig.machine->AddVcpu(params));
    StressIoWorkload::Config stress_config = StressIoWorkload::Config::Heavy();
    stress_config.seed = static_cast<std::uint64_t>(i) + 1;
    stress.push_back(std::make_unique<StressIoWorkload>(rig.machine.get(), vcpus.back(),
                                                        stress_config));
    stress.back()->Start(0);
  }
  rig.scheduler->PushTable(std::make_shared<SchedulingTable>(plan.table));
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  for (const Vcpu* vcpu : vcpus) {
    EXPECT_GT(vcpu->total_service(), 500 * kMillisecond) << vcpu->id();
  }
}

TEST(TableauRuntime, DpFairClusterTableRunsWithExactShares) {
  // A DP-Fair cluster schedule migrates vCPUs at every frame boundary, with
  // back-to-back cross-core allocations — the harshest workout for the
  // ownership hand-off. Three 2/3-utilization vCPUs on two cores cannot be
  // partitioned at all, so this table only exists thanks to the cluster
  // stage; shares must come out exact and the machine's no-dual-dispatch
  // CHECKs must hold throughout.
  const TimeNs h = 12 * kMillisecond;
  std::vector<PeriodicTask> tasks = {
      PeriodicTask::Implicit(0, 2 * kMillisecond, 3 * kMillisecond),
      PeriodicTask::Implicit(1, 2 * kMillisecond, 3 * kMillisecond),
      PeriodicTask::Implicit(2, 2 * kMillisecond, 3 * kMillisecond)};
  const ClusterScheduleResult cluster = DpFairSchedule(tasks, 2, h);
  ASSERT_TRUE(cluster.success);
  std::vector<std::vector<Allocation>> per_core = cluster.core_allocations;
  SchedulingTable table = SchedulingTable::Build(h, std::move(per_core));
  ASSERT_EQ(table.Validate(), "");

  TableauDispatcher::Config config;
  config.work_conserving = false;
  Rig rig(2, config);
  std::vector<Vcpu*> vcpus;
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
  for (int i = 0; i < 3; ++i) {
    vcpus.push_back(rig.machine->AddVcpu(VcpuParams{}));
    hogs.push_back(std::make_unique<CpuHogWorkload>(rig.machine.get(), vcpus.back()));
    hogs.back()->Start(0);
  }
  rig.scheduler->PushTable(std::make_shared<SchedulingTable>(std::move(table)));
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  for (const Vcpu* vcpu : vcpus) {
    // 2/3 share each, minus hand-off/context-switch overhead.
    EXPECT_NEAR(Share(vcpu, 3 * kSecond), 2.0 / 3, 0.03) << vcpu->id();
  }
  // Frequent migrations actually happened.
  EXPECT_GT(rig.machine->context_switches(), 3000u);
}

TEST(TableauRuntime, LiveTableSwitchShiftsShares) {
  TableauDispatcher::Config config;
  config.work_conserving = false;
  Rig rig(1, config);
  Vcpu* a = rig.machine->AddVcpu(VcpuParams{});
  Vcpu* b = rig.machine->AddVcpu(VcpuParams{});
  const TimeNs len = 10 * kMillisecond;
  rig.scheduler->PushTable(
      MakeTable(len, {{{0, 0, 8 * kMillisecond}, {1, 8 * kMillisecond, len}}}));
  CpuHogWorkload hog_a(rig.machine.get(), a);
  CpuHogWorkload hog_b(rig.machine.get(), b);
  hog_a.Start(0);
  hog_b.Start(0);
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  EXPECT_NEAR(Share(a, kSecond), 0.8, 0.02);

  // Invert the shares at runtime; switch lands at the second wrap.
  rig.scheduler->PushTable(
      MakeTable(len, {{{0, 0, 2 * kMillisecond}, {1, 2 * kMillisecond, len}}}));
  const TimeNs a_before = a->total_service();
  const TimeNs b_before = b->total_service();
  rig.machine->RunFor(kSecond);
  const double a_share =
      static_cast<double>(a->total_service() - a_before) / static_cast<double>(kSecond);
  const double b_share =
      static_cast<double>(b->total_service() - b_before) / static_cast<double>(kSecond);
  // One window (<= 2 table rounds = 20 ms) still ran on the old table.
  EXPECT_NEAR(a_share, 0.2, 0.03);
  EXPECT_NEAR(b_share, 0.8, 0.03);
}

TEST(TableauRuntime, TrailingCoreSecondLevelGivesSplitVcpuIdleCycles) {
  // A split vCPU with split participation enabled can use idle cycles on
  // its trailing core; with it disabled (prototype behaviour) it cannot.
  for (const bool participate : {false, true}) {
    TableauDispatcher::Config config;
    config.work_conserving = true;
    config.split_participation = participate;
    Rig rig(2, config);
    Vcpu* split = rig.machine->AddVcpu(VcpuParams{});
    const TimeNs len = 20 * kMillisecond;
    // 25% on cpu0 + 25% on cpu1; the rest of both cores idle.
    std::vector<std::vector<Allocation>> per_cpu(2);
    per_cpu[0].push_back({0, 0, 5 * kMillisecond});
    per_cpu[1].push_back({0, 5 * kMillisecond, 10 * kMillisecond});
    rig.scheduler->PushTable(MakeTable(len, std::move(per_cpu)));
    CpuHogWorkload hog(rig.machine.get(), split);
    hog.Start(0);
    rig.machine->Start();
    rig.machine->RunFor(2 * kSecond);
    if (participate) {
      // Table slots (50%) plus second-level time on the trailing core.
      EXPECT_GT(Share(split, 2 * kSecond), 0.8);
    } else {
      EXPECT_NEAR(Share(split, 2 * kSecond), 0.5, 0.02);
    }
  }
}

TEST(TableauRuntime, WakeupDuringOwnSlotIsDispatchedPromptly) {
  TableauDispatcher::Config config;
  config.work_conserving = false;
  Rig rig(1, config);
  Vcpu* vcpu = rig.machine->AddVcpu(VcpuParams{});
  vcpu->EnableInstrumentation();
  const TimeNs len = 10 * kMillisecond;
  // Full-core slot: any wake-up should be dispatched within IPI + switch.
  rig.scheduler->PushTable(MakeTable(len, {{{0, 0, len}}}));
  WorkQueueGuest guest(rig.machine.get(), vcpu);
  for (int i = 0; i < 50; ++i) {
    rig.machine->sim().ScheduleAt(i * 7 * kMillisecond + kMillisecond, [&] {
      guest.Post(100 * kMicrosecond, nullptr);
    });
  }
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  EXPECT_EQ(vcpu->wakeup_latency().Count(), 50u);
  EXPECT_LT(vcpu->wakeup_latency().Max(), 50 * kMicrosecond);
}

TEST(TableauRuntime, CappedWakeupWaitsForSlot) {
  TableauDispatcher::Config config;
  config.work_conserving = false;
  Rig rig(1, config);
  Vcpu* vcpu = rig.machine->AddVcpu(VcpuParams{});
  vcpu->EnableInstrumentation();
  const TimeNs len = 10 * kMillisecond;
  // Slot covers only [0, 2ms) of each 10 ms round.
  rig.scheduler->PushTable(MakeTable(len, {{{0, 0, 2 * kMillisecond}}}));
  WorkQueueGuest guest(rig.machine.get(), vcpu);
  // Wake at 5 ms into each round: must wait ~5 ms for the next slot.
  for (int i = 0; i < 20; ++i) {
    rig.machine->sim().ScheduleAt(i * len + 5 * kMillisecond, [&] {
      guest.Post(100 * kMicrosecond, nullptr);
    });
  }
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  EXPECT_EQ(vcpu->wakeup_latency().Count(), 20u);
  EXPECT_NEAR(ToMs(vcpu->wakeup_latency().Min()), 5.0, 0.2);
  EXPECT_NEAR(ToMs(vcpu->wakeup_latency().Max()), 5.0, 0.2);
}

// ---------- LockModel ----------

TEST(LockModel, UncontendedCostsHoldTime) {
  LockModel lock;
  EXPECT_EQ(lock.Acquire(1000, 500), 500);
  // Next acquisition after the hold: uncontended again.
  EXPECT_EQ(lock.Acquire(2000, 500), 500);
}

TEST(LockModel, QueueingDelayAccumulates) {
  LockModel lock;
  EXPECT_EQ(lock.Acquire(0, 1000), 1000);
  // Arrives halfway through the previous hold: waits 500.
  EXPECT_EQ(lock.Acquire(500, 1000), 1500);
  // Arrives while two holders are queued ahead.
  EXPECT_EQ(lock.Acquire(600, 1000), 2400);  // free_at was 2000.
}

TEST(LockModel, PatienceBoundsSpin) {
  LockModel lock;
  lock.Acquire(0, 10'000);
  const auto gave_up = lock.AcquireWithPatience(100, 1000, 500);
  EXPECT_FALSE(gave_up.acquired);
  EXPECT_EQ(gave_up.cost, 500);  // Spun for the whole patience, then quit.
  // Giving up must not extend the lock's busy horizon.
  const auto next = lock.AcquireWithPatience(10'000, 1000, 500);
  EXPECT_TRUE(next.acquired);
  EXPECT_EQ(next.cost, 1000);
}

TEST(LockModel, PatienceSucceedsWhenWaitFits) {
  LockModel lock;
  lock.Acquire(0, 1000);
  const auto acquired = lock.AcquireWithPatience(800, 500, 300);
  EXPECT_TRUE(acquired.acquired);
  EXPECT_EQ(acquired.cost, 200 + 500);
}

}  // namespace
}  // namespace tableau
