#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/time.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace tableau {
namespace {

TEST(MathUtil, GcdBasics) {
  EXPECT_EQ(Gcd(12, 18), 6);
  EXPECT_EQ(Gcd(18, 12), 6);
  EXPECT_EQ(Gcd(7, 13), 1);
  EXPECT_EQ(Gcd(0, 5), 5);
  EXPECT_EQ(Gcd(5, 0), 5);
  EXPECT_EQ(Gcd(0, 0), 0);
  EXPECT_EQ(Gcd(-12, 18), 6);
  EXPECT_EQ(Gcd(12, -18), 6);
}

TEST(MathUtil, LcmBasics) {
  EXPECT_EQ(LcmSaturating(4, 6), 12);
  EXPECT_EQ(LcmSaturating(5, 7), 35);
  EXPECT_EQ(LcmSaturating(0, 7), 0);
  EXPECT_EQ(LcmSaturating(1, 1), 1);
}

TEST(MathUtil, LcmSaturatesOnOverflow) {
  EXPECT_EQ(LcmSaturating(INT64_MAX, INT64_MAX - 1), INT64_MAX);
  // Two large coprime numbers.
  EXPECT_EQ(LcmSaturating(2305843009213693951LL, 2305843009213693950LL), INT64_MAX);
}

TEST(MathUtil, CeilDivAndRounding) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 100), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(12, 4), 12);
  EXPECT_EQ(RoundDown(10, 4), 8);
  EXPECT_EQ(RoundDown(12, 4), 12);
}

TEST(MathUtil, MulDivFloorNoOverflow) {
  // a * b overflows int64 but the result fits.
  const std::int64_t a = 4'000'000'000LL;
  const std::int64_t b = 4'000'000'000LL;
  EXPECT_EQ(MulDivFloor(a, b, 8'000'000'000LL), 2'000'000'000LL);
  EXPECT_EQ(MulDivFloor(7, 3, 2), 10);  // floor(21/2).
  EXPECT_EQ(MulDivFloor(0, 100, 7), 0);
}

TEST(MathUtil, DivisorsOfSmall) {
  EXPECT_EQ(DivisorsOf(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(DivisorsOf(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(DivisorsOf(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(DivisorsOf(7), (std::vector<std::int64_t>{1, 7}));
}

TEST(MathUtil, DivisorsOfPerfectSquare) {
  EXPECT_EQ(DivisorsOf(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(MathUtil, DivisorsAtLeastDescending) {
  const auto divisors = DivisorsAtLeast(36, 4);
  EXPECT_EQ(divisors, (std::vector<std::int64_t>{36, 18, 12, 9, 6, 4}));
}

TEST(MathUtil, DivisorsProductProperty) {
  for (const std::int64_t n : {60LL, 97LL, 1024LL, 102702600LL}) {
    for (const std::int64_t d : DivisorsOf(n)) {
      EXPECT_EQ(n % d, 0) << n << " % " << d;
    }
  }
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(FormatDuration(5), "5ns");
  EXPECT_EQ(FormatDuration(1500), "1.500us");
  EXPECT_EQ(FormatDuration(2 * kMillisecond), "2.000ms");
  EXPECT_EQ(FormatDuration(3 * kSecond), "3.000s");
  EXPECT_EQ(FormatDuration(kTimeNever), "never");
  EXPECT_EQ(FormatDuration(-1500), "-1.500us");
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(ToMs(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(ToUs(1'500), 1.5);
  EXPECT_DOUBLE_EQ(ToSec(2'500'000'000LL), 2.5);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(3.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(12345);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 12345);
  EXPECT_EQ(h.Max(), 12345);
  EXPECT_DOUBLE_EQ(h.Mean(), 12345.0);
  // Quantile error is bounded by the sub-bucket resolution (~1.6%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 12345.0, 12345.0 * 0.02);
}

TEST(Histogram, ExactMinMaxMean) {
  Histogram h;
  for (TimeNs v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  EXPECT_EQ(h.Percentile(1.0), 1000);
}

TEST(Histogram, PercentileAccuracy) {
  Histogram h;
  for (TimeNs v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double expected = q * 100000;
    EXPECT_NEAR(static_cast<double>(h.Percentile(q)), expected, expected * 0.02 + 2)
        << "q=" << q;
  }
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.Record(-100);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  const TimeNs big = 100LL * kSecond;
  h.Record(big);
  EXPECT_EQ(h.Max(), big);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), static_cast<double>(big),
              static_cast<double>(big) * 0.02);
}

TEST(Histogram, Merge) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) {
    a.Record(i);
    b.Record(1000 + i);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(a.Min(), 1);
  EXPECT_EQ(a.Max(), 1100);
}

TEST(Histogram, Reset) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.UniformInt(0, 10 * kMillisecond));
  }
  TimeNs prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const TimeNs v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// Regression for the floor-rank bug: with ceiling-rank semantics, a tail
// quantile of a small sample set must reach the top samples instead of
// stopping one short (p99.9 of 100 samples is the maximum, not the 99th).
TEST(Histogram, PercentileCeilingRankSmallCounts) {
  Histogram h;
  for (TimeNs v = 1; v <= 100; ++v) {
    h.Record(v);  // Values < 128 land in exact unit-width buckets.
  }
  EXPECT_EQ(h.Percentile(0.999), 100);  // ceil(99.9) = rank 100 = max.
  EXPECT_EQ(h.Percentile(0.995), 100);  // ceil(99.5) = rank 100.
  EXPECT_EQ(h.Percentile(0.99), 99);    // Exact rank stays exact.
  EXPECT_EQ(h.Percentile(0.5), 50);
  EXPECT_EQ(h.Percentile(0.0), 1);      // Rank clamps to the first sample.
}

TEST(Histogram, PercentileCeilingRankTenSamples) {
  Histogram h;
  for (TimeNs v = 1; v <= 10; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.95), 10);  // ceil(9.5) = 10; floor gave 9.
  EXPECT_EQ(h.Percentile(0.90), 9);
  EXPECT_EQ(h.Percentile(0.05), 1);   // ceil(0.5) = 1.
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(),
                   [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int sum = 0;  // No synchronization needed: everything runs in the caller.
  pool.ParallelFor(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "n=0 must not invoke fn"; });
}

TEST(ThreadPool, HelperFallsBackWithoutPool) {
  std::vector<int> hit(10, 0);
  ParallelFor(nullptr, hit.size(), [&](std::size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::count(hit.begin(), hit.end(), 1), 10);
}

TEST(ThreadPool, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kPerCaller = 200;
  std::vector<std::atomic<int>> counts(kCallers * kPerCaller);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      pool.ParallelFor(kPerCaller, [&](std::size_t i) {
        counts[static_cast<std::size_t>(t) * kPerCaller + i].fetch_add(1);
      });
    });
  }
  for (std::thread& caller : callers) {
    caller.join();
  }
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, StatsAccountForEveryIndex) {
  ThreadPool pool(4);
  constexpr std::size_t kIndices = 5000;
  std::atomic<std::size_t> ran{0};
  pool.ParallelFor(kIndices, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), kIndices);
  const ThreadPool::Stats stats = pool.GetStats();
  ASSERT_EQ(stats.indices.size(), 4u);
  std::uint64_t total = 0;
  for (const std::uint64_t count : stats.indices) {
    total += count;
  }
  // Every index is billed to exactly one slot, whoever ran it.
  EXPECT_EQ(total, kIndices);
}

TEST(ThreadPool, ExplicitGrainStillCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> counts(100);
    pool.ParallelFor(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); },
                     grain);
    for (const auto& c : counts) {
      ASSERT_EQ(c.load(), 1) << "grain " << grain;
    }
  }
}

TEST(ThreadPool, NestedWorkBilledToWorkerSlotNotSlotZero) {
  // A nested ParallelFor issued from inside a worker used to bill its inline
  // work to slot 0 (the "caller" slot) even though a pool worker ran it.
  // Barrier all three participants on one outer grain each; the two bodies
  // that land on workers run a single-grain (inline) nested loop, which must
  // be billed to their own slots.
  ThreadPool pool(3);
  constexpr std::size_t kNested = 50;
  std::atomic<int> arrived{0};
  pool.ParallelFor(
      3,
      [&](std::size_t) {
        arrived.fetch_add(1);
        while (arrived.load() < 3) {
          std::this_thread::yield();  // Holds this grain: one per participant.
        }
        if (pool.CurrentSlot() > 0) {
          std::size_t sum = 0;
          pool.ParallelFor(kNested, [&](std::size_t j) { sum += j; },
                           /*grain=*/kNested);
          ASSERT_EQ(sum, kNested * (kNested - 1) / 2);
        }
      },
      /*grain=*/1);
  const ThreadPool::Stats stats = pool.GetStats();
  ASSERT_EQ(stats.indices.size(), 3u);
  // Each participant ran exactly one outer index; the workers additionally
  // ran their nested loops inline, billed to their own slots.
  EXPECT_EQ(stats.indices[0], 1u);
  EXPECT_EQ(stats.indices[1], 1u + kNested);
  EXPECT_EQ(stats.indices[2], 1u + kNested);
}

TEST(ThreadPool, CurrentSlotIsZeroOffPool) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.CurrentSlot(), 0);
  // Another pool's workers are "foreign" threads for this pool.
  ThreadPool other(2);
  int seen = -1;
  other.ParallelFor(1, [&](std::size_t) { seen = pool.CurrentSlot(); }, 1);
  EXPECT_EQ(seen, 0);
}

TEST(RunningStat, Basics) {
  RunningStat s;
  s.Record(1.0);
  s.Record(2.0);
  s.Record(3.0);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  s.Reset();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

}  // namespace
}  // namespace tableau
