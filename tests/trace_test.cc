#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/trace.h"
#include "src/rt/hyperperiod.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

TEST(TraceBuffer, RecordsInOrder) {
  TraceBuffer trace(16);
  trace.Record(10, TraceEvent::kDispatch, 0, 1);
  trace.Record(20, TraceEvent::kDeschedule, 0, 1);
  trace.Record(30, TraceEvent::kIdle, 0, kIdleVcpu);
  EXPECT_EQ(trace.size(), 3u);
  std::vector<TimeNs> times;
  trace.ForEach([&](const TraceRecord& record) { times.push_back(record.time); });
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 20, 30}));
}

TEST(TraceBuffer, RingKeepsMostRecent) {
  TraceBuffer trace(4);
  for (TimeNs t = 0; t < 10; ++t) {
    trace.Record(t, TraceEvent::kWakeup, 0, 0);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  std::vector<TimeNs> times;
  trace.ForEach([&](const TraceRecord& record) { times.push_back(record.time); });
  EXPECT_EQ(times, (std::vector<TimeNs>{6, 7, 8, 9}));
}

TEST(TraceBuffer, DisabledRecordsNothing) {
  TraceBuffer trace(8);
  trace.set_enabled(false);
  trace.Record(1, TraceEvent::kBlock, 0, 0);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(TraceBuffer, QueryFilters) {
  TraceBuffer trace(32);
  trace.Record(10, TraceEvent::kDispatch, 0, 1);
  trace.Record(20, TraceEvent::kDispatch, 1, 2);
  trace.Record(30, TraceEvent::kBlock, 0, 1);
  trace.Record(40, TraceEvent::kDispatch, 0, 1);

  TraceBuffer::Filter by_event;
  by_event.event = TraceEvent::kDispatch;
  EXPECT_EQ(trace.Query(by_event).size(), 3u);

  TraceBuffer::Filter by_vcpu;
  by_vcpu.vcpu = 1;
  EXPECT_EQ(trace.Query(by_vcpu).size(), 3u);

  TraceBuffer::Filter by_cpu;
  by_cpu.cpu = 1;
  EXPECT_EQ(trace.Query(by_cpu).size(), 1u);

  TraceBuffer::Filter by_window;
  by_window.from = 15;
  by_window.to = 35;
  EXPECT_EQ(trace.Query(by_window).size(), 2u);
}

TEST(TraceBuffer, ServiceTimelinePairsDispatches) {
  TraceBuffer trace(32);
  trace.Record(10, TraceEvent::kDispatch, 0, 7, /*second_level=*/0);
  trace.Record(25, TraceEvent::kDeschedule, 0, 7);
  trace.Record(40, TraceEvent::kDispatch, 1, 7, /*second_level=*/1);
  trace.Record(55, TraceEvent::kBlock, 1, 7);
  const auto timeline = trace.ServiceTimeline(7);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].start, 10);
  EXPECT_EQ(timeline[0].end, 25);
  EXPECT_EQ(timeline[0].cpu, 0);
  EXPECT_FALSE(timeline[0].second_level);
  EXPECT_EQ(timeline[1].start, 40);
  EXPECT_TRUE(timeline[1].second_level);
}

TEST(TraceBuffer, ServiceTimelineMarksTruncatedHead) {
  // Ring of 2: the dispatch at t=100 is overwritten by later records, so the
  // deschedule at t=300 has no visible opening. The timeline reports the
  // visible tail, anchored at the window edge and flagged truncated_start.
  TraceBuffer trace(2);
  trace.Record(100, TraceEvent::kDispatch, 0, 5);
  trace.Record(300, TraceEvent::kDeschedule, 0, 5);
  trace.Record(400, TraceEvent::kWakeup, 0, 5);
  EXPECT_EQ(trace.dropped(), 1u);
  const auto timeline = trace.ServiceTimeline(5);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].start, trace.oldest_retained_time());
  EXPECT_EQ(timeline[0].end, 300);
  EXPECT_TRUE(timeline[0].truncated_start);
  EXPECT_FALSE(timeline[0].truncated_end);
}

TEST(TraceBuffer, ServiceTimelineMarksTruncatedTail) {
  TraceBuffer trace(8);
  trace.Record(10, TraceEvent::kDispatch, 0, 3);
  trace.Record(20, TraceEvent::kDeschedule, 0, 3);
  trace.Record(30, TraceEvent::kDispatch, 1, 3);
  trace.Record(45, TraceEvent::kWakeup, 0, 9);  // Newest record, other vCPU.
  const auto timeline = trace.ServiceTimeline(3);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_FALSE(timeline[0].truncated_start);
  EXPECT_FALSE(timeline[0].truncated_end);
  // The open interval is closed at the newest record's time, not invented
  // beyond the observable window.
  EXPECT_EQ(timeline[1].start, 30);
  EXPECT_EQ(timeline[1].end, 45);
  EXPECT_TRUE(timeline[1].truncated_end);
}

TEST(TraceBuffer, ServiceTimelineClosesDanglingIntervalAtNextDispatch) {
  // A deschedule lost to the ring between two retained dispatches: the first
  // interval closes (truncated) at the second dispatch instead of merging.
  TraceBuffer trace(8);
  trace.Record(10, TraceEvent::kDispatch, 0, 4);
  trace.Record(50, TraceEvent::kDispatch, 0, 4);
  trace.Record(70, TraceEvent::kDeschedule, 0, 4);
  const auto timeline = trace.ServiceTimeline(4);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].start, 10);
  EXPECT_EQ(timeline[0].end, 50);
  EXPECT_TRUE(timeline[0].truncated_end);
  EXPECT_EQ(timeline[1].start, 50);
  EXPECT_EQ(timeline[1].end, 70);
  EXPECT_FALSE(timeline[1].truncated_end);
}

TEST(TraceBuffer, DroppedStaysExactAcrossClear) {
  TraceBuffer trace(4);
  for (TimeNs t = 0; t < 6; ++t) {
    trace.Record(t, TraceEvent::kWakeup, 0, 0);
  }
  EXPECT_EQ(trace.total_recorded(), 6u);
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(trace.total_recorded(), trace.dropped() + trace.size());

  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 6u);
  EXPECT_EQ(trace.dropped(), 6u);

  trace.Record(100, TraceEvent::kDispatch, 0, 1);
  EXPECT_EQ(trace.total_recorded(), 7u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.total_recorded(), trace.dropped() + trace.size());
  EXPECT_EQ(trace.oldest_retained_time(), 100);
}

TEST(TraceBuffer, FormatIsHumanReadable) {
  const TraceRecord record{1'500'000, TraceEvent::kDispatch, 3, 12, 1};
  const std::string line = TraceBuffer::Format(record);
  EXPECT_NE(line.find("dispatch"), std::string::npos);
  EXPECT_NE(line.find("cpu3"), std::string::npos);
  EXPECT_NE(line.find("vcpu12"), std::string::npos);
}

TEST(TraceBuffer, MachineIntegrationMatchesAccounting) {
  // Run a small Tableau machine with tracing on; the trace-reconstructed
  // service of the vCPU must equal the machine's service accounting, and
  // second-level dispatches must be flagged.
  TableauDispatcher::Config config;
  config.work_conserving = true;
  auto owned = std::make_unique<TableauScheduler>(config);
  TableauScheduler* scheduler = owned.get();
  MachineConfig machine_config;
  machine_config.num_cpus = 1;
  machine_config.cores_per_socket = 1;
  Machine machine(machine_config, std::move(owned));
  machine.trace().set_enabled(true);
  Vcpu* vcpu = machine.AddVcpu(VcpuParams{});
  // 25% table slot; second level hands out the idle rest.
  std::vector<std::vector<Allocation>> per_cpu = {{{0, 0, kHyperperiodNs / 4}}};
  scheduler->PushTable(std::make_shared<SchedulingTable>(
      SchedulingTable::Build(kHyperperiodNs, std::move(per_cpu))));
  CpuHogWorkload hog(&machine, vcpu);
  hog.Start(0);
  machine.Start();
  machine.RunFor(500 * kMillisecond);

  TimeNs traced_service = 0;
  bool any_second_level = false;
  bool any_first_level = false;
  for (const auto& interval : machine.trace().ServiceTimeline(0)) {
    traced_service += interval.end - interval.start;
    any_second_level = any_second_level || interval.second_level;
    any_first_level = any_first_level || !interval.second_level;
  }
  EXPECT_TRUE(any_second_level);
  EXPECT_TRUE(any_first_level);
  // The trace misses only the trailing open interval and the pre-service
  // overhead windows; allow a small tolerance.
  EXPECT_NEAR(static_cast<double>(traced_service),
              static_cast<double>(vcpu->total_service()),
              static_cast<double>(5 * kMillisecond));
}

}  // namespace
}  // namespace tableau
