// Tests for the verification subsystem itself (src/check): the TableVerifier
// against hand-built tables with planted contract violations, the scenario
// spec round-trip, planted scheduler mutants being caught by the oracles,
// and the shrinker reducing a mutant reproducer to a handful of vCPUs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/mutants.h"
#include "src/check/oracles.h"
#include "src/check/scenario_fuzz.h"
#include "src/check/table_verifier.h"
#include "src/core/planner.h"
#include "src/table/scheduling_table.h"

namespace tableau::check {
namespace {

// A clean one-core table: vCPU 0 gets [k*10ms, k*10ms + 2ms) in each of the
// ten 10 ms windows of a 100 ms table.
SchedulingTable TenWindowTable() {
  std::vector<std::vector<Allocation>> per_cpu(1);
  for (int k = 0; k < 10; ++k) {
    per_cpu[0].push_back(
        Allocation{0, k * 10 * kMillisecond, k * 10 * kMillisecond + 2 * kMillisecond});
  }
  return SchedulingTable::Build(100 * kMillisecond, std::move(per_cpu));
}

VcpuContract TenWindowContract() {
  VcpuContract contract;
  contract.vcpu = 0;
  contract.cost = 2 * kMillisecond;
  contract.period = 10 * kMillisecond;
  return contract;
}

VerifyOptions NoHyperperiodCheck() {
  VerifyOptions options;
  options.expected_length = 0;
  return options;
}

bool AnyContains(const std::vector<std::string>& violations, const std::string& needle) {
  for (const std::string& violation : violations) {
    if (violation.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(TableVerifier, CleanTablePasses) {
  const SchedulingTable table = TenWindowTable();
  const std::vector<std::string> violations =
      VerifyTable(table, {TenWindowContract()}, NoHyperperiodCheck());
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(TableVerifier, MissingWindowSupplyIsCaught) {
  // Drop the allocation in window 4 entirely.
  std::vector<std::vector<Allocation>> per_cpu(1);
  for (int k = 0; k < 10; ++k) {
    if (k == 4) continue;
    per_cpu[0].push_back(
        Allocation{0, k * 10 * kMillisecond, k * 10 * kMillisecond + 2 * kMillisecond});
  }
  const SchedulingTable table =
      SchedulingTable::Build(100 * kMillisecond, std::move(per_cpu));
  const std::vector<std::string> violations =
      VerifyTable(table, {TenWindowContract()}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "window 4"));
  EXPECT_TRUE(AnyContains(violations, "shortfall"));
}

TEST(TableVerifier, ShortWindowSupplyIsCaught) {
  // Window 7 only gets half its budget.
  std::vector<std::vector<Allocation>> per_cpu(1);
  for (int k = 0; k < 10; ++k) {
    const TimeNs budget = k == 7 ? kMillisecond : 2 * kMillisecond;
    per_cpu[0].push_back(
        Allocation{0, k * 10 * kMillisecond, k * 10 * kMillisecond + budget});
  }
  const SchedulingTable table =
      SchedulingTable::Build(100 * kMillisecond, std::move(per_cpu));
  const std::vector<std::string> violations =
      VerifyTable(table, {TenWindowContract()}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "window 7"));
}

TEST(TableVerifier, BlackoutBoundIsCyclic) {
  // All supply bunched at the table start: windows 1..9 starve, and the
  // cyclic gap from 2 ms around to 0 violates 2(T - C) = 16 ms.
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0].push_back(Allocation{0, 0, 20 * kMillisecond});
  const SchedulingTable table =
      SchedulingTable::Build(100 * kMillisecond, std::move(per_cpu));
  const std::vector<std::string> violations =
      VerifyTable(table, {TenWindowContract()}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "blackout"));
}

TEST(TableVerifier, DedicatedVcpuMustOwnFullCore) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0].push_back(Allocation{3, 0, 90 * kMillisecond});
  const SchedulingTable table =
      SchedulingTable::Build(100 * kMillisecond, std::move(per_cpu));
  VcpuContract contract;
  contract.vcpu = 3;
  contract.dedicated = true;
  const std::vector<std::string> violations =
      VerifyTable(table, {contract}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "dedicated"));
}

TEST(TableVerifier, CrossCoreConcurrencyIsCaught) {
  // vCPU 0 allocated on both cores at overlapping times.
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0].push_back(Allocation{0, 0, 2 * kMillisecond});
  per_cpu[1].push_back(Allocation{0, kMillisecond, 3 * kMillisecond});
  const SchedulingTable table =
      SchedulingTable::Build(10 * kMillisecond, std::move(per_cpu));
  VcpuContract contract;
  contract.vcpu = 0;
  contract.cost = 3 * kMillisecond;
  contract.period = 10 * kMillisecond;
  contract.split = true;
  const std::vector<std::string> violations =
      VerifyTable(table, {contract}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "concurrently"));
}

TEST(TableVerifier, SplitFlagMustMatchTable) {
  const SchedulingTable table = TenWindowTable();
  VcpuContract contract = TenWindowContract();
  contract.split = true;  // Claims a split, table has one core.
  const std::vector<std::string> violations =
      VerifyTable(table, {contract}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "split"));
}

TEST(TableVerifier, SubThresholdSurvivorIsCaught) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0].push_back(Allocation{0, 0, 10 * kMicrosecond});  // < 30 us.
  const SchedulingTable table =
      SchedulingTable::Build(10 * kMillisecond, std::move(per_cpu));
  const std::vector<std::string> violations = VerifyTable(table, {}, NoHyperperiodCheck());
  EXPECT_TRUE(AnyContains(violations, "sub-threshold"));
}

TEST(TableVerifier, EveryPlannedTableVerifies) {
  // Planner-produced tables across the pipeline stages must satisfy their
  // own claimed contracts.
  for (int vms_per_core : {2, 4, 5}) {
    PlannerConfig config;
    config.num_cpus = 4;
    const Planner planner(config);
    std::vector<VcpuRequest> requests;
    for (int i = 0; i < config.num_cpus * vms_per_core; ++i) {
      requests.push_back(
          VcpuRequest{i, 1.0 / vms_per_core - 0.01, 20 * kMillisecond});
    }
    const PlanResult plan = planner.Solve(PlanRequest::Full(std::move(requests)));
    ASSERT_TRUE(plan.success) << plan.error;
    const std::vector<std::string> violations = VerifyPlan(plan, config);
    EXPECT_TRUE(violations.empty())
        << vms_per_core << " VMs/core: " << violations.front();
  }
}

TEST(TableVerifier, TinyBudgetReservationIsRejectedAtAdmission) {
  // Regression (found by this verifier): U = 0.05 at a 300 us latency goal
  // maps to C ~ 8 us < the 30 us coalesce threshold, so post-processing used
  // to donate the entire reservation away — a "successful" plan whose vCPU
  // starved for the whole hyperperiod. The planner must reject at admission
  // (degradation-eligible) instead.
  PlannerConfig config;
  config.num_cpus = 1;
  const Planner planner(config);
  const PlanResult plan = planner.Solve(
      PlanRequest::Full({VcpuRequest{0, 0.05, 300 * kMicrosecond}}));
  EXPECT_FALSE(plan.success);
  EXPECT_EQ(plan.failure, PlanFailure::kAdmission);

  // With latency degradation enabled the same request plans at a relaxed
  // goal, and the resulting table honors the contract.
  config.max_latency_degradations = 8;
  const Planner degrading(config);
  const PlanResult degraded = degrading.Solve(
      PlanRequest::Full({VcpuRequest{0, 0.05, 300 * kMicrosecond}}));
  ASSERT_TRUE(degraded.success) << degraded.error;
  EXPECT_GT(degraded.degradation_steps, 0);
  const std::vector<std::string> violations = VerifyPlan(degraded, config);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ScenarioSpec, FormatParseRoundTrip) {
  const ScenarioSpec spec = GenerateSpec(7);
  const std::string text = FormatSpec(spec);
  const auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(FormatSpec(*parsed), text);
}

TEST(ScenarioSpec, GeneratedSpecsAreFeasible) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_TRUE(FeasibleSpec(GenerateSpec(seed))) << "seed " << seed;
  }
}

TEST(ScenarioSpec, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseSpec("not a repro").has_value());
  EXPECT_FALSE(ParseSpec("tableau-repro v1\nbogus_key=1\n").has_value());
  EXPECT_FALSE(ParseSpec("tableau-repro v1\nseed=1\n").has_value());  // No VMs.
}

// A Tableau scenario with a planted mutant: the oracles must notice, the
// clean run must not, and the shrinker must cut the reproducer down.
ScenarioSpec MutantSpec(MutantKind mutant) {
  ScenarioSpec spec = GenerateSpec(1);
  spec.scheduler = SchedKind::kTableau;
  spec.capped = true;
  spec.replan_at = 0;
  spec.planner_failure = 0.0;
  spec.mutant = mutant;
  spec.mutant_stride = 7;
  return spec;
}

TEST(Mutants, WrongVcpuIsCaughtByTableauOracle) {
  const CheckOutcome outcome = RunCheckedScenario(MutantSpec(MutantKind::kWrongVcpu));
  ASSERT_FALSE(outcome.violations.empty());
  EXPECT_TRUE(AnyContains(outcome.violations, "reserves this instant"));
}

TEST(Mutants, OverrunSliceIsCaughtBySlotEndBound) {
  const CheckOutcome outcome = RunCheckedScenario(MutantSpec(MutantKind::kOverrunSlice));
  ASSERT_FALSE(outcome.violations.empty());
  EXPECT_TRUE(AnyContains(outcome.violations, "past its slot end"));
}

TEST(Mutants, CleanRunHasNoViolations) {
  const CheckOutcome outcome = RunCheckedScenario(MutantSpec(MutantKind::kNone));
  EXPECT_TRUE(outcome.violations.empty())
      << outcome.violations.front();
  EXPECT_GT(outcome.records, 0u);
}

TEST(Shrink, MutantReproducerShrinksToFewVcpus) {
  const ScenarioSpec spec = MutantSpec(MutantKind::kWrongVcpu);
  const CheckOutcome outcome = RunCheckedScenario(spec);
  ASSERT_FALSE(outcome.violations.empty());
  const std::string category = CategoryOf(outcome.violations);
  const ShrinkResult shrunk = Shrink(spec, category);
  // The shrunk spec still reproduces the same violation category...
  const CheckOutcome replay = RunCheckedScenario(shrunk.spec);
  EXPECT_EQ(CategoryOf(replay.violations), category);
  // ...and is small (acceptance bound: at most 4 vCPUs).
  EXPECT_LE(shrunk.spec.TotalVcpus(), 4);
  EXPECT_GT(shrunk.runs, 0);
}

TEST(Oracles, WindowedServiceCheckFlagsOverBudgetWindow) {
  WindowedServiceCheck check(10 * kMillisecond, 2 * kMillisecond);
  EXPECT_EQ(check.Add(0, kMillisecond), -1);
  EXPECT_EQ(check.Add(kMillisecond, 2 * kMillisecond), -1);
  // Third millisecond in window 0 exceeds the 2 ms bound.
  EXPECT_EQ(check.Add(2 * kMillisecond, 3 * kMillisecond), 0);
  // Spanning service lands in each window separately.
  WindowedServiceCheck spanning(10 * kMillisecond, 2 * kMillisecond);
  EXPECT_EQ(spanning.Add(9 * kMillisecond, 11 * kMillisecond), -1);
  EXPECT_EQ(spanning.WindowTotal(0), kMillisecond);
  EXPECT_EQ(spanning.WindowTotal(1), kMillisecond);
}

TEST(PlannerAuditHook, ObservesEverySuccessfulSolve) {
  int calls = 0;
  SetPlanAuditHook([&calls](const PlanResult& plan, const PlannerConfig&) {
    ASSERT_TRUE(plan.success);
    ++calls;
  });
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  ASSERT_TRUE(
      planner.Solve(PlanRequest::Full({VcpuRequest{0, 0.25, 20 * kMillisecond}}))
          .success);
  // Failed solves are not audited.
  ASSERT_FALSE(
      planner.Solve(PlanRequest::Full({VcpuRequest{0, 0.05, 300 * kMicrosecond}}))
          .success);
  SetPlanAuditHook(nullptr);
  ASSERT_TRUE(
      planner.Solve(PlanRequest::Full({VcpuRequest{0, 0.25, 20 * kMillisecond}}))
          .success);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace tableau::check
