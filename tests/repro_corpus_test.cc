// Replays the committed reproducer corpus (tests/repro/*.txt) as fast
// tier-1 property checks: every scenario that once surfaced a bug — or pins
// a tricky regime (boost-heavy wakeups, blackout-window admission, C=D
// splits, hyperperiod-boundary table switches, fault-heavy runs) — must now
// run with zero verifier/oracle violations.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/scenario_fuzz.h"

#ifndef TABLEAU_REPRO_DIR
#error "TABLEAU_REPRO_DIR must point at the committed reproducer corpus"
#endif

namespace tableau::check {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(TABLEAU_REPRO_DIR)) {
    if (entry.path().extension() == ".txt") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReproCorpus, HasAtLeastFiveScenarios) {
  EXPECT_GE(CorpusFiles().size(), 5u);
}

TEST(ReproCorpus, EveryReproducerReplaysClean) {
  const std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '#') {
        continue;  // Leading comment records the original violation.
      }
      text << line << "\n";
    }
    const auto spec = ParseSpec(text.str());
    ASSERT_TRUE(spec.has_value()) << path << ": malformed reproducer";
    const CheckOutcome outcome = RunCheckedScenario(*spec);
    EXPECT_TRUE(outcome.violations.empty())
        << path << ": " << outcome.violations.front();
  }
}

}  // namespace
}  // namespace tableau::check
