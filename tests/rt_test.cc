#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/rt/admission.h"
#include "src/rt/cd_split.h"
#include "src/rt/dpfair.h"
#include "src/rt/edf_sim.h"
#include "src/rt/hyperperiod.h"
#include "src/rt/partition.h"
#include "src/rt/periodic_task.h"
#include "src/rt/schedulability.h"

namespace tableau {
namespace {

// ---------- Hyperperiod / candidate periods ----------

TEST(Hyperperiod, MatchesPaperConstant) {
  EXPECT_EQ(kHyperperiodNs, 102'702'600);
  EXPECT_EQ(kMinPeriodNs, 100'000);
}

TEST(Hyperperiod, Exactly186CandidatePeriods) {
  // "We chose 102,702,600 ns as the maximum hyperperiod, which has a large
  // number of integer divisors (186) above the 100us threshold." (Sec. 5)
  EXPECT_EQ(CandidatePeriods().size(), 186u);
}

TEST(Hyperperiod, CandidatesDivideHyperperiodAndDescend) {
  const auto& candidates = CandidatePeriods();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(kHyperperiodNs % candidates[i], 0);
    EXPECT_GE(candidates[i], kMinPeriodNs);
    if (i > 0) {
      EXPECT_LT(candidates[i], candidates[i - 1]);
    }
  }
  EXPECT_EQ(candidates.front(), kHyperperiodNs);
}

// ---------- (U, L) -> (C, T) mapping ----------

TEST(TaskMapping, PaperExampleQuarterShare20ms) {
  // The Sec. 7.2 configuration: U = 0.25, L = 20 ms "results in the planner
  // picking a period of roughly 13 ms with a budget of about 3.2 ms".
  VcpuRequest request{0, 0.25, 20 * kMillisecond};
  const auto mapping = MapRequestToTask(request);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(mapping->latency_goal_met);
  EXPECT_NEAR(ToMs(mapping->task.period), 13.0, 1.0);
  EXPECT_NEAR(ToMs(mapping->task.cost), 3.2, 0.2);
  EXPECT_LE(mapping->blackout_bound, request.latency_goal);
}

TEST(TaskMapping, RejectsDegenerateRequests) {
  EXPECT_FALSE(MapRequestToTask({0, 0.0, kMillisecond}).has_value());
  EXPECT_FALSE(MapRequestToTask({0, -0.5, kMillisecond}).has_value());
  EXPECT_FALSE(MapRequestToTask({0, 1.0, kMillisecond}).has_value());  // Dedicated.
  EXPECT_FALSE(MapRequestToTask({0, 0.5, 0}).has_value());
  EXPECT_FALSE(MapRequestToTask({0, 0.5, -5}).has_value());
}

TEST(TaskMapping, BestEffortWhenLatencyGoalTooTight) {
  // 2*(1-U)*T <= L needs T <= 10us for U=0.5, L=10us: unachievable with
  // >= 100us periods.
  VcpuRequest request{0, 0.5, 10 * kMicrosecond};
  const auto mapping = MapRequestToTask(request);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_FALSE(mapping->latency_goal_met);
  EXPECT_EQ(mapping->task.period, CandidatePeriods().back());
}

TEST(TaskMapping, EffectiveUtilizationAtLeastRequested) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    VcpuRequest request;
    request.vcpu = 0;
    request.utilization = rng.UniformDouble(0.01, 0.99);
    request.latency_goal = rng.UniformInt(kMillisecond, 200 * kMillisecond);
    const auto mapping = MapRequestToTask(request);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_GE(mapping->task.Utilization(), request.utilization);
    EXPECT_EQ(kHyperperiodNs % mapping->task.period, 0);
  }
}

TEST(TaskMapping, LargestFeasiblePeriodChosen) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    VcpuRequest request;
    request.vcpu = 0;
    request.utilization = rng.UniformDouble(0.05, 0.95);
    request.latency_goal = rng.UniformInt(kMillisecond, 100 * kMillisecond);
    const auto mapping = MapRequestToTask(request);
    ASSERT_TRUE(mapping.has_value());
    if (!mapping->latency_goal_met) {
      continue;
    }
    // No strictly larger candidate period may satisfy the latency bound.
    for (const TimeNs t : CandidatePeriods()) {
      if (t <= mapping->task.period) {
        break;
      }
      EXPECT_GT(2.0 * (1.0 - request.utilization) * static_cast<double>(t),
                static_cast<double>(request.latency_goal));
    }
  }
}

TEST(TaskMapping, BlackoutBoundFormula) {
  VcpuRequest request{3, 0.4, 50 * kMillisecond};
  const auto mapping = MapRequestToTask(request);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->blackout_bound, 2 * (mapping->task.period - mapping->task.cost));
}

// ---------- EDF simulation ----------

TEST(EdfSim, SingleTaskFullUtilization) {
  const TimeNs h = 1000;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 100, 100)};
  const EdfSimResult result = SimulateEdf(tasks, h);
  ASSERT_TRUE(result.schedulable);
  // One merged allocation covering [0, 1000).
  ASSERT_EQ(result.allocations.size(), 1u);
  EXPECT_EQ(result.allocations[0], (Allocation{0, 0, 1000}));
}

TEST(EdfSim, TwoTasksHalfEach) {
  const TimeNs h = 200;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 50, 100),
                                     PeriodicTask::Implicit(1, 50, 100)};
  const EdfSimResult result = SimulateEdf(tasks, h);
  ASSERT_TRUE(result.schedulable);
  TimeNs service[2] = {0, 0};
  for (const Allocation& alloc : result.allocations) {
    service[alloc.vcpu] += alloc.Length();
  }
  EXPECT_EQ(service[0], 100);
  EXPECT_EQ(service[1], 100);
}

TEST(EdfSim, OverUtilizedFails) {
  const TimeNs h = 100;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 60, 100),
                                     PeriodicTask::Implicit(1, 60, 100)};
  const EdfSimResult result = SimulateEdf(tasks, h);
  EXPECT_FALSE(result.schedulable);
  EXPECT_NE(result.missed_vcpu, kIdleVcpu);
}

TEST(EdfSim, AllocationsNonOverlappingAndOrdered) {
  const TimeNs h = 1200;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 30, 100),
                                     PeriodicTask::Implicit(1, 100, 300),
                                     PeriodicTask::Implicit(2, 200, 600)};
  const EdfSimResult result = SimulateEdf(tasks, h);
  ASSERT_TRUE(result.schedulable);
  for (std::size_t i = 1; i < result.allocations.size(); ++i) {
    EXPECT_GE(result.allocations[i].start, result.allocations[i - 1].end);
  }
  for (const Allocation& alloc : result.allocations) {
    EXPECT_GE(alloc.start, 0);
    EXPECT_LE(alloc.end, h);
    EXPECT_LT(alloc.start, alloc.end);
  }
}

TEST(EdfSim, EachJobServedWithinItsPeriod) {
  const TimeNs h = 1200;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 30, 100),
                                     PeriodicTask::Implicit(1, 100, 300),
                                     PeriodicTask::Implicit(2, 120, 400)};
  const EdfSimResult result = SimulateEdf(tasks, h);
  ASSERT_TRUE(result.schedulable);
  for (const PeriodicTask& task : tasks) {
    for (TimeNs window = 0; window < h; window += task.period) {
      TimeNs served = 0;
      for (const Allocation& alloc : result.allocations) {
        if (alloc.vcpu != task.vcpu) {
          continue;
        }
        const TimeNs lo = std::max(alloc.start, window);
        const TimeNs hi = std::min(alloc.end, window + task.period);
        served += std::max<TimeNs>(0, hi - lo);
      }
      EXPECT_EQ(served, task.cost) << "task " << task.vcpu << " window " << window;
    }
  }
}

TEST(EdfSim, ZeroLaxityTaskRunsContiguouslyFromRelease) {
  // A C=D piece (deadline == cost) must occupy exactly [kT+off, kT+off+C).
  const TimeNs h = 400;
  PeriodicTask zero_laxity;
  zero_laxity.vcpu = 0;
  zero_laxity.cost = 30;
  zero_laxity.period = 100;
  zero_laxity.deadline = 30;
  zero_laxity.offset = 20;
  std::vector<PeriodicTask> tasks = {zero_laxity, PeriodicTask::Implicit(1, 50, 200)};
  const EdfSimResult result = SimulateEdf(tasks, h);
  ASSERT_TRUE(result.schedulable);
  for (TimeNs k = 0; k < h / 100; ++k) {
    const TimeNs start = k * 100 + 20;
    bool found = false;
    for (const Allocation& alloc : result.allocations) {
      if (alloc.vcpu == 0 && alloc.start <= start && alloc.end >= start + 30) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "window " << k;
  }
}

TEST(EdfSim, OffsetTaskReleasesRespected) {
  // A task with offset 50 must never be served in [0, 50).
  PeriodicTask task;
  task.vcpu = 0;
  task.cost = 20;
  task.period = 100;
  task.deadline = 50;
  task.offset = 50;
  const EdfSimResult result = SimulateEdf({task}, 300);
  ASSERT_TRUE(result.schedulable);
  for (const Allocation& alloc : result.allocations) {
    EXPECT_GE(alloc.start % 100, 50);
  }
}

TEST(EdfSim, RandomizedAgreesWithDemandBound) {
  // Property: for synchronous implicit-deadline sets, the simulator and the
  // demand-bound criterion must agree exactly (both are exact tests).
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.UniformInt(1, 6));
    const TimeNs h = 1200;
    const std::vector<TimeNs> periods = {100, 200, 300, 400, 600, 1200};
    for (int i = 0; i < n; ++i) {
      const TimeNs period =
          periods[static_cast<std::size_t>(rng.UniformInt(0, 5))];
      const TimeNs cost = rng.UniformInt(1, period);
      tasks.push_back(PeriodicTask::Implicit(i, cost, period));
    }
    EXPECT_EQ(EdfSchedulable(tasks, h), DemandBoundSchedulable(tasks, h))
        << "trial " << trial;
  }
}

TEST(EdfSim, DemandBoundSufficientForConstrainedDeadlines) {
  // For constrained-deadline synchronous sets, dbf-schedulable implies
  // sim-schedulable.
  Rng rng(123);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.UniformInt(1, 5));
    const TimeNs h = 2400;
    const std::vector<TimeNs> periods = {200, 300, 400, 600, 800, 1200};
    for (int i = 0; i < n; ++i) {
      PeriodicTask task;
      task.vcpu = i;
      task.period = periods[static_cast<std::size_t>(rng.UniformInt(0, 5))];
      task.cost = rng.UniformInt(1, task.period / 2);
      task.deadline = rng.UniformInt(task.cost, task.period);
      tasks.push_back(task);
    }
    if (DemandBoundSchedulable(tasks, h)) {
      ++checked;
      EXPECT_TRUE(EdfSchedulable(tasks, h)) << "trial " << trial;
    }
  }
  EXPECT_GT(checked, 20);  // The property must actually have been exercised.
}

// ---------- Demand bound function ----------

TEST(DemandBound, KnownValues) {
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 30, 100)};
  EXPECT_EQ(DemandBound(tasks, 99), 0);
  EXPECT_EQ(DemandBound(tasks, 100), 30);
  EXPECT_EQ(DemandBound(tasks, 199), 30);
  EXPECT_EQ(DemandBound(tasks, 200), 60);
}

TEST(DemandBound, ConstrainedDeadline) {
  PeriodicTask task;
  task.vcpu = 0;
  task.cost = 10;
  task.period = 100;
  task.deadline = 40;
  EXPECT_EQ(DemandBound({task}, 39), 0);
  EXPECT_EQ(DemandBound({task}, 40), 10);
  EXPECT_EQ(DemandBound({task}, 140), 20);
}

TEST(Qpa, AgreesWithDemandBoundOnRandomSets) {
  // QPA and the full demand-bound enumeration are both exact for
  // synchronous constrained-deadline sets: they must agree everywhere.
  Rng rng(77);
  int schedulable = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.UniformInt(1, 6));
    const TimeNs h = 2400;
    const std::vector<TimeNs> periods = {200, 300, 400, 600, 800, 1200};
    for (int i = 0; i < n; ++i) {
      PeriodicTask task;
      task.vcpu = i;
      task.period = periods[static_cast<std::size_t>(rng.UniformInt(0, 5))];
      task.cost = rng.UniformInt(1, task.period / 2);
      task.deadline = rng.UniformInt(task.cost, task.period);
      tasks.push_back(task);
    }
    const bool qpa = QpaSchedulable(tasks, h);
    const bool dbf = DemandBoundSchedulable(tasks, h);
    ASSERT_EQ(qpa, dbf) << "trial " << trial;
    schedulable += qpa ? 1 : 0;
  }
  // Both outcomes must actually occur for the property to mean anything.
  EXPECT_GT(schedulable, 30);
  EXPECT_LT(schedulable, 270);
}

TEST(Qpa, TrivialCases) {
  EXPECT_TRUE(QpaSchedulable({}, 1000));
  EXPECT_TRUE(QpaSchedulable({PeriodicTask::Implicit(0, 100, 100)}, 1000));
  EXPECT_FALSE(QpaSchedulable({PeriodicTask::Implicit(0, 60, 100),
                               PeriodicTask::Implicit(1, 60, 100)},
                              1000));
  // Constrained deadline making an otherwise feasible set infeasible.
  PeriodicTask tight;
  tight.vcpu = 0;
  tight.cost = 50;
  tight.period = 100;
  tight.deadline = 60;
  EXPECT_TRUE(QpaSchedulable({tight}, 1000));
  PeriodicTask other = PeriodicTask::Implicit(1, 30, 100);
  other.deadline = 55;
  EXPECT_FALSE(QpaSchedulable({tight, other}, 1000));
}

// ---------- Overflow hardening (saturating demand accumulation) ----------

// Four half-scale giants: each task's per-hyperperiod demand fits in 63 bits
// but their sum is 2^63, which used to wrap negative and read as "fits".
std::vector<PeriodicTask> GiantTaskSet() {
  std::vector<PeriodicTask> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(PeriodicTask::Implicit(i, TimeNs{1} << 61, TimeNs{1} << 61));
  }
  return tasks;
}

TEST(DemandBound, SaturatesInsteadOfWrapping) {
  // At t = kTimeNever each task releases 3 jobs (demand 3 * 2^61); the
  // accumulated total exceeds 2^63 and must clamp to kTimeNever, never go
  // negative.
  EXPECT_EQ(DemandBound(GiantTaskSet(), kTimeNever), kTimeNever);
}

TEST(DemandBound, SingleTaskProductSaturates) {
  // jobs * cost alone overflows (3 jobs of 2^62 each): the per-task product
  // must saturate before accumulation.
  PeriodicTask heavy;
  heavy.vcpu = 0;
  heavy.cost = TimeNs{1} << 62;
  heavy.period = TimeNs{1} << 61;
  heavy.deadline = TimeNs{1} << 61;
  EXPECT_EQ(DemandBound({heavy}, kTimeNever), kTimeNever);
}

TEST(Schedulability, OverflowingUtilizationRejectsNotAdmits) {
  // Total demand 4 * 2^61 = 2^63 over a 2^61 hyperperiod: wildly over
  // capacity. A wrapping total would be negative (i.e. "under capacity") and
  // both tests would wrongly admit.
  const TimeNs h = TimeNs{1} << 61;
  EXPECT_FALSE(QpaSchedulable(GiantTaskSet(), h));
  EXPECT_FALSE(DemandBoundSchedulable(GiantTaskSet(), h));
}

TEST(Schedulability, AdmissionLadderRejectsOverflowingSetAtUtilizationRung) {
  const TimeNs h = TimeNs{1} << 61;
  const AdmissionDecision decision = AdmitCore(GiantTaskSet(), h);
  EXPECT_FALSE(decision.schedulable);
  EXPECT_EQ(decision.rung, AdmissionRung::kUtilization);
}

TEST(Schedulability, QpaHandlesMaximalHyperperiod) {
  // H == kTimeNever exercises the analysis-bound guard (H + 1 would
  // overflow). One modest task: trivially schedulable.
  EXPECT_TRUE(QpaSchedulable({PeriodicTask::Implicit(0, 1, kTimeNever)}, kTimeNever));
}

// ---------- Partitioning ----------

TEST(Partition, AllFitOnOneCore) {
  const TimeNs h = 1000;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 300, 1000),
                                     PeriodicTask::Implicit(1, 300, 1000)};
  const PartitionResult result = WorstFitDecreasing(tasks, 1, h);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.core_tasks[0].size(), 2u);
}

TEST(Partition, SpreadsLoadWorstFit) {
  const TimeNs h = 1000;
  std::vector<PeriodicTask> tasks = {
      PeriodicTask::Implicit(0, 400, 1000), PeriodicTask::Implicit(1, 400, 1000),
      PeriodicTask::Implicit(2, 300, 1000), PeriodicTask::Implicit(3, 300, 1000)};
  const PartitionResult result = WorstFitDecreasing(tasks, 2, h);
  ASSERT_TRUE(result.complete);
  // Worst-fit decreasing alternates the two 400s, then balances the 300s.
  EXPECT_EQ(TotalDemand(result.core_tasks[0], h), 700);
  EXPECT_EQ(TotalDemand(result.core_tasks[1], h), 700);
}

TEST(Partition, ReportsUnassignable) {
  const TimeNs h = 1000;
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 700, 1000),
                                     PeriodicTask::Implicit(1, 700, 1000),
                                     PeriodicTask::Implicit(2, 700, 1000)};
  const PartitionResult result = WorstFitDecreasing(tasks, 2, h);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.unassigned.size(), 1u);
}

TEST(Partition, NeverOverloadsACore) {
  Rng rng(5);
  const TimeNs h = kHyperperiodNs;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      VcpuRequest request;
      request.vcpu = i;
      request.utilization = rng.UniformDouble(0.05, 0.9);
      request.latency_goal = rng.UniformInt(5 * kMillisecond, 100 * kMillisecond);
      tasks.push_back(MapRequestToTask(request)->task);
    }
    const PartitionResult result = WorstFitDecreasing(tasks, 8, h);
    for (const auto& core : result.core_tasks) {
      EXPECT_LE(TotalDemand(core, h), h);
      EXPECT_TRUE(EdfSchedulable(core, h));
    }
  }
}

// ---------- C=D splitting ----------

TEST(CdSplit, SplitsTaskAcrossTwoCores) {
  const TimeNs h = kHyperperiodNs;
  const TimeNs period = kHyperperiodNs / 8;  // ~12.8 ms.
  // Two cores at 60% each cannot take a 70% task whole.
  std::vector<std::vector<PeriodicTask>> cores(2);
  cores[0].push_back(PeriodicTask::Implicit(0, period * 6 / 10, period));
  cores[1].push_back(PeriodicTask::Implicit(1, period * 6 / 10, period));
  const PeriodicTask big = PeriodicTask::Implicit(2, period * 7 / 10, period);

  ASSERT_TRUE(CdSplitTask(big, cores, h, kMinPeriodNs));
  // The split pieces must sum to the original cost.
  TimeNs total = 0;
  int pieces = 0;
  for (const auto& core : cores) {
    for (const PeriodicTask& task : core) {
      if (task.vcpu == 2) {
        total += task.cost;
        ++pieces;
      }
    }
  }
  EXPECT_EQ(total, big.cost);
  EXPECT_GE(pieces, 2);
  // Both cores must still be schedulable.
  for (const auto& core : cores) {
    EXPECT_TRUE(EdfSchedulable(core, h));
  }
}

TEST(CdSplit, PiecesNeverOverlapInTime) {
  const TimeNs h = kHyperperiodNs;
  const TimeNs period = kHyperperiodNs / 8;
  std::vector<std::vector<PeriodicTask>> cores(2);
  cores[0].push_back(PeriodicTask::Implicit(0, period * 55 / 100, period));
  cores[1].push_back(PeriodicTask::Implicit(1, period * 55 / 100, period));
  const PeriodicTask big = PeriodicTask::Implicit(2, period * 8 / 10, period);
  ASSERT_TRUE(CdSplitTask(big, cores, h, kMinPeriodNs));

  // Simulate both cores and verify task 2's service intervals are disjoint.
  std::vector<Allocation> service;
  for (const auto& core : cores) {
    const EdfSimResult sim = SimulateEdf(core, h);
    ASSERT_TRUE(sim.schedulable);
    for (const Allocation& alloc : sim.allocations) {
      if (alloc.vcpu == 2) {
        service.push_back(alloc);
      }
    }
  }
  std::sort(service.begin(), service.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < service.size(); ++i) {
    EXPECT_GE(service[i].start, service[i - 1].end);
  }
}

TEST(CdSplit, FailsWhenTrulyInfeasible) {
  const TimeNs h = kHyperperiodNs;
  const TimeNs period = kHyperperiodNs / 8;
  std::vector<std::vector<PeriodicTask>> cores(2);
  cores[0].push_back(PeriodicTask::Implicit(0, period * 95 / 100, period));
  cores[1].push_back(PeriodicTask::Implicit(1, period * 95 / 100, period));
  const PeriodicTask big = PeriodicTask::Implicit(2, period / 2, period);
  EXPECT_FALSE(CdSplitTask(big, cores, h, kMinPeriodNs));
}

TEST(CdSplit, SemiPartitionHandlesHighUtilization) {
  // Classic partitioning failure: n+1 tasks of just over 50% on n cores.
  const TimeNs h = kHyperperiodNs;
  const TimeNs period = kHyperperiodNs / 8;
  std::vector<PeriodicTask> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(PeriodicTask::Implicit(i, period * 52 / 100, period));
  }
  // 5 x 0.52 = 2.6 total on 4... use 3 cores: 1.56 spare, partitioning fits
  // only 1 per core -> 2 leftover need splitting. Verify on 3 cores.
  const SemiPartitionResult result = SemiPartition(tasks, 3, h, kMinPeriodNs);
  EXPECT_TRUE(result.complete);
  EXPECT_GE(result.num_split_tasks, 1);
  for (const auto& core : result.core_tasks) {
    EXPECT_TRUE(EdfSchedulable(core, h));
  }
}

TEST(CdSplit, RandomizedSemiPartitionPreservesDemand) {
  Rng rng(17);
  const TimeNs h = kHyperperiodNs;
  for (int trial = 0; trial < 20; ++trial) {
    const int cores = 4;
    std::vector<PeriodicTask> tasks;
    double total_u = 0;
    int id = 0;
    while (true) {
      const double u = rng.UniformDouble(0.1, 0.7);
      if (total_u + u > 0.92 * cores) {
        break;
      }
      total_u += u;
      VcpuRequest request;
      request.vcpu = id++;
      request.utilization = u;
      request.latency_goal = rng.UniformInt(10 * kMillisecond, 80 * kMillisecond);
      tasks.push_back(MapRequestToTask(request)->task);
    }
    const SemiPartitionResult result = SemiPartition(tasks, cores, h, kMinPeriodNs);
    if (!result.complete) {
      continue;  // Rare; the planner's cluster stage would take over.
    }
    // Every task's total cost across pieces must equal the original.
    std::map<VcpuId, TimeNs> demand;
    for (const auto& core : result.core_tasks) {
      for (const PeriodicTask& task : core) {
        demand[task.vcpu] += task.DemandPerHyperperiod(h);
      }
      EXPECT_TRUE(EdfSchedulable(core, h));
    }
    for (const PeriodicTask& task : tasks) {
      EXPECT_EQ(demand[task.vcpu], task.DemandPerHyperperiod(h)) << "task " << task.vcpu;
    }
  }
}

// ---------- DP-Fair cluster scheduling ----------

TEST(DpFair, EmptyTaskSet) {
  const ClusterScheduleResult result = DpFairSchedule({}, 2, 1000);
  EXPECT_TRUE(result.success);
}

TEST(DpFair, RejectsOverUtilized) {
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 90, 100),
                                     PeriodicTask::Implicit(1, 90, 100),
                                     PeriodicTask::Implicit(2, 90, 100)};
  EXPECT_FALSE(DpFairSchedule(tasks, 2, 1000).success);
}

TEST(DpFair, SchedulesUnpartitionableSet) {
  // Three 2/3 tasks on two cores: impossible to partition, trivial for an
  // optimal scheduler.
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 200, 300),
                                     PeriodicTask::Implicit(1, 200, 300),
                                     PeriodicTask::Implicit(2, 200, 300)};
  const ClusterScheduleResult result = DpFairSchedule(tasks, 2, 1200);
  ASSERT_TRUE(result.success);

  // Each task gets exactly C per period window.
  for (const PeriodicTask& task : tasks) {
    for (TimeNs window = 0; window < 1200; window += task.period) {
      TimeNs served = 0;
      for (const auto& core : result.core_allocations) {
        for (const Allocation& alloc : core) {
          if (alloc.vcpu != task.vcpu) {
            continue;
          }
          const TimeNs lo = std::max(alloc.start, window);
          const TimeNs hi = std::min(alloc.end, window + task.period);
          served += std::max<TimeNs>(0, hi - lo);
        }
      }
      EXPECT_EQ(served, task.cost) << "task " << task.vcpu << " window " << window;
    }
  }
}

TEST(DpFair, NoTaskRunsOnTwoCoresConcurrently) {
  std::vector<PeriodicTask> tasks = {PeriodicTask::Implicit(0, 200, 300),
                                     PeriodicTask::Implicit(1, 250, 300),
                                     PeriodicTask::Implicit(2, 140, 300),
                                     PeriodicTask::Implicit(3, 170, 400)};
  const ClusterScheduleResult result = DpFairSchedule(tasks, 3, 1200);
  ASSERT_TRUE(result.success);
  struct Interval {
    TimeNs start, end;
  };
  std::map<VcpuId, std::vector<Interval>> per_task;
  for (const auto& core : result.core_allocations) {
    TimeNs prev_end = 0;
    for (const Allocation& alloc : core) {
      EXPECT_GE(alloc.start, prev_end);  // Per-core non-overlap and order.
      prev_end = alloc.end;
      per_task[alloc.vcpu].push_back({alloc.start, alloc.end});
    }
  }
  for (auto& [vcpu, intervals] : per_task) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].start, intervals[i - 1].end) << "vcpu " << vcpu;
    }
  }
}

TEST(DpFair, RandomizedExactServicePerPeriod) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const int cores = static_cast<int>(rng.UniformInt(2, 4));
    const TimeNs h = 2400;
    const std::vector<TimeNs> periods = {300, 400, 600, 800, 1200, 2400};
    std::vector<PeriodicTask> tasks;
    TimeNs total = 0;
    int id = 0;
    while (true) {
      const TimeNs period = periods[static_cast<std::size_t>(rng.UniformInt(0, 5))];
      const TimeNs cost = rng.UniformInt(1, period - 1);
      const TimeNs demand = cost * (h / period);
      if (total + demand > cores * h) {
        break;
      }
      total += demand;
      tasks.push_back(PeriodicTask::Implicit(id++, cost, period));
      if (id > 12) {
        break;
      }
    }
    const ClusterScheduleResult result = DpFairSchedule(tasks, cores, h);
    ASSERT_TRUE(result.success) << "trial " << trial;
    for (const PeriodicTask& task : tasks) {
      TimeNs served = 0;
      for (const auto& core : result.core_allocations) {
        for (const Allocation& alloc : core) {
          if (alloc.vcpu == task.vcpu) {
            served += alloc.Length();
          }
        }
      }
      EXPECT_EQ(served, task.DemandPerHyperperiod(h))
          << "trial " << trial << " task " << task.vcpu;
    }
  }
}

}  // namespace
}  // namespace tableau
