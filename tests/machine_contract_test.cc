// Contract tests: the machine must abort (TABLEAU_CHECK) when a scheduler
// violates its interface — picking a blocked vCPU, picking a vCPU that is
// already running elsewhere, or returning a decision that does not advance
// time. These contracts are what make the fuzz suite meaningful.
#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {
namespace {

enum class Misbehavior {
  kPickBlocked,
  kPickRunningElsewhere,
  kNonAdvancingDecision,
  kNegativeOpCost,
};

// A scheduler that behaves correctly until told to misbehave.
class EvilScheduler : public VcpuScheduler {
 public:
  explicit EvilScheduler(Misbehavior misbehavior) : misbehavior_(misbehavior) {}

  std::string Name() const override { return "evil"; }
  void AddVcpu(Vcpu* vcpu) override { vcpus_.push_back(vcpu); }

  Decision PickNext(CpuId cpu) override {
    Decision decision;
    switch (misbehavior_) {
      case Misbehavior::kPickBlocked:
        decision.vcpu = vcpus_[0]->id();  // vCPU 0 is never woken.
        decision.until = machine_->Now() + kMillisecond;
        return decision;
      case Misbehavior::kPickRunningElsewhere:
        // Always pick vCPU 1 on every CPU.
        decision.vcpu = vcpus_[1]->id();
        decision.until = machine_->Now() + kMillisecond;
        return decision;
      case Misbehavior::kNonAdvancingDecision:
        decision.vcpu = kIdleVcpu;
        decision.until = machine_->Now();  // Not in the future.
        return decision;
      case Misbehavior::kNegativeOpCost:
        machine_->AddOpCost(-5);
        decision.vcpu = kIdleVcpu;
        decision.until = kTimeNever;
        return decision;
    }
    (void)cpu;
    return decision;
  }

  void OnWakeup(Vcpu* vcpu) override { (void)vcpu; }
  void OnBlock(Vcpu* vcpu, CpuId cpu) override {
    (void)vcpu;
    (void)cpu;
  }
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override {
    (void)vcpu;
    (void)cpu;
    (void)reason;
  }

 private:
  Misbehavior misbehavior_;
  std::vector<Vcpu*> vcpus_;
};

void RunEvil(Misbehavior misbehavior) {
  MachineConfig config;
  config.num_cpus = 2;
  config.cores_per_socket = 2;
  Machine machine(config, std::make_unique<EvilScheduler>(misbehavior));
  Vcpu* blocked = machine.AddVcpu(VcpuParams{});
  (void)blocked;  // Stays blocked forever.
  Vcpu* runnable = machine.AddVcpu(VcpuParams{});
  runnable->set_remaining_burst(kTimeNever);
  runnable->on_burst_complete = [] {};
  machine.sim().ScheduleAt(0, [&] { machine.Wake(runnable->id()); });
  machine.Start();
  machine.RunFor(10 * kMillisecond);
}

TEST(MachineContractDeathTest, PickingBlockedVcpuAborts) {
  EXPECT_DEATH(RunEvil(Misbehavior::kPickBlocked), "picked blocked vCPU");
}

TEST(MachineContractDeathTest, PickingRunningVcpuOnSecondCpuAborts) {
  EXPECT_DEATH(RunEvil(Misbehavior::kPickRunningElsewhere), "already running");
}

TEST(MachineContractDeathTest, NonAdvancingDecisionAborts) {
  EXPECT_DEATH(RunEvil(Misbehavior::kNonAdvancingDecision), "non-advancing");
}

TEST(MachineContractDeathTest, NegativeOpCostAborts) {
  EXPECT_DEATH(RunEvil(Misbehavior::kNegativeOpCost), "cost >= 0");
}

TEST(MachineContractDeathTest, BlockingNonRunningVcpuAborts) {
  MachineConfig config;
  config.num_cpus = 1;
  config.cores_per_socket = 1;
  Machine machine(config, std::make_unique<EvilScheduler>(Misbehavior::kNegativeOpCost));
  Vcpu* vcpu = machine.AddVcpu(VcpuParams{});
  EXPECT_DEATH(machine.Block(vcpu), "non-running vCPU");
}

}  // namespace
}  // namespace tableau
