// Property battery for the demand predictor and the adaptive reservation
// policy (src/adapt): exact recovery of linear demand, bounded noise
// amplification, monotone response to the newest sample, bit-identical
// snapshot/restore, and the controller's hold/grow/shrink hysteresis
// contract (no-data holds, cooldown, deadbands, clamps, saturation probe,
// shrink floor).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/adapt/controller.h"
#include "src/adapt/predictor.h"
#include "src/common/rng.h"

namespace tableau::adapt {
namespace {

using Action = AdaptiveController::Action;
using Decision = AdaptiveController::Decision;

TEST(DemandPredictor, RecoversLinearDemandExactly) {
  PredictorConfig config;
  DemandPredictor predictor(config);
  const double a = 0.1;
  const double b = 0.02;
  for (int i = 0; i < config.fit_window; ++i) {
    predictor.Observe(a + b * static_cast<double>(i));
  }
  const DemandPredictor::Prediction prediction = predictor.Predict();
  EXPECT_TRUE(prediction.from_fit);
  // Last sample at abscissa fit_window - 1; extrapolated `horizon` ahead.
  const double expect =
      a + b * static_cast<double>(config.fit_window - 1 + config.horizon);
  EXPECT_NEAR(prediction.demand, expect, 1e-12);
}

TEST(DemandPredictor, RecoversLinearDemandAcrossRingWrap) {
  PredictorConfig config;
  DemandPredictor predictor(config);
  const double a = 0.05;
  const double b = 0.004;
  // 40 > history (32): the ring wraps; the fit must still see the last
  // fit_window samples in order.
  for (int i = 0; i < 40; ++i) {
    predictor.Observe(a + b * static_cast<double>(i));
  }
  const DemandPredictor::Prediction prediction = predictor.Predict();
  EXPECT_TRUE(prediction.from_fit);
  const double expect = a + b * static_cast<double>(39 + config.horizon);
  EXPECT_NEAR(prediction.demand, expect, 1e-12);
}

TEST(DemandPredictor, ColdStartFallsBackToQuantile) {
  DemandPredictor predictor;
  EXPECT_EQ(predictor.Predict().demand, 0.0);
  predictor.Observe(0.3);
  predictor.Observe(0.5);
  const DemandPredictor::Prediction prediction = predictor.Predict();
  EXPECT_FALSE(prediction.from_fit);
  // Nearest-rank p99 of two samples is the max.
  EXPECT_EQ(prediction.demand, 0.5);
}

TEST(DemandPredictor, NoiseErrorIsBoundedByWeightMass) {
  PredictorConfig config;
  const int m = config.fit_window;
  // The prediction is linear in the observations with weights
  //   w_i = 1/m + (x_i - x_mean)(x_pred - x_mean) / Sxx,
  // so |error| <= epsilon * sum_i |w_i| for any noise bounded by epsilon.
  const double x_mean = static_cast<double>(m - 1) / 2.0;
  const double x_pred = static_cast<double>(m - 1 + config.horizon);
  double sxx = 0;
  for (int i = 0; i < m; ++i) {
    const double dx = static_cast<double>(i) - x_mean;
    sxx += dx * dx;
  }
  double weight_mass = 0;
  for (int i = 0; i < m; ++i) {
    const double dx = static_cast<double>(i) - x_mean;
    weight_mass +=
        std::abs(1.0 / static_cast<double>(m) + dx * (x_pred - x_mean) / sxx);
  }

  Rng rng(0xadaf7);
  const double epsilon = 0.02;
  for (int trial = 0; trial < 200; ++trial) {
    DemandPredictor predictor(config);
    const double a = 0.05 + 0.4 * rng.UniformDouble();
    const double b = 0.02 * (rng.UniformDouble() - 0.5);
    for (int i = 0; i < m; ++i) {
      const double noise = epsilon * (2.0 * rng.UniformDouble() - 1.0);
      predictor.Observe(
          std::max(a + b * static_cast<double>(i) + noise, 0.0));
    }
    const double truth = a + b * x_pred;
    const double predicted = predictor.Predict().demand;
    EXPECT_LE(std::abs(predicted - std::max(truth, 0.0)),
              epsilon * weight_mass + 1e-9)
        << "trial " << trial;
  }
}

TEST(DemandPredictor, PredictionIsMonotoneInNewestSample) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 100; ++trial) {
    DemandPredictor low;
    DemandPredictor high;
    const int prefix = 3 + static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < prefix; ++i) {
      const double demand = rng.UniformDouble();
      low.Observe(demand);
      high.Observe(demand);
    }
    const double last = rng.UniformDouble();
    low.Observe(last);
    high.Observe(last + 0.1);
    // The newest sample's fit weight is strictly positive, so raising it
    // must never lower the prediction (a load step is never predicted
    // downward) — and raises it strictly whenever the >= 0 clamp is not
    // pinning both predictions at zero.
    const double low_predicted = low.Predict().demand;
    const double high_predicted = high.Predict().demand;
    EXPECT_GE(high_predicted, low_predicted) << "trial " << trial;
    if (high_predicted > 0.0) {
      EXPECT_GT(high_predicted, low_predicted) << "trial " << trial;
    }
  }
}

TEST(DemandPredictor, StepResponseConvergesUpward) {
  DemandPredictor predictor;
  for (int i = 0; i < 8; ++i) {
    predictor.Observe(0.1);
  }
  const double baseline = predictor.Predict().demand;
  // After the step every prediction stays at or above the old level (the
  // fit may overshoot while the trend is rising, then settle), passes the
  // new level, and converges to it once the fit window is all post-step.
  bool passed_level = false;
  double predicted = baseline;
  for (int i = 0; i < 12; ++i) {
    predictor.Observe(0.8);
    predicted = predictor.Predict().demand;
    EXPECT_GE(predicted, baseline - 1e-12) << "step window " << i;
    passed_level = passed_level || predicted >= 0.8;
  }
  EXPECT_TRUE(passed_level);
  EXPECT_NEAR(predicted, 0.8, 1e-9);
}

TEST(DemandPredictor, SnapshotRestoreIsBitIdentical) {
  DemandPredictor original;
  Rng rng(0xb17);
  for (int i = 0; i < 37; ++i) {
    original.Observe(rng.UniformDouble() / 3.0);  // Non-representable thirds.
  }
  const DemandPredictor::State state = original.Snapshot();

  DemandPredictor restored;
  restored.Restore(state);
  EXPECT_TRUE(restored.Snapshot() == state);
  // Bit-identical outputs now...
  EXPECT_EQ(restored.Predict().demand, original.Predict().demand);
  EXPECT_EQ(restored.Quantile(0.99), original.Quantile(0.99));
  // ...and bit-identical evolution under the same future inputs.
  for (int i = 0; i < 40; ++i) {
    const double demand = rng.UniformDouble();
    original.Observe(demand);
    restored.Observe(demand);
    EXPECT_EQ(restored.Predict().demand, original.Predict().demand);
  }
  EXPECT_TRUE(restored.Snapshot() == original.Snapshot());
}

TEST(DemandPredictor, QuantileIsNearestRank) {
  DemandPredictor predictor;
  for (const double demand : {0.5, 0.1, 0.3, 0.2, 0.4}) {
    predictor.Observe(demand);
  }
  EXPECT_EQ(predictor.Quantile(0.0), 0.1);   // rank clamps to 1
  EXPECT_EQ(predictor.Quantile(0.2), 0.1);   // ceil(1.0) = 1
  EXPECT_EQ(predictor.Quantile(0.5), 0.3);   // ceil(2.5) = 3
  EXPECT_EQ(predictor.Quantile(0.99), 0.5);  // ceil(4.95) = 5
  EXPECT_EQ(predictor.Quantile(1.0), 0.5);
}

// --- Controller policy ---

VmLimits TestLimits(double min = 1.0 / 32, double max = 1.0) {
  VmLimits limits;
  limits.min_utilization = min;
  limits.max_utilization = max;
  return limits;
}

TEST(AdaptiveController, NoDataWindowHoldsAndPreservesPredictor) {
  AdaptiveController controller;
  controller.BindVm(0, 0.25, TestLimits());
  for (int w = 0; w < 10; ++w) {
    const Decision decision = controller.ObserveWindow(
        0, /*has_data=*/false, /*supply_fraction=*/0.0, /*demand_fraction=*/0.0);
    EXPECT_EQ(decision.action, Action::kHold);
    EXPECT_TRUE(decision.no_data);
  }
  EXPECT_EQ(controller.counters().no_data, 10u);
  EXPECT_EQ(controller.counters().grows, 0u);
  EXPECT_EQ(controller.counters().shrinks, 0u);
  EXPECT_EQ(controller.reservation(0), 0.25);
}

TEST(AdaptiveController, GrowsOnHighDemandQuantizedUp) {
  AdaptiveController controller;
  controller.BindVm(0, 0.125, TestLimits());
  const Decision decision = controller.ObserveWindow(0, true, 0.5, 0.5);
  ASSERT_EQ(decision.action, Action::kGrow);
  // 0.5 * 1.3 headroom = 0.65, quantized up to the 1/32 grid = 21/32.
  EXPECT_NEAR(decision.target, 21.0 / 32, 1e-12);
}

TEST(AdaptiveController, CooldownBlocksConsecutiveResizes) {
  AdaptiveController controller;
  controller.BindVm(0, 0.125, TestLimits());
  const Decision first = controller.ObserveWindow(0, true, 0.5, 0.5);
  ASSERT_EQ(first.action, Action::kGrow);
  controller.CommitResize(0, first.target);
  const int cooldown = controller.config().cooldown_windows;
  for (int w = 0; w < cooldown; ++w) {
    const Decision held = controller.ObserveWindow(0, true, 0.9, 0.9);
    EXPECT_EQ(held.action, Action::kHold) << "cooldown window " << w;
  }
  EXPECT_EQ(controller.counters().cooldown_holds,
            static_cast<std::uint64_t>(cooldown));
  // Cooldown spent: the still-high demand may act again.
  const Decision after = controller.ObserveWindow(0, true, 0.9, 0.9);
  EXPECT_EQ(after.action, Action::kGrow);
}

TEST(AdaptiveController, NoDataWindowsDoNotSpendCooldown) {
  AdaptiveController controller;
  controller.BindVm(0, 0.125, TestLimits());
  controller.CommitResize(0, 0.25);
  for (int w = 0; w < 20; ++w) {
    controller.ObserveWindow(0, false, 0.0, 0.0);
  }
  // Idle windows held without decrementing the cooldown: the first data
  // windows afterwards are still cooldown holds.
  const Decision held = controller.ObserveWindow(0, true, 0.9, 0.9);
  EXPECT_EQ(held.action, Action::kHold);
  EXPECT_GE(controller.counters().cooldown_holds, 1u);
}

TEST(AdaptiveController, RejectAlsoStartsCooldown) {
  AdaptiveController controller;
  controller.BindVm(0, 0.125, TestLimits());
  const Decision first = controller.ObserveWindow(0, true, 0.5, 0.5);
  ASSERT_EQ(first.action, Action::kGrow);
  controller.RejectResize(0);
  EXPECT_EQ(controller.reservation(0), 0.125);  // Unchanged on reject.
  const Decision held = controller.ObserveWindow(0, true, 0.5, 0.5);
  EXPECT_EQ(held.action, Action::kHold);
  EXPECT_EQ(controller.counters().rejects, 1u);
}

TEST(AdaptiveController, DeadbandHoldsNearTheReservation) {
  AdaptiveController controller;
  // Reservation exactly at the quantized target for demand 0.5.
  controller.BindVm(0, 21.0 / 32, TestLimits());
  const Decision decision = controller.ObserveWindow(0, true, 0.5, 0.5);
  EXPECT_EQ(decision.action, Action::kHold);
}

TEST(AdaptiveController, SaturationProbesMultiplicatively) {
  AdaptiveController controller;
  controller.BindVm(0, 0.25, TestLimits());
  // Supply capped at the reservation, demand at the ceiling: the fit only
  // sees 0.25, but the backlog forces a multiplicative probe.
  const Decision decision = controller.ObserveWindow(0, true, 0.25, 1.0);
  EXPECT_TRUE(decision.saturated);
  ASSERT_EQ(decision.action, Action::kGrow);
  EXPECT_GE(decision.target,
            0.25 * controller.config().saturation_growth - 1e-12);
}

TEST(AdaptiveController, TargetsClampToVmLimits) {
  AdaptiveController controller;
  controller.BindVm(0, 0.125, TestLimits(1.0 / 32, 0.25));
  const Decision grow = controller.ObserveWindow(0, true, 0.9, 0.9);
  ASSERT_EQ(grow.action, Action::kGrow);
  EXPECT_EQ(grow.target, 0.25);  // Capped at max_utilization.

  controller.BindVm(1, 0.5, TestLimits(0.25, 1.0));
  // Demand collapses to ~0: the shrink floors at min_utilization. The
  // predictor needs the ring full of small samples before the p99 floor
  // lets go of the start-up demand.
  Decision shrink;
  for (int w = 0; w < 40; ++w) {
    shrink = controller.ObserveWindow(1, true, 0.01, 0.01);
  }
  ASSERT_EQ(shrink.action, Action::kShrink);
  EXPECT_EQ(shrink.target, 0.25);  // Clamped at min_utilization.
}

TEST(AdaptiveController, NeverShrinksBelowObservedHighQuantile) {
  AdaptiveController controller;
  controller.BindVm(0, 0.75, TestLimits());
  // Mostly-low demand with a recurring 0.4 burst every 10th window. Once a
  // burst is in the retained ring (history 32 > burst spacing), the p99
  // floor holds 0.4, so no later shrink may go below it.
  Rng rng(0xf100d);
  for (int w = 0; w < 100; ++w) {
    const double demand = (w % 10 == 9) ? 0.4 : 0.05 * rng.UniformDouble();
    const Decision decision = controller.ObserveWindow(0, true, demand, demand);
    if (decision.action == Action::kHold) {
      continue;
    }
    if (decision.action == Action::kShrink && w >= 10) {
      EXPECT_GE(decision.target, 0.4 - 1e-12) << "window " << w;
    }
    controller.CommitResize(0, decision.target);
  }
  // The loop settled onto the burst level, not the low-demand trough.
  EXPECT_GE(controller.reservation(0), 0.4 - 1e-12);
  EXPECT_GE(controller.counters().commits, 1u);
}

}  // namespace
}  // namespace tableau::adapt
