// Randomized end-to-end robustness tests: random machine shapes, VM counts,
// reservations, and workload mixes, run under every scheduler. The machine
// itself enforces hard contracts (no vCPU on two CPUs, no blocked vCPU
// dispatched, no non-advancing decisions, time never runs backwards) via
// TABLEAU_CHECK, so simply completing a run is a strong property; on top of
// that these tests assert conservation and cap invariants.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/harness/scenario.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"
#include "src/workloads/stress.h"
#include "src/workloads/web.h"

namespace tableau {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  SchedKind kind;
  bool capped;
};

class SchedulerFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SchedulerFuzz, RandomWorkloadMixObeysInvariants) {
  const FuzzCase param = GetParam();
  Rng rng(param.seed);

  ScenarioConfig config;
  config.scheduler = param.kind;
  config.capped = param.capped;
  config.guest_cpus = static_cast<int>(rng.UniformInt(2, 8));
  config.cores_per_socket = config.guest_cpus <= 3 ? config.guest_cpus
                                                   : (config.guest_cpus + 1) / 2;
  config.vms_per_core = static_cast<int>(rng.UniformInt(2, 4));
  config.utilization = 1.0 / config.vms_per_core;
  config.latency_goal = rng.UniformInt(10, 80) * kMillisecond;
  Scenario scenario = BuildScenario(config);

  // Random workload per VM: CPU hog, I/O stress (either profile), noisy
  // guest, or ping responder.
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  std::vector<std::unique_ptr<WorkQueueGuest>> guests;
  std::vector<std::unique_ptr<SystemNoiseWorkload>> noise;
  std::vector<std::unique_ptr<PingTraffic>> pings;
  for (std::size_t i = 0; i < scenario.vcpus.size(); ++i) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        hogs.push_back(
            std::make_unique<CpuHogWorkload>(scenario.machine, scenario.vcpus[i]));
        hogs.back()->Start(0);
        break;
      case 1: {
        StressIoWorkload::Config stress_config;
        if (rng.UniformDouble() < 0.5) {
          stress_config = StressIoWorkload::Config::Heavy();
        }
        stress_config.seed = param.seed * 1000 + i;
        stress.push_back(std::make_unique<StressIoWorkload>(
            scenario.machine, scenario.vcpus[i], stress_config));
        stress.back()->Start(0);
        break;
      }
      case 2: {
        guests.push_back(std::make_unique<WorkQueueGuest>(scenario.machine,
                                                          scenario.vcpus[i]));
        SystemNoiseWorkload::Config noise_config;
        noise_config.seed = param.seed * 1000 + i;
        noise.push_back(std::make_unique<SystemNoiseWorkload>(
            scenario.machine, guests.back().get(), noise_config));
        noise.back()->Start(0);
        break;
      }
      default: {
        guests.push_back(std::make_unique<WorkQueueGuest>(scenario.machine,
                                                          scenario.vcpus[i]));
        PingTraffic::Config ping_config;
        ping_config.threads = 2;
        ping_config.pings_per_thread = 200;
        ping_config.max_spacing = 8 * kMillisecond;
        ping_config.seed = param.seed * 1000 + i;
        pings.push_back(std::make_unique<PingTraffic>(scenario.machine,
                                                      guests.back().get(), ping_config));
        pings.back()->Start(0);
        break;
      }
    }
  }

  const TimeNs duration = 2 * kSecond;
  scenario.machine->Start();
  scenario.machine->RunFor(duration);

  // Conservation: per-CPU busy + overhead never exceeds wall time, and the
  // sum of guest service equals the sum of busy time.
  TimeNs busy_total = 0;
  for (int cpu = 0; cpu < scenario.machine->num_cpus(); ++cpu) {
    EXPECT_LE(scenario.machine->cpu_busy_ns(cpu) + scenario.machine->cpu_overhead_ns(cpu),
              duration + kMillisecond);
    busy_total += scenario.machine->cpu_busy_ns(cpu);
  }
  TimeNs service_total = 0;
  for (const Vcpu* vcpu : scenario.vcpus) {
    service_total += vcpu->total_service();
  }
  EXPECT_EQ(busy_total, service_total);

  // Cap invariant: no capped vCPU may exceed its reservation by more than
  // accounting slack (one replenishment period's worth).
  if (param.capped) {
    for (const Vcpu* vcpu : scenario.vcpus) {
      const double share =
          static_cast<double>(vcpu->total_service()) / static_cast<double>(duration);
      EXPECT_LE(share, config.utilization + 0.05) << "vcpu " << vcpu->id();
    }
  }
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  const struct {
    SchedKind kind;
    bool capped;
  } kinds[] = {{SchedKind::kCredit, true},  {SchedKind::kCredit, false},
               {SchedKind::kCredit2, false}, {SchedKind::kRtds, true},
               {SchedKind::kTableau, true},  {SchedKind::kTableau, false},
               {SchedKind::kCfs, true},      {SchedKind::kCfs, false}};
  std::uint64_t seed = 1;
  for (const auto& kind : kinds) {
    for (int i = 0; i < 3; ++i) {
      cases.push_back(FuzzCase{seed++, kind.kind, kind.capped});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, SchedulerFuzz, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return std::string(SchedKindName(info.param.kind)) +
                                  (info.param.capped ? "Capped" : "Uncapped") + "Seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace tableau
