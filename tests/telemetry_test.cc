// Tests for the windowed telemetry layer: TimeSeriesRecorder ring/window
// semantics and order-independent merge, the causal LatencyAttributor's
// exact time-partitioning (scripted and end-to-end across all five
// schedulers), the per-VM SloTracker's window/streak/burst logic, Perfetto
// flow-event export, and — most load-bearing — the purity guarantee: a run
// with telemetry attached is trace-fingerprint-identical to one without.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"
#include "src/obs/telemetry.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_export.h"
#include "src/sim/sharded_sim.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"

namespace tableau {
namespace {

using obs::AttributedInterval;
using obs::LatencyAttributor;
using obs::LatencyBreakdown;
using obs::LatencyComponent;
using obs::SloConfig;
using obs::SloTracker;
using obs::SloVerdict;
using obs::SlipSplit;
using obs::Telemetry;
using obs::TimeSeriesRecorder;
using obs::TimeSeriesSnapshot;
using obs::TimeSeriesWindow;

// --- TimeSeriesRecorder: windows, ranges, eviction, merge ---

TEST(TimeSeriesRecorder, ObserveAggregatesIntoWindows) {
  TimeSeriesRecorder recorder({/*window_ns=*/100, /*window_capacity=*/8});
  const auto id = recorder.DefineSeries("s");
  recorder.Observe(id, 10, 5);
  recorder.Observe(id, 50, 7);
  recorder.Observe(id, 150, -2);

  const TimeSeriesSnapshot snapshot = recorder.Snapshot();
  const auto& windows = snapshot.series.at("s").windows;
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start, 0);
  EXPECT_EQ(windows[0].count, 2);
  EXPECT_EQ(windows[0].sum, 12);
  EXPECT_EQ(windows[0].min, 5);
  EXPECT_EQ(windows[0].max, 7);
  EXPECT_EQ(windows[1].start, 100);
  EXPECT_EQ(windows[1].count, 1);
  EXPECT_EQ(windows[1].sum, -2);
}

TEST(TimeSeriesRecorder, AddRangeSplitsAcrossWindowBoundaries) {
  TimeSeriesRecorder recorder({/*window_ns=*/100, /*window_capacity=*/8});
  const auto id = recorder.DefineSeries("busy");
  recorder.AddRange(id, 50, 250);  // 50 in w0, 100 in w1, 50 in w2.

  const auto& windows = recorder.Snapshot().series.at("busy").windows;
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].sum, 50);
  EXPECT_EQ(windows[1].sum, 100);
  EXPECT_EQ(windows[2].sum, 50);
  std::int64_t total = 0;
  for (const TimeSeriesWindow& window : windows) {
    total += window.sum;
  }
  EXPECT_EQ(total, 200);  // Exactly the range length: nothing lost or doubled.
}

TEST(TimeSeriesRecorder, RingEvictsOldWindowsAndCountsLateSamples) {
  TimeSeriesRecorder recorder({/*window_ns=*/100, /*window_capacity=*/4});
  const auto id = recorder.DefineSeries("s");
  recorder.Observe(id, 10, 1);    // Window 0.
  recorder.Observe(id, 950, 2);   // Window 9: evicts everything before 6.

  TimeSeriesSnapshot snapshot = recorder.Snapshot();
  const auto& data = snapshot.series.at("s");
  ASSERT_EQ(data.windows.size(), 4u);
  EXPECT_EQ(data.windows.front().start, 600);
  EXPECT_EQ(data.windows.back().start, 900);
  EXPECT_EQ(data.windows.back().sum, 2);
  EXPECT_EQ(data.dropped_windows, 1u);  // Only window 0 had been opened.

  recorder.Observe(id, 10, 3);  // Behind the ring now: counted, not recorded.
  EXPECT_EQ(recorder.Snapshot().series.at("s").late_samples, 1u);
}

TEST(TimeSeriesRecorder, DataAtDistinguishesNoDataFromZero) {
  // Pinned regression: a window with no samples must read as an explicit
  // "no data" (nullptr), never as a window claiming value 0.0 — the
  // adaptive reservation controller would otherwise shrink a briefly-idle
  // VM to its floor on the strength of silence.
  TimeSeriesRecorder recorder({/*window_ns=*/100, /*window_capacity=*/4});
  const auto id = recorder.DefineSeries("s");

  // Before any sample: nothing is retained anywhere.
  EXPECT_EQ(recorder.DataAt(id, 0), nullptr);
  EXPECT_EQ(recorder.DataAt(id, 250), nullptr);

  recorder.Observe(id, 10, 5);    // Window 0.
  recorder.Observe(id, 210, 0);   // Window 2: a real sample of value zero.

  // Window 0 has data; any time inside it resolves to the same window.
  const obs::TimeSeriesWindow* w0 = recorder.DataAt(id, 99);
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->start, 0);
  EXPECT_EQ(w0->sum, 5);

  // Window 1 sits between two sampled windows and was opened by the ring
  // advance — but holds zero samples, so it is "no data", not 0.0.
  EXPECT_EQ(recorder.DataAt(id, 150), nullptr);

  // A genuine zero-valued sample is data: count 1, sum 0 — distinguishable
  // from the nullptr above.
  const obs::TimeSeriesWindow* w2 = recorder.DataAt(id, 210);
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w2->count, 1u);
  EXPECT_EQ(w2->sum, 0);

  // Future windows (never opened) and evicted windows are both no-data.
  EXPECT_EQ(recorder.DataAt(id, 1000), nullptr);
  recorder.Observe(id, 950, 2);  // Window 9 evicts everything before 6.
  EXPECT_EQ(recorder.DataAt(id, 10), nullptr);

  // Invalid series / negative time never fault.
  EXPECT_EQ(recorder.DataAt(TimeSeriesRecorder::kNoSeries, 10), nullptr);
  EXPECT_EQ(recorder.DataAt(id, -5), nullptr);
}

TEST(TimeSeriesSnapshot, MergeIsOrderIndependent) {
  TimeSeriesRecorder a({/*window_ns=*/100, /*window_capacity=*/8});
  const auto ida = a.DefineSeries("shared");
  a.Observe(ida, 10, 5);
  a.Observe(ida, 150, 1);
  const auto only_a = a.DefineSeries("only_a");
  a.Observe(only_a, 10, 9);

  TimeSeriesRecorder b({/*window_ns=*/100, /*window_capacity=*/8});
  const auto idb = b.DefineSeries("shared");
  b.Observe(idb, 20, 3);
  b.Observe(idb, 250, 7);

  TimeSeriesSnapshot ab = a.Snapshot();
  ab.Merge(b.Snapshot());
  TimeSeriesSnapshot ba = b.Snapshot();
  ba.Merge(a.Snapshot());
  EXPECT_EQ(ab, ba);

  const auto& shared = ab.series.at("shared").windows;
  ASSERT_EQ(shared.size(), 3u);  // Windows 0 (merged), 1 (a only), 2 (b only).
  EXPECT_EQ(shared[0].count, 2);
  EXPECT_EQ(shared[0].sum, 8);
  EXPECT_EQ(shared[0].min, 3);
  EXPECT_EQ(shared[0].max, 5);
  EXPECT_EQ(shared[1].sum, 1);
  EXPECT_EQ(shared[2].sum, 7);
  EXPECT_EQ(ab.series.count("only_a"), 1u);
}

TEST(TimeSeriesSnapshot, ShardedSimulationMergesShardRecorders) {
  ShardedSimulation::Options options;
  options.num_shards = 3;
  options.sharded = true;
  ShardedSimulation sharded(options);

  std::vector<std::unique_ptr<TimeSeriesRecorder>> recorders;
  for (int shard = 0; shard < options.num_shards; ++shard) {
    recorders.push_back(std::make_unique<TimeSeriesRecorder>(
        TimeSeriesRecorder::Options{/*window_ns=*/100, /*window_capacity=*/8}));
    const auto id = recorders.back()->DefineSeries("load");
    recorders.back()->Observe(id, 10 * (shard + 1), shard + 1);
    sharded.AttachShardRecorder(shard, recorders.back().get());
  }

  const TimeSeriesSnapshot merged = sharded.MergedTimeSeries();
  const auto& windows = merged.series.at("load").windows;
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].count, 3);
  EXPECT_EQ(windows[0].sum, 6);
  EXPECT_EQ(windows[0].min, 1);
  EXPECT_EQ(windows[0].max, 3);
}

TEST(TimeSeriesSnapshot, JsonAndCsvExportCarrySchemaAndData) {
  TimeSeriesRecorder recorder({/*window_ns=*/100, /*window_capacity=*/8});
  const auto id = recorder.DefineSeries("a,b");  // Awkward CSV name.
  recorder.Observe(id, 10, 4);

  const TimeSeriesSnapshot snapshot = recorder.Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"schema_version\": \"1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"window_ns\": 100"), std::string::npos);

  const std::string csv = snapshot.ToCsv();
  EXPECT_NE(csv.find("series,window_start_ns,count,sum,min,max,mean\n"),
            std::string::npos);
  EXPECT_NE(csv.find("\"a,b\",0,1,4,4,4,4\n"), std::string::npos);
}

// --- LatencyAttributor: scripted exactness ---

TEST(LatencyAttributor, ScriptedTransitionsPartitionTimeExactly) {
  LatencyAttributor attributor;
  attributor.Bind(/*num_vcpus=*/1, /*table_driven=*/true, /*start=*/0);

  AttributedInterval interval = attributor.OnWakeup(0, 100);
  EXPECT_EQ(interval.component, LatencyComponent::kBlocked);
  EXPECT_EQ(interval.from, 0);
  EXPECT_EQ(interval.to, 100);

  interval = attributor.OnDispatch(0, 250);
  EXPECT_EQ(interval.component, LatencyComponent::kWakeQueue);
  EXPECT_EQ(interval.duration(), 150);

  interval = attributor.OnDeschedule(0, 400);
  EXPECT_EQ(interval.component, LatencyComponent::kService);
  EXPECT_EQ(interval.duration(), 150);
  EXPECT_EQ(attributor.StateOf(0), LatencyComponent::kBlackout);

  interval = attributor.OnDispatch(0, 600);
  EXPECT_EQ(interval.component, LatencyComponent::kBlackout);
  EXPECT_EQ(interval.duration(), 200);

  interval = attributor.OnBlock(0, 700);
  EXPECT_EQ(interval.component, LatencyComponent::kService);
  EXPECT_EQ(interval.duration(), 100);

  const LatencyBreakdown totals = attributor.TotalsAt(0, 700);
  EXPECT_EQ(totals[LatencyComponent::kBlocked], 100);
  EXPECT_EQ(totals[LatencyComponent::kWakeQueue], 150);
  EXPECT_EQ(totals[LatencyComponent::kService], 250);
  EXPECT_EQ(totals[LatencyComponent::kBlackout], 200);
  EXPECT_EQ(totals.Total(), 700);  // Every nanosecond in exactly one bucket.

  // The difference of two captures telescopes to the elapsed time.
  const LatencyBreakdown at250 = attributor.TotalsAt(0, 250);
  EXPECT_EQ((totals - at250).Total(), 450);
}

TEST(LatencyAttributor, WorkConservingDescheduleIsPreempt) {
  LatencyAttributor attributor;
  attributor.Bind(1, /*table_driven=*/false, 0);
  attributor.OnWakeup(0, 10);
  attributor.OnDispatch(0, 20);
  attributor.OnDeschedule(0, 50);
  EXPECT_EQ(attributor.StateOf(0), LatencyComponent::kPreempt);
  const LatencyBreakdown totals = attributor.TotalsAt(0, 80);
  EXPECT_EQ(totals[LatencyComponent::kPreempt], 30);
  EXPECT_EQ(totals.Total(), 80);
}

TEST(LatencyAttributor, WakeupWhileRunnableIsNoOp) {
  LatencyAttributor attributor;
  attributor.Bind(1, true, 0);
  attributor.OnWakeup(0, 10);
  const AttributedInterval repeat = attributor.OnWakeup(0, 50);
  EXPECT_TRUE(repeat.empty());
  EXPECT_EQ(attributor.StateOf(0), LatencyComponent::kWakeQueue);
  // The wait keeps accruing from the first wakeup.
  EXPECT_EQ(attributor.TotalsAt(0, 100)[LatencyComponent::kWakeQueue], 90);
}

TEST(LatencyAttributor, SlipReattributionSplitsTrailingWait) {
  LatencyAttributor attributor;
  attributor.Bind(1, true, 0);
  attributor.OnWakeup(0, 100);

  // Waited 200 ns in the wake queue; the switch was 50 ns late, so the
  // trailing 50 ns were the slip's fault.
  const SlipSplit split = attributor.ReattributeSlip(0, 300, 50);
  EXPECT_EQ(split.head.component, LatencyComponent::kWakeQueue);
  EXPECT_EQ(split.head.from, 100);
  EXPECT_EQ(split.head.to, 250);
  EXPECT_EQ(split.tail.component, LatencyComponent::kSwitchSlip);
  EXPECT_EQ(split.tail.from, 250);
  EXPECT_EQ(split.tail.to, 300);

  const LatencyBreakdown totals = attributor.TotalsAt(0, 300);
  EXPECT_EQ(totals[LatencyComponent::kWakeQueue], 150);
  EXPECT_EQ(totals[LatencyComponent::kSwitchSlip], 50);
  EXPECT_EQ(totals.Total(), 300);  // Reattribution moves time, never creates it.

  // Slip larger than the wait: the whole wait becomes slip, not more.
  LatencyAttributor fresh;
  fresh.Bind(1, true, 0);
  fresh.OnWakeup(0, 100);
  const SlipSplit all = fresh.ReattributeSlip(0, 120, 500);
  EXPECT_TRUE(all.head.empty());
  EXPECT_EQ(all.tail.duration(), 20);

  // A running vCPU is untouched.
  LatencyAttributor running;
  running.Bind(1, true, 0);
  running.OnWakeup(0, 10);
  running.OnDispatch(0, 20);
  const SlipSplit none = running.ReattributeSlip(0, 100, 50);
  EXPECT_TRUE(none.head.empty());
  EXPECT_TRUE(none.tail.empty());
}

// --- SloTracker: windows, streaks, bursts ---

SloConfig SmallSlo() {
  SloConfig config;
  config.target_latency_ns = 10;
  config.target_quantile = 0.9;
  config.miss_budget = 0.25;
  config.burst_streak_windows = 2;
  config.window_ns = 100;
  return config;
}

TEST(SloTracker, AttainmentAndBudgetAccounting) {
  SloTracker tracker;
  tracker.Bind(1, SmallSlo());
  tracker.Record(0, 10, 5);    // Hit.
  tracker.Record(0, 20, 5);    // Hit.
  tracker.Record(0, 30, 50);   // Miss.
  tracker.Record(0, 40, 5);    // Hit.

  const SloVerdict verdict = tracker.VerdictFor(0);
  EXPECT_EQ(verdict.requests, 4u);
  EXPECT_EQ(verdict.misses, 1u);
  EXPECT_DOUBLE_EQ(verdict.attainment, 0.75);
  EXPECT_FALSE(verdict.slo_met);  // 0.75 < 0.9 target quantile.
  EXPECT_DOUBLE_EQ(verdict.burn_rate, 1.0);  // 25% misses / 25% budget.
  EXPECT_EQ(verdict.windows_closed, 1u);  // The open window, closed for view.
  EXPECT_EQ(verdict.windows_over_budget, 0u);  // 1/4 == budget, not over.
}

TEST(SloTracker, ConsecutiveOverBudgetWindowsDetectBurst) {
  SloTracker tracker;
  tracker.Bind(1, SmallSlo());
  tracker.Record(0, 10, 100);   // Window 0: 1/1 missed — over budget.
  tracker.Record(0, 110, 100);  // Window 1: over budget; closes window 0.
  tracker.Record(0, 210, 5);    // Window 2: in budget; closes window 1.

  const SloVerdict verdict = tracker.VerdictFor(0);
  EXPECT_EQ(verdict.windows_closed, 3u);
  EXPECT_EQ(verdict.windows_over_budget, 2u);
  EXPECT_EQ(verdict.longest_streak, 2u);
  EXPECT_EQ(verdict.current_streak, 0u);
  EXPECT_TRUE(verdict.burst_detected);  // Streak reached burst_streak_windows.
}

TEST(SloTracker, EmptyGapWindowsResetTheStreak) {
  SloTracker tracker;
  tracker.Bind(1, SmallSlo());
  tracker.Record(0, 10, 100);   // Window 0: over budget.
  tracker.Record(0, 510, 100);  // Window 5: gap of 4 empty windows between.

  const SloVerdict verdict = tracker.VerdictFor(0);
  // Window 0 and window 5 were each over budget, but the empty gap broke the
  // consecutive run: longest streak stays 1, no burst.
  EXPECT_EQ(verdict.windows_over_budget, 2u);
  EXPECT_EQ(verdict.longest_streak, 1u);
  EXPECT_FALSE(verdict.burst_detected);
}

TEST(SloTracker, EmptyVmReportsPerfectAttainment) {
  SloTracker tracker;
  tracker.Bind(2, SmallSlo());
  const SloVerdict verdict = tracker.VerdictFor(1);
  EXPECT_EQ(verdict.requests, 0u);
  EXPECT_DOUBLE_EQ(verdict.attainment, 1.0);
  EXPECT_TRUE(verdict.slo_met);
  EXPECT_FALSE(verdict.burst_detected);
}

// --- End-to-end: telemetry on a live scenario ---

constexpr TimeNs kRunFor = 400 * kMillisecond;

struct TelemetryRun {
  Scenario scenario;
  std::unique_ptr<Telemetry> telemetry;
  std::unique_ptr<WorkQueueGuest> guest;
  std::unique_ptr<PingTraffic> ping;
  BackgroundWorkloads background;
  std::uint64_t spans_checked = 0;
  std::uint64_t span_mismatches = 0;
};

// A small Fig. 6-style cell with ping traffic into the vantage VM. When
// `with_telemetry`, every completed span is checked for the exact-sum
// identity: machine components sum to exactly (end - start).
TelemetryRun RunPingScenario(SchedKind kind, bool with_telemetry,
                             bool telemetry_enabled = true) {
  TelemetryRun run;
  ScenarioConfig config;
  config.scheduler = kind;
  // Credit2 rejects caps and RTDS requires them (factory.cc); everyone else
  // runs the paper's capped configuration.
  config.capped = kind != SchedKind::kCredit2;
  config.guest_cpus = 2;
  config.cores_per_socket = 1;
  run.scenario = BuildScenario(config);
  run.scenario.machine->trace().set_enabled(true);

  if (with_telemetry) {
    Telemetry::Config telemetry_config;
    telemetry_config.window_ns = 10 * kMillisecond;
    run.telemetry = std::make_unique<Telemetry>(telemetry_config);
    run.telemetry->set_enabled(telemetry_enabled);
    AttachTelemetry(run.scenario, run.telemetry.get());
    run.telemetry->set_span_observer(
        [&run](int vcpu, TimeNs start, TimeNs end,
               const LatencyBreakdown& breakdown) {
          (void)vcpu;
          ++run.spans_checked;
          const TimeNs machine_time =
              breakdown.Total() - breakdown[LatencyComponent::kNetwork];
          if (machine_time != end - start) {
            ++run.span_mismatches;
          }
        });
  }

  run.guest = std::make_unique<WorkQueueGuest>(run.scenario.machine,
                                               run.scenario.vantage);
  PingTraffic::Config ping_config;
  ping_config.threads = 4;
  ping_config.pings_per_thread = 200;
  ping_config.max_spacing = 4 * kMillisecond;
  run.ping = std::make_unique<PingTraffic>(run.scenario.machine,
                                           run.guest.get(), ping_config);
  if (with_telemetry) {
    run.ping->AttachTelemetry(run.telemetry.get());
  }
  run.ping->Start(0);
  AttachBackground(run.scenario, Background::kIo, 1, run.background);

  run.scenario.machine->Start();
  run.scenario.machine->RunFor(kRunFor);
  return run;
}

std::uint64_t TraceFingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  return hash;
}

constexpr SchedKind kAllSchedulers[] = {SchedKind::kCredit, SchedKind::kCredit2,
                                        SchedKind::kRtds, SchedKind::kTableau,
                                        SchedKind::kCfs};

TEST(TelemetryEndToEnd, SpanComponentsSumExactlyUnderEveryScheduler) {
  for (const SchedKind kind : kAllSchedulers) {
    const TelemetryRun run = RunPingScenario(kind, /*with_telemetry=*/true);
    EXPECT_GT(run.spans_checked, 100u) << SchedKindName(kind);
    EXPECT_EQ(run.span_mismatches, 0u)
        << SchedKindName(kind)
        << ": attribution components failed the exact-sum identity";
    EXPECT_EQ(run.ping->span_overflows(), 0u) << SchedKindName(kind);
  }
}

TEST(TelemetryEndToEnd, AttachedTelemetryIsAPureObserver) {
  for (const SchedKind kind : kAllSchedulers) {
    const TelemetryRun with = RunPingScenario(kind, /*with_telemetry=*/true);
    const TelemetryRun without = RunPingScenario(kind, /*with_telemetry=*/false);
    EXPECT_EQ(TraceFingerprint(with.scenario), TraceFingerprint(without.scenario))
        << SchedKindName(kind) << ": telemetry perturbed the simulation";
    EXPECT_EQ(with.scenario.machine->sim().events_executed(),
              without.scenario.machine->sim().events_executed())
        << SchedKindName(kind);
  }
}

TEST(TelemetryEndToEnd, DisabledTelemetryMatchesEnabledFingerprint) {
  // The RunFor cadence chunking happens whenever a telemetry is attached;
  // enabled vs disabled must not change the trace either.
  const TelemetryRun enabled =
      RunPingScenario(SchedKind::kTableau, true, /*telemetry_enabled=*/true);
  const TelemetryRun disabled =
      RunPingScenario(SchedKind::kTableau, true, /*telemetry_enabled=*/false);
  EXPECT_EQ(TraceFingerprint(enabled.scenario),
            TraceFingerprint(disabled.scenario));
  // Disabled means nothing recorded: no spans, empty windows.
  EXPECT_EQ(disabled.spans_checked, 0u);
  EXPECT_EQ(disabled.telemetry->slo().VerdictFor(0).requests, 0u);
}

TEST(TelemetryEndToEnd, RecordsSuppliesAndVerdicts) {
  const TelemetryRun run = RunPingScenario(SchedKind::kTableau, true);
  const Telemetry& telemetry = *run.telemetry;

  // The vantage VM answered pings: it has spans, service supply, and a
  // verdict with requests.
  const SloVerdict verdict = telemetry.slo().VerdictFor(0);
  EXPECT_GT(verdict.requests, 100u);
  EXPECT_GT(telemetry.RequestLatencyHistogram(0).count, 100u);
  EXPECT_GT(
      telemetry.AttributionHistogram(0, LatencyComponent::kService).count, 100u);

  const TimeSeriesSnapshot series = telemetry.TimeSeries();
  const auto& supply = series.series.at("vm0.supply_ns").windows;
  EXPECT_FALSE(supply.empty());
  std::int64_t supplied = 0;
  for (const TimeSeriesWindow& window : supply) {
    supplied += window.sum;
  }
  EXPECT_GT(supplied, 0);
  // Cadence samples land one per window boundary crossed by RunFor.
  const auto& waiting = series.series.at("machine.runnable_waiting").windows;
  EXPECT_GE(waiting.size(), 2u);

  // The JSON bundle is well-formed enough to carry the schema marker and
  // both sections.
  const std::string json = telemetry.ToJson();
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);

  // PublishMetrics lands verdict gauges in a registry.
  obs::MetricsRegistry registry;
  telemetry.PublishMetrics(&registry);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_GT(snapshot.values.count("slo.vm0.attainment"), 0u);
  EXPECT_GT(snapshot.values.count("slo.vm0.burn_rate"), 0u);
}

TEST(TelemetryEndToEnd, TelemetryRunIsDeterministic) {
  const TelemetryRun a = RunPingScenario(SchedKind::kTableau, true);
  const TelemetryRun b = RunPingScenario(SchedKind::kTableau, true);
  EXPECT_EQ(a.telemetry->TimeSeries(), b.telemetry->TimeSeries());
  EXPECT_EQ(a.telemetry->ToJson(), b.telemetry->ToJson());
}

// --- Perfetto flow events ---

TEST(TraceExportFlows, FlowEventsValidateAndLinkWakeupsToDispatches) {
  const TelemetryRun run = RunPingScenario(SchedKind::kTableau, true);
  ASSERT_GT(run.scenario.machine->trace().size(), 0u);

  obs::PerfettoExportOptions options;
  options.include_flows = true;
  for (const Vcpu* vcpu : run.scenario.vcpus) {
    options.vcpu_names[vcpu->id()] = vcpu->params().name;
  }
  const std::string json = obs::TraceToPerfettoJson(
      run.scenario.machine->trace(), run.scenario.machine->num_cpus(), options);
  std::string error;
  EXPECT_TRUE(obs::ValidatePerfettoJson(json, &error)) << error;
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);

  // Off by default: the export without flows must not contain any.
  obs::PerfettoExportOptions no_flows;
  const std::string plain = obs::TraceToPerfettoJson(
      run.scenario.machine->trace(), run.scenario.machine->num_cpus(), no_flows);
  EXPECT_EQ(plain.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_EQ(plain.find("wake latency"), std::string::npos);
}

}  // namespace
}  // namespace tableau
