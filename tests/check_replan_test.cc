// Fuzzed degradation checks: ReplanController backoff under injected planner
// failures, and the dispatcher's switch_slip_tolerance under fault-heavy
// runs — with every active table (initial and replanned) re-verified by the
// TableVerifier and the whole run replayed through the differential oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/scenario_fuzz.h"
#include "src/check/table_verifier.h"
#include "src/core/replan.h"
#include "src/faults/fault_injector.h"

namespace tableau::check {
namespace {

std::vector<VcpuRequest> FourVms() {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(VcpuRequest{i, 0.2, 20 * kMillisecond});
  }
  return requests;
}

TEST(ReplanBackoff, InjectedFailuresBackOffExponentiallyAndKeepTheTable) {
  faults::FaultPlan fault_plan;
  fault_plan.seed = 99;
  fault_plan.planner.failure_probability = 1.0;  // Every solve fails.
  faults::FaultInjector injector(fault_plan);

  PlannerConfig config;
  config.num_cpus = 2;
  config.fault_injector = &injector;
  const Planner planner(config);

  ReplanController::Config controller_config;
  controller_config.initial_backoff = kMillisecond;
  controller_config.backoff_multiplier = 2.0;
  controller_config.max_backoff = 8 * kMillisecond;
  ReplanController controller(&planner, controller_config);

  const PlanRequest request = PlanRequest::Full(FourVms());
  TimeNs now = 0;
  TimeNs expected_backoff = kMillisecond;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const ReplanController::Outcome outcome = controller.TryReplan(request, now);
    EXPECT_FALSE(outcome.installed);
    EXPECT_TRUE(outcome.kept_previous);
    EXPECT_EQ(outcome.plan.failure, PlanFailure::kInjected);
    EXPECT_EQ(outcome.retry_at, now + expected_backoff);
    EXPECT_EQ(controller.consecutive_failures(), attempt);

    // A retry inside the backoff window never consults the planner.
    const ReplanController::Outcome suppressed =
        controller.TryReplan(request, outcome.retry_at - 1);
    EXPECT_TRUE(suppressed.kept_previous);
    EXPECT_FALSE(suppressed.installed);
    EXPECT_EQ(suppressed.retry_at, outcome.retry_at);
    EXPECT_EQ(controller.consecutive_failures(), attempt);

    now = outcome.retry_at;
    expected_backoff =
        std::min<TimeNs>(expected_backoff * 2, controller_config.max_backoff);
  }
}

TEST(ReplanBackoff, SuccessAfterFailuresInstallsAVerifiedTable) {
  // Draws are seeded: with p = 0.5 some solves fail and some succeed, so the
  // controller must eventually install — and what it installs must pass the
  // TableVerifier.
  faults::FaultPlan fault_plan;
  fault_plan.seed = 7;
  fault_plan.planner.failure_probability = 0.5;
  faults::FaultInjector injector(fault_plan);

  PlannerConfig config;
  config.num_cpus = 2;
  config.fault_injector = &injector;
  const Planner planner(config);
  ReplanController controller(&planner, ReplanController::Config{});

  const PlanRequest request = PlanRequest::Full(FourVms());
  TimeNs now = 0;
  bool installed = false;
  for (int attempt = 0; attempt < 64 && !installed; ++attempt) {
    const ReplanController::Outcome outcome = controller.TryReplan(request, now);
    if (outcome.installed) {
      installed = true;
      PlannerConfig verify_config;
      verify_config.num_cpus = config.num_cpus;
      const std::vector<std::string> violations =
          VerifyPlan(outcome.plan, verify_config);
      EXPECT_TRUE(violations.empty()) << violations.front();
      EXPECT_EQ(controller.consecutive_failures(), 0);
    } else {
      now = outcome.retry_at;
    }
  }
  EXPECT_TRUE(installed);
}

// End-to-end: Tableau scenarios that replan mid-run through injected planner
// failures (exercising keep-previous + backoff) and run under fault-heavy
// plans with a tight switch-slip tolerance (exercising the re-arm path) must
// still produce zero oracle divergences, and both the initial and the
// replacement table must verify.
TEST(ReplanFuzz, DegradedReplanRunsStayClean) {
  int ran = 0;
  for (std::uint64_t seed = 0; ran < 60 && seed < 4000; ++seed) {
    ScenarioSpec spec = GenerateSpec(seed);
    if (spec.scheduler != SchedKind::kTableau) {
      continue;
    }
    spec.replan_at = spec.duration / 2;
    spec.planner_failure = 0.5;
    const CheckOutcome outcome = RunCheckedScenario(spec);
    ASSERT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front()
        << "\nreproducer:\n"
        << FormatSpec(spec);
    ++ran;
  }
  EXPECT_EQ(ran, 60);
}

TEST(ReplanFuzz, TightSlipToleranceUnderHeavyFaultsStaysClean) {
  int ran = 0;
  for (std::uint64_t seed = 0; ran < 60 && seed < 4000; ++seed) {
    ScenarioSpec spec = GenerateSpec(seed);
    if (spec.scheduler != SchedKind::kTableau) {
      continue;
    }
    spec.fault_intensity = 0.8;
    spec.slip_ns = 100 * kMicrosecond;
    spec.replan_at = spec.duration / 3;
    if (!FeasibleSpec(spec)) {
      continue;
    }
    const CheckOutcome outcome = RunCheckedScenario(spec);
    ASSERT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front()
        << "\nreproducer:\n"
        << FormatSpec(spec);
    ++ran;
  }
  EXPECT_EQ(ran, 60);
}

}  // namespace
}  // namespace tableau::check
