// Tests for Planner::PlanIncremental (per-core incremental replanning, the
// Sec. 7.1 optimization).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/core/planner.h"

namespace tableau {
namespace {

std::vector<VcpuRequest> UniformRequests(int count, double utilization, TimeNs latency,
                                         int first_id = 0) {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < count; ++i) {
    requests.push_back(VcpuRequest{first_id + i, utilization, latency});
  }
  return requests;
}

double Granted(const SchedulingTable& table, VcpuId vcpu) {
  return static_cast<double>(table.TotalService(vcpu)) /
         static_cast<double>(table.length());
}

TEST(IncrementalPlan, AddOneVmTouchesOneCore) {
  PlannerConfig config;
  config.num_cpus = 8;
  const Planner planner(config);
  const PlanResult base = planner.Plan(UniformRequests(16, 0.25, 20 * kMillisecond));
  ASSERT_TRUE(base.success);

  const PlanResult incremental = planner.PlanIncremental(
      base, UniformRequests(1, 0.25, 20 * kMillisecond, /*first_id=*/16), {});
  ASSERT_TRUE(incremental.success);
  EXPECT_EQ(incremental.method, PlanMethod::kPartitioned);
  EXPECT_EQ(incremental.dirty_cores.size(), 1u);
  EXPECT_EQ(incremental.vcpus.size(), 17u);
  EXPECT_EQ(incremental.table.Validate(), "");

  // Untouched cores keep byte-identical allocations.
  const std::set<int> dirty(incremental.dirty_cores.begin(),
                            incremental.dirty_cores.end());
  for (int c = 0; c < 8; ++c) {
    if (dirty.find(c) == dirty.end()) {
      EXPECT_EQ(incremental.table.cpu(c).allocations, base.table.cpu(c).allocations)
          << "core " << c;
    }
  }
  // The new vCPU receives its share.
  EXPECT_GE(Granted(incremental.table, 16), 0.25 - 1e-6);
}

TEST(IncrementalPlan, RemoveOneVmTouchesOneCore) {
  PlannerConfig config;
  config.num_cpus = 8;
  const Planner planner(config);
  const PlanResult base = planner.Plan(UniformRequests(24, 0.25, 20 * kMillisecond));
  ASSERT_TRUE(base.success);

  const PlanResult incremental = planner.PlanIncremental(base, {}, {5});
  ASSERT_TRUE(incremental.success);
  EXPECT_EQ(incremental.dirty_cores.size(), 1u);
  EXPECT_EQ(incremental.vcpus.size(), 23u);
  EXPECT_EQ(incremental.table.TotalService(5), 0);
  // No plan entry for the departed vCPU.
  EXPECT_TRUE(std::none_of(incremental.vcpus.begin(), incremental.vcpus.end(),
                           [](const VcpuPlan& p) { return p.vcpu == 5; }));
}

TEST(IncrementalPlan, GuaranteesHoldAfterChurn) {
  PlannerConfig config;
  config.num_cpus = 6;
  const Planner planner(config);
  PlanResult plan = planner.Plan(UniformRequests(12, 0.25, 30 * kMillisecond));
  ASSERT_TRUE(plan.success);

  Rng rng(7);
  int next_id = 12;
  std::set<VcpuId> live;
  for (int i = 0; i < 12; ++i) {
    live.insert(i);
  }
  for (int round = 0; round < 20; ++round) {
    std::vector<VcpuRequest> added;
    std::vector<VcpuId> departed;
    if (!live.empty() && rng.UniformDouble() < 0.5) {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int>(live.size()) - 1));
      departed.push_back(*it);
      live.erase(it);
    }
    if (live.size() < 22 && rng.UniformDouble() < 0.7) {
      const double u = rng.UniformDouble(0.05, 0.4);
      added.push_back(VcpuRequest{next_id, u, rng.UniformInt(10, 90) * kMillisecond});
      live.insert(next_id);
      ++next_id;
    }
    plan = planner.PlanIncremental(plan, added, departed);
    ASSERT_TRUE(plan.success) << "round " << round << ": " << plan.error;
    ASSERT_EQ(plan.table.Validate(), "") << "round " << round;
    ASSERT_EQ(plan.vcpus.size(), live.size()) << "round " << round;
    for (const VcpuPlan& vcpu : plan.vcpus) {
      EXPECT_TRUE(live.count(vcpu.vcpu)) << "round " << round;
      const double donated = static_cast<double>(vcpu.donated_ns) /
                             static_cast<double>(plan.table.length());
      EXPECT_GE(Granted(plan.table, vcpu.vcpu),
                vcpu.requested_utilization - donated - 1e-6)
          << "round " << round << " vcpu " << vcpu.vcpu;
      if (vcpu.latency_goal_met) {
        EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), vcpu.latency_goal)
            << "round " << round << " vcpu " << vcpu.vcpu;
      }
    }
  }
}

TEST(IncrementalPlan, MatchesFullPlanGuarantees) {
  // The incremental result must grant the same guarantees as a from-scratch
  // plan of the same request set (placements may differ).
  PlannerConfig config;
  config.num_cpus = 4;
  const Planner planner(config);
  PlanResult incremental = planner.Plan(UniformRequests(8, 0.2, 40 * kMillisecond));
  ASSERT_TRUE(incremental.success);
  incremental = planner.PlanIncremental(
      incremental, UniformRequests(4, 0.2, 40 * kMillisecond, 8), {1, 3});
  ASSERT_TRUE(incremental.success);

  const PlanResult full = planner.Plan(incremental.requests);
  ASSERT_TRUE(full.success);
  ASSERT_EQ(full.vcpus.size(), incremental.vcpus.size());
  std::map<VcpuId, const VcpuPlan*> full_by_id;
  for (const VcpuPlan& plan : full.vcpus) {
    full_by_id[plan.vcpu] = &plan;
  }
  for (const VcpuPlan& plan : incremental.vcpus) {
    const VcpuPlan& reference = *full_by_id.at(plan.vcpu);
    EXPECT_EQ(plan.period, reference.period) << plan.vcpu;
    EXPECT_LE(std::abs(plan.cost - reference.cost), 1) << plan.vcpu;  // Shave ns.
  }
}

TEST(IncrementalPlan, FallsBackWhenNoSingleCoreFits) {
  // Adding a 60% vCPU when every core has only ~50% spare forces a full
  // replan (splitting), which must still succeed.
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  PlanResult plan = planner.Plan(UniformRequests(2, 0.55, 40 * kMillisecond));
  ASSERT_TRUE(plan.success);
  plan = planner.PlanIncremental(plan, UniformRequests(1, 0.6, 40 * kMillisecond, 2), {});
  ASSERT_TRUE(plan.success) << plan.error;
  EXPECT_NE(plan.method, PlanMethod::kPartitioned);
  EXPECT_GE(Granted(plan.table, 2), 0.6 - 1e-6);
}

TEST(IncrementalPlan, FallsBackOnOverUtilization) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  PlanResult plan = planner.Plan(UniformRequests(7, 0.25, 20 * kMillisecond));
  ASSERT_TRUE(plan.success);
  plan = planner.PlanIncremental(plan, UniformRequests(3, 0.25, 20 * kMillisecond, 7), {});
  EXPECT_FALSE(plan.success);
  EXPECT_NE(plan.error.find("over-utilized"), std::string::npos);
}

TEST(IncrementalPlan, EmptyDeltaIsAFastNoOp) {
  PlannerConfig config;
  config.num_cpus = 4;
  const Planner planner(config);
  const PlanResult base = planner.Plan(UniformRequests(8, 0.25, 20 * kMillisecond));
  ASSERT_TRUE(base.success);
  const PlanResult same = planner.PlanIncremental(base, {}, {});
  ASSERT_TRUE(same.success);
  EXPECT_TRUE(same.dirty_cores.empty());
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(same.table.cpu(c).allocations, base.table.cpu(c).allocations);
  }
}

TEST(IncrementalPlan, QuantizationShaveOnInsert) {
  // Filling the last slot of an exactly packed core requires the 1 ns shave
  // on insert (C = ceil(U*T) would not fit).
  PlannerConfig config;
  config.num_cpus = 1;
  const Planner planner(config);
  PlanResult plan = planner.Plan(UniformRequests(3, 0.25, kMillisecond));
  ASSERT_TRUE(plan.success);
  plan = planner.PlanIncremental(plan, UniformRequests(1, 0.25, kMillisecond, 3), {});
  ASSERT_TRUE(plan.success) << plan.error;
  EXPECT_EQ(plan.method, PlanMethod::kPartitioned);
}

}  // namespace
}  // namespace tableau
