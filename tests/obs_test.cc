// Tests for the observability layer: metrics registry semantics (handles,
// enable gating, snapshot/delta/merge, JSON round-trip) and the Perfetto
// trace exporter (golden output on a hand-built trace, schema validation,
// end-to-end export of a 2-CPU scenario, and the determinism guarantee that
// metrics collection never perturbs the simulation).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_export.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(MetricsRegistry, HandlesAreStableAndFindOrCreate) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("a.count");
  EXPECT_EQ(counter, registry.GetCounter("a.count"));
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->value(), 5);

  obs::Gauge* gauge = registry.GetGauge("a.gauge");
  EXPECT_EQ(gauge, registry.GetGauge("a.gauge"));
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);

  LatencyHistogram* hist = registry.GetHistogram("a.lat_ns");
  EXPECT_EQ(hist, registry.GetHistogram("a.lat_ns"));
  hist->Record(100);
  hist->Record(300);
  EXPECT_EQ(hist->Count(), 2u);
  EXPECT_EQ(hist->Sum(), 400);
  EXPECT_EQ(hist->Min(), 100);
  EXPECT_EQ(hist->Max(), 300);
}

TEST(MetricsRegistry, DisableGatesRecordingThroughExistingHandles) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Gauge* gauge = registry.GetGauge("g");
  LatencyHistogram* hist = registry.GetHistogram("h");
  counter->Increment();
  gauge->Set(1.0);
  hist->Record(10);

  registry.set_enabled(false);
  counter->Increment(100);
  gauge->Set(99.0);
  hist->Record(1000);
  EXPECT_EQ(counter->value(), 1);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.0);
  EXPECT_EQ(hist->Count(), 1u);

  registry.set_enabled(true);
  counter->Increment();
  EXPECT_EQ(counter->value(), 2);
}

TEST(MetricsRegistry, HistogramNegativeValuesClampToZero) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("h");
  hist->Record(-5);
  EXPECT_EQ(hist->Count(), 1u);
  EXPECT_EQ(hist->Sum(), 0);
  EXPECT_EQ(hist->Min(), 0);
  EXPECT_EQ(hist->Max(), 0);
}

TEST(MetricsRegistry, BucketUpperEdgesArePowersOfTwoMinusOne) {
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(4), 15);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdge(10), 1023);
}

TEST(MetricsSnapshot, DeltaSubtractsCountersAndHistogramsKeepsGauges) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Gauge* gauge = registry.GetGauge("g");
  LatencyHistogram* hist = registry.GetHistogram("h");
  counter->Increment(10);
  gauge->Set(1.0);
  hist->Record(64);
  const MetricsSnapshot before = registry.Snapshot();

  counter->Increment(7);
  gauge->Set(3.0);
  hist->Record(64);
  hist->Record(128);
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);

  EXPECT_EQ(delta.values.at("c").counter, 7);
  EXPECT_DOUBLE_EQ(delta.values.at("g").gauge, 3.0);
  EXPECT_EQ(delta.values.at("h").hist.count, 2u);
  EXPECT_EQ(delta.values.at("h").hist.sum, 64 + 128);
}

TEST(MetricsSnapshot, MergeAddsCountersAndHistogramsMaxesGauges) {
  MetricsRegistry a;
  a.GetCounter("c")->Increment(3);
  a.GetGauge("g")->Set(5.0);
  a.GetHistogram("h")->Record(10);
  MetricsRegistry b;
  b.GetCounter("c")->Increment(4);
  b.GetGauge("g")->Set(2.0);
  b.GetHistogram("h")->Record(20);
  b.GetCounter("only_b")->Increment();

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.values.at("c").counter, 7);
  EXPECT_DOUBLE_EQ(merged.values.at("g").gauge, 5.0);  // max, order-independent
  EXPECT_EQ(merged.values.at("h").hist.count, 2u);
  EXPECT_EQ(merged.values.at("h").hist.sum, 30);
  EXPECT_EQ(merged.values.at("h").hist.min, 10);
  EXPECT_EQ(merged.values.at("h").hist.max, 20);
  EXPECT_EQ(merged.values.at("only_b").counter, 1);
}

TEST(MetricsSnapshot, JsonRoundTripPreservesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("sim.events")->Increment(12345);
  registry.GetGauge("sim.pool_size")->Set(17.25);
  LatencyHistogram* hist = registry.GetHistogram("sched.latency_ns");
  hist->Record(0);
  hist->Record(1);
  hist->Record(1000);
  hist->Record(1'000'000);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string json = snapshot.ToJson();
  const auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(*parsed, snapshot);

  // The parsed histogram keeps exact count/sum/min/max and bucket contents.
  const auto& hv = parsed->values.at("sched.latency_ns").hist;
  EXPECT_EQ(hv.count, 4u);
  EXPECT_EQ(hv.sum, 1'001'001);
  EXPECT_EQ(hv.min, 0);
  EXPECT_EQ(hv.max, 1'000'000);
  std::uint64_t bucketed = 0;
  for (const auto& [index, count] : hv.buckets) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, LatencyHistogram::kBuckets);
    bucketed += count;
  }
  EXPECT_EQ(bucketed, hv.count);
}

TEST(MetricsSnapshot, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").has_value());
  EXPECT_FALSE(MetricsSnapshot::FromJson("[]").has_value());
  // Bucket edge 6 is not of the 2^i - 1 form.
  EXPECT_FALSE(MetricsSnapshot::FromJson(
                   R"({"counters": {}, "gauges": {}, "histograms": {"h":
                      {"count": 1, "sum": 5, "min": 5, "max": 5,
                       "buckets": [[6, 1]]}}})")
                   .has_value());
}

TEST(MetricsSnapshot, ToJsonEmitsSchemaVersion) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment();
  const std::string json = registry.Snapshot().ToJson();
  const std::string expected =
      std::string("\"schema_version\": \"") + MetricsSnapshot::SchemaVersion() + "\"";
  EXPECT_NE(json.find(expected), std::string::npos) << json;
}

TEST(MetricsSnapshot, FromJsonRejectsUnknownMajorVersion) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment();
  std::string json = registry.Snapshot().ToJson();
  // Same document, one major version ahead: must be rejected.
  const std::string current =
      std::string("\"schema_version\": \"") + MetricsSnapshot::SchemaVersion() + "\"";
  const std::string future = "\"schema_version\": \"2.0\"";
  const std::size_t at = json.find(current);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, current.size(), future);
  EXPECT_FALSE(MetricsSnapshot::FromJson(json).has_value());
  // A non-string version is malformed.
  json.replace(json.find(future), future.size(), "\"schema_version\": 2");
  EXPECT_FALSE(MetricsSnapshot::FromJson(json).has_value());
}

TEST(MetricsSnapshot, FromJsonAcceptsMinorBumpAndPreVersionedDocuments) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  std::string json = registry.Snapshot().ToJson();
  // Minor bumps within the same major parse fine.
  const std::string current =
      std::string("\"schema_version\": \"") + MetricsSnapshot::SchemaVersion() + "\"";
  const std::size_t at = json.find(current);
  ASSERT_NE(at, std::string::npos);
  std::string minor_bump = json;
  minor_bump.replace(at, current.size(), "\"schema_version\": \"1.99\"");
  EXPECT_TRUE(MetricsSnapshot::FromJson(minor_bump).has_value());
  // Documents written before versioning (no schema_version member) still
  // parse: absent means pre-1.0, accepted.
  std::string unversioned = json;
  unversioned.erase(at, current.size() + 1);  // Member plus trailing comma.
  while (unversioned[at] == ' ' || unversioned[at] == '\n') {
    unversioned.erase(at, 1);
  }
  const auto parsed = MetricsSnapshot::FromJson(unversioned);
  ASSERT_TRUE(parsed.has_value()) << unversioned;
  EXPECT_EQ(parsed->values.at("c").counter, 3);
}

TEST(MetricsSnapshot, CsvListsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(2);
  registry.GetHistogram("h")->Record(100);
  const std::string csv = registry.Snapshot().ToCsv();
  EXPECT_NE(csv.find("counter,c"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram,h"), std::string::npos) << csv;
}

// Golden output: a hand-built two-CPU trace renders to exactly this JSON.
// If the exporter's format changes intentionally, update the golden below —
// the failure message prints the actual output.
TEST(TraceExport, GoldenPerfettoJsonForHandBuiltTrace) {
  TraceBuffer trace(16);
  trace.Record(1000, TraceEvent::kWakeup, 0, 1);
  trace.Record(2000, TraceEvent::kDispatch, 0, 1);
  trace.Record(2500, TraceEvent::kDispatch, 1, 2, /*second_level=*/1);
  trace.Record(3000, TraceEvent::kTableSwitch, 0, kIdleVcpu, /*generation=*/7);
  trace.Record(5000, TraceEvent::kDeschedule, 0, 1);
  trace.Record(6000, TraceEvent::kBlock, 1, 2);

  obs::PerfettoExportOptions options;
  options.process_name = "golden";
  options.vcpu_names[1] = "vantage";
  options.vcpu_names[2] = "bg";
  const std::string json = obs::TraceToPerfettoJson(trace, 2, options);

  const std::string expected = R"({
  "displayTimeUnit": "ns",
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "golden"}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "pCPU 0"}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2, "args": {"name": "pCPU 1"}},
    {"name": "wakeup vantage", "cat": "event", "ph": "i", "s": "t", "ts": 1.000, "pid": 1, "tid": 1},
    {"name": "table switch", "cat": "event", "ph": "i", "s": "t", "ts": 3.000, "pid": 1, "tid": 1, "args": {"generation": 7}},
    {"name": "vantage", "cat": "service", "ph": "X", "ts": 2.000, "dur": 3.000, "pid": 1, "tid": 1, "args": {"vcpu": 1, "second_level": false}},
    {"name": "bg", "cat": "service", "ph": "X", "ts": 2.500, "dur": 3.500, "pid": 1, "tid": 2, "args": {"vcpu": 2, "second_level": true}}
  ]
}
)";
  EXPECT_EQ(json, expected);

  std::string error;
  EXPECT_TRUE(obs::ValidatePerfettoJson(json, &error)) << error;
}

TEST(TraceExport, WrappedRingEmitsTruncatedSlices) {
  // Capacity 2: the dispatch at t=100 is overwritten, leaving only the
  // deschedule at t=300 and an idle marker. The exporter must report the
  // visible tail as a truncated slice, not drop or invent an interval.
  TraceBuffer trace(2);
  trace.Record(100, TraceEvent::kDispatch, 0, 5);
  trace.Record(300, TraceEvent::kDeschedule, 0, 5);
  trace.Record(400, TraceEvent::kIdle, 0, kIdleVcpu);
  ASSERT_GT(trace.dropped(), 0u);

  const std::string json = obs::TraceToPerfettoJson(trace, 1, {});
  EXPECT_NE(json.find("\"truncated\": true"), std::string::npos) << json;
  std::string error;
  EXPECT_TRUE(obs::ValidatePerfettoJson(json, &error)) << error;
}

TEST(TraceExport, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(obs::ValidatePerfettoJson("not json", &error));
  EXPECT_FALSE(obs::ValidatePerfettoJson("[]", &error));
  EXPECT_FALSE(obs::ValidatePerfettoJson(R"({"traceEvents": 3})", &error));
  // Complete slice without a dur.
  EXPECT_FALSE(obs::ValidatePerfettoJson(
      R"({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "ts": 1.0}]})",
      &error));
  // Negative dur.
  EXPECT_FALSE(obs::ValidatePerfettoJson(
      R"({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "ts": 1.0, "dur": -2}]})",
      &error));
  // Missing ph.
  EXPECT_FALSE(obs::ValidatePerfettoJson(
      R"({"traceEvents": [{"name": "x", "pid": 1, "ts": 1.0}]})", &error));
}

// --- End-to-end: scenario runs export valid JSON and metrics stay inert. ---

Scenario RunTracedScenario(bool metrics_enabled) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.capped = true;
  config.guest_cpus = 2;
  config.cores_per_socket = 1;
  Scenario scenario = BuildScenario(config);
  scenario.machine->metrics().set_enabled(metrics_enabled);
  scenario.machine->trace().set_enabled(true);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(100 * kMillisecond);
  return scenario;
}

std::uint64_t TraceFingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  return hash;
}

TEST(TraceExport, TwoCpuScenarioExportsValidPerfettoJson) {
  const Scenario scenario = RunTracedScenario(/*metrics_enabled=*/true);
  ASSERT_GT(scenario.machine->trace().size(), 0u);

  obs::PerfettoExportOptions options;
  for (const Vcpu* vcpu : scenario.vcpus) {
    options.vcpu_names[vcpu->id()] = vcpu->params().name;
  }
  const std::string json = obs::TraceToPerfettoJson(
      scenario.machine->trace(), scenario.machine->num_cpus(), options);
  std::string error;
  EXPECT_TRUE(obs::ValidatePerfettoJson(json, &error)) << error;

  // The scenario's metrics landed in the machine registry, including the
  // planner phase timings wired through ScenarioConfig.
  const MetricsSnapshot snapshot = scenario.machine->SnapshotMetrics();
  EXPECT_GT(snapshot.values.count("machine.context_switches"), 0u);
  EXPECT_GT(snapshot.values.count("planner.plan_total_ns"), 0u);
  const auto round_trip = MetricsSnapshot::FromJson(snapshot.ToJson());
  ASSERT_TRUE(round_trip.has_value());
  EXPECT_EQ(*round_trip, snapshot);
}

TEST(TraceExport, MetricsCollectionDoesNotPerturbSimulation) {
  const Scenario with_metrics = RunTracedScenario(/*metrics_enabled=*/true);
  const Scenario without_metrics = RunTracedScenario(/*metrics_enabled=*/false);
  EXPECT_EQ(TraceFingerprint(with_metrics), TraceFingerprint(without_metrics));
  EXPECT_EQ(with_metrics.machine->sim().events_executed(),
            without_metrics.machine->sim().events_executed());
}

// --- Percentile refinement: rank interpolation within the winning bucket ---

obs::HistogramValue HistOf(std::initializer_list<std::int64_t> samples) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("h");
  for (const std::int64_t sample : samples) {
    hist->Record(sample);
  }
  return registry.Snapshot().values.at("h").hist;
}

TEST(HistogramPercentile, SingleSampleIsExactAtEveryQuantile) {
  const obs::HistogramValue h = HistOf({100});
  // Interpolation alone would report a point inside bucket [64, 127]; the
  // [min, max] clamp makes the degenerate case exact.
  EXPECT_EQ(h.Percentile(0.01), 100);
  EXPECT_EQ(h.Percentile(0.5), 100);
  EXPECT_EQ(h.Percentile(0.99), 100);
  EXPECT_EQ(h.Percentile(1.0), 100);
}

TEST(HistogramPercentile, SmallSamplePinnedValues) {
  const obs::HistogramValue h = HistOf({0, 1, 1000});
  // rank(ceil(0.5*3)) = 2 -> bucket index 1 (value 1), degenerate => exact.
  EXPECT_EQ(h.Percentile(0.5), 1);
  // rank 3 -> bucket of 1000 ([512, 1023]); clamped to max = 1000.
  EXPECT_EQ(h.Percentile(0.99), 1000);
  EXPECT_EQ(h.Percentile(0.0), 0);   // rank clamps to 1 -> min.
  EXPECT_EQ(h.Percentile(2.0), 1000);  // q >= 1 returns the exact max.
}

TEST(HistogramPercentile, InterpolationMovesWithRankInsideBucket) {
  // 64 samples, all landing in bucket [64, 127]. The interpolated estimate
  // must be monotone in q and bounded by the bucket (error <= bucket width).
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("h");
  for (int i = 0; i < 64; ++i) {
    hist->Record(64 + i);
  }
  const obs::HistogramValue h = registry.Snapshot().values.at("h").hist;
  const std::int64_t p25 = h.Percentile(0.25);
  const std::int64_t p50 = h.Percentile(0.5);
  const std::int64_t p75 = h.Percentile(0.75);
  EXPECT_LT(p25, p50);
  EXPECT_LT(p50, p75);
  EXPECT_GE(p25, h.min);
  EXPECT_LE(p75, h.max);
  // True p50 is 95-96; the winning bucket is [64, 127] so the estimate may
  // be off by at most that width.
  EXPECT_NEAR(static_cast<double>(p50), 95.5, 64.0);
}

// --- CSV escaping: names with commas/quotes survive a round trip ---

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(obs::CsvEscapeField("plain.name"), "plain.name");
  EXPECT_EQ(obs::CsvEscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(obs::CsvEscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(obs::CsvEscapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscape, SplitCsvRowInvertsEscaping) {
  const std::vector<std::string> fields = {"plain", "with,comma", "with \"quote\"",
                                           "", "both,\"x\""};
  std::string row;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      row += ",";
    }
    row += obs::CsvEscapeField(fields[i]);
  }
  EXPECT_EQ(obs::SplitCsvRow(row), fields);
}

TEST(MetricsSnapshot, ToCsvEscapesAwkwardMetricNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird,\"name\"")->Increment(7);
  registry.GetCounter("normal.name")->Increment(1);
  const std::string csv = registry.Snapshot().ToCsv();

  // Re-parse every row; the awkward name must come back verbatim.
  bool found = false;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) {
      end = csv.size();
    }
    const std::vector<std::string> fields =
        obs::SplitCsvRow(csv.substr(start, end - start));
    if (fields.size() > 1 && fields[1] == "weird,\"name\"") {
      found = true;
    }
    start = end + 1;
  }
  EXPECT_TRUE(found) << csv;
}

// --- Merge/Delta edge cases ---

TEST(MetricsSnapshot, MergeWithEmptySnapshotsIsIdentity) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetHistogram("h")->Record(10);
  const MetricsSnapshot base = registry.Snapshot();

  MetricsSnapshot left;  // empty + X == X
  left.Merge(base);
  EXPECT_EQ(left, base);

  MetricsSnapshot right = base;  // X + empty == X
  right.Merge(MetricsSnapshot{});
  EXPECT_EQ(right, base);

  MetricsSnapshot both;  // empty + empty == empty
  both.Merge(MetricsSnapshot{});
  EXPECT_TRUE(both.values.empty());
}

TEST(MetricsSnapshot, MergeDisjointSetsIsUnion) {
  MetricsRegistry a;
  a.GetCounter("only_a")->Increment(1);
  MetricsRegistry b;
  b.GetGauge("only_b")->Set(2.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.values.size(), 2u);
  EXPECT_EQ(merged.values.at("only_a").counter, 1);
  EXPECT_DOUBLE_EQ(merged.values.at("only_b").gauge, 2.0);
}

TEST(MetricsSnapshot, MergeKindConflictKeepsFirstRegistration) {
  MetricsRegistry a;
  a.GetCounter("x")->Increment(5);
  MetricsRegistry b;
  b.GetGauge("x")->Set(99.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.values.at("x").kind, obs::MetricKind::kCounter);
  EXPECT_EQ(merged.values.at("x").counter, 5);
}

TEST(MetricsSnapshot, MergeIsAssociativeAndCommutativeUnderShardReordering) {
  // Three "shards" with overlapping metrics; every merge order must agree.
  MetricsRegistry shard0;
  shard0.GetCounter("c")->Increment(1);
  shard0.GetHistogram("h")->Record(8);
  shard0.GetGauge("g")->Set(1.0);
  MetricsRegistry shard1;
  shard1.GetCounter("c")->Increment(2);
  shard1.GetHistogram("h")->Record(600);
  MetricsRegistry shard2;
  shard2.GetGauge("g")->Set(4.0);
  shard2.GetHistogram("h")->Record(8);
  const MetricsSnapshot s0 = shard0.Snapshot();
  const MetricsSnapshot s1 = shard1.Snapshot();
  const MetricsSnapshot s2 = shard2.Snapshot();

  MetricsSnapshot forward = s0;
  forward.Merge(s1);
  forward.Merge(s2);

  MetricsSnapshot reversed = s2;
  reversed.Merge(s1);
  reversed.Merge(s0);

  MetricsSnapshot grouped = s1;  // (s1 + s2) folded into s0's copy.
  grouped.Merge(s2);
  MetricsSnapshot outer = s0;
  outer.Merge(grouped);

  EXPECT_EQ(forward, reversed);
  EXPECT_EQ(forward, outer);
  EXPECT_EQ(forward.values.at("c").counter, 3);
  EXPECT_DOUBLE_EQ(forward.values.at("g").gauge, 4.0);
  EXPECT_EQ(forward.values.at("h").hist.count, 3u);
}

TEST(MetricsSnapshot, DeltaAgainstEmptyAndDisjointBaselines) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(9);
  const MetricsSnapshot now = registry.Snapshot();

  // Empty baseline: delta is the snapshot itself.
  EXPECT_EQ(now.Delta(MetricsSnapshot{}), now);

  // Disjoint baseline: nothing to subtract.
  MetricsRegistry other;
  other.GetCounter("unrelated")->Increment(100);
  EXPECT_EQ(now.Delta(other.Snapshot()).values.at("c").counter, 9);

  // Kind conflict in the baseline: left untouched.
  MetricsRegistry conflicting;
  conflicting.GetGauge("c")->Set(5.0);
  EXPECT_EQ(now.Delta(conflicting.Snapshot()).values.at("c").counter, 9);
}

}  // namespace
}  // namespace tableau
