// ShardedSimulation: epoch-barrier semantics and the serial-equivalence
// guarantee — per-shard event streams (and hence fingerprints over
// (time, payload) sequences) are bit-identical whether the shards share one
// serial engine, run on per-shard engines, or run on per-shard engines
// concurrently.
#include "src/sim/sharded_sim.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace tableau {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void Mix(std::uint64_t& fp, std::uint64_t v) { fp = (fp ^ v) * kFnvPrime; }

std::uint64_t Lcg(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 16;
}

// A multi-core scenario: per-shard self-rearming timers with deterministic
// pseudo-random periods, and a ring of cross-shard "IPIs" (every 8th fire
// posts to the next shard with latency epoch + jitter). Each shard folds
// its observed event sequence into an FNV fingerprint.
struct Scenario {
  struct Ctx {
    Scenario* scenario = nullptr;
    int shard = 0;
    std::uint64_t rng = 0;
    std::uint64_t fp = kFnvOffset;
    std::uint64_t fires = 0;
    std::uint64_t ipis = 0;
    EventId timer = kInvalidEvent;
  };

  explicit Scenario(const ShardedSimulation::Options& options) : sim(options) {
    ctxs.resize(static_cast<std::size_t>(options.num_shards));
    for (int s = 0; s < options.num_shards; ++s) {
      Ctx* ctx = &ctxs[static_cast<std::size_t>(s)];
      ctx->scenario = this;
      ctx->shard = s;
      ctx->rng = 0x1234 + 77ull * static_cast<std::uint64_t>(s);
      Simulation& engine = sim.shard(s);
      ctx->timer = engine.CreateTimer([ctx] { Tick(ctx); });
      engine.Arm(ctx->timer, 1 + static_cast<TimeNs>(Lcg(ctx->rng) % 5000));
    }
  }

  static void Tick(Ctx* c) {
    ShardedSimulation& sim = c->scenario->sim;
    Simulation& engine = sim.shard(c->shard);
    ++c->fires;
    Mix(c->fp, static_cast<std::uint64_t>(engine.Now()));
    Mix(c->fp, c->fires);
    if (c->fires % 8 == 0) {
      const int from = c->shard;
      const int to = (c->shard + 1) % sim.num_shards();
      Ctx* target = &c->scenario->ctxs[static_cast<std::size_t>(to)];
      const ShardedSimulation::PostResult posted = sim.Post(
          from, to, sim.epoch_ns() + static_cast<TimeNs>(Lcg(c->rng) % 40000),
          [target, from] {
            ++target->ipis;
            Mix(target->fp,
                static_cast<std::uint64_t>(
                    target->scenario->sim.shard(target->shard).Now()));
            Mix(target->fp,
                0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(from));
          });
      TABLEAU_CHECK(posted.ok());
    }
    engine.Arm(c->timer,
               engine.Now() + 1 + static_cast<TimeNs>(Lcg(c->rng) % 20000));
  }

  std::vector<std::uint64_t> Fingerprints() const {
    std::vector<std::uint64_t> fps;
    fps.reserve(ctxs.size());
    for (const Ctx& ctx : ctxs) {
      fps.push_back(ctx.fp);
    }
    return fps;
  }

  std::uint64_t TotalIpis() const {
    std::uint64_t total = 0;
    for (const Ctx& ctx : ctxs) {
      total += ctx.ipis;
    }
    return total;
  }

  ShardedSimulation sim;
  std::vector<Ctx> ctxs;
};

constexpr TimeNs kHorizon = 20'000'000;  // 20 ms, 400 epochs of 50 us.

ShardedSimulation::Options MakeOptions(bool sharded, bool parallel) {
  ShardedSimulation::Options options;
  options.num_shards = 4;
  options.sharded = sharded;
  options.parallel = parallel;
  return options;
}

TEST(ShardedSim, SerialAndShardedFingerprintsMatch) {
  Scenario serial(MakeOptions(/*sharded=*/false, /*parallel=*/false));
  Scenario sharded(MakeOptions(/*sharded=*/true, /*parallel=*/false));
  serial.sim.RunUntil(kHorizon);
  sharded.sim.RunUntil(kHorizon);

  EXPECT_GT(serial.TotalIpis(), 100u) << "scenario must exercise cross-shard traffic";
  EXPECT_EQ(serial.TotalIpis(), sharded.TotalIpis());
  EXPECT_EQ(serial.sim.events_executed(), sharded.sim.events_executed());
  EXPECT_EQ(serial.Fingerprints(), sharded.Fingerprints());
}

TEST(ShardedSim, ParallelShardedMatchesSerial) {
  Scenario serial(MakeOptions(/*sharded=*/false, /*parallel=*/false));
  Scenario parallel(MakeOptions(/*sharded=*/true, /*parallel=*/true));
  serial.sim.RunUntil(kHorizon);
  parallel.sim.RunUntil(kHorizon);

  EXPECT_EQ(serial.sim.events_executed(), parallel.sim.events_executed());
  EXPECT_EQ(serial.Fingerprints(), parallel.Fingerprints());
}

TEST(ShardedSim, ShardedRunsAreReproducible) {
  Scenario a(MakeOptions(/*sharded=*/true, /*parallel=*/false));
  Scenario b(MakeOptions(/*sharded=*/true, /*parallel=*/false));
  a.sim.RunUntil(kHorizon);
  b.sim.RunUntil(kHorizon);
  EXPECT_EQ(a.Fingerprints(), b.Fingerprints());
}

TEST(ShardedSim, SerialModeMultiplexesOntoOneEngine) {
  ShardedSimulation serial(MakeOptions(false, false));
  EXPECT_EQ(&serial.shard(0), &serial.shard(3));
  ShardedSimulation sharded(MakeOptions(true, false));
  EXPECT_NE(&sharded.shard(0), &sharded.shard(3));
}

TEST(ShardedSim, MessagePostedAtSetupArrivesAtExactDueTime) {
  for (const bool sharded : {false, true}) {
    ShardedSimulation::Options options = MakeOptions(sharded, false);
    ShardedSimulation sim(options);
    TimeNs arrived_at = -1;
    ASSERT_TRUE(sim.Post(0, 1, options.epoch_ns, [&sim, &arrived_at] {
                     arrived_at = sim.shard(1).Now();
                   }).ok());
    sim.RunUntil(4 * options.epoch_ns);
    EXPECT_EQ(arrived_at, options.epoch_ns) << "sharded=" << sharded;
  }
}

TEST(ShardedSim, EpochBarriersAdvanceTheAgreedClock) {
  ShardedSimulation sim(MakeOptions(true, false));
  EXPECT_EQ(sim.Now(), 0);
  sim.RunUntil(10 * sim.epoch_ns());
  EXPECT_EQ(sim.Now(), 10 * sim.epoch_ns());
  EXPECT_EQ(sim.epochs(), 10u);
  // A partial epoch still completes at the requested horizon.
  sim.RunUntil(10 * sim.epoch_ns() + sim.epoch_ns() / 2);
  EXPECT_EQ(sim.Now(), 10 * sim.epoch_ns() + sim.epoch_ns() / 2);
}

TEST(ShardedSim, PostBelowEpochIsRejectedWithRequiredDelay) {
  ShardedSimulation::Options options = MakeOptions(true, false);
  ShardedSimulation sim(options);
  int delivered = 0;
  const ShardedSimulation::PostResult rejected =
      sim.Post(0, 1, options.epoch_ns - 1, [&delivered] { ++delivered; });
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status, ShardedSimulation::PostResult::Status::kTooEarly);
  EXPECT_EQ(rejected.required_delay, options.epoch_ns);
  // The rejected message was dropped, not deferred: nothing fires, and a
  // re-post at the advertised minimum delay is accepted and delivered.
  ASSERT_TRUE(
      sim.Post(0, 1, rejected.required_delay, [&delivered] { ++delivered; })
          .ok());
  sim.RunUntil(4 * options.epoch_ns);
  EXPECT_EQ(delivered, 1);
}

TEST(ShardedSim, MessageDueSeveralEpochsOutIsDeliveredOnce) {
  ShardedSimulation::Options options = MakeOptions(true, false);
  ShardedSimulation sim(options);
  int delivered = 0;
  ASSERT_TRUE(
      sim.Post(2, 0, 5 * options.epoch_ns + 123, [&delivered] { ++delivered; })
          .ok());
  sim.RunUntil(20 * options.epoch_ns);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace tableau
