// Additional behavioural tests for the baseline scheduler models: details
// of Credit's boost lifecycle, Credit2's reset and weighting, RTDS's
// deferrable-server semantics, and determinism of the whole DES stack.
#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/schedulers/credit.h"
#include "src/schedulers/credit2.h"
#include "src/schedulers/rtds.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

template <typename Scheduler, typename... Args>
std::unique_ptr<Machine> MakeMachine(int cpus, Args&&... args) {
  MachineConfig config;
  config.num_cpus = cpus;
  config.cores_per_socket = cpus;
  return std::make_unique<Machine>(config,
                                   std::make_unique<Scheduler>(std::forward<Args>(args)...));
}

double Share(const Vcpu* vcpu, TimeNs duration) {
  return static_cast<double>(vcpu->total_service()) / static_cast<double>(duration);
}

TEST(CreditExtra, BoostNeutralizedWhenEveryoneIsBoosted) {
  // Sec. 2.1: "whether Xen's boosting heuristic actually reduces I/O latency
  // depends on the number of simultaneously boosted vCPUs: if every vCPU is
  // performing I/O and boosted as a result, then effectively no vCPU is
  // boosted." With bursty I/O competitors (all of which get boosted at their
  // own wake-ups and hold BOOST while running), enabling the heuristic for
  // the vantage VM barely moves its mean wake latency.
  double mean_latency[2];
  int index = 0;
  for (const bool boost : {true, false}) {
    CreditScheduler::Options options;
    options.boost_enabled = boost;
    auto machine = MakeMachine<CreditScheduler>(1, options);
    Vcpu* io = machine->AddVcpu(VcpuParams{});
    io->EnableInstrumentation();
    StressIoWorkload::Config ping_like;
    ping_like.compute = 50 * kMicrosecond;
    ping_like.io_wait = 6 * kMillisecond;
    StressIoWorkload vantage(machine.get(), io, ping_like);
    vantage.Start(0);
    // Three bursty UNDER competitors (duty ~22% < their 25% fair share).
    std::vector<std::unique_ptr<StressIoWorkload>> background;
    for (int i = 0; i < 3; ++i) {
      Vcpu* vcpu = machine->AddVcpu(VcpuParams{});
      StressIoWorkload::Config config;
      config.compute = 2 * kMillisecond;
      config.io_wait = 7 * kMillisecond;
      config.seed = static_cast<std::uint64_t>(i) + 1;
      background.push_back(std::make_unique<StressIoWorkload>(machine.get(), vcpu, config));
      background.back()->Start(0);
    }
    machine->Start();
    machine->RunFor(4 * kSecond);
    mean_latency[index++] = io->wakeup_latency().Mean();
  }
  // The boost changes the mean by well under 2x (it cannot preempt the
  // other boosted vCPUs), and both configurations still wait behind bursts.
  EXPECT_LT(mean_latency[1], 2.0 * mean_latency[0]);
  EXPECT_GT(mean_latency[0], static_cast<double>(300 * kMicrosecond));
  EXPECT_GT(mean_latency[1], static_cast<double>(300 * kMicrosecond));
}

TEST(CreditExtra, UncappedVmExceedsFairShareWhenOthersIdle) {
  auto machine = MakeMachine<CreditScheduler>(1, CreditScheduler::Options{});
  Vcpu* busy = machine->AddVcpu(VcpuParams{});
  CpuHogWorkload hog(machine.get(), busy);
  hog.Start(0);
  machine->AddVcpu(VcpuParams{});  // Exists but never runs anything.
  machine->Start();
  machine->RunFor(2 * kSecond);
  EXPECT_GT(Share(busy, 2 * kSecond), 0.95);
}

TEST(Credit2Extra, WeightsShapeShares) {
  auto machine = MakeMachine<Credit2Scheduler>(1, Credit2Scheduler::Options{});
  VcpuParams heavy;
  heavy.weight = 512;
  Vcpu* a = machine->AddVcpu(heavy);
  Vcpu* b = machine->AddVcpu(VcpuParams{});  // weight 256.
  CpuHogWorkload hog_a(machine.get(), a);
  CpuHogWorkload hog_b(machine.get(), b);
  hog_a.Start(0);
  hog_b.Start(0);
  machine->Start();
  machine->RunFor(4 * kSecond);
  // Credit2 burns credit at equal rates here but replenishes equally too, so
  // equal-burn competitors with our uniform reset split evenly; the weighted
  // share shows up through the credit comparison only weakly. Assert the
  // heavier vCPU gets at least its half (regression guard for the reset
  // logic, not a weight-proportionality claim).
  EXPECT_GE(Share(a, 4 * kSecond), 0.45);
  EXPECT_LE(Share(a, 4 * kSecond) + Share(b, 4 * kSecond), 1.01);
}

TEST(Credit2Extra, ResetKeepsEveryoneRunnable) {
  // Long run with three hogs: resets must fire repeatedly without starving
  // anyone (credits all drift to <= 0 and are replenished together).
  auto machine = MakeMachine<Credit2Scheduler>(1, Credit2Scheduler::Options{});
  std::vector<Vcpu*> vcpus;
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
  for (int i = 0; i < 3; ++i) {
    vcpus.push_back(machine->AddVcpu(VcpuParams{}));
    hogs.push_back(std::make_unique<CpuHogWorkload>(machine.get(), vcpus.back()));
    hogs.back()->Start(0);
  }
  machine->Start();
  machine->RunFor(10 * kSecond);
  for (const Vcpu* vcpu : vcpus) {
    EXPECT_NEAR(Share(vcpu, 10 * kSecond), 1.0 / 3, 0.04) << vcpu->id();
  }
}

TEST(RtdsExtra, WakeupAfterLongSleepStartsFreshPeriod) {
  // A vCPU that sleeps past its deadline gets a fresh budget and a deadline
  // one period out — so its first wake-up latency is small even though its
  // old deadline long expired.
  auto machine = MakeMachine<RtdsScheduler>(1);
  VcpuParams params;
  params.utilization = 0.25;
  params.latency_goal = 20 * kMillisecond;
  Vcpu* vcpu = machine->AddVcpu(params);
  vcpu->EnableInstrumentation();
  WorkQueueGuest guest(machine.get(), vcpu);
  // Single 1 ms job after 500 ms of sleep (≈39 periods).
  machine->sim().ScheduleAt(500 * kMillisecond,
                            [&] { guest.Post(kMillisecond, nullptr); });
  machine->Start();
  machine->RunFor(kSecond);
  ASSERT_EQ(vcpu->wakeup_latency().Count(), 1u);
  EXPECT_LT(vcpu->wakeup_latency().Max(), 100 * kMicrosecond);
}

TEST(RtdsExtra, DeferrableServerKeepsBudgetAcrossShortBlocks) {
  // Blocking briefly mid-period must not forfeit remaining budget: total
  // service still reaches the full 25% reservation.
  auto machine = MakeMachine<RtdsScheduler>(1);
  VcpuParams params;
  params.utilization = 0.25;
  params.latency_goal = 20 * kMillisecond;
  Vcpu* vcpu = machine->AddVcpu(params);
  StressIoWorkload::Config config;
  config.compute = kMillisecond;
  config.io_wait = 200 * kMicrosecond;  // Demand ~83% >> the 25% budget.
  StressIoWorkload stress(machine.get(), vcpu, config);
  stress.Start(0);
  machine->Start();
  machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.03);
}

TEST(Determinism, IdenticalRunsProduceIdenticalStatistics) {
  // The whole DES stack (RNG seeding, FIFO event ordering) is deterministic:
  // two identical runs must agree bit-for-bit on every statistic.
  auto run = [] {
    auto machine = MakeMachine<CreditScheduler>(2, CreditScheduler::Options{});
    std::vector<std::unique_ptr<StressIoWorkload>> stress;
    for (int i = 0; i < 6; ++i) {
      Vcpu* vcpu = machine->AddVcpu(VcpuParams{});
      StressIoWorkload::Config config;
      config.seed = static_cast<std::uint64_t>(i) + 1;
      stress.push_back(std::make_unique<StressIoWorkload>(machine.get(), vcpu, config));
      stress.back()->Start(0);
    }
    machine->Start();
    machine->RunFor(2 * kSecond);
    std::vector<TimeNs> service;
    for (const auto& vcpu : machine->vcpus()) {
      service.push_back(vcpu->total_service());
    }
    service.push_back(static_cast<TimeNs>(machine->context_switches()));
    service.push_back(static_cast<TimeNs>(machine->schedule_invocations()));
    return service;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tableau
