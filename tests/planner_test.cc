#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/core/planner.h"
#include "src/rt/hyperperiod.h"

namespace tableau {
namespace {

std::vector<VcpuRequest> UniformRequests(int count, double utilization, TimeNs latency) {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < count; ++i) {
    requests.push_back(VcpuRequest{i, utilization, latency});
  }
  return requests;
}

// Sum of a vCPU's requested utilization over the table, as actually granted.
double GrantedUtilization(const SchedulingTable& table, VcpuId vcpu) {
  return static_cast<double>(table.TotalService(vcpu)) /
         static_cast<double>(table.length());
}

TEST(Planner, PaperSetup48VmsOn12Cores) {
  PlannerConfig config;
  config.num_cpus = 12;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(48, 0.25, 20 * kMillisecond));
  ASSERT_TRUE(plan.success) << plan.error;
  EXPECT_EQ(plan.method, PlanMethod::kPartitioned);
  EXPECT_EQ(plan.table.Validate(), "");
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_TRUE(vcpu.latency_goal_met);
    EXPECT_FALSE(vcpu.split);
    // Blackout measured in the actual table must respect the bound.
    EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), vcpu.blackout_bound);
    // Utilization granted within ns quantization of the request.
    EXPECT_GE(GrantedUtilization(plan.table, vcpu.vcpu), 0.25 - 1e-6);
  }
}

TEST(Planner, UtilizationGuaranteeAcrossLatencyGoals) {
  for (const TimeNs latency : {kMillisecond, 30 * kMillisecond, 60 * kMillisecond,
                               100 * kMillisecond}) {
    PlannerConfig config;
    config.num_cpus = 4;
    const Planner planner(config);
    const PlanResult plan = planner.Plan(UniformRequests(16, 0.25, latency));
    ASSERT_TRUE(plan.success) << plan.error << " latency " << latency;
    for (const VcpuPlan& vcpu : plan.vcpus) {
      EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), latency)
          << "latency goal " << latency << " vcpu " << vcpu.vcpu;
    }
  }
}

TEST(Planner, RejectsOverUtilized) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(9, 0.25, 20 * kMillisecond));
  EXPECT_FALSE(plan.success);
  EXPECT_NE(plan.error.find("over-utilized"), std::string::npos);
}

TEST(Planner, RejectsBadRequests) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  EXPECT_FALSE(planner.Plan({{0, 0.0, kMillisecond}}).success);
  EXPECT_FALSE(planner.Plan({{0, 1.5, kMillisecond}}).success);
  EXPECT_FALSE(planner.Plan({{0, 0.5, 0}}).success);
  EXPECT_FALSE(planner.Plan({{0, 0.5, kMillisecond}, {0, 0.5, kMillisecond}}).success);
}

TEST(Planner, EmptyRequestSetYieldsIdleTable) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  const PlanResult plan = planner.Plan({});
  ASSERT_TRUE(plan.success);
  EXPECT_EQ(plan.table.num_cpus(), 2);
  EXPECT_EQ(plan.table.cpu(0).allocations.size(), 0u);
}

TEST(Planner, DedicatedCoreForFullUtilization) {
  PlannerConfig config;
  config.num_cpus = 3;
  const Planner planner(config);
  std::vector<VcpuRequest> requests = {{0, 1.0, kMillisecond},
                                       {1, 0.5, 20 * kMillisecond},
                                       {2, 0.5, 20 * kMillisecond}};
  const PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success) << plan.error;
  // vCPU 0 owns a full core.
  EXPECT_EQ(plan.table.TotalService(0), plan.table.length());
  EXPECT_EQ(plan.table.MaxBlackout(0), 0);
  const auto it = std::find_if(plan.vcpus.begin(), plan.vcpus.end(),
                               [](const VcpuPlan& v) { return v.vcpu == 0; });
  ASSERT_NE(it, plan.vcpus.end());
  EXPECT_TRUE(it->dedicated);
}

TEST(Planner, TooManyDedicatedVcpusRejected) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  std::vector<VcpuRequest> requests = {
      {0, 1.0, kMillisecond}, {1, 1.0, kMillisecond}, {2, 0.5, 20 * kMillisecond}};
  EXPECT_FALSE(planner.Plan(requests).success);
}

TEST(Planner, ExactFullPackAdmittedViaShaving) {
  // 4 cores x 4 VMs x 25% = exactly 100%: ceil-rounding would overflow by a
  // few ns; the shave pass must admit it.
  PlannerConfig config;
  config.num_cpus = 4;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(16, 0.25, 20 * kMillisecond));
  ASSERT_TRUE(plan.success) << plan.error;
  for (const VcpuPlan& vcpu : plan.vcpus) {
    // Within 1 ns per period of the requested share.
    const double tolerance =
        1.0 / static_cast<double>(vcpu.period) + 1e-9;
    EXPECT_GE(vcpu.effective_utilization, 0.25 - tolerance);
  }
}

TEST(Planner, QuantizationShaveKeepsQuarterSharesPartitioned) {
  // 160 quarter-share VMs on 44 cores with a 1 ms goal: the chosen period is
  // not divisible by 4, so C = ceil(T/4) overflows each core by 2 ns and
  // naive partitioning fails. The quantization-aware retry must keep this
  // partitioned instead of escalating to the cluster stage.
  PlannerConfig config;
  config.num_cpus = 44;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(160, 0.25, kMillisecond));
  ASSERT_TRUE(plan.success) << plan.error;
  EXPECT_EQ(plan.method, PlanMethod::kPartitioned);
  for (const VcpuPlan& vcpu : plan.vcpus) {
    // Within 1 ns per period of the requested share.
    EXPECT_GE(vcpu.effective_utilization,
              0.25 - 1.0 / static_cast<double>(vcpu.period) - 1e-12);
    EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), kMillisecond);
  }
}

TEST(Planner, SemiPartitioningEngagesForUnpartitionableLoad) {
  // Three 60% vCPUs on two cores cannot be partitioned.
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(3, 0.6, 40 * kMillisecond));
  ASSERT_TRUE(plan.success) << plan.error;
  EXPECT_NE(plan.method, PlanMethod::kPartitioned);
  EXPECT_EQ(plan.table.Validate(), "");
  // At least one vCPU is split across both cores.
  const bool any_split = std::any_of(plan.vcpus.begin(), plan.vcpus.end(),
                                     [](const VcpuPlan& v) { return v.split; });
  EXPECT_TRUE(any_split);
  // Utilization guarantees still hold.
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_GE(GrantedUtilization(plan.table, vcpu.vcpu), 0.6 - 1e-6);
  }
}

TEST(Planner, SemiPartitionedLatencyStillBounded) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(3, 0.6, 40 * kMillisecond));
  ASSERT_TRUE(plan.success) << plan.error;
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), 40 * kMillisecond) << vcpu.vcpu;
  }
}

TEST(Planner, HighUtilizationManyVcpus) {
  // 8 cores, 15 vCPUs at 52%: 7.8 total; partitioning fits only one per
  // core -> semi-partitioning must engage and succeed.
  PlannerConfig config;
  config.num_cpus = 8;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(UniformRequests(15, 0.52, 40 * kMillisecond));
  ASSERT_TRUE(plan.success) << plan.error;
  EXPECT_EQ(plan.table.Validate(), "");
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_GE(GrantedUtilization(plan.table, vcpu.vcpu), 0.52 - 1e-6) << vcpu.vcpu;
  }
}

TEST(Planner, MixedTiersPlan) {
  // Price-differentiated tiers: gold 50%/10ms, silver 25%/30ms,
  // bronze 10%/100ms.
  PlannerConfig config;
  config.num_cpus = 4;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  int id = 0;
  for (int i = 0; i < 3; ++i) {
    requests.push_back({id++, 0.5, 10 * kMillisecond});
  }
  for (int i = 0; i < 6; ++i) {
    requests.push_back({id++, 0.25, 30 * kMillisecond});
  }
  for (int i = 0; i < 9; ++i) {
    requests.push_back({id++, 0.10, 100 * kMillisecond});
  }
  const PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success) << plan.error;
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), vcpu.latency_goal) << vcpu.vcpu;
    // Granted share is the effective reservation minus reported coalescing
    // donations (exact accounting).
    const double donated =
        static_cast<double>(vcpu.donated_ns) / static_cast<double>(plan.table.length());
    EXPECT_GE(GrantedUtilization(plan.table, vcpu.vcpu),
              vcpu.requested_utilization - donated - 1e-6)
        << vcpu.vcpu;
    // Donations must stay small relative to the share (< 2% of it).
    EXPECT_LE(donated, 0.02 * vcpu.requested_utilization + 1e-9) << vcpu.vcpu;
  }
}

class PlannerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerPropertyTest, RandomWorkloadsSatisfyGuarantees) {
  Rng rng(GetParam());
  const int cores = static_cast<int>(rng.UniformInt(2, 12));
  PlannerConfig config;
  config.num_cpus = cores;
  const Planner planner(config);

  std::vector<VcpuRequest> requests;
  double total = 0;
  int id = 0;
  while (true) {
    const double u = rng.UniformDouble(0.02, 0.8);
    if (total + u > 0.95 * cores || id > 60) {
      break;
    }
    total += u;
    VcpuRequest request;
    request.vcpu = id++;
    request.utilization = u;
    request.latency_goal = rng.UniformInt(2 * kMillisecond, 150 * kMillisecond);
    requests.push_back(request);
  }
  const PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success) << plan.error;
  ASSERT_EQ(plan.table.Validate(), "");

  std::map<VcpuId, const VcpuRequest*> by_id;
  for (const VcpuRequest& request : requests) {
    by_id[request.vcpu] = &request;
  }
  for (const VcpuPlan& vcpu : plan.vcpus) {
    const VcpuRequest& request = *by_id.at(vcpu.vcpu);
    // Minimum-share guarantee, with coalescing donations exactly accounted.
    const double donated =
        static_cast<double>(vcpu.donated_ns) / static_cast<double>(plan.table.length());
    EXPECT_GE(GrantedUtilization(plan.table, vcpu.vcpu),
              request.utilization - donated - 1e-6)
        << "vcpu " << vcpu.vcpu;
    // Latency guarantee whenever the goal was achievable.
    if (vcpu.latency_goal_met) {
      EXPECT_LE(plan.table.MaxBlackout(vcpu.vcpu), request.latency_goal)
          << "vcpu " << vcpu.vcpu;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PlannerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace tableau
