#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/schedulers/cfs.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

struct CfsRig {
  explicit CfsRig(int cpus, CfsScheduler::Options options = {}) {
    MachineConfig config;
    config.num_cpus = cpus;
    config.cores_per_socket = cpus;
    machine = std::make_unique<Machine>(config, std::make_unique<CfsScheduler>(options));
  }

  Vcpu* AddHog(const VcpuParams& params = {}) {
    Vcpu* vcpu = machine->AddVcpu(params);
    hogs.push_back(std::make_unique<CpuHogWorkload>(machine.get(), vcpu));
    hogs.back()->Start(0);
    return vcpu;
  }

  std::unique_ptr<Machine> machine;
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
};

double Share(const Vcpu* vcpu, TimeNs duration) {
  return static_cast<double>(vcpu->total_service()) / static_cast<double>(duration);
}

TEST(Cfs, SingleHogGetsFullCpu) {
  CfsRig rig(1);
  Vcpu* vcpu = rig.AddHog();
  rig.machine->Start();
  rig.machine->RunFor(kSecond);
  EXPECT_GT(Share(vcpu, kSecond), 0.98);
}

TEST(Cfs, EqualWeightsFairShare) {
  CfsRig rig(1);
  Vcpu* a = rig.AddHog();
  Vcpu* b = rig.AddHog();
  Vcpu* c = rig.AddHog();
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(a, 3 * kSecond), 1.0 / 3, 0.04);
  EXPECT_NEAR(Share(b, 3 * kSecond), 1.0 / 3, 0.04);
  EXPECT_NEAR(Share(c, 3 * kSecond), 1.0 / 3, 0.04);
}

TEST(Cfs, WeightedShares) {
  CfsRig rig(1);
  VcpuParams heavy;
  heavy.weight = 512;
  Vcpu* a = rig.AddHog(heavy);
  Vcpu* b = rig.AddHog();
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(a, 3 * kSecond), 2.0 / 3, 0.05);
  EXPECT_NEAR(Share(b, 3 * kSecond), 1.0 / 3, 0.05);
}

TEST(Cfs, LoadBalancingUsesAllCores) {
  CfsRig rig(4);
  std::vector<Vcpu*> vcpus;
  for (int i = 0; i < 8; ++i) {
    vcpus.push_back(rig.AddHog());
  }
  rig.machine->Start();
  rig.machine->RunFor(2 * kSecond);
  double total = 0;
  for (const Vcpu* vcpu : vcpus) {
    total += Share(vcpu, 2 * kSecond);
    EXPECT_GT(Share(vcpu, 2 * kSecond), 0.3) << vcpu->id();
  }
  EXPECT_GT(total, 3.8);
}

TEST(Cfs, BandwidthCapEnforced) {
  CfsRig rig(1);
  VcpuParams capped;
  capped.cap = 0.25;
  Vcpu* vcpu = rig.AddHog(capped);
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.02);
}

TEST(Cfs, ThrottledVcpuWaitsForPeriodRefresh) {
  // A capped hog alone on a core burns its quota then sits throttled for
  // the rest of the 100 ms bandwidth period: gaps approach 75 ms.
  CfsRig rig(1);
  VcpuParams capped;
  capped.cap = 0.25;
  Vcpu* vcpu = rig.AddHog(capped);
  vcpu->EnableInstrumentation();
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  EXPECT_GT(vcpu->service_gaps().Max(), 60 * kMillisecond);
  EXPECT_LT(vcpu->service_gaps().Max(), 90 * kMillisecond);
}

TEST(Cfs, GentleSleeperBoundsWakerAdvantage) {
  // An I/O vCPU waking against a CPU hog: with gentle fair sleepers its
  // wake latency is low (it gets at most half a latency period of credit);
  // with the credit unbounded (gentle disabled keeps raw vruntime, which
  // for a long sleeper is far behind) it preempts even more aggressively.
  // Verify the gentle variant keeps both properties: low wake latency AND a
  // bounded advantage (the hog still gets the bulk of the CPU).
  CfsScheduler::Options options;
  CfsRig rig(1, options);
  Vcpu* io = rig.machine->AddVcpu(VcpuParams{});
  io->EnableInstrumentation();
  StressIoWorkload::Config stress_config;
  stress_config.compute = 100 * kMicrosecond;
  stress_config.io_wait = 5 * kMillisecond;
  StressIoWorkload stress(rig.machine.get(), io, stress_config);
  stress.Start(0);
  Vcpu* hog = rig.AddHog();
  rig.machine->Start();
  rig.machine->RunFor(3 * kSecond);
  // The sleeper gets scheduled promptly on wake...
  EXPECT_LT(io->wakeup_latency().Percentile(0.99), 3 * kMillisecond);
  // ...but cannot starve the hog.
  EXPECT_GT(Share(hog, 3 * kSecond), 0.9);
}

TEST(Cfs, SliceShrinksWithRunnableCount) {
  // With many runnable vCPUs, slices shrink toward min_granularity, so
  // context switches per second rise accordingly.
  CfsRig solo(1);
  solo.AddHog();
  solo.AddHog();
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  const double switches_2 = static_cast<double>(solo.machine->context_switches());

  CfsRig crowd(1);
  for (int i = 0; i < 8; ++i) {
    crowd.AddHog();
  }
  crowd.machine->Start();
  crowd.machine->RunFor(kSecond);
  const double switches_8 = static_cast<double>(crowd.machine->context_switches());
  EXPECT_GT(switches_8, 2.0 * switches_2);
}

}  // namespace
}  // namespace tableau
