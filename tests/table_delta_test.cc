#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/table/table_delta.h"

namespace tableau {
namespace {

SchedulingTable Simple(std::vector<std::vector<Allocation>> per_cpu, TimeNs len = 1000) {
  return SchedulingTable::Build(len, std::move(per_cpu));
}

TEST(TableDelta, RoundTripSingleDirtyCore) {
  const SchedulingTable base = Simple({{{0, 0, 500}}, {{1, 0, 300}}});
  const SchedulingTable next = Simple({{{0, 0, 500}}, {{1, 100, 400}, {2, 400, 600}}});
  const auto delta = SerializeDelta(base, next);
  EXPECT_EQ(DeltaDirtyCores(delta), 1);
  const SchedulingTable applied = ApplyDelta(base, delta);
  EXPECT_EQ(applied.Validate(), "");
  for (int cpu = 0; cpu < 2; ++cpu) {
    EXPECT_EQ(applied.cpu(cpu).allocations, next.cpu(cpu).allocations);
    EXPECT_EQ(applied.cpu(cpu).slice_length, next.cpu(cpu).slice_length);
    EXPECT_EQ(applied.cpu(cpu).local_vcpus, next.cpu(cpu).local_vcpus);
  }
}

TEST(TableDelta, IdenticalTablesYieldEmptyDelta) {
  const SchedulingTable base = Simple({{{0, 0, 500}}, {{1, 0, 300}}});
  const auto delta = SerializeDelta(base, base);
  EXPECT_EQ(DeltaDirtyCores(delta), 0);
  const SchedulingTable applied = ApplyDelta(base, delta);
  EXPECT_EQ(applied.cpu(0).allocations, base.cpu(0).allocations);
}

TEST(TableDelta, MuchSmallerThanFullPushForLocalChange) {
  // Paper-scale table; one VM arrives via incremental replanning: the delta
  // must be far smaller than the full serialized table.
  PlannerConfig config;
  config.num_cpus = 12;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 47; ++i) {
    requests.push_back({i, 0.25, 20 * kMillisecond});
  }
  const PlanResult base = planner.Plan(requests);
  ASSERT_TRUE(base.success);
  const PlanResult next =
      planner.PlanIncremental(base, {{47, 0.25, 20 * kMillisecond}}, {});
  ASSERT_TRUE(next.success);
  ASSERT_EQ(next.dirty_cores.size(), 1u);

  const auto delta = SerializeDelta(base.table, next.table);
  EXPECT_EQ(DeltaDirtyCores(delta), 1);
  EXPECT_LT(delta.size() * 5, next.table.SerializedSizeBytes());
  const SchedulingTable applied = ApplyDelta(base.table, delta);
  for (int cpu = 0; cpu < 12; ++cpu) {
    EXPECT_EQ(applied.cpu(cpu).allocations, next.table.cpu(cpu).allocations);
  }
}

TEST(TableDeltaDeathTest, RejectsGeometryMismatch) {
  const SchedulingTable base = Simple({{{0, 0, 500}}});
  const SchedulingTable other = Simple({{{0, 0, 500}}, {{1, 0, 300}}});
  EXPECT_DEATH(SerializeDelta(base, other), "identical table geometry");
  const SchedulingTable next = Simple({{{0, 0, 400}}});
  const auto delta = SerializeDelta(base, next);
  EXPECT_DEATH(ApplyDelta(other, delta), "geometry");
}

TEST(TableDeltaDeathTest, RejectsCorruptMagic) {
  const SchedulingTable base = Simple({{{0, 0, 500}}});
  auto delta = SerializeDelta(base, base);
  delta[0] ^= 0xff;
  EXPECT_DEATH(ApplyDelta(base, delta), "bad delta magic");
}

}  // namespace
}  // namespace tableau
