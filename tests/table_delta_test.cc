#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/planner.h"
#include "src/table/table_delta.h"

namespace tableau {
namespace {

SchedulingTable Simple(std::vector<std::vector<Allocation>> per_cpu, TimeNs len = 1000) {
  return SchedulingTable::Build(len, std::move(per_cpu));
}

TEST(TableDelta, RoundTripSingleDirtyCore) {
  const SchedulingTable base = Simple({{{0, 0, 500}}, {{1, 0, 300}}});
  const SchedulingTable next = Simple({{{0, 0, 500}}, {{1, 100, 400}, {2, 400, 600}}});
  const auto delta = SerializeDelta(base, next);
  EXPECT_EQ(DeltaDirtyCores(delta), 1);
  const SchedulingTable applied = ApplyDelta(base, delta);
  EXPECT_EQ(applied.Validate(), "");
  for (int cpu = 0; cpu < 2; ++cpu) {
    EXPECT_EQ(applied.cpu(cpu).allocations, next.cpu(cpu).allocations);
    EXPECT_EQ(applied.cpu(cpu).slice_length, next.cpu(cpu).slice_length);
    EXPECT_EQ(applied.cpu(cpu).local_vcpus, next.cpu(cpu).local_vcpus);
  }
}

TEST(TableDelta, IdenticalTablesYieldEmptyDelta) {
  const SchedulingTable base = Simple({{{0, 0, 500}}, {{1, 0, 300}}});
  const auto delta = SerializeDelta(base, base);
  EXPECT_EQ(DeltaDirtyCores(delta), 0);
  const SchedulingTable applied = ApplyDelta(base, delta);
  EXPECT_EQ(applied.cpu(0).allocations, base.cpu(0).allocations);
}

TEST(TableDelta, MuchSmallerThanFullPushForLocalChange) {
  // Paper-scale table; one VM arrives via incremental replanning: the delta
  // must be far smaller than the full serialized table.
  PlannerConfig config;
  config.num_cpus = 12;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 47; ++i) {
    requests.push_back({i, 0.25, 20 * kMillisecond});
  }
  const PlanResult base = planner.Plan(requests);
  ASSERT_TRUE(base.success);
  const PlanResult next =
      planner.PlanIncremental(base, {{47, 0.25, 20 * kMillisecond}}, {});
  ASSERT_TRUE(next.success);
  ASSERT_EQ(next.dirty_cores.size(), 1u);

  const auto delta = SerializeDelta(base.table, next.table);
  EXPECT_EQ(DeltaDirtyCores(delta), 1);
  EXPECT_LT(delta.size() * 5, next.table.SerializedSizeBytes());
  const SchedulingTable applied = ApplyDelta(base.table, delta);
  for (int cpu = 0; cpu < 12; ++cpu) {
    EXPECT_EQ(applied.cpu(cpu).allocations, next.table.cpu(cpu).allocations);
  }
}

// Draws a random table with the given geometry: each core gets a random
// number of non-overlapping, sorted allocations with random vcpus and gaps.
SchedulingTable FuzzTable(Rng& rng, int num_cpus, TimeNs length) {
  std::vector<std::vector<Allocation>> per_cpu(num_cpus);
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    TimeNs cursor = 0;
    while (cursor < length) {
      cursor += rng.UniformInt(0, length / 4);  // Maybe leave a gap.
      const TimeNs start = cursor;
      const TimeNs end = std::min<TimeNs>(length, start + rng.UniformInt(1, length / 3));
      if (start >= end) {
        break;
      }
      // Disjoint vcpu namespace per core keeps Validate()'s cross-core
      // exclusion check satisfiable for arbitrary random draws.
      per_cpu[cpu].push_back(
          {cpu * 16 + static_cast<int>(rng.UniformInt(0, 15)), start, end});
      cursor = end;
    }
  }
  return SchedulingTable::Build(length, std::move(per_cpu));
}

// Property: for fuzzed same-geometry pairs (base, next), applying
// SerializeDelta(base, next) to base reconstructs next byte-for-byte — the
// applied table's serialization is identical to next's, and the dirty-core
// count matches the number of cores whose allocation lists differ.
TEST(TableDelta, FuzzedPairsRoundTripByteIdentical) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const int num_cpus = static_cast<int>(rng.UniformInt(1, 8));
    const TimeNs length = rng.UniformInt(100, 100000);
    const SchedulingTable base = FuzzTable(rng, num_cpus, length);
    const SchedulingTable next = FuzzTable(rng, num_cpus, length);

    int expect_dirty = 0;
    for (int cpu = 0; cpu < num_cpus; ++cpu) {
      if (base.cpu(cpu).allocations != next.cpu(cpu).allocations) {
        ++expect_dirty;
      }
    }

    const auto delta = SerializeDelta(base, next);
    EXPECT_EQ(DeltaDirtyCores(delta), expect_dirty) << "seed " << seed;
    const SchedulingTable applied = ApplyDelta(base, delta);
    EXPECT_EQ(applied.Validate(), "") << "seed " << seed;
    EXPECT_EQ(applied.Serialize(), next.Serialize()) << "seed " << seed;
  }
}

// Property: a delta applied to the table it was derived from is idempotent in
// serialization terms even when base == next (the degenerate pair).
TEST(TableDelta, FuzzedSelfDeltaIsEmptyAndByteStable) {
  for (std::uint64_t seed = 1000; seed < 1100; ++seed) {
    Rng rng(seed);
    const int num_cpus = static_cast<int>(rng.UniformInt(1, 6));
    const SchedulingTable base = FuzzTable(rng, num_cpus, rng.UniformInt(100, 50000));
    const auto delta = SerializeDelta(base, base);
    EXPECT_EQ(DeltaDirtyCores(delta), 0) << "seed " << seed;
    const SchedulingTable applied = ApplyDelta(base, delta);
    EXPECT_EQ(applied.Serialize(), base.Serialize()) << "seed " << seed;
  }
}

TEST(TableDeltaDeathTest, RejectsGeometryMismatch) {
  const SchedulingTable base = Simple({{{0, 0, 500}}});
  const SchedulingTable other = Simple({{{0, 0, 500}}, {{1, 0, 300}}});
  EXPECT_DEATH(SerializeDelta(base, other), "identical table geometry");
  const SchedulingTable next = Simple({{{0, 0, 400}}});
  const auto delta = SerializeDelta(base, next);
  EXPECT_DEATH(ApplyDelta(other, delta), "geometry");
}

TEST(TableDeltaDeathTest, RejectsCorruptMagic) {
  const SchedulingTable base = Simple({{{0, 0, 500}}});
  auto delta = SerializeDelta(base, base);
  delta[0] ^= 0xff;
  EXPECT_DEATH(ApplyDelta(base, delta), "bad delta magic");
}

}  // namespace
}  // namespace tableau
