// Golden-trace determinism test for the event engine rewrite: full-system
// scenarios (Fig. 5 style: vantage CPU hog + I/O background on a 4-core
// guest) must produce the exact trace-record sequence and aggregate counters
// that the original binary-heap engine produced. The pinned fingerprints
// were captured with tools/golden_capture against the seed engine; any
// reordering of same-time events, lost tick, or drifted timestamp in the
// timer-wheel engine changes the hash.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {


// FNV-1a over every retained trace record plus the run's aggregate counters.
std::uint64_t Fingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  mix(scenario.machine->context_switches());
  mix(scenario.machine->schedule_invocations());
  return hash;
}

std::uint64_t RunOne(SchedKind kind, bool capped) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  Scenario scenario = BuildScenario(config);
  scenario.machine->trace().set_enabled(true);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(300 * kMillisecond);
  return Fingerprint(scenario);
}

TEST(EngineGolden, CreditCappedMatchesSeedEngine) {
  EXPECT_EQ(RunOne(SchedKind::kCredit, /*capped=*/true), 0x333e06cf99a7599cull);
}

TEST(EngineGolden, RtdsCappedMatchesSeedEngine) {
  EXPECT_EQ(RunOne(SchedKind::kRtds, /*capped=*/true), 0x60d523229e7ecfd0ull);
}

TEST(EngineGolden, TableauCappedMatchesSeedEngine) {
  EXPECT_EQ(RunOne(SchedKind::kTableau, /*capped=*/true), 0x667b8a1e9f596cb5ull);
}

TEST(EngineGolden, CreditUncappedMatchesSeedEngine) {
  EXPECT_EQ(RunOne(SchedKind::kCredit, /*capped=*/false), 0xf4b2c445a055f16full);
}

}  // namespace
}  // namespace tableau
