// Differential-oracle sweep (the nightly-style `check` suite): for every
// scheduler, run >= 1000 fuzzed scenarios — randomized machine shapes, VM
// mixes, workloads, fault plans, replans, slip tolerances — and demand zero
// divergences between the production scheduler and its step-at-a-time
// reference model, plus a verified table behind every Tableau plan.
//
// Any failure here prints the serialized reproducer; paste it into a file
// and replay with `tableau_checkctl replay` (or shrink with
// `tableau_checkctl fuzz --shrink` around the failing seed).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/check/scenario_fuzz.h"
#include "src/schedulers/factory.h"

namespace tableau::check {
namespace {

constexpr int kScenariosPerScheduler = 1000;

class OracleSweep : public ::testing::TestWithParam<SchedKind> {};

TEST_P(OracleSweep, ThousandFuzzedScenariosNoDivergence) {
  const SchedKind kind = GetParam();
  int ran = 0;
  std::uint64_t total_records = 0;
  // Walk the shared seed stream and keep the scenarios drawn for this
  // scheduler; the bound on seeds is a safety net, not a target.
  for (std::uint64_t seed = 0; ran < kScenariosPerScheduler && seed < 100000;
       ++seed) {
    const ScenarioSpec spec = GenerateSpec(seed);
    if (spec.scheduler != kind) {
      continue;
    }
    const CheckOutcome outcome = RunCheckedScenario(spec);
    ASSERT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front()
        << "\nreproducer:\n"
        << FormatSpec(spec);
    total_records += outcome.records;
    ++ran;
  }
  ASSERT_EQ(ran, kScenariosPerScheduler);
  // The sweep must actually exercise the scheduler, not no-op through it.
  EXPECT_GT(total_records, static_cast<std::uint64_t>(kScenariosPerScheduler));
}

INSTANTIATE_TEST_SUITE_P(Check, OracleSweep, ::testing::ValuesIn(kAllSchedKinds),
                         [](const ::testing::TestParamInfo<SchedKind>& info) {
                           return SchedKindName(info.param);
                         });

}  // namespace
}  // namespace tableau::check
