// Tests for the experiment harness, including multi-vCPU VM scenarios.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/coschedule.h"
#include "src/harness/scenario.h"
#include "src/workloads/gang.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

TEST(Harness, PaperDefaultsBuild48Vms) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.capped = true;
  const Scenario scenario = BuildScenario(config);
  EXPECT_EQ(scenario.vcpus.size(), 48u);
  EXPECT_EQ(scenario.machine->num_cpus(), 12);
  EXPECT_TRUE(scenario.plan.success);
  // Single-vCPU VMs: one VM index per vCPU.
  std::set<int> vms(scenario.vm_of.begin(), scenario.vm_of.end());
  EXPECT_EQ(vms.size(), 48u);
}

TEST(Harness, SchedulerNamesCoverAllKinds) {
  EXPECT_STREQ(SchedKindName(SchedKind::kCredit), "Credit");
  EXPECT_STREQ(SchedKindName(SchedKind::kCredit2), "Credit2");
  EXPECT_STREQ(SchedKindName(SchedKind::kRtds), "RTDS");
  EXPECT_STREQ(SchedKindName(SchedKind::kTableau), "Tableau");
  EXPECT_STREQ(SchedKindName(SchedKind::kCfs), "CFS");
}

TEST(Harness, VmScenarioGroupsVcpus) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  config.capped = true;
  std::vector<VmSpec> vms;
  vms.push_back(VmSpec{.vcpus = 2, .utilization_each = 0.25, .gang = false});
  vms.push_back(VmSpec{.vcpus = 1, .utilization_each = 0.5});
  vms.push_back(VmSpec{.vcpus = 3, .utilization_each = 0.2});
  const Scenario scenario = BuildVmScenario(config, vms);
  ASSERT_EQ(scenario.vcpus.size(), 6u);
  EXPECT_EQ(scenario.vm_of, (std::vector<int>{0, 0, 1, 2, 2, 2}));
  EXPECT_TRUE(scenario.plan.success);
  // Every vCPU got its reservation in the table.
  for (std::size_t i = 0; i < scenario.vcpus.size(); ++i) {
    const double granted =
        static_cast<double>(scenario.plan.table.TotalService(scenario.vcpus[i]->id())) /
        static_cast<double>(scenario.plan.table.length());
    const double requested = i < 2 ? 0.25 : (i == 2 ? 0.5 : 0.2);
    EXPECT_GE(granted, requested - 1e-3) << i;
  }
}

TEST(Harness, GangVmGetsAlignedSlots) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.guest_cpus = 2;
  config.cores_per_socket = 2;
  config.capped = true;

  // Same shape with and without the gang hint; the gang variant must have
  // at least as much member-slot overlap.
  TimeNs overlap[2];
  for (const bool gang : {false, true}) {
    std::vector<VmSpec> vms;
    vms.push_back(VmSpec{.vcpus = 2, .utilization_each = 0.25, .gang = gang});
    // Filler VMs so the cores are not trivially aligned.
    vms.push_back(VmSpec{.vcpus = 1, .utilization_each = 0.4});
    vms.push_back(VmSpec{.vcpus = 1, .utilization_each = 0.4});
    const Scenario scenario = BuildVmScenario(config, vms);
    ASSERT_TRUE(scenario.plan.success);
    std::vector<std::vector<Allocation>> per_core(2);
    for (int c = 0; c < 2; ++c) {
      per_core[static_cast<std::size_t>(c)] = scenario.plan.table.cpu(c).allocations;
    }
    overlap[gang ? 1 : 0] = PairOverlapNs(per_core, 0, 1);
  }
  EXPECT_GE(overlap[1], overlap[0]);
  EXPECT_GT(overlap[1], 0);
}

TEST(Harness, GangVmImprovesPhaseThroughput) {
  // End to end: a barrier-parallel VM completes more phases when planned
  // with the gang hint.
  std::uint64_t phases[2];
  for (const bool gang : {false, true}) {
    ScenarioConfig config;
    config.scheduler = SchedKind::kTableau;
    config.guest_cpus = 2;
    config.cores_per_socket = 2;
    config.capped = true;
    std::vector<VmSpec> vms;
    vms.push_back(VmSpec{.vcpus = 2, .utilization_each = 0.25, .gang = gang});
    Scenario scenario = BuildVmScenario(config, vms);
    // Force misalignment in the non-gang case by shifting core 1's slots to
    // the end of their windows (the planner may align by accident).
    if (!gang) {
      std::vector<std::vector<Allocation>> per_core(2);
      per_core[0] = scenario.plan.table.cpu(0).allocations;
      per_core[1] = scenario.plan.table.cpu(1).allocations;
      const PeriodicTask& task = scenario.plan.core_tasks[1][0];
      for (Allocation& alloc : per_core[1]) {
        const TimeNs window = (alloc.start / task.period) * task.period;
        alloc.start = window + task.period - alloc.Length();
        alloc.end = window + task.period;
      }
      scenario.tableau->PushTable(std::make_shared<SchedulingTable>(
          SchedulingTable::Build(scenario.plan.table.length(), std::move(per_core))));
    }
    GangWorkload::Config gang_config;
    gang_config.phase_cpu = 500 * kMicrosecond;
    GangWorkload workload(scenario.machine,
                          {scenario.vcpus[0], scenario.vcpus[1]}, gang_config);
    workload.Start(0);
    scenario.machine->Start();
    // Skip past the table switch (the misaligned push lands 2 rounds out).
    scenario.machine->RunFor(4 * kSecond);
    phases[gang ? 1 : 0] = workload.phases_completed();
  }
  EXPECT_GT(phases[1], phases[0] * 3 / 2);
}

TEST(Harness, EmptyVmListIsValid) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kCredit;
  config.guest_cpus = 2;
  config.cores_per_socket = 2;
  const Scenario scenario = BuildVmScenario(config, {});
  EXPECT_TRUE(scenario.vcpus.empty());
  EXPECT_EQ(scenario.vantage, nullptr);
  scenario.machine->Start();
  scenario.machine->RunFor(100 * kMillisecond);  // Idles without incident.
}

}  // namespace
}  // namespace tableau
