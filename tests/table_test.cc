#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/rt/edf_sim.h"
#include "src/rt/hyperperiod.h"
#include "src/table/scheduling_table.h"

namespace tableau {
namespace {

SchedulingTable SimpleTable() {
  // CPU 0: [0,100) -> 0, [100,250) -> 1, idle [250,300), [300,400) -> 0.
  // CPU 1: [50,150) -> 2.
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 250}, {0, 300, 400}};
  per_cpu[1] = {{2, 50, 150}};
  return SchedulingTable::Build(400, std::move(per_cpu));
}

TEST(SchedulingTable, BuildSortsAndValidates) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{1, 100, 250}, {0, 0, 100}};  // Unsorted input.
  const SchedulingTable table = SchedulingTable::Build(400, std::move(per_cpu));
  EXPECT_EQ(table.Validate(), "");
  EXPECT_EQ(table.cpu(0).allocations[0].vcpu, 0);
  EXPECT_EQ(table.cpu(0).allocations[1].vcpu, 1);
}

TEST(SchedulingTable, LookupInsideAllocation) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(0, 50);
  EXPECT_EQ(result.vcpu, 0);
  EXPECT_EQ(result.interval_end, 100);
}

TEST(SchedulingTable, LookupAtAllocationBoundary) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(0, 100);
  EXPECT_EQ(result.vcpu, 1);
  EXPECT_EQ(result.interval_end, 250);
}

TEST(SchedulingTable, LookupInIdleGap) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(0, 260);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 300);
}

TEST(SchedulingTable, LookupIdleBeforeFirstAllocation) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(1, 10);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 50);
}

TEST(SchedulingTable, LookupIdleTail) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(1, 200);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 400);
}

TEST(SchedulingTable, EmptyCpuIsAllIdle) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LookupResult result = table.Lookup(0, 123);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 1000);
}

TEST(SchedulingTable, SliceLengthIsShortestAllocationRoundedToPow2) {
  const SchedulingTable table = SimpleTable();
  // Shortest allocation is 100 on both CPUs; slices round down to 64 so the
  // lookup indexes with a shift.
  EXPECT_EQ(table.cpu(0).slice_length, 64);
  EXPECT_EQ(table.cpu(0).slice_shift, 6);
  EXPECT_EQ(table.cpu(1).slice_length, 64);
}

TEST(SchedulingTable, ExactSlicesKeepShortestAllocationLength) {
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 250}, {0, 300, 400}};
  per_cpu[1] = {{2, 50, 150}};
  const SchedulingTable table = SchedulingTable::BuildWithExactSlices(400, std::move(per_cpu));
  EXPECT_EQ(table.Validate(), "");
  EXPECT_EQ(table.cpu(0).slice_length, 100);  // Shortest of 100/150/100.
  EXPECT_EQ(table.cpu(0).slice_shift, -1);    // 100 is not a power of two.
  EXPECT_EQ(table.cpu(1).slice_length, 100);
}

TEST(SchedulingTable, SliceOverlapsAtMostTwoAllocations) {
  // Construct a table with many small allocations and check the invariant
  // structurally via Build's internal TABLEAU_CHECK plus Validate().
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Allocation> allocations;
    TimeNs t = 0;
    VcpuId id = 0;
    while (t < 9000) {
      const TimeNs len = rng.UniformInt(50, 400);
      const TimeNs gap = rng.UniformInt(0, 100);
      if (t + gap + len > 10000) {
        break;
      }
      allocations.push_back(Allocation{id++ % 5, t + gap, t + gap + len});
      t += gap + len;
    }
    std::vector<std::vector<Allocation>> per_cpu = {allocations};
    const SchedulingTable table = SchedulingTable::Build(10000, std::move(per_cpu));
    EXPECT_EQ(table.Validate(), "");
  }
}

TEST(SchedulingTable, SliceLookupAgreesWithLinearEverywhere) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Allocation> allocations;
    TimeNs t = rng.UniformInt(0, 50);
    VcpuId id = 0;
    while (t < 4500) {
      const TimeNs len = rng.UniformInt(100, 600);
      allocations.push_back(Allocation{id++ % 3, t, std::min<TimeNs>(t + len, 5000)});
      t += len + rng.UniformInt(0, 300);
    }
    std::vector<std::vector<Allocation>> per_cpu = {allocations};
    const SchedulingTable table = SchedulingTable::Build(5000, std::move(per_cpu));
    for (TimeNs offset = 0; offset < 5000; ++offset) {
      const LookupResult fast = table.Lookup(0, offset);
      const LookupResult slow = table.LookupLinear(0, offset);
      ASSERT_EQ(fast.vcpu, slow.vcpu) << "offset " << offset;
      ASSERT_EQ(fast.interval_end, slow.interval_end) << "offset " << offset;
    }
  }
}

// Property: the sliced lookup agrees with the linear-scan oracle on random
// tables, probed at the hot-path edges — every slice boundary (one ns either
// side), the table wrap (offset length-1, then 0), and inside idle gaps —
// for both the power-of-two (shift) layout and the exact-slice (division)
// layout that deserialized v1 blobs use.
TEST(SchedulingTable, LookupMatchesLinearAtSliceEdgesBothLayouts) {
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const TimeNs length = rng.UniformInt(1000, 20000);
    std::vector<Allocation> allocations;
    TimeNs t = rng.UniformInt(0, 200);
    VcpuId id = 0;
    while (true) {
      const TimeNs len = rng.UniformInt(60, 900);
      if (t + len > length) {
        break;
      }
      allocations.push_back(Allocation{id++ % 6, t, t + len});
      t += len + rng.UniformInt(0, 250);
    }
    for (const bool pow2 : {true, false}) {
      std::vector<std::vector<Allocation>> per_cpu = {allocations};
      const SchedulingTable table =
          pow2 ? SchedulingTable::Build(length, std::move(per_cpu))
               : SchedulingTable::BuildWithExactSlices(length, std::move(per_cpu));
      ASSERT_EQ(table.Validate(), "");
      const TimeNs slice = table.cpu(0).slice_length;
      std::vector<TimeNs> probes = {0, length - 1};
      for (TimeNs edge = slice; edge < length; edge += slice) {
        probes.push_back(edge - 1);
        probes.push_back(edge);
        if (edge + 1 < length) {
          probes.push_back(edge + 1);
        }
      }
      for (int extra = 0; extra < 64; ++extra) {
        probes.push_back(rng.UniformInt(0, length - 1));
      }
      for (const TimeNs offset : probes) {
        const LookupResult fast = table.Lookup(0, offset);
        const LookupResult slow = table.LookupLinear(0, offset);
        ASSERT_EQ(fast.vcpu, slow.vcpu)
            << "offset " << offset << " pow2 " << pow2 << " trial " << trial;
        ASSERT_EQ(fast.interval_end, slow.interval_end)
            << "offset " << offset << " pow2 " << pow2 << " trial " << trial;
      }
    }
  }
}

TEST(SchedulingTable, LookupWrapsFromLastNanosecondToZero) {
  // offset == length-1 must report an interval ending exactly at length so
  // the dispatcher's next decision lands on offset 0 of the next cycle.
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 250}, {1, 750, 1000}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LookupResult last = table.Lookup(0, 999);
  EXPECT_EQ(last.vcpu, 1);
  EXPECT_EQ(last.interval_end, 1000);
  const LookupResult wrapped = table.Lookup(0, 0);
  EXPECT_EQ(wrapped.vcpu, 0);
  EXPECT_EQ(wrapped.interval_end, 250);
}

TEST(SchedulingTable, SingleSliceTableBothLayouts) {
  // One allocation spanning the whole table -> a single slice (the slice
  // length equals the table length), for both layouts.
  for (const bool pow2 : {true, false}) {
    std::vector<std::vector<Allocation>> per_cpu(1);
    per_cpu[0] = {{3, 0, 1024}};  // 1024 is a power of two: 1 slice either way.
    const SchedulingTable table =
        pow2 ? SchedulingTable::Build(1024, std::move(per_cpu))
             : SchedulingTable::BuildWithExactSlices(1024, std::move(per_cpu));
    ASSERT_EQ(table.Validate(), "");
    EXPECT_EQ(table.cpu(0).num_slices(), 1u);
    for (const TimeNs offset : {TimeNs{0}, TimeNs{512}, TimeNs{1023}}) {
      const LookupResult fast = table.Lookup(0, offset);
      const LookupResult slow = table.LookupLinear(0, offset);
      EXPECT_EQ(fast.vcpu, slow.vcpu);
      EXPECT_EQ(fast.interval_end, slow.interval_end);
    }
  }
  // Non-pow2 single-slice: allocation covers [0, 900) of a 900-long table.
  std::vector<std::vector<Allocation>> odd(1);
  odd[0] = {{1, 0, 900}};
  const SchedulingTable table = SchedulingTable::BuildWithExactSlices(900, std::move(odd));
  ASSERT_EQ(table.Validate(), "");
  EXPECT_EQ(table.cpu(0).num_slices(), 1u);
  EXPECT_EQ(table.cpu(0).slice_shift, -1);
  EXPECT_EQ(table.Lookup(0, 899).vcpu, 1);
  EXPECT_EQ(table.Lookup(0, 899).interval_end, 900);
}

TEST(SchedulingTable, CpusOf) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.CpusOf(0), (std::vector<int>{0}));
  EXPECT_EQ(table.CpusOf(2), (std::vector<int>{1}));
  EXPECT_TRUE(table.CpusOf(99).empty());
}

TEST(SchedulingTable, TotalService) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.TotalService(0), 200);
  EXPECT_EQ(table.TotalService(1), 150);
  EXPECT_EQ(table.TotalService(2), 100);
  EXPECT_EQ(table.TotalService(99), 0);
}

TEST(SchedulingTable, MaxBlackoutSimple) {
  const SchedulingTable table = SimpleTable();
  // vCPU 0: service [0,100) and [300,400); gap 200 inside, wrap gap 0.
  EXPECT_EQ(table.MaxBlackout(0), 200);
  // vCPU 1: [100,250): wrap gap = 150 + 100 = 250.
  EXPECT_EQ(table.MaxBlackout(1), 250);
  // Unknown vCPU: never served.
  EXPECT_EQ(table.MaxBlackout(99), 400);
}

TEST(SchedulingTable, MaxBlackoutAcrossCpus) {
  // A split vCPU served on two CPUs back to back has no blackout between.
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}};
  per_cpu[1] = {{0, 100, 200}};
  const SchedulingTable table = SchedulingTable::Build(400, std::move(per_cpu));
  EXPECT_EQ(table.MaxBlackout(0), 200);  // Only the wrap gap [200, 400+0).
}

TEST(SchedulingTable, ValidateDetectsConcurrentAllocation) {
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}};
  per_cpu[1] = {{0, 50, 150}};  // Same vCPU overlapping in time on CPU 1.
  const SchedulingTable table = SchedulingTable::Build(400, std::move(per_cpu));
  EXPECT_NE(table.Validate(), "");
}

TEST(SchedulingTable, SerializeRoundTrip) {
  const SchedulingTable table = SimpleTable();
  const std::vector<std::uint8_t> bytes = table.Serialize();
  const SchedulingTable copy = SchedulingTable::Deserialize(bytes);
  EXPECT_EQ(copy.length(), table.length());
  EXPECT_EQ(copy.num_cpus(), table.num_cpus());
  for (int c = 0; c < table.num_cpus(); ++c) {
    EXPECT_EQ(copy.cpu(c).allocations, table.cpu(c).allocations);
    EXPECT_EQ(copy.cpu(c).slice_length, table.cpu(c).slice_length);
    EXPECT_EQ(copy.cpu(c).local_vcpus, table.cpu(c).local_vcpus);
  }
  // And lookups behave identically.
  for (TimeNs offset = 0; offset < 400; offset += 7) {
    EXPECT_EQ(copy.Lookup(0, offset).vcpu, table.Lookup(0, offset).vcpu);
  }
}

TEST(SchedulingTable, SerializedSizeGrowsWithAllocations) {
  std::vector<std::vector<Allocation>> small(1);
  small[0] = {{0, 0, 1000}};
  std::vector<std::vector<Allocation>> big(1);
  for (TimeNs t = 0; t < 1000; t += 100) {
    big[0].push_back({static_cast<VcpuId>(t / 100), t, t + 100});
  }
  const auto small_size = SchedulingTable::Build(1000, std::move(small)).SerializedSizeBytes();
  const auto big_size = SchedulingTable::Build(1000, std::move(big)).SerializedSizeBytes();
  EXPECT_GT(big_size, small_size);
}

TEST(SchedulingTable, LocalVcpusDerived) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.cpu(0).local_vcpus, (std::vector<VcpuId>{0, 1}));
  EXPECT_EQ(table.cpu(1).local_vcpus, (std::vector<VcpuId>{2}));
}

TEST(SchedulingTable, LookupAtLastNanosecond) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 1000}};  // Allocation covers the whole table.
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LookupResult result = table.Lookup(0, 999);
  EXPECT_EQ(result.vcpu, 0);
  EXPECT_EQ(result.interval_end, 1000);
}

TEST(SchedulingTable, AllocationEndingExactlyAtLength) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 400}, {1, 600, 1000}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  EXPECT_EQ(table.Validate(), "");
  EXPECT_EQ(table.Lookup(0, 999).vcpu, 1);
  EXPECT_EQ(table.Lookup(0, 500).vcpu, kIdleVcpu);
  EXPECT_EQ(table.Lookup(0, 500).interval_end, 600);
}

TEST(SchedulingTable, SliceCountNeverExceedsCeil) {
  // Slice count is ceil(length / slice_length) even when the shortest
  // allocation does not divide the table length.
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 300}, {1, 500, 800}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  EXPECT_EQ(table.cpu(0).slice_length, 256);  // Pow2 floor of the shortest (300).
  EXPECT_EQ(table.cpu(0).num_slices(), 4u);   // ceil(1000/256).

  std::vector<std::vector<Allocation>> exact(1);
  exact[0] = {{0, 0, 300}, {1, 500, 800}};
  const SchedulingTable old_layout = SchedulingTable::BuildWithExactSlices(1000, std::move(exact));
  EXPECT_EQ(old_layout.cpu(0).slice_length, 300);
  EXPECT_EQ(old_layout.cpu(0).num_slices(), 4u);  // ceil(1000/300).
}

TEST(SchedulingTableDeathTest, BuildRejectsOverlap) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 500}, {1, 400, 800}};
  EXPECT_DEATH(SchedulingTable::Build(1000, std::move(per_cpu)), "bad allocation");
}

TEST(SchedulingTableDeathTest, BuildRejectsOutOfBounds) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 500, 1200}};
  EXPECT_DEATH(SchedulingTable::Build(1000, std::move(per_cpu)), "bad allocation");
}

TEST(SchedulingTableDeathTest, DeserializeRejectsCorruptMagic) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 500}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  auto bytes = table.Serialize();
  bytes[0] ^= 0xff;
  EXPECT_DEATH(SchedulingTable::Deserialize(bytes), "");
}

TEST(SchedulingTableDeathTest, DeserializeRejectsTruncation) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 500}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  auto bytes = table.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_DEATH(SchedulingTable::Deserialize(bytes), "");
}

// ---------- Coalescing ----------

TEST(Coalesce, MergesContiguousSameVcpu) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {0, 100, 200}, {1, 200, 300}};
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, nullptr);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0], (Allocation{0, 0, 200}));
}

TEST(Coalesce, AbsorbsSubThresholdIntoPredecessor) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 120}, {2, 120, 220}};  // 20 < threshold 50.
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, &donated);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0], (Allocation{0, 0, 120}));  // Predecessor absorbed the sliver.
  EXPECT_EQ(result[0][1], (Allocation{2, 120, 220}));
  ASSERT_EQ(donated.size(), 1u);
  EXPECT_EQ(donated[0].first, 1);
  EXPECT_EQ(donated[0].second, 20);
}

TEST(Coalesce, IsolatedSliverBecomesIdle) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {1, 150, 170}};  // Isolated 20ns sliver.
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, &donated);
  ASSERT_EQ(result[0].size(), 1u);
  EXPECT_EQ(donated.size(), 1u);
}

TEST(Coalesce, KeepsEverythingAboveThreshold) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 200}, {2, 250, 350}};
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, &donated);
  EXPECT_EQ(result[0].size(), 3u);
  EXPECT_TRUE(donated.empty());
}

TEST(Coalesce, PreservesTotalAllocatedTimeWhenAdjacent) {
  // When all slivers are adjacent to a neighbour, total allocated time is
  // conserved (only ownership changes).
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Allocation> allocations;
    TimeNs t = 0;
    VcpuId id = 0;
    while (t < 9000) {
      const TimeNs len = rng.UniformInt(10, 300);
      allocations.push_back(Allocation{id++ % 4, t, t + len});
      t += len;
    }
    TimeNs total_before = 0;
    for (const Allocation& alloc : allocations) {
      total_before += alloc.Length();
    }
    std::vector<std::vector<Allocation>> per_cpu = {allocations};
    const auto result = CoalesceAllocations(std::move(per_cpu), 50, nullptr);
    TimeNs total_after = 0;
    for (const Allocation& alloc : result[0]) {
      total_after += alloc.Length();
    }
    // The first allocation may be an isolated sliver (no predecessor); all
    // other slivers are absorbed. Tolerate one dropped leading sliver.
    EXPECT_GE(total_after, total_before - 50);
  }
}

}  // namespace
}  // namespace tableau
