#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/rt/edf_sim.h"
#include "src/rt/hyperperiod.h"
#include "src/table/scheduling_table.h"

namespace tableau {
namespace {

SchedulingTable SimpleTable() {
  // CPU 0: [0,100) -> 0, [100,250) -> 1, idle [250,300), [300,400) -> 0.
  // CPU 1: [50,150) -> 2.
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 250}, {0, 300, 400}};
  per_cpu[1] = {{2, 50, 150}};
  return SchedulingTable::Build(400, std::move(per_cpu));
}

TEST(SchedulingTable, BuildSortsAndValidates) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{1, 100, 250}, {0, 0, 100}};  // Unsorted input.
  const SchedulingTable table = SchedulingTable::Build(400, std::move(per_cpu));
  EXPECT_EQ(table.Validate(), "");
  EXPECT_EQ(table.cpu(0).allocations[0].vcpu, 0);
  EXPECT_EQ(table.cpu(0).allocations[1].vcpu, 1);
}

TEST(SchedulingTable, LookupInsideAllocation) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(0, 50);
  EXPECT_EQ(result.vcpu, 0);
  EXPECT_EQ(result.interval_end, 100);
}

TEST(SchedulingTable, LookupAtAllocationBoundary) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(0, 100);
  EXPECT_EQ(result.vcpu, 1);
  EXPECT_EQ(result.interval_end, 250);
}

TEST(SchedulingTable, LookupInIdleGap) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(0, 260);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 300);
}

TEST(SchedulingTable, LookupIdleBeforeFirstAllocation) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(1, 10);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 50);
}

TEST(SchedulingTable, LookupIdleTail) {
  const SchedulingTable table = SimpleTable();
  const LookupResult result = table.Lookup(1, 200);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 400);
}

TEST(SchedulingTable, EmptyCpuIsAllIdle) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LookupResult result = table.Lookup(0, 123);
  EXPECT_EQ(result.vcpu, kIdleVcpu);
  EXPECT_EQ(result.interval_end, 1000);
}

TEST(SchedulingTable, SliceLengthIsShortestAllocation) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.cpu(0).slice_length, 100);  // Shortest of 100/150/100.
  EXPECT_EQ(table.cpu(1).slice_length, 100);
}

TEST(SchedulingTable, SliceOverlapsAtMostTwoAllocations) {
  // Construct a table with many small allocations and check the invariant
  // structurally via Build's internal TABLEAU_CHECK plus Validate().
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Allocation> allocations;
    TimeNs t = 0;
    VcpuId id = 0;
    while (t < 9000) {
      const TimeNs len = rng.UniformInt(50, 400);
      const TimeNs gap = rng.UniformInt(0, 100);
      if (t + gap + len > 10000) {
        break;
      }
      allocations.push_back(Allocation{id++ % 5, t + gap, t + gap + len});
      t += gap + len;
    }
    std::vector<std::vector<Allocation>> per_cpu = {allocations};
    const SchedulingTable table = SchedulingTable::Build(10000, std::move(per_cpu));
    EXPECT_EQ(table.Validate(), "");
  }
}

TEST(SchedulingTable, SliceLookupAgreesWithLinearEverywhere) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Allocation> allocations;
    TimeNs t = rng.UniformInt(0, 50);
    VcpuId id = 0;
    while (t < 4500) {
      const TimeNs len = rng.UniformInt(100, 600);
      allocations.push_back(Allocation{id++ % 3, t, std::min<TimeNs>(t + len, 5000)});
      t += len + rng.UniformInt(0, 300);
    }
    std::vector<std::vector<Allocation>> per_cpu = {allocations};
    const SchedulingTable table = SchedulingTable::Build(5000, std::move(per_cpu));
    for (TimeNs offset = 0; offset < 5000; ++offset) {
      const LookupResult fast = table.Lookup(0, offset);
      const LookupResult slow = table.LookupLinear(0, offset);
      ASSERT_EQ(fast.vcpu, slow.vcpu) << "offset " << offset;
      ASSERT_EQ(fast.interval_end, slow.interval_end) << "offset " << offset;
    }
  }
}

TEST(SchedulingTable, CpusOf) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.CpusOf(0), (std::vector<int>{0}));
  EXPECT_EQ(table.CpusOf(2), (std::vector<int>{1}));
  EXPECT_TRUE(table.CpusOf(99).empty());
}

TEST(SchedulingTable, TotalService) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.TotalService(0), 200);
  EXPECT_EQ(table.TotalService(1), 150);
  EXPECT_EQ(table.TotalService(2), 100);
  EXPECT_EQ(table.TotalService(99), 0);
}

TEST(SchedulingTable, MaxBlackoutSimple) {
  const SchedulingTable table = SimpleTable();
  // vCPU 0: service [0,100) and [300,400); gap 200 inside, wrap gap 0.
  EXPECT_EQ(table.MaxBlackout(0), 200);
  // vCPU 1: [100,250): wrap gap = 150 + 100 = 250.
  EXPECT_EQ(table.MaxBlackout(1), 250);
  // Unknown vCPU: never served.
  EXPECT_EQ(table.MaxBlackout(99), 400);
}

TEST(SchedulingTable, MaxBlackoutAcrossCpus) {
  // A split vCPU served on two CPUs back to back has no blackout between.
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}};
  per_cpu[1] = {{0, 100, 200}};
  const SchedulingTable table = SchedulingTable::Build(400, std::move(per_cpu));
  EXPECT_EQ(table.MaxBlackout(0), 200);  // Only the wrap gap [200, 400+0).
}

TEST(SchedulingTable, ValidateDetectsConcurrentAllocation) {
  std::vector<std::vector<Allocation>> per_cpu(2);
  per_cpu[0] = {{0, 0, 100}};
  per_cpu[1] = {{0, 50, 150}};  // Same vCPU overlapping in time on CPU 1.
  const SchedulingTable table = SchedulingTable::Build(400, std::move(per_cpu));
  EXPECT_NE(table.Validate(), "");
}

TEST(SchedulingTable, SerializeRoundTrip) {
  const SchedulingTable table = SimpleTable();
  const std::vector<std::uint8_t> bytes = table.Serialize();
  const SchedulingTable copy = SchedulingTable::Deserialize(bytes);
  EXPECT_EQ(copy.length(), table.length());
  EXPECT_EQ(copy.num_cpus(), table.num_cpus());
  for (int c = 0; c < table.num_cpus(); ++c) {
    EXPECT_EQ(copy.cpu(c).allocations, table.cpu(c).allocations);
    EXPECT_EQ(copy.cpu(c).slice_length, table.cpu(c).slice_length);
    EXPECT_EQ(copy.cpu(c).local_vcpus, table.cpu(c).local_vcpus);
  }
  // And lookups behave identically.
  for (TimeNs offset = 0; offset < 400; offset += 7) {
    EXPECT_EQ(copy.Lookup(0, offset).vcpu, table.Lookup(0, offset).vcpu);
  }
}

TEST(SchedulingTable, SerializedSizeGrowsWithAllocations) {
  std::vector<std::vector<Allocation>> small(1);
  small[0] = {{0, 0, 1000}};
  std::vector<std::vector<Allocation>> big(1);
  for (TimeNs t = 0; t < 1000; t += 100) {
    big[0].push_back({static_cast<VcpuId>(t / 100), t, t + 100});
  }
  const auto small_size = SchedulingTable::Build(1000, std::move(small)).SerializedSizeBytes();
  const auto big_size = SchedulingTable::Build(1000, std::move(big)).SerializedSizeBytes();
  EXPECT_GT(big_size, small_size);
}

TEST(SchedulingTable, LocalVcpusDerived) {
  const SchedulingTable table = SimpleTable();
  EXPECT_EQ(table.cpu(0).local_vcpus, (std::vector<VcpuId>{0, 1}));
  EXPECT_EQ(table.cpu(1).local_vcpus, (std::vector<VcpuId>{2}));
}

TEST(SchedulingTable, LookupAtLastNanosecond) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 1000}};  // Allocation covers the whole table.
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  const LookupResult result = table.Lookup(0, 999);
  EXPECT_EQ(result.vcpu, 0);
  EXPECT_EQ(result.interval_end, 1000);
}

TEST(SchedulingTable, AllocationEndingExactlyAtLength) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 400}, {1, 600, 1000}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  EXPECT_EQ(table.Validate(), "");
  EXPECT_EQ(table.Lookup(0, 999).vcpu, 1);
  EXPECT_EQ(table.Lookup(0, 500).vcpu, kIdleVcpu);
  EXPECT_EQ(table.Lookup(0, 500).interval_end, 600);
}

TEST(SchedulingTable, SliceCountNeverExceedsCeil) {
  // Slice count is ceil(length / slice_length) even when the shortest
  // allocation does not divide the table length.
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 300}, {1, 500, 800}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  EXPECT_EQ(table.cpu(0).slice_length, 300);
  EXPECT_EQ(table.cpu(0).slices.size(), 4u);  // ceil(1000/300).
}

TEST(SchedulingTableDeathTest, BuildRejectsOverlap) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 500}, {1, 400, 800}};
  EXPECT_DEATH(SchedulingTable::Build(1000, std::move(per_cpu)), "bad allocation");
}

TEST(SchedulingTableDeathTest, BuildRejectsOutOfBounds) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 500, 1200}};
  EXPECT_DEATH(SchedulingTable::Build(1000, std::move(per_cpu)), "bad allocation");
}

TEST(SchedulingTableDeathTest, DeserializeRejectsCorruptMagic) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 500}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  auto bytes = table.Serialize();
  bytes[0] ^= 0xff;
  EXPECT_DEATH(SchedulingTable::Deserialize(bytes), "");
}

TEST(SchedulingTableDeathTest, DeserializeRejectsTruncation) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 500}};
  const SchedulingTable table = SchedulingTable::Build(1000, std::move(per_cpu));
  auto bytes = table.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_DEATH(SchedulingTable::Deserialize(bytes), "");
}

// ---------- Coalescing ----------

TEST(Coalesce, MergesContiguousSameVcpu) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {0, 100, 200}, {1, 200, 300}};
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, nullptr);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0], (Allocation{0, 0, 200}));
}

TEST(Coalesce, AbsorbsSubThresholdIntoPredecessor) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 120}, {2, 120, 220}};  // 20 < threshold 50.
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, &donated);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0], (Allocation{0, 0, 120}));  // Predecessor absorbed the sliver.
  EXPECT_EQ(result[0][1], (Allocation{2, 120, 220}));
  ASSERT_EQ(donated.size(), 1u);
  EXPECT_EQ(donated[0].first, 1);
  EXPECT_EQ(donated[0].second, 20);
}

TEST(Coalesce, IsolatedSliverBecomesIdle) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {1, 150, 170}};  // Isolated 20ns sliver.
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, &donated);
  ASSERT_EQ(result[0].size(), 1u);
  EXPECT_EQ(donated.size(), 1u);
}

TEST(Coalesce, KeepsEverythingAboveThreshold) {
  std::vector<std::vector<Allocation>> per_cpu(1);
  per_cpu[0] = {{0, 0, 100}, {1, 100, 200}, {2, 250, 350}};
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  const auto result = CoalesceAllocations(std::move(per_cpu), 50, &donated);
  EXPECT_EQ(result[0].size(), 3u);
  EXPECT_TRUE(donated.empty());
}

TEST(Coalesce, PreservesTotalAllocatedTimeWhenAdjacent) {
  // When all slivers are adjacent to a neighbour, total allocated time is
  // conserved (only ownership changes).
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Allocation> allocations;
    TimeNs t = 0;
    VcpuId id = 0;
    while (t < 9000) {
      const TimeNs len = rng.UniformInt(10, 300);
      allocations.push_back(Allocation{id++ % 4, t, t + len});
      t += len;
    }
    TimeNs total_before = 0;
    for (const Allocation& alloc : allocations) {
      total_before += alloc.Length();
    }
    std::vector<std::vector<Allocation>> per_cpu = {allocations};
    const auto result = CoalesceAllocations(std::move(per_cpu), 50, nullptr);
    TimeNs total_after = 0;
    for (const Allocation& alloc : result[0]) {
      total_after += alloc.Length();
    }
    // The first allocation may be an isolated sliver (no predecessor); all
    // other slivers are absorbed. Tolerate one dropped leading sliver.
    EXPECT_GE(total_after, total_before - 50);
  }
}

}  // namespace
}  // namespace tableau
