// Tests for the scheduler factory registry: name round-trips, per-kind
// construction with the harness's cap invariants, and the builder override
// hook.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/hypervisor/machine.h"
#include "src/schedulers/factory.h"

namespace tableau {
namespace {

TEST(SchedKind, NameRoundTripsEveryKind) {
  for (const SchedKind kind : kAllSchedKinds) {
    const auto parsed = SchedKindFromName(SchedKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << SchedKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(SchedKind, FromNameIsCaseInsensitive) {
  EXPECT_EQ(SchedKindFromName("tableau"), SchedKind::kTableau);
  EXPECT_EQ(SchedKindFromName("TABLEAU"), SchedKind::kTableau);
  EXPECT_EQ(SchedKindFromName("rtds"), SchedKind::kRtds);
  EXPECT_EQ(SchedKindFromName("credit2"), SchedKind::kCredit2);
  EXPECT_EQ(SchedKindFromName("cfs"), SchedKind::kCfs);
}

TEST(SchedKind, FromNameRejectsUnknown) {
  EXPECT_FALSE(SchedKindFromName("").has_value());
  EXPECT_FALSE(SchedKindFromName("credit3").has_value());
  EXPECT_FALSE(SchedKindFromName("tableau ").has_value());
}

TEST(Factory, MakesEveryKindUnderItsValidCapMode) {
  for (const SchedKind kind : kAllSchedKinds) {
    SchedulerSpec spec;
    spec.kind = kind;
    // Credit2 refuses caps, RTDS requires them (Sec. 7.2); everything else
    // accepts either — exercise each kind in a valid mode.
    spec.capped = kind == SchedKind::kRtds;
    const MadeScheduler made = MakeScheduler(spec);
    ASSERT_NE(made.scheduler, nullptr) << SchedKindName(kind);
    if (kind == SchedKind::kTableau) {
      EXPECT_NE(made.tableau, nullptr);
      EXPECT_EQ(made.tableau, made.scheduler.get());
    } else {
      EXPECT_EQ(made.tableau, nullptr);
    }
  }
}

TEST(Factory, TableauSpecKnobsReachTheDispatcher) {
  SchedulerSpec spec;
  spec.kind = SchedKind::kTableau;
  spec.capped = true;  // Capped: no second-level (work_conserving off).
  spec.switch_slip_tolerance = 3 * kMillisecond;
  MadeScheduler made = MakeScheduler(spec);
  ASSERT_NE(made.tableau, nullptr);
  // The scheduler builds its dispatcher at machine attach.
  TableauScheduler* tableau = made.tableau;
  MachineConfig config;
  config.num_cpus = 2;
  config.cores_per_socket = 2;
  const Machine machine(config, std::move(made.scheduler));
  EXPECT_FALSE(tableau->dispatcher().config().work_conserving);
  EXPECT_EQ(tableau->dispatcher().config().switch_slip_tolerance, 3 * kMillisecond);
}

TEST(Factory, RegisterSchedulerOverridesAndRestores) {
  int calls = 0;
  RegisterScheduler(SchedKind::kCredit, [&calls](const SchedulerSpec& spec) {
    ++calls;
    SchedulerSpec tableau_spec = spec;
    tableau_spec.kind = SchedKind::kTableau;
    return MakeScheduler(tableau_spec);  // Substitute a different scheduler.
  });
  const MadeScheduler made = MakeScheduler(SchedulerSpec{.kind = SchedKind::kCredit});
  EXPECT_EQ(calls, 1);
  EXPECT_NE(made.tableau, nullptr);  // The override built a Tableau instead.

  RegisterScheduler(SchedKind::kCredit, nullptr);  // Restore the default.
  const MadeScheduler restored =
      MakeScheduler(SchedulerSpec{.kind = SchedKind::kCredit});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(restored.tableau, nullptr);
}

}  // namespace
}  // namespace tableau
