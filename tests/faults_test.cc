// Tests for the deterministic fault-injection subsystem: injector hook
// semantics (timers delayed never advanced, IPIs late never lost, bounded
// guest misbehavior), seed-driven determinism down to byte-identical machine
// traces, the faults-off identity guarantee, and the graceful-degradation
// policies (planner latency relaxation, replan keep-previous + exponential
// backoff).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/planner.h"
#include "src/core/replan.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/harness/scenario.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using faults::GuestFault;
using faults::IpiFault;
using faults::OverheadSpike;
using faults::TimerFault;

// --- Injector hook semantics -----------------------------------------------

TEST(FaultInjector, EmptyPlanIsIdentity) {
  FaultInjector injector{FaultPlan{}};
  EXPECT_EQ(injector.ScaleSchedOpCost(100, 250), 250);
  EXPECT_EQ(injector.ScaleContextSwitchCost(100, 900), 900);
  EXPECT_EQ(injector.PerturbTimerArm(100, 5000), 5000);
  EXPECT_EQ(injector.PerturbIpiDelay(100, 700), 700);
  EXPECT_EQ(injector.NextBurstOverrun(100), 0);
  EXPECT_EQ(injector.NextWakeupStormCount(100), 0);
  EXPECT_EQ(injector.NextPlannerOutcome(), FaultInjector::PlannerOutcome::kProceed);
}

TEST(FaultInjector, OverheadSpikeScalesOnlyInsideWindow) {
  FaultPlan plan;
  OverheadSpike spike;
  spike.window = {1000, 2000};
  spike.sched_op_multiplier = 3.0;
  spike.context_switch_multiplier = 2.0;
  plan.overhead_spikes.push_back(spike);
  FaultInjector injector(plan);
  EXPECT_EQ(injector.ScaleSchedOpCost(500, 100), 100);    // Before window.
  EXPECT_EQ(injector.ScaleSchedOpCost(1500, 100), 300);   // Inside.
  EXPECT_EQ(injector.ScaleContextSwitchCost(1500, 100), 200);
  EXPECT_EQ(injector.ScaleSchedOpCost(2000, 100), 100);   // Half-open end.
  EXPECT_EQ(injector.ScaleSchedOpCost(1500, 0), 0);       // Zero cost stays zero.
}

TEST(FaultInjector, TimerPerturbationDelayedNeverAdvanced) {
  FaultPlan plan;
  TimerFault fault;
  fault.max_jitter = 200 * kMicrosecond;
  fault.coalesce_quantum = 50 * kMicrosecond;
  plan.timer_faults.push_back(fault);
  FaultInjector injector(plan);
  for (int i = 0; i < 1000; ++i) {
    const TimeNs fire_at = 1000 + i * 777;
    const TimeNs perturbed = injector.PerturbTimerArm(0, fire_at);
    EXPECT_GE(perturbed, fire_at);
    EXPECT_LE(perturbed, fire_at + fault.max_jitter + fault.coalesce_quantum);
    // Coalescing rounds up to the quantum grid.
    EXPECT_EQ(perturbed % fault.coalesce_quantum, 0);
  }
  // kTimeNever (disarmed) passes through untouched.
  EXPECT_EQ(injector.PerturbTimerArm(0, kTimeNever), kTimeNever);
}

TEST(FaultInjector, IpiDelayLateNeverLostAndBounded) {
  FaultPlan plan;
  IpiFault fault;
  fault.drop_probability = 0.9;
  fault.max_retries = 3;
  fault.retry_interval = 50 * kMicrosecond;
  fault.max_extra_delay = 100 * kMicrosecond;
  plan.ipi_faults.push_back(fault);
  FaultInjector injector(plan);
  const TimeNs base = 2 * kMicrosecond;
  const TimeNs worst =
      base + fault.max_retries * fault.retry_interval + fault.max_extra_delay;
  for (int i = 0; i < 1000; ++i) {
    const TimeNs delay = injector.PerturbIpiDelay(0, base);
    EXPECT_GE(delay, base);   // Never early, never dropped outright.
    EXPECT_LE(delay, worst);  // Bounded retry: at most max_retries re-sends.
  }
}

TEST(FaultInjector, GuestFaultsBounded) {
  FaultPlan plan;
  GuestFault fault;
  fault.overrun_probability = 0.5;
  fault.max_overrun = 500 * kMicrosecond;
  fault.storm_probability = 0.5;
  fault.max_storm_wakeups = 4;
  plan.guest_faults.push_back(fault);
  FaultInjector injector(plan);
  int overruns = 0;
  int storms = 0;
  for (int i = 0; i < 1000; ++i) {
    const TimeNs overrun = injector.NextBurstOverrun(0);
    EXPECT_GE(overrun, 0);
    EXPECT_LE(overrun, fault.max_overrun);
    overruns += overrun > 0 ? 1 : 0;
    const int storm = injector.NextWakeupStormCount(0);
    EXPECT_GE(storm, 0);
    EXPECT_LE(storm, fault.max_storm_wakeups);
    storms += storm > 0 ? 1 : 0;
  }
  // p = 0.5 over 1000 draws: both branches must have fired.
  EXPECT_GT(overruns, 0);
  EXPECT_LT(overruns, 1000);
  EXPECT_GT(storms, 0);
  EXPECT_LT(storms, 1000);
}

TEST(FaultInjector, SameSeedSameDrawSequence) {
  const FaultPlan plan = faults::ChaosPlan(/*seed=*/123, /*intensity=*/1.0);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 500; ++i) {
    const TimeNs t = i * 1000;
    EXPECT_EQ(a.PerturbTimerArm(t, t + 500), b.PerturbTimerArm(t, t + 500));
    EXPECT_EQ(a.PerturbIpiDelay(t, 100), b.PerturbIpiDelay(t, 100));
    EXPECT_EQ(a.NextBurstOverrun(t), b.NextBurstOverrun(t));
    EXPECT_EQ(a.NextWakeupStormCount(t), b.NextWakeupStormCount(t));
  }
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Consuming one category's stream must not shift another's draws: the
  // timer stream is salted separately from the IPI stream.
  const FaultPlan plan = faults::ChaosPlan(/*seed=*/9, /*intensity=*/1.0);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 100; ++i) {
    a.PerturbTimerArm(0, 1000);  // Burn timer draws on `a` only.
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.PerturbIpiDelay(0, 100), b.PerturbIpiDelay(0, 100));
  }
}

TEST(FaultInjector, PlannerOutcomeSplitsOneRoll) {
  FaultPlan always_fail;
  always_fail.planner.failure_probability = 1.0;
  FaultInjector fail_injector(always_fail);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fail_injector.NextPlannerOutcome(), FaultInjector::PlannerOutcome::kFail);
  }
  FaultPlan always_timeout;
  always_timeout.planner.timeout_probability = 1.0;
  FaultInjector timeout_injector(always_timeout);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(timeout_injector.NextPlannerOutcome(),
              FaultInjector::PlannerOutcome::kTimeout);
  }
}

// --- Machine-level determinism ---------------------------------------------

std::uint64_t RunAndFingerprint(const ScenarioConfig& config, TimeNs duration) {
  Scenario scenario = BuildScenario(config);
  scenario.machine->trace().set_enabled(true);
  CpuHogWorkload hog(scenario.machine, scenario.vantage);
  hog.Start(0);
  std::vector<std::unique_ptr<StressIoWorkload>> io;
  for (std::size_t i = 1; i < scenario.vcpus.size(); ++i) {
    StressIoWorkload::Config io_config;
    io_config.seed = i + 1;
    io.push_back(std::make_unique<StressIoWorkload>(scenario.machine,
                                                    scenario.vcpus[i], io_config));
    io.back()->Start(0);
  }
  scenario.machine->Start();
  scenario.machine->RunFor(duration);

  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  return hash;
}

ScenarioConfig SmallConfig() {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.guest_cpus = 4;
  config.cores_per_socket = 4;
  config.capped = true;
  return config;
}

TEST(FaultDeterminism, SameSeedSameTrace) {
  ScenarioConfig config = SmallConfig();
  config.fault_plan = faults::ChaosPlan(/*seed=*/42, /*intensity=*/1.0);
  const std::uint64_t first = RunAndFingerprint(config, 100 * kMillisecond);
  const std::uint64_t second = RunAndFingerprint(config, 100 * kMillisecond);
  EXPECT_EQ(first, second);
}

TEST(FaultDeterminism, DifferentSeedDifferentTrace) {
  ScenarioConfig config = SmallConfig();
  config.fault_plan = faults::ChaosPlan(/*seed=*/42, /*intensity=*/1.0);
  const std::uint64_t first = RunAndFingerprint(config, 100 * kMillisecond);
  config.fault_plan = faults::ChaosPlan(/*seed=*/43, /*intensity=*/1.0);
  const std::uint64_t second = RunAndFingerprint(config, 100 * kMillisecond);
  EXPECT_NE(first, second);
}

TEST(FaultDeterminism, FaultsOffMatchesNoInjector) {
  // A non-empty plan whose every vector is an identity perturbation builds a
  // real injector, wires every hook — and must still reproduce the
  // no-injector trace byte for byte (the acceptance gate for the fault-free
  // goldens).
  ScenarioConfig baseline = SmallConfig();
  const std::uint64_t no_injector = RunAndFingerprint(baseline, 100 * kMillisecond);

  ScenarioConfig identity = SmallConfig();
  identity.fault_plan.overhead_spikes.push_back(OverheadSpike{});  // 1.0x.
  identity.fault_plan.timer_faults.push_back(TimerFault{});        // No jitter.
  identity.fault_plan.ipi_faults.push_back(IpiFault{});            // No drops.
  identity.fault_plan.guest_faults.push_back(GuestFault{});        // No misbehavior.
  ASSERT_FALSE(identity.fault_plan.empty());
  const std::uint64_t with_injector = RunAndFingerprint(identity, 100 * kMillisecond);
  EXPECT_EQ(no_injector, with_injector);
}

TEST(FaultDeterminism, ChaosIntensityZeroIsEmptyPlan) {
  EXPECT_TRUE(faults::ChaosPlan(7, 0.0).empty());
  EXPECT_FALSE(faults::ChaosPlan(7, 0.5).empty());
}

// --- Planner injection & degradation ---------------------------------------

std::vector<VcpuRequest> SmallRequests() {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 4; ++i) {
    VcpuRequest request;
    request.vcpu = i;
    request.utilization = 0.25;
    request.latency_goal = 20 * kMillisecond;
    requests.push_back(request);
  }
  return requests;
}

TEST(PlannerFaults, InjectedFailureSurfacesAsKInjected) {
  FaultPlan plan;
  plan.planner.failure_probability = 1.0;
  FaultInjector injector(plan);
  PlannerConfig config;
  config.num_cpus = 4;
  config.fault_injector = &injector;
  const Planner planner(config);
  const PlanResult result = planner.Solve(PlanRequest::Full(SmallRequests()));
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failure, PlanFailure::kInjected);
}

TEST(PlannerFaults, DegradationRetriesAdmissionFailuresOnly) {
  obs::MetricsRegistry metrics;
  PlannerConfig config;
  config.num_cpus = 1;
  config.metrics = &metrics;
  config.max_latency_degradations = 2;
  const Planner planner(config);

  // Over-utilized on one core: admission rejects, the degradation loop
  // relaxes goals twice (counted), and the failure still surfaces.
  std::vector<VcpuRequest> over;
  for (int i = 0; i < 3; ++i) {
    VcpuRequest request;
    request.vcpu = i;
    request.utilization = 0.5;
    request.latency_goal = 20 * kMillisecond;
    over.push_back(request);
  }
  const PlanResult rejected = planner.Solve(PlanRequest::Full(over));
  EXPECT_FALSE(rejected.success);
  EXPECT_EQ(rejected.failure, PlanFailure::kAdmission);
  EXPECT_EQ(metrics.GetCounter("planner.latency_degradations")->value(), 2);

  // Invalid requests are not degradable: no further retries are counted.
  std::vector<VcpuRequest> invalid = over;
  invalid[0].latency_goal = -1;
  const PlanResult bad = planner.Solve(PlanRequest::Full(invalid));
  EXPECT_FALSE(bad.success);
  EXPECT_EQ(bad.failure, PlanFailure::kInvalidRequest);
  EXPECT_EQ(metrics.GetCounter("planner.latency_degradations")->value(), 2);
}

TEST(PlannerFaults, SolveSucceedsWithoutDegradationWhenFeasible) {
  PlannerConfig config;
  config.num_cpus = 4;
  config.max_latency_degradations = 3;
  const Planner planner(config);
  const PlanResult result = planner.Solve(PlanRequest::Full(SmallRequests()));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.failure, PlanFailure::kNone);
  EXPECT_EQ(result.degradation_steps, 0);
}

// --- Replan controller ------------------------------------------------------

TEST(ReplanController, KeepsPreviousAndBacksOffExponentially) {
  FaultPlan plan;
  plan.planner.failure_probability = 1.0;
  FaultInjector injector(plan);
  PlannerConfig planner_config;
  planner_config.num_cpus = 4;
  planner_config.fault_injector = &injector;
  const Planner planner(planner_config);

  ReplanController::Config config;
  config.initial_backoff = kMillisecond;
  config.backoff_multiplier = 2.0;
  config.max_backoff = 4 * kMillisecond;
  ReplanController controller(&planner, config);

  const PlanRequest request = PlanRequest::Full(SmallRequests());
  // First failure: retry after 1 ms.
  auto outcome = controller.TryReplan(request, /*now=*/0);
  EXPECT_FALSE(outcome.installed);
  EXPECT_TRUE(outcome.kept_previous);
  EXPECT_EQ(outcome.retry_at, kMillisecond);
  EXPECT_EQ(controller.consecutive_failures(), 1);

  // Inside the backoff window: the planner is not consulted at all.
  outcome = controller.TryReplan(request, /*now=*/kMillisecond / 2);
  EXPECT_TRUE(outcome.kept_previous);
  EXPECT_EQ(outcome.retry_at, kMillisecond);
  EXPECT_EQ(controller.consecutive_failures(), 1);

  // Second and third failures: 2 ms, then 4 ms (the cap).
  outcome = controller.TryReplan(request, /*now=*/kMillisecond);
  EXPECT_EQ(outcome.retry_at, kMillisecond + 2 * kMillisecond);
  outcome = controller.TryReplan(request, /*now=*/3 * kMillisecond);
  EXPECT_EQ(outcome.retry_at, 3 * kMillisecond + 4 * kMillisecond);
  // Capped: the fourth failure waits 4 ms again, not 8.
  outcome = controller.TryReplan(request, /*now=*/7 * kMillisecond);
  EXPECT_EQ(outcome.retry_at, 7 * kMillisecond + 4 * kMillisecond);
  EXPECT_EQ(controller.consecutive_failures(), 4);
}

TEST(ReplanController, SuccessResetsBackoff) {
  PlannerConfig planner_config;
  planner_config.num_cpus = 4;
  const Planner planner(planner_config);
  ReplanController controller(&planner, ReplanController::Config{});
  const PlanRequest request = PlanRequest::Full(SmallRequests());
  const auto outcome = controller.TryReplan(request, /*now=*/0);
  EXPECT_TRUE(outcome.installed);
  EXPECT_TRUE(outcome.plan.success);
  EXPECT_FALSE(outcome.kept_previous);
  EXPECT_EQ(controller.consecutive_failures(), 0);
}

}  // namespace
}  // namespace tableau
