#include <gtest/gtest.h>

#include <memory>

#include "src/core/planner.h"
#include "src/hypervisor/machine.h"
#include "src/schedulers/credit.h"
#include "src/schedulers/credit2.h"
#include "src/schedulers/rtds.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/stress.h"

namespace tableau {
namespace {

struct TestMachine {
  Vcpu* AddCpuHog(const VcpuParams& params) {
    Vcpu* vcpu = machine->AddVcpu(params);
    hogs.push_back(std::make_unique<CpuHogWorkload>(machine.get(), vcpu));
    hogs.back()->Start(0);
    return vcpu;
  }

  std::unique_ptr<Machine> machine;
  VcpuScheduler* scheduler_raw = nullptr;
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
};

template <typename Scheduler, typename... Args>
TestMachine MakeMachine(int cpus, int per_socket, Args&&... args) {
  TestMachine tm;
  MachineConfig config;
  config.num_cpus = cpus;
  config.cores_per_socket = per_socket;
  auto owned = std::make_unique<Scheduler>(std::forward<Args>(args)...);
  tm.scheduler_raw = owned.get();
  tm.machine = std::make_unique<Machine>(config, std::move(owned));
  return tm;
}

double Share(const Vcpu* vcpu, TimeNs duration) {
  return static_cast<double>(vcpu->total_service()) / static_cast<double>(duration);
}

// ---------- Credit ----------

TEST(Credit, UncappedSingleHogGetsFullCpu) {
  TestMachine tm = MakeMachine<CreditScheduler>(
      1, 1, CreditScheduler::Options{});
  Vcpu* vcpu = tm.AddCpuHog(VcpuParams{});
  tm.machine->Start();
  tm.machine->RunFor(kSecond);
  EXPECT_GT(Share(vcpu, kSecond), 0.98);
}

TEST(Credit, EqualWeightsShareEqually) {
  TestMachine tm = MakeMachine<CreditScheduler>(
      1, 1, CreditScheduler::Options{});
  Vcpu* a = tm.AddCpuHog(VcpuParams{});
  Vcpu* b = tm.AddCpuHog(VcpuParams{});
  tm.machine->Start();
  tm.machine->RunFor(2 * kSecond);
  EXPECT_NEAR(Share(a, 2 * kSecond), Share(b, 2 * kSecond), 0.05);
}

TEST(Credit, WeightsRespectedProportionally) {
  TestMachine tm = MakeMachine<CreditScheduler>(
      1, 1, CreditScheduler::Options{});
  VcpuParams heavy;
  heavy.weight = 768;
  VcpuParams light;
  light.weight = 256;
  Vcpu* a = tm.AddCpuHog(heavy);
  Vcpu* b = tm.AddCpuHog(light);
  tm.machine->Start();
  tm.machine->RunFor(4 * kSecond);
  // 3:1 weights -> roughly 75% / 25%.
  EXPECT_NEAR(Share(a, 4 * kSecond), 0.75, 0.08);
  EXPECT_NEAR(Share(b, 4 * kSecond), 0.25, 0.08);
}

TEST(Credit, CapEnforced) {
  TestMachine tm = MakeMachine<CreditScheduler>(
      1, 1, CreditScheduler::Options{});
  VcpuParams capped;
  capped.cap = 0.25;
  Vcpu* vcpu = tm.AddCpuHog(capped);
  tm.machine->Start();
  tm.machine->RunFor(3 * kSecond);
  // Parked once per accounting period after burning the cap.
  EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.03);
}

TEST(Credit, CappedVcpuParkedUntilAccounting) {
  // A capped CPU hog's service gaps reflect the accounting period: it burns
  // its 25% (7.5 ms of a 30 ms period) and waits out the rest.
  TestMachine tm = MakeMachine<CreditScheduler>(
      1, 1, CreditScheduler::Options{});
  VcpuParams capped;
  capped.cap = 0.25;
  Vcpu* vcpu = tm.AddCpuHog(capped);
  vcpu->EnableInstrumentation();
  tm.machine->Start();
  tm.machine->RunFor(3 * kSecond);
  EXPECT_GT(vcpu->service_gaps().Max(), 15 * kMillisecond);
  EXPECT_LT(vcpu->service_gaps().Max(), 45 * kMillisecond);
}

TEST(Credit, FourCappedVmsPerCoreDelaysTensOfMs) {
  // The Fig. 5(a) effect: with four capped VMs per core, a VM can wait for
  // its credit replenishment while others drain theirs.
  TestMachine tm = MakeMachine<CreditScheduler>(
      1, 1, CreditScheduler::Options{});
  VcpuParams capped;
  capped.cap = 0.25;
  Vcpu* vantage = tm.AddCpuHog(capped);
  vantage->EnableInstrumentation();
  for (int i = 0; i < 3; ++i) {
    tm.AddCpuHog(capped);
  }
  tm.machine->Start();
  tm.machine->RunFor(5 * kSecond);
  EXPECT_GT(vantage->service_gaps().Max(), 10 * kMillisecond);
  EXPECT_NEAR(Share(vantage, 5 * kSecond), 0.25, 0.05);
}

TEST(Credit, WorkStealingUsesIdleCores) {
  // Two CPU hogs on a 2-core machine must both run ~100% even though both
  // initially enqueue on the same runqueue (round-robin assignment is by id,
  // but wakeup placement uses last_cpu = none -> info.cpu).
  TestMachine tm = MakeMachine<CreditScheduler>(
      2, 2, CreditScheduler::Options{});
  Vcpu* a = tm.AddCpuHog(VcpuParams{});
  Vcpu* b = tm.AddCpuHog(VcpuParams{});
  tm.machine->Start();
  tm.machine->RunFor(kSecond);
  EXPECT_GT(Share(a, kSecond) + Share(b, kSecond), 1.9);
}

TEST(Credit, BoostImprovesWakeLatencyAgainstCpuHogs) {
  CreditScheduler::Options boosted;
  CreditScheduler::Options unboosted;
  unboosted.boost_enabled = false;
  TimeNs max_latency[2];
  int index = 0;
  for (const auto& options : {boosted, unboosted}) {
    TestMachine tm = MakeMachine<CreditScheduler>(1, 1, options);
    // An I/O-ish vCPU woken periodically, competing with 2 CPU hogs.
    Vcpu* io = tm.machine->AddVcpu(VcpuParams{});
    io->EnableInstrumentation();
    StressIoWorkload::Config stress_config;
    stress_config.compute = 100 * kMicrosecond;
    stress_config.io_wait = 5 * kMillisecond;
    StressIoWorkload stress(tm.machine.get(), io, stress_config);
    stress.Start(0);
    tm.AddCpuHog(VcpuParams{});
    tm.AddCpuHog(VcpuParams{});
    tm.machine->Start();
    tm.machine->RunFor(3 * kSecond);
    max_latency[index++] = io->wakeup_latency().Percentile(0.99);
  }
  EXPECT_LT(max_latency[0], max_latency[1]);
}

// ---------- Credit2 ----------

TEST(Credit2, SingleHogGetsFullCpu) {
  TestMachine tm = MakeMachine<Credit2Scheduler>(
      1, 1, Credit2Scheduler::Options{});
  Vcpu* vcpu = tm.AddCpuHog(VcpuParams{});
  tm.machine->Start();
  tm.machine->RunFor(kSecond);
  EXPECT_GT(Share(vcpu, kSecond), 0.97);
}

TEST(Credit2, FairAmongEqualHogs) {
  TestMachine tm = MakeMachine<Credit2Scheduler>(
      1, 1, Credit2Scheduler::Options{});
  Vcpu* a = tm.AddCpuHog(VcpuParams{});
  Vcpu* b = tm.AddCpuHog(VcpuParams{});
  Vcpu* c = tm.AddCpuHog(VcpuParams{});
  tm.machine->Start();
  tm.machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(a, 3 * kSecond), 1.0 / 3, 0.05);
  EXPECT_NEAR(Share(b, 3 * kSecond), 1.0 / 3, 0.05);
  EXPECT_NEAR(Share(c, 3 * kSecond), 1.0 / 3, 0.05);
}

TEST(Credit2, UsesAllCoresInSocket) {
  TestMachine tm = MakeMachine<Credit2Scheduler>(
      4, 4, Credit2Scheduler::Options{});
  std::vector<Vcpu*> vcpus;
  for (int i = 0; i < 4; ++i) {
    vcpus.push_back(tm.AddCpuHog(VcpuParams{}));
  }
  tm.machine->Start();
  tm.machine->RunFor(kSecond);
  double total = 0;
  for (const Vcpu* vcpu : vcpus) {
    total += Share(vcpu, kSecond);
  }
  EXPECT_GT(total, 3.8);
}

TEST(Credit2, NoBoostMeansHigherIoWakeLatencyThanCredit) {
  // Credit2 removed boosting; against CPU hogs, an I/O vCPU's p99 wake
  // latency should be no better than boosted Credit's.
  TimeNs latency_credit = 0;
  TimeNs latency_credit2 = 0;
  {
    TestMachine tm = MakeMachine<CreditScheduler>(
        1, 1, CreditScheduler::Options{});
    Vcpu* io = tm.machine->AddVcpu(VcpuParams{});
    io->EnableInstrumentation();
    StressIoWorkload::Config config;
    config.compute = 100 * kMicrosecond;
    config.io_wait = 5 * kMillisecond;
    StressIoWorkload stress(tm.machine.get(), io, config);
    stress.Start(0);
    tm.AddCpuHog(VcpuParams{});
    tm.machine->Start();
    tm.machine->RunFor(3 * kSecond);
    latency_credit = io->wakeup_latency().Percentile(0.99);
  }
  {
    TestMachine tm = MakeMachine<Credit2Scheduler>(
        1, 1, Credit2Scheduler::Options{});
    Vcpu* io = tm.machine->AddVcpu(VcpuParams{});
    io->EnableInstrumentation();
    StressIoWorkload::Config config;
    config.compute = 100 * kMicrosecond;
    config.io_wait = 5 * kMillisecond;
    StressIoWorkload stress(tm.machine.get(), io, config);
    stress.Start(0);
    tm.AddCpuHog(VcpuParams{});
    tm.machine->Start();
    tm.machine->RunFor(3 * kSecond);
    latency_credit2 = io->wakeup_latency().Percentile(0.99);
  }
  EXPECT_LE(latency_credit, latency_credit2);
}

// ---------- RTDS ----------

VcpuParams Reservation(double utilization, TimeNs latency) {
  VcpuParams params;
  params.utilization = utilization;
  params.latency_goal = latency;
  return params;
}

TEST(Rtds, BudgetCapsUtilization) {
  TestMachine tm =
      MakeMachine<RtdsScheduler>(1, 1);
  Vcpu* vcpu = tm.AddCpuHog(Reservation(0.25, 20 * kMillisecond));
  tm.machine->Start();
  tm.machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.02);
}

TEST(Rtds, FourReservationsPerCoreAllServed) {
  TestMachine tm =
      MakeMachine<RtdsScheduler>(1, 1);
  std::vector<Vcpu*> vcpus;
  for (int i = 0; i < 4; ++i) {
    vcpus.push_back(tm.AddCpuHog(Reservation(0.25, 20 * kMillisecond)));
  }
  tm.machine->Start();
  tm.machine->RunFor(3 * kSecond);
  for (const Vcpu* vcpu : vcpus) {
    EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.03) << vcpu->id();
  }
}

TEST(Rtds, SchedulingDelayBoundedByPeriod) {
  // A CPU-bound reservation's service gap is bounded by roughly
  // 2*(T - C) plus scheduling noise (Fig. 5a: ~10-13 ms for this config).
  TestMachine tm =
      MakeMachine<RtdsScheduler>(1, 1);
  Vcpu* vantage = tm.AddCpuHog(Reservation(0.25, 20 * kMillisecond));
  vantage->EnableInstrumentation();
  for (int i = 0; i < 3; ++i) {
    tm.AddCpuHog(Reservation(0.25, 20 * kMillisecond));
  }
  tm.machine->Start();
  tm.machine->RunFor(5 * kSecond);
  EXPECT_LT(vantage->service_gaps().Max(), 21 * kMillisecond);
  EXPECT_GT(vantage->service_gaps().Max(), 5 * kMillisecond);
}

TEST(Rtds, EarliestDeadlineWins) {
  // Two reservations, one with a much shorter period: the short-period vCPU
  // must meet its tighter latency even under contention.
  TestMachine tm =
      MakeMachine<RtdsScheduler>(1, 1);
  Vcpu* tight = tm.AddCpuHog(Reservation(0.3, 2 * kMillisecond));
  tight->EnableInstrumentation();
  tm.AddCpuHog(Reservation(0.5, 60 * kMillisecond));
  tm.machine->Start();
  tm.machine->RunFor(3 * kSecond);
  EXPECT_NEAR(Share(tight, 3 * kSecond), 0.3, 0.05);
  EXPECT_LT(tight->service_gaps().Max(), 3 * kMillisecond);
}

TEST(Rtds, GlobalLockCostGrowsWithCoreCount) {
  // Run the same per-core workload on 4 and 16 cores; the mean Migrate op
  // cost must grow markedly (Table 1 vs Table 2's RTDS collapse).
  double migrate_cost[2];
  int index = 0;
  for (const int cores : {4, 16}) {
    TestMachine tm = MakeMachine<RtdsScheduler>(
        cores, cores / 2);
    std::vector<std::unique_ptr<StressIoWorkload>> stress;
    for (int i = 0; i < 4 * cores; ++i) {
      Vcpu* vcpu = tm.machine->AddVcpu(Reservation(0.25, 20 * kMillisecond));
      StressIoWorkload::Config config;
      config.seed = static_cast<std::uint64_t>(i + 1);
      stress.push_back(std::make_unique<StressIoWorkload>(tm.machine.get(), vcpu, config));
      stress.back()->Start(0);
    }
    tm.machine->Start();
    tm.machine->RunFor(kSecond);
    migrate_cost[index++] = tm.machine->op_stats().Of(SchedOp::kMigrate).Mean();
  }
  EXPECT_GT(migrate_cost[1], 2.0 * migrate_cost[0]);
}

// ---------- Tableau ----------

struct TableauFixture {
  TableauFixture(int cpus, bool capped, int vms, double utilization = 0.25,
                 TimeNs latency = 20 * kMillisecond) {
    TableauDispatcher::Config dispatcher;
    dispatcher.work_conserving = !capped;
    auto owned = std::make_unique<TableauScheduler>(dispatcher);
    scheduler = owned.get();
    MachineConfig config;
    config.num_cpus = cpus;
    config.cores_per_socket = cpus;
    machine = std::make_unique<Machine>(config, std::move(owned));
    std::vector<VcpuRequest> requests;
    for (int i = 0; i < vms; ++i) {
      VcpuParams params;
      params.cap = capped ? utilization : 0.0;
      params.utilization = utilization;
      params.latency_goal = latency;
      vcpus.push_back(machine->AddVcpu(params));
      requests.push_back(VcpuRequest{i, utilization, latency});
    }
    PlannerConfig planner_config;
    planner_config.num_cpus = cpus;
    plan = Planner(planner_config).Plan(requests);
    TABLEAU_CHECK(plan.success);
    scheduler->PushTable(std::make_shared<SchedulingTable>(plan.table));
  }

  std::unique_ptr<Machine> machine;
  TableauScheduler* scheduler;
  std::vector<Vcpu*> vcpus;
  PlanResult plan;
};

TEST(TableauSched, CappedHogGetsExactlyReservation) {
  TableauFixture f(1, /*capped=*/true, /*vms=*/4);
  std::vector<CpuHogWorkload> hogs;
  hogs.reserve(4);
  for (Vcpu* vcpu : f.vcpus) {
    hogs.emplace_back(f.machine.get(), vcpu).Start(0);
  }
  f.machine->Start();
  f.machine->RunFor(3 * kSecond);
  for (Vcpu* vcpu : f.vcpus) {
    EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.25, 0.01) << vcpu->id();
  }
}

TEST(TableauSched, CappedSchedulingDelayWithinBlackoutBound) {
  TableauFixture f(1, /*capped=*/true, /*vms=*/4);
  std::vector<CpuHogWorkload> hogs;
  hogs.reserve(4);
  for (Vcpu* vcpu : f.vcpus) {
    hogs.emplace_back(f.machine.get(), vcpu).Start(0);
  }
  f.vcpus[0]->EnableInstrumentation();
  f.machine->Start();
  f.machine->RunFor(5 * kSecond);
  // The paper observes ~10 ms (Fig. 5a): the table gap, not the 2(T-C)=19 ms
  // worst case, but never more than the bound.
  EXPECT_LE(f.vcpus[0]->service_gaps().Max(),
            f.plan.vcpus[0].blackout_bound + kMillisecond);
  EXPECT_GT(f.vcpus[0]->service_gaps().Max(), 5 * kMillisecond);
}

TEST(TableauSched, UncappedWorkConservingUsesIdleCycles) {
  TableauFixture f(1, /*capped=*/false, /*vms=*/4);
  // Only one VM active: it should soak up nearly the whole core.
  CpuHogWorkload hog(f.machine.get(), f.vcpus[0]);
  hog.Start(0);
  f.machine->Start();
  f.machine->RunFor(2 * kSecond);
  EXPECT_GT(Share(f.vcpus[0], 2 * kSecond), 0.9);
  EXPECT_GT(f.machine->SecondLevelFraction(0), 0.5);
}

TEST(TableauSched, CappedNotWorkConserving) {
  TableauFixture f(1, /*capped=*/true, /*vms=*/4);
  CpuHogWorkload hog(f.machine.get(), f.vcpus[0]);
  hog.Start(0);
  f.machine->Start();
  f.machine->RunFor(2 * kSecond);
  // Despite an otherwise idle machine, the capped VM stays at its share.
  EXPECT_NEAR(Share(f.vcpus[0], 2 * kSecond), 0.25, 0.01);
}

TEST(TableauSched, SecondLevelSharesIdleTimeFairly) {
  TableauFixture f(1, /*capped=*/false, /*vms=*/4);
  // Two active VMs, two idle: actives should split the core ~evenly.
  CpuHogWorkload hog_a(f.machine.get(), f.vcpus[0]);
  CpuHogWorkload hog_b(f.machine.get(), f.vcpus[1]);
  hog_a.Start(0);
  hog_b.Start(0);
  f.machine->Start();
  f.machine->RunFor(4 * kSecond);
  EXPECT_NEAR(Share(f.vcpus[0], 4 * kSecond), 0.5, 0.05);
  EXPECT_NEAR(Share(f.vcpus[1], 4 * kSecond), 0.5, 0.05);
}

TEST(TableauSched, SplitVcpuServedWithoutParallelism) {
  // Force semi-partitioning: 3 x 60% on 2 cores.
  TableauFixture f(2, /*capped=*/true, /*vms=*/3, /*utilization=*/0.6,
                   /*latency=*/40 * kMillisecond);
  bool any_split = false;
  for (const VcpuPlan& plan : f.plan.vcpus) {
    any_split = any_split || plan.split;
  }
  ASSERT_TRUE(any_split);
  std::vector<CpuHogWorkload> hogs;
  hogs.reserve(3);
  for (Vcpu* vcpu : f.vcpus) {
    hogs.emplace_back(f.machine.get(), vcpu).Start(0);
  }
  f.machine->Start();
  f.machine->RunFor(3 * kSecond);
  for (Vcpu* vcpu : f.vcpus) {
    EXPECT_NEAR(Share(vcpu, 3 * kSecond), 0.6, 0.02) << vcpu->id();
  }
}

TEST(TableauSched, WakeupLatencyBoundedInCappedMode) {
  TableauFixture f(1, /*capped=*/true, /*vms=*/4);
  // Vantage blocks/wakes; others hog their slots.
  Vcpu* vantage = f.vcpus[0];
  vantage->EnableInstrumentation();
  StressIoWorkload::Config config;
  config.compute = 200 * kMicrosecond;
  config.io_wait = 7 * kMillisecond;
  StressIoWorkload stress(f.machine.get(), vantage, config);
  stress.Start(0);
  std::vector<CpuHogWorkload> hogs;
  hogs.reserve(3);
  for (int i = 1; i < 4; ++i) {
    hogs.emplace_back(f.machine.get(), f.vcpus[static_cast<std::size_t>(i)]).Start(0);
  }
  f.machine->Start();
  f.machine->RunFor(5 * kSecond);
  // Wake-to-dispatch latency never exceeds the blackout bound.
  EXPECT_LE(vantage->wakeup_latency().Max(), f.plan.vcpus[0].blackout_bound);
}

TEST(TableauSched, TableSwitchAtRuntime) {
  TableauFixture f(1, /*capped=*/true, /*vms=*/4);
  std::vector<CpuHogWorkload> hogs;
  hogs.reserve(4);
  for (Vcpu* vcpu : f.vcpus) {
    hogs.emplace_back(f.machine.get(), vcpu).Start(0);
  }
  f.machine->Start();
  f.machine->RunFor(500 * kMillisecond);

  // Re-plan: give vCPU 0 a 50% share, drop vCPU 3 to 5%.
  std::vector<VcpuRequest> requests = {{0, 0.50, 20 * kMillisecond},
                                       {1, 0.25, 20 * kMillisecond},
                                       {2, 0.20, 20 * kMillisecond},
                                       {3, 0.05, 20 * kMillisecond}};
  PlannerConfig config;
  config.num_cpus = 1;
  const PlanResult new_plan = Planner(config).Plan(requests);
  ASSERT_TRUE(new_plan.success);
  f.scheduler->PushTable(std::make_shared<SchedulingTable>(new_plan.table));

  const TimeNs before = f.vcpus[0]->total_service();
  f.machine->RunFor(2 * kSecond + 300 * kMillisecond);
  // Skip the transition window, then measure the last 2s against the new
  // share.
  const double share =
      static_cast<double>(f.vcpus[0]->total_service() - before) / ToSec(2300 * kMillisecond) /
      1e9;
  EXPECT_GT(share, 0.42);  // Clearly reflects the new 50% reservation.
}

}  // namespace
}  // namespace tableau
