#include <gtest/gtest.h>

#include "src/core/coschedule.h"
#include "src/core/peephole.h"
#include "src/core/planner.h"

namespace tableau {
namespace {

TEST(Coschedule, PairOverlapComputation) {
  std::vector<std::vector<Allocation>> per_core(2);
  per_core[0] = {{0, 0, 100}, {2, 100, 200}};
  per_core[1] = {{1, 50, 150}};
  EXPECT_EQ(PairOverlapNs(per_core, 0, 1), 50);  // [50,100).
  EXPECT_EQ(PairOverlapNs(per_core, 2, 1), 50);  // [100,150).
  EXPECT_EQ(PairOverlapNs(per_core, 0, 2), 0);
}

TEST(Coschedule, AvoidHintSlidesApart) {
  // vCPU 0 on core 0 and vCPU 1 on core 1 fully overlap, but both have idle
  // slack within their windows: the pass must separate them completely.
  std::vector<std::vector<PeriodicTask>> core_tasks(2);
  core_tasks[0] = {PeriodicTask::Implicit(0, 40, 200)};
  core_tasks[1] = {PeriodicTask::Implicit(1, 40, 200)};
  std::vector<std::vector<Allocation>> per_core(2);
  per_core[0] = {{0, 80, 120}};
  per_core[1] = {{1, 80, 120}};
  const CoscheduleStats stats = CoschedulePass(
      per_core, core_tasks, {{0, 1, CoschedulePreference::kAvoid}}, 200);
  EXPECT_EQ(stats.overlap_before, 40);
  EXPECT_EQ(stats.overlap_after, 0);
  EXPECT_GE(stats.moves, 1);
  // Guarantees intact.
  EXPECT_TRUE(ServicePerWindowPreserved(per_core[0], core_tasks[0], 200));
  EXPECT_TRUE(ServicePerWindowPreserved(per_core[1], core_tasks[1], 200));
}

TEST(Coschedule, PreferHintSlidesTogether) {
  std::vector<std::vector<PeriodicTask>> core_tasks(2);
  core_tasks[0] = {PeriodicTask::Implicit(0, 40, 200)};
  core_tasks[1] = {PeriodicTask::Implicit(1, 40, 200)};
  std::vector<std::vector<Allocation>> per_core(2);
  per_core[0] = {{0, 0, 40}};
  per_core[1] = {{1, 160, 200}};
  const CoscheduleStats stats = CoschedulePass(
      per_core, core_tasks, {{0, 1, CoschedulePreference::kPrefer}}, 200);
  EXPECT_EQ(stats.overlap_before, 0);
  EXPECT_EQ(stats.overlap_after, 40);  // Fully gang-aligned.
  EXPECT_TRUE(ServicePerWindowPreserved(per_core[0], core_tasks[0], 200));
  EXPECT_TRUE(ServicePerWindowPreserved(per_core[1], core_tasks[1], 200));
}

TEST(Coschedule, RespectsWindowBoundaries) {
  // vCPU 0's job lives in window [0,100): it cannot slide past t=100 even
  // though the core is idle there, so 20 ns of overlap must remain.
  std::vector<std::vector<PeriodicTask>> core_tasks(2);
  core_tasks[0] = {PeriodicTask::Implicit(0, 40, 100)};
  core_tasks[1] = {PeriodicTask::Implicit(1, 120, 200)};
  std::vector<std::vector<Allocation>> per_core(2);
  per_core[0] = {{0, 40, 80}, {0, 100, 140}};
  per_core[1] = {{1, 0, 120}};
  const CoscheduleStats stats = CoschedulePass(
      per_core, core_tasks, {{0, 1, CoschedulePreference::kAvoid}}, 200);
  // vCPU 0's first job cannot escape vCPU 1's long allocation within its
  // own window, so some overlap necessarily remains.
  EXPECT_LT(stats.overlap_after, stats.overlap_before);
  EXPECT_GT(stats.overlap_after, 0);
  EXPECT_TRUE(ServicePerWindowPreserved(per_core[0], core_tasks[0], 200));
}

TEST(Coschedule, NeverOverlapsNeighbours) {
  // Sliding must respect neighbouring allocations on the same core.
  std::vector<std::vector<PeriodicTask>> core_tasks(2);
  core_tasks[0] = {PeriodicTask::Implicit(0, 30, 100), PeriodicTask::Implicit(2, 30, 100)};
  core_tasks[1] = {PeriodicTask::Implicit(1, 30, 100)};
  std::vector<std::vector<Allocation>> per_core(2);
  per_core[0] = {{0, 30, 60}, {2, 60, 90}};
  per_core[1] = {{1, 30, 60}};
  CoschedulePass(per_core, core_tasks, {{0, 1, CoschedulePreference::kAvoid}}, 100);
  TimeNs prev_end = 0;
  for (const Allocation& alloc : per_core[0]) {
    EXPECT_GE(alloc.start, prev_end);
    prev_end = alloc.end;
  }
  EXPECT_TRUE(ServicePerWindowPreserved(per_core[0], core_tasks[0], 100));
}

TEST(Coschedule, PlannerTablesStayValidAfterPass) {
  // Run the pass on real planner output and rebuild the table: validation
  // and guarantees must hold.
  PlannerConfig config;
  config.num_cpus = 4;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back({i, 0.3, 40 * kMillisecond});
  }
  PlanResult plan = planner.Plan(requests);
  ASSERT_TRUE(plan.success);

  std::vector<std::vector<Allocation>> per_core(4);
  for (int c = 0; c < 4; ++c) {
    per_core[static_cast<std::size_t>(c)] = plan.table.cpu(c).allocations;
  }
  const CoscheduleStats stats =
      CoschedulePass(per_core, plan.core_tasks,
                     {{0, 1, CoschedulePreference::kAvoid},
                      {2, 3, CoschedulePreference::kAvoid}},
                     plan.table.length());
  EXPECT_LE(stats.overlap_after, stats.overlap_before);

  const SchedulingTable rebuilt =
      SchedulingTable::Build(plan.table.length(), std::move(per_core));
  EXPECT_EQ(rebuilt.Validate(), "");
  for (const VcpuPlan& vcpu : plan.vcpus) {
    EXPECT_EQ(rebuilt.TotalService(vcpu.vcpu), plan.table.TotalService(vcpu.vcpu));
    EXPECT_LE(rebuilt.MaxBlackout(vcpu.vcpu), vcpu.blackout_bound);
  }
}

}  // namespace
}  // namespace tableau
