#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <set>
#include <thread>

#include "src/core/plan_cache.h"

namespace tableau {
namespace {

std::vector<VcpuRequest> Requests(std::initializer_list<std::pair<double, TimeNs>> specs,
                                  int first_id = 0) {
  std::vector<VcpuRequest> requests;
  int id = first_id;
  for (const auto& [u, l] : specs) {
    requests.push_back(VcpuRequest{id++, u, l});
  }
  return requests;
}

PlannerConfig FourCores() {
  PlannerConfig config;
  config.num_cpus = 4;
  return config;
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache(FourCores());
  const auto requests = Requests({{0.25, 20 * kMillisecond}, {0.5, 10 * kMillisecond}});
  const PlanResult first = cache.GetOrPlan(requests);
  ASSERT_TRUE(first.success);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const PlanResult second = cache.GetOrPlan(requests);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(cache.hits(), 1u);
  // Identical layout.
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(second.table.cpu(c).allocations, first.table.cpu(c).allocations);
  }
}

TEST(PlanCache, HitIsIdInsensitive) {
  PlanCache cache(FourCores());
  const PlanResult first = cache.GetOrPlan(
      Requests({{0.25, 20 * kMillisecond}, {0.5, 10 * kMillisecond}}, /*first_id=*/0));
  ASSERT_TRUE(first.success);

  // Same reservation multiset, different ids and order.
  std::vector<VcpuRequest> renamed = {{17, 0.5, 10 * kMillisecond},
                                      {42, 0.25, 20 * kMillisecond}};
  const PlanResult second = cache.GetOrPlan(renamed);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(cache.hits(), 1u);
  // Correctly relabeled: vCPU 17 carries the 50% reservation.
  EXPECT_GE(static_cast<double>(second.table.TotalService(17)) /
                static_cast<double>(second.table.length()),
            0.5 - 1e-6);
  EXPECT_GE(static_cast<double>(second.table.TotalService(42)) /
                static_cast<double>(second.table.length()),
            0.25 - 1e-6);
  EXPECT_EQ(second.table.Validate(), "");
  // Plan metadata uses the caller's ids.
  for (const VcpuPlan& plan : second.vcpus) {
    EXPECT_TRUE(plan.vcpu == 17 || plan.vcpu == 42);
  }
}

TEST(PlanCache, DifferentMultisetsMiss) {
  PlanCache cache(FourCores());
  cache.GetOrPlan(Requests({{0.25, 20 * kMillisecond}}));
  cache.GetOrPlan(Requests({{0.25, 30 * kMillisecond}}));  // Different latency.
  cache.GetOrPlan(Requests({{0.30, 20 * kMillisecond}}));  // Different share.
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCache, FailuresNotCached) {
  PlanCache cache(FourCores());
  const auto over = Requests({{0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond}});
  EXPECT_FALSE(cache.GetOrPlan(over).success);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.GetOrPlan(over).success);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCache, LruEviction) {
  PlanCache cache(FourCores(), /*capacity=*/2);
  const auto a = Requests({{0.10, 20 * kMillisecond}});
  const auto b = Requests({{0.20, 20 * kMillisecond}});
  const auto c = Requests({{0.30, 20 * kMillisecond}});
  cache.GetOrPlan(a);
  cache.GetOrPlan(b);
  cache.GetOrPlan(a);  // Touch a: b becomes LRU.
  cache.GetOrPlan(c);  // Evicts b.
  EXPECT_EQ(cache.size(), 2u);
  cache.GetOrPlan(a);
  EXPECT_EQ(cache.hits(), 2u);  // Touch of a, plus this lookup.
  cache.GetOrPlan(b);           // Miss again after eviction.
  EXPECT_EQ(cache.misses(), 4u);
}

// Regression for raw-IEEE-754 keying: a NaN utilization must be rejected at
// the door instead of poisoning an entry (NaN never matches itself, so such
// an entry could never be hit again).
TEST(PlanCache, NanUtilizationRejectedBeforeCache) {
  PlanCache cache(FourCores());
  const auto nan_request =
      Requests({{std::numeric_limits<double>::quiet_NaN(), 20 * kMillisecond}});
  const PlanResult result = cache.GetOrPlan(nan_request);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("NaN"), std::string::npos) << result.error;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0u);  // Never consulted the cache.
}

TEST(PlanCache, NonPositiveUtilizationRejectedBeforeCache) {
  PlanCache cache(FourCores());
  EXPECT_FALSE(cache.GetOrPlan(Requests({{0.0, 20 * kMillisecond}})).success);
  EXPECT_FALSE(cache.GetOrPlan(Requests({{-0.0, 20 * kMillisecond}})).success);
  EXPECT_FALSE(cache.GetOrPlan(Requests({{-0.5, 20 * kMillisecond}})).success);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// Duplicate (U, L) reservations give the canonical sort nothing to break
// ties on; on a hit, each caller id must still come back with its own full
// reservation (no id dropped or doubled by the relabeling).
TEST(PlanCache, DuplicateUtilizationsRelabelOnHit) {
  PlanCache cache(FourCores());
  const auto first =
      Requests({{0.25, 20 * kMillisecond},
                {0.25, 20 * kMillisecond},
                {0.25, 20 * kMillisecond},
                {0.25, 20 * kMillisecond}});
  ASSERT_TRUE(cache.GetOrPlan(first).success);

  const auto renamed = Requests({{0.25, 20 * kMillisecond},
                                 {0.25, 20 * kMillisecond},
                                 {0.25, 20 * kMillisecond},
                                 {0.25, 20 * kMillisecond}},
                                /*first_id=*/50);
  const PlanResult hit = cache.GetOrPlan(renamed);
  ASSERT_TRUE(hit.success);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(hit.table.Validate(), "");
  std::set<VcpuId> seen;
  for (const VcpuPlan& plan : hit.vcpus) {
    EXPECT_TRUE(seen.insert(plan.vcpu).second) << "duplicate vCPU " << plan.vcpu;
  }
  for (VcpuId id = 50; id < 54; ++id) {
    EXPECT_TRUE(seen.count(id)) << "vCPU " << id << " missing from relabeled plan";
    EXPECT_GE(static_cast<double>(hit.table.TotalService(id)) /
                  static_cast<double>(hit.table.length()),
              0.25 - 1e-6);
  }
}

// Thread-safety smoke test: concurrent callers hammering the same and
// distinct keys must neither crash nor corrupt the LRU, and every caller
// must receive a valid correctly-labeled plan.
TEST(PlanCache, ConcurrentGetOrPlan) {
  PlanCache cache(FourCores(), /*capacity=*/4);
  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const double u = 0.1 + 0.05 * ((t + i) % 3);
        const auto requests = Requests({{u, 20 * kMillisecond}}, /*first_id=*/t);
        const PlanResult plan = cache.GetOrPlan(requests);
        if (!plan.success || plan.table.Validate() != "" ||
            plan.table.TotalService(t) == 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 4u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads * kIterations));
}

TEST(RelabelPlan, RemapsEverywhere) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  const PlanResult plan =
      planner.Plan(Requests({{0.25, 20 * kMillisecond}, {0.4, 20 * kMillisecond}}));
  ASSERT_TRUE(plan.success);
  const PlanResult renamed = RelabelPlan(plan, {{0, 100}, {1, 200}});
  EXPECT_EQ(renamed.table.TotalService(0), 0);
  EXPECT_EQ(renamed.table.TotalService(100), plan.table.TotalService(0));
  EXPECT_EQ(renamed.table.TotalService(200), plan.table.TotalService(1));
  for (const VcpuPlan& vcpu : renamed.vcpus) {
    EXPECT_TRUE(vcpu.vcpu == 100 || vcpu.vcpu == 200);
  }
  for (const VcpuRequest& request : renamed.requests) {
    EXPECT_TRUE(request.vcpu == 100 || request.vcpu == 200);
  }
}

}  // namespace
}  // namespace tableau
