#include <gtest/gtest.h>

#include <map>

#include "src/core/plan_cache.h"

namespace tableau {
namespace {

std::vector<VcpuRequest> Requests(std::initializer_list<std::pair<double, TimeNs>> specs,
                                  int first_id = 0) {
  std::vector<VcpuRequest> requests;
  int id = first_id;
  for (const auto& [u, l] : specs) {
    requests.push_back(VcpuRequest{id++, u, l});
  }
  return requests;
}

PlannerConfig FourCores() {
  PlannerConfig config;
  config.num_cpus = 4;
  return config;
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache(FourCores());
  const auto requests = Requests({{0.25, 20 * kMillisecond}, {0.5, 10 * kMillisecond}});
  const PlanResult first = cache.GetOrPlan(requests);
  ASSERT_TRUE(first.success);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const PlanResult second = cache.GetOrPlan(requests);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(cache.hits(), 1u);
  // Identical layout.
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(second.table.cpu(c).allocations, first.table.cpu(c).allocations);
  }
}

TEST(PlanCache, HitIsIdInsensitive) {
  PlanCache cache(FourCores());
  const PlanResult first = cache.GetOrPlan(
      Requests({{0.25, 20 * kMillisecond}, {0.5, 10 * kMillisecond}}, /*first_id=*/0));
  ASSERT_TRUE(first.success);

  // Same reservation multiset, different ids and order.
  std::vector<VcpuRequest> renamed = {{17, 0.5, 10 * kMillisecond},
                                      {42, 0.25, 20 * kMillisecond}};
  const PlanResult second = cache.GetOrPlan(renamed);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(cache.hits(), 1u);
  // Correctly relabeled: vCPU 17 carries the 50% reservation.
  EXPECT_GE(static_cast<double>(second.table.TotalService(17)) /
                static_cast<double>(second.table.length()),
            0.5 - 1e-6);
  EXPECT_GE(static_cast<double>(second.table.TotalService(42)) /
                static_cast<double>(second.table.length()),
            0.25 - 1e-6);
  EXPECT_EQ(second.table.Validate(), "");
  // Plan metadata uses the caller's ids.
  for (const VcpuPlan& plan : second.vcpus) {
    EXPECT_TRUE(plan.vcpu == 17 || plan.vcpu == 42);
  }
}

TEST(PlanCache, DifferentMultisetsMiss) {
  PlanCache cache(FourCores());
  cache.GetOrPlan(Requests({{0.25, 20 * kMillisecond}}));
  cache.GetOrPlan(Requests({{0.25, 30 * kMillisecond}}));  // Different latency.
  cache.GetOrPlan(Requests({{0.30, 20 * kMillisecond}}));  // Different share.
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCache, FailuresNotCached) {
  PlanCache cache(FourCores());
  const auto over = Requests({{0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond},
                              {0.9, 20 * kMillisecond}});
  EXPECT_FALSE(cache.GetOrPlan(over).success);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.GetOrPlan(over).success);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCache, LruEviction) {
  PlanCache cache(FourCores(), /*capacity=*/2);
  const auto a = Requests({{0.10, 20 * kMillisecond}});
  const auto b = Requests({{0.20, 20 * kMillisecond}});
  const auto c = Requests({{0.30, 20 * kMillisecond}});
  cache.GetOrPlan(a);
  cache.GetOrPlan(b);
  cache.GetOrPlan(a);  // Touch a: b becomes LRU.
  cache.GetOrPlan(c);  // Evicts b.
  EXPECT_EQ(cache.size(), 2u);
  cache.GetOrPlan(a);
  EXPECT_EQ(cache.hits(), 2u);  // Touch of a, plus this lookup.
  cache.GetOrPlan(b);           // Miss again after eviction.
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(RelabelPlan, RemapsEverywhere) {
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  const PlanResult plan =
      planner.Plan(Requests({{0.25, 20 * kMillisecond}, {0.4, 20 * kMillisecond}}));
  ASSERT_TRUE(plan.success);
  const PlanResult renamed = RelabelPlan(plan, {{0, 100}, {1, 200}});
  EXPECT_EQ(renamed.table.TotalService(0), 0);
  EXPECT_EQ(renamed.table.TotalService(100), plan.table.TotalService(0));
  EXPECT_EQ(renamed.table.TotalService(200), plan.table.TotalService(1));
  for (const VcpuPlan& vcpu : renamed.vcpus) {
    EXPECT_TRUE(vcpu.vcpu == 100 || vcpu.vcpu == 200);
  }
  for (const VcpuRequest& request : renamed.requests) {
    EXPECT_TRUE(request.vcpu == 100 || request.vcpu == 200);
  }
}

}  // namespace
}  // namespace tableau
