// Determinism contract of the parallel planning pipeline: for any thread
// count, the planner must emit a table that serializes byte-identically to
// the serial planner's, so operators can scale planner threads without ever
// changing a schedule (and so plan-cache entries stay interchangeable).
#include <gtest/gtest.h>

#include <vector>

#include "src/core/planner.h"

namespace tableau {
namespace {

std::vector<VcpuRequest> FairShareRequests(int num_vms, double utilization,
                                           TimeNs latency_goal) {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, utilization, latency_goal});
  }
  return requests;
}

std::vector<std::uint8_t> PlanBytes(PlannerConfig config, int threads,
                                    const std::vector<VcpuRequest>& requests,
                                    PlanMethod* method_out = nullptr) {
  config.num_threads = threads;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(requests);
  EXPECT_TRUE(plan.success) << plan.error;
  if (method_out != nullptr) {
    *method_out = plan.method;
  }
  return plan.table.Serialize();
}

void ExpectThreadCountInvariant(const PlannerConfig& config,
                                const std::vector<VcpuRequest>& requests) {
  const std::vector<std::uint8_t> serial = PlanBytes(config, 1, requests);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(PlanBytes(config, threads, requests), serial)
        << "plan diverged at " << threads << " threads";
  }
}

// The paper's 16-core harness scenario: 12 guest cores, 4 VMs per core.
TEST(ParallelPlan, ByteIdentical16CoreScenario) {
  PlannerConfig config;
  config.num_cpus = 12;
  config.cores_per_socket = 6;
  ExpectThreadCountInvariant(config,
                             FairShareRequests(48, 0.25, 20 * kMillisecond));
}

// The paper's 48-core harness scenario: 44 guest cores, 176 VMs.
TEST(ParallelPlan, ByteIdentical48CoreScenario) {
  PlannerConfig config;
  config.num_cpus = 44;
  config.cores_per_socket = 22;
  ExpectThreadCountInvariant(config,
                             FairShareRequests(176, 0.25, 20 * kMillisecond));
}

// A tight latency goal produces short periods and the densest tables (the
// slowest Fig. 3 column) — the heaviest per-core EDF fan-out.
TEST(ParallelPlan, ByteIdenticalTightLatencyGoal) {
  PlannerConfig config;
  config.num_cpus = 44;
  ExpectThreadCountInvariant(config, FairShareRequests(176, 0.25, kMillisecond));
}

// Heterogeneous reservations exercise the worst-fit candidate scan with
// unequal loads and tie-breaks.
TEST(ParallelPlan, ByteIdenticalMixedReservations) {
  PlannerConfig config;
  config.num_cpus = 44;
  std::vector<VcpuRequest> requests;
  const double utilizations[] = {0.1, 0.25, 0.4, 0.55};
  const TimeNs goals[] = {5 * kMillisecond, 20 * kMillisecond, 60 * kMillisecond};
  int id = 0;
  for (int i = 0; i < 60; ++i) {
    requests.push_back(VcpuRequest{id++, utilizations[i % 4], goals[i % 3]});
  }
  ExpectThreadCountInvariant(config, requests);
}

// Six 60% reservations on four cores cannot be partitioned (no core takes
// two), forcing the C=D split-point search — the speculative parallel
// bisection must land on the exact serial split.
TEST(ParallelPlan, ByteIdenticalSemiPartitioned) {
  PlannerConfig config;
  config.num_cpus = 4;
  const std::vector<VcpuRequest> requests =
      FairShareRequests(6, 0.6, 40 * kMillisecond);
  PlanMethod method;
  const std::vector<std::uint8_t> serial = PlanBytes(config, 1, requests, &method);
  EXPECT_EQ(method, PlanMethod::kSemiPartitioned);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(PlanBytes(config, threads, requests), serial)
        << "semi-partitioned plan diverged at " << threads << " threads";
  }
}

// Incremental replanning (arrival + departure) through the parallel
// pipeline must match the serial incremental result byte for byte.
TEST(ParallelPlan, ByteIdenticalIncremental) {
  PlannerConfig base;
  base.num_cpus = 12;
  const std::vector<VcpuRequest> initial =
      FairShareRequests(40, 0.25, 20 * kMillisecond);
  const std::vector<VcpuRequest> added = {{100, 0.25, 20 * kMillisecond},
                                          {101, 0.5, 10 * kMillisecond}};
  const std::vector<VcpuId> departed = {3, 17};

  std::vector<std::uint8_t> serial;
  for (const int threads : {1, 2, 8}) {
    PlannerConfig config = base;
    config.num_threads = threads;
    const Planner planner(config);
    const PlanResult first = planner.Plan(initial);
    ASSERT_TRUE(first.success) << first.error;
    const PlanResult second = planner.PlanIncremental(first, added, departed);
    ASSERT_TRUE(second.success) << second.error;
    if (threads == 1) {
      serial = second.table.Serialize();
    } else {
      EXPECT_EQ(second.table.Serialize(), serial)
          << "incremental plan diverged at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace tableau
