#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {
namespace {

// Minimal FIFO round-robin scheduler used to exercise the machine mechanics.
class FifoScheduler : public VcpuScheduler {
 public:
  explicit FifoScheduler(TimeNs slice = 10 * kMillisecond) : slice_(slice) {}

  std::string Name() const override { return "fifo-test"; }

  void AddVcpu(Vcpu* vcpu) override { (void)vcpu; }

  Decision PickNext(CpuId cpu) override {
    (void)cpu;
    machine_->AddOpCost(pick_cost_);
    Decision decision;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      Vcpu* vcpu = queue_.front();
      queue_.pop_front();
      if (vcpu->runnable() && vcpu->running_on() == kNoCpu) {
        decision.vcpu = vcpu->id();
        decision.until = machine_->Now() + slice_;
        return decision;
      }
      queue_.push_back(vcpu);
    }
    decision.vcpu = kIdleVcpu;
    decision.until = kTimeNever;
    return decision;
  }

  void OnWakeup(Vcpu* vcpu) override {
    queue_.push_back(vcpu);
    // Kick the vCPU's last CPU (or CPU 0) if idle.
    const CpuId target = vcpu->last_cpu() == kNoCpu ? 0 : vcpu->last_cpu();
    if (machine_->RunningOn(target) == nullptr) {
      machine_->KickCpu(target, /*remote=*/true);
    }
  }

  void OnBlock(Vcpu* vcpu, CpuId cpu) override {
    (void)vcpu;
    (void)cpu;
  }

  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override {
    (void)cpu;
    (void)reason;
    queue_.push_back(vcpu);
  }

  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override {
    (void)vcpu;
    (void)cpu;
    accrued_ += amount;
  }

  void set_pick_cost(TimeNs cost) { pick_cost_ = cost; }
  TimeNs accrued() const { return accrued_; }

 private:
  TimeNs slice_;
  TimeNs pick_cost_ = 0;
  TimeNs accrued_ = 0;
  std::deque<Vcpu*> queue_;
};

struct Fixture {
  explicit Fixture(int cpus = 1, TimeNs slice = 10 * kMillisecond) {
    MachineConfig config;
    config.num_cpus = cpus;
    config.cores_per_socket = cpus;
    config.costs = OverheadCosts{};
    auto sched = std::make_unique<FifoScheduler>(slice);
    scheduler = sched.get();
    machine = std::make_unique<Machine>(config, std::move(sched));
  }
  std::unique_ptr<Machine> machine;
  FifoScheduler* scheduler;
};

TEST(Machine, CpuBoundVcpuGetsWholeCpu) {
  Fixture f;
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  f.machine->SetBurst(vcpu, kTimeNever);
  f.machine->sim().ScheduleAt(0, [&] { f.machine->Wake(vcpu->id()); });
  f.machine->Start();
  f.machine->RunFor(kSecond);
  // Service is wall time minus dispatch overheads (context switch etc).
  EXPECT_GT(vcpu->total_service(), 990 * kMillisecond);
  EXPECT_LE(vcpu->total_service(), kSecond);
}

TEST(Machine, BurstCompletionInvokesHandlerAndBlocks) {
  Fixture f;
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  int completions = 0;
  vcpu->on_burst_complete = [&] {
    ++completions;
    f.machine->Block(vcpu);
  };
  f.machine->SetBurst(vcpu, 5 * kMillisecond);
  f.machine->sim().ScheduleAt(0, [&] { f.machine->Wake(vcpu->id()); });
  f.machine->Start();
  f.machine->RunFor(100 * kMillisecond);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(vcpu->state(), VcpuState::kBlocked);
  EXPECT_EQ(vcpu->total_service(), 5 * kMillisecond);
}

TEST(Machine, WakeOnRunnableVcpuIsNoOp) {
  Fixture f;
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  f.machine->SetBurst(vcpu, kTimeNever);
  f.machine->sim().ScheduleAt(0, [&] {
    f.machine->Wake(vcpu->id());
    f.machine->Wake(vcpu->id());  // Duplicate.
  });
  f.machine->Start();
  f.machine->RunFor(10 * kMillisecond);
  EXPECT_EQ(f.machine->op_stats().Of(SchedOp::kWakeup).Count(), 1u);
}

TEST(Machine, TwoVcpusShareCpuRoundRobin) {
  Fixture f(/*cpus=*/1, /*slice=*/5 * kMillisecond);
  Vcpu* a = f.machine->AddVcpu(VcpuParams{});
  Vcpu* b = f.machine->AddVcpu(VcpuParams{});
  f.machine->SetBurst(a, kTimeNever);
  f.machine->SetBurst(b, kTimeNever);
  f.machine->sim().ScheduleAt(0, [&] {
    f.machine->Wake(a->id());
    f.machine->Wake(b->id());
  });
  f.machine->Start();
  f.machine->RunFor(kSecond);
  // Fair to within a slice.
  EXPECT_NEAR(static_cast<double>(a->total_service()),
              static_cast<double>(b->total_service()), 6 * kMillisecond);
  EXPECT_GT(f.machine->context_switches(), 150u);
}

TEST(Machine, ServiceConservation) {
  // busy + overhead <= wall time per cpu; busy sums match vcpu service.
  Fixture f(/*cpus=*/2, /*slice=*/kMillisecond);
  std::vector<Vcpu*> vcpus;
  for (int i = 0; i < 4; ++i) {
    vcpus.push_back(f.machine->AddVcpu(VcpuParams{}));
    f.machine->SetBurst(vcpus.back(), kTimeNever);
  }
  f.machine->sim().ScheduleAt(0, [&] {
    for (Vcpu* vcpu : vcpus) {
      f.machine->Wake(vcpu->id());
    }
  });
  f.machine->Start();
  f.machine->RunFor(kSecond);
  TimeNs busy_total = 0;
  for (int cpu = 0; cpu < 2; ++cpu) {
    EXPECT_LE(f.machine->cpu_busy_ns(cpu) + f.machine->cpu_overhead_ns(cpu),
              kSecond + kMillisecond);
    busy_total += f.machine->cpu_busy_ns(cpu);
  }
  TimeNs service_total = 0;
  for (Vcpu* vcpu : vcpus) {
    service_total += vcpu->total_service();
  }
  EXPECT_EQ(busy_total, service_total);
}

TEST(Machine, OverheadDelaysServiceStart) {
  Fixture low;
  Vcpu* a = low.machine->AddVcpu(VcpuParams{});
  low.machine->SetBurst(a, kTimeNever);
  low.machine->sim().ScheduleAt(0, [&] { low.machine->Wake(a->id()); });
  low.machine->Start();
  low.machine->RunFor(kSecond);

  Fixture high;
  high.scheduler->set_pick_cost(100 * kMicrosecond);
  Vcpu* b = high.machine->AddVcpu(VcpuParams{});
  high.machine->SetBurst(b, kTimeNever);
  high.machine->sim().ScheduleAt(0, [&] { high.machine->Wake(b->id()); });
  high.machine->Start();
  high.machine->RunFor(kSecond);

  EXPECT_GT(a->total_service(), b->total_service());
}

TEST(Machine, OpCostsRecordedAsTracepoints) {
  Fixture f;
  f.scheduler->set_pick_cost(2 * kMicrosecond);
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  f.machine->SetBurst(vcpu, kTimeNever);
  f.machine->sim().ScheduleAt(0, [&] { f.machine->Wake(vcpu->id()); });
  f.machine->Start();
  f.machine->RunFor(100 * kMillisecond);
  const Histogram& schedule = f.machine->op_stats().Of(SchedOp::kSchedule);
  EXPECT_GT(schedule.Count(), 5u);
  // Every schedule op includes the fixed entry cost plus the pick cost.
  EXPECT_GE(schedule.Min(), 2 * kMicrosecond + OverheadCosts{}.sched_entry);
}

TEST(Machine, WallClockAccrualIncludesOverheadWindow) {
  // Scheduler accounting must burn assigned wall time even when overhead
  // swallows the whole slice (the anti-livelock property).
  Fixture f(/*cpus=*/1, /*slice=*/kMillisecond);
  f.scheduler->set_pick_cost(50 * kMicrosecond);
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  f.machine->SetBurst(vcpu, kTimeNever);
  f.machine->sim().ScheduleAt(0, [&] { f.machine->Wake(vcpu->id()); });
  f.machine->Start();
  f.machine->RunFor(kSecond);
  // Accrued wall time ~= 1s, strictly more than pure guest service.
  EXPECT_GT(f.scheduler->accrued(), 990 * kMillisecond);
  EXPECT_GT(f.scheduler->accrued(), vcpu->total_service());
}

TEST(Machine, InstrumentedWakeupLatency) {
  Fixture f;
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  vcpu->EnableInstrumentation();
  int wakes = 0;
  vcpu->on_burst_complete = [&] { f.machine->Block(vcpu); };
  std::function<void()> waker = [&] {
    if (++wakes > 10) {
      return;
    }
    f.machine->SetBurst(vcpu, 100 * kMicrosecond);
    f.machine->Wake(vcpu->id());
    f.machine->sim().ScheduleAfter(10 * kMillisecond, waker);
  };
  f.machine->sim().ScheduleAt(0, waker);
  f.machine->Start();
  f.machine->RunFor(kSecond);
  EXPECT_EQ(vcpu->wakeup_latency().Count(), 10u);
  // Idle machine: latency is dominated by IPI delivery + context switch.
  EXPECT_LT(vcpu->wakeup_latency().Max(), 100 * kMicrosecond);
}

TEST(Machine, SocketTopology) {
  MachineConfig config;
  config.num_cpus = 16;
  config.cores_per_socket = 8;
  Machine machine(config, std::make_unique<FifoScheduler>());
  EXPECT_EQ(machine.SocketOf(0), 0);
  EXPECT_EQ(machine.SocketOf(7), 0);
  EXPECT_EQ(machine.SocketOf(8), 1);
  EXPECT_EQ(machine.SocketOf(15), 1);
}

TEST(Machine, ContextSwitchOnlyOnVcpuChange) {
  // One CPU-bound vCPU alone: after the initial dispatch, re-picks of the
  // same vCPU at slice ends must not count as context switches.
  Fixture f(/*cpus=*/1, /*slice=*/kMillisecond);
  Vcpu* vcpu = f.machine->AddVcpu(VcpuParams{});
  f.machine->SetBurst(vcpu, kTimeNever);
  f.machine->sim().ScheduleAt(0, [&] { f.machine->Wake(vcpu->id()); });
  f.machine->Start();
  f.machine->RunFor(kSecond);
  EXPECT_EQ(f.machine->context_switches(), 1u);
  EXPECT_GT(f.machine->schedule_invocations(), 900u);
}

}  // namespace
}  // namespace tableau
