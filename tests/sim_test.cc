#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace tableau {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  TimeNs seen = -1;
  sim.ScheduleAt(42, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 42);
}

TEST(Simulation, RunUntilStopsAtLimit) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(30);
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotentAndSafeAfterFire) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.ScheduleAt(10, [&] { ++fired; });
  sim.RunAll();
  sim.Cancel(id);  // Already fired: no-op.
  sim.Cancel(id);
  sim.Cancel(kInvalidEvent);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<TimeNs> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now());
    if (times.size() < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<TimeNs>{0, 10, 20, 30, 40}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  TimeNs fired_at = -1;
  sim.ScheduleAt(100, [&] { sim.ScheduleAfter(5, [&] { fired_at = sim.Now(); }); });
  sim.RunAll();
  EXPECT_EQ(fired_at, 105);
}

TEST(Simulation, CancelInsideEvent) {
  Simulation sim;
  bool fired = false;
  const EventId target = sim.ScheduleAt(20, [&] { fired = true; });
  sim.ScheduleAt(10, [&] { sim.Cancel(target); });
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilAdvancesClockWithNoEvents) {
  Simulation sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulationDeathTest, SchedulingInThePastAborts) {
  Simulation sim;
  sim.ScheduleAt(100, [] {});
  sim.RunAll();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "scheduled in the past");
}

}  // namespace
}  // namespace tableau
