#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/simulation.h"

namespace tableau {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  TimeNs seen = -1;
  sim.ScheduleAt(42, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 42);
}

TEST(Simulation, RunUntilStopsAtLimit) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(30);
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotentAndSafeAfterFire) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.ScheduleAt(10, [&] { ++fired; });
  sim.RunAll();
  sim.Cancel(id);  // Already fired: no-op.
  sim.Cancel(id);
  sim.Cancel(kInvalidEvent);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<TimeNs> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now());
    if (times.size() < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<TimeNs>{0, 10, 20, 30, 40}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  TimeNs fired_at = -1;
  sim.ScheduleAt(100, [&] { sim.ScheduleAfter(5, [&] { fired_at = sim.Now(); }); });
  sim.RunAll();
  EXPECT_EQ(fired_at, 105);
}

TEST(Simulation, CancelInsideEvent) {
  Simulation sim;
  bool fired = false;
  const EventId target = sim.ScheduleAt(20, [&] { fired = true; });
  sim.ScheduleAt(10, [&] { sim.Cancel(target); });
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilAdvancesClockWithNoEvents) {
  Simulation sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulationDeathTest, SchedulingInThePastAborts) {
  Simulation sim;
  sim.ScheduleAt(100, [] {});
  sim.RunAll();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "scheduled in the past");
}

// --- Timer-wheel routing: near/L0 through every cascade level and the
// overflow heap (level-0 slots are 1024 ns; each level covers 256x more).

TEST(SimulationWheel, FiresInOrderAcrossAllLevelsAndOverflow) {
  Simulation sim;
  // One event per time scale: same slot, level 0..3, and past the ~73 min
  // wheel horizon (overflow heap).
  const std::vector<TimeNs> times = {
      3,
      1000,                      // level 0
      300 * 1000,                // level 1
      80 * 1000 * 1000,         // level 2
      20ll * 1000 * 1000 * 1000, // level 3
      5ll * 3600 * 1000 * 1000 * 1000,  // overflow (5 hours)
  };
  std::vector<TimeNs> fired;
  // Schedule in reverse so arrival order disagrees with time order.
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const TimeNs at = *it;
    sim.ScheduleAt(at, [&fired, at] { fired.push_back(at); });
  }
  sim.CheckInvariantsForTest();
  sim.RunAll();
  EXPECT_EQ(fired, times);
}

TEST(SimulationWheel, InterleavedArrivalsAcrossCascadeBoundaries) {
  // Events landing just before/after level-boundary multiples while the
  // clock advances, exercising cursor-slot cascades.
  Simulation sim;
  std::vector<TimeNs> fired;
  for (TimeNs t : {262143, 262144, 262145, 524287, 524289, 67108863, 67108865}) {
    sim.ScheduleAt(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  // A driver that keeps inserting short-horizon events as time advances, so
  // level-0 slots fill up after base_ crosses each boundary.
  const EventId driver = sim.SchedulePeriodic(1000, 50000, [] {});
  sim.RunUntil(70000000);
  sim.Cancel(driver);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 7u);
}

// --- Persistent timers: CreateTimer / Arm / Disarm semantics.

TEST(SimulationTimer, DormantUntilArmedAndRearmable) {
  Simulation sim;
  int fired = 0;
  const EventId timer = sim.CreateTimer([&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 0);  // Dormant: never fires on its own.
  sim.Arm(timer, 200);
  sim.RunUntil(300);
  EXPECT_EQ(fired, 1);
  sim.Arm(timer, 400);  // Same node, re-armed after going dormant.
  sim.RunUntil(500);
  EXPECT_EQ(fired, 2);
  sim.Cancel(timer);
}

TEST(SimulationTimer, ArmMovesAPendingEvent) {
  Simulation sim;
  std::vector<int> order;
  const EventId timer = sim.CreateTimer([&] { order.push_back(1); });
  sim.ScheduleAt(50, [&] { order.push_back(2); });
  sim.Arm(timer, 10);
  sim.Arm(timer, 90);  // Move later: the 50 event now runs first.
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimulationTimer, DisarmStopsPendingButKeepsTimer) {
  Simulation sim;
  int fired = 0;
  const EventId timer = sim.CreateTimer([&] { ++fired; });
  sim.Arm(timer, 10);
  sim.Disarm(timer);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 0);
  sim.Arm(timer, 200);  // Still alive after Disarm.
  sim.RunUntil(300);
  EXPECT_EQ(fired, 1);
  sim.Cancel(timer);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(SimulationPeriodic, FiresAtFixedIntervalsUntilCancelled) {
  Simulation sim;
  std::vector<TimeNs> ticks;
  const EventId id = sim.SchedulePeriodic(10, 25, [&] { ticks.push_back(sim.Now()); });
  sim.RunUntil(100);
  EXPECT_EQ(ticks, (std::vector<TimeNs>{10, 35, 60, 85}));
  sim.Cancel(id);
  sim.RunUntil(200);
  EXPECT_EQ(ticks.size(), 4u);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(SimulationPeriodic, CallbackCanOverrideNextFireOrStop) {
  Simulation sim;
  std::vector<TimeNs> ticks;
  EventId id = kInvalidEvent;
  id = sim.SchedulePeriodic(10, 100, [&] {
    ticks.push_back(sim.Now());
    if (ticks.size() == 1) {
      sim.Arm(id, sim.Now() + 5);  // Override the period once.
    } else if (ticks.size() == 3) {
      sim.Disarm(id);  // Periodic timer stops but stays allocated.
    }
  });
  sim.RunUntil(1000);
  EXPECT_EQ(ticks, (std::vector<TimeNs>{10, 15, 115}));
  EXPECT_EQ(sim.live_events(), 1u);  // Dormant, still re-armable.
  sim.Cancel(id);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(SimulationPeriodic, CancelFromInsideOwnCallbackWins) {
  Simulation sim;
  int fired = 0;
  EventId id = kInvalidEvent;
  id = sim.SchedulePeriodic(10, 10, [&] {
    ++fired;
    sim.Cancel(id);
  });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.live_events(), 0u);
}

// --- FIFO order is defined by arm-call order across every scheduling API.

TEST(SimulationFifo, SameTimeOrderFollowsArmCallsAcrossApis) {
  Simulation sim;
  std::vector<int> order;
  const EventId timer = sim.CreateTimer([&] { order.push_back(1); });
  sim.ScheduleAt(50, [&] { order.push_back(0); });
  sim.Arm(timer, 50);
  sim.SchedulePeriodic(50, 1000, [&] { order.push_back(2); });
  sim.ScheduleAt(50, [&] { order.push_back(3); });
  sim.RunUntil(60);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --- Stale-id safety: generation tags make reused pool slots detectable.

TEST(SimulationGeneration, StaleIdsAreNoOpsAfterSlotReuse) {
  Simulation sim;
  bool old_fired = false;
  const EventId old_id = sim.ScheduleAt(10, [&] { old_fired = true; });
  sim.Cancel(old_id);
  // The freed node is recycled for a new event; the old id must not alias it.
  bool new_fired = false;
  sim.ScheduleAt(20, [&] { new_fired = true; });
  sim.Cancel(old_id);   // Stale: must not cancel the new event.
  sim.Disarm(old_id);   // Stale: no-op.
  sim.RunAll();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(SimulationGenerationDeathTest, ArmOnDeadIdAborts) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  sim.Cancel(id);
  EXPECT_DEATH(sim.Arm(id, 100), "dead event id");
}

// --- Memory regression: schedule/fire/cancel churn must not grow the pool
// (the seed engine leaked a tombstone per Cancel of an unfired event and a
// heap entry per pending move).

TEST(SimulationMemory, ChurnKeepsPoolCapacityBounded) {
  Simulation sim;
  const EventId pacer = sim.CreateTimer([] {});
  for (int round = 0; round < 20000; ++round) {
    const EventId one = sim.ScheduleAfter(1 + round % 512, [] {});
    if (round % 2 == 0) {
      sim.Cancel(one);
    }
    sim.Arm(pacer, sim.Now() + 1 + round % 1024);  // Repeated pending moves.
    sim.RunUntil(sim.Now() + round % 64);
  }
  sim.RunAll();
  EXPECT_EQ(sim.live_events(), 1u);  // Just the dormant pacer.
  // The pool never needs more nodes than the peak number of simultaneously
  // live events (a handful here) rounded up to one 256-node chunk.
  EXPECT_LE(sim.pool_capacity(), 256u);
  sim.CheckInvariantsForTest();
}

// --- Randomized differential test: the wheel engine vs a naive
// (time, seq)-sorted reference model, with structural invariants checked
// along the way.

TEST(SimulationStress, MatchesReferenceModelUnderRandomChurn) {
  std::uint64_t lcg = 2024;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  };
  Simulation sim;
  std::vector<std::pair<TimeNs, int>> fired;       // Engine's execution log.
  std::vector<std::pair<TimeNs, int>> expected;    // Reference prediction.

  constexpr int kTimers = 24;
  std::vector<EventId> timers;
  std::vector<std::uint64_t> pending_stamp(kTimers, 0);  // 0 = not pending.
  std::uint64_t stamp = 0;
  // Reference model: (time, arm stamp) -> tag, mirroring every Arm call.
  std::multimap<std::pair<TimeNs, std::uint64_t>, int> model;

  for (int i = 0; i < kTimers; ++i) {
    const int tag = i;
    timers.push_back(sim.CreateTimer([&, tag] { fired.push_back({sim.Now(), tag}); }));
  }
  auto arm = [&](int tag, TimeNs at) {
    if (pending_stamp[static_cast<std::size_t>(tag)] != 0) {
      // Erase the superseded reference entry.
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->second == tag) {
          model.erase(it);
          break;
        }
      }
    }
    ++stamp;
    pending_stamp[static_cast<std::size_t>(tag)] = stamp;
    model.emplace(std::make_pair(at, stamp), tag);
    sim.Arm(timers[static_cast<std::size_t>(tag)], at);
  };

  TimeNs horizon = 0;
  for (int round = 0; round < 4000; ++round) {
    // Drain the model of everything up to the next horizon and advance.
    const int tag = static_cast<int>(next() % kTimers);
    TimeNs delay;
    switch (next() % 4) {
      case 0: delay = 1 + static_cast<TimeNs>(next() % 1000); break;
      case 1: delay = 1 + static_cast<TimeNs>(next() % 300000); break;
      case 2: delay = 1 + static_cast<TimeNs>(next() % 70000000); break;
      default: delay = 1 + static_cast<TimeNs>(next() % 30000000000ll); break;
    }
    arm(tag, horizon + delay);
    if (next() % 3 == 0) {
      // Disarm a random pending timer.
      const int victim = static_cast<int>(next() % kTimers);
      if (pending_stamp[static_cast<std::size_t>(victim)] != 0) {
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->second == victim) {
            model.erase(it);
            break;
          }
        }
        pending_stamp[static_cast<std::size_t>(victim)] = 0;
        sim.Disarm(timers[static_cast<std::size_t>(victim)]);
      }
    }
    if (round % 7 == 0) {
      sim.CheckInvariantsForTest();
    }
    // Advance in random hops, collecting expected firings from the model.
    const TimeNs hop = 1 + static_cast<TimeNs>(next() % 5000000);
    horizon += hop;
    while (!model.empty() && model.begin()->first.first <= horizon) {
      expected.push_back({model.begin()->first.first, model.begin()->second});
      pending_stamp[static_cast<std::size_t>(model.begin()->second)] = 0;
      model.erase(model.begin());
    }
    sim.RunUntil(horizon);
    ASSERT_EQ(fired.size(), expected.size()) << "round " << round;
  }
  EXPECT_EQ(fired, expected);
  sim.CheckInvariantsForTest();
}

}  // namespace
}  // namespace tableau
