#include <gtest/gtest.h>

#include <memory>

#include "src/hypervisor/machine.h"
#include "src/net/virtual_nic.h"
#include "src/rt/hyperperiod.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"
#include "src/workloads/stress.h"
#include "src/workloads/web.h"

namespace tableau {
namespace {

// A single-vCPU Tableau machine where the vCPU owns the whole core
// (dedicated reservation): a neutral stage for workload-model tests.
struct SoloMachine {
  SoloMachine() {
    TableauDispatcher::Config config;
    config.work_conserving = true;
    auto owned = std::make_unique<TableauScheduler>(config);
    scheduler = owned.get();
    MachineConfig machine_config;
    machine_config.num_cpus = 1;
    machine_config.cores_per_socket = 1;
    machine = std::make_unique<Machine>(machine_config, std::move(owned));
    vcpu = machine->AddVcpu(VcpuParams{});
    std::vector<std::vector<Allocation>> per_cpu = {{{0, 0, kHyperperiodNs}}};
    scheduler->PushTable(std::make_shared<SchedulingTable>(
        SchedulingTable::Build(kHyperperiodNs, std::move(per_cpu))));
  }
  std::unique_ptr<Machine> machine;
  TableauScheduler* scheduler;
  Vcpu* vcpu;
};

// ---------- WorkQueueGuest ----------

TEST(WorkQueueGuest, ExecutesPostedWorkInOrder) {
  SoloMachine solo;
  WorkQueueGuest guest(solo.machine.get(), solo.vcpu);
  std::vector<int> done;
  solo.machine->sim().ScheduleAt(0, [&] {
    guest.Post(kMillisecond, [&](TimeNs) { done.push_back(1); });
    guest.Post(2 * kMillisecond, [&](TimeNs) { done.push_back(2); });
    guest.Post(kMillisecond, [&](TimeNs) { done.push_back(3); });
  });
  solo.machine->Start();
  solo.machine->RunFor(100 * kMillisecond);
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(solo.vcpu->total_service(), 4 * kMillisecond);
  EXPECT_EQ(solo.vcpu->state(), VcpuState::kBlocked);
}

TEST(WorkQueueGuest, CompletionTimesReflectCpuTime) {
  SoloMachine solo;
  WorkQueueGuest guest(solo.machine.get(), solo.vcpu);
  TimeNs done_at = 0;
  solo.machine->sim().ScheduleAt(0, [&] {
    guest.Post(5 * kMillisecond, [&](TimeNs t) { done_at = t; });
  });
  solo.machine->Start();
  solo.machine->RunFor(100 * kMillisecond);
  // Dispatch latency (IPI + context switch) then 5 ms of compute.
  EXPECT_GE(done_at, 5 * kMillisecond);
  EXPECT_LT(done_at, 5 * kMillisecond + 100 * kMicrosecond);
}

TEST(WorkQueueGuest, PostFromCompletionHandler) {
  SoloMachine solo;
  WorkQueueGuest guest(solo.machine.get(), solo.vcpu);
  int chain = 0;
  std::function<void(TimeNs)> next = [&](TimeNs) {
    if (++chain < 5) {
      guest.Post(kMillisecond, next);
    }
  };
  solo.machine->sim().ScheduleAt(0, [&] { guest.Post(kMillisecond, next); });
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  EXPECT_EQ(chain, 5);
}

TEST(WorkQueueGuest, IdleBetweenBatches) {
  SoloMachine solo;
  WorkQueueGuest guest(solo.machine.get(), solo.vcpu);
  int done = 0;
  solo.machine->sim().ScheduleAt(0, [&] {
    guest.Post(kMillisecond, [&](TimeNs) { ++done; });
  });
  solo.machine->sim().ScheduleAt(50 * kMillisecond, [&] {
    guest.Post(kMillisecond, [&](TimeNs) { ++done; });
  });
  solo.machine->Start();
  solo.machine->RunFor(100 * kMillisecond);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(solo.vcpu->total_service(), 2 * kMillisecond);
}

// ---------- Stress workloads ----------

TEST(StressIo, IterationRateMatchesDutyCycle) {
  SoloMachine solo;
  StressIoWorkload::Config config;
  config.compute = 200 * kMicrosecond;
  config.io_wait = 300 * kMicrosecond;
  config.jitter = 0.0;
  StressIoWorkload stress(solo.machine.get(), solo.vcpu, config);
  stress.Start(0);
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  // ~2000 iterations/s at 500 us per cycle (minus dispatch latencies).
  EXPECT_GT(stress.iterations(), 1700u);
  EXPECT_LE(stress.iterations(), 2001u);
  // Duty cycle ~40%.
  EXPECT_NEAR(static_cast<double>(solo.vcpu->total_service()) / kSecond, 0.4, 0.05);
}

TEST(CpuHog, ConsumesWholeCore) {
  SoloMachine solo;
  CpuHogWorkload hog(solo.machine.get(), solo.vcpu);
  hog.Start(0);
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  EXPECT_GT(static_cast<double>(solo.vcpu->total_service()) / kSecond, 0.99);
}

TEST(SystemNoise, PostsBurstyWork) {
  SoloMachine solo;
  WorkQueueGuest guest(solo.machine.get(), solo.vcpu);
  SystemNoiseWorkload::Config config;
  SystemNoiseWorkload noise(solo.machine.get(), &guest, config);
  noise.Start(0);
  solo.machine->Start();
  solo.machine->RunFor(10 * kSecond);
  // ~100 bursts of 0.5-3 ms over 10 s at 50-150 ms intervals.
  const double share = static_cast<double>(solo.vcpu->total_service()) / (10.0 * kSecond);
  EXPECT_GT(share, 0.005);
  EXPECT_LT(share, 0.05);
}

// ---------- Virtual NIC ----------

TEST(VirtualNic, DrainsAtLineRate) {
  VirtualNic::Config config;
  config.bandwidth_bits_per_sec = 10e9;  // 1.25 B/ns.
  config.ring_bytes = 1 << 20;
  VirtualNic nic(config);
  EXPECT_EQ(nic.Enqueue(0, 125000), 125000);  // 125 KB = 100 us on the wire.
  EXPECT_EQ(nic.DrainCompleteTime(0), 100 * kMicrosecond);
  EXPECT_EQ(nic.QueuedBytes(50 * kMicrosecond), 62500);
  EXPECT_EQ(nic.QueuedBytes(100 * kMicrosecond), 0);
}

TEST(VirtualNic, EnqueueLimitedByRing) {
  VirtualNic::Config config;
  config.ring_bytes = 1000;
  VirtualNic nic(config);
  EXPECT_EQ(nic.Enqueue(0, 600), 600);
  EXPECT_EQ(nic.Enqueue(0, 600), 400);  // Only 400 left.
  EXPECT_EQ(nic.Enqueue(0, 600), 0);
}

TEST(VirtualNic, FreeSpaceRecoversOverTime) {
  VirtualNic::Config config;
  config.bandwidth_bits_per_sec = 8e9;  // 1 B/ns.
  config.ring_bytes = 1000;
  VirtualNic nic(config);
  nic.Enqueue(0, 1000);
  EXPECT_EQ(nic.FreeSpace(0), 0);
  EXPECT_EQ(nic.FreeSpace(400), 400);
  const TimeNs when = nic.TimeWhenFree(0, 700);
  EXPECT_EQ(when, 700);
  EXPECT_GE(nic.FreeSpace(when), 700);
}

TEST(VirtualNic, TimeWhenFreeIsNowIfAlreadyFree) {
  VirtualNic nic(VirtualNic::Config{});
  EXPECT_EQ(nic.TimeWhenFree(123, 1000), 123);
}

TEST(VirtualNic, TracksTotalBytes) {
  VirtualNic nic(VirtualNic::Config{});
  nic.Enqueue(0, 500);
  nic.Enqueue(1000, 700);
  EXPECT_EQ(nic.total_bytes_transmitted(), 1200);
}

// ---------- Ping ----------

TEST(Ping, IdleVmRespondsFast) {
  SoloMachine solo;
  WorkQueueGuest guest(solo.machine.get(), solo.vcpu);
  PingTraffic::Config config;
  config.threads = 2;
  config.pings_per_thread = 50;
  config.max_spacing = 5 * kMillisecond;
  PingTraffic ping(solo.machine.get(), &guest, config);
  ping.Start(0);
  solo.machine->Start();
  solo.machine->RunFor(2 * kSecond);
  EXPECT_EQ(ping.latencies().Count(), 100u);
  EXPECT_EQ(ping.outstanding(), 0);
  // RTT = 2 x 50 us network + ~20 us handling + dispatch costs.
  EXPECT_GT(ping.latencies().Min(), 100 * kMicrosecond);
  EXPECT_LT(ping.latencies().Max(), kMillisecond);
}

TEST(Ping, LatencyIncludesSchedulingDelay) {
  // Same pings, but the vantage VM only owns a 25% slot on its core
  // (capped): max RTT must stretch toward the table gap.
  TableauDispatcher::Config dispatcher_config;
  dispatcher_config.work_conserving = false;
  auto owned = std::make_unique<TableauScheduler>(dispatcher_config);
  TableauScheduler* scheduler = owned.get();
  MachineConfig machine_config;
  machine_config.num_cpus = 1;
  machine_config.cores_per_socket = 1;
  Machine machine(machine_config, std::move(owned));
  VcpuParams params;
  params.cap = 0.25;
  Vcpu* vcpu = machine.AddVcpu(params);
  // 25% slot at the head of each ~12.8 ms period.
  const TimeNs period = kHyperperiodNs / 8;
  std::vector<std::vector<Allocation>> per_cpu(1);
  for (TimeNs t = 0; t < kHyperperiodNs; t += period) {
    per_cpu[0].push_back({0, t, t + period / 4});
  }
  scheduler->PushTable(std::make_shared<SchedulingTable>(
      SchedulingTable::Build(kHyperperiodNs, std::move(per_cpu))));

  WorkQueueGuest guest(&machine, vcpu);
  PingTraffic::Config config;
  config.threads = 4;
  config.pings_per_thread = 200;
  config.max_spacing = 20 * kMillisecond;
  PingTraffic ping(&machine, &guest, config);
  ping.Start(0);
  machine.Start();
  machine.RunFor(5 * kSecond);
  EXPECT_EQ(ping.latencies().Count(), 800u);
  // Worst case: ping lands just after the slot ends -> waits ~9.6 ms.
  EXPECT_GT(ping.latencies().Max(), 5 * kMillisecond);
  EXPECT_LT(ping.latencies().Max(), 11 * kMillisecond);
}

// ---------- Web server ----------

TEST(Web, SingleRequestLatencyBreakdown) {
  SoloMachine solo;
  WebServerWorkload::Config config;
  config.file_bytes = 1024;
  WebServerWorkload server(solo.machine.get(), solo.vcpu, config);
  solo.machine->sim().ScheduleAt(0, [&] { server.RequestArrived(0); });
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  ASSERT_EQ(server.completed(), 1u);
  // base 150 us + 1 KiB copy + ~1.7 us wire + 50 us return delay + dispatch.
  EXPECT_GT(server.latencies().Max(), 195 * kMicrosecond);
  EXPECT_LT(server.latencies().Max(), 400 * kMicrosecond);
}

TEST(Web, ThroughputSaturatesAtCpuCapacity) {
  // 1 KiB requests cost ~150 us CPU -> a full core sustains ~6600 req/s.
  for (const double rate : {2000.0, 10000.0}) {
    SoloMachine solo;
    WebServerWorkload::Config config;
    config.file_bytes = 1024;
    WebServerWorkload server(solo.machine.get(), solo.vcpu, config);
    OpenLoopClient::Config client_config;
    client_config.requests_per_sec = rate;
    client_config.duration = 2 * kSecond;
    OpenLoopClient client(solo.machine.get(), &server, client_config);
    client.Start(0);
    solo.machine->Start();
    solo.machine->RunFor(2 * kSecond);  // Exactly the client's send window.
    const double throughput = static_cast<double>(server.completed()) / 2.0;
    if (rate < 6000) {
      EXPECT_NEAR(throughput, rate, rate * 0.02);
      EXPECT_LT(server.latencies().Percentile(0.99), 2 * kMillisecond);
    } else {
      EXPECT_LT(throughput, 7000);
      EXPECT_GT(throughput, 5500);
      // Overload: queueing delay dominates.
      EXPECT_GT(server.latencies().Max(), 100 * kMillisecond);
    }
  }
}

TEST(Web, LargeFileIsTransmissionBound) {
  // A 1 MiB response at the VF's 5 Gbit/s takes ~1.7 ms on the wire and
  // needs ring refills (ring = 256 KiB), so completion is NIC-, not CPU-,
  // dominated.
  SoloMachine solo;
  WebServerWorkload::Config config;
  config.file_bytes = 1 << 20;
  WebServerWorkload server(solo.machine.get(), solo.vcpu, config);
  solo.machine->sim().ScheduleAt(0, [&] { server.RequestArrived(0); });
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  ASSERT_EQ(server.completed(), 1u);
  const TimeNs wire_time = static_cast<TimeNs>((1 << 20) * 1.6);
  EXPECT_GT(server.latencies().Max(), wire_time);
  EXPECT_GE(server.nic().total_bytes_transmitted(), 1 << 20);
}

TEST(Web, CoordinatedOmissionAvoided) {
  // A long stall early in the run must show up in the latency of queued
  // requests (latency measured from intended send time, as wrk2 does).
  SoloMachine solo;
  WebServerWorkload::Config config;
  config.file_bytes = 1024;
  WebServerWorkload server(solo.machine.get(), solo.vcpu, config);
  // Burst of 100 requests all intended at ~t=0 (emulating a stall).
  solo.machine->sim().ScheduleAt(0, [&] {
    for (int i = 0; i < 100; ++i) {
      server.RequestArrived(i);
    }
  });
  solo.machine->Start();
  solo.machine->RunFor(kSecond);
  EXPECT_EQ(server.completed(), 100u);
  // The last request waited behind 99 x ~150 us.
  EXPECT_GT(server.latencies().Max(), 14 * kMillisecond);
}

}  // namespace
}  // namespace tableau
