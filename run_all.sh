#!/bin/sh
# Build, test, and regenerate every paper table/figure (see EXPERIMENTS.md).
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# Sanitizer pass: the whole test suite under ASan + UBSan (separate tree so
# the benchmark numbers above stay uninstrumented).
cmake -B build-asan -G Ninja -DTABLEAU_SANITIZE=ON
cmake --build build-asan
ctest --test-dir build-asan 2>&1 | tee -a test_output.txt

# Verification sweep (src/check): the differential-oracle suite under the
# sanitizers, the mutation self-test (planted scheduler bugs must be caught),
# and a fuzzer pass over a fixed seed range; any violation shrinks to a
# minimal reproducer under tests/repro/ for triage.
ctest --test-dir build-asan -L check --output-on-failure 2>&1 | tee -a test_output.txt
build-asan/tools/tableau_checkctl selftest
build-asan/tools/tableau_checkctl fuzz --seeds 0:20000 --shrink --repro-dir tests/repro
# Audit every table the planner-heavy benches emit (the uninstrumented bench
# loop below regenerates the JSON artifacts without the verification cost).
TABLEAU_VERIFY_TABLES=1 build-asan/bench/bench_fig3_table_generation_time
TABLEAU_VERIFY_TABLES=1 build-asan/bench/bench_fig4_table_size

# Engine microbenchmark first: writes BENCH_sim_engine.json (events/sec for
# the timer-wheel engine vs the legacy heap engine, parallel-harness timing).
build/bench/bench_sim_engine

# Bench smoke gate: on multi-core hosts the Fig 3 bench aborts if the
# parallel planner is slower than the serial one at the largest VM count
# (parallel.vms176.speedup < 1.0). Single-threaded hosts skip the gate.
export TABLEAU_BENCH_GATE=1
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt

# Observability smoke: export a traced Fig. 5-style scenario as Perfetto
# JSON, schema-check it, and prove metrics collection does not perturb the
# simulation (metrics-on and metrics-off traces must be bit-identical).
build/tools/tableau_tracedump --scheduler tableau --cpus 2 --seconds 0.2 \
    --validate --check-determinism --out tableau.perfetto.json

# Fleet smoke: a small deterministic multi-host run — serial, sharded,
# sharded-parallel, and repeat executions must produce byte-identical
# fingerprints and merged metrics (exits nonzero otherwise). The full
# 64-host BENCH_fleet.json artifact comes from the bench loop above.
build/tools/tableau_fleetctl run --hosts 4 --cpus 4 --slots 2 --vms 8 \
    --surge-vms 1 --surge-at-ms 100 --surge-factor 6 --seconds 0.5 \
    --check-determinism

# Adaptive reservations smoke: the elastic control loop must stay
# execution-mode deterministic, and the elastic-vs-static acceptance bench
# reruns with the TableVerifier auditing every table the resize loop
# installs (the bench loop above already produced BENCH_adaptive.json and
# gated elastic >= static packing at no SLO cost).
build/tools/tableau_adaptctl run --seconds 3 --vms 16 --check-determinism
TABLEAU_VERIFY_TABLES=1 build/bench/bench_adaptive
