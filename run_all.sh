#!/bin/sh
# Build, test, and regenerate every paper table/figure (see EXPERIMENTS.md).
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
