// Gang scheduling: a 2-vCPU parallel VM with barrier-synchronized phases on
// a 2-core Tableau host. Shows the co-scheduling post-processing pass
// (Sec. 5) in action: with the VM's two slots misaligned in time, every
// phase stalls until both members have had a slot; after the kPrefer pass
// aligns the slots, phases stream back to back and throughput multiplies.
//
//   $ ./examples/gang_scheduling
#include <cstdio>
#include <memory>

#include "src/core/coschedule.h"
#include "src/core/planner.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/gang.h"

using namespace tableau;

namespace {

std::uint64_t RunGang(const SchedulingTable& table, TimeNs duration) {
  TableauDispatcher::Config dispatcher;
  dispatcher.work_conserving = false;  // Isolate the table's alignment effect.
  auto owned = std::make_unique<TableauScheduler>(dispatcher);
  TableauScheduler* scheduler = owned.get();
  MachineConfig machine_config;
  machine_config.num_cpus = 2;
  machine_config.cores_per_socket = 2;
  Machine machine(machine_config, std::move(owned));
  VcpuParams params;
  params.cap = 0.25;
  std::vector<Vcpu*> members = {machine.AddVcpu(params), machine.AddVcpu(params)};
  scheduler->PushTable(std::make_shared<SchedulingTable>(table));

  GangWorkload::Config gang_config;
  gang_config.phase_cpu = 500 * kMicrosecond;
  GangWorkload gang(&machine, members, gang_config);
  gang.Start(0);
  machine.Start();
  machine.RunFor(duration);
  return gang.phases_completed();
}

}  // namespace

int main() {
  // Two gang members, one per core, each with a 25% / 20 ms reservation.
  PlannerConfig config;
  config.num_cpus = 2;
  const Planner planner(config);
  PlanResult plan = planner.Plan({{0, 0.25, 20 * kMillisecond},
                                  {1, 0.25, 20 * kMillisecond}});
  TABLEAU_CHECK(plan.success);

  // Deliberately misalign the two members' slots (half a period apart) to
  // show the worst case, then let the co-scheduling pass re-align them.
  std::vector<std::vector<Allocation>> per_core(2);
  per_core[0] = plan.table.cpu(0).allocations;
  per_core[1] = plan.table.cpu(1).allocations;
  const PeriodicTask& task1 = plan.core_tasks[1][0];
  for (Allocation& alloc : per_core[1]) {
    const TimeNs window = (alloc.start / task1.period) * task1.period;
    alloc.start = window + task1.period - alloc.Length();
    alloc.end = window + task1.period;
  }
  auto misaligned = per_core;

  const TimeNs overlap_before = PairOverlapNs(per_core, 0, 1);
  const CoscheduleStats stats =
      CoschedulePass(per_core, plan.core_tasks, {{0, 1, CoschedulePreference::kPrefer}},
                     plan.table.length());

  const SchedulingTable misaligned_table =
      SchedulingTable::Build(plan.table.length(), std::move(misaligned));
  const SchedulingTable aligned_table =
      SchedulingTable::Build(plan.table.length(), std::move(per_core));
  TABLEAU_CHECK(misaligned_table.Validate().empty());
  TABLEAU_CHECK(aligned_table.Validate().empty());

  std::printf("slot overlap between the two gang members:\n");
  std::printf("  misaligned table: %s per %s\n", FormatDuration(overlap_before).c_str(),
              FormatDuration(plan.table.length()).c_str());
  std::printf("  after kPrefer co-scheduling pass: %s (%d moves)\n",
              FormatDuration(stats.overlap_after).c_str(), stats.moves);

  const TimeNs duration = 10 * kSecond;
  const std::uint64_t phases_misaligned = RunGang(misaligned_table, duration);
  const std::uint64_t phases_aligned = RunGang(aligned_table, duration);
  std::printf("\ngang phases completed in %s (500 us compute per member per phase):\n",
              FormatDuration(duration).c_str());
  std::printf("  misaligned slots: %llu phases\n",
              static_cast<unsigned long long>(phases_misaligned));
  std::printf("  aligned slots:    %llu phases (%.1fx)\n",
              static_cast<unsigned long long>(phases_aligned),
              static_cast<double>(phases_aligned) /
                  static_cast<double>(phases_misaligned));
  std::printf(
      "\nBoth tables grant identical utilization and latency bounds; only the\n"
      "temporal alignment differs — exactly the knob the paper proposes leaving\n"
      "to table post-processing.\n");
  return 0;
}
