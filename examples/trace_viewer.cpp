// Trace viewer: runs a short high-density scenario with the event trace
// (xentrace analog) enabled, prints the most recent raw records, and renders
// a per-CPU Gantt chart reconstructed purely from the trace — showing the
// table-driven pattern of Tableau's dispatching at a glance.
//
//   $ ./examples/trace_viewer [credit|tableau]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "src/harness/scenario.h"
#include "src/workloads/stress.h"

using namespace tableau;

namespace {

void RenderGantt(const TraceBuffer& trace, int num_cpus, TimeNs from, TimeNs to) {
  constexpr int kColumns = 100;
  const double ns_per_column = static_cast<double>(to - from) / kColumns;
  std::printf("\nper-CPU Gantt from the trace [%s, %s), %s per column ('.' idle):\n",
              FormatDuration(from).c_str(), FormatDuration(to).c_str(),
              FormatDuration(static_cast<TimeNs>(ns_per_column)).c_str());

  // Reconstruct per-CPU occupancy from dispatch/deschedule/block/idle events.
  std::map<int, std::string> rows;
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    rows[cpu] = std::string(kColumns, '.');
  }
  std::map<int, std::pair<VcpuId, TimeNs>> running;  // cpu -> (vcpu, since).
  auto paint = [&](int cpu, VcpuId vcpu, TimeNs start, TimeNs end) {
    if (end <= from || start >= to) {
      return;
    }
    const int first =
        static_cast<int>(static_cast<double>(std::max(start, from) - from) / ns_per_column);
    const int last = std::min(
        kColumns - 1,
        static_cast<int>(static_cast<double>(std::min(end, to) - 1 - from) / ns_per_column));
    const char symbol =
        static_cast<char>(vcpu < 10 ? '0' + vcpu : 'a' + (vcpu - 10) % 26);
    for (int column = first; column <= last; ++column) {
      rows[cpu][static_cast<std::size_t>(column)] = symbol;
    }
  };
  trace.ForEach([&](const TraceRecord& record) {
    if (record.event == TraceEvent::kDispatch) {
      running[record.cpu] = {record.vcpu, record.time};
    } else if (record.event == TraceEvent::kDeschedule ||
               record.event == TraceEvent::kBlock) {
      const auto it = running.find(record.cpu);
      if (it != running.end() && it->second.first == record.vcpu) {
        paint(record.cpu, record.vcpu, it->second.second, record.time);
        running.erase(it);
      }
    }
  });
  for (const auto& [cpu, since] : running) {
    paint(cpu, since.first, since.second, to);
  }
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    std::printf("cpu%-2d |%s|\n", cpu, rows[cpu].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  SchedKind kind = SchedKind::kTableau;
  if (argc > 1 && std::strcmp(argv[1], "credit") == 0) {
    kind = SchedKind::kCredit;
  }

  ScenarioConfig config;
  config.scheduler = kind;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  config.capped = true;
  Scenario scenario = BuildScenario(config);
  scenario.machine->trace().set_enabled(true);

  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  for (std::size_t i = 0; i < scenario.vcpus.size(); ++i) {
    StressIoWorkload::Config stress_config;
    stress_config.seed = i + 1;
    stress.push_back(std::make_unique<StressIoWorkload>(scenario.machine,
                                                        scenario.vcpus[i], stress_config));
    stress.back()->Start(0);
  }
  scenario.machine->Start();
  scenario.machine->RunFor(300 * kMillisecond);

  const TraceBuffer& trace = scenario.machine->trace();
  std::printf("scheduler: %s; trace: %llu events recorded, %zu retained, %llu dropped\n",
              SchedKindName(kind), static_cast<unsigned long long>(trace.total_recorded()),
              trace.size(), static_cast<unsigned long long>(trace.dropped()));

  std::printf("\nlast 12 records:\n");
  std::vector<TraceRecord> all;
  trace.ForEach([&](const TraceRecord& record) { all.push_back(record); });
  for (std::size_t i = all.size() > 12 ? all.size() - 12 : 0; i < all.size(); ++i) {
    std::printf("  %s\n", TraceBuffer::Format(all[i]).c_str());
  }

  // Render the last ~26 ms (two Tableau table periods at the paper config).
  const TimeNs to = scenario.machine->Now();
  RenderGantt(trace, scenario.machine->num_cpus(), to - 26 * kMillisecond, to);

  std::printf("\nvCPU 0 service timeline (first 6 intervals in the window):\n");
  int shown = 0;
  for (const auto& interval : trace.ServiceTimeline(0)) {
    if (shown++ >= 6) {
      break;
    }
    std::printf("  [%s, %s) on cpu%d%s\n", FormatDuration(interval.start).c_str(),
                FormatDuration(interval.end).c_str(), interval.cpu,
                interval.second_level ? " (second-level)" : "");
  }
  if (kind == SchedKind::kTableau) {
    std::printf("\nNote the strict periodicity of the rows: that is the table.\n");
  }
  return 0;
}
