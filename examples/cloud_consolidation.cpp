// Cloud-consolidation scenario: a host running price-differentiated VM tiers
// (the provisioning model of Sec. 5), with VMs arriving and departing at
// runtime. Each reconfiguration invokes the planner and pushes a new table
// to the running dispatcher using the lock-free, time-synchronized switch
// protocol — guest service continues undisturbed throughout.
//
//   $ ./examples/cloud_consolidation
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "src/core/planner.h"
#include "src/harness/scenario.h"
#include "src/workloads/stress.h"

using namespace tableau;

namespace {

struct Tier {
  const char* name;
  double utilization;
  TimeNs latency_goal;
};

constexpr Tier kGold{"gold", 0.50, 5 * kMillisecond};
constexpr Tier kSilver{"silver", 0.25, 20 * kMillisecond};
constexpr Tier kBronze{"bronze", 0.10, 100 * kMillisecond};

struct Host {
  explicit Host(int cpus) : cpus(cpus) {
    TableauDispatcher::Config dispatcher;
    dispatcher.work_conserving = true;
    auto owned = std::make_unique<TableauScheduler>(dispatcher);
    scheduler = owned.get();
    MachineConfig machine_config;
    machine_config.num_cpus = cpus;
    machine_config.cores_per_socket = cpus / 2;
    machine = std::make_unique<Machine>(machine_config, std::move(owned));
  }

  // Admits a VM of the given tier; returns false if the planner rejects the
  // resulting configuration (admission control).
  bool Admit(const Tier& tier) {
    const VcpuId id = next_id++;
    pending.push_back({id, tier});
    if (!Replan()) {
      pending.pop_back();
      next_id--;
      return false;
    }
    // Materialize the vCPU and give it work.
    VcpuParams params;
    params.utilization = tier.utilization;
    params.latency_goal = tier.latency_goal;
    params.name = std::string(tier.name) + "-" + std::to_string(id);
    Vcpu* vcpu = machine->AddVcpu(params);
    StressIoWorkload::Config stress;
    stress.seed = static_cast<std::uint64_t>(id) + 1;
    workloads.push_back(std::make_unique<StressIoWorkload>(machine.get(), vcpu, stress));
    workloads.back()->Start(machine->Now());
    return true;
  }

  bool Replan() {
    PlannerConfig config;
    config.num_cpus = cpus;
    const Planner planner(config);
    std::vector<VcpuRequest> requests;
    for (const auto& [id, tier] : pending) {
      requests.push_back(VcpuRequest{id, tier.utilization, tier.latency_goal});
    }
    PlanResult plan = planner.Plan(requests);
    if (!plan.success) {
      std::printf("  admission REJECTED: %s\n", plan.error.c_str());
      return false;
    }
    std::printf("  planned %zu vCPUs (%s); table switch pending at %s\n",
                requests.size(), PlanMethodName(plan.method),
                FormatDuration(machine->Now()).c_str());
    scheduler->PushTable(std::make_shared<SchedulingTable>(std::move(plan.table)));
    last_plan = std::move(plan.vcpus);
    return true;
  }

  const int cpus;
  std::unique_ptr<Machine> machine;
  TableauScheduler* scheduler = nullptr;
  VcpuId next_id = 0;
  std::vector<std::pair<VcpuId, Tier>> pending;
  std::vector<std::unique_ptr<StressIoWorkload>> workloads;
  std::vector<VcpuPlan> last_plan;
};

}  // namespace

int main() {
  Host host(8);

  std::printf("== boot: admit 2 gold + 8 silver + 10 bronze (utilization %.2f/8 cores)\n",
              2 * 0.5 + 8 * 0.25 + 10 * 0.10);
  for (int i = 0; i < 2; ++i) {
    host.Admit(kGold);
  }
  for (int i = 0; i < 8; ++i) {
    host.Admit(kSilver);
  }
  for (int i = 0; i < 10; ++i) {
    host.Admit(kBronze);
  }
  host.machine->Start();
  host.machine->RunFor(kSecond);

  std::printf("\n== t=1s: a burst of 12 more bronze tenants arrives\n");
  int admitted = 0;
  for (int i = 0; i < 12; ++i) {
    if (host.Admit(kBronze)) {
      ++admitted;
    }
  }
  std::printf("  admitted %d of 12\n", admitted);
  host.machine->RunFor(kSecond);

  std::printf("\n== t=2s: try to admit 8 gold tenants (should hit admission control)\n");
  int gold_admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (host.Admit(kGold)) {
      ++gold_admitted;
    }
  }
  std::printf("  admitted %d of 8 gold\n", gold_admitted);
  host.machine->RunFor(2 * kSecond);

  std::printf("\n== final guarantees vs. delivery (4s wall, shares in %% of one core)\n");
  std::printf("%-12s %10s %10s %12s %12s\n", "vm", "reserved", "received", "goal",
              "table gap");
  std::map<VcpuId, const VcpuPlan*> plans;
  for (const VcpuPlan& plan : host.last_plan) {
    plans[plan.vcpu] = &plan;
  }
  for (const auto& vcpu : host.machine->vcpus()) {
    const VcpuPlan* plan = plans.at(vcpu->id());
    std::printf("%-12s %9.1f%% %9.1f%% %12s %12s\n", vcpu->params().name.c_str(),
                100.0 * vcpu->params().utilization,
                100.0 * static_cast<double>(vcpu->total_service()) /
                    static_cast<double>(host.machine->Now()),
                FormatDuration(plan->latency_goal).c_str(),
                FormatDuration(plan->blackout_bound).c_str());
  }
  std::printf("\n(received can exceed reserved: the second-level scheduler hands out\n"
              "idle cycles; it never falls below reserved while the VM has demand)\n");
  return 0;
}
