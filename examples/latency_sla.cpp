// Latency-SLA comparison: runs the same latency-sensitive VM (a ping
// responder with background system noise) under all four schedulers in the
// paper's high-density configuration and prints an SLA compliance table —
// the Sec. 7.3 experiment as a self-contained program.
//
//   $ ./examples/latency_sla
#include <cstdio>
#include <memory>
#include <vector>

#include "src/harness/scenario.h"
#include "src/workloads/ping.h"
#include "src/workloads/stress.h"

using namespace tableau;

namespace {

struct Row {
  const char* scheduler;
  double avg_ms;
  double p99_ms;
  double max_ms;
  bool meets_sla;
};

Row Measure(SchedKind kind, bool capped, TimeNs sla) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.guest_cpus = 4;
  config.cores_per_socket = 2;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);

  // Every VM runs occasional system-process noise; the vantage VM also
  // answers pings.
  std::vector<std::unique_ptr<WorkQueueGuest>> guests;
  std::vector<std::unique_ptr<SystemNoiseWorkload>> noise;
  for (std::size_t i = 0; i < scenario.vcpus.size(); ++i) {
    guests.push_back(
        std::make_unique<WorkQueueGuest>(scenario.machine, scenario.vcpus[i]));
    SystemNoiseWorkload::Config noise_config;
    noise_config.min_interval = 15 * kMillisecond;
    noise_config.max_interval = 45 * kMillisecond;
    noise_config.min_burst = 3 * kMillisecond;
    noise_config.max_burst = 8 * kMillisecond;
    noise_config.seed = i + 1;
    noise.push_back(std::make_unique<SystemNoiseWorkload>(scenario.machine,
                                                          guests.back().get(),
                                                          noise_config));
    noise.back()->Start(0);
  }

  PingTraffic::Config ping_config;
  ping_config.threads = 8;
  ping_config.pings_per_thread = 400;
  ping_config.max_spacing = 20 * kMillisecond;
  PingTraffic ping(scenario.machine, guests.front().get(), ping_config);
  ping.Start(0);

  scenario.machine->Start();
  scenario.machine->RunFor(6 * kSecond);

  Row row;
  row.scheduler = SchedKindName(kind);
  row.avg_ms = ToMs(static_cast<TimeNs>(ping.latencies().Mean()));
  row.p99_ms = ToMs(ping.latencies().Percentile(0.99));
  row.max_ms = ToMs(ping.latencies().Max());
  row.meets_sla = ping.latencies().Max() <= sla;
  return row;
}

}  // namespace

int main() {
  const TimeNs sla = 20 * kMillisecond;  // The reservation's latency goal.
  std::printf("Latency SLA check: 16 VMs on 4 cores, 25%% share each, %s goal.\n",
              FormatDuration(sla).c_str());
  std::printf("Every VM runs bursty system noise; the vantage VM answers pings.\n\n");

  for (const bool capped : {true, false}) {
    std::printf("--- %s VMs ---\n", capped ? "capped" : "uncapped");
    std::printf("%-10s %10s %10s %10s   %s\n", "scheduler", "avg(ms)", "p99(ms)",
                "max(ms)", "max <= goal?");
    std::vector<SchedKind> kinds =
        capped ? std::vector<SchedKind>{SchedKind::kCredit, SchedKind::kRtds,
                                        SchedKind::kTableau}
               : std::vector<SchedKind>{SchedKind::kCredit, SchedKind::kCredit2,
                                        SchedKind::kTableau};
    for (const SchedKind kind : kinds) {
      const Row row = Measure(kind, capped, sla);
      std::printf("%-10s %10.3f %10.2f %10.2f   %s\n", row.scheduler, row.avg_ms,
                  row.p99_ms, row.max_ms, row.meets_sla ? "yes" : "NO");
    }
    std::printf("\n");
  }
  std::printf(
      "Tableau's maximum is set by the table structure alone, so it holds the\n"
      "goal no matter what the co-located VMs do; the heuristic schedulers'\n"
      "maxima depend on background behaviour (Sec. 7.3).\n");
  return 0;
}
