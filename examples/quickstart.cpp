// Quickstart: plan a Tableau table for a small machine, inspect the
// guarantees, and run the simulated hypervisor for two seconds with a
// CPU-bound vantage VM and an I/O-intensive background load.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "src/core/planner.h"
#include "src/harness/scenario.h"
#include "src/workloads/stress.h"

using namespace tableau;

int main() {
  // 1. Plan: 4 cores, 16 vCPUs, each reserving 25% with a 20 ms latency goal.
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.guest_cpus = 4;
  config.cores_per_socket = 4;
  config.capped = false;
  Scenario scenario = BuildScenario(config);

  std::printf("planner method: %s\n", PlanMethodName(scenario.plan.method));
  std::printf("table length:   %s, serialized %zu bytes\n",
              FormatDuration(scenario.plan.table.length()).c_str(),
              scenario.plan.table.SerializedSizeBytes());
  const VcpuPlan& plan0 = scenario.plan.vcpus.front();
  std::printf("vCPU 0: C=%s T=%s  (U=%.3f requested %.3f), blackout bound %s\n",
              FormatDuration(plan0.cost).c_str(), FormatDuration(plan0.period).c_str(),
              plan0.effective_utilization, plan0.requested_utilization,
              FormatDuration(plan0.blackout_bound).c_str());
  std::printf("table-measured max blackout for vCPU 0: %s (goal %s)\n",
              FormatDuration(scenario.plan.table.MaxBlackout(0)).c_str(),
              FormatDuration(plan0.latency_goal).c_str());

  // 2. Run: vantage VM spins (redis-cli --intrinsic-latency style), the other
  //    15 VMs run an I/O-intensive stress loop.
  Machine& machine = *scenario.machine;
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload hog(&machine, scenario.vantage);
  hog.Start(0);

  std::vector<std::unique_ptr<StressIoWorkload>> background;
  for (std::size_t i = 1; i < scenario.vcpus.size(); ++i) {
    StressIoWorkload::Config stress;
    stress.seed = i;
    background.push_back(
        std::make_unique<StressIoWorkload>(&machine, scenario.vcpus[i], stress));
    background.back()->Start(0);
  }

  machine.Start();
  machine.RunFor(2 * kSecond);

  // 3. Report.
  const Histogram& gaps = scenario.vantage->service_gaps();
  std::printf("\nafter 2s simulated:\n");
  std::printf("vantage service: %s (%.1f%% of wall time)\n",
              FormatDuration(scenario.vantage->total_service()).c_str(),
              100.0 * ToSec(scenario.vantage->total_service()) / 2.0);
  std::printf("vantage scheduling gaps: mean %s  p99 %s  max %s  (n=%llu)\n",
              FormatDuration(static_cast<TimeNs>(gaps.Mean())).c_str(),
              FormatDuration(gaps.Percentile(0.99)).c_str(),
              FormatDuration(gaps.Max()).c_str(),
              static_cast<unsigned long long>(gaps.Count()));
  std::printf("second-level share of vantage dispatches: %.1f%%\n",
              100.0 * machine.SecondLevelFraction(scenario.vantage->id()));
  std::printf("mean schedule overhead: %.2fus over %llu invocations\n",
              ToUs(static_cast<TimeNs>(machine.op_stats().Of(SchedOp::kSchedule).Mean())),
              static_cast<unsigned long long>(machine.schedule_invocations()));
  return 0;
}
