// Table inspector: plans a configuration given on the command line and
// renders the resulting scheduling table as an ASCII timeline, together with
// per-vCPU guarantee and structure statistics. Useful for understanding what
// the planner actually builds.
//
//   $ ./examples/table_inspector                 # default: 12 vCPUs / 4 cores
//   $ ./examples/table_inspector 4 0.6:40 0.6:40 0.6:40   # cores then U:L(ms) specs
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/planner.h"

using namespace tableau;

namespace {

void RenderTimeline(const SchedulingTable& table) {
  constexpr int kColumns = 96;
  const double ns_per_column =
      static_cast<double>(table.length()) / static_cast<double>(kColumns);
  std::printf("\ntimeline (one row per pCPU, %s per column; '.' = idle)\n",
              FormatDuration(static_cast<TimeNs>(ns_per_column)).c_str());
  for (int cpu = 0; cpu < table.num_cpus(); ++cpu) {
    std::string row(kColumns, '.');
    for (const Allocation& alloc : table.cpu(cpu).allocations) {
      const int first = static_cast<int>(static_cast<double>(alloc.start) / ns_per_column);
      int last = static_cast<int>(static_cast<double>(alloc.end - 1) / ns_per_column);
      last = std::min(last, kColumns - 1);
      const char symbol = static_cast<char>(
          alloc.vcpu < 10 ? '0' + alloc.vcpu : 'a' + (alloc.vcpu - 10) % 26);
      for (int column = first; column <= last; ++column) {
        row[static_cast<std::size_t>(column)] = symbol;
      }
    }
    std::printf("cpu%-2d |%s|\n", cpu, row.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int cores = 4;
  std::vector<VcpuRequest> requests;
  if (argc >= 3) {
    cores = std::atoi(argv[1]);
    for (int arg = 2; arg < argc; ++arg) {
      double utilization = 0;
      double latency_ms = 0;
      if (std::sscanf(argv[arg], "%lf:%lf", &utilization, &latency_ms) != 2) {
        std::fprintf(stderr, "bad spec '%s'; expected U:L_ms (e.g. 0.25:20)\n",
                     argv[arg]);
        return 1;
      }
      requests.push_back(VcpuRequest{static_cast<VcpuId>(requests.size()), utilization,
                                     static_cast<TimeNs>(latency_ms * kMillisecond)});
    }
  } else {
    // Default: a mixed configuration that exercises different periods.
    for (int i = 0; i < 2; ++i) {
      requests.push_back({static_cast<VcpuId>(requests.size()), 0.5, 10 * kMillisecond});
    }
    for (int i = 0; i < 4; ++i) {
      requests.push_back({static_cast<VcpuId>(requests.size()), 0.25, 30 * kMillisecond});
    }
    for (int i = 0; i < 6; ++i) {
      requests.push_back(
          {static_cast<VcpuId>(requests.size()), 0.10, 100 * kMillisecond});
    }
  }

  PlannerConfig config;
  config.num_cpus = cores;
  const Planner planner(config);
  const PlanResult plan = planner.Plan(requests);
  if (!plan.success) {
    std::fprintf(stderr, "planner failed: %s\n", plan.error.c_str());
    return 1;
  }

  std::printf("method: %s, table length %s, serialized %zu bytes\n",
              PlanMethodName(plan.method), FormatDuration(plan.table.length()).c_str(),
              plan.table.SerializedSizeBytes());

  std::printf("\n%-5s %8s %12s %12s %12s %12s %12s %6s\n", "vcpu", "U", "C", "T",
              "2(T-C) bound", "E[wait]", "max wait", "split");
  for (const VcpuPlan& vcpu : plan.vcpus) {
    const LatencyProfile profile = AnalyzeWakeupLatency(plan.table, vcpu.vcpu);
    std::printf("%-5d %7.2f%% %12s %12s %12s %12s %12s %6s\n", vcpu.vcpu,
                100.0 * vcpu.requested_utilization, FormatDuration(vcpu.cost).c_str(),
                FormatDuration(vcpu.period).c_str(),
                FormatDuration(vcpu.blackout_bound).c_str(),
                FormatDuration(profile.mean).c_str(),
                FormatDuration(profile.max).c_str(), vcpu.split ? "yes" : "no");
  }

  std::printf("\nper-pCPU structure:\n");
  for (int cpu = 0; cpu < plan.table.num_cpus(); ++cpu) {
    const CpuTable& cpu_table = plan.table.cpu(cpu);
    TimeNs busy = 0;
    for (const Allocation& alloc : cpu_table.allocations) {
      busy += alloc.Length();
    }
    std::printf("cpu%-2d: %3zu allocations, %4zu slices of %s, %5.1f%% reserved\n", cpu,
                cpu_table.allocations.size(), cpu_table.num_slices(),
                FormatDuration(cpu_table.slice_length).c_str(),
                100.0 * static_cast<double>(busy) /
                    static_cast<double>(plan.table.length()));
  }

  RenderTimeline(plan.table);
  return 0;
}
