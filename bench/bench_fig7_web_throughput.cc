// Reproduces Fig. 7: nginx-style HTTPS latency-vs-throughput curves for
// capped (rows 1-3) and uncapped (rows 4-6) scenarios, serving 1 KiB,
// 100 KiB, and 1 MiB files with an I/O-intensive background workload, under
// Credit + RTDS + Tableau (capped) and Credit + Credit2 + Tableau (uncapped).
// Also reproduces the Sec. 7.4 decision trace: the fraction of the vantage
// VM's dispatches made by the second-level scheduler in the uncapped run.
//
// Paper claims to check (shape, not absolute numbers):
//  - 1 KiB / 100 KiB capped: Tableau reaches the highest SLA-aware peak
//    (e.g. ~1,600 req/s vs RTDS ~1,000 at a 100 ms p99 SLA for 1 KiB);
//    Tableau's mean latency is higher at low rates but stays flat.
//  - 1 MiB capped: Credit beats Tableau (rigid slots leave the NIC idle
//    during blackouts; Sec. 7.5).
//  - uncapped: Tableau sustains the highest throughput for all sizes; its
//    second-level scheduler contributes >85% of vantage dispatches near
//    saturation; the 1 MiB penalty disappears.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/telemetry.h"
#include "src/workloads/web.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct WebPoint {
  double throughput;
  double mean_ms;
  double p99_ms;
  double max_ms;
  double second_level_fraction;
  // Per-point SLO tracking against the bench's 100 ms p99 SLA, plus the mean
  // causal split of request latency between CPU service and table
  // blackout/preemption time (Sec. 7.5's NIC-idle effect shows up here).
  double slo_attainment;
  double service_mean_ms;
  double stall_mean_ms;  // blackout + preempt + queue + slip
};

WebPoint MeasureWeb(SchedKind kind, bool capped, std::int64_t file_bytes, double rate,
                    TimeNs duration, Background bg = Background::kIoHeavy) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);

  // Per-point SLO/attribution telemetry. No per-vCPU window series (the load
  // grid has 108 cells; scalar verdicts are what the artifact keeps).
  obs::Telemetry::Config telemetry_config;
  telemetry_config.window_ns = 50 * kMillisecond;
  telemetry_config.max_vcpu_series = 0;
  telemetry_config.slo.target_latency_ns = 100 * kMillisecond;
  telemetry_config.slo.target_quantile = 0.99;
  telemetry_config.slo.miss_budget = 0.01;
  obs::Telemetry telemetry(telemetry_config);
  AttachTelemetry(scenario, &telemetry);

  WebServerWorkload::Config web_config;
  web_config.file_bytes = file_bytes;
  WebServerWorkload server(scenario.machine, scenario.vantage, web_config);
  server.AttachTelemetry(&telemetry);
  OpenLoopClient::Config client_config;
  client_config.requests_per_sec = rate;
  client_config.duration = duration;
  OpenLoopClient client(scenario.machine, &server, client_config);
  client.Start(0);

  BackgroundWorkloads background;
  AttachBackground(scenario, bg, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);

  WebPoint point;
  point.throughput = static_cast<double>(server.completed()) / ToSec(duration);
  point.mean_ms = ToMs(static_cast<TimeNs>(server.latencies().Mean()));
  point.p99_ms = ToMs(server.latencies().Percentile(0.99));
  point.max_ms = ToMs(server.latencies().Max());
  point.second_level_fraction =
      scenario.machine->SecondLevelFraction(scenario.vantage->id());
  point.slo_attainment = telemetry.slo().VerdictFor(0).attainment;
  const auto mean_ms = [&](obs::LatencyComponent c) {
    return ToMs(static_cast<TimeNs>(telemetry.AttributionHistogram(0, c).Mean()));
  };
  point.service_mean_ms = mean_ms(obs::LatencyComponent::kService);
  point.stall_mean_ms = mean_ms(obs::LatencyComponent::kBlackout) +
                        mean_ms(obs::LatencyComponent::kPreempt) +
                        mean_ms(obs::LatencyComponent::kWakeQueue) +
                        mean_ms(obs::LatencyComponent::kSwitchSlip);
  RecordScenarioMetrics(scenario);
  return point;
}

void RunPanel(const char* title, const char* prefix, bool capped, std::int64_t file_bytes,
              const std::vector<double>& rates, const std::vector<SchedKind>& kinds,
              TimeNs duration, BenchJson& json, Background bg = Background::kIoHeavy) {
  // The full (scheduler, rate) load grid is embarrassingly parallel; merge
  // back by index so the curve prints in sweep order.
  std::vector<std::function<WebPoint()>> tasks;
  for (const SchedKind kind : kinds) {
    for (const double rate : rates) {
      tasks.push_back(
          [=] { return MeasureWeb(kind, capped, file_bytes, rate, duration, bg); });
    }
  }
  const std::vector<WebPoint> points = RunSimulations(tasks);

  PrintHeader(title);
  std::printf("%-10s %8s %10s %10s %10s %10s\n", "sched", "rate", "tput", "mean(ms)",
              "p99(ms)", "max(ms)");
  for (std::size_t row = 0; row < kinds.size(); ++row) {
    const SchedKind kind = kinds[row];
    double sla_peak = 0;
    for (std::size_t col = 0; col < rates.size(); ++col) {
      const WebPoint& point = points[row * rates.size() + col];
      std::printf("%-10s %8.0f %10.1f %10.2f %10.2f %10.2f\n", SchedKindName(kind),
                  rates[col], point.throughput, point.mean_ms, point.p99_ms,
                  point.max_ms);
      if (point.p99_ms < 100.0 && point.throughput > sla_peak) {
        sla_peak = point.throughput;
      }
      const std::string cell = std::string(prefix) + "." + SchedKindName(kind) +
                               ".r" + std::to_string(static_cast<int>(rates[col]));
      json.Add(cell + ".slo_attainment", point.slo_attainment);
      json.Add(cell + ".attr_service_mean_ms", point.service_mean_ms);
      json.Add(cell + ".attr_stall_mean_ms", point.stall_mean_ms);
    }
    std::printf("%-10s SLA-aware peak (p99 <= 100 ms): %.0f req/s\n",
                SchedKindName(kind), sla_peak);
    json.Add(std::string(prefix) + "." + SchedKindName(kind) + ".sla_peak_rps",
             sla_peak);
  }
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(4 * kSecond);
  BenchJson json("fig7_web_throughput");

  const std::vector<SchedKind> capped_kinds = {SchedKind::kCredit, SchedKind::kRtds,
                                               SchedKind::kTableau};
  const std::vector<SchedKind> uncapped_kinds = {SchedKind::kCredit, SchedKind::kCredit2,
                                                 SchedKind::kTableau};

  const std::vector<double> rates_1k = {400, 800, 1200, 1500, 1700, 1900};
  const std::vector<double> rates_100k = {300, 600, 900, 1200, 1450, 1650};
  const std::vector<double> rates_1m = {40, 100, 160, 240, 320, 420};

  RunPanel("Fig 7(a-c): capped, 1 KiB files, I/O background", "capped_1k", true, 1 << 10,
           rates_1k, capped_kinds, duration, json);
  RunPanel("Fig 7(d-f): capped, 100 KiB files, I/O background", "capped_100k", true,
           100 << 10, rates_100k, capped_kinds, duration, json);
  RunPanel("Fig 7(g-i): capped, 1 MiB files, I/O background", "capped_1m", true, 1 << 20,
           rates_1m, capped_kinds, duration, json);
  std::printf(
      "\npaper (capped): Tableau has the highest SLA-aware peak for 1 KiB and\n"
      "100 KiB (e.g. 1,600 vs RTDS 1,000 req/s at p99 <= 100 ms for 1 KiB) with a\n"
      "higher but flat mean; for 1 MiB, Credit beats Tableau (Sec. 7.5 NIC-burst\n"
      "effect).\n");

  RunPanel("Fig 7(j-l): uncapped, 1 KiB files, I/O background", "uncapped_1k", false,
           1 << 10, rates_1k, uncapped_kinds, duration, json);
  RunPanel("Fig 7(m-o): uncapped, 100 KiB files, I/O background", "uncapped_100k", false,
           100 << 10, rates_100k, uncapped_kinds, duration, json);
  RunPanel("Fig 7(p-r): uncapped, 1 MiB files, I/O background", "uncapped_1m", false,
           1 << 20, rates_1m, uncapped_kinds, duration, json);
  std::printf(
      "\npaper (uncapped): Tableau sustains the highest peak for all sizes (~60%%\n"
      "more than Credit2 at 100 KiB); the capped 1 MiB penalty disappears thanks\n"
      "to the second-level scheduler.\n");

  // Sec. 7.4 decision-source trace at a rate only the uncapped configuration
  // sustains.
  const WebPoint trace =
      MeasureWeb(SchedKind::kTableau, /*capped=*/false, 100 << 10, 700, duration);
  std::printf(
      "\nSec 7.4 trace: at 700 req/s (100 KiB, uncapped), %.1f%% of the vantage\n"
      "VM's dispatches came from the second-level scheduler (paper: >85%%).\n",
      100.0 * trace.second_level_fraction);
  json.Add("second_level_fraction", trace.second_level_fraction);
  json.Write();
  return 0;
}
