// Ablation: incremental per-core replanning and plan caching — the two
// Sec. 7.1 reconfiguration-time optimizations ("tables can be incrementally
// re-computed on a per-core basis"; "centrally cache tables for common
// configurations"). Measures reconfiguration latency for a single-VM
// arrival against a full replan, across machine sizes, plus cache hits for
// a tiered fleet.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/plan_cache.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

std::vector<VcpuRequest> UniformRequests(int count, TimeNs latency, int first_id = 0) {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < count; ++i) {
    requests.push_back(VcpuRequest{first_id + i, 0.25, latency});
  }
  return requests;
}

double MeasureMs(const std::function<void()>& fn, int runs) {
  const auto start = std::chrono::steady_clock::now();
  for (int run = 0; run < runs; ++run) {
    fn();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / runs;
}

}  // namespace

int main() {
  PrintHeader("Ablation: incremental replanning vs full replan (one VM arrives)");
  std::printf("%6s %6s %14s %14s %10s\n", "cores", "VMs", "full (ms)", "incr (ms)",
              "speedup");
  for (const int cores : {8, 16, 44}) {
    for (const TimeNs latency : {kMillisecond, 20 * kMillisecond}) {
      const int vms = cores * 4 - 2;  // Leave room for the arrival.
      PlannerConfig config;
      config.num_cpus = cores;
      const Planner planner(config);
      const PlanResult base =
          planner.Solve(PlanRequest::Full(UniformRequests(vms, latency)));
      TABLEAU_CHECK(base.success);
      const auto arrival = UniformRequests(1, latency, vms);

      const double full_ms = MeasureMs(
          [&] {
            std::vector<VcpuRequest> all = base.requests;
            all.push_back(arrival[0]);
            TABLEAU_CHECK(planner.Solve(PlanRequest::Full(all)).success);
          },
          10);
      const double incr_ms = MeasureMs(
          [&] {
            TABLEAU_CHECK(
                planner.Solve(PlanRequest::Delta(base, arrival)).success);
          },
          10);
      std::printf("%6d %6d %11.3f %s %11.3f %s %9.1fx\n", cores, vms, full_ms,
                  latency == kMillisecond ? "(1ms) " : "(20ms)", incr_ms,
                  latency == kMillisecond ? "(1ms) " : "(20ms)", full_ms / incr_ms);
    }
  }

  PrintHeader("Ablation: plan cache over a tiered fleet");
  PlannerConfig config;
  config.num_cpus = 12;
  PlanCache cache(config, /*capacity=*/16);
  // A fleet repeatedly provisioning hosts from 4 standard shapes.
  const std::vector<std::vector<VcpuRequest>> shapes = {
      UniformRequests(48, 20 * kMillisecond),
      UniformRequests(24, 30 * kMillisecond),
      UniformRequests(12, 60 * kMillisecond),
      UniformRequests(36, 10 * kMillisecond),
  };
  const double cold_ms = MeasureMs([&] { cache.GetOrPlan(shapes[0]); }, 1);
  const double mixed_ms = MeasureMs(
      [&] {
        for (const auto& shape : shapes) {
          TABLEAU_CHECK(cache.GetOrPlan(shape).success);
        }
      },
      25);
  std::printf("first plan (cold): %.3f ms; steady-state per-host plan: %.3f ms\n",
              cold_ms, mixed_ms / 4);
  std::printf("cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  return 0;
}
