// Ablation: the peephole reordering pass (Sec. 5 "Post-processing" suggests
// it; future work in the paper, implemented here). Plans mixed-tier
// workloads with and without the pass and reports table fragmentation, then
// runs both tables under the simulated hypervisor and reports the measured
// context-switch counts — the runtime cost the pass removes.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

std::vector<VcpuRequest> MixedTiers(int scale) {
  std::vector<VcpuRequest> requests;
  int id = 0;
  for (int i = 0; i < 2 * scale; ++i) {
    requests.push_back({id++, 0.5, 10 * kMillisecond});
  }
  for (int i = 0; i < 4 * scale; ++i) {
    requests.push_back({id++, 0.25, 30 * kMillisecond});
  }
  for (int i = 0; i < 6 * scale; ++i) {
    requests.push_back({id++, 0.10, 100 * kMillisecond});
  }
  return requests;
}

struct RunStats {
  std::size_t allocations = 0;
  std::size_t table_bytes = 0;
  std::uint64_t context_switches = 0;
};

RunStats Measure(bool peephole, int cores, TimeNs duration) {
  PlannerConfig config;
  config.num_cpus = cores;
  config.peephole_pass = peephole;
  const Planner planner(config);
  PlanResult plan = planner.Solve(PlanRequest::Full(MixedTiers(cores / 4)));
  TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());

  RunStats stats;
  for (int c = 0; c < cores; ++c) {
    stats.allocations += plan.table.cpu(c).allocations.size();
  }
  stats.table_bytes = plan.table.SerializedSizeBytes();

  // Run the table with every VM CPU-bound (so the dispatcher enacts the
  // table verbatim) and count real context switches.
  TableauDispatcher::Config dispatcher;
  dispatcher.work_conserving = false;
  auto owned = std::make_unique<TableauScheduler>(dispatcher);
  TableauScheduler* scheduler = owned.get();
  MachineConfig machine_config;
  machine_config.num_cpus = cores;
  machine_config.cores_per_socket = cores;
  Machine machine(machine_config, std::move(owned));
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
  for (const VcpuPlan& vcpu : plan.vcpus) {
    VcpuParams params;
    params.cap = vcpu.requested_utilization;
    params.utilization = vcpu.requested_utilization;
    params.latency_goal = vcpu.latency_goal;
    Vcpu* v = machine.AddVcpu(params);
    hogs.push_back(std::make_unique<CpuHogWorkload>(&machine, v));
    hogs.back()->Start(0);
  }
  scheduler->PushTable(std::make_shared<SchedulingTable>(std::move(plan.table)));
  machine.Start();
  machine.RunFor(duration);
  stats.context_switches = machine.context_switches();
  return stats;
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(5 * kSecond);
  PrintHeader("Ablation: peephole pass (mixed tiers, capped CPU hogs)");
  std::printf("%6s %-10s %8s %12s %16s\n", "cores", "peephole", "allocs", "table bytes",
              "ctx switches/s");
  for (const int cores : {4, 8, 12}) {
    for (const bool peephole : {false, true}) {
      const RunStats stats = Measure(peephole, cores, duration);
      std::printf("%6d %-10s %8zu %12zu %16.0f\n", cores, peephole ? "on" : "off",
                  stats.allocations, stats.table_bytes,
                  static_cast<double>(stats.context_switches) / ToSec(duration));
    }
  }
  std::printf(
      "\ninterpretation: defragmenting jobs within their period windows removes\n"
      "preemptions from the table, which shows up directly as fewer runtime\n"
      "context switches at identical guarantees.\n");
  return 0;
}
