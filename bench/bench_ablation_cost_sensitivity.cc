// Ablation: sensitivity of Table 1's qualitative result to the calibrated
// cost constants. The absolute overhead values in Tables 1-2 depend on the
// primitive costs in OverheadCosts (DESIGN.md "Overhead model"); this bench
// scales all primitives by 0.5x / 1x / 2x and re-measures. The claim to
// check is that the *orderings* — Tableau cheapest everywhere, Credit's
// schedule op the most expensive, RTDS's migrate the worst — survive the
// scaling, i.e. the paper's conclusions do not hinge on the calibration
// point.
#include <cstdio>

#include "bench/bench_util.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

OverheadCosts Scaled(double factor) {
  OverheadCosts costs;
  auto scale = [factor](TimeNs value) {
    return static_cast<TimeNs>(static_cast<double>(value) * factor);
  };
  costs.sched_entry = scale(costs.sched_entry);
  costs.wakeup_entry = scale(costs.wakeup_entry);
  costs.cache_local = scale(costs.cache_local);
  costs.cache_same_socket = scale(costs.cache_same_socket);
  costs.cache_remote_socket = scale(costs.cache_remote_socket);
  costs.lock_base = scale(costs.lock_base);
  costs.runq_entry = scale(costs.runq_entry);
  costs.timer_program = scale(costs.timer_program);
  costs.ipi_send = scale(costs.ipi_send);
  costs.ipi_latency = scale(costs.ipi_latency);
  costs.context_switch = scale(costs.context_switch);
  return costs;
}

struct Row {
  double schedule_us;
  double migrate_us;
};

Row Measure(SchedKind kind, const OverheadCosts& costs, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = (kind != SchedKind::kCredit2);
  config.costs = costs;
  Scenario scenario = BuildScenario(config);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 0, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  const OpStats& stats = scenario.machine->op_stats();
  return Row{ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kSchedule).Mean())),
             ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kMigrate).Mean()))};
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(5 * kSecond);
  PrintHeader("Ablation: cost-model sensitivity (16-core scenario, I/O stress)");
  const SchedKind kinds[] = {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kRtds,
                             SchedKind::kTableau};
  for (const double factor : {0.5, 1.0, 2.0}) {
    const OverheadCosts costs = Scaled(factor);
    std::printf("\nprimitive costs x%.1f:\n", factor);
    std::printf("%-10s %14s %14s\n", "", "Schedule (us)", "Migrate (us)");
    double schedule[4];
    double migrate[4];
    for (int i = 0; i < 4; ++i) {
      const Row row = Measure(kinds[i], costs, duration);
      schedule[i] = row.schedule_us;
      migrate[i] = row.migrate_us;
      std::printf("%-10s %14.2f %14.2f\n", SchedKindName(kinds[i]), row.schedule_us,
                  row.migrate_us);
    }
    const bool tableau_cheapest_schedule =
        schedule[3] < schedule[0] && schedule[3] < schedule[1] && schedule[3] < schedule[2];
    const bool credit_most_expensive_schedule =
        schedule[0] > schedule[1] && schedule[0] > schedule[2];
    const bool rtds_worst_migrate = migrate[2] > migrate[0] && migrate[2] > migrate[1];
    std::printf("orderings hold: Tableau cheapest=%s, Credit schedule top=%s, "
                "RTDS migrate worst=%s\n",
                tableau_cheapest_schedule ? "yes" : "NO",
                credit_most_expensive_schedule ? "yes" : "NO",
                rtds_worst_migrate ? "yes" : "NO");
  }
  return 0;
}
