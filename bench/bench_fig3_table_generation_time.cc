// Reproduces Fig. 3: table-generation time as a function of the number of
// VMs, for per-VM latency goals of 1 ms, 30 ms, 60 ms, and 100 ms, planned
// for the 48-core server (44 guest cores, up to 4 VMs per core).
//
// The paper's Python/SchedCAT planner peaks below two seconds at 176 VMs;
// this C++ planner is orders of magnitude faster (one of the optimizations
// the paper itself suggests in Sec. 7.1: "a low-level language such as C can
// be used to reduce language runtime overhead"). The claim preserved is the
// shape: time grows with the VM count and is largest for the 1 ms goal,
// whose short periods generate the most table slots.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

double MeanPlanMillis(int num_vms, TimeNs latency_goal, int runs) {
  PlannerConfig config;
  config.num_cpus = 44;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, 0.25, latency_goal});
  }
  double total_ms = 0;
  for (int run = 0; run < runs; ++run) {
    const auto start = std::chrono::steady_clock::now();
    const PlanResult plan = planner.Plan(requests);
    const auto end = std::chrono::steady_clock::now();
    TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());
    total_ms += std::chrono::duration<double, std::milli>(end - start).count();
  }
  return total_ms / runs;
}

}  // namespace

int main() {
  PrintHeader("Fig 3: table-generation time vs number of VMs (44 guest cores)");
  const TimeNs goals[] = {kMillisecond, 30 * kMillisecond, 60 * kMillisecond,
                          100 * kMillisecond};
  const int vm_counts[] = {16, 32, 64, 96, 128, 160, 176};
  const int runs = 20;

  std::printf("%6s %12s %12s %12s %12s\n", "VMs", "1ms (ms)", "30ms (ms)", "60ms (ms)",
              "100ms (ms)");
  for (const int vms : vm_counts) {
    std::printf("%6d", vms);
    for (const TimeNs goal : goals) {
      std::printf(" %12.3f", MeanPlanMillis(vms, goal, runs));
    }
    std::printf("\n");
  }
  std::printf("\npaper: Python/SchedCAT planner stays below 2,000 ms at 176 VMs;\n");
  std::printf("shape to check: monotone growth in VM count, 1 ms goal the slowest.\n");
  return 0;
}
