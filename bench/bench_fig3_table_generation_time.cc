// Reproduces Fig. 3: table-generation time as a function of the number of
// VMs, for per-VM latency goals of 1 ms, 30 ms, 60 ms, and 100 ms, planned
// for the 48-core server (44 guest cores, up to 4 VMs per core).
//
// The paper's Python/SchedCAT planner peaks below two seconds at 176 VMs;
// this C++ planner is orders of magnitude faster (one of the optimizations
// the paper itself suggests in Sec. 7.1: "a low-level language such as C can
// be used to reduce language runtime overhead"). The claim preserved is the
// shape: time grows with the VM count and is largest for the 1 ms goal,
// whose short periods generate the most table slots.
//
// A second section compares the serial planner against the parallel
// pipeline (PlannerConfig::num_threads) and checks that the parallel plan
// serializes byte-identically to the serial one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

std::vector<VcpuRequest> MakeRequests(int num_vms, TimeNs latency_goal) {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, 0.25, latency_goal});
  }
  return requests;
}

struct PlanTiming {
  double mean_ms = 0;
  std::vector<std::uint8_t> table_bytes;  // Serialized table of the last run.
  AdmissionBreakdown admission;           // Accumulated over all runs.
};

PlanTiming TimePlans(int num_vms, TimeNs latency_goal, int runs, int threads) {
  // Phase timings (planner.partition_ns, planner.edf_core_sim_ns, ...) and
  // per-worker pool gauges land in the shared bench accumulator and are
  // embedded in BENCH_fig3_table_generation_time.json.
  obs::MetricsRegistry registry;
  PlannerConfig config;
  config.num_cpus = 44;
  config.num_threads = threads;
  config.metrics = &registry;
  const Planner planner(config);
  const std::vector<VcpuRequest> requests = MakeRequests(num_vms, latency_goal);
  PlanTiming timing;
  double total_ms = 0;
  for (int run = 0; run < runs; ++run) {
    const auto start = std::chrono::steady_clock::now();
    const PlanResult plan = planner.Solve(PlanRequest::Full(requests));
    const auto end = std::chrono::steady_clock::now();
    TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());
    total_ms += std::chrono::duration<double, std::milli>(end - start).count();
    timing.admission.utilization += plan.admission.utilization;
    timing.admission.density += plan.admission.density;
    timing.admission.qpa += plan.admission.qpa;
    timing.admission.simulation += plan.admission.simulation;
    if (run == runs - 1) {
      timing.table_bytes = plan.table.Serialize();
    }
  }
  timing.mean_ms = total_ms / runs;
  RecordRegistryMetrics(registry);
  return timing;
}

double MeanPlanMillis(int num_vms, TimeNs latency_goal, int runs) {
  return TimePlans(num_vms, latency_goal, runs, /*threads=*/1).mean_ms;
}

}  // namespace

int main() {
  PrintHeader("Fig 3: table-generation time vs number of VMs (44 guest cores)");
  const TimeNs goals[] = {kMillisecond, 30 * kMillisecond, 60 * kMillisecond,
                          100 * kMillisecond};
  const int vm_counts[] = {16, 32, 64, 96, 128, 160, 176};
  const int runs = 20;

  BenchJson json("fig3_table_generation_time");
  std::printf("%6s %12s %12s %12s %12s\n", "VMs", "1ms (ms)", "30ms (ms)", "60ms (ms)",
              "100ms (ms)");
  for (const int vms : vm_counts) {
    std::printf("%6d", vms);
    for (const TimeNs goal : goals) {
      const double mean_ms = MeanPlanMillis(vms, goal, runs);
      std::printf(" %12.3f", mean_ms);
      json.Add("vms" + std::to_string(vms) + ".goal" +
                   std::to_string(goal / kMillisecond) + "ms.plan_ms",
               mean_ms);
    }
    std::printf("\n");
  }
  std::printf("\npaper: Python/SchedCAT planner stays below 2,000 ms at 176 VMs;\n");
  std::printf("shape to check: monotone growth in VM count, 1 ms goal the slowest.\n");

  PrintHeader("Parallel pipeline: serial vs parallel (1 ms goal, 44 guest cores)");
  const int parallel_runs = 8;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Clamp to the hardware: threads beyond physical parallelism can only add
  // hand-off overhead. The fixed-8 oversubscription column below keeps the
  // cross-host comparable overhead measurement.
  const int parallel_threads = static_cast<int>(std::min(8u, hw));
  std::printf("hardware threads: %u; parallel planner uses %d thread(s)\n", hw,
              parallel_threads);
  if (parallel_threads <= 1) {
    std::printf("(single-CPU host: speedup > 1 is unattainable; the gate is off)\n");
  }
  std::printf("\n%6s %12s %14s %9s %10s %10s\n", "VMs", "serial (ms)",
              "parallel (ms)", "speedup", "identical", "analytic%");
  double largest_vms_speedup = 0;
  for (const int vms : {48, 96, 176}) {
    const PlanTiming serial = TimePlans(vms, kMillisecond, parallel_runs, 1);
    const PlanTiming parallel =
        TimePlans(vms, kMillisecond, parallel_runs, parallel_threads);
    const bool identical = serial.table_bytes == parallel.table_bytes;
    TABLEAU_CHECK_MSG(identical, "parallel plan diverged from serial at %d VMs", vms);
    const double speedup = serial.mean_ms / parallel.mean_ms;
    largest_vms_speedup = speedup;  // The loop ends at the largest VM count.
    const double analytic_fraction =
        parallel.admission.total() > 0
            ? static_cast<double>(parallel.admission.analytic()) /
                  static_cast<double>(parallel.admission.total())
            : 0.0;
    std::printf("%6d %12.3f %14.3f %8.2fx %10s %9.1f%%\n", vms, serial.mean_ms,
                parallel.mean_ms, speedup, identical ? "yes" : "NO",
                100.0 * analytic_fraction);
    const std::string prefix = "parallel.vms" + std::to_string(vms);
    json.Add(prefix + ".serial_ms", serial.mean_ms);
    json.Add(prefix + ".parallel_ms", parallel.mean_ms);
    json.Add(prefix + ".speedup", speedup);
    json.Add(prefix + ".admission_analytic_fraction", analytic_fraction);
    if (parallel_threads != 8) {
      // Oversubscribed fixed-8 measurement: on narrow hosts this is pure
      // hand-off overhead, recorded so runs on different machines stay
      // comparable against historical numbers.
      const PlanTiming oversub = TimePlans(vms, kMillisecond, parallel_runs, 8);
      TABLEAU_CHECK_MSG(oversub.table_bytes == serial.table_bytes,
                        "8-thread plan diverged from serial at %d VMs", vms);
      std::printf("%6s %12s %14.3f %8.2fx %10s %10s  (8 threads, oversubscribed)\n",
                  "", "", oversub.mean_ms, serial.mean_ms / oversub.mean_ms, "yes", "");
      json.Add(prefix + ".oversubscribed8_ms", oversub.mean_ms);
      json.Add(prefix + ".oversubscribed8_speedup", serial.mean_ms / oversub.mean_ms);
    }
  }
  json.Add("parallel.hardware_threads", static_cast<double>(hw));
  json.Add("parallel.effective_threads", static_cast<double>(parallel_threads));
  std::printf("\nparallel stages: per-core EDF simulation, worst-fit candidate scan,\n");
  std::printf("C=D split-point probes; merge is per-core-indexed, so byte-identical.\n");
  std::printf("analytic%%: admission decisions resolved without an EDF simulation.\n");

  // CI smoke gate (TABLEAU_BENCH_GATE=1): with real parallelism available,
  // the parallel planner must not lose to the serial one at the largest VM
  // count. On single-threaded hosts the gate is informational only.
  if (const char* gate = std::getenv("TABLEAU_BENCH_GATE");
      gate != nullptr && gate[0] == '1' && parallel_threads > 1) {
    TABLEAU_CHECK_MSG(largest_vms_speedup >= 1.0,
                      "parallel speedup %.3f < 1.0 at 176 VMs with %d threads",
                      largest_vms_speedup, parallel_threads);
    std::printf("bench gate: parallel speedup %.2fx >= 1.0 at 176 VMs (enforced)\n",
                largest_vms_speedup);
  }
  json.Write();
  return 0;
}
