// Reproduces Fig. 3: table-generation time as a function of the number of
// VMs, for per-VM latency goals of 1 ms, 30 ms, 60 ms, and 100 ms, planned
// for the 48-core server (44 guest cores, up to 4 VMs per core).
//
// The paper's Python/SchedCAT planner peaks below two seconds at 176 VMs;
// this C++ planner is orders of magnitude faster (one of the optimizations
// the paper itself suggests in Sec. 7.1: "a low-level language such as C can
// be used to reduce language runtime overhead"). The claim preserved is the
// shape: time grows with the VM count and is largest for the 1 ms goal,
// whose short periods generate the most table slots.
//
// A second section compares the serial planner against the parallel
// pipeline (PlannerConfig::num_threads) and checks that the parallel plan
// serializes byte-identically to the serial one.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

std::vector<VcpuRequest> MakeRequests(int num_vms, TimeNs latency_goal) {
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, 0.25, latency_goal});
  }
  return requests;
}

struct PlanTiming {
  double mean_ms = 0;
  std::vector<std::uint8_t> table_bytes;  // Serialized table of the last run.
};

PlanTiming TimePlans(int num_vms, TimeNs latency_goal, int runs, int threads) {
  // Phase timings (planner.partition_ns, planner.edf_core_sim_ns, ...) and
  // per-worker pool gauges land in the shared bench accumulator and are
  // embedded in BENCH_fig3_table_generation_time.json.
  obs::MetricsRegistry registry;
  PlannerConfig config;
  config.num_cpus = 44;
  config.num_threads = threads;
  config.metrics = &registry;
  const Planner planner(config);
  const std::vector<VcpuRequest> requests = MakeRequests(num_vms, latency_goal);
  PlanTiming timing;
  double total_ms = 0;
  for (int run = 0; run < runs; ++run) {
    const auto start = std::chrono::steady_clock::now();
    const PlanResult plan = planner.Solve(PlanRequest::Full(requests));
    const auto end = std::chrono::steady_clock::now();
    TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());
    total_ms += std::chrono::duration<double, std::milli>(end - start).count();
    if (run == runs - 1) {
      timing.table_bytes = plan.table.Serialize();
    }
  }
  timing.mean_ms = total_ms / runs;
  RecordRegistryMetrics(registry);
  return timing;
}

double MeanPlanMillis(int num_vms, TimeNs latency_goal, int runs) {
  return TimePlans(num_vms, latency_goal, runs, /*threads=*/1).mean_ms;
}

}  // namespace

int main() {
  PrintHeader("Fig 3: table-generation time vs number of VMs (44 guest cores)");
  const TimeNs goals[] = {kMillisecond, 30 * kMillisecond, 60 * kMillisecond,
                          100 * kMillisecond};
  const int vm_counts[] = {16, 32, 64, 96, 128, 160, 176};
  const int runs = 20;

  BenchJson json("fig3_table_generation_time");
  std::printf("%6s %12s %12s %12s %12s\n", "VMs", "1ms (ms)", "30ms (ms)", "60ms (ms)",
              "100ms (ms)");
  for (const int vms : vm_counts) {
    std::printf("%6d", vms);
    for (const TimeNs goal : goals) {
      const double mean_ms = MeanPlanMillis(vms, goal, runs);
      std::printf(" %12.3f", mean_ms);
      json.Add("vms" + std::to_string(vms) + ".goal" +
                   std::to_string(goal / kMillisecond) + "ms.plan_ms",
               mean_ms);
    }
    std::printf("\n");
  }
  std::printf("\npaper: Python/SchedCAT planner stays below 2,000 ms at 176 VMs;\n");
  std::printf("shape to check: monotone growth in VM count, 1 ms goal the slowest.\n");

  PrintHeader("Parallel pipeline: serial vs 8 threads (1 ms goal, 44 guest cores)");
  const int parallel_runs = 8;
  const int parallel_threads = 8;
  std::printf("hardware threads available: %u (speedup is bounded by this;\n",
              std::thread::hardware_concurrency());
  std::printf("on a single-CPU host the 8-thread column only measures overhead)\n\n");
  std::printf("%6s %12s %14s %9s %10s\n", "VMs", "serial (ms)", "parallel (ms)",
              "speedup", "identical");
  for (const int vms : {48, 96, 176}) {
    const PlanTiming serial = TimePlans(vms, kMillisecond, parallel_runs, 1);
    const PlanTiming parallel =
        TimePlans(vms, kMillisecond, parallel_runs, parallel_threads);
    const bool identical = serial.table_bytes == parallel.table_bytes;
    TABLEAU_CHECK_MSG(identical, "parallel plan diverged from serial at %d VMs", vms);
    std::printf("%6d %12.3f %14.3f %8.2fx %10s\n", vms, serial.mean_ms,
                parallel.mean_ms, serial.mean_ms / parallel.mean_ms,
                identical ? "yes" : "NO");
    json.Add("parallel.vms" + std::to_string(vms) + ".speedup",
             serial.mean_ms / parallel.mean_ms);
  }
  std::printf("\nparallel stages: per-core EDF simulation, worst-fit candidate scan,\n");
  std::printf("C=D split-point probes; merge is per-core-indexed, so byte-identical.\n");
  json.Write();
  return 0;
}
