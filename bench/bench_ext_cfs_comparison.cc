// Extension bench (beyond the paper's Xen-only evaluation): KVM/CFS in the
// same high-density scenarios. The paper's Sec. 2.1 motivates Tableau partly
// by CFS's heuristics — "gentle fair sleepers" favoring I/O, coarse load
// balancing — so this bench places the CFS model next to Credit and Tableau
// on the intrinsic-delay and SLA-throughput experiments.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/workloads/web.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

double MaxGapMs(SchedKind kind, bool capped, Background bg, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, bg, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  return ToMs(scenario.vantage->service_gaps().Max());
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(10 * kSecond);

  PrintHeader("Extension: CFS vs Credit vs Tableau, max intrinsic delay (ms), capped");
  std::printf("%-10s %12s %12s %12s\n", "", "no BG (ms)", "I/O BG (ms)", "CPU BG (ms)");
  for (const SchedKind kind : {SchedKind::kCfs, SchedKind::kCredit, SchedKind::kTableau}) {
    std::printf("%-10s", SchedKindName(kind));
    for (const Background bg :
         {Background::kNone, Background::kIoHeavy, Background::kCpu}) {
      std::printf(" %12.2f", MaxGapMs(kind, /*capped=*/true, bg, duration));
    }
    std::printf("\n");
  }
  std::printf(
      "\nCFS bandwidth control throttles a capped VM for up to the remainder of\n"
      "its 100 ms period, so its worst case dwarfs both Credit's ~25 ms and\n"
      "Tableau's table-bounded ~10 ms — the Sec. 2.1 critique quantified.\n");

  PrintHeader("Extension: web SLA-aware peak (1 KiB, I/O background, capped)");
  for (const SchedKind kind : {SchedKind::kCfs, SchedKind::kCredit, SchedKind::kTableau}) {
    double peak = 0;
    for (const double rate : {800.0, 1200.0, 1500.0, 1700.0}) {
      ScenarioConfig config;
      config.scheduler = kind;
      config.capped = true;
      Scenario scenario = BuildScenario(config);
      WebServerWorkload::Config web_config;
      web_config.file_bytes = 1 << 10;
      WebServerWorkload server(scenario.machine, scenario.vantage, web_config);
      OpenLoopClient::Config client_config;
      client_config.requests_per_sec = rate;
      client_config.duration = duration / 2;
      OpenLoopClient client(scenario.machine, &server, client_config);
      client.Start(0);
      BackgroundWorkloads background;
      AttachBackground(scenario, Background::kIoHeavy, 1, background);
      scenario.machine->Start();
      scenario.machine->RunFor(duration / 2);
      const double tput = static_cast<double>(server.completed()) / ToSec(duration / 2);
      if (ToMs(server.latencies().Percentile(0.99)) < 100.0 && tput > peak) {
        peak = tput;
      }
    }
    std::printf("%-10s SLA-aware peak: %.0f req/s\n", SchedKindName(kind), peak);
  }
  return 0;
}
