// Ablation: O(1) slice-table lookup vs. linear allocation scan (Sec. 6,
// "O(1) dispatch"). Uses google-benchmark to measure the real host-CPU cost
// of the two dispatcher lookup paths on planner-generated tables of
// increasing density, plus the planner itself.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/core/planner.h"
#include "src/rt/hyperperiod.h"

namespace tableau {
namespace {

SchedulingTable MakeTable(int num_vms, TimeNs latency_goal) {
  PlannerConfig config;
  config.num_cpus = 12;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, 12.0 / num_vms, latency_goal});
  }
  PlanResult plan = planner.Solve(PlanRequest::Full(requests));
  TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());
  return std::move(plan.table);
}

void BM_SliceLookup(benchmark::State& state) {
  const SchedulingTable table = MakeTable(static_cast<int>(state.range(0)),
                                          state.range(1) * kMillisecond);
  TimeNs offset = 0;
  int cpu = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(cpu, offset));
    offset = (offset + 313'373) % table.length();
    cpu = (cpu + 1) % table.num_cpus();
  }
}

void BM_LinearLookup(benchmark::State& state) {
  const SchedulingTable table = MakeTable(static_cast<int>(state.range(0)),
                                          state.range(1) * kMillisecond);
  TimeNs offset = 0;
  int cpu = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.LookupLinear(cpu, offset));
    offset = (offset + 313'373) % table.length();
    cpu = (cpu + 1) % table.num_cpus();
  }
}

void BM_PlannerEndToEnd(benchmark::State& state) {
  PlannerConfig config;
  config.num_cpus = 12;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  const int num_vms = static_cast<int>(state.range(0));
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, 12.0 / num_vms, 20 * kMillisecond});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Solve(PlanRequest::Full(requests)));
  }
}

// (num_vms, latency goal in ms): denser tables stress the lookup more.
BENCHMARK(BM_SliceLookup)->Args({48, 20})->Args({48, 1})->Args({96, 1});
BENCHMARK(BM_LinearLookup)->Args({48, 20})->Args({48, 1})->Args({96, 1});
BENCHMARK(BM_PlannerEndToEnd)->Arg(16)->Arg(48)->Arg(96);

}  // namespace
}  // namespace tableau

BENCHMARK_MAIN();
