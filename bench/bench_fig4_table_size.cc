// Reproduces Fig. 4: generated table size as a function of the number of
// VMs, for per-VM latency goals of 1 ms, 30 ms, 60 ms, and 100 ms (44 guest
// cores). The paper reports all configurations below 1.2 MiB, with only the
// 1 ms curve standing out (its short periods generate many more slots and
// slices); the other curves overlap.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

double TableMiB(int num_vms, TimeNs latency_goal) {
  obs::MetricsRegistry registry;
  PlannerConfig config;
  config.num_cpus = 44;
  config.metrics = &registry;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  for (int i = 0; i < num_vms; ++i) {
    requests.push_back(VcpuRequest{i, 0.25, latency_goal});
  }
  const PlanResult plan = planner.Solve(PlanRequest::Full(requests));
  TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());
  RecordRegistryMetrics(registry);
  return static_cast<double>(plan.table.SerializedSizeBytes()) / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  PrintHeader("Fig 4: serialized table size (MiB) vs number of VMs (44 guest cores)");
  const TimeNs goals[] = {kMillisecond, 30 * kMillisecond, 60 * kMillisecond,
                          100 * kMillisecond};
  const int vm_counts[] = {16, 32, 64, 96, 128, 160, 176};

  BenchJson json("fig4_table_size");
  std::printf("%6s %12s %12s %12s %12s\n", "VMs", "1ms (MiB)", "30ms (MiB)", "60ms (MiB)",
              "100ms (MiB)");
  for (const int vms : vm_counts) {
    std::printf("%6d", vms);
    for (const TimeNs goal : goals) {
      const double mib = TableMiB(vms, goal);
      std::printf(" %12.4f", mib);
      json.Add("vms" + std::to_string(vms) + ".goal" +
                   std::to_string(goal / kMillisecond) + "ms.table_mib",
               mib);
    }
    std::printf("\n");
  }
  std::printf("\npaper: all below 1.2 MiB; only the 1 ms curve visibly larger.\n");
  json.Write();
  return 0;
}
