// Fleet-scale simulation bench: a 64-host cluster (32 pCPUs x 4 slots per
// core = 8,192 vCPU slots) serving an open-loop VM reservation stream, run
// under every execution strategy the sharded engine offers.
//
// Claims checked (the tentpole's acceptance criteria):
//  - Determinism: the fleet fingerprint and the merged metrics block are
//    byte-identical across serial, sharded single-threaded, and sharded
//    parallel execution, and across repeated runs.
//  - Control plane: a scripted overload (one VM multiplies its service
//    demand mid-run) trips the burn-rate detector and produces a live
//    migration whose destination table still passes the TableVerifier.
//  - Reporting: BENCH_fleet.json carries the merged metrics and timeseries
//    blocks plus fleet-wide SLO attainment.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/table_verifier.h"
#include "src/harness/fleet_scenario.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct FleetRunResult {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  std::string timeseries_json;
  fleet::Cluster::SloSummary slo;
  int migrations = 0;
  bool destination_verified = false;
  double wall_ms = 0;
};

FleetScenarioConfig BenchConfig() {
  FleetScenarioConfig config;
  config.num_hosts = 64;
  config.cpus_per_host = 32;
  config.cores_per_socket = 8;
  config.slots_per_core = 4;  // 64 * 32 * 4 = 8,192 vCPU slots fleet-wide.
  config.num_vms = 1024;
  config.utilization = 0.25;
  config.requests_per_sec = 200;
  config.service_ns = 500 * kMicrosecond;
  config.latency_goal = 20 * kMillisecond;
  // Scripted overload: VM 0 quadruples its per-request service demand at
  // t=100ms — 0.4 cores of demand against a quarter-core reservation, the
  // sustained burn the detector must migrate away.
  config.surge_vms = 1;
  config.surge_at = 100 * kMillisecond;
  config.surge_factor = 4.0;
  config.min_requests_before_migration = 20;
  config.seed = 1;
  return config;
}

FleetRunResult RunFleet(const FleetScenarioConfig& config, TimeNs duration) {
  const auto wall_start = std::chrono::steady_clock::now();
  fleet::Cluster cluster(BuildFleetConfig(config));
  cluster.Start();
  cluster.RunUntil(duration);

  FleetRunResult result;
  result.fingerprint = cluster.Fingerprint();
  result.metrics_json = cluster.MergedMetrics().ToJson(/*indent=*/2);
  result.timeseries_json = cluster.MergedTimeSeries().ToJson(/*indent=*/2);
  result.slo = cluster.Slo();
  result.migrations = static_cast<int>(cluster.migrations().size());
  // Migration oracle: every destination host's live table must still satisfy
  // the full reservation contract (src/check).
  result.destination_verified = result.migrations > 0;
  for (const fleet::Cluster::MigrationRecord& migration : cluster.migrations()) {
    fleet::Host& destination = cluster.host(migration.to);
    if (!destination.plan().success ||
        !check::VerifyPlan(destination.plan(), destination.planner_config()).empty()) {
      result.destination_verified = false;
    }
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  return result;
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(500 * kMillisecond);
  const FleetScenarioConfig base = BenchConfig();

  PrintHeader("Fleet: 64 hosts x 32 pCPUs x 4 slots (8,192 vCPU slots), " +
              std::to_string(base.num_vms) + " VMs, open loop");

  struct Mode {
    const char* name;
    bool sharded;
    bool parallel;
    int threads;
  };
  const std::vector<Mode> modes = {
      {"serial", false, false, 0},
      {"sharded", true, false, 0},
      {"parallel", true, true, BenchThreads()},
      {"repeat", false, false, 0},  // Serial again: run-to-run repeatability.
  };

  BenchJson json("fleet");
  std::vector<FleetRunResult> runs;
  std::printf("%-10s %14s %10s %10s %10s %8s %10s\n", "mode", "requests", "misses",
              "attain", "worst vm", "migr", "wall");
  for (const Mode& mode : modes) {
    FleetScenarioConfig config = base;
    config.sharded = mode.sharded;
    config.parallel = mode.parallel;
    config.num_threads = mode.threads;
    runs.push_back(RunFleet(config, duration));
    const FleetRunResult& run = runs.back();
    std::printf("%-10s %14llu %10llu %9.4f%% %9.4f%% %8d %8.0fms\n", mode.name,
                static_cast<unsigned long long>(run.slo.requests),
                static_cast<unsigned long long>(run.slo.misses),
                100.0 * run.slo.attainment, 100.0 * run.slo.worst_vm_attainment,
                run.migrations, run.wall_ms);
    const std::string prefix = std::string("fleet.") + mode.name;
    json.Add(prefix + ".wall_ms", run.wall_ms);
    json.Add(prefix + ".fingerprint_lo32",
             static_cast<double>(run.fingerprint & 0xffffffffull));
  }

  const FleetRunResult& serial = runs.front();
  bool deterministic = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].fingerprint != serial.fingerprint ||
        runs[i].metrics_json != serial.metrics_json) {
      deterministic = false;
      std::printf("DETERMINISM VIOLATION: %s differs from serial\n", modes[i].name);
    }
  }
  std::printf("determinism (fingerprint + metrics, all modes): %s\n",
              deterministic ? "ok" : "VIOLATED");
  std::printf("scripted overload -> migrations: %d, destination tables verified: %s\n",
              serial.migrations, serial.destination_verified ? "ok" : "FAILED");

  json.Add("fleet.vms_admitted", serial.slo.vms_admitted);
  json.Add("fleet.vms_rejected", serial.slo.vms_rejected);
  json.Add("fleet.requests", static_cast<double>(serial.slo.requests));
  json.Add("fleet.misses", static_cast<double>(serial.slo.misses));
  json.Add("fleet.slo_attainment", serial.slo.attainment);
  json.Add("fleet.worst_vm_attainment", serial.slo.worst_vm_attainment);
  json.Add("fleet.migrations", serial.migrations);
  json.Add("fleet.deterministic", deterministic ? 1 : 0);
  json.Add("fleet.migration_destination_verified",
           serial.destination_verified ? 1 : 0);
  json.AddRawBlock("fleet_metrics", serial.metrics_json);
  json.AddRawBlock("timeseries", serial.timeseries_json);
  json.Write();

  return (deterministic && serial.migrations > 0 && serial.destination_verified) ? 0
                                                                                 : 1;
}
