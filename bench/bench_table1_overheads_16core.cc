// Reproduces Table 1: average runtime overheads (in us) for three key
// scheduler operations on the 16-core, 2-socket server (12 guest cores, 4
// single-vCPU VMs per core, I/O-intensive stress for 60 s).
//
// Paper reference values (us):
//            Credit  Credit2  RTDS   Tableau
//  Schedule  8.08    3.51     2.86   1.43
//  Wakeup    2.12    5.19     3.90   1.06
//  Migrate   0.32    5.55     9.42   0.43
//
// Absolute values come from the calibrated cost model (DESIGN.md); the claim
// to check is the ordering and rough ratios: Tableau cheapest on Schedule
// and Wakeup, Credit's Schedule most expensive, RTDS's Migrate the worst of
// the capped schedulers, Credit's Migrate negligible.
#include <cstdio>

#include "bench/bench_util.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct Row {
  double schedule_us;
  double wakeup_us;
  double migrate_us;
};

Row MeasureScheduler(SchedKind kind, int guest_cpus, int cores_per_socket,
                     TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.guest_cpus = guest_cpus;
  config.cores_per_socket = cores_per_socket;
  // The capped scenario (supported by Credit, RTDS, and Tableau); Credit2
  // cannot cap and runs uncapped, as in the paper (Sec. 7.2).
  config.capped = (kind != SchedKind::kCredit2);
  Scenario scenario = BuildScenario(config);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 0, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  RecordScenarioMetrics(scenario);
  const OpStats& stats = scenario.machine->op_stats();
  return Row{ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kSchedule).Mean())),
             ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kWakeup).Mean())),
             ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kMigrate).Mean()))};
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(10 * kSecond);
  PrintHeader("Table 1: mean scheduler-operation overheads (us), 16-core 2-socket");
  std::printf("(12 guest cores, 48 VMs, I/O-intensive stress, %.0f s simulated)\n",
              ToSec(duration));

  const SchedKind kinds[] = {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kRtds,
                             SchedKind::kTableau};
  std::vector<std::function<Row()>> tasks;
  for (const SchedKind kind : kinds) {
    tasks.push_back([=] {
      return MeasureScheduler(kind, /*guest_cpus=*/12, /*cores_per_socket=*/6, duration);
    });
  }
  const std::vector<Row> rows = RunSimulations(tasks);

  std::printf("%-10s %8s %8s %8s %8s\n", "", "Credit", "Credit2", "RTDS", "Tableau");
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", "Schedule", rows[0].schedule_us,
              rows[1].schedule_us, rows[2].schedule_us, rows[3].schedule_us);
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", "Wakeup", rows[0].wakeup_us,
              rows[1].wakeup_us, rows[2].wakeup_us, rows[3].wakeup_us);
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", "Migrate", rows[0].migrate_us,
              rows[1].migrate_us, rows[2].migrate_us, rows[3].migrate_us);
  std::printf("\npaper:     Schedule 8.08 / 3.51 / 2.86 / 1.43\n");
  std::printf("           Wakeup   2.12 / 5.19 / 3.90 / 1.06\n");
  std::printf("           Migrate  0.32 / 5.55 / 9.42 / 0.43\n");

  BenchJson json("table1_overheads_16core");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string sched = SchedKindName(kinds[i]);
    json.Add(sched + ".schedule_us", rows[i].schedule_us);
    json.Add(sched + ".wakeup_us", rows[i].wakeup_us);
    json.Add(sched + ".migrate_us", rows[i].migrate_us);
  }
  json.Write();
  return 0;
}
