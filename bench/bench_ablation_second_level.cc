// Ablation: the second-level scheduler (Sec. 4). Runs the uncapped web
// scenario with the second-level round-robin scheduler enabled vs. disabled
// (i.e., first-level table only) and reports the vantage VM's achievable
// throughput and the machine-wide idle recovery. This isolates the paper's
// claim that "a naive table-driven scheduler ... results in
// non-work-conserving behavior", which the second level repairs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/web.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

void Measure(bool work_conserving, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  // `capped` toggles the dispatcher's work-conserving mode in the harness;
  // VMs themselves carry no caps so eligibility is the only difference.
  config.capped = !work_conserving;
  Scenario scenario = BuildScenario(config);

  WebServerWorkload::Config web_config;
  web_config.file_bytes = 100 << 10;
  WebServerWorkload server(scenario.machine, scenario.vantage, web_config);
  OpenLoopClient::Config client_config;
  client_config.requests_per_sec = 1450;
  client_config.duration = duration;
  OpenLoopClient client(scenario.machine, &server, client_config);
  client.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);

  TimeNs busy = 0;
  for (int cpu = 0; cpu < scenario.machine->num_cpus(); ++cpu) {
    busy += scenario.machine->cpu_busy_ns(cpu);
  }
  std::printf("%-22s tput %7.1f req/s  p99 %8.2f ms  vantage share %5.1f%%  "
              "machine busy %5.1f%%  2nd-level %5.1f%%\n",
              work_conserving ? "with second level" : "table-only (disabled)",
              static_cast<double>(server.completed()) / ToSec(duration),
              ToMs(server.latencies().Percentile(0.99)),
              100.0 * static_cast<double>(scenario.vantage->total_service()) /
                  static_cast<double>(duration),
              100.0 * static_cast<double>(busy) /
                  (static_cast<double>(duration) * scenario.machine->num_cpus()),
              100.0 * scenario.machine->SecondLevelFraction(scenario.vantage->id()));
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(4 * kSecond);
  PrintHeader("Ablation: second-level scheduler on/off (uncapped web, 1450 req/s)");
  Measure(/*work_conserving=*/false, duration);
  Measure(/*work_conserving=*/true, duration);
  std::printf(
      "\ninterpretation: with the second level disabled the vantage VM is limited\n"
      "to its table slots (25%%) and cannot sustain the offered load; enabling it\n"
      "recovers the blocked I/O VMs' idle cycles (paper Sec. 7.4: capped ~600 vs\n"
      "uncapped ~850 req/s for 100 KiB).\n");
  return 0;
}
