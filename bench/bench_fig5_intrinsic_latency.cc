// Reproduces Fig. 5: maximum scheduling delay as measured by
// redis-cli --intrinsic-latency (a tight CPU-bound loop in the vantage VM
// that observes gaps between iterations), for capped (a) and uncapped (b)
// scenarios with no background, an I/O-intensive background, and a
// CPU-intensive background (4 VMs per core on the 16-core machine).
//
// Paper claims to check:
//  - capped: Credit up to ~44 ms; RTDS ~10-13 ms; Tableau always ~10 ms
//    regardless of background.
//  - uncapped, no background: sub-millisecond for every scheduler.
//  - uncapped with background: Credit degrades severely (up to 220 ms with
//    I/O background); Tableau stays at <= 10 ms.
#include <cstdio>

#include "bench/bench_util.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

double MaxGapMs(SchedKind kind, bool capped, Background bg, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine.get(), scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, bg, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  return ToMs(scenario.vantage->service_gaps().Max());
}

void RunScenario(const char* title, bool capped, const std::vector<SchedKind>& kinds,
                 TimeNs duration) {
  // Every (scheduler, background) cell is an independent simulation: fan the
  // grid out over the worker pool, then print in row order.
  const std::vector<Background> bgs = {Background::kNone, Background::kIoHeavy,
                                       Background::kCpu};
  std::vector<std::function<double()>> tasks;
  for (const SchedKind kind : kinds) {
    for (const Background bg : bgs) {
      tasks.push_back([=] { return MaxGapMs(kind, capped, bg, duration); });
    }
  }
  const std::vector<double> cells = RunSimulations(tasks);

  PrintHeader(title);
  std::printf("%-10s %12s %12s %12s\n", "", "no BG (ms)", "I/O BG (ms)", "CPU BG (ms)");
  for (std::size_t row = 0; row < kinds.size(); ++row) {
    std::printf("%-10s", SchedKindName(kinds[row]));
    for (std::size_t col = 0; col < bgs.size(); ++col) {
      std::printf(" %12.2f", cells[row * bgs.size() + col]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(20 * kSecond);
  RunScenario("Fig 5(a): max intrinsic scheduling delay, capped VMs",
              /*capped=*/true, {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau},
              duration);
  std::printf("paper (capped): Credit up to ~44 ms; RTDS ~10-13 ms; Tableau ~10 ms.\n");

  RunScenario("Fig 5(b): max intrinsic scheduling delay, uncapped VMs",
              /*capped=*/false,
              {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}, duration);
  std::printf(
      "paper (uncapped): sub-ms with no BG for all; with BG Credit degrades badly\n"
      "(up to 220 ms under I/O BG); Credit2 poor under I/O BG; Tableau <= 10 ms.\n");
  return 0;
}
