// Reproduces Fig. 5: maximum scheduling delay as measured by
// redis-cli --intrinsic-latency (a tight CPU-bound loop in the vantage VM
// that observes gaps between iterations), for capped (a) and uncapped (b)
// scenarios with no background, an I/O-intensive background, and a
// CPU-intensive background (4 VMs per core on the 16-core machine).
//
// Paper claims to check:
//  - capped: Credit up to ~44 ms; RTDS ~10-13 ms; Tableau always ~10 ms
//    regardless of background.
//  - uncapped, no background: sub-millisecond for every scheduler.
//  - uncapped with background: Credit degrades severely (up to 220 ms with
//    I/O background); Tableau stays at <= 10 ms.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/telemetry.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct GapResult {
  double max_ms = 0;
  double jitter_ms = 0;  // Stddev of the service gaps (Welford).
  // Machine-wide causal totals over the run, from the windowed telemetry:
  // time runnable vCPUs spent descheduled by the table (blackout) vs late
  // table switches (slip). The blackout total is the causal mass behind the
  // gap maximum the figure reports.
  double blackout_total_ms = 0;
  double slip_total_ms = 0;
};

// Sum of one series' window sums in a merged snapshot (ns -> ms).
double SeriesTotalMs(const obs::TimeSeriesSnapshot& snapshot, const std::string& name) {
  const auto it = snapshot.series.find(name);
  if (it == snapshot.series.end()) {
    return 0;
  }
  std::int64_t total = 0;
  for (const obs::TimeSeriesWindow& window : it->second.windows) {
    total += window.sum;
  }
  return ToMs(total);
}

GapResult MeasureGaps(SchedKind kind, bool capped, Background bg, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);

  // Machine-wide window series only: this bench has no request spans, so the
  // telemetry contributes the per-pCPU/machine supply-side decomposition.
  obs::Telemetry::Config telemetry_config;
  telemetry_config.window_ns = 100 * kMillisecond;
  telemetry_config.window_capacity = 256;
  telemetry_config.max_vcpu_series = 0;
  obs::Telemetry telemetry(telemetry_config);
  AttachTelemetry(scenario, &telemetry);

  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, bg, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  RecordScenarioMetrics(scenario);
  const obs::TimeSeriesSnapshot series = telemetry.TimeSeries();
  return GapResult{ToMs(scenario.vantage->service_gaps().Max()),
                   ToMs(static_cast<TimeNs>(scenario.vantage->service_gaps().StdDev())),
                   SeriesTotalMs(series, "machine.blackout_ns"),
                   SeriesTotalMs(series, "machine.slip_ns")};
}

const char* BgKey(Background bg) {
  switch (bg) {
    case Background::kNone:
      return "no_bg";
    case Background::kIo:
    case Background::kIoHeavy:
      return "io_bg";
    case Background::kCpu:
      return "cpu_bg";
  }
  return "?";
}

void RunScenario(const char* title, const char* prefix, bool capped,
                 const std::vector<SchedKind>& kinds, TimeNs duration, BenchJson& json) {
  // Every (scheduler, background) cell is an independent simulation: fan the
  // grid out over the worker pool, then print in row order.
  const std::vector<Background> bgs = {Background::kNone, Background::kIoHeavy,
                                       Background::kCpu};
  std::vector<std::function<GapResult()>> tasks;
  for (const SchedKind kind : kinds) {
    for (const Background bg : bgs) {
      tasks.push_back([=] { return MeasureGaps(kind, capped, bg, duration); });
    }
  }
  const std::vector<GapResult> cells = RunSimulations(tasks);

  PrintHeader(title);
  std::printf("%-10s | %9s %9s | %9s %9s | %9s %9s\n", "", "none max", "jitter",
              "I/O max", "jitter", "CPU max", "jitter");
  for (std::size_t row = 0; row < kinds.size(); ++row) {
    std::printf("%-10s |", SchedKindName(kinds[row]));
    for (std::size_t col = 0; col < bgs.size(); ++col) {
      const GapResult& cell = cells[row * bgs.size() + col];
      std::printf(" %8.2fms %8.3f |", cell.max_ms, cell.jitter_ms);
      json.Add(std::string(prefix) + "." + SchedKindName(kinds[row]) + "." +
                   BgKey(bgs[col]) + ".max_ms",
               cell.max_ms);
      json.Add(std::string(prefix) + "." + SchedKindName(kinds[row]) + "." +
                   BgKey(bgs[col]) + ".jitter_ms",
               cell.jitter_ms);
      json.Add(std::string(prefix) + "." + SchedKindName(kinds[row]) + "." +
                   BgKey(bgs[col]) + ".blackout_total_ms",
               cell.blackout_total_ms);
      json.Add(std::string(prefix) + "." + SchedKindName(kinds[row]) + "." +
                   BgKey(bgs[col]) + ".slip_total_ms",
               cell.slip_total_ms);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(20 * kSecond);
  BenchJson json("fig5_intrinsic_latency");
  RunScenario("Fig 5(a): max intrinsic scheduling delay, capped VMs", "capped",
              /*capped=*/true, {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau},
              duration, json);
  std::printf("paper (capped): Credit up to ~44 ms; RTDS ~10-13 ms; Tableau ~10 ms.\n");

  RunScenario("Fig 5(b): max intrinsic scheduling delay, uncapped VMs", "uncapped",
              /*capped=*/false,
              {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}, duration,
              json);
  std::printf(
      "paper (uncapped): sub-ms with no BG for all; with BG Credit degrades badly\n"
      "(up to 220 ms under I/O BG); Credit2 poor under I/O BG; Tableau <= 10 ms.\n");
  json.Write();
  return 0;
}
