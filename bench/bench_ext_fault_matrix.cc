// Chaos harness: fault intensity x scheduler over the Fig. 5/6 regimes.
//
// Every cell runs a Fig. 5-style intrinsic-latency scenario (CPU-bound loop
// in the vantage VM, I/O-heavy background in the rest) under a ChaosPlan of
// increasing intensity: overhead spikes, timer jitter + coalescing, dropped
// wake-up IPIs with bounded retry, guest budget overruns and wakeup storms.
// The claims to check:
//  - Tableau's table-driven dispatch keeps the maximum scheduling gap close
//    to its blackout bound even at full fault intensity (the table, not the
//    wakeup path, decides who runs);
//  - Credit's boost pathology amplifies: the same faults stretch its maximum
//    gap far more than Tableau's (wakeup-order-dependent boosting compounds
//    with delayed IPIs and storms);
//  - determinism: a fixed seed reproduces the exact trace fingerprint.
//
// A final cell drives runtime replans through ReplanController while the
// fault plan injects planner failures/timeouts: failed replans keep the
// previous table and back off exponentially; the dispatcher never goes
// tableless.
//
// Output: BENCH_faults.json (written by run_all.sh's bench sweep).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/replan.h"
#include "src/faults/fault_plan.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

constexpr std::uint64_t kChaosSeed = 42;

struct FaultCell {
  double max_ms = 0;
  double jitter_ms = 0;
  std::uint64_t fingerprint = 0;
};

// FNV-1a over the retained trace (the engine-golden fingerprint).
std::uint64_t TraceFingerprint(const Scenario& scenario) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  scenario.machine->trace().ForEach([&](const TraceRecord& record) {
    mix(static_cast<std::uint64_t>(record.time));
    mix(static_cast<std::uint64_t>(record.event));
    mix(static_cast<std::uint64_t>(record.cpu));
    mix(static_cast<std::uint64_t>(record.vcpu));
    mix(static_cast<std::uint64_t>(record.arg));
  });
  mix(scenario.machine->trace().total_recorded());
  mix(scenario.machine->sim().events_executed());
  return hash;
}

FaultCell MeasureCell(SchedKind kind, bool capped, double intensity, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  config.fault_plan = faults::ChaosPlan(kChaosSeed, intensity);
  if (kind == SchedKind::kTableau) {
    // Exercise the missed-deadline degradation path under timer jitter.
    config.switch_slip_tolerance = kMillisecond;
  }
  Scenario scenario = BuildScenario(config);
  scenario.machine->trace().set_enabled(true);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIoHeavy, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  RecordScenarioMetrics(scenario);
  return FaultCell{ToMs(scenario.vantage->service_gaps().Max()),
                   ToMs(static_cast<TimeNs>(scenario.vantage->service_gaps().StdDev())),
                   TraceFingerprint(scenario)};
}

void RunMatrix(const char* title, const char* prefix, bool capped,
               const std::vector<SchedKind>& kinds,
               const std::vector<double>& intensities, TimeNs duration,
               BenchJson& json) {
  std::vector<std::function<FaultCell()>> tasks;
  for (const SchedKind kind : kinds) {
    for (const double intensity : intensities) {
      tasks.push_back([=] { return MeasureCell(kind, capped, intensity, duration); });
    }
  }
  const std::vector<FaultCell> cells = RunSimulations(tasks);

  PrintHeader(title);
  std::printf("%-10s |", "");
  for (const double intensity : intensities) {
    std::printf("   i=%4.2f max (jit)  |", intensity);
  }
  std::printf("\n");
  for (std::size_t row = 0; row < kinds.size(); ++row) {
    std::printf("%-10s |", SchedKindName(kinds[row]));
    for (std::size_t col = 0; col < intensities.size(); ++col) {
      const FaultCell& cell = cells[row * intensities.size() + col];
      std::printf(" %8.2fms (%6.3f) |", cell.max_ms, cell.jitter_ms);
      const std::string key = std::string(prefix) + "." + SchedKindName(kinds[row]) +
                              ".i" + std::to_string(static_cast<int>(intensities[col] * 100));
      json.Add(key + ".max_ms", cell.max_ms);
      json.Add(key + ".jitter_ms", cell.jitter_ms);
    }
    std::printf("\n");
  }
}

// Two chaos runs with one seed must replay byte-identically.
void CheckDeterminism(TimeNs duration, BenchJson& json) {
  const FaultCell a = MeasureCell(SchedKind::kTableau, /*capped=*/true, 1.0, duration);
  const FaultCell b = MeasureCell(SchedKind::kTableau, /*capped=*/true, 1.0, duration);
  TABLEAU_CHECK_MSG(a.fingerprint == b.fingerprint,
                    "chaos run not deterministic: %llx vs %llx",
                    static_cast<unsigned long long>(a.fingerprint),
                    static_cast<unsigned long long>(b.fingerprint));
  std::printf("determinism: two intensity-1.0 chaos runs -> identical fingerprint %016llx\n",
              static_cast<unsigned long long>(a.fingerprint));
  json.Add("determinism.identical", 1.0);
}

// Planner-fault cell: periodic replans under injected failures/timeouts.
void RunPlannerFaults(TimeNs duration, BenchJson& json) {
  ScenarioConfig config;
  config.scheduler = SchedKind::kTableau;
  config.capped = true;
  config.fault_plan.seed = kChaosSeed;
  config.fault_plan.planner.failure_probability = 0.3;
  config.fault_plan.planner.timeout_probability = 0.2;
  config.max_latency_degradations = 2;
  Scenario scenario = BuildScenario(config);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 0, background);
  scenario.machine->Start();

  PlannerConfig planner_config;
  planner_config.num_cpus = config.guest_cpus;
  planner_config.fault_injector = scenario.injector;
  planner_config.max_latency_degradations = config.max_latency_degradations;
  const Planner planner(planner_config);
  ReplanController controller(&planner, ReplanController::Config{});
  controller.AttachMetrics(&scenario.machine->metrics());

  PlanResult current = scenario.plan;
  int installed = 0;
  int kept = 0;
  const int rounds = 40;
  for (int i = 0; i < rounds; ++i) {
    scenario.machine->RunFor(duration / rounds);
    const ReplanController::Outcome outcome = controller.TryReplan(
        PlanRequest::Delta(current), scenario.machine->Now());
    if (outcome.installed) {
      current = outcome.plan;
      scenario.tableau->PushTable(std::make_shared<SchedulingTable>(current.table));
      ++installed;
    } else {
      ++kept;
      // Degradation invariant: a failed replan never leaves the dispatcher
      // tableless — the previous table stays in effect.
      TABLEAU_CHECK(scenario.tableau->dispatcher().table_generation() > 0);
    }
  }
  RecordScenarioMetrics(scenario);
  PrintHeader("Planner faults: replans under injected failures (30% fail, 20% timeout)");
  std::printf("replans installed: %d, kept previous table (failed/backoff): %d\n",
              installed, kept);
  json.Add("planner_faults.installed", installed);
  json.Add("planner_faults.kept_previous", kept);
  TABLEAU_CHECK_MSG(installed > 0, "no replan ever succeeded");
  TABLEAU_CHECK_MSG(kept > 0, "planner fault injection never fired");
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(5 * kSecond);
  const std::vector<double> intensities = {0.0, 0.25, 0.5, 1.0};
  BenchJson json("faults");

  RunMatrix("Fault matrix (capped, Fig. 5 regime): max service gap vs intensity",
            "capped", /*capped=*/true,
            {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}, intensities,
            duration, json);
  RunMatrix("Fault matrix (uncapped, boost regime): max service gap vs intensity",
            "uncapped", /*capped=*/false,
            {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}, intensities,
            duration, json);
  std::printf(
      "\ninterpretation: Tableau's max gap stays near its blackout bound across the\n"
      "intensity sweep (table-driven dispatch is insensitive to wakeup-path faults),\n"
      "while Credit amplifies: delayed IPIs and wakeup storms perturb boost ordering\n"
      "and stretch its worst-case gap.\n\n");

  CheckDeterminism(duration / 5, json);
  RunPlannerFaults(2 * kSecond, json);
  json.Write();
  return 0;
}
