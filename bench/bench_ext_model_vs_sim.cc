// Extension bench: analytical model vs. simulation. For capped Tableau, the
// wake-up latency of a mostly idle VM is a pure function of table structure
// (AnalyzeWakeupLatency's closed form over the vCPU's service gaps). This
// bench plans several configurations, predicts mean/p99/max ping latency
// from the table alone, then measures the same quantities in the simulator —
// the kind of a-priori guarantee reasoning the paper's Sec. 5 model enables,
// beyond the worst-case 2(T-C) bound.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/workloads/ping.h"

using namespace tableau;
using namespace tableau::bench;

int main() {
  PrintHeader("Extension: closed-form latency model vs simulated ping (capped Tableau)");
  std::printf("%8s %8s | %10s %10s %10s | %10s %10s %10s\n", "U", "L(ms)", "pred mean",
              "pred p99", "pred max", "sim mean", "sim p99", "sim max");

  struct Shape {
    double utilization;
    TimeNs latency;
  };
  for (const Shape shape : {Shape{0.25, 20 * kMillisecond}, Shape{0.25, 60 * kMillisecond},
                            Shape{0.10, 100 * kMillisecond}, Shape{0.50, 10 * kMillisecond}}) {
    ScenarioConfig config;
    config.scheduler = SchedKind::kTableau;
    config.guest_cpus = 4;
    config.cores_per_socket = 2;
    config.capped = true;
    config.utilization = shape.utilization;
    config.vms_per_core = static_cast<int>(1.0 / shape.utilization);
    config.latency_goal = shape.latency;
    Scenario scenario = BuildScenario(config);
    const LatencyProfile profile = AnalyzeWakeupLatency(scenario.plan.table, 0);

    WorkQueueGuest guest(scenario.machine, scenario.vantage);
    PingTraffic::Config ping_config;
    ping_config.threads = 8;
    ping_config.pings_per_thread = 1000;
    ping_config.max_spacing = 10 * kMillisecond;
    PingTraffic ping(scenario.machine, &guest, ping_config);
    ping.Start(0);
    scenario.machine->Start();
    scenario.machine->RunFor(MeasureDuration(7 * kSecond));

    // The constant offsets (2 x 50 us network + 20 us handling + dispatch)
    // are subtracted from the simulated numbers for a like-for-like view.
    const double offset_ms = 0.125;
    std::printf("%7.0f%% %8.0f | %9.2fms %9.2fms %9.2fms | %9.2fms %9.2fms %9.2fms\n",
                100.0 * shape.utilization, ToMs(shape.latency), ToMs(profile.mean),
                ToMs(profile.p99), ToMs(profile.max),
                ToMs(static_cast<TimeNs>(ping.latencies().Mean())) - offset_ms,
                ToMs(ping.latencies().Percentile(0.99)) - offset_ms,
                ToMs(ping.latencies().Max()) - offset_ms);
  }
  std::printf(
      "\ninterpretation: every column pair agrees to within sampling error — the\n"
      "table IS the latency behaviour, which is exactly why Tableau's tails are\n"
      "workload-independent in Figs. 5-6.\n");
  return 0;
}
