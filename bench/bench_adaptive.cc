// Elastic vs static reservations under time-varying demand: the acceptance
// experiment for the closed-loop adaptive controller (src/adapt).
//
// Arms (same fleet, same VM stream, same seed — only the controller differs):
//  - static: every VM keeps its admitted reservation forever.
//  - elastic: host.adaptive shrinks over-provisioned VMs toward their
//    predicted demand (p99-floored), freeing committed capacity that
//    admission hands to a second arrival wave the static arm must reject.
//  - flash: flat demand with a bounded surge; the controller must probe up
//    through saturation during the surge and relax back down afterwards.
//
// Control cadence: the dispatcher engages a pushed table at the current
// table's round wrap — up to two hyperperiods (~205ms) after the push, and
// a denser install stream keeps deferring the switch. The scenario therefore
// runs its control loop at 210ms (every admission/resize table is live
// before the next tick can supersede it) and models VM boot with a 210ms
// admission latency, so a newly placed VM's stream only starts once its
// slices are dispatchable (capped hosts run no second level — a vCPU absent
// from the live table gets zero CPU).
//
// Claims checked (exit code gates them):
//  - Packing: the elastic arm admits strictly more VMs (or holds strictly
//    less reserved capacity) than the static arm at no worse fleet-wide SLO
//    attainment.
//  - Reactivity: the flash crowd makes the controller both grow and shrink.
//  - Safety: every host's live table passes the TableVerifier at the end of
//    every arm (and TABLEAU_VERIFY_TABLES=1 audits each intermediate Solve).
//  - Determinism: the elastic diurnal run has byte-identical fingerprint and
//    merged metrics across serial, sharded, and parallel execution and
//    across repeated runs.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/table_verifier.h"
#include "src/harness/fleet_scenario.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct AdaptiveRunResult {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  fleet::Cluster::SloSummary slo;
  std::uint64_t resizes = 0;
  double avg_committed = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  int verify_violations = 0;
  double wall_ms = 0;
};

// Shared fleet shape: 4 hosts x 8 pCPUs x 2 slots per core = 64 vCPU slots.
// Every VM asks for U=0.5, so the admission cap (0.9 * 8 cores) saturates at
// 14 VMs per host with slots to spare — packing is limited by reserved
// capacity, exactly the waste elasticity reclaims.
FleetScenarioConfig BaseConfig() {
  FleetScenarioConfig config;
  config.num_hosts = 4;
  config.cpus_per_host = 8;
  config.cores_per_socket = 4;
  config.slots_per_core = 2;
  config.control_period = 210 * kMillisecond;   // >= two table rounds.
  config.admission_latency = 210 * kMillisecond;
  config.migrate_burn_threshold = 1e9;  // Isolate the resize loop.
  config.utilization = 0.5;
  config.latency_goal = 40 * kMillisecond;
  config.requests_per_sec = 400;
  config.seed = 1;
  return config;
}

// Diurnal packing arm: each VM's demand ramps 0.08..0.32 cores over an 8s
// triangle with phases staggered across the fleet. Wave 1 (56 VMs) fills
// every host to the admission cap at t=0; wave 2 (24 VMs) arrives at 30% of
// the run, after the controller has shrunk wave 1 toward demand. The 2-window
// cooldown keeps a freshly shrunk reservation from going stale by more than
// its headroom margin while the ramp climbs (cooldown 4 at this cadence lags
// ~1.05s — enough for the trough-phase ramp to overtake the reservation).
constexpr int kWave1Vms = 56;

FleetScenarioConfig DiurnalConfig(bool adaptive) {
  FleetScenarioConfig config = BaseConfig();
  config.num_vms = 80;
  config.service_ns = 1000 * kMicrosecond;  // Peak demand 0.32 of a core.
  config.shape = fleet::DemandShape::kDiurnal;
  config.shape_period = 8000 * kMillisecond;
  config.shape_min = 0.2;
  config.shape_max = 0.8;
  config.stagger_phases = true;
  config.adaptive = adaptive;
  config.adapt_policy.cooldown_windows = 2;
  return config;
}

// Flash-crowd arm: flat demand at 0.2 of a core (the controller shrinks the
// 0.5 reservations), then a quarter of the fleet quadruples its demand over
// [20%, 50%) of the run — saturation growth must kick in, and the shorter
// predictor ring lets the p99 shrink floor clear the surge before the run
// ends so the reclaim leg is exercised too.
FleetScenarioConfig FlashCrowdConfig(TimeNs duration) {
  FleetScenarioConfig config = BaseConfig();
  config.num_vms = 40;
  config.service_ns = 500 * kMicrosecond;  // Flat demand 0.2 of a core.
  config.surge_vms = 10;
  config.surge_at = duration / 5;
  config.surge_until = duration / 2;
  config.surge_factor = 4.0;
  config.adaptive = true;
  config.adapt_policy.predictor.history = 16;
  return config;
}

AdaptiveRunResult RunArm(const FleetScenarioConfig& config, TimeNs duration,
                         TimeNs second_wave_at) {
  const auto wall_start = std::chrono::steady_clock::now();
  fleet::ClusterConfig cluster_config = BuildFleetConfig(config);
  if (second_wave_at > 0) {
    for (std::size_t vm = kWave1Vms; vm < cluster_config.vms.size(); ++vm) {
      cluster_config.vms[vm].arrival = second_wave_at;
    }
  }
  fleet::Cluster cluster(cluster_config);
  cluster.Start();
  cluster.RunUntil(duration);

  AdaptiveRunResult result;
  result.fingerprint = cluster.Fingerprint();
  result.metrics_json = cluster.MergedMetrics().ToJson(/*indent=*/2);
  result.slo = cluster.Slo();
  result.resizes = cluster.resizes();
  result.avg_committed = cluster.AvgCommittedFraction();
  for (int h = 0; h < cluster.num_hosts(); ++h) {
    fleet::Host& host = cluster.host(h);
    // Controller counters are per host; the merged gauges take the max
    // across hosts, so fleet totals must be summed here.
    if (host.adaptive() != nullptr) {
      result.grows += host.adaptive()->counters().grows;
      result.shrinks += host.adaptive()->counters().shrinks;
    }
    if (host.plan().success &&
        !check::VerifyPlan(host.plan(), host.planner_config()).empty()) {
      ++result.verify_violations;
    }
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  return result;
}

void PrintRow(const char* name, const AdaptiveRunResult& run) {
  std::printf("%-10s %8d %8d %9.4f%% %9.3f %8llu %7llu %7llu %8.0fms\n", name,
              run.slo.vms_admitted, run.slo.vms_rejected, 100.0 * run.slo.attainment,
              run.avg_committed, static_cast<unsigned long long>(run.resizes),
              static_cast<unsigned long long>(run.grows),
              static_cast<unsigned long long>(run.shrinks), run.wall_ms);
}

void AddArm(BenchJson& json, const std::string& prefix, const AdaptiveRunResult& run) {
  json.Add(prefix + ".vms_admitted", run.slo.vms_admitted);
  json.Add(prefix + ".vms_rejected", run.slo.vms_rejected);
  json.Add(prefix + ".requests", static_cast<double>(run.slo.requests));
  json.Add(prefix + ".misses", static_cast<double>(run.slo.misses));
  json.Add(prefix + ".slo_attainment", run.slo.attainment);
  json.Add(prefix + ".worst_vm_attainment", run.slo.worst_vm_attainment);
  json.Add(prefix + ".avg_committed_fraction", run.avg_committed);
  json.Add(prefix + ".resizes", static_cast<double>(run.resizes));
  json.Add(prefix + ".grows", static_cast<double>(run.grows));
  json.Add(prefix + ".shrinks", static_cast<double>(run.shrinks));
  json.Add(prefix + ".verify_violations", run.verify_violations);
  json.Add(prefix + ".wall_ms", run.wall_ms);
}

}  // namespace

int main() {
  // The waves, the diurnal period, and the p99 shrink-floor ring are sized
  // for the 10s default; much shorter runs have no time to shrink and the
  // gates fail vacuously.
  const TimeNs duration = MeasureDuration(10 * kSecond);
  const TimeNs second_wave_at = (duration / 10) * 3;

  PrintHeader(
      "Adaptive reservations: 4 hosts x 8 pCPUs, 80 VMs @ U=0.5, diurnal demand");
  std::printf("%-10s %8s %8s %10s %9s %8s %7s %7s %10s\n", "arm", "admit", "reject",
              "attain", "avg comm", "resizes", "grows", "shrinks", "wall");

  const AdaptiveRunResult arm_static =
      RunArm(DiurnalConfig(/*adaptive=*/false), duration, second_wave_at);
  PrintRow("static", arm_static);
  const AdaptiveRunResult elastic =
      RunArm(DiurnalConfig(/*adaptive=*/true), duration, second_wave_at);
  PrintRow("elastic", elastic);
  const AdaptiveRunResult flash =
      RunArm(FlashCrowdConfig(duration), duration, /*second_wave_at=*/0);
  PrintRow("flash", flash);

  // --- Gate 1: packing at no SLO cost (the tentpole's acceptance bar) ---
  const bool slo_held = elastic.slo.attainment >= arm_static.slo.attainment;
  const bool denser = elastic.slo.vms_admitted > arm_static.slo.vms_admitted ||
                      elastic.avg_committed < arm_static.avg_committed;
  const bool packing_ok = slo_held && denser && elastic.resizes > 0;
  std::printf("packing gate (attainment %.4f%% >= %.4f%%, admitted %d > %d or "
              "committed %.3f < %.3f, resizes %llu > 0): %s\n",
              100.0 * elastic.slo.attainment, 100.0 * arm_static.slo.attainment,
              elastic.slo.vms_admitted, arm_static.slo.vms_admitted,
              elastic.avg_committed, arm_static.avg_committed,
              static_cast<unsigned long long>(elastic.resizes),
              packing_ok ? "ok" : "FAILED");

  // --- Gate 2: the flash crowd exercises both directions of the loop ---
  const bool flash_ok = flash.grows > 0 && flash.shrinks > 0;
  std::printf("flash-crowd gate (grows %llu > 0 and shrinks %llu > 0): %s\n",
              static_cast<unsigned long long>(flash.grows),
              static_cast<unsigned long long>(flash.shrinks),
              flash_ok ? "ok" : "FAILED");

  // --- Gate 3: every final table passes the verifier in every arm ---
  const int violations =
      arm_static.verify_violations + elastic.verify_violations + flash.verify_violations;
  std::printf("table verification (final plans, all arms): %s\n",
              violations == 0 ? "ok" : "VIOLATED");

  // --- Gate 4: the elastic loop stays execution-mode independent ---
  struct Mode {
    const char* name;
    bool sharded;
    bool parallel;
    int threads;
  };
  const std::vector<Mode> modes = {
      {"sharded", true, false, 0},
      {"parallel", true, true, BenchThreads()},
      {"repeat", false, false, 0},
  };
  bool deterministic = true;
  for (const Mode& mode : modes) {
    FleetScenarioConfig config = DiurnalConfig(/*adaptive=*/true);
    config.sharded = mode.sharded;
    config.parallel = mode.parallel;
    config.num_threads = mode.threads;
    const AdaptiveRunResult run = RunArm(config, duration, second_wave_at);
    if (run.fingerprint != elastic.fingerprint ||
        run.metrics_json != elastic.metrics_json || run.resizes != elastic.resizes) {
      deterministic = false;
      std::printf("DETERMINISM VIOLATION: %s differs from serial\n", mode.name);
    }
  }
  std::printf("determinism (fingerprint + metrics + resizes, all modes): %s\n",
              deterministic ? "ok" : "VIOLATED");

  BenchJson json("adaptive");
  AddArm(json, "adaptive.static", arm_static);
  AddArm(json, "adaptive.elastic", elastic);
  AddArm(json, "adaptive.flash", flash);
  json.Add("adaptive.packing_gate", packing_ok ? 1 : 0);
  json.Add("adaptive.flash_gate", flash_ok ? 1 : 0);
  json.Add("adaptive.verify_violations", violations);
  json.Add("adaptive.deterministic", deterministic ? 1 : 0);
  json.AddRawBlock("elastic_metrics", elastic.metrics_json);
  json.Write();

  return (packing_ok && flash_ok && violations == 0 && deterministic) ? 0 : 1;
}
