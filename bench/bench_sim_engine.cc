// Event-engine microbenchmark: the timer-wheel engine (src/sim) vs a replica
// of the original binary-heap engine (std::priority_queue over heap-allocated
// std::function closures, tombstone-set cancellation), driven by the same
// logical workload — a mix of self-rearming timers, strictly periodic ticks,
// and one-shot schedule/cancel churn at the delay scales the hypervisor
// produces. Also times the parallel measurement harness (RunSimulations)
// against a serial sweep of the same scenario batch.
//
// Writes BENCH_sim_engine.json with events/sec for both engines, the
// speedup, and the harness wall-clock for both modes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/sharded_sim.h"
#include "src/sim/simulation.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Replica of the pre-wheel engine, kept verbatim in spirit: one binary heap
// of {time, id, std::function}, lazy cancellation through an unordered set.
// Every schedule allocates a closure; every cancel grows the tombstone set
// until the event's time comes up.
class LegacySimulation {
 public:
  TimeNs Now() const { return now_; }

  EventId ScheduleAt(TimeNs at, std::function<void()> fn) {
    const EventId id = next_id_++;
    queue_.push(Event{at, id, std::move(fn)});
    return id;
  }
  EventId ScheduleAfter(TimeNs delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }
  void Cancel(EventId id) {
    if (id != kInvalidEvent) {
      cancelled_.insert(id);
    }
  }
  void RunUntil(TimeNs until) {
    while (!queue_.empty() && queue_.top().time <= until) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (cancelled_.erase(event.id) > 0) {
        continue;
      }
      now_ = event.time;
      ++events_executed_;
      event.fn();
    }
    now_ = until;
  }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    TimeNs time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };
  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

constexpr int kActors = 64;     // Self-rearming timers (vCPU-event analogue).
constexpr int kPeriodics = 16;  // Strictly periodic ticks (accounting analogue).

// wheel_events_per_sec measured on this host immediately before the
// hot-loop sweep (batched dispatch, SoA tables, zero-alloc steady state)
// landed; the JSON reports before/after so the perf trajectory is tracked
// per-PR.
constexpr double kPrePrWheelEventsPerSec = 17984714.0;

struct Churn {
  std::uint64_t lcg = 42;
  std::uint64_t fired = 0;

  std::uint64_t Next() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  }
  // Delay mix mirroring the simulator: mostly slice-scale, occasionally
  // accounting-scale, rarely beyond the level-0 rotation.
  TimeNs Delay() {
    const std::uint64_t pick = Next() % 16;
    if (pick < 12) return 1 + static_cast<TimeNs>(Next() % 100000);      // <= 100 us
    if (pick < 15) return 1 + static_cast<TimeNs>(Next() % 3000000);     // <= 3 ms
    return 1 + static_cast<TimeNs>(Next() % 50000000);                   // <= 50 ms
  }
};

struct EngineResult {
  std::uint64_t events;
  double seconds;
};

EngineResult RunLegacy(TimeNs horizon) {
  LegacySimulation sim;
  Churn churn;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::function<void()>> actors(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors[static_cast<std::size_t>(i)] = [&sim, &churn, &actors, i] {
      ++churn.fired;
      sim.ScheduleAfter(churn.Delay(), actors[static_cast<std::size_t>(i)]);
      const EventId one =
          sim.ScheduleAfter(1 + static_cast<TimeNs>(churn.Next() % 200000),
                            [&churn] { ++churn.fired; });
      if (churn.Next() % 2 == 0) {
        sim.Cancel(one);
      }
    };
    sim.ScheduleAt(static_cast<TimeNs>(churn.Next() % 100000),
                   actors[static_cast<std::size_t>(i)]);
  }
  std::vector<std::function<void()>> ticks(kPeriodics);
  for (int i = 0; i < kPeriodics; ++i) {
    const TimeNs period = 30000 + 1000 * i;
    ticks[static_cast<std::size_t>(i)] = [&sim, &churn, &ticks, i, period] {
      ++churn.fired;
      sim.ScheduleAfter(period, ticks[static_cast<std::size_t>(i)]);
    };
    sim.ScheduleAt(period, ticks[static_cast<std::size_t>(i)]);
  }
  sim.RunUntil(horizon);
  return EngineResult{sim.events_executed(), SecondsSince(start)};
}

EngineResult RunWheel(TimeNs horizon) {
  Simulation sim;
  Churn churn;
  const auto start = std::chrono::steady_clock::now();
  std::vector<EventId> actors;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(sim.CreateTimer([&sim, &churn, &actors, i] {
      ++churn.fired;
      sim.Arm(actors[static_cast<std::size_t>(i)], sim.Now() + churn.Delay());
      const EventId one =
          sim.ScheduleAfter(1 + static_cast<TimeNs>(churn.Next() % 200000),
                            [&churn] { ++churn.fired; });
      if (churn.Next() % 2 == 0) {
        sim.Cancel(one);
      }
    }));
    sim.Arm(actors.back(), static_cast<TimeNs>(churn.Next() % 100000));
  }
  for (int i = 0; i < kPeriodics; ++i) {
    const TimeNs period = 30000 + 1000 * i;
    sim.SchedulePeriodic(period, period, [&churn] { ++churn.fired; });
  }
  sim.RunUntil(horizon);
  return EngineResult{sim.events_executed(), SecondsSince(start)};
}

// Per-event cost distribution: the wheel workload advanced in fixed
// sim-time chunks, sampling wall-clock ns per event for each chunk (timing
// individual callbacks would perturb what it measures). Percentiles are over
// the chunk samples.
struct PerEventNs {
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

PerEventNs RunWheelPercentiles(TimeNs horizon) {
  Simulation sim;
  Churn churn;
  std::vector<EventId> actors;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(sim.CreateTimer([&sim, &churn, &actors, i] {
      ++churn.fired;
      sim.Arm(actors[static_cast<std::size_t>(i)], sim.Now() + churn.Delay());
      const EventId one =
          sim.ScheduleAfter(1 + static_cast<TimeNs>(churn.Next() % 200000),
                            [&churn] { ++churn.fired; });
      if (churn.Next() % 2 == 0) {
        sim.Cancel(one);
      }
    }));
    sim.Arm(actors.back(), static_cast<TimeNs>(churn.Next() % 100000));
  }
  for (int i = 0; i < kPeriodics; ++i) {
    const TimeNs period = 30000 + 1000 * i;
    sim.SchedulePeriodic(period, period, [&churn] { ++churn.fired; });
  }

  constexpr int kChunks = 200;
  const TimeNs chunk = horizon / kChunks;
  std::vector<double> samples;
  samples.reserve(kChunks);
  sim.RunUntil(chunk);  // Warm-up chunk: pool growth, wheel priming.
  for (int i = 1; i < kChunks; ++i) {
    const std::uint64_t before = sim.events_executed();
    const auto start = std::chrono::steady_clock::now();
    sim.RunUntil(chunk * (i + 1));
    const double wall_ns = SecondsSince(start) * 1e9;
    const std::uint64_t events = sim.events_executed() - before;
    if (events > 0) {
      samples.push_back(wall_ns / static_cast<double>(events));
    }
  }
  std::sort(samples.begin(), samples.end());
  const auto at = [&samples](double q) {
    if (samples.empty()) return 0.0;
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[index];
  };
  return PerEventNs{at(0.50), at(0.90), at(0.99)};
}

// Sharded single-host mode: the same churn population split across 4 pCPU
// shards with a ring of cross-shard posts, run once multiplexed on the
// serial engine and once on per-shard engines (worker threads when the host
// has them). Per-shard FNV fingerprints must match between the modes — the
// speedup is only reported if "fast" is provably not "different".
constexpr int kShards = 4;
constexpr int kShardActors = 16;  // Per shard; 4 * 16 matches kActors.

struct ShardedBench {
  struct Actor {
    ShardedBench* owner = nullptr;
    int shard = 0;
    int index = 0;
    EventId timer = kInvalidEvent;
  };
  struct Shard {
    Churn churn;
    std::uint64_t fp = 1469598103934665603ull;
    std::uint64_t posts = 0;
  };

  explicit ShardedBench(const ShardedSimulation::Options& options)
      : sim(options) {
    shards.resize(kShards);
    actors.resize(kShards * kShardActors);
    for (int s = 0; s < kShards; ++s) {
      shards[static_cast<std::size_t>(s)].churn.lcg = 42 + 1000ull * s;
      Simulation& engine = sim.shard(s);
      for (int i = 0; i < kShardActors; ++i) {
        Actor* actor = &actors[static_cast<std::size_t>(s * kShardActors + i)];
        actor->owner = this;
        actor->shard = s;
        actor->index = i;
        actor->timer = engine.CreateTimer([actor] { Fire(actor); });
        engine.Arm(actor->timer,
                   static_cast<TimeNs>(
                       shards[static_cast<std::size_t>(s)].churn.Next() %
                       100000));
      }
      // Per-shard accounting ticks (kPeriodics split across the shards).
      Shard* shard = &shards[static_cast<std::size_t>(s)];
      for (int i = 0; i < kPeriodics / kShards; ++i) {
        const TimeNs period = 30000 + 1000 * (s * (kPeriodics / kShards) + i);
        engine.SchedulePeriodic(period, period,
                                [shard] { ++shard->churn.fired; });
      }
    }
  }

  static void Mix(std::uint64_t& fp, std::uint64_t v) {
    fp = (fp ^ v) * 1099511628211ull;
  }

  static void Fire(Actor* actor) {
    ShardedBench* bench = actor->owner;
    Shard& shard = bench->shards[static_cast<std::size_t>(actor->shard)];
    Simulation& engine = bench->sim.shard(actor->shard);
    ++shard.churn.fired;
    Mix(shard.fp, static_cast<std::uint64_t>(engine.Now()));
    engine.Arm(actor->timer, engine.Now() + shard.churn.Delay());
    const EventId one = engine.ScheduleAfter(
        1 + static_cast<TimeNs>(shard.churn.Next() % 200000),
        [&shard] { ++shard.churn.fired; });
    if (shard.churn.Next() % 2 == 0) {
      engine.Cancel(one);
    }
    if (shard.churn.fired % 64 == 0) {
      const int to = (actor->shard + 1) % kShards;
      Shard* target = &bench->shards[static_cast<std::size_t>(to)];
      ShardedBench* owner = bench;
      ++shard.posts;
      const auto posted =
          bench->sim.Post(actor->shard, to,
                          bench->sim.epoch_ns() +
                              static_cast<TimeNs>(shard.churn.Next() % 100000),
                          [owner, target, to] {
                            ++target->churn.fired;
                            Mix(target->fp, static_cast<std::uint64_t>(
                                                owner->sim.shard(to).Now()));
                          });
      TABLEAU_CHECK(posted.ok());
    }
  }

  std::vector<std::uint64_t> Fingerprints() const {
    std::vector<std::uint64_t> fps;
    for (const Shard& shard : shards) {
      fps.push_back(shard.fp);
    }
    return fps;
  }

  ShardedSimulation sim;
  std::vector<Shard> shards;
  std::vector<Actor> actors;
};

struct ShardedResult {
  std::uint64_t events;
  double seconds;
  std::vector<std::uint64_t> fingerprints;
};

ShardedResult RunSharded(TimeNs horizon, bool sharded, bool parallel) {
  ShardedSimulation::Options options;
  options.num_shards = kShards;
  options.sharded = sharded;
  options.parallel = parallel;
  ShardedBench bench(options);
  const auto start = std::chrono::steady_clock::now();
  bench.sim.RunUntil(horizon);
  return ShardedResult{bench.sim.events_executed(), SecondsSince(start),
                       bench.Fingerprints()};
}

// Harness comparison: the same batch of short full-system simulations run
// serially and through RunSimulations on the worker pool. The per-cell
// results are identical; only the wall clock differs.
std::uint64_t HarnessCell(SchedKind kind, bool capped, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);
  scenario.vantage->EnableInstrumentation();
  CpuHogWorkload loop(scenario.machine, scenario.vantage);
  loop.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  RecordScenarioMetrics(scenario);
  return scenario.machine->sim().events_executed();
}

}  // namespace

int main() {
  const TimeNs horizon = MeasureDuration(2 * kSecond);

  PrintHeader("Event engine: events/sec, heap+tombstones vs timer wheel + pool");
  const EngineResult legacy = RunLegacy(horizon);
  const EngineResult wheel = RunWheel(horizon);
  const double legacy_rate = static_cast<double>(legacy.events) / legacy.seconds;
  const double wheel_rate = static_cast<double>(wheel.events) / wheel.seconds;
  std::printf("legacy heap : %10.0f events/s  (%llu events in %.3f s)\n", legacy_rate,
              static_cast<unsigned long long>(legacy.events), legacy.seconds);
  std::printf("timer wheel : %10.0f events/s  (%llu events in %.3f s)\n", wheel_rate,
              static_cast<unsigned long long>(wheel.events), wheel.seconds);
  std::printf("speedup     : %10.2fx\n", wheel_rate / legacy_rate);
  std::printf("pre-PR wheel: %10.0f events/s  -> %.2fx this PR\n",
              kPrePrWheelEventsPerSec, wheel_rate / kPrePrWheelEventsPerSec);

  PrintHeader("Per-event cost: wall ns/event over fixed sim-time chunks");
  const PerEventNs per_event = RunWheelPercentiles(horizon);
  std::printf("p50 %.1f ns  p90 %.1f ns  p99 %.1f ns\n", per_event.p50,
              per_event.p90, per_event.p99);

  PrintHeader("Sharded single-host mode: serial vs per-pCPU engines");
  const bool parallel_shards = BenchThreads() > 1;
  const ShardedResult shard_serial =
      RunSharded(horizon, /*sharded=*/false, /*parallel=*/false);
  const ShardedResult shard_split =
      RunSharded(horizon, /*sharded=*/true, parallel_shards);
  const double shard_serial_rate =
      static_cast<double>(shard_serial.events) / shard_serial.seconds;
  const double shard_split_rate =
      static_cast<double>(shard_split.events) / shard_split.seconds;
  const bool shard_deterministic =
      shard_serial.fingerprints == shard_split.fingerprints &&
      shard_serial.events == shard_split.events;
  std::printf("serial  : %10.0f events/s  (%llu events)\n", shard_serial_rate,
              static_cast<unsigned long long>(shard_serial.events));
  std::printf("sharded : %10.0f events/s  (%d shards, %s, fingerprints %s)\n",
              shard_split_rate, kShards,
              parallel_shards ? "threaded" : "single-threaded",
              shard_deterministic ? "identical" : "DIVERGED");
  std::printf("speedup : %10.2fx\n", shard_split_rate / shard_serial_rate);

  PrintHeader("Measurement harness: serial sweep vs parallel RunSimulations");
  const TimeNs cell_duration = 100 * kMillisecond;
  std::vector<std::function<std::uint64_t()>> tasks;
  for (const SchedKind kind : {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}) {
    tasks.push_back([=] { return HarnessCell(kind, /*capped=*/true, cell_duration); });
  }
  for (const SchedKind kind : {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}) {
    tasks.push_back([=] { return HarnessCell(kind, /*capped=*/false, cell_duration); });
  }
  const auto serial_start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> serial_cells;
  for (const auto& task : tasks) {
    serial_cells.push_back(task());
  }
  const double serial_seconds = SecondsSince(serial_start);
  const auto parallel_start = std::chrono::steady_clock::now();
  const std::vector<std::uint64_t> parallel_cells = RunSimulations(tasks);
  const double parallel_seconds = SecondsSince(parallel_start);
  bool identical = serial_cells == parallel_cells;
  std::printf("serial   : %.3f s for %zu simulations\n", serial_seconds, tasks.size());
  std::printf("parallel : %.3f s on %d threads (results %s)\n", parallel_seconds,
              BenchThreads(), identical ? "identical" : "DIVERGED");

  BenchJson json("sim_engine");
  json.Add("legacy_events_per_sec", legacy_rate);
  json.Add("wheel_events_per_sec", wheel_rate);
  json.Add("speedup", wheel_rate / legacy_rate);
  json.Add("pre_pr_wheel_events_per_sec", kPrePrWheelEventsPerSec);
  json.Add("wheel_speedup_vs_pre_pr", wheel_rate / kPrePrWheelEventsPerSec);
  json.Add("per_event_ns_p50", per_event.p50);
  json.Add("per_event_ns_p90", per_event.p90);
  json.Add("per_event_ns_p99", per_event.p99);
  json.Add("sharded_serial_events_per_sec", shard_serial_rate);
  json.Add("sharded_events_per_sec", shard_split_rate);
  json.Add("sharded_speedup", shard_split_rate / shard_serial_rate);
  json.Add("sharded_shards", kShards);
  json.Add("sharded_threaded", parallel_shards ? 1 : 0);
  json.Add("sharded_deterministic", shard_deterministic ? 1 : 0);
  json.Add("harness_serial_sec", serial_seconds);
  json.Add("harness_parallel_sec", parallel_seconds);
  json.Add("harness_threads", BenchThreads());
  json.Add("harness_deterministic", identical ? 1 : 0);
  json.Write();
  return identical && shard_deterministic ? 0 : 1;
}
