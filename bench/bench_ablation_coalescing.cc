// Ablation: the coalescing post-pass (Sec. 5, "Post-processing"). Sweeps the
// sub-threshold-allocation coalescing threshold and reports, for a mixed-
// tier workload whose EDF schedule produces fragmented allocations:
//  - the number of allocations and the serialized table size,
//  - the shortest allocation (which sets the slice length and hence the
//    slice-table size),
//  - the total time donated away from vCPUs (the guarantee cost of the pass).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"

using namespace tableau;
using namespace tableau::bench;

int main() {
  PrintHeader("Ablation: coalescing threshold sweep (mixed-tier workload, 4 cores)");
  std::printf("%12s %8s %12s %14s %14s\n", "threshold", "allocs", "table bytes",
              "min alloc", "donated total");

  for (const TimeNs threshold : {TimeNs{0}, 5 * kMicrosecond, 15 * kMicrosecond,
                                 30 * kMicrosecond, 60 * kMicrosecond,
                                 120 * kMicrosecond}) {
    PlannerConfig config;
    config.num_cpus = 4;
    config.coalesce_threshold = threshold;
    const Planner planner(config);
    // Mixed tiers fragment the EDF schedule: different periods preempt each
    // other mid-allocation.
    std::vector<VcpuRequest> requests;
    int id = 0;
    for (int i = 0; i < 3; ++i) {
      requests.push_back({id++, 0.5, 10 * kMillisecond});
    }
    for (int i = 0; i < 6; ++i) {
      requests.push_back({id++, 0.25, 30 * kMillisecond});
    }
    for (int i = 0; i < 9; ++i) {
      requests.push_back({id++, 0.10, 100 * kMillisecond});
    }
    const PlanResult plan = planner.Solve(PlanRequest::Full(requests));
    TABLEAU_CHECK_MSG(plan.success, "%s", plan.error.c_str());

    std::size_t allocations = 0;
    TimeNs min_alloc = plan.table.length();
    for (int cpu = 0; cpu < plan.table.num_cpus(); ++cpu) {
      allocations += plan.table.cpu(cpu).allocations.size();
      for (const Allocation& alloc : plan.table.cpu(cpu).allocations) {
        min_alloc = std::min(min_alloc, alloc.Length());
      }
    }
    TimeNs donated = 0;
    for (const VcpuPlan& vcpu : plan.vcpus) {
      donated += vcpu.donated_ns;
    }
    std::printf("%12s %8zu %12zu %14s %14s\n", FormatDuration(threshold).c_str(),
                allocations, plan.table.SerializedSizeBytes(),
                FormatDuration(min_alloc).c_str(), FormatDuration(donated).c_str());
  }
  std::printf(
      "\ninterpretation: higher thresholds shrink the table and lengthen the\n"
      "shortest allocation (fewer, larger slices => better lookup locality) at\n"
      "the cost of donated reservation time; sub-threshold slivers cannot be\n"
      "enforced anyway given context-switch overheads (Sec. 5).\n");
  return 0;
}
