// Reproduces Fig. 8: web-server latency vs throughput for 100 KiB files with
// stress's cache-thrashing (fully CPU-bound) background workload, capped
// (first row) and uncapped (second row).
//
// Paper claims to check:
//  - capped: all schedulers perform similarly — the CPU-bound background
//    never voluntarily invokes the scheduler, so scheduling overhead stops
//    being a bottleneck and RTDS recovers.
//  - uncapped: Credit's boost heuristic finally works as intended (the
//    vantage VM is the only I/O-bound VM) and beats Credit2; Tableau
//    outperforms both, and its peak matches its capped peak — the guaranteed
//    reservation shields it from the aggressive background demand.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/web.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

void RunPanel(const char* title, bool capped, const std::vector<SchedKind>& kinds,
              const std::vector<double>& rates, TimeNs duration) {
  PrintHeader(title);
  std::printf("%-10s %8s %10s %10s %10s %10s\n", "sched", "rate", "tput", "mean(ms)",
              "p99(ms)", "max(ms)");
  for (const SchedKind kind : kinds) {
    double sla_peak = 0;
    for (const double rate : rates) {
      ScenarioConfig config;
      config.scheduler = kind;
      config.capped = capped;
      Scenario scenario = BuildScenario(config);
      WebServerWorkload::Config web_config;
      web_config.file_bytes = 100 << 10;
      WebServerWorkload server(scenario.machine.get(), scenario.vantage, web_config);
      OpenLoopClient::Config client_config;
      client_config.requests_per_sec = rate;
      client_config.duration = duration;
      OpenLoopClient client(scenario.machine.get(), &server, client_config);
      client.Start(0);
      BackgroundWorkloads background;
      AttachBackground(scenario, Background::kCpu, 1, background);
      scenario.machine->Start();
      scenario.machine->RunFor(duration);

      const double tput = static_cast<double>(server.completed()) / ToSec(duration);
      const double p99 = ToMs(server.latencies().Percentile(0.99));
      std::printf("%-10s %8.0f %10.1f %10.2f %10.2f %10.2f\n", SchedKindName(kind), rate,
                  tput, ToMs(static_cast<TimeNs>(server.latencies().Mean())), p99,
                  ToMs(server.latencies().Max()));
      if (p99 < 100.0 && tput > sla_peak) {
        sla_peak = tput;
      }
    }
    std::printf("%-10s SLA-aware peak (p99 <= 100 ms): %.0f req/s\n",
                SchedKindName(kind), sla_peak);
  }
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(4 * kSecond);
  const std::vector<double> rates = {300, 600, 900, 1200, 1340, 1450};

  RunPanel("Fig 8(a-c): capped, 100 KiB, cache-thrashing (CPU) background",
           /*capped=*/true,
           {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}, rates, duration);
  std::printf("paper: little differentiation among schedulers in the capped case.\n");

  RunPanel("Fig 8(d-f): uncapped, 100 KiB, cache-thrashing (CPU) background",
           /*capped=*/false,
           {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}, rates,
           duration);
  std::printf(
      "paper: Credit beats Credit2 (boosting works when only the vantage VM does\n"
      "I/O); Tableau beats both, and its peak matches its capped peak — the\n"
      "reservation shields it from the aggressive uncapped background.\n");
  return 0;
}
