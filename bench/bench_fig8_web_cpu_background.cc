// Reproduces Fig. 8: web-server latency vs throughput for 100 KiB files with
// stress's cache-thrashing (fully CPU-bound) background workload, capped
// (first row) and uncapped (second row).
//
// Paper claims to check:
//  - capped: all schedulers perform similarly — the CPU-bound background
//    never voluntarily invokes the scheduler, so scheduling overhead stops
//    being a bottleneck and RTDS recovers.
//  - uncapped: Credit's boost heuristic finally works as intended (the
//    vantage VM is the only I/O-bound VM) and beats Credit2; Tableau
//    outperforms both, and its peak matches its capped peak — the guaranteed
//    reservation shields it from the aggressive background demand.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/web.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct WebPoint {
  double tput;
  double mean_ms;
  double p99_ms;
  double max_ms;
};

WebPoint MeasureWeb(SchedKind kind, bool capped, double rate, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);
  WebServerWorkload::Config web_config;
  web_config.file_bytes = 100 << 10;
  WebServerWorkload server(scenario.machine, scenario.vantage, web_config);
  OpenLoopClient::Config client_config;
  client_config.requests_per_sec = rate;
  client_config.duration = duration;
  OpenLoopClient client(scenario.machine, &server, client_config);
  client.Start(0);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kCpu, 1, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  RecordScenarioMetrics(scenario);
  return WebPoint{static_cast<double>(server.completed()) / ToSec(duration),
                  ToMs(static_cast<TimeNs>(server.latencies().Mean())),
                  ToMs(server.latencies().Percentile(0.99)),
                  ToMs(server.latencies().Max())};
}

void RunPanel(const char* title, const char* prefix, bool capped,
              const std::vector<SchedKind>& kinds, const std::vector<double>& rates,
              TimeNs duration, BenchJson& json) {
  // Independent (scheduler, rate) cells: fan out, merge by index.
  std::vector<std::function<WebPoint()>> tasks;
  for (const SchedKind kind : kinds) {
    for (const double rate : rates) {
      tasks.push_back([=] { return MeasureWeb(kind, capped, rate, duration); });
    }
  }
  const std::vector<WebPoint> points = RunSimulations(tasks);

  PrintHeader(title);
  std::printf("%-10s %8s %10s %10s %10s %10s\n", "sched", "rate", "tput", "mean(ms)",
              "p99(ms)", "max(ms)");
  for (std::size_t row = 0; row < kinds.size(); ++row) {
    const SchedKind kind = kinds[row];
    double sla_peak = 0;
    for (std::size_t col = 0; col < rates.size(); ++col) {
      const WebPoint& point = points[row * rates.size() + col];
      std::printf("%-10s %8.0f %10.1f %10.2f %10.2f %10.2f\n", SchedKindName(kind),
                  rates[col], point.tput, point.mean_ms, point.p99_ms, point.max_ms);
      if (point.p99_ms < 100.0 && point.tput > sla_peak) {
        sla_peak = point.tput;
      }
    }
    std::printf("%-10s SLA-aware peak (p99 <= 100 ms): %.0f req/s\n",
                SchedKindName(kind), sla_peak);
    json.Add(std::string(prefix) + "." + SchedKindName(kind) + ".sla_peak_rps",
             sla_peak);
  }
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(4 * kSecond);
  const std::vector<double> rates = {300, 600, 900, 1200, 1340, 1450};
  BenchJson json("fig8_web_cpu_background");

  RunPanel("Fig 8(a-c): capped, 100 KiB, cache-thrashing (CPU) background", "capped",
           /*capped=*/true,
           {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}, rates, duration,
           json);
  std::printf("paper: little differentiation among schedulers in the capped case.\n");

  RunPanel("Fig 8(d-f): uncapped, 100 KiB, cache-thrashing (CPU) background", "uncapped",
           /*capped=*/false,
           {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}, rates,
           duration, json);
  std::printf(
      "paper: Credit beats Credit2 (boosting works when only the vantage VM does\n"
      "I/O); Tableau beats both, and its peak matches its capped peak — the\n"
      "reservation shields it from the aggressive uncapped background.\n");
  json.Write();
  return 0;
}
