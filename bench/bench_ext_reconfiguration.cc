// Extension bench: end-to-end reconfiguration cost (Secs. 6 and 7.1). When a
// VM is admitted at runtime, the total "reconfiguration latency" is
//   planning time + table push + switch-in-effect delay,
// where the switch delay is bounded by two rounds of the current table
// (~205 ms for the 102.7 ms hyperperiod) by the lock-free time-synchronized
// protocol. This bench measures each component on a live simulated host and
// the size of the delta hypercall payload, demonstrating the paper's claim
// that reconfigurations cost "a few hundred milliseconds" end to end — with
// the switch protocol, not planning, as the dominant term in this
// implementation.
#include <cstdio>
#include <chrono>
#include <memory>

#include "bench/bench_util.h"
#include "src/table/table_delta.h"

using namespace tableau;
using namespace tableau::bench;

int main() {
  PrintHeader("Extension: end-to-end reconfiguration latency (one VM arrives)");
  std::printf("%10s | %12s %12s %12s %14s\n", "push at", "plan (ms)", "switch (ms)",
              "total (ms)", "delta bytes");

  for (const TimeNs push_offset :
       {10 * kMillisecond, 60 * kMillisecond, 101 * kMillisecond}) {
    ScenarioConfig config;
    config.scheduler = SchedKind::kTableau;
    config.capped = true;
    Scenario scenario = BuildScenario(config);
    // Free one slot: plan for 47 of the 48 vCPUs initially.
    std::vector<VcpuRequest> requests;
    for (int i = 0; i < 47; ++i) {
      requests.push_back({i, 0.25, 20 * kMillisecond});
    }
    PlannerConfig planner_config;
    planner_config.num_cpus = config.guest_cpus;
    const Planner planner(planner_config);
    PlanResult base = planner.Solve(PlanRequest::Full(requests));
    TABLEAU_CHECK(base.success);
    scenario.tableau->PushTable(std::make_shared<SchedulingTable>(base.table));

    BackgroundWorkloads background;
    AttachBackground(scenario, Background::kIo, 0, background);
    scenario.machine->Start();
    scenario.machine->RunFor(push_offset);

    // VM 47 arrives: incremental replan, delta push, timed switch.
    const auto wall_start = std::chrono::steady_clock::now();
    const PlanResult next =
        planner.Solve(PlanRequest::Delta(base, {{47, 0.25, 20 * kMillisecond}}));
    TABLEAU_CHECK(next.success);
    const auto delta = SerializeDelta(base.table, next.table);
    const double plan_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall_start)
            .count();

    const TimeNs pushed_at = scenario.machine->Now();
    scenario.tableau->PushTable(std::make_shared<SchedulingTable>(next.table));
    const TimeNs effective_at = scenario.tableau->dispatcher().pending_switch_time();
    const double switch_ms = ToMs(effective_at - pushed_at);

    std::printf("%9.0fms | %12.3f %12.1f %12.1f %14zu\n", ToMs(push_offset), plan_ms,
                switch_ms, plan_ms + switch_ms, delta.size());

    // Sanity: run past the switch; the new vCPU's reservation is in effect.
    scenario.machine->RunFor(effective_at - pushed_at + 300 * kMillisecond);
    TABLEAU_CHECK(scenario.tableau->dispatcher().pending_switch_time() == kTimeNever);
  }

  std::printf(
      "\ninterpretation: planning is sub-millisecond (C++ planner + incremental\n"
      "replanning), the delta hypercall is a few hundred bytes, and the\n"
      "time-synchronized switch dominates at 1-2 rounds of the 102.7 ms table —\n"
      "consistent with the paper's 'few hundred milliseconds per reconfiguration'\n"
      "and far below Xen's multi-second VM creation times (Sec. 7.1).\n");
  return 0;
}
