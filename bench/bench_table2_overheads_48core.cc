// Reproduces Table 2: average runtime overheads (in us) for three key
// scheduler operations on the 48-core, 4-socket server (44 guest cores, 176
// single-vCPU VMs, I/O-intensive stress).
//
// Paper reference values (us):
//            Credit  Credit2  RTDS    Tableau
//  Schedule  16.40   4.70     4.39    2.49
//  Wakeup    7.07    5.61     19.16   1.82
//  Migrate   0.42    18.19    168.62  0.66
//
// The headline claim: "RTDS' global lock does not scale well: on average,
// RTDS spends over 168us while attempting to migrate a VM each time it is
// preempted", while Tableau's core-local design stays flat.
#include <cstdio>

#include "bench/bench_util.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct Row {
  double schedule_us;
  double wakeup_us;
  double migrate_us;
};

Row MeasureScheduler(SchedKind kind, TimeNs duration) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.guest_cpus = 44;
  config.cores_per_socket = 11;  // 4 sockets.
  config.capped = (kind != SchedKind::kCredit2);
  Scenario scenario = BuildScenario(config);
  BackgroundWorkloads background;
  AttachBackground(scenario, Background::kIo, 0, background);
  scenario.machine->Start();
  scenario.machine->RunFor(duration);
  RecordScenarioMetrics(scenario);
  const OpStats& stats = scenario.machine->op_stats();
  return Row{ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kSchedule).Mean())),
             ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kWakeup).Mean())),
             ToUs(static_cast<TimeNs>(stats.Of(SchedOp::kMigrate).Mean()))};
}

}  // namespace

int main() {
  const TimeNs duration = MeasureDuration(5 * kSecond);
  PrintHeader("Table 2: mean scheduler-operation overheads (us), 48-core 4-socket");
  std::printf("(44 guest cores, 176 VMs, I/O-intensive stress, %.0f s simulated)\n",
              ToSec(duration));

  const SchedKind kinds[] = {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kRtds,
                             SchedKind::kTableau};
  std::vector<std::function<Row()>> tasks;
  for (const SchedKind kind : kinds) {
    tasks.push_back([=] { return MeasureScheduler(kind, duration); });
  }
  const std::vector<Row> rows = RunSimulations(tasks);

  std::printf("%-10s %8s %8s %8s %8s\n", "", "Credit", "Credit2", "RTDS", "Tableau");
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", "Schedule", rows[0].schedule_us,
              rows[1].schedule_us, rows[2].schedule_us, rows[3].schedule_us);
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", "Wakeup", rows[0].wakeup_us,
              rows[1].wakeup_us, rows[2].wakeup_us, rows[3].wakeup_us);
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", "Migrate", rows[0].migrate_us,
              rows[1].migrate_us, rows[2].migrate_us, rows[3].migrate_us);
  std::printf("\npaper:     Schedule 16.40 /  4.70 /   4.39 / 2.49\n");
  std::printf("           Wakeup    7.07 /  5.61 /  19.16 / 1.82\n");
  std::printf("           Migrate   0.42 / 18.19 / 168.62 / 0.66\n");

  BenchJson json("table2_overheads_48core");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string sched = SchedKindName(kinds[i]);
    json.Add(sched + ".schedule_us", rows[i].schedule_us);
    json.Add(sched + ".wakeup_us", rows[i].wakeup_us);
    json.Add(sched + ".migrate_us", rows[i].migrate_us);
  }
  json.Write();
  return 0;
}
