// Reproduces Fig. 6: average (a, b) and maximum (c, d) round-trip ping
// latency from the client machine to the vantage VM, for uncapped and capped
// scenarios with no background, an I/O-intensive background, and a
// CPU-intensive background.
//
// Setup mirrors Sec. 7.3: randomly spaced echo requests; ICMP is handled in
// the guest kernel (ahead of user-level work) and every VM occasionally
// needs CPU for system processes — which is what makes Credit's capped
// maximum reach ~15 ms even without a background workload (a VM can exhaust
// its credit and wait out its three core-mates).
//
// Paper claims to check:
//  - uncapped avg: ~100 us for all schedulers without background; Tableau
//    noticeably higher (but within its goal) under a CPU background.
//  - capped avg: Tableau's rigid table yields clearly higher averages (but
//    well below the 20 ms goal).
//  - capped max: Credit ~15 ms with no BG and ~30 ms under I/O BG; RTDS ~9 ms;
//    Tableau never above ~10 ms regardless of background.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/telemetry.h"
#include "src/workloads/ping.h"

using namespace tableau;
using namespace tableau::bench;

namespace {

struct PingResult {
  double avg_ms;
  double max_ms;
  double jitter_ms;  // Stddev of the round-trip latency (Welford).
  // Windowed telemetry: SLO attainment and mean causal attribution of the
  // vantage VM's ping latency (queue = wake->dispatch wait, blackout =
  // table-gap preemption time), from the cell's Telemetry.
  double slo_attainment;
  double p99_ms;
  double queue_mean_ms;
  double blackout_mean_ms;
};

PingResult MeasurePing(SchedKind kind, bool capped, Background bg, int pings_per_thread,
                       const std::string& cell) {
  ScenarioConfig config;
  config.scheduler = kind;
  config.capped = capped;
  Scenario scenario = BuildScenario(config);

  // Windowed telemetry for this cell: vantage-only vCPU series (the grid has
  // 48 vCPUs; machine-wide series cover the rest), 10 ms SLO at p99 —
  // Tableau's "never above ~10 ms" claim as a trackable objective.
  obs::Telemetry::Config telemetry_config;
  telemetry_config.window_ns = 50 * kMillisecond;
  telemetry_config.window_capacity = 256;
  telemetry_config.max_vcpu_series = 1;
  telemetry_config.series_prefix = cell + ".";
  telemetry_config.slo.target_latency_ns = 10 * kMillisecond;
  telemetry_config.slo.target_quantile = 0.99;
  telemetry_config.slo.miss_budget = 0.01;
  obs::Telemetry telemetry(telemetry_config);
  AttachTelemetry(scenario, &telemetry);

  // The vantage VM hosts the echo responder plus system-process noise.
  WorkQueueGuest vantage_guest(scenario.machine, scenario.vantage);
  SystemNoiseWorkload::Config noise_config;
  noise_config.min_interval = 15 * kMillisecond;
  noise_config.max_interval = 45 * kMillisecond;
  noise_config.min_burst = 3 * kMillisecond;
  noise_config.max_burst = 8 * kMillisecond;
  noise_config.seed = 1;
  SystemNoiseWorkload vantage_noise(scenario.machine, &vantage_guest, noise_config);
  vantage_noise.Start(0);

  // Background VMs: system-process noise always (idle VMs "still require
  // CPU time occasionally for system processes"), plus the selected stress
  // workload. The fully CPU-bound hog subsumes any noise.
  BackgroundWorkloads background;
  VmNoiseWorkloads vm_noise;
  if (bg == Background::kCpu) {
    AttachBackground(scenario, bg, 1, background);
  } else {
    AttachVmNoise(scenario, 1, noise_config, /*with_io=*/bg == Background::kIo,
                  vm_noise);
  }

  PingTraffic::Config ping_config;
  ping_config.threads = 8;
  ping_config.pings_per_thread = pings_per_thread;
  ping_config.max_spacing = 20 * kMillisecond;
  PingTraffic ping(scenario.machine, &vantage_guest, ping_config);
  ping.AttachTelemetry(&telemetry);
  ping.Start(0);

  scenario.machine->Start();
  // Run until all pings have been answered (spacing mean 10 ms + margin).
  const TimeNs horizon =
      static_cast<TimeNs>(pings_per_thread) * ping_config.max_spacing / 2 + 2 * kSecond;
  scenario.machine->RunFor(horizon);
  RecordScenarioMetrics(scenario);
  AccumulatedTimeSeries::Instance().Record(telemetry.TimeSeries());

  // Vantage VM is VM 0 in BuildScenario's grouping.
  const obs::SloVerdict verdict = telemetry.slo().VerdictFor(0);
  const obs::HistogramValue latency = telemetry.RequestLatencyHistogram(0);
  const obs::HistogramValue queue =
      telemetry.AttributionHistogram(0, obs::LatencyComponent::kWakeQueue);
  const obs::HistogramValue blackout =
      telemetry.AttributionHistogram(0, obs::LatencyComponent::kBlackout);
  return PingResult{ToMs(static_cast<TimeNs>(ping.latencies().Mean())),
                    ToMs(ping.latencies().Max()),
                    ToMs(static_cast<TimeNs>(ping.latencies().StdDev())),
                    verdict.attainment,
                    ToMs(latency.Percentile(0.99)),
                    ToMs(static_cast<TimeNs>(queue.Mean())),
                    ToMs(static_cast<TimeNs>(blackout.Mean()))};
}

const char* BgKey(Background bg) {
  switch (bg) {
    case Background::kNone:
      return "no_bg";
    case Background::kIo:
    case Background::kIoHeavy:
      return "io_bg";
    case Background::kCpu:
      return "cpu_bg";
  }
  return "?";
}

void RunScenario(const char* title, const char* prefix, bool capped,
                 const std::vector<SchedKind>& kinds, int pings, BenchJson& json) {
  // Independent (scheduler, background) cells: measure in parallel, print in
  // row order.
  const std::vector<Background> bgs = {Background::kNone, Background::kIo,
                                       Background::kCpu};
  std::vector<std::function<PingResult()>> tasks;
  for (const SchedKind kind : kinds) {
    for (const Background bg : bgs) {
      const std::string cell =
          std::string(prefix) + "." + SchedKindName(kind) + "." + BgKey(bg);
      tasks.push_back([=] { return MeasurePing(kind, capped, bg, pings, cell); });
    }
  }
  const std::vector<PingResult> cells = RunSimulations(tasks);

  PrintHeader(title);
  std::printf("%-10s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "", "none avg",
              "max", "jitter", "I/O avg", "max", "jitter", "CPU avg", "max", "jitter");
  for (std::size_t row = 0; row < kinds.size(); ++row) {
    std::printf("%-10s |", SchedKindName(kinds[row]));
    for (std::size_t col = 0; col < bgs.size(); ++col) {
      const PingResult& result = cells[row * bgs.size() + col];
      std::printf(" %7.3fms %6.2fms %6.3fms |", result.avg_ms, result.max_ms,
                  result.jitter_ms);
      const std::string cell = std::string(prefix) + "." + SchedKindName(kinds[row]) +
                               "." + BgKey(bgs[col]);
      json.Add(cell + ".avg_ms", result.avg_ms);
      json.Add(cell + ".max_ms", result.max_ms);
      json.Add(cell + ".jitter_ms", result.jitter_ms);
      json.Add(cell + ".slo_attainment", result.slo_attainment);
      json.Add(cell + ".p99_ms", result.p99_ms);
      json.Add(cell + ".attr_queue_mean_ms", result.queue_mean_ms);
      json.Add(cell + ".attr_blackout_mean_ms", result.blackout_mean_ms);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  int pings = 600;  // Per thread; 8 threads -> 4,800 samples per cell.
  if (const char* env = std::getenv("TABLEAU_BENCH_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) {
      pings = static_cast<int>(seconds * 100);
    }
  }
  BenchJson json("fig6_ping_latency");
  RunScenario("Fig 6(a,c): ping latency, uncapped VMs", "uncapped", /*capped=*/false,
              {SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kTableau}, pings, json);
  std::printf(
      "paper: avg ~0.1 ms for all with no BG; Credit max approaches 75 ms under\n"
      "I/O BG; Tableau avg higher under CPU BG but max always <= 10 ms.\n");

  RunScenario("Fig 6(b,d): ping latency, capped VMs", "capped", /*capped=*/true,
              {SchedKind::kCredit, SchedKind::kRtds, SchedKind::kTableau}, pings, json);
  std::printf(
      "paper: Credit max ~15 ms even with no BG and ~30 ms under I/O BG;\n"
      "RTDS max ~9 ms; Tableau max <= 10 ms regardless of background.\n");
  // Windowed telemetry from every cell, merged order-independently (cells
  // record concurrently; TimeSeriesSnapshot::Merge commutes).
  json.AddRawBlock("timeseries",
                   AccumulatedTimeSeries::Instance().Get().ToJson(/*indent=*/2));
  json.Write();
  return 0;
}
