// Shared helpers for the experiment-reproduction benches: each bench binary
// regenerates one table or figure from the paper (see DESIGN.md's
// experiment index) and prints the same rows/series the paper reports.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/scenario.h"
#include "src/workloads/guest.h"
#include "src/workloads/stress.h"

namespace tableau::bench {

// Simulated duration scaling: set TABLEAU_BENCH_SECONDS to stretch runs
// (default keeps the full suite fast while converged).
inline TimeNs MeasureDuration(TimeNs default_duration) {
  if (const char* env = std::getenv("TABLEAU_BENCH_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) {
      return static_cast<TimeNs>(seconds * kSecond);
    }
  }
  return default_duration;
}

enum class Background { kNone, kIo, kIoHeavy, kCpu };

inline const char* BackgroundName(Background bg) {
  switch (bg) {
    case Background::kNone:
      return "none";
    case Background::kIo:
      return "I/O";
    case Background::kIoHeavy:
      return "I/O";
    case Background::kCpu:
      return "CPU";
  }
  return "?";
}

// Attaches the selected background workload to vCPUs [first, end).
struct BackgroundWorkloads {
  std::vector<std::unique_ptr<StressIoWorkload>> io;
  std::vector<std::unique_ptr<CpuHogWorkload>> cpu;
};

inline void AttachBackground(Scenario& scenario, Background kind, std::size_t first,
                             BackgroundWorkloads& out) {
  for (std::size_t i = first; i < scenario.vcpus.size(); ++i) {
    switch (kind) {
      case Background::kNone:
        break;
      case Background::kIo:
      case Background::kIoHeavy: {
        StressIoWorkload::Config config;
        if (kind == Background::kIoHeavy) {
          config = StressIoWorkload::Config::Heavy();
        }
        config.seed = i + 1;
        out.io.push_back(std::make_unique<StressIoWorkload>(scenario.machine.get(),
                                                            scenario.vcpus[i], config));
        out.io.back()->Start(0);
        break;
      }
      case Background::kCpu:
        out.cpu.push_back(
            std::make_unique<CpuHogWorkload>(scenario.machine.get(), scenario.vcpus[i]));
        out.cpu.back()->Start(0);
        break;
    }
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace tableau::bench

#endif  // BENCH_BENCH_UTIL_H_
