// Shared helpers for the experiment-reproduction benches: each bench binary
// regenerates one table or figure from the paper (see DESIGN.md's
// experiment index) and prints the same rows/series the paper reports.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/check/table_verifier.h"
#include "src/common/thread_pool.h"
#include "src/harness/scenario.h"
#include "src/harness/workloads.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/workloads/guest.h"
#include "src/workloads/stress.h"

namespace tableau::bench {

// TABLEAU_VERIFY_TABLES=1 turns every table the planner emits during a bench
// run into a property check: the TableVerifier audits each successful Solve
// and aborts with a violation report if the reservation contract is broken.
// Installed before main() so no bench can forget to opt in.
inline const bool kTableVerificationInstalled = [] {
  const char* env = std::getenv("TABLEAU_VERIFY_TABLES");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    check::InstallPlannerVerification();
  }
  return true;
}();

// Simulated duration scaling: set TABLEAU_BENCH_SECONDS to stretch runs
// (default keeps the full suite fast while converged).
inline TimeNs MeasureDuration(TimeNs default_duration) {
  if (const char* env = std::getenv("TABLEAU_BENCH_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) {
      return static_cast<TimeNs>(seconds * kSecond);
    }
  }
  return default_duration;
}

// Background / BackgroundWorkloads / AttachBackground / AttachVmNoise moved
// to the public harness API (src/harness/workloads.h, namespace tableau);
// included above so existing bench call sites resolve unchanged.

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Worker count for the parallel measurement harness: TABLEAU_BENCH_THREADS
// overrides (1 forces the serial path); default is the hardware concurrency.
inline int BenchThreads() {
  if (const char* env = std::getenv("TABLEAU_BENCH_THREADS")) {
    const int threads = std::atoi(env);
    if (threads > 0) {
      return threads;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Runs a batch of independent simulations on a worker pool and returns the
// results in task order. Every task owns its Scenario/Machine/Simulation and
// seeds its RNGs deterministically from its own parameters, so each cell's
// result — and therefore the merged output — is byte-identical to a serial
// run; only wall-clock time changes.
template <typename Result>
std::vector<Result> RunSimulations(const std::vector<std::function<Result()>>& tasks) {
  std::vector<Result> results(tasks.size());
  ThreadPool pool(BenchThreads());
  // Grain 1: cells are heavy and heterogeneous (scheduler x load grid), so
  // per-cell stealing balances load better than coarse grains.
  pool.ParallelFor(tasks.size(),
                   [&](std::size_t i) { results[i] = tasks[i](); },
                   /*grain=*/1);
  return results;
}

// Process-wide metrics accumulator: every measured run folds its machine's
// snapshot in here (thread-safe — RunSimulations tasks record concurrently),
// and BenchJson embeds the merged result in the artifact.
struct AccumulatedMetrics {
  std::mutex mu;
  obs::MetricsSnapshot merged;

  static AccumulatedMetrics& Instance() {
    static AccumulatedMetrics instance;
    return instance;
  }

  void Record(const obs::MetricsSnapshot& snapshot) {
    std::lock_guard<std::mutex> lock(mu);
    merged.Merge(snapshot);
  }

  obs::MetricsSnapshot Get() {
    std::lock_guard<std::mutex> lock(mu);
    return merged;
  }
};

// Folds one finished scenario's machine metrics (scheduler counters, sim
// engine internals, planner phase timings) into the process-wide accumulator.
// Call once per simulation, after Run.
inline void RecordScenarioMetrics(Scenario& scenario) {
  if (scenario.machine != nullptr) {
    AccumulatedMetrics::Instance().Record(scenario.machine->SnapshotMetrics());
  }
}

// For planner-only benches (no machine): fold a registry's snapshot directly.
inline void RecordRegistryMetrics(obs::MetricsRegistry& registry) {
  AccumulatedMetrics::Instance().Record(registry.Snapshot());
}

// Process-wide time-series accumulator, the windowed-telemetry counterpart
// of AccumulatedMetrics: measurement cells record their telemetry windows
// concurrently from RunSimulations workers; TimeSeriesSnapshot::Merge is
// commutative/associative, so the merged result is independent of worker
// interleaving and byte-identical to a serial run.
struct AccumulatedTimeSeries {
  std::mutex mu;
  obs::TimeSeriesSnapshot merged;

  static AccumulatedTimeSeries& Instance() {
    static AccumulatedTimeSeries instance;
    return instance;
  }

  void Record(const obs::TimeSeriesSnapshot& snapshot) {
    std::lock_guard<std::mutex> lock(mu);
    merged.Merge(snapshot);
  }

  obs::TimeSeriesSnapshot Get() {
    std::lock_guard<std::mutex> lock(mu);
    return merged;
  }
};

// Accumulates scalar metrics and writes them as BENCH_<name>.json in the
// working directory: a flat {"metric": value} object — a stable artifact
// for tooling to diff across runs (see run_all.sh) — plus a "metrics" block
// holding the merged registry snapshot of every scenario the bench measured.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    entries_.emplace_back(key, value);
  }

  // Embeds an already-serialized JSON value under `key` (e.g. a merged
  // time-series snapshot or an attribution block). The caller guarantees
  // `raw_json` is valid JSON; it is emitted verbatim.
  void AddRawBlock(const std::string& key, std::string raw_json) {
    raw_blocks_.emplace_back(key, std::move(raw_json));
  }

  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(file, "{\n  \"schema_version\": \"%s\",\n  \"name\": \"%s\"",
                 obs::MetricsSnapshot::SchemaVersion(), name_.c_str());
    for (const auto& [key, value] : entries_) {
      std::fprintf(file, ",\n  \"%s\": %.6g", key.c_str(), value);
    }
    const std::string metrics =
        AccumulatedMetrics::Instance().Get().ToJson(/*indent=*/2);
    std::fprintf(file, ",\n  \"metrics\": %s", metrics.c_str());
    for (const auto& [key, raw] : raw_blocks_) {
      std::fprintf(file, ",\n  \"%s\": %s", key.c_str(), raw.c_str());
    }
    std::fprintf(file, "\n}\n");
    std::fclose(file);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> entries_;
  std::vector<std::pair<std::string, std::string>> raw_blocks_;
};

}  // namespace tableau::bench

#endif  // BENCH_BENCH_UTIL_H_
