// Tableau scheduling-table structures (paper Fig. 2).
//
// A table covers one hyperperiod and holds, per pCPU, a time-ordered list of
// non-overlapping variable-length allocations. To give the dispatcher O(1)
// lookups, each pCPU also carries a *slice table*: fixed-size time slices
// whose length equals the shortest allocation on that pCPU, so each slice
// overlaps at most two allocations (plus possibly idle time between them).
// A lookup indexes the slice table with (now mod table length) and then
// inspects at most two allocation records.
#ifndef SRC_TABLE_SCHEDULING_TABLE_H_
#define SRC_TABLE_SCHEDULING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/rt/edf_sim.h"
#include "src/rt/periodic_task.h"

namespace tableau {

// Per-pCPU portion of a scheduling table.
//
// The dispatcher-facing lookup state is struct-of-arrays: `slice_floor`
// maps a slice index to the first allocation whose end lies beyond the
// slice's start, and `alloc_start`/`alloc_end`/`alloc_vcpu` mirror
// `allocations` column-wise with two sentinel rows ({length, length,
// idle}) appended. A lookup reads one slice_floor cell and then at most
// two SoA rows — no AoS padding, no -1 index checks, and the sentinel
// rows make the candidate advance branch-free (see
// SchedulingTable::Lookup). When `slice_length` is a power of two (every
// freshly built table; see Build) `slice_shift` holds its log2 and the
// slice index is a shift instead of a 64-bit division.
struct CpuTable {
  std::vector<Allocation> allocations;  // Sorted by start, non-overlapping.
  TimeNs slice_length = 0;
  std::int32_t slice_shift = -1;  // log2(slice_length), or -1 if not a power of two.
  std::vector<std::int32_t> slice_floor;
  std::vector<TimeNs> alloc_start;   // allocations[i].start, + 2 sentinels.
  std::vector<TimeNs> alloc_end;     // allocations[i].end, + 2 sentinels.
  std::vector<VcpuId> alloc_vcpu;    // allocations[i].vcpu, + 2 sentinels.
  // vCPUs eligible for second-level scheduling on this pCPU ("core-local"
  // vCPUs, Sec. 4). For split vCPUs this reflects the trailing-core policy.
  std::vector<VcpuId> local_vcpus;

  std::size_t num_slices() const { return slice_floor.size(); }
};

// Result of a dispatcher lookup at a table offset.
struct LookupResult {
  // vCPU reserved for the current interval, or kIdleVcpu.
  VcpuId vcpu = kIdleVcpu;
  // End of the current interval (table-relative offset in (0, length]): the
  // next point at which the dispatcher must re-decide.
  TimeNs interval_end = 0;
};

class SchedulingTable {
 public:
  // Builds a table of the given length from per-CPU allocation lists
  // (unsorted input is sorted; overlap or bounds violations abort). Slice
  // tables and local-vCPU lists are derived automatically. The slice length
  // is the shortest allocation on the pCPU rounded *down* to a power of two,
  // so lookups index with a shift; the rounding at most doubles the slice
  // count (Fig. 4 table-size tradeoff) and preserves the at-most-two-overlaps
  // invariant, since slices only get shorter.
  static SchedulingTable Build(TimeNs length, std::vector<std::vector<Allocation>> per_cpu);

  // Test/ablation hook: same as Build but keeps the exact (possibly
  // non-power-of-two) shortest-allocation slice length — the pre-SoA layout's
  // geometry, exercising the division path in Lookup just like tables
  // deserialized from older v1 blobs.
  static SchedulingTable BuildWithExactSlices(TimeNs length,
                                              std::vector<std::vector<Allocation>> per_cpu);

  TimeNs length() const { return length_; }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  const CpuTable& cpu(int index) const { return cpus_[static_cast<std::size_t>(index)]; }

  // O(1) lookup via the slice table. `offset` must be in [0, length).
  LookupResult Lookup(int cpu, TimeNs offset) const;

  // Reference linear-scan lookup used by tests and the ablation benchmark.
  LookupResult LookupLinear(int cpu, TimeNs offset) const;

  // All pCPUs on which `vcpu` has at least one allocation.
  std::vector<int> CpusOf(VcpuId vcpu) const;

  // Total service received by `vcpu` over the whole table, across all pCPUs.
  TimeNs TotalService(VcpuId vcpu) const;

  // Longest contiguous interval (cyclic, across pCPUs) during which `vcpu`
  // has no allocation: the "blackout time" of Sec. 4. Returns `length()` if
  // the vCPU has no allocations at all.
  TimeNs MaxBlackout(VcpuId vcpu) const;

  // Checks structural invariants (ordering, bounds, slice consistency, and
  // that no vCPU is allocated on two pCPUs at the same instant). Returns an
  // empty string on success, else a description of the first violation.
  std::string Validate() const;

  // Binary wire format (the "hypercall format" pushed by the planner).
  std::vector<std::uint8_t> Serialize() const;
  static SchedulingTable Deserialize(const std::vector<std::uint8_t>& bytes);
  std::size_t SerializedSizeBytes() const;

 private:
  static SchedulingTable BuildImpl(TimeNs length, std::vector<std::vector<Allocation>> per_cpu,
                                   bool pow2_slices);
  // Derives slice_shift, slice_floor, and the SoA allocation mirror from
  // `allocations` and `slice_length` (used by Build and Deserialize).
  void FinalizeCpu(CpuTable& cpu) const;

  TimeNs length_ = 0;
  std::vector<CpuTable> cpus_;
};

// Analytical wake-up latency profile of a vCPU under a table (capped mode):
// a request arriving at a uniformly random instant is served immediately if
// it lands inside one of the vCPU's allocations, and otherwise waits for the
// next allocation to start. Derived in closed form from the vCPU's service
// gaps; validates the simulator's measured ping latencies (Fig. 6) against
// pure table structure.
struct LatencyProfile {
  double service_fraction = 0;  // P(arrival lands in service).
  TimeNs mean = 0;              // E[wait].
  TimeNs p99 = 0;               // 99th percentile of wait.
  TimeNs max = 0;               // Longest possible wait (== MaxBlackout).
};
LatencyProfile AnalyzeWakeupLatency(const SchedulingTable& table, VcpuId vcpu);

// Post-processing pass: absorbs allocations shorter than `threshold` into a
// time-adjacent neighbouring allocation (Sec. 5, "Post-processing"), since
// sub-threshold slivers cannot be enforced given context-switch overheads.
// Isolated sub-threshold slivers (idle on both sides) become idle time.
// Returns the total time donated away from each affected vCPU via
// `donated_out` (indexed by vCPU id) for accounting.
std::vector<std::vector<Allocation>> CoalesceAllocations(
    std::vector<std::vector<Allocation>> per_cpu, TimeNs threshold,
    std::vector<std::pair<VcpuId, TimeNs>>* donated_out);

}  // namespace tableau

#endif  // SRC_TABLE_SCHEDULING_TABLE_H_
