// Tableau scheduling-table structures (paper Fig. 2).
//
// A table covers one hyperperiod and holds, per pCPU, a time-ordered list of
// non-overlapping variable-length allocations. To give the dispatcher O(1)
// lookups, each pCPU also carries a *slice table*: fixed-size time slices
// whose length equals the shortest allocation on that pCPU, so each slice
// overlaps at most two allocations (plus possibly idle time between them).
// A lookup indexes the slice table with (now mod table length) and then
// inspects at most two allocation records.
#ifndef SRC_TABLE_SCHEDULING_TABLE_H_
#define SRC_TABLE_SCHEDULING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/rt/edf_sim.h"
#include "src/rt/periodic_task.h"

namespace tableau {

// One fixed-length slice; indices into the pCPU's allocation array for the
// (up to) two allocations overlapping the slice, or -1.
struct SliceEntry {
  std::int32_t first = -1;
  std::int32_t second = -1;
};

// Per-pCPU portion of a scheduling table.
struct CpuTable {
  std::vector<Allocation> allocations;  // Sorted by start, non-overlapping.
  TimeNs slice_length = 0;
  std::vector<SliceEntry> slices;
  // vCPUs eligible for second-level scheduling on this pCPU ("core-local"
  // vCPUs, Sec. 4). For split vCPUs this reflects the trailing-core policy.
  std::vector<VcpuId> local_vcpus;
};

// Result of a dispatcher lookup at a table offset.
struct LookupResult {
  // vCPU reserved for the current interval, or kIdleVcpu.
  VcpuId vcpu = kIdleVcpu;
  // End of the current interval (table-relative offset in (0, length]): the
  // next point at which the dispatcher must re-decide.
  TimeNs interval_end = 0;
};

class SchedulingTable {
 public:
  // Builds a table of the given length from per-CPU allocation lists
  // (unsorted input is sorted; overlap or bounds violations abort). Slice
  // tables and local-vCPU lists are derived automatically.
  static SchedulingTable Build(TimeNs length, std::vector<std::vector<Allocation>> per_cpu);

  TimeNs length() const { return length_; }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  const CpuTable& cpu(int index) const { return cpus_[static_cast<std::size_t>(index)]; }

  // O(1) lookup via the slice table. `offset` must be in [0, length).
  LookupResult Lookup(int cpu, TimeNs offset) const;

  // Reference linear-scan lookup used by tests and the ablation benchmark.
  LookupResult LookupLinear(int cpu, TimeNs offset) const;

  // All pCPUs on which `vcpu` has at least one allocation.
  std::vector<int> CpusOf(VcpuId vcpu) const;

  // Total service received by `vcpu` over the whole table, across all pCPUs.
  TimeNs TotalService(VcpuId vcpu) const;

  // Longest contiguous interval (cyclic, across pCPUs) during which `vcpu`
  // has no allocation: the "blackout time" of Sec. 4. Returns `length()` if
  // the vCPU has no allocations at all.
  TimeNs MaxBlackout(VcpuId vcpu) const;

  // Checks structural invariants (ordering, bounds, slice consistency, and
  // that no vCPU is allocated on two pCPUs at the same instant). Returns an
  // empty string on success, else a description of the first violation.
  std::string Validate() const;

  // Binary wire format (the "hypercall format" pushed by the planner).
  std::vector<std::uint8_t> Serialize() const;
  static SchedulingTable Deserialize(const std::vector<std::uint8_t>& bytes);
  std::size_t SerializedSizeBytes() const;

 private:
  TimeNs length_ = 0;
  std::vector<CpuTable> cpus_;
};

// Analytical wake-up latency profile of a vCPU under a table (capped mode):
// a request arriving at a uniformly random instant is served immediately if
// it lands inside one of the vCPU's allocations, and otherwise waits for the
// next allocation to start. Derived in closed form from the vCPU's service
// gaps; validates the simulator's measured ping latencies (Fig. 6) against
// pure table structure.
struct LatencyProfile {
  double service_fraction = 0;  // P(arrival lands in service).
  TimeNs mean = 0;              // E[wait].
  TimeNs p99 = 0;               // 99th percentile of wait.
  TimeNs max = 0;               // Longest possible wait (== MaxBlackout).
};
LatencyProfile AnalyzeWakeupLatency(const SchedulingTable& table, VcpuId vcpu);

// Post-processing pass: absorbs allocations shorter than `threshold` into a
// time-adjacent neighbouring allocation (Sec. 5, "Post-processing"), since
// sub-threshold slivers cannot be enforced given context-switch overheads.
// Isolated sub-threshold slivers (idle on both sides) become idle time.
// Returns the total time donated away from each affected vCPU via
// `donated_out` (indexed by vCPU id) for accounting.
std::vector<std::vector<Allocation>> CoalesceAllocations(
    std::vector<std::vector<Allocation>> per_cpu, TimeNs threshold,
    std::vector<std::pair<VcpuId, TimeNs>>* donated_out);

}  // namespace tableau

#endif  // SRC_TABLE_SCHEDULING_TABLE_H_
