#include "src/table/scheduling_table.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace tableau {
namespace {

constexpr std::uint32_t kMagic = 0x53'4c'42'54;  // "TBLS" little-endian.
constexpr std::uint32_t kVersion = 1;

template <typename T>
void Append(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T ReadAt(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  TABLEAU_CHECK(pos + sizeof(T) <= in.size());
  T value;
  std::memcpy(&value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

}  // namespace

SchedulingTable SchedulingTable::Build(TimeNs length,
                                       std::vector<std::vector<Allocation>> per_cpu) {
  return BuildImpl(length, std::move(per_cpu), /*pow2_slices=*/true);
}

SchedulingTable SchedulingTable::BuildWithExactSlices(
    TimeNs length, std::vector<std::vector<Allocation>> per_cpu) {
  return BuildImpl(length, std::move(per_cpu), /*pow2_slices=*/false);
}

SchedulingTable SchedulingTable::BuildImpl(TimeNs length,
                                           std::vector<std::vector<Allocation>> per_cpu,
                                           bool pow2_slices) {
  TABLEAU_CHECK(length > 0);
  SchedulingTable table;
  table.length_ = length;
  table.cpus_.resize(per_cpu.size());

  for (std::size_t c = 0; c < per_cpu.size(); ++c) {
    CpuTable& cpu = table.cpus_[c];
    cpu.allocations = std::move(per_cpu[c]);
    std::sort(cpu.allocations.begin(), cpu.allocations.end(),
              [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
    TimeNs prev_end = 0;
    TimeNs min_len = length;
    std::set<VcpuId> locals;
    for (const Allocation& alloc : cpu.allocations) {
      TABLEAU_CHECK_MSG(alloc.start >= prev_end && alloc.end <= length &&
                            alloc.start < alloc.end,
                        "bad allocation [%lld,%lld) on cpu %zu",
                        static_cast<long long>(alloc.start),
                        static_cast<long long>(alloc.end), c);
      prev_end = alloc.end;
      min_len = std::min(min_len, alloc.Length());
      locals.insert(alloc.vcpu);
    }
    cpu.local_vcpus.assign(locals.begin(), locals.end());

    // Slice length: the shortest allocation keeps every slice overlapping at
    // most two allocations; rounding down to a power of two preserves that
    // (slices only shrink) and turns the lookup division into a shift, for
    // at most 2x the slice count.
    cpu.slice_length = cpu.allocations.empty() ? length : min_len;
    if (pow2_slices) {
      cpu.slice_length =
          TimeNs{1} << (63 - __builtin_clzll(static_cast<std::uint64_t>(cpu.slice_length)));
    }
    table.FinalizeCpu(cpu);
  }
  return table;
}

void SchedulingTable::FinalizeCpu(CpuTable& cpu) const {
  TABLEAU_CHECK(cpu.slice_length > 0);
  const auto len = static_cast<std::uint64_t>(cpu.slice_length);
  cpu.slice_shift = (len & (len - 1)) == 0 ? __builtin_ctzll(len) : -1;

  // Column-wise mirror of `allocations` with two sentinel rows: a lookup may
  // advance one past its slice's floor allocation, and the idle tail peeks
  // one further for the next boundary — both land on {length, length, idle}
  // instead of needing bounds branches.
  const std::size_t n = cpu.allocations.size();
  cpu.alloc_start.resize(n + 2);
  cpu.alloc_end.resize(n + 2);
  cpu.alloc_vcpu.resize(n + 2);
  for (std::size_t i = 0; i < n; ++i) {
    cpu.alloc_start[i] = cpu.allocations[i].start;
    cpu.alloc_end[i] = cpu.allocations[i].end;
    cpu.alloc_vcpu[i] = cpu.allocations[i].vcpu;
  }
  for (std::size_t i = n; i < n + 2; ++i) {
    cpu.alloc_start[i] = length_;
    cpu.alloc_end[i] = length_;
    cpu.alloc_vcpu[i] = kIdleVcpu;
  }

  // slice_floor[s] = first allocation whose end is past the slice's start
  // (== the slice's first overlapping allocation when one exists, else the
  // next allocation after the slice, else the sentinel n).
  const std::size_t num_slices = static_cast<std::size_t>(CeilDiv(length_, cpu.slice_length));
  cpu.slice_floor.resize(num_slices);
  std::size_t alloc_index = 0;
  for (std::size_t s = 0; s < num_slices; ++s) {
    const TimeNs slice_start = static_cast<TimeNs>(s) * cpu.slice_length;
    const TimeNs slice_end = std::min(slice_start + cpu.slice_length, length_);
    while (alloc_index < n && cpu.allocations[alloc_index].end <= slice_start) {
      ++alloc_index;
    }
    cpu.slice_floor[s] = static_cast<std::int32_t>(alloc_index);
    // Invariant from the slice-length choice: no third overlap.
    TABLEAU_CHECK(alloc_index + 2 >= n || cpu.allocations[alloc_index + 2].start >= slice_end);
  }
}

LookupResult SchedulingTable::Lookup(int cpu_index, TimeNs offset) const {
  TABLEAU_CHECK(offset >= 0 && offset < length_);
  const CpuTable& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
  if (cpu.allocations.empty()) {
    return LookupResult{kIdleVcpu, length_};
  }
  const auto slice_index =
      cpu.slice_shift >= 0
          ? static_cast<std::size_t>(offset) >> cpu.slice_shift
          : static_cast<std::size_t>(offset / cpu.slice_length);
  // Two-candidate select over the SoA mirror, branch-free: the floor
  // allocation serves unless the offset is past its end, in which case its
  // successor serves (a slice never needs a third candidate, and the
  // sentinel rows absorb the end-of-table cases).
  const auto k0 = static_cast<std::size_t>(cpu.slice_floor[slice_index]);
  const std::size_t k = k0 + static_cast<std::size_t>(offset >= cpu.alloc_end[k0]);
  const TimeNs a_start = cpu.alloc_start[k];
  const TimeNs a_end = cpu.alloc_end[k];
  if (offset >= a_end) {
    // Rare: both candidates end inside the slice and the offset is past them.
    // By the slice invariant the next allocation starts at or after the slice
    // end (sentinel start == length_ when there is none).
    return LookupResult{kIdleVcpu, cpu.alloc_start[k + 1]};
  }
  const bool served = offset >= a_start;
  return LookupResult{served ? cpu.alloc_vcpu[k] : kIdleVcpu, served ? a_end : a_start};
}

LookupResult SchedulingTable::LookupLinear(int cpu_index, TimeNs offset) const {
  TABLEAU_CHECK(offset >= 0 && offset < length_);
  const CpuTable& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
  for (const Allocation& alloc : cpu.allocations) {
    if (offset < alloc.start) {
      return LookupResult{kIdleVcpu, alloc.start};
    }
    if (offset < alloc.end) {
      return LookupResult{alloc.vcpu, alloc.end};
    }
  }
  return LookupResult{kIdleVcpu, length_};
}

std::vector<int> SchedulingTable::CpusOf(VcpuId vcpu) const {
  std::vector<int> cpus;
  for (int c = 0; c < num_cpus(); ++c) {
    const CpuTable& cpu = cpus_[static_cast<std::size_t>(c)];
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.vcpu == vcpu) {
        cpus.push_back(c);
        break;
      }
    }
  }
  return cpus;
}

TimeNs SchedulingTable::TotalService(VcpuId vcpu) const {
  TimeNs total = 0;
  for (const CpuTable& cpu : cpus_) {
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.vcpu == vcpu) {
        total += alloc.Length();
      }
    }
  }
  return total;
}

TimeNs SchedulingTable::MaxBlackout(VcpuId vcpu) const {
  std::vector<Allocation> service;
  for (const CpuTable& cpu : cpus_) {
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.vcpu == vcpu) {
        service.push_back(alloc);
      }
    }
  }
  if (service.empty()) {
    return length_;
  }
  std::sort(service.begin(), service.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
  TimeNs max_gap = 0;
  TimeNs covered_until = service.front().end;
  for (std::size_t i = 1; i < service.size(); ++i) {
    if (service[i].start > covered_until) {
      max_gap = std::max(max_gap, service[i].start - covered_until);
    }
    covered_until = std::max(covered_until, service[i].end);
  }
  // Cyclic wrap: gap from the last service to the first of the next cycle.
  const TimeNs wrap_gap = (length_ - covered_until) + service.front().start;
  return std::max(max_gap, wrap_gap);
}

std::string SchedulingTable::Validate() const {
  for (int c = 0; c < num_cpus(); ++c) {
    const CpuTable& cpu = cpus_[static_cast<std::size_t>(c)];
    TimeNs prev_end = 0;
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.start < prev_end || alloc.end > length_ || alloc.start >= alloc.end) {
        return "cpu " + std::to_string(c) + ": malformed or overlapping allocation";
      }
      prev_end = alloc.end;
    }
    if (!cpu.allocations.empty()) {
      TimeNs min_len = length_;
      for (const Allocation& alloc : cpu.allocations) {
        min_len = std::min(min_len, alloc.Length());
      }
      // Power-of-two rounding may shorten slices but must never lengthen
      // them past the shortest allocation (the two-overlap invariant).
      if (cpu.slice_length <= 0 || cpu.slice_length > min_len) {
        return "cpu " + std::to_string(c) + ": slice length exceeds shortest allocation";
      }
    }
    const auto len = static_cast<std::uint64_t>(cpu.slice_length);
    const std::int32_t want_shift =
        (len != 0 && (len & (len - 1)) == 0) ? __builtin_ctzll(len) : -1;
    if (cpu.slice_shift != want_shift) {
      return "cpu " + std::to_string(c) + ": slice_shift inconsistent with slice_length";
    }
    if (cpu.slice_floor.size() !=
        static_cast<std::size_t>(CeilDiv(length_, cpu.slice_length))) {
      return "cpu " + std::to_string(c) + ": slice count != ceil(length / slice_length)";
    }
    // The SoA mirror must match the allocation records plus sentinels, and
    // every slice floor must point at the first allocation ending past the
    // slice start.
    const std::size_t n = cpu.allocations.size();
    if (cpu.alloc_start.size() != n + 2 || cpu.alloc_end.size() != n + 2 ||
        cpu.alloc_vcpu.size() != n + 2) {
      return "cpu " + std::to_string(c) + ": SoA mirror size mismatch";
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (cpu.alloc_start[i] != cpu.allocations[i].start ||
          cpu.alloc_end[i] != cpu.allocations[i].end ||
          cpu.alloc_vcpu[i] != cpu.allocations[i].vcpu) {
        return "cpu " + std::to_string(c) + ": SoA mirror desynced from allocations";
      }
    }
    for (std::size_t i = n; i < n + 2; ++i) {
      if (cpu.alloc_start[i] != length_ || cpu.alloc_end[i] != length_ ||
          cpu.alloc_vcpu[i] != kIdleVcpu) {
        return "cpu " + std::to_string(c) + ": bad SoA sentinel row";
      }
    }
    for (std::size_t s = 0; s < cpu.slice_floor.size(); ++s) {
      const TimeNs slice_start = static_cast<TimeNs>(s) * cpu.slice_length;
      std::size_t want = 0;
      while (want < n && cpu.allocations[want].end <= slice_start) {
        ++want;
      }
      if (cpu.slice_floor[s] != static_cast<std::int32_t>(want)) {
        return "cpu " + std::to_string(c) + ": slice floor desynced at slice " +
               std::to_string(s);
      }
    }
  }

  // No vCPU may be allocated on two pCPUs at the same instant.
  struct Event {
    TimeNs time;
    int delta;  // +1 start, -1 end.
  };
  std::map<VcpuId, std::vector<Event>> events;
  for (const CpuTable& cpu : cpus_) {
    for (const Allocation& alloc : cpu.allocations) {
      events[alloc.vcpu].push_back(Event{alloc.start, +1});
      events[alloc.vcpu].push_back(Event{alloc.end, -1});
    }
  }
  for (auto& [vcpu, list] : events) {
    std::sort(list.begin(), list.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;  // Process ends before starts at the same instant.
    });
    int depth = 0;
    for (const Event& e : list) {
      depth += e.delta;
      if (depth > 1) {
        return "vcpu " + std::to_string(vcpu) + " allocated on two pCPUs concurrently";
      }
    }
  }
  return "";
}

std::vector<std::uint8_t> SchedulingTable::Serialize() const {
  std::vector<std::uint8_t> out;
  Append(out, kMagic);
  Append(out, kVersion);
  Append(out, length_);
  Append(out, static_cast<std::uint32_t>(cpus_.size()));
  for (const CpuTable& cpu : cpus_) {
    Append(out, static_cast<std::uint32_t>(cpu.allocations.size()));
    Append(out, cpu.slice_length);
    Append(out, static_cast<std::uint32_t>(cpu.slice_floor.size()));
    Append(out, static_cast<std::uint32_t>(cpu.local_vcpus.size()));
    for (const Allocation& alloc : cpu.allocations) {
      Append(out, alloc.vcpu);
      Append(out, alloc.start);
      Append(out, alloc.end);
    }
    // v1 wire format: per-slice {first, second} overlap indices (-1 when
    // absent), derived from the floor encoding so old consumers keep parsing.
    const auto n = static_cast<std::int32_t>(cpu.allocations.size());
    for (std::size_t s = 0; s < cpu.slice_floor.size(); ++s) {
      const TimeNs slice_end =
          std::min(static_cast<TimeNs>(s + 1) * cpu.slice_length, length_);
      const std::int32_t k = cpu.slice_floor[s];
      const bool has_first = k < n && cpu.allocations[static_cast<std::size_t>(k)].start < slice_end;
      const bool has_second =
          has_first && k + 1 < n &&
          cpu.allocations[static_cast<std::size_t>(k) + 1].start < slice_end;
      Append(out, has_first ? k : std::int32_t{-1});
      Append(out, has_second ? k + 1 : std::int32_t{-1});
    }
    for (const VcpuId vcpu : cpu.local_vcpus) {
      Append(out, vcpu);
    }
  }
  return out;
}

SchedulingTable SchedulingTable::Deserialize(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  TABLEAU_CHECK(ReadAt<std::uint32_t>(bytes, pos) == kMagic);
  TABLEAU_CHECK(ReadAt<std::uint32_t>(bytes, pos) == kVersion);
  SchedulingTable table;
  table.length_ = ReadAt<TimeNs>(bytes, pos);
  const auto num_cpus = ReadAt<std::uint32_t>(bytes, pos);
  table.cpus_.resize(num_cpus);
  for (CpuTable& cpu : table.cpus_) {
    const auto num_allocs = ReadAt<std::uint32_t>(bytes, pos);
    cpu.slice_length = ReadAt<TimeNs>(bytes, pos);
    const auto num_slices = ReadAt<std::uint32_t>(bytes, pos);
    const auto num_locals = ReadAt<std::uint32_t>(bytes, pos);
    cpu.allocations.resize(num_allocs);
    for (Allocation& alloc : cpu.allocations) {
      alloc.vcpu = ReadAt<VcpuId>(bytes, pos);
      alloc.start = ReadAt<TimeNs>(bytes, pos);
      alloc.end = ReadAt<TimeNs>(bytes, pos);
    }
    // The per-slice {first, second} pairs are fully derivable from the
    // allocations and slice length; consume and discard them, then rebuild
    // the lookup structures in the SoA layout (this also upgrades old
    // non-power-of-two blobs in place — they keep their slice geometry and
    // take the division path).
    for (std::uint32_t s = 0; s < num_slices; ++s) {
      ReadAt<std::int32_t>(bytes, pos);
      ReadAt<std::int32_t>(bytes, pos);
    }
    cpu.local_vcpus.resize(num_locals);
    for (VcpuId& vcpu : cpu.local_vcpus) {
      vcpu = ReadAt<VcpuId>(bytes, pos);
    }
    table.FinalizeCpu(cpu);
    TABLEAU_CHECK(cpu.slice_floor.size() == num_slices);
  }
  TABLEAU_CHECK(pos == bytes.size());
  return table;
}

std::size_t SchedulingTable::SerializedSizeBytes() const { return Serialize().size(); }

LatencyProfile AnalyzeWakeupLatency(const SchedulingTable& table, VcpuId vcpu) {
  LatencyProfile profile;
  // Collect the vCPU's service intervals across all pCPUs (time order).
  std::vector<Allocation> service;
  for (int c = 0; c < table.num_cpus(); ++c) {
    for (const Allocation& alloc : table.cpu(c).allocations) {
      if (alloc.vcpu == vcpu) {
        service.push_back(alloc);
      }
    }
  }
  const TimeNs length = table.length();
  if (service.empty()) {
    profile.mean = profile.p99 = profile.max = length;
    return profile;
  }
  std::sort(service.begin(), service.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });

  // Gaps between consecutive service intervals (cyclic), merging overlap.
  std::vector<TimeNs> gaps;
  TimeNs covered = 0;
  TimeNs covered_until = service.front().end;
  covered += service.front().Length();
  for (std::size_t i = 1; i < service.size(); ++i) {
    if (service[i].start > covered_until) {
      gaps.push_back(service[i].start - covered_until);
    }
    const TimeNs begin = std::max(service[i].start, covered_until);
    covered += std::max<TimeNs>(0, service[i].end - begin);
    covered_until = std::max(covered_until, service[i].end);
  }
  const TimeNs wrap = (length - covered_until) + service.front().start;
  if (wrap > 0) {
    gaps.push_back(wrap);
  }

  profile.service_fraction = static_cast<double>(covered) / static_cast<double>(length);
  // An arrival inside a gap of length g waits Uniform(0, g); the arrival
  // lands in that gap with probability g / length. Hence
  //   E[wait] = sum(g^2 / 2) / length.
  double mean = 0;
  TimeNs max_gap = 0;
  for (const TimeNs gap : gaps) {
    mean += static_cast<double>(gap) * static_cast<double>(gap) / 2.0;
    max_gap = std::max(max_gap, gap);
  }
  profile.mean = static_cast<TimeNs>(mean / static_cast<double>(length));
  profile.max = max_gap;

  // p99: the wait CCDF is P(wait > w) = sum over gaps of max(0, g - w) / L;
  // binary-search the 1% point.
  const double target = 0.01;
  TimeNs lo = 0;
  TimeNs hi = max_gap;
  while (lo < hi) {
    const TimeNs mid = lo + (hi - lo) / 2;
    double tail = 0;
    for (const TimeNs gap : gaps) {
      tail += static_cast<double>(std::max<TimeNs>(0, gap - mid));
    }
    if (tail / static_cast<double>(length) > target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  profile.p99 = lo;
  return profile;
}

std::vector<std::vector<Allocation>> CoalesceAllocations(
    std::vector<std::vector<Allocation>> per_cpu, TimeNs threshold,
    std::vector<std::pair<VcpuId, TimeNs>>* donated_out) {
  for (auto& cpu : per_cpu) {
    std::sort(cpu.begin(), cpu.end(),
              [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
    std::vector<Allocation> result;
    for (const Allocation& alloc : cpu) {
      // Merge contiguous same-vCPU allocations first.
      if (!result.empty() && result.back().vcpu == alloc.vcpu &&
          result.back().end == alloc.start) {
        result.back().end = alloc.end;
        continue;
      }
      if (alloc.Length() >= threshold) {
        result.push_back(alloc);
        continue;
      }
      // Sub-threshold sliver: donate to the time-adjacent predecessor if
      // contiguous; otherwise it becomes idle time.
      if (!result.empty() && result.back().end == alloc.start) {
        if (donated_out != nullptr) {
          donated_out->emplace_back(alloc.vcpu, alloc.Length());
        }
        result.back().end = alloc.end;
      } else {
        if (donated_out != nullptr) {
          donated_out->emplace_back(alloc.vcpu, alloc.Length());
        }
        // Dropped: interval stays idle (recoverable via second-level
        // scheduling at runtime).
      }
    }
    cpu = std::move(result);
  }
  return per_cpu;
}

}  // namespace tableau
