#include "src/table/scheduling_table.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace tableau {
namespace {

constexpr std::uint32_t kMagic = 0x53'4c'42'54;  // "TBLS" little-endian.
constexpr std::uint32_t kVersion = 1;

template <typename T>
void Append(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T ReadAt(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  TABLEAU_CHECK(pos + sizeof(T) <= in.size());
  T value;
  std::memcpy(&value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

}  // namespace

SchedulingTable SchedulingTable::Build(TimeNs length,
                                       std::vector<std::vector<Allocation>> per_cpu) {
  TABLEAU_CHECK(length > 0);
  SchedulingTable table;
  table.length_ = length;
  table.cpus_.resize(per_cpu.size());

  for (std::size_t c = 0; c < per_cpu.size(); ++c) {
    CpuTable& cpu = table.cpus_[c];
    cpu.allocations = std::move(per_cpu[c]);
    std::sort(cpu.allocations.begin(), cpu.allocations.end(),
              [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
    TimeNs prev_end = 0;
    TimeNs min_len = length;
    std::set<VcpuId> locals;
    for (const Allocation& alloc : cpu.allocations) {
      TABLEAU_CHECK_MSG(alloc.start >= prev_end && alloc.end <= length &&
                            alloc.start < alloc.end,
                        "bad allocation [%lld,%lld) on cpu %zu",
                        static_cast<long long>(alloc.start),
                        static_cast<long long>(alloc.end), c);
      prev_end = alloc.end;
      min_len = std::min(min_len, alloc.Length());
      locals.insert(alloc.vcpu);
    }
    cpu.local_vcpus.assign(locals.begin(), locals.end());

    // Slice table: slice length = shortest allocation on this pCPU, so each
    // slice overlaps at most two allocations.
    cpu.slice_length = cpu.allocations.empty() ? length : min_len;
    const std::size_t num_slices =
        static_cast<std::size_t>(CeilDiv(length, cpu.slice_length));
    cpu.slices.assign(num_slices, SliceEntry{});
    std::size_t alloc_index = 0;
    for (std::size_t s = 0; s < num_slices; ++s) {
      const TimeNs slice_start = static_cast<TimeNs>(s) * cpu.slice_length;
      const TimeNs slice_end = std::min(slice_start + cpu.slice_length, length);
      // Advance past allocations that end at or before this slice.
      while (alloc_index < cpu.allocations.size() &&
             cpu.allocations[alloc_index].end <= slice_start) {
        ++alloc_index;
      }
      SliceEntry& entry = cpu.slices[s];
      if (alloc_index < cpu.allocations.size() &&
          cpu.allocations[alloc_index].start < slice_end) {
        entry.first = static_cast<std::int32_t>(alloc_index);
        const std::size_t next = alloc_index + 1;
        if (next < cpu.allocations.size() && cpu.allocations[next].start < slice_end) {
          entry.second = static_cast<std::int32_t>(next);
          // Invariant from the slice-length choice: no third overlap.
          TABLEAU_CHECK(next + 1 >= cpu.allocations.size() ||
                        cpu.allocations[next + 1].start >= slice_end);
        }
      }
    }
  }
  return table;
}

LookupResult SchedulingTable::Lookup(int cpu_index, TimeNs offset) const {
  TABLEAU_CHECK(offset >= 0 && offset < length_);
  const CpuTable& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
  LookupResult result;
  if (cpu.allocations.empty()) {
    result.vcpu = kIdleVcpu;
    result.interval_end = length_;
    return result;
  }
  const auto slice_index = static_cast<std::size_t>(offset / cpu.slice_length);
  const SliceEntry& entry = cpu.slices[slice_index];

  // Inspect the (at most two) candidate allocations.
  for (const std::int32_t index : {entry.first, entry.second}) {
    if (index < 0) {
      break;
    }
    const Allocation& alloc = cpu.allocations[static_cast<std::size_t>(index)];
    if (offset < alloc.start) {
      // Idle gap before this allocation.
      result.vcpu = kIdleVcpu;
      result.interval_end = alloc.start;
      return result;
    }
    if (offset < alloc.end) {
      result.vcpu = alloc.vcpu;
      result.interval_end = alloc.end;
      return result;
    }
  }
  // Idle after the slice's allocations: next boundary is the next
  // allocation's start, which (by the slice invariant) begins at or after the
  // end of this slice; scan forward from the last candidate.
  std::size_t next = 0;
  if (entry.second >= 0) {
    next = static_cast<std::size_t>(entry.second) + 1;
  } else if (entry.first >= 0) {
    next = static_cast<std::size_t>(entry.first) + 1;
  } else {
    // Slice fully idle: find the first allocation after this offset. The
    // slice invariant guarantees the next allocation starts no earlier than
    // the slice end, so a binary search stays O(log n) but is only reached
    // when the current interval is idle (never in the reserved hot path).
    const auto it = std::lower_bound(
        cpu.allocations.begin(), cpu.allocations.end(), offset,
        [](const Allocation& a, TimeNs t) { return a.start <= t; });
    next = static_cast<std::size_t>(it - cpu.allocations.begin());
  }
  result.vcpu = kIdleVcpu;
  result.interval_end = next < cpu.allocations.size() ? cpu.allocations[next].start : length_;
  return result;
}

LookupResult SchedulingTable::LookupLinear(int cpu_index, TimeNs offset) const {
  TABLEAU_CHECK(offset >= 0 && offset < length_);
  const CpuTable& cpu = cpus_[static_cast<std::size_t>(cpu_index)];
  for (const Allocation& alloc : cpu.allocations) {
    if (offset < alloc.start) {
      return LookupResult{kIdleVcpu, alloc.start};
    }
    if (offset < alloc.end) {
      return LookupResult{alloc.vcpu, alloc.end};
    }
  }
  return LookupResult{kIdleVcpu, length_};
}

std::vector<int> SchedulingTable::CpusOf(VcpuId vcpu) const {
  std::vector<int> cpus;
  for (int c = 0; c < num_cpus(); ++c) {
    const CpuTable& cpu = cpus_[static_cast<std::size_t>(c)];
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.vcpu == vcpu) {
        cpus.push_back(c);
        break;
      }
    }
  }
  return cpus;
}

TimeNs SchedulingTable::TotalService(VcpuId vcpu) const {
  TimeNs total = 0;
  for (const CpuTable& cpu : cpus_) {
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.vcpu == vcpu) {
        total += alloc.Length();
      }
    }
  }
  return total;
}

TimeNs SchedulingTable::MaxBlackout(VcpuId vcpu) const {
  std::vector<Allocation> service;
  for (const CpuTable& cpu : cpus_) {
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.vcpu == vcpu) {
        service.push_back(alloc);
      }
    }
  }
  if (service.empty()) {
    return length_;
  }
  std::sort(service.begin(), service.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
  TimeNs max_gap = 0;
  TimeNs covered_until = service.front().end;
  for (std::size_t i = 1; i < service.size(); ++i) {
    if (service[i].start > covered_until) {
      max_gap = std::max(max_gap, service[i].start - covered_until);
    }
    covered_until = std::max(covered_until, service[i].end);
  }
  // Cyclic wrap: gap from the last service to the first of the next cycle.
  const TimeNs wrap_gap = (length_ - covered_until) + service.front().start;
  return std::max(max_gap, wrap_gap);
}

std::string SchedulingTable::Validate() const {
  for (int c = 0; c < num_cpus(); ++c) {
    const CpuTable& cpu = cpus_[static_cast<std::size_t>(c)];
    TimeNs prev_end = 0;
    for (const Allocation& alloc : cpu.allocations) {
      if (alloc.start < prev_end || alloc.end > length_ || alloc.start >= alloc.end) {
        return "cpu " + std::to_string(c) + ": malformed or overlapping allocation";
      }
      prev_end = alloc.end;
    }
    if (!cpu.allocations.empty()) {
      TimeNs min_len = length_;
      for (const Allocation& alloc : cpu.allocations) {
        min_len = std::min(min_len, alloc.Length());
      }
      if (cpu.slice_length != min_len) {
        return "cpu " + std::to_string(c) + ": slice length != shortest allocation";
      }
    }
    // Every offset's slice lookup must agree with a linear scan.
    for (std::size_t s = 0; s < cpu.slices.size(); ++s) {
      const SliceEntry& entry = cpu.slices[s];
      if (entry.second >= 0 && entry.first < 0) {
        return "cpu " + std::to_string(c) + ": slice with second but no first";
      }
      if (entry.first >= 0 &&
          static_cast<std::size_t>(entry.first) >= cpu.allocations.size()) {
        return "cpu " + std::to_string(c) + ": slice index out of range";
      }
    }
  }

  // No vCPU may be allocated on two pCPUs at the same instant.
  struct Event {
    TimeNs time;
    int delta;  // +1 start, -1 end.
  };
  std::map<VcpuId, std::vector<Event>> events;
  for (const CpuTable& cpu : cpus_) {
    for (const Allocation& alloc : cpu.allocations) {
      events[alloc.vcpu].push_back(Event{alloc.start, +1});
      events[alloc.vcpu].push_back(Event{alloc.end, -1});
    }
  }
  for (auto& [vcpu, list] : events) {
    std::sort(list.begin(), list.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;  // Process ends before starts at the same instant.
    });
    int depth = 0;
    for (const Event& e : list) {
      depth += e.delta;
      if (depth > 1) {
        return "vcpu " + std::to_string(vcpu) + " allocated on two pCPUs concurrently";
      }
    }
  }
  return "";
}

std::vector<std::uint8_t> SchedulingTable::Serialize() const {
  std::vector<std::uint8_t> out;
  Append(out, kMagic);
  Append(out, kVersion);
  Append(out, length_);
  Append(out, static_cast<std::uint32_t>(cpus_.size()));
  for (const CpuTable& cpu : cpus_) {
    Append(out, static_cast<std::uint32_t>(cpu.allocations.size()));
    Append(out, cpu.slice_length);
    Append(out, static_cast<std::uint32_t>(cpu.slices.size()));
    Append(out, static_cast<std::uint32_t>(cpu.local_vcpus.size()));
    for (const Allocation& alloc : cpu.allocations) {
      Append(out, alloc.vcpu);
      Append(out, alloc.start);
      Append(out, alloc.end);
    }
    for (const SliceEntry& slice : cpu.slices) {
      Append(out, slice.first);
      Append(out, slice.second);
    }
    for (const VcpuId vcpu : cpu.local_vcpus) {
      Append(out, vcpu);
    }
  }
  return out;
}

SchedulingTable SchedulingTable::Deserialize(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  TABLEAU_CHECK(ReadAt<std::uint32_t>(bytes, pos) == kMagic);
  TABLEAU_CHECK(ReadAt<std::uint32_t>(bytes, pos) == kVersion);
  SchedulingTable table;
  table.length_ = ReadAt<TimeNs>(bytes, pos);
  const auto num_cpus = ReadAt<std::uint32_t>(bytes, pos);
  table.cpus_.resize(num_cpus);
  for (CpuTable& cpu : table.cpus_) {
    const auto num_allocs = ReadAt<std::uint32_t>(bytes, pos);
    cpu.slice_length = ReadAt<TimeNs>(bytes, pos);
    const auto num_slices = ReadAt<std::uint32_t>(bytes, pos);
    const auto num_locals = ReadAt<std::uint32_t>(bytes, pos);
    cpu.allocations.resize(num_allocs);
    for (Allocation& alloc : cpu.allocations) {
      alloc.vcpu = ReadAt<VcpuId>(bytes, pos);
      alloc.start = ReadAt<TimeNs>(bytes, pos);
      alloc.end = ReadAt<TimeNs>(bytes, pos);
    }
    cpu.slices.resize(num_slices);
    for (SliceEntry& slice : cpu.slices) {
      slice.first = ReadAt<std::int32_t>(bytes, pos);
      slice.second = ReadAt<std::int32_t>(bytes, pos);
    }
    cpu.local_vcpus.resize(num_locals);
    for (VcpuId& vcpu : cpu.local_vcpus) {
      vcpu = ReadAt<VcpuId>(bytes, pos);
    }
  }
  TABLEAU_CHECK(pos == bytes.size());
  return table;
}

std::size_t SchedulingTable::SerializedSizeBytes() const { return Serialize().size(); }

LatencyProfile AnalyzeWakeupLatency(const SchedulingTable& table, VcpuId vcpu) {
  LatencyProfile profile;
  // Collect the vCPU's service intervals across all pCPUs (time order).
  std::vector<Allocation> service;
  for (int c = 0; c < table.num_cpus(); ++c) {
    for (const Allocation& alloc : table.cpu(c).allocations) {
      if (alloc.vcpu == vcpu) {
        service.push_back(alloc);
      }
    }
  }
  const TimeNs length = table.length();
  if (service.empty()) {
    profile.mean = profile.p99 = profile.max = length;
    return profile;
  }
  std::sort(service.begin(), service.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });

  // Gaps between consecutive service intervals (cyclic), merging overlap.
  std::vector<TimeNs> gaps;
  TimeNs covered = 0;
  TimeNs covered_until = service.front().end;
  covered += service.front().Length();
  for (std::size_t i = 1; i < service.size(); ++i) {
    if (service[i].start > covered_until) {
      gaps.push_back(service[i].start - covered_until);
    }
    const TimeNs begin = std::max(service[i].start, covered_until);
    covered += std::max<TimeNs>(0, service[i].end - begin);
    covered_until = std::max(covered_until, service[i].end);
  }
  const TimeNs wrap = (length - covered_until) + service.front().start;
  if (wrap > 0) {
    gaps.push_back(wrap);
  }

  profile.service_fraction = static_cast<double>(covered) / static_cast<double>(length);
  // An arrival inside a gap of length g waits Uniform(0, g); the arrival
  // lands in that gap with probability g / length. Hence
  //   E[wait] = sum(g^2 / 2) / length.
  double mean = 0;
  TimeNs max_gap = 0;
  for (const TimeNs gap : gaps) {
    mean += static_cast<double>(gap) * static_cast<double>(gap) / 2.0;
    max_gap = std::max(max_gap, gap);
  }
  profile.mean = static_cast<TimeNs>(mean / static_cast<double>(length));
  profile.max = max_gap;

  // p99: the wait CCDF is P(wait > w) = sum over gaps of max(0, g - w) / L;
  // binary-search the 1% point.
  const double target = 0.01;
  TimeNs lo = 0;
  TimeNs hi = max_gap;
  while (lo < hi) {
    const TimeNs mid = lo + (hi - lo) / 2;
    double tail = 0;
    for (const TimeNs gap : gaps) {
      tail += static_cast<double>(std::max<TimeNs>(0, gap - mid));
    }
    if (tail / static_cast<double>(length) > target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  profile.p99 = lo;
  return profile;
}

std::vector<std::vector<Allocation>> CoalesceAllocations(
    std::vector<std::vector<Allocation>> per_cpu, TimeNs threshold,
    std::vector<std::pair<VcpuId, TimeNs>>* donated_out) {
  for (auto& cpu : per_cpu) {
    std::sort(cpu.begin(), cpu.end(),
              [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
    std::vector<Allocation> result;
    for (const Allocation& alloc : cpu) {
      // Merge contiguous same-vCPU allocations first.
      if (!result.empty() && result.back().vcpu == alloc.vcpu &&
          result.back().end == alloc.start) {
        result.back().end = alloc.end;
        continue;
      }
      if (alloc.Length() >= threshold) {
        result.push_back(alloc);
        continue;
      }
      // Sub-threshold sliver: donate to the time-adjacent predecessor if
      // contiguous; otherwise it becomes idle time.
      if (!result.empty() && result.back().end == alloc.start) {
        if (donated_out != nullptr) {
          donated_out->emplace_back(alloc.vcpu, alloc.Length());
        }
        result.back().end = alloc.end;
      } else {
        if (donated_out != nullptr) {
          donated_out->emplace_back(alloc.vcpu, alloc.Length());
        }
        // Dropped: interval stays idle (recoverable via second-level
        // scheduling at runtime).
      }
    }
    cpu = std::move(result);
  }
  return per_cpu;
}

}  // namespace tableau
