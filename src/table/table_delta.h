// Delta encoding for table updates.
//
// The paper pushes whole tables "in a compiled, binary format" via a
// hypercall (Sec. 6). Paired with incremental replanning (Sec. 7.1), most
// reconfigurations change only one or two cores, so shipping just the dirty
// cores' payloads shrinks the hypercall by an order of magnitude. A delta
// carries the table length, the cpu count, and full CpuTable payloads for
// the changed cores only; ApplyDelta reconstructs the next table from the
// base table plus the delta.
#ifndef SRC_TABLE_TABLE_DELTA_H_
#define SRC_TABLE_TABLE_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/table/scheduling_table.h"

namespace tableau {

// Serializes the difference from `base` to `next`. The two tables must have
// the same length and cpu count (a layout change requires a full push).
std::vector<std::uint8_t> SerializeDelta(const SchedulingTable& base,
                                         const SchedulingTable& next);

// Reconstructs the next table from `base` and a delta produced by
// SerializeDelta. Aborts on format corruption or a base mismatch.
SchedulingTable ApplyDelta(const SchedulingTable& base,
                           const std::vector<std::uint8_t>& delta);

// Number of cores encoded in a delta (diagnostics).
int DeltaDirtyCores(const std::vector<std::uint8_t>& delta);

}  // namespace tableau

#endif  // SRC_TABLE_TABLE_DELTA_H_
