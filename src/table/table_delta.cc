#include "src/table/table_delta.h"

#include <cstring>

#include "src/common/check.h"

namespace tableau {
namespace {

constexpr std::uint32_t kDeltaMagic = 0x44'4c'42'54;  // "TBLD" little-endian.
constexpr std::uint32_t kDeltaVersion = 1;

template <typename T>
void Append(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T ReadAt(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  TABLEAU_CHECK(pos + sizeof(T) <= in.size());
  T value;
  std::memcpy(&value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

void AppendAllocations(std::vector<std::uint8_t>& out,
                       const std::vector<Allocation>& allocations) {
  Append(out, static_cast<std::uint32_t>(allocations.size()));
  for (const Allocation& alloc : allocations) {
    Append(out, alloc.vcpu);
    Append(out, alloc.start);
    Append(out, alloc.end);
  }
}

std::vector<Allocation> ReadAllocations(const std::vector<std::uint8_t>& in,
                                        std::size_t& pos) {
  const auto count = ReadAt<std::uint32_t>(in, pos);
  std::vector<Allocation> allocations(count);
  for (Allocation& alloc : allocations) {
    alloc.vcpu = ReadAt<VcpuId>(in, pos);
    alloc.start = ReadAt<TimeNs>(in, pos);
    alloc.end = ReadAt<TimeNs>(in, pos);
  }
  return allocations;
}

}  // namespace

std::vector<std::uint8_t> SerializeDelta(const SchedulingTable& base,
                                         const SchedulingTable& next) {
  TABLEAU_CHECK_MSG(base.length() == next.length() && base.num_cpus() == next.num_cpus(),
                    "delta requires identical table geometry");
  std::vector<int> dirty;
  for (int cpu = 0; cpu < base.num_cpus(); ++cpu) {
    if (base.cpu(cpu).allocations != next.cpu(cpu).allocations) {
      dirty.push_back(cpu);
    }
  }

  std::vector<std::uint8_t> out;
  Append(out, kDeltaMagic);
  Append(out, kDeltaVersion);
  Append(out, next.length());
  Append(out, static_cast<std::uint32_t>(next.num_cpus()));
  Append(out, static_cast<std::uint32_t>(dirty.size()));
  for (const int cpu : dirty) {
    Append(out, static_cast<std::uint32_t>(cpu));
    AppendAllocations(out, next.cpu(cpu).allocations);
  }
  return out;
}

SchedulingTable ApplyDelta(const SchedulingTable& base,
                           const std::vector<std::uint8_t>& delta) {
  std::size_t pos = 0;
  TABLEAU_CHECK_MSG(ReadAt<std::uint32_t>(delta, pos) == kDeltaMagic,
                    "bad delta magic");
  TABLEAU_CHECK(ReadAt<std::uint32_t>(delta, pos) == kDeltaVersion);
  const TimeNs length = ReadAt<TimeNs>(delta, pos);
  const auto num_cpus = static_cast<int>(ReadAt<std::uint32_t>(delta, pos));
  TABLEAU_CHECK_MSG(length == base.length() && num_cpus == base.num_cpus(),
                    "delta does not match the base table's geometry");

  std::vector<std::vector<Allocation>> per_cpu(static_cast<std::size_t>(num_cpus));
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    per_cpu[static_cast<std::size_t>(cpu)] = base.cpu(cpu).allocations;
  }
  const auto dirty = ReadAt<std::uint32_t>(delta, pos);
  for (std::uint32_t i = 0; i < dirty; ++i) {
    const auto cpu = ReadAt<std::uint32_t>(delta, pos);
    TABLEAU_CHECK(static_cast<int>(cpu) < num_cpus);
    per_cpu[cpu] = ReadAllocations(delta, pos);
  }
  TABLEAU_CHECK(pos == delta.size());
  // Slice tables and local-vCPU lists are derived, so Build restores the
  // full structure.
  return SchedulingTable::Build(length, std::move(per_cpu));
}

int DeltaDirtyCores(const std::vector<std::uint8_t>& delta) {
  std::size_t pos = sizeof(std::uint32_t) * 2 + sizeof(TimeNs) + sizeof(std::uint32_t);
  return static_cast<int>(ReadAt<std::uint32_t>(delta, pos));
}

}  // namespace tableau
