#include "src/sim/simulation.h"

#include <algorithm>
#include <memory>

namespace tableau {

namespace {

// Min-heap order over (time, seq): seq is assigned monotonically at arm
// time, so same-time events pop in FIFO schedule order.
bool EntryAfter(TimeNs at, std::uint64_t as, TimeNs bt, std::uint64_t bs) {
  if (at != bt) return at > bt;
  return as > bs;
}

}  // namespace

Simulation::Simulation() {
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      wheel_[level][slot] = kNil;
    }
  }
}

std::int32_t Simulation::Resolve(EventId id) const {
  if (id == kInvalidEvent) {
    return kNil;
  }
  const std::uint32_t low = static_cast<std::uint32_t>(id);
  if (low == 0 || low > chunks_.size() * kChunkSize) {
    return kNil;
  }
  const std::int32_t node = static_cast<std::int32_t>(low - 1);
  const EventNode& ref = NodeRef(node);
  if (ref.where == Where::kFree || ref.generation != static_cast<std::uint32_t>(id >> 32)) {
    return kNil;
  }
  return node;
}

std::int32_t Simulation::AllocNode(bool persistent, TimeNs period) {
  if (free_head_ == kNil) {
    TABLEAU_CHECK_MSG(chunks_.size() < kMaxChunks, "event pool ceiling reached");
    const std::int32_t first = static_cast<std::int32_t>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkSize));
    chunk_table_[chunks_.size() - 1] = chunks_.back().get();
    for (std::int32_t i = static_cast<std::int32_t>(kChunkSize) - 1; i >= 0; --i) {
      EventNode& ref = NodeRef(first + i);
      ref.next = free_head_;
      free_head_ = first + i;
    }
  }
  const std::int32_t node = free_head_;
  EventNode& ref = NodeRef(node);
  free_head_ = ref.next;
  ref.where = Where::kDormant;
  ref.persistent = persistent;
  ref.period = period;
  // rearm_at/kill/no_rearm are (re)initialized by PopAndRunNext before the
  // callback runs and never read before then; prev/next are set when the
  // node is linked into a wheel slot. Leaving them stale here keeps the
  // allocation path to a handful of stores.
  ++live_nodes_;
  engine_stats_.peak_live_nodes = std::max(engine_stats_.peak_live_nodes, live_nodes_);
  return node;
}

void Simulation::FreeNode(std::int32_t node) {
  EventNode& ref = NodeRef(node);
  ref.fn.Reset();
  ++ref.generation;  // Invalidates every outstanding id/heap entry for this slot.
  ref.where = Where::kFree;
  ref.next = free_head_;
  free_head_ = node;
  --live_nodes_;
}

EventId Simulation::ArmNode(std::int32_t node, TimeNs at) {
  TABLEAU_CHECK_MSG(at >= now_, "event scheduled in the past: %lld < %lld",
                    static_cast<long long>(at), static_cast<long long>(now_));
  EventNode& ref = NodeRef(node);
  ref.time = at;
  ref.seq = next_seq_++;
  Insert(node);
  return IdOf(node);
}

void Simulation::Insert(std::int32_t node) {
  EventNode& ref = NodeRef(node);
  const TimeNs t = ref.time;
  if (t < base_) {
    // Behind the wheel cursor (the current level-0 slot already drained, or
    // the event belongs to the window currently being executed).
    ref.where = Where::kNear;
    HeapPush(near_, HeapEntry{t, ref.seq, IdOf(node)});
    return;
  }
  // Smallest level whose current rotation (256 slots above `shift`) still
  // contains `t`. Alignment — not distance — decides the level, so the slot
  // index is always at or ahead of the cursor and never wraps onto a slot
  // the cursor has already passed. The level is the index of the highest
  // differing slot-index byte of (t, base_) above the level-0 shift.
  const std::uint64_t diff =
      static_cast<std::uint64_t>(t ^ base_) >> kShift0;
  const int level = (63 - __builtin_clzll(diff | 1)) >> 3;
  if (level < kLevels) {
    LinkWheel(node, level, static_cast<int>((t >> ShiftOf(level)) & (kSlots - 1)));
    return;
  }
  ref.where = Where::kOverflow;
  HeapPush(overflow_, HeapEntry{t, ref.seq, IdOf(node)});
}

void Simulation::LinkWheel(std::int32_t node, int level, int slot) {
  EventNode& ref = NodeRef(node);
  ref.where = Where::kWheel;
  ref.level = static_cast<std::uint8_t>(level);
  ref.slot = static_cast<std::uint8_t>(slot);
  ref.prev = kNil;
  ref.next = wheel_[level][slot];
  if (ref.next != kNil) {
    NodeRef(ref.next).prev = node;
  }
  wheel_[level][slot] = node;
  occupied_[level][slot >> 6] |= 1ull << (slot & 63);
}

void Simulation::UnlinkWheel(std::int32_t node) {
  EventNode& ref = NodeRef(node);
  if (ref.prev != kNil) {
    NodeRef(ref.prev).next = ref.next;
  } else {
    wheel_[ref.level][ref.slot] = ref.next;
  }
  if (ref.next != kNil) {
    NodeRef(ref.next).prev = ref.prev;
  }
  if (wheel_[ref.level][ref.slot] == kNil) {
    occupied_[ref.level][ref.slot >> 6] &= ~(1ull << (ref.slot & 63));
  }
  ref.prev = kNil;
  ref.next = kNil;
}

void Simulation::HeapPush(std::vector<HeapEntry>& heap, const HeapEntry& entry) {
  heap.push_back(entry);
  std::size_t child = heap.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / 2;
    if (!EntryAfter(heap[parent].time, heap[parent].seq, heap[child].time, heap[child].seq)) {
      break;
    }
    std::swap(heap[parent], heap[child]);
    child = parent;
  }
}

void Simulation::HeapPop(std::vector<HeapEntry>& heap) {
  heap.front() = heap.back();
  heap.pop_back();
  std::size_t parent = 0;
  const std::size_t size = heap.size();
  while (true) {
    std::size_t best = parent;
    const std::size_t left = 2 * parent + 1;
    const std::size_t right = left + 1;
    if (left < size && EntryAfter(heap[best].time, heap[best].seq, heap[left].time, heap[left].seq)) {
      best = left;
    }
    if (right < size && EntryAfter(heap[best].time, heap[best].seq, heap[right].time, heap[right].seq)) {
      best = right;
    }
    if (best == parent) {
      break;
    }
    std::swap(heap[parent], heap[best]);
    parent = best;
  }
}

int Simulation::FindOccupied(int level, int from) const {
  int word = from >> 6;
  std::uint64_t bits = occupied_[level][word] & (~0ull << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + __builtin_ctzll(bits);
    }
    if (++word >= kSlots / 64) {
      return -1;
    }
    bits = occupied_[level][word];
  }
}

void Simulation::DrainSlotToBatch(std::int32_t head) {
  // A slot can never hold more events than there are live nodes, so one
  // conditional reserve makes the fill loop bounds-check-free raw stores.
  if (batch_.size() < live_nodes_) {
    batch_.resize(live_nodes_);
  }
  batch_pos_ = 0;
  batch_dirty_ = false;
  BatchEntry* out = batch_.data();
  std::size_t count = 0;
  std::int32_t node = head;
  while (node != kNil) {
    EventNode& ref = NodeRef(node);
    const std::int32_t next = ref.next;
    if (next != kNil) {
      __builtin_prefetch(&NodeRef(next));
    }
    ref.where = Where::kBatch;
    out[count++] = BatchEntry{ref.time, ref.seq, node};
    node = next;
  }
  batch_end_ = count;
  // The slot list is LIFO-linked; one sort restores global (time, seq) FIFO
  // order for the whole slot instead of a heap push+pop per event. Slots
  // hold a handful of events at production densities, where an inline
  // insertion sort beats std::sort's dispatch overhead by a wide margin.
  ++engine_stats_.batch_sorts;
  if (count <= 16) {
    for (std::size_t i = 1; i < count; ++i) {
      const BatchEntry key = out[i];
      std::size_t j = i;
      while (j > 0 && EntryAfter(out[j - 1].time, out[j - 1].seq, key.time, key.seq)) {
        out[j] = out[j - 1];
        --j;
      }
      out[j] = key;
    }
    return;
  }
  std::sort(out, out + count, [](const BatchEntry& a, const BatchEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
}

void Simulation::StashAsBatch(std::int32_t node) {
  EventNode& ref = NodeRef(node);
  ref.where = Where::kBatch;
  if (batch_.empty()) {
    batch_.resize(1);
  }
  batch_pos_ = 0;
  batch_end_ = 1;
  batch_dirty_ = false;
  batch_[0] = BatchEntry{ref.time, ref.seq, node};
}

void Simulation::CascadeSlot(int level, int slot) {
  ++engine_stats_.wheel_cascades;
  std::int32_t node = wheel_[level][slot];
  wheel_[level][slot] = kNil;
  occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  while (node != kNil) {
    const std::int32_t next = NodeRef(node).next;
    NodeRef(node).prev = kNil;
    NodeRef(node).next = kNil;
    Insert(node);  // Re-routes to a lower level (or near_ if behind base_).
    node = next;
  }
}

std::int32_t Simulation::AdvanceOnce() {
  // Flush occupied cursor slots top-down first. When base_ crosses into a
  // new level-k slot (level-0 drain jumps, cascade clamps, overflow reload),
  // events already parked in that slot share the current low-level rotation
  // with base_ and can precede anything inserted into the lower levels
  // afterwards — they must be distributed down before any level-0 slot is
  // drained. No insert ever targets the *current* cursor slot of a level
  // >= 1 (such a time is in a lower level's rotation by alignment), so the
  // flush only has work when base_ crossed a level-1-or-higher slot
  // boundary since the last flush — skip it otherwise.
  if (((base_ ^ flushed_base_) >> ShiftOf(1)) != 0) {
    for (int level = kLevels - 1; level >= 1; --level) {
      const int cur = static_cast<int>((base_ >> ShiftOf(level)) & (kSlots - 1));
      if ((occupied_[level][cur >> 6] >> (cur & 63)) & 1) {
        CascadeSlot(level, cur);
      }
    }
  }
  flushed_base_ = base_;
  // Level 0: drain the next occupied slot of this rotation.
  const int cur0 = static_cast<int>((base_ >> kShift0) & (kSlots - 1));
  int found = FindOccupied(0, cur0);
  if (found >= 0) {
    ++engine_stats_.slot_drains;
    const std::int32_t head = wheel_[0][found];
    wheel_[0][found] = kNil;
    occupied_[0][found >> 6] &= ~(1ull << (found & 63));
    base_ = ((base_ >> kShift0) + (found - cur0) + 1) << kShift0;
    if (NodeRef(head).next == kNil) {
      // Single-event slot: hand the node straight to the caller — no batch
      // traffic at all. Its `where` is stale (kWheel) for the instant until
      // the caller executes or stashes it; no user code runs in between.
      return head;
    }
    DrainSlotToBatch(head);
    return kAdvanceProgress;
  }
  // Level-0 rotation exhausted: cascade the next occupied higher-level slot
  // down one level. base_ is clamped forward (never backward — the cursor
  // slot can hold events even when base_ sits mid-slot after an overflow
  // reload; cascading re-routes any now-behind events into near_).
  for (int level = 1; level < kLevels; ++level) {
    const int shift = ShiftOf(level);
    const int cur = static_cast<int>((base_ >> shift) & (kSlots - 1));
    found = FindOccupied(level, cur);
    if (found < 0) {
      continue;
    }
    const TimeNs rotation_start = (base_ >> (shift + kSlotBits)) << (shift + kSlotBits);
    const TimeNs slot_start = rotation_start + (static_cast<TimeNs>(found) << shift);
    base_ = std::max(base_, slot_start);
    CascadeSlot(level, found);
    return kAdvanceProgress;
  }
  // Whole wheel empty: rebase onto the earliest live overflow event and pull
  // in everything that fits the new top-level rotation.
  while (!overflow_.empty()) {
    const HeapEntry top = overflow_.front();
    const std::int32_t node = Resolve(top.id);
    if (node == kNil || NodeRef(node).where != Where::kOverflow ||
        NodeRef(node).seq != top.seq) {
      HeapPop(overflow_);
      continue;
    }
    base_ = (top.time >> kShift0) << kShift0;
    ++engine_stats_.overflow_reloads;
    const int rotation_shift = ShiftOf(kLevels - 1) + kSlotBits;
    while (!overflow_.empty()) {
      const HeapEntry entry = overflow_.front();
      const std::int32_t candidate = Resolve(entry.id);
      if (candidate == kNil || NodeRef(candidate).where != Where::kOverflow ||
          NodeRef(candidate).seq != entry.seq) {
        HeapPop(overflow_);
        continue;
      }
      if ((entry.time >> rotation_shift) != (base_ >> rotation_shift)) {
        break;
      }
      HeapPop(overflow_);
      Insert(candidate);
    }
    return kAdvanceProgress;
  }
  return kAdvanceNone;
}

std::int32_t Simulation::PopNextLive(TimeNs limit) {
  while (true) {
    // Skip batch entries whose node was cancelled or re-armed since the
    // drain (seq is never reused, so a seq match proves the entry is live).
    // Unless batch_dirty_ is set no such operation has happened, and every
    // unconsumed entry is known-live without touching its node.
    std::size_t pos = batch_pos_;
    const std::size_t end = batch_end_;
    if (batch_dirty_) {
      while (pos != end) {
        const BatchEntry& entry = batch_[pos];
        const EventNode& ref = NodeRef(entry.node);
        if (ref.where == Where::kBatch && ref.seq == entry.seq) {
          break;
        }
        ++pos;
      }
      batch_pos_ = pos;
    }
    if (near_.empty()) {
      // Hot path: the whole drained slot executes straight out of the batch
      // array — no heap traffic at all.
      if (pos != end) {
        const BatchEntry& entry = batch_[pos];
        if (entry.time > limit) {
          return kNil;
        }
        ++batch_pos_;
        return entry.node;
      }
    } else {
      // Drop stale near entries (node cancelled or re-armed since enqueued).
      while (!near_.empty()) {
        const HeapEntry& entry = near_.front();
        const std::int32_t node = Resolve(entry.id);
        if (node != kNil && NodeRef(node).where == Where::kNear &&
            NodeRef(node).seq == entry.seq) {
          break;
        }
        HeapPop(near_);
      }
      // Merge the batch head against the near heap by (time, seq). Both
      // populations are strictly behind base_, while everything still in the
      // wheel/overflow is at or beyond base_, so the smaller of the two
      // heads is globally next.
      const bool have_near = !near_.empty();
      if (pos != end) {
        const BatchEntry& entry = batch_[pos];
        if (!have_near || !EntryAfter(entry.time, entry.seq, near_.front().time,
                                      near_.front().seq)) {
          if (entry.time > limit) {
            return kNil;
          }
          ++batch_pos_;
          return entry.node;
        }
      }
      if (have_near && near_.front().time < base_) {
        if (near_.front().time > limit) {
          return kNil;
        }
        const std::int32_t node = Resolve(near_.front().id);
        HeapPop(near_);
        return node;
      }
    }
    const std::int32_t advanced = AdvanceOnce();
    if (advanced >= 0) {
      // Direct single-event drain. With near_ empty (the overwhelmingly
      // common case) it is globally next; otherwise park it as a batch
      // entry and merge on the next loop iteration.
      if (near_.empty()) {
        if (NodeRef(advanced).time > limit) {
          StashAsBatch(advanced);
          return kNil;
        }
        return advanced;
      }
      StashAsBatch(advanced);
      continue;
    }
    if (advanced == kAdvanceNone) {
      if (!near_.empty()) {
        if (near_.front().time > limit) {
          return kNil;
        }
        const std::int32_t node = Resolve(near_.front().id);
        HeapPop(near_);
        return node;
      }
      return kNil;
    }
  }
}

__attribute__((flatten)) bool Simulation::PopAndRunNext(TimeNs limit) {
  const std::int32_t node = PopNextLive(limit);
  if (node == kNil) {
    return false;
  }
  // `ref` stays valid across the callback: chunks never move even if the
  // pool grows while the callback schedules new events.
  EventNode& ref = NodeRef(node);
  now_ = ref.time;
  ref.where = Where::kActive;
  // A callback running a nested RunUntil would clobber the activation
  // scratch, so save the enclosing activation's copy — but only when one
  // exists (active_node_ != kNil). The top-level dispatch loop, which is
  // all of the hot path, skips the five saves and five restores.
  const bool nested = active_node_ != kNil;
  std::int32_t saved_node = kNil;
  bool saved_kill = false;
  bool saved_no_rearm = false;
  TimeNs saved_rearm_at = kTimeNever;
  std::uint64_t saved_rearm_seq = 0;
  if (nested) {
    saved_node = active_node_;
    saved_kill = active_kill_;
    saved_no_rearm = active_no_rearm_;
    saved_rearm_at = active_rearm_at_;
    saved_rearm_seq = active_rearm_seq_;
  }
  active_node_ = node;
  active_kill_ = false;
  active_no_rearm_ = false;
  active_rearm_at_ = kTimeNever;
  ++events_executed_;
  ref.fn.Invoke();
  const bool kill = active_kill_;
  const bool no_rearm = active_no_rearm_;
  const TimeNs rearm_at = active_rearm_at_;
  const std::uint64_t rearm_seq = active_rearm_seq_;
  active_node_ = saved_node;
  if (nested) {
    active_kill_ = saved_kill;
    active_no_rearm_ = saved_no_rearm;
    active_rearm_at_ = saved_rearm_at;
    active_rearm_seq_ = saved_rearm_seq;
  }
  // Disposition, in priority order: Cancel() from inside the callback wins;
  // then an explicit Arm() (seq was assigned at the Arm call, preserving
  // FIFO order relative to events scheduled after it); then Disarm(); then
  // the periodic auto re-arm; persistent timers go dormant; one-shots free.
  if (kill) {
    FreeNode(node);
  } else if (rearm_at != kTimeNever) {
    ref.time = rearm_at;
    ref.seq = rearm_seq;
    Insert(node);
  } else if (no_rearm) {
    if (ref.persistent) {
      ref.where = Where::kDormant;
    } else {
      FreeNode(node);
    }
  } else if (ref.period > 0) {
    ref.time += ref.period;
    ref.seq = next_seq_++;
    Insert(node);
  } else if (ref.persistent) {
    ref.where = Where::kDormant;
  } else {
    FreeNode(node);
  }
  return true;
}

void Simulation::Arm(EventId id, TimeNs at) {
  const std::int32_t node = Resolve(id);
  TABLEAU_CHECK_MSG(node != kNil, "Arm() on a dead event id");
  TABLEAU_CHECK_MSG(at >= now_, "event scheduled in the past: %lld < %lld",
                    static_cast<long long>(at), static_cast<long long>(now_));
  EventNode& ref = NodeRef(node);
  switch (ref.where) {
    case Where::kActive:
      // Mid-callback self re-arm: record the target and take the seq NOW so
      // ordering against events armed later in the same callback matches
      // the schedule-call order.
      TABLEAU_CHECK_MSG(node == active_node_,
                        "Arm() on an active event that is not the running one");
      active_rearm_at_ = at;
      active_rearm_seq_ = next_seq_++;
      active_no_rearm_ = false;
      return;
    case Where::kWheel:
      UnlinkWheel(node);
      break;
    case Where::kBatch:
      batch_dirty_ = true;  // The old batch entry goes stale (seq changes).
      break;
    case Where::kNear:
    case Where::kOverflow:
      // The old heap entry goes stale (seq changes) and is dropped on pop.
      break;
    case Where::kDormant:
      break;
    case Where::kFree:
      TABLEAU_CHECK_MSG(false, "Arm() on a freed event");
      return;
  }
  ref.time = at;
  ref.seq = next_seq_++;
  Insert(node);
}

void Simulation::Disarm(EventId id) {
  const std::int32_t node = Resolve(id);
  if (node == kNil) {
    return;
  }
  EventNode& ref = NodeRef(node);
  switch (ref.where) {
    case Where::kActive:
      TABLEAU_CHECK_MSG(node == active_node_,
                        "Disarm() on an active event that is not the running one");
      active_no_rearm_ = true;
      active_rearm_at_ = kTimeNever;
      return;
    case Where::kDormant:
      return;
    case Where::kWheel:
      UnlinkWheel(node);
      break;
    case Where::kBatch:
      batch_dirty_ = true;  // Batch entry goes stale.
      break;
    case Where::kNear:
    case Where::kOverflow:
      break;  // Heap entry goes stale.
    case Where::kFree:
      return;
  }
  if (ref.persistent) {
    ref.where = Where::kDormant;
  } else {
    FreeNode(node);
  }
}

void Simulation::Cancel(EventId id) {
  const std::int32_t node = Resolve(id);
  if (node == kNil) {
    return;  // Already fired or already cancelled: no-op, no tombstone.
  }
  EventNode& ref = NodeRef(node);
  switch (ref.where) {
    case Where::kActive:
      TABLEAU_CHECK_MSG(node == active_node_,
                        "Cancel() on an active event that is not the running one");
      active_kill_ = true;
      return;
    case Where::kWheel:
      UnlinkWheel(node);
      break;
    case Where::kBatch:
      batch_dirty_ = true;  // Batch entry goes stale (generation bump).
      break;
    case Where::kDormant:
    case Where::kNear:
    case Where::kOverflow:
      break;
    case Where::kFree:
      return;
  }
  FreeNode(node);
}

void Simulation::CheckInvariantsForTest() const {
  for (int level = 0; level < kLevels; ++level) {
    const int shift = ShiftOf(level);
    for (int slot = 0; slot < kSlots; ++slot) {
      const bool bit = (occupied_[level][slot >> 6] >> (slot & 63)) & 1;
      TABLEAU_CHECK_MSG(bit == (wheel_[level][slot] != kNil),
                        "bitmap/list mismatch at level %d slot %d", level, slot);
      for (std::int32_t node = wheel_[level][slot]; node != kNil;
           node = NodeRef(node).next) {
        const EventNode& ref = NodeRef(node);
        TABLEAU_CHECK_MSG(ref.where == Where::kWheel, "non-wheel node in slot list");
        TABLEAU_CHECK_MSG(ref.level == level && ref.slot == slot,
                          "node filed at level %d slot %d, thinks %d/%d", level, slot,
                          ref.level, ref.slot);
        TABLEAU_CHECK_MSG(ref.time >= base_,
                          "wheel node behind cursor: t=%lld base=%lld level=%d slot=%d",
                          static_cast<long long>(ref.time),
                          static_cast<long long>(base_), level, slot);
        TABLEAU_CHECK_MSG((ref.time >> (shift + kSlotBits)) == (base_ >> (shift + kSlotBits)),
                          "node out of its level's rotation: t=%lld base=%lld level=%d",
                          static_cast<long long>(ref.time),
                          static_cast<long long>(base_), level);
        TABLEAU_CHECK_MSG(static_cast<int>((ref.time >> shift) & (kSlots - 1)) == slot,
                          "node slot index mismatch at level %d", level);
      }
    }
  }
  // The unconsumed batch tail must be sorted by (time, seq) and strictly
  // behind the cursor.
  for (std::size_t i = batch_pos_; i + 1 < batch_end_; ++i) {
    TABLEAU_CHECK_MSG(!EntryAfter(batch_[i].time, batch_[i].seq, batch_[i + 1].time,
                                  batch_[i + 1].seq),
                      "batch entries out of (time, seq) order at %zu", i);
  }
  for (std::size_t i = batch_pos_; i < batch_end_; ++i) {
    TABLEAU_CHECK_MSG(batch_[i].time < base_, "batch entry at/after cursor");
  }
  // Every batch/heap-resident node must have exactly one live entry in its
  // container; a node with none would be stranded and fire late (or never).
  const std::int32_t total = static_cast<std::int32_t>(chunks_.size() * kChunkSize);
  for (std::int32_t node = 0; node < total; ++node) {
    const EventNode& ref = NodeRef(node);
    if (ref.where == Where::kBatch) {
      int matches = 0;
      for (std::size_t i = batch_pos_; i < batch_end_; ++i) {
        if (batch_[i].node == node && batch_[i].seq == ref.seq) {
          TABLEAU_CHECK_MSG(batch_[i].time == ref.time, "batch entry time desynced from node");
          ++matches;
        }
      }
      TABLEAU_CHECK_MSG(matches == 1, "node %d in batch has %d live entries", node, matches);
      continue;
    }
    if (ref.where != Where::kNear && ref.where != Where::kOverflow) {
      continue;
    }
    const std::vector<HeapEntry>& heap = ref.where == Where::kNear ? near_ : overflow_;
    int matches = 0;
    for (const HeapEntry& entry : heap) {
      if (entry.id == IdOf(node) && entry.seq == ref.seq) {
        TABLEAU_CHECK_MSG(entry.time == ref.time, "heap entry time desynced from node");
        ++matches;
      }
    }
    TABLEAU_CHECK_MSG(matches == 1, "node %d in %s has %d live heap entries", node,
                      ref.where == Where::kNear ? "near" : "overflow", matches);
  }
}

void Simulation::RunUntil(TimeNs until) {
  while (PopAndRunNext(until)) {
  }
  now_ = until;
}

void Simulation::RunAll() {
  while (PopAndRunNext(kTimeNever)) {
  }
}

}  // namespace tableau
