#include "src/sim/simulation.h"

#include <utility>

namespace tableau {

EventId Simulation::ScheduleAt(TimeNs at, std::function<void()> fn) {
  TABLEAU_CHECK_MSG(at >= now_, "event scheduled in the past: %lld < %lld",
                    static_cast<long long>(at), static_cast<long long>(now_));
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(fn)});
  return id;
}

void Simulation::Cancel(EventId id) {
  if (id != kInvalidEvent) {
    cancelled_.insert(id);
  }
}

bool Simulation::PopAndRunNext(TimeNs limit) {
  while (!queue_.empty()) {
    if (queue_.top().time > limit) {
      return false;
    }
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(event.id) > 0) {
      continue;  // Lazily dropped.
    }
    now_ = event.time;
    ++events_executed_;
    event.fn();
    return true;
  }
  return false;
}

void Simulation::RunUntil(TimeNs until) {
  while (PopAndRunNext(until)) {
  }
  now_ = until;
}

void Simulation::RunAll() {
  while (PopAndRunNext(kTimeNever)) {
  }
}

}  // namespace tableau
