// Small-buffer callable storage for pooled simulation events.
//
// The seed engine stored every event callback in a std::function, which
// heap-allocates for any capture larger than the library's tiny inline
// buffer — one malloc/free per simulated event on the hottest path in the
// repo. Every callback the hypervisor, schedulers, and workloads schedule
// captures a pointer plus at most a couple of scalars, so EventCallback
// keeps a 48-byte inline buffer and *no* heap fallback: an oversized
// capture is a compile error at the Set() call site, which keeps the
// schedule path allocation-free by construction (asserted end to end by
// tests/alloc_steady_state_test.cc). Trivially destructible captures —
// all of them in practice — skip the destructor thunk entirely, saving an
// indirect call per fired event.
//
// EventCallback lives inside a pooled EventNode that never moves (the pool
// is chunked), so it is deliberately neither copyable nor movable: Set()
// constructs in place, Reset() destroys in place.
#ifndef SRC_SIM_EVENT_CALLBACK_H_
#define SRC_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tableau {

class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() = default;
  ~EventCallback() { Reset(); }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  bool has_value() const { return invoke_ != nullptr; }

  template <typename F>
  void Set(F&& fn) {
    Reset();
    using T = std::decay_t<F>;
    static_assert(sizeof(T) <= kInlineBytes,
                  "event callback capture exceeds the inline buffer; shrink the "
                  "capture (capture pointers, not values) instead of boxing it");
    static_assert(alignof(T) <= 8, "event callback capture is over-aligned");
    ::new (static_cast<void*>(inline_)) T(std::forward<F>(fn));
    invoke_ = [](void* target) { (*static_cast<T*>(target))(); };
    if constexpr (!std::is_trivially_destructible_v<T>) {
      destroy_ = [](void* target) { static_cast<T*>(target)->~T(); };
    }
  }

  // Invokes the stored callable. The callable may re-arm or cancel its own
  // event, but the node (and therefore this storage) stays alive for the
  // duration of the call — the pool defers reclamation of an active node.
  void Invoke() { invoke_(static_cast<void*>(inline_)); }

  void Reset() {
    if (destroy_ != nullptr) {
      destroy_(static_cast<void*>(inline_));
      destroy_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  // The invoke pointer sits *before* the capture bytes so that it shares a
  // cache line with the owning EventNode's header fields.
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(8) unsigned char inline_[kInlineBytes];
};

}  // namespace tableau

#endif  // SRC_SIM_EVENT_CALLBACK_H_
