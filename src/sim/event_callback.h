// Small-buffer-optimized callable storage for pooled simulation events.
//
// The seed engine stored every event callback in a std::function, which
// heap-allocates for any capture larger than the library's tiny inline
// buffer — one malloc/free per simulated event on the hottest path in the
// repo. Every callback the hypervisor, schedulers, and workloads schedule
// captures a pointer plus at most a couple of scalars, so EventCallback
// keeps a 56-byte inline buffer and only falls back to the heap for
// oversized callables (e.g. a std::function passed through by tests).
//
// EventCallback lives inside a pooled EventNode that never moves (the pool
// is chunked), so it is deliberately neither copyable nor movable: Set()
// constructs in place, Reset() destroys in place.
#ifndef SRC_SIM_EVENT_CALLBACK_H_
#define SRC_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tableau {

class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 56;

  EventCallback() = default;
  ~EventCallback() { Reset(); }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  bool has_value() const { return invoke_ != nullptr; }

  template <typename F>
  void Set(F&& fn) {
    Reset();
    using T = std::decay_t<F>;
    if constexpr (sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(inline_)) T(std::forward<F>(fn));
      invoke_ = [](void* target) { (*static_cast<T*>(target))(); };
      destroy_ = [](void* target) { static_cast<T*>(target)->~T(); };
    } else {
      heap_ = new T(std::forward<F>(fn));
      invoke_ = [](void* target) { (*static_cast<T*>(target))(); };
      destroy_ = [](void* target) { delete static_cast<T*>(target); };
    }
  }

  // Invokes the stored callable. The callable may re-arm or cancel its own
  // event, but the node (and therefore this storage) stays alive for the
  // duration of the call — the pool defers reclamation of an active node.
  void Invoke() { invoke_(Target()); }

  void Reset() {
    if (destroy_ != nullptr) {
      destroy_(Target());
    }
    heap_ = nullptr;
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void* Target() { return heap_ != nullptr ? heap_ : static_cast<void*>(inline_); }

  alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
  void* heap_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace tableau

#endif  // SRC_SIM_EVENT_CALLBACK_H_
