// pCPU-sharded single-host simulation mode (DESIGN.md "Simulation hot
// loop", sharded determinism argument).
//
// A ShardedSimulation partitions one host's event population into per-pCPU
// shards. Each shard's events run on their own Simulation engine and the
// shards advance in lock-step epochs: all shards run to the epoch boundary,
// then buffered cross-shard messages (IPIs, table-switch notifications,
// replan pushes) are merged in a deterministic (due-time, sender shard,
// send seq) order and injected into their target shards before the next
// epoch starts.
//
// Determinism / serial-equivalence argument: cross-shard sends must carry a
// latency of at least one epoch (Post() checks), so a message posted during
// epoch k is due no earlier than the start of epoch k+1 — the target shard
// has not yet advanced past the delivery time when the barrier injects it.
// Within an epoch, shards are therefore causally independent: a shard's
// event sequence depends only on its own prior events and the messages
// injected at earlier barriers, both of which are identical whether the
// shards share one engine or run on engines of their own (in any order, or
// concurrently). This makes the `sharded` option purely an execution
// strategy: per-shard event streams — and hence any fingerprint computed
// over (shard, time, payload) — are bit-identical with it on or off
// (asserted by tests/sharded_sim_test.cc).
//
// The option is off by default: `sharded == false` multiplexes every shard
// onto a single engine, which is exactly the classic serial mode. With
// `parallel == true` (requires `sharded`), each epoch runs the shard
// engines on worker threads and joins at the barrier; message merging stays
// single-threaded, so the guarantee above is unchanged.
#ifndef SRC_SIM_SHARDED_SIM_H_
#define SRC_SIM_SHARDED_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/obs/timeseries.h"
#include "src/sim/simulation.h"

namespace tableau {

class ShardedSimulation {
 public:
  struct Options {
    int num_shards = 1;
    // Barrier quantum: the minimum cross-shard latency. Defaults to 50 us —
    // comfortably under the IPI/table-switch latencies the hypervisor
    // models, and long enough that barrier overhead stays negligible
    // against a level-0 wheel rotation (262 us).
    TimeNs epoch_ns = 50'000;
    // Off by default: all shards multiplex onto one serial engine.
    bool sharded = false;
    // Run shard engines on threads within each epoch (requires sharded).
    bool parallel = false;
    // Worker threads for parallel epochs (<= 0: one thread per shard).
    // Shards are partitioned into contiguous ranges, one range per worker,
    // and each worker runs its range serially — purely an execution-cost
    // knob; the epoch barrier and message merge are unchanged, so results
    // are byte-identical for any thread count (tests/fleet_test.cc).
    int num_threads = 0;
  };

  // Outcome of a cross-shard Post. The sharding contract requires the
  // message latency to be at least one epoch (so delivery stays behind the
  // receiving shard's clock); a too-early post is *rejected*, not adjusted,
  // and the caller decides whether to re-post with `required_delay` or treat
  // the attempt as a policy error. External control planes (src/fleet) probe
  // this result instead of learning the rule via assert.
  struct PostResult {
    enum class Status { kAccepted, kTooEarly };
    Status status = Status::kAccepted;
    // Minimum delay that would have been accepted (== epoch_ns); only
    // meaningful when status == kTooEarly.
    TimeNs required_delay = 0;
    bool ok() const { return status == Status::kAccepted; }
  };

  explicit ShardedSimulation(const Options& options);

  int num_shards() const { return options_.num_shards; }
  TimeNs epoch_ns() const { return options_.epoch_ns; }
  bool sharded() const { return options_.sharded; }

  // Engine hosting `shard`'s local events. Callers schedule per-pCPU work
  // (dispatch ticks, vCPU timers) directly on it; in serial mode every
  // shard resolves to the same engine.
  Simulation& shard(int shard) {
    return *engines_[options_.sharded ? static_cast<std::size_t>(shard) : 0];
  }

  // Last completed barrier time (the globally agreed-upon clock).
  TimeNs Now() const { return barrier_; }

  // Posts `fn` to run on `to_shard` at `delay` ns after `from_shard`'s
  // current local time. `delay` must be >= epoch_ns — the sharding contract
  // that keeps delivery behind the receiving shard's clock; a shorter delay
  // returns PostResult{kTooEarly, epoch_ns} and enqueues nothing (`fn` is
  // dropped). Shard indices out of range are a programming error and still
  // abort. Delivery order among messages due at the same instant is
  // (sender shard, send seq) — deterministic and mode-independent.
  [[nodiscard]] PostResult Post(int from_shard, int to_shard, TimeNs delay,
                                std::function<void()> fn);

  // Advances all shards to `until` in epoch steps, delivering cross-shard
  // messages at each barrier.
  void RunUntil(TimeNs until);

  // Sum of events executed across the shard engines.
  std::uint64_t events_executed() const;

  // Barriers completed so far (observability / bench).
  std::uint64_t epochs() const { return epochs_; }

  // Registers `recorder` as `shard`'s telemetry sink. Each shard records
  // into its own recorder (no cross-thread contention during parallel
  // epochs); MergedTimeSeries() combines them after the run. Not owned;
  // must outlive this object.
  void AttachShardRecorder(int shard, obs::TimeSeriesRecorder* recorder);
  obs::TimeSeriesRecorder* shard_recorder(int shard) const;

  // Deterministic merge of all attached shard recorders' snapshots.
  // TimeSeriesSnapshot::Merge is commutative and associative (per-window
  // count/sum adds, min/max folds), so the result is bit-identical
  // regardless of shard order, thread interleaving, or serial vs sharded
  // execution (asserted by tests).
  obs::TimeSeriesSnapshot MergedTimeSeries() const;

 private:
  struct Message {
    TimeNs due;
    int from;
    std::uint64_t seq;
    int to;
    std::function<void()> fn;
  };

  void DeliverPending();
  void RunEpoch(TimeNs epoch_end);

  Options options_;
  std::vector<std::unique_ptr<Simulation>> engines_;
  // Outbox per sender shard: with parallel execution each shard appends to
  // its own buffer during the epoch, so no cross-thread contention; the
  // barrier merges them deterministically.
  std::vector<std::vector<Message>> outbox_;
  std::vector<std::uint64_t> next_seq_;
  std::vector<obs::TimeSeriesRecorder*> shard_recorders_;
  TimeNs barrier_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace tableau

#endif  // SRC_SIM_SHARDED_SIM_H_
