// Discrete-event simulation engine.
//
// The hypervisor substrate (src/hypervisor) runs on this engine: every
// context switch, timer, wake-up, and IPI is an event at nanosecond
// resolution. Events at the same timestamp execute in scheduling (FIFO)
// order, which keeps runs exactly deterministic.
//
// Engine design (see DESIGN.md "Event engine" and "Simulation hot loop"):
//  - Events live in a chunked slab pool with a free list; an EventId packs
//    {generation, pool slot}, so cancellation is O(1) true deletion and a
//    stale id (already fired, already cancelled, slot since reused) is
//    detected by a generation mismatch instead of an unbounded tombstone
//    set. Callbacks are stored inline in the node (EventCallback) with no
//    heap fallback, so the schedule hot path performs zero allocations.
//  - Pending events sit in a 4-level hierarchical timer wheel (256 slots
//    per level, 1024 ns level-0 slots, ~73 min horizon) with an overflow
//    min-heap for events beyond the current top-level rotation.
//  - Dispatch is batched per level-0 slot: a whole slot is drained into a
//    contiguous batch array, sorted once by (time, seq) — seq is a
//    monotonically increasing arm counter, so the sort restores exact FIFO
//    order among same-time events — and then executed by bumping an index.
//    Only events that land behind the wheel cursor after the drain (rare:
//    sub-slot re-arms, cascade stragglers) go through the small "near"
//    min-heap, which is merged with the batch by (time, seq) on pop.
//  - Persistent timers (CreateTimer / SchedulePeriodic / Arm / Disarm) let
//    hot periodic work — scheduler accounting ticks, workload pacers, the
//    per-CPU dispatch events — re-arm one pooled node instead of
//    allocating a fresh closure per tick.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/event_callback.h"

namespace tableau {

// Packs {generation:32, pool slot + 1:32}; 0 is never a valid id.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run once at absolute time `at` (>= Now()). Returns an
  // id that can be passed to Cancel(). The node is reclaimed when the event
  // fires or is cancelled.
  template <typename F>
  EventId ScheduleAt(TimeNs at, F&& fn) {
    const std::int32_t node = AllocNode(/*persistent=*/false, /*period=*/0);
    NodeRef(node).fn.Set(std::forward<F>(fn));
    return ArmNode(node, at);
  }

  // Schedules `fn` to run `delay` ns from now.
  template <typename F>
  EventId ScheduleAfter(TimeNs delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` to run at absolute time `first_at` and then every
  // `period` ns, re-arming the same pooled node (no per-tick allocation).
  // From inside its own callback the event may override the next fire time
  // with Arm(id, at) or stop itself with Cancel(id)/Disarm(id).
  template <typename F>
  EventId SchedulePeriodic(TimeNs first_at, TimeNs period, F&& fn) {
    TABLEAU_CHECK(period > 0);
    const std::int32_t node = AllocNode(/*persistent=*/true, period);
    NodeRef(node).fn.Set(std::forward<F>(fn));
    return ArmNode(node, first_at);
  }

  // Creates a dormant persistent timer: the callback is stored once and the
  // timer fires whenever Arm()ed, going dormant again after each fire.
  // Destroyed with Cancel().
  template <typename F>
  EventId CreateTimer(F&& fn) {
    const std::int32_t node = AllocNode(/*persistent=*/true, /*period=*/0);
    NodeRef(node).fn.Set(std::forward<F>(fn));
    return IdOf(node);
  }

  // (Re-)arms `id` to fire at absolute time `at` (>= Now()): a dormant
  // timer is enqueued, a pending event is moved, and an event arming itself
  // from inside its own callback records `at` as its next fire time. The id
  // must be live (fired-and-reclaimed one-shots and cancelled events are
  // invalid here).
  void Arm(EventId id, TimeNs at);

  // Dequeues a pending event. A persistent timer stays allocated (dormant,
  // re-armable); a one-shot is reclaimed. From inside the event's own
  // callback this suppresses the pending re-arm of a periodic timer. No-op
  // for already-fired or already-cancelled ids.
  void Disarm(EventId id);

  // Cancels an event and reclaims its node — O(1), no tombstones. For a
  // periodic/persistent timer this both stops future fires and destroys the
  // timer. Cancelling an already-fired or already-cancelled event is a
  // no-op.
  void Cancel(EventId id);

  // Runs events until the queue is empty or the next event is after
  // `until`; the clock ends at exactly `until`.
  void RunUntil(TimeNs until);

  // Runs until no pending events remain (dormant timers don't count).
  void RunAll();

  std::uint64_t events_executed() const { return events_executed_; }

  // Internal-mechanism counters for observability (exported as sim.* metrics
  // by Machine::SnapshotMetrics). Plain integers: the engine is
  // single-threaded and these never influence event order.
  struct EngineStats {
    std::uint64_t wheel_cascades = 0;    // Higher-level slots redistributed.
    std::uint64_t slot_drains = 0;       // Level-0 slots drained into a batch.
    std::uint64_t batch_sorts = 0;       // Drained slots that needed a sort (>1 event).
    std::uint64_t overflow_reloads = 0;  // Wheel rebases from the overflow heap.
    std::size_t peak_live_nodes = 0;     // High-water mark of live_events().
  };
  const EngineStats& engine_stats() const { return engine_stats_; }

  // Pool introspection (tests / benches): nodes currently allocated to
  // pending, active, or dormant events, and the pool's total capacity.
  // Capacity staying flat across schedule/fire/cancel churn is the
  // no-leak regression signal.
  std::size_t live_events() const { return live_nodes_; }
  std::size_t pool_capacity() const { return chunks_.size() * kChunkSize; }

  // Test hook: walks the whole structure and aborts if an internal invariant
  // is broken (wheel node behind the cursor, bitmap out of sync with the
  // slot lists, misfiled level/slot, batch entry desynced from its node).
  // O(pool + slots); call from tests only.
  void CheckInvariantsForTest() const;

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;             // 256 slots/level.
  static constexpr int kShift0 = 10;                        // 1024 ns level-0 slots.
  static constexpr std::int32_t kNil = -1;
  static constexpr std::size_t kChunkSize = 256;
  // Pool ceiling: kMaxChunks * kChunkSize live events. The flat chunk table
  // below keeps node lookup to one dependent load; 256k simultaneous events
  // is two orders of magnitude beyond any current scenario.
  static constexpr std::size_t kMaxChunks = 1024;

  enum class Where : std::uint8_t {
    kFree,     // On the free list.
    kDormant,  // Allocated persistent timer, not queued.
    kWheel,    // Linked into a wheel slot (level_/slot_).
    kBatch,    // Drained into the current execution batch.
    kNear,     // Tracked by an entry in near_.
    kOverflow, // Tracked by an entry in overflow_.
    kActive,   // Callback currently executing.
  };

  // 128 bytes, cache-line aligned. The execute path (time, seq, links,
  // where, period, the callback's invoke pointer, and the first capture
  // bytes — every real callback captures one pointer) reads a single line.
  // Per-activation scratch (mid-callback Arm/Disarm/Cancel) lives in the
  // Simulation object instead: only one event is active at a time, and the
  // owner's hot fields are already resident.
  struct alignas(64) EventNode {
    TimeNs time = 0;
    std::uint64_t seq = 0;
    std::int32_t prev = kNil;    // Wheel slot list links; next doubles as
    std::int32_t next = kNil;    // the free-list link.
    std::uint32_t generation = 0;
    Where where = Where::kFree;
    bool persistent = false;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;       // kSlots == 256: a slot index is one byte.
    TimeNs period = 0;           // > 0: auto re-arm at time + period.
    EventCallback fn;
  };
  static_assert(sizeof(EventNode) == 128, "EventNode outgrew two cache lines");

  // Heap entries carry their own sort key so a reclaimed node (generation
  // bumped, slot possibly reused) never has to be dereferenced for
  // ordering; staleness is checked against the node on pop.
  struct HeapEntry {
    TimeNs time;
    std::uint64_t seq;
    EventId id;
  };

  // Batch entries reference the node directly: within one batch's lifetime a
  // pool slot cannot cycle back into Where::kBatch (a new drain only happens
  // once the previous batch is exhausted), so `where == kBatch && seq ==
  // entry.seq` is a complete staleness check — no generation resolve needed.
  struct BatchEntry {
    TimeNs time;
    std::uint64_t seq;
    std::int32_t node;
  };

  static int ShiftOf(int level) { return kShift0 + kSlotBits * level; }
  EventId IdOf(std::int32_t node) const {
    return (static_cast<EventId>(NodeRef(node).generation) << 32) |
           static_cast<EventId>(static_cast<std::uint32_t>(node) + 1);
  }

  EventNode& NodeRef(std::int32_t node) const {
    return chunk_table_[static_cast<std::size_t>(node) / kChunkSize]
                       [static_cast<std::size_t>(node) % kChunkSize];
  }
  // Resolves an id to its node index, or kNil if stale/invalid.
  std::int32_t Resolve(EventId id) const;

  std::int32_t AllocNode(bool persistent, TimeNs period);
  void FreeNode(std::int32_t node);
  EventId ArmNode(std::int32_t node, TimeNs at);

  // Routes a node (time/seq already set) into the near heap, a wheel slot,
  // or the overflow heap, based on its distance from base_.
  void Insert(std::int32_t node);
  void LinkWheel(std::int32_t node, int level, int slot);
  void UnlinkWheel(std::int32_t node);

  void HeapPush(std::vector<HeapEntry>& heap, const HeapEntry& entry);
  void HeapPop(std::vector<HeapEntry>& heap);

  // AdvanceOnce return values below node indices: no pending content vs
  // progress made (cascade, reload, or multi-event drain) — call again.
  static constexpr std::int32_t kAdvanceNone = -1;
  static constexpr std::int32_t kAdvanceProgress = -2;

  // Moves the wheel forward to the next occupied content: drains the next
  // occupied level-0 slot, cascades one higher-level slot, or reloads from
  // the overflow heap. A single-event slot — the common case at production
  // densities — returns its node directly, bypassing the batch; multi-event
  // slots fill batch_ and return kAdvanceProgress.
  std::int32_t AdvanceOnce();
  int FindOccupied(int level, int from) const;
  void DrainSlotToBatch(std::int32_t head);
  // Re-parks a node produced by a direct single-event drain as the sole
  // batch entry (limit overrun or pending near merge).
  void StashAsBatch(std::int32_t node);
  void CascadeSlot(int level, int slot);

  // Pops the next live event with time <= limit from the batch/near merge
  // (advancing the wheel as needed); kNil if none.
  std::int32_t PopNextLive(TimeNs limit);
  bool PopAndRunNext(TimeNs limit);

  TimeNs now_ = 0;
  TimeNs base_ = 0;  // Level-0-aligned; wheel/overflow events are >= base_.
  TimeNs flushed_base_ = 0;  // base_ value at the last cursor-slot flush.
  std::uint64_t next_seq_ = 1;
  // Scratch for the one currently-executing event (saved/restored around
  // nested runs): a mid-callback Arm/Disarm/Cancel records its outcome here
  // and PopAndRunNext applies it after the callback returns.
  std::int32_t active_node_ = kNil;
  bool active_kill_ = false;       // Cancel() during own callback.
  bool active_no_rearm_ = false;   // Disarm() during own callback.
  TimeNs active_rearm_at_ = kTimeNever;  // Arm() during own callback.
  std::uint64_t active_rearm_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::size_t live_nodes_ = 0;
  EngineStats engine_stats_;

  std::vector<std::unique_ptr<EventNode[]>> chunks_;  // Owns the pool chunks.
  // Flat mirror of chunks_: NodeRef indexes this fixed array directly (one
  // dependent load) instead of chasing through the vector's data pointer.
  EventNode* chunk_table_[kMaxChunks] = {};
  std::int32_t free_head_ = kNil;

  std::int32_t wheel_[kLevels][kSlots];  // Slot list heads (kNil when empty).
  std::uint64_t occupied_[kLevels][kSlots / 64] = {};
  // Current level-0 slot, sorted by (time, seq). The vector is a raw grow-only
  // buffer: the live region is [batch_pos_, batch_end_), not [0, size()).
  std::vector<BatchEntry> batch_;
  std::size_t batch_pos_ = 0;
  std::size_t batch_end_ = 0;
  // Set when Cancel/Disarm/Arm touches a kBatch node: only then can an
  // unconsumed batch entry be stale, so the pop fast path skips the
  // per-entry node check entirely while the flag is clear.
  bool batch_dirty_ = false;
  std::vector<HeapEntry> near_;
  std::vector<HeapEntry> overflow_;
};

}  // namespace tableau

#endif  // SRC_SIM_SIMULATION_H_
