// Discrete-event simulation engine.
//
// The hypervisor substrate (src/hypervisor) runs on this engine: every
// context switch, timer, wake-up, and IPI is an event at nanosecond
// resolution. Events at the same timestamp execute in scheduling (FIFO)
// order, which keeps runs exactly deterministic.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace tableau {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()). Returns an id
  // that can be passed to Cancel().
  EventId ScheduleAt(TimeNs at, std::function<void()> fn);

  // Schedules `fn` to run `delay` ns from now.
  EventId ScheduleAfter(TimeNs delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event (lazy deletion; cheap). Cancelling an already-
  // fired or already-cancelled event is a no-op.
  void Cancel(EventId id);

  // Runs events until the queue is empty or the next event is after `until`;
  // the clock ends at exactly `until`.
  void RunUntil(TimeNs until);

  // Runs until the event queue is empty.
  void RunAll();

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    TimeNs time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events.
    }
  };

  bool PopAndRunNext(TimeNs limit);

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tableau

#endif  // SRC_SIM_SIMULATION_H_
