#include "src/sim/sharded_sim.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace tableau {

ShardedSimulation::ShardedSimulation(const Options& options)
    : options_(options) {
  TABLEAU_CHECK(options_.num_shards >= 1);
  TABLEAU_CHECK(options_.epoch_ns > 0);
  TABLEAU_CHECK(!options_.parallel || options_.sharded);
  const std::size_t engines =
      options_.sharded ? static_cast<std::size_t>(options_.num_shards) : 1;
  engines_.reserve(engines);
  for (std::size_t i = 0; i < engines; ++i) {
    engines_.push_back(std::make_unique<Simulation>());
  }
  outbox_.resize(static_cast<std::size_t>(options_.num_shards));
  next_seq_.assign(static_cast<std::size_t>(options_.num_shards), 1);
}

ShardedSimulation::PostResult ShardedSimulation::Post(
    int from_shard, int to_shard, TimeNs delay, std::function<void()> fn) {
  TABLEAU_CHECK(from_shard >= 0 && from_shard < options_.num_shards);
  TABLEAU_CHECK(to_shard >= 0 && to_shard < options_.num_shards);
  if (delay < options_.epoch_ns) {
    return PostResult{PostResult::Status::kTooEarly, options_.epoch_ns};
  }
  const auto sender = static_cast<std::size_t>(from_shard);
  outbox_[sender].push_back(Message{shard(from_shard).Now() + delay,
                                    from_shard, next_seq_[sender]++, to_shard,
                                    std::move(fn)});
  return PostResult{};
}

void ShardedSimulation::DeliverPending() {
  // Merge all outboxes into (due, sender, seq) order, then inject. The
  // injection order fixes the target engines' arm-seq order among
  // same-instant messages, so delivery is deterministic regardless of which
  // shard (or thread) produced which message first in wall-clock terms.
  std::vector<Message> merged;
  std::size_t total = 0;
  for (const auto& box : outbox_) {
    total += box.size();
  }
  if (total == 0) {
    return;
  }
  merged.reserve(total);
  for (auto& box : outbox_) {
    for (Message& message : box) {
      merged.push_back(std::move(message));
    }
    box.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const Message& a, const Message& b) {
              if (a.due != b.due) return a.due < b.due;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (Message& message : merged) {
    TABLEAU_CHECK(message.due >= barrier_);
    shard(message.to).ScheduleAt(message.due, std::move(message.fn));
  }
}

void ShardedSimulation::RunEpoch(TimeNs epoch_end) {
  if (!options_.parallel || engines_.size() == 1) {
    for (auto& engine : engines_) {
      engine->RunUntil(epoch_end);
    }
    return;
  }
  // Shards are causally independent within an epoch (see header), so the
  // engines may run concurrently; the barrier is the join. With a bounded
  // worker count the engines are split into contiguous ranges, one per
  // worker, each range run serially — the partition only changes which
  // thread hosts which engine, never the per-engine event order.
  std::size_t workers_wanted = options_.num_threads > 0
                                   ? static_cast<std::size_t>(options_.num_threads)
                                   : engines_.size();
  workers_wanted = std::min(workers_wanted, engines_.size());
  const std::size_t per_worker =
      (engines_.size() + workers_wanted - 1) / workers_wanted;
  std::vector<std::thread> workers;
  workers.reserve(workers_wanted - 1);
  const auto run_range = [this, epoch_end](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end && i < engines_.size(); ++i) {
      engines_[i]->RunUntil(epoch_end);
    }
  };
  for (std::size_t w = 1; w < workers_wanted; ++w) {
    workers.emplace_back(run_range, w * per_worker, (w + 1) * per_worker);
  }
  run_range(0, per_worker);
  for (std::thread& worker : workers) {
    worker.join();
  }
}

void ShardedSimulation::RunUntil(TimeNs until) {
  TABLEAU_CHECK(until >= barrier_);
  // Messages posted before the first epoch (setup code) are injected up
  // front so the opening epoch sees them.
  DeliverPending();
  while (barrier_ < until) {
    const TimeNs epoch_end = std::min(until, barrier_ + options_.epoch_ns);
    RunEpoch(epoch_end);
    barrier_ = epoch_end;
    ++epochs_;
    DeliverPending();
  }
}

void ShardedSimulation::AttachShardRecorder(int shard,
                                            obs::TimeSeriesRecorder* recorder) {
  TABLEAU_CHECK(shard >= 0 && shard < options_.num_shards);
  if (shard_recorders_.empty()) {
    shard_recorders_.assign(static_cast<std::size_t>(options_.num_shards),
                            nullptr);
  }
  shard_recorders_[static_cast<std::size_t>(shard)] = recorder;
}

obs::TimeSeriesRecorder* ShardedSimulation::shard_recorder(int shard) const {
  TABLEAU_CHECK(shard >= 0 && shard < options_.num_shards);
  const auto index = static_cast<std::size_t>(shard);
  return index < shard_recorders_.size() ? shard_recorders_[index] : nullptr;
}

obs::TimeSeriesSnapshot ShardedSimulation::MergedTimeSeries() const {
  obs::TimeSeriesSnapshot merged;
  for (const obs::TimeSeriesRecorder* recorder : shard_recorders_) {
    if (recorder != nullptr) {
      merged.Merge(recorder->Snapshot());
    }
  }
  return merged;
}

std::uint64_t ShardedSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) {
    total += engine->events_executed();
  }
  return total;
}

}  // namespace tableau
