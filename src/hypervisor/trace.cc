#include "src/hypervisor/trace.h"

#include <cstdio>

#include "src/common/check.h"

namespace tableau {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kDispatch:
      return "dispatch";
    case TraceEvent::kDeschedule:
      return "deschedule";
    case TraceEvent::kBlock:
      return "block";
    case TraceEvent::kWakeup:
      return "wakeup";
    case TraceEvent::kIdle:
      return "idle";
    case TraceEvent::kTableSwitch:
      return "table-switch";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  TABLEAU_CHECK(capacity_ > 0);
  // The ring is a fixed arena sized once here: Record() appends into the
  // reserved region until the ring fills and overwrites in place after, so
  // the per-event path never touches the allocator (asserted by
  // tests/alloc_steady_state_test.cc).
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(TimeNs time, TraceEvent event, int cpu, VcpuId vcpu,
                         std::int64_t arg) {
  if (!enabled_) {
    return;
  }
  ++total_;
  const TraceRecord record{time, event, static_cast<std::int16_t>(cpu), vcpu, arg};
  if (ring_.size() < capacity_) {
    ring_.push_back(record);  // Within the reserved arena: never reallocates.
  } else {
    ring_[next_] = record;
    wrapped_ = true;
    ++dropped_;
  }
  if (++next_ == capacity_) {
    next_ = 0;
  }
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

TimeNs TraceBuffer::oldest_retained_time() const {
  if (ring_.empty()) {
    return 0;
  }
  return wrapped_ ? ring_[next_].time : ring_.front().time;
}

void TraceBuffer::ForEach(const std::function<void(const TraceRecord&)>& fn) const {
  if (!wrapped_) {
    for (const TraceRecord& record : ring_) {
      fn(record);
    }
    return;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(next_ + i) % capacity_]);
  }
}

std::vector<TraceRecord> TraceBuffer::Query(const Filter& filter) const {
  std::vector<TraceRecord> result;
  result.reserve(ring_.size());
  // Hoist the filter-field decisions out of the per-record loop: each check
  // below is a plain comparison against a pre-resolved local.
  const bool match_event = filter.event.has_value();
  const TraceEvent event = match_event ? *filter.event : TraceEvent::kDispatch;
  const VcpuId vcpu = filter.vcpu;
  const int cpu = filter.cpu;
  const TimeNs from = filter.from;
  const TimeNs to = filter.to;
  ForEach([&](const TraceRecord& record) {
    if (match_event && record.event != event) {
      return;
    }
    if (vcpu != kIdleVcpu && record.vcpu != vcpu) {
      return;
    }
    if (cpu != -1 && record.cpu != cpu) {
      return;
    }
    if (record.time < from || record.time >= to) {
      return;
    }
    result.push_back(record);
  });
  return result;
}

std::vector<TraceBuffer::ServiceInterval> TraceBuffer::ServiceTimeline(
    VcpuId vcpu) const {
  std::vector<ServiceInterval> timeline;
  const TimeNs window_start = oldest_retained_time();
  TimeNs newest = window_start;
  bool running = false;
  bool saw_any = false;
  ServiceInterval current{};
  ForEach([&](const TraceRecord& record) {
    newest = record.time;
    if (record.vcpu != vcpu) {
      return;
    }
    if (record.event == TraceEvent::kDispatch) {
      if (running) {
        // Matching deschedule fell off the ring between two retained
        // dispatches: close the dangling interval at the window edge it
        // straddles rather than folding it into the next one.
        current.end = record.time;
        current.truncated_end = true;
        timeline.push_back(current);
      }
      running = true;
      current = ServiceInterval{};
      current.start = record.time;
      current.cpu = record.cpu;
      current.second_level = record.arg != 0;
    } else if (record.event == TraceEvent::kDeschedule ||
               record.event == TraceEvent::kBlock) {
      if (running) {
        current.end = record.time;
        timeline.push_back(current);
        running = false;
      } else if (!saw_any && wrapped_) {
        // The interval was open when the oldest retained records were
        // overwritten; report the visible tail instead of dropping it.
        ServiceInterval head{};
        head.start = window_start;
        head.end = record.time;
        head.cpu = record.cpu;
        head.second_level = false;
        head.truncated_start = true;
        timeline.push_back(head);
      }
    }
    saw_any = true;
  });
  if (running) {
    // Still on-CPU at the end of the trace: report up to the newest record.
    current.end = newest;
    current.truncated_end = true;
    timeline.push_back(current);
  }
  return timeline;
}

std::string TraceBuffer::Format(const TraceRecord& record) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%14s %-12s cpu%-3d vcpu%-4d arg=%lld",
                FormatDuration(record.time).c_str(), TraceEventName(record.event),
                record.cpu, record.vcpu, static_cast<long long>(record.arg));
  return buf;
}

void TraceBuffer::Clear() {
  // Retained records are discarded, not un-recorded: total_ keeps counting
  // across the clear so dropped() + size() == total_recorded() stays exact.
  dropped_ += ring_.size();
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

}  // namespace tableau
