// Scheduler-overhead primitives and accounting.
//
// The paper measures the runtime cost of three scheduler operations
// (schedule, wakeup, post-deschedule "migrate" work) with tracepoints inside
// Xen (Tables 1 and 2). We reproduce this with a calibrated cost model:
// every scheduler implementation charges the primitive operations its logic
// actually performs (runqueue scans, lock acquisitions, remote cache-line
// transfers, IPIs, timer reprogramming). Charged costs consume simulated CPU
// time — they delay guest execution — so scheduler overhead degrades guest
// throughput exactly as on real hardware, and Tables 1-2 fall out of the
// simulated tracepoint samples.
#ifndef SRC_HYPERVISOR_OVERHEAD_H_
#define SRC_HYPERVISOR_OVERHEAD_H_

#include "src/common/time.h"
#include "src/stats/histogram.h"

namespace tableau {

// Primitive cost constants (calibrated once against Table 1's ordering; see
// DESIGN.md "Overhead model").
struct OverheadCosts {
  // Fixed cost of entering the scheduler (softirq dispatch, accounting).
  TimeNs sched_entry = 1100;
  // Fixed cost of processing a wake-up (event-channel demux, vCPU state).
  TimeNs wakeup_entry = 600;
  // Touching a data structure resident in the local cache.
  TimeNs cache_local = 30;
  // Cache line owned by another core on the same socket.
  TimeNs cache_same_socket = 100;
  // Cache line owned by a core on a remote socket.
  TimeNs cache_remote_socket = 300;
  // Uncontended spinlock acquire + release.
  TimeNs lock_base = 80;
  // Inspecting / reordering one runqueue entry.
  TimeNs runq_entry = 60;
  // Reprogramming the per-CPU timer.
  TimeNs timer_program = 150;
  // Sending an IPI (cost on the sender).
  TimeNs ipi_send = 250;
  // IPI delivery latency (delay until the remote core reacts).
  TimeNs ipi_latency = 1200;
  // Switching vCPU context (register state, FPU, stack).
  TimeNs context_switch = 1000;
};

// Scheduler operations traced for Tables 1-2.
enum class SchedOp { kSchedule = 0, kWakeup = 1, kMigrate = 2 };
inline constexpr int kNumSchedOps = 3;

inline const char* SchedOpName(SchedOp op) {
  switch (op) {
    case SchedOp::kSchedule:
      return "Schedule";
    case SchedOp::kWakeup:
      return "Wakeup";
    case SchedOp::kMigrate:
      return "Migrate";
  }
  return "?";
}

// Per-operation overhead sample collection (the simulated tracepoints).
class OpStats {
 public:
  void Record(SchedOp op, TimeNs cost) { histograms_[static_cast<int>(op)].Record(cost); }
  const Histogram& Of(SchedOp op) const { return histograms_[static_cast<int>(op)]; }
  void Reset() {
    for (Histogram& h : histograms_) {
      h.Reset();
    }
  }

 private:
  Histogram histograms_[kNumSchedOps];
};

// Exact serialization model of a contended lock inside the DES: each
// acquisition waits for the previous holder's critical section to end. With
// frequent scheduler invocations on many cores, queueing delay grows — this
// is what makes RTDS's global lock collapse on the 48-core machine (Table 2).
class LockModel {
 public:
  // Returns the total cost (queueing delay + hold time) of acquiring the
  // lock at `now` and holding it for `hold` ns, and advances the lock state.
  TimeNs Acquire(TimeNs now, TimeNs hold) {
    const TimeNs wait = free_at_ > now ? free_at_ - now : 0;
    free_at_ = now + wait + hold;
    return wait + hold;
  }

  struct Acquisition {
    TimeNs cost = 0;
    bool acquired = false;
  };

  // Trylock-with-backoff pattern: spin for at most `patience`; if the lock
  // would take longer, give up (the caller skips or degrades its critical
  // section, as Xen's contended paths do). The spin time is still paid.
  // This is what differentiates RTDS's op costs under saturation: paths
  // that *must* complete (queue reinsertion on deschedule) wait far longer
  // than paths that can shed work (Table 2).
  Acquisition AcquireWithPatience(TimeNs now, TimeNs hold, TimeNs patience) {
    const TimeNs wait = free_at_ > now ? free_at_ - now : 0;
    if (wait > patience) {
      return Acquisition{patience, false};
    }
    free_at_ = now + wait + hold;
    return Acquisition{wait + hold, true};
  }

  void Reset() { free_at_ = 0; }

 private:
  TimeNs free_at_ = 0;
};

}  // namespace tableau

#endif  // SRC_HYPERVISOR_OVERHEAD_H_
