// Event tracing for the simulated hypervisor — the analog of Xen's xentrace
// infrastructure, which the paper uses to collect its overhead samples
// ("Overhead samples were collected using Xen's built-in tracing framework
// by adding tracepoints around key operations within the scheduler",
// Sec. 7.2).
//
// A bounded ring buffer of typed records; recording is O(1) and can be
// toggled at runtime. Query helpers filter by event type, vCPU, CPU, and
// time window, and compute derived statistics (per-vCPU service timelines,
// dispatch-source breakdowns).
#ifndef SRC_HYPERVISOR_TRACE_H_
#define SRC_HYPERVISOR_TRACE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"

namespace tableau {

enum class TraceEvent : std::uint8_t {
  kDispatch = 0,    // vCPU starts running on a CPU (arg = 1 if second-level).
  kDeschedule = 1,  // vCPU stops running (arg = DeschedReason).
  kBlock = 2,       // vCPU blocked.
  kWakeup = 3,      // vCPU became runnable.
  kIdle = 4,        // CPU went idle.
  kTableSwitch = 5,  // Dispatcher switched tables (Tableau only).
};

const char* TraceEventName(TraceEvent event);

struct TraceRecord {
  TimeNs time = 0;
  TraceEvent event = TraceEvent::kDispatch;
  std::int16_t cpu = -1;
  VcpuId vcpu = kIdleVcpu;
  std::int64_t arg = 0;
};

class TraceBuffer {
 public:
  // `capacity` records; the buffer keeps the most recent ones (ring).
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(TimeNs time, TraceEvent event, int cpu, VcpuId vcpu, std::int64_t arg = 0);

  // Number of records currently retained (<= capacity).
  std::size_t size() const;
  // Total records ever recorded (including overwritten ones).
  std::uint64_t total_recorded() const { return total_; }
  // Records recorded but no longer retained: ring overwrites plus records
  // discarded by Clear(). Exact — total_recorded() == dropped() + size().
  std::uint64_t dropped() const { return dropped_; }

  // Timestamp of the oldest retained record (0 when empty). With a wrapped
  // ring this is the left edge of the observable window; intervals that
  // straddle it come back truncated from ServiceTimeline().
  TimeNs oldest_retained_time() const;

  // Visits retained records in chronological order.
  void ForEach(const std::function<void(const TraceRecord&)>& fn) const;

  // Retained records matching a filter (any field set to its "match all"
  // default is ignored): event, vcpu, cpu, and [from, to) window.
  struct Filter {
    std::optional<TraceEvent> event;
    VcpuId vcpu = kIdleVcpu;  // kIdleVcpu = any.
    int cpu = -1;             // -1 = any.
    TimeNs from = 0;
    TimeNs to = kTimeNever;
  };
  std::vector<TraceRecord> Query(const Filter& filter) const;

  // Contiguous service intervals of `vcpu` reconstructed from
  // dispatch/deschedule pairs within the retained window. Intervals cut off
  // by the ring are reported, not invented: a deschedule whose dispatch was
  // overwritten yields an interval starting at oldest_retained_time() with
  // truncated_start set; a dispatch still open at the end of the buffer
  // yields an interval ending at the newest record's time with truncated_end
  // set.
  struct ServiceInterval {
    TimeNs start;
    TimeNs end;
    int cpu;
    bool second_level;
    bool truncated_start = false;
    bool truncated_end = false;
  };
  std::vector<ServiceInterval> ServiceTimeline(VcpuId vcpu) const;

  // Renders a record as a single human-readable line.
  static std::string Format(const TraceRecord& record);

  void Clear();

 private:
  std::vector<TraceRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  bool enabled_ = true;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace tableau

#endif  // SRC_HYPERVISOR_TRACE_H_
