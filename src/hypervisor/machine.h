// The simulated multicore machine: pCPUs, vCPUs, and the glue between the
// discrete-event engine, the VM scheduler, and guest workloads.
//
// Responsibilities:
//  - drives the per-CPU schedule/dispatch/deschedule cycle,
//  - accounts guest service time, scheduler overhead, and context switches
//    (overhead consumes CPU time, so it costs guest throughput),
//  - collects the tracepoint samples behind Tables 1-2,
//  - exposes the wake/block/burst API that workload models drive.
#ifndef SRC_HYPERVISOR_MACHINE_H_
#define SRC_HYPERVISOR_MACHINE_H_

#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/faults/fault_injector.h"
#include "src/hypervisor/overhead.h"
#include "src/hypervisor/scheduler.h"
#include "src/hypervisor/trace.h"
#include "src/hypervisor/vcpu.h"
#include "src/obs/metrics.h"
#include "src/sim/simulation.h"

namespace tableau::obs {
class Telemetry;
}  // namespace tableau::obs

namespace tableau {

struct MachineConfig {
  int num_cpus = 16;
  int cores_per_socket = 8;
  OverheadCosts costs;
  // External discrete-event engine to schedule on (not owned; must outlive
  // the machine). nullptr — the default — makes the machine own a private
  // engine, which is the classic single-host mode. A fleet::Host passes its
  // ShardedSimulation shard engine here so every host on a shard (or all
  // hosts, in serial mode) multiplex one clock.
  Simulation* engine = nullptr;
  // Publish sim.* engine gauges from SnapshotMetrics(). Leave on for an
  // owned engine; fleet hosts sharing an engine turn it off so per-host
  // snapshots do not depend on the serial-vs-sharded execution mode.
  bool report_engine_stats = true;
};

class Machine {
 public:
  Machine(MachineConfig config, std::unique_ptr<VcpuScheduler> scheduler);

  Simulation& sim() { return *sim_; }
  VcpuScheduler& scheduler() { return *scheduler_; }
  const MachineConfig& config() const { return config_; }
  int num_cpus() const { return config_.num_cpus; }
  int SocketOf(CpuId cpu) const { return cpu / config_.cores_per_socket; }
  TimeNs Now() const { return sim_->Now(); }

  // Creates a vCPU (initially blocked) and registers it with the scheduler.
  Vcpu* AddVcpu(const VcpuParams& params);
  Vcpu* vcpu(VcpuId id) { return vcpus_[static_cast<std::size_t>(id)].get(); }
  const std::vector<std::unique_ptr<Vcpu>>& vcpus() const { return vcpus_; }

  // Starts the scheduler and issues the initial scheduling pass on every
  // CPU. Call after all vCPUs and workloads are set up.
  void Start();

  // Advances the simulation by `duration`, then settles in-flight service
  // accounting at the horizon so statistics cover the full interval. Only
  // meaningful when the machine owns its engine; with an external engine the
  // driver advances the clock and calls the two hooks below itself.
  void RunFor(TimeNs duration);

  // --- External-engine driver hooks ---
  // When MachineConfig::engine is set, the owner advances the shared clock
  // (e.g. via ShardedSimulation::RunUntil) and replicates what RunFor does
  // around the advance: a telemetry cadence sample at every window boundary
  // and a settle of in-flight service accounting at the measurement horizon.
  void SampleTelemetryCadence(TimeNs at) {
    if (telemetry_ != nullptr) {
      SampleCadence(at);
    }
  }
  void SettleAllCpus() {
    for (CpuId cpu = 0; cpu < config_.num_cpus; ++cpu) {
      SettleService(cpu);
    }
  }

  // --- Guest / workload API (call from event context) ---

  // Makes a blocked vCPU runnable (no-op if already runnable).
  void Wake(VcpuId id);

  // Blocks a currently running vCPU; must be called from its
  // on_burst_complete handler (i.e., while it is the current vCPU).
  void Block(Vcpu* vcpu);

  // Sets the vCPU's next compute burst. Only valid while the vCPU is not
  // running, or from within its on_burst_complete handler.
  void SetBurst(Vcpu* vcpu, TimeNs burst) { vcpu->set_remaining_burst(burst); }

  // --- Scheduler API (call from scheduler hooks) ---

  // Charges `cost` ns of scheduler overhead to the operation currently being
  // traced (or to the next one on this CPU if none is active).
  void AddOpCost(TimeNs cost);

  // Charges overhead outside any traced operation (periodic accounting
  // ticks) to `cpu`.
  void ChargeBackground(CpuId cpu, TimeNs cost);

  // Requests a (re)scheduling pass on `cpu`. If `remote`, models an IPI:
  // send cost is charged to the current operation and delivery is delayed by
  // the IPI latency.
  void KickCpu(CpuId cpu, bool remote);

  Vcpu* RunningOn(CpuId cpu) const { return cpu_[static_cast<std::size_t>(cpu)].current; }

  // --- Fault injection ---

  // Attaches a fault injector (not owned; must outlive the machine) and
  // registers its faults.* metrics on this machine's registry. Call before
  // Start(). With no injector — or an injector whose plan is empty — the
  // machine behaves byte-identically to the fault-free engine.
  void SetFaultInjector(faults::FaultInjector* injector);
  faults::FaultInjector* fault_injector() { return fault_injector_; }

  // Settles service/accounting for the vCPU currently on `cpu` up to Now().
  // Schedulers must call this before mutating accounting state (credit or
  // budget refills) of a *running* vCPU, so consumption up to now is charged
  // against the old balance.
  void SettleAccounting(CpuId cpu) { SettleService(cpu); }

  // --- Statistics ---

  OpStats& op_stats() { return op_stats_; }

  // Event trace (xentrace analog). Disabled by default; enable with
  // trace().set_enabled(true) before Start().
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  // Machine-owned metrics registry (machine.*, sim.*, trace.*, plus
  // whatever the attached scheduler registers). Enabled by default; metrics
  // are pure observers and never perturb the simulation.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Attaches the windowed telemetry bundle (not owned; must outlive the
  // machine). Call before Start(): Start() binds it to the machine's
  // CPU/vCPU counts and the scheduler's table_driven() classification. Like
  // metrics and traces, telemetry is a pure observer — hooks never schedule
  // simulation events, so runs are bit-identical with or without it.
  void AttachTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  obs::Telemetry* telemetry() { return telemetry_; }
  // Publishes end-of-run gauges (busy/overhead totals, engine internals,
  // trace accounting) into the registry, then snapshots it.
  obs::MetricsSnapshot SnapshotMetrics();

  TimeNs cpu_busy_ns(CpuId cpu) const { return cpu_[static_cast<std::size_t>(cpu)].busy_ns; }
  TimeNs cpu_overhead_ns(CpuId cpu) const {
    return cpu_[static_cast<std::size_t>(cpu)].overhead_ns;
  }
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t schedule_invocations() const { return schedule_invocations_; }
  // Fraction of dispatches of `vcpu` that came from a second-level decision.
  double SecondLevelFraction(VcpuId vcpu) const;

 private:
  struct CpuState {
    Vcpu* current = nullptr;
    // The armed timer (cpu_event_timer or resched_timer), or kInvalidEvent.
    // At most one of the two is armed per CPU at any time.
    EventId pending = kInvalidEvent;
    // Persistent pooled timers, created once per CPU: the dispatch event
    // (slice end / burst completion), the idle-horizon reschedule, and the
    // kick (IPI delivery). Re-armed instead of allocating per-event closures.
    EventId cpu_event_timer = kInvalidEvent;
    EventId resched_timer = kInvalidEvent;
    EventId kick_timer = kInvalidEvent;
    TimeNs decision_until = kTimeNever;
    bool kick_pending = false;
    TimeNs overhead_debt = 0;
    TimeNs last_accrual = 0;  // Wall-clock accounting point for the current vCPU.
    TimeNs busy_ns = 0;
    TimeNs overhead_ns = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t second_level_dispatches = 0;
  };

  void Reschedule(CpuId cpu, DeschedReason reason);
  void OnCpuEvent(CpuId cpu);
  // Telemetry cadence sample at a window boundary (instantaneous vCPU-state
  // counts); pure read of machine state.
  void SampleCadence(TimeNs at);
  // Timer-fault hook: the fire time the injector lets the timer see (>= at).
  TimeNs PerturbFire(TimeNs at);
  // Credits service from service_start_ to now and advances service_start_.
  void SettleService(CpuId cpu);

  template <typename Fn>
  auto TraceOp(SchedOp op, CpuId cpu, Fn&& fn);

  MachineConfig config_;
  // Owned engine in classic mode; empty when config_.engine supplies one.
  std::unique_ptr<Simulation> owned_sim_;
  Simulation* sim_;
  faults::FaultInjector* fault_injector_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  std::unique_ptr<VcpuScheduler> scheduler_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  std::vector<CpuState> cpu_;

  bool op_active_ = false;
  TimeNs op_cost_ = 0;
  TimeNs carryover_cost_ = 0;

  OpStats op_stats_;
  TraceBuffer trace_;
  obs::MetricsRegistry metrics_;
  // Hot-path metric handles, resolved once in the constructor (before the
  // scheduler attaches and registers its own).
  obs::Counter* m_context_switches_;
  obs::Counter* m_migrations_;
  obs::Counter* m_schedule_invocations_;
  obs::Counter* m_overhead_ns_;
  obs::LatencyHistogram* m_dispatch_latency_;
  obs::LatencyHistogram* m_op_ns_[kNumSchedOps];
  std::uint64_t context_switches_ = 0;
  std::uint64_t schedule_invocations_ = 0;
  std::vector<std::uint64_t> vcpu_dispatches_;
  std::vector<std::uint64_t> vcpu_second_level_;
};

}  // namespace tableau

#endif  // SRC_HYPERVISOR_MACHINE_H_
