#include "src/hypervisor/machine.h"

#include <algorithm>

#include "src/obs/telemetry.h"

namespace tableau {

Machine::Machine(MachineConfig config, std::unique_ptr<VcpuScheduler> scheduler)
    : config_(config),
      owned_sim_(config.engine == nullptr ? std::make_unique<Simulation>()
                                          : nullptr),
      sim_(config.engine != nullptr ? config.engine : owned_sim_.get()),
      scheduler_(std::move(scheduler)) {
  TABLEAU_CHECK(config_.num_cpus > 0 && config_.cores_per_socket > 0);
  cpu_.resize(static_cast<std::size_t>(config_.num_cpus));
  for (CpuId cpu = 0; cpu < config_.num_cpus; ++cpu) {
    CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
    state.cpu_event_timer = sim_->CreateTimer([this, cpu] { OnCpuEvent(cpu); });
    state.resched_timer =
        sim_->CreateTimer([this, cpu] { Reschedule(cpu, DeschedReason::kSliceEnd); });
    state.kick_timer = sim_->CreateTimer([this, cpu] {
      cpu_[static_cast<std::size_t>(cpu)].kick_pending = false;
      Reschedule(cpu, DeschedReason::kPreempted);
    });
  }
  trace_.set_enabled(false);
  m_context_switches_ = metrics_.GetCounter("machine.context_switches");
  m_migrations_ = metrics_.GetCounter("machine.migrations");
  m_schedule_invocations_ = metrics_.GetCounter("machine.schedule_invocations");
  m_overhead_ns_ = metrics_.GetCounter("machine.overhead_ns");
  m_dispatch_latency_ = metrics_.GetHistogram("machine.dispatch_latency_ns");
  m_op_ns_[static_cast<int>(SchedOp::kSchedule)] =
      metrics_.GetHistogram("machine.sched_op.schedule_ns");
  m_op_ns_[static_cast<int>(SchedOp::kWakeup)] =
      metrics_.GetHistogram("machine.sched_op.wakeup_ns");
  m_op_ns_[static_cast<int>(SchedOp::kMigrate)] =
      metrics_.GetHistogram("machine.sched_op.migrate_ns");
  // Attach last: schedulers may register their own metrics from Attach().
  scheduler_->Attach(this);
}

Vcpu* Machine::AddVcpu(const VcpuParams& params) {
  const VcpuId id = static_cast<VcpuId>(vcpus_.size());
  vcpus_.push_back(std::make_unique<Vcpu>(id, params));
  vcpu_dispatches_.push_back(0);
  vcpu_second_level_.push_back(0);
  Vcpu* vcpu = vcpus_.back().get();
  scheduler_->AddVcpu(vcpu);
  return vcpu;
}

void Machine::SetFaultInjector(faults::FaultInjector* injector) {
  fault_injector_ = injector;
  if (fault_injector_ != nullptr) {
    fault_injector_->AttachMetrics(&metrics_);
  }
}

TimeNs Machine::PerturbFire(TimeNs at) {
  if (fault_injector_ == nullptr) {
    return at;
  }
  return fault_injector_->PerturbTimerArm(sim_->Now(), at);
}

void Machine::RunFor(TimeNs duration) {
  const TimeNs target = sim_->Now() + duration;
  if (telemetry_ != nullptr) {
    // Cadence sampling: chunk the advance at telemetry window boundaries.
    // RunUntil executes exactly the events due up to its horizon and then
    // sets the clock to it, so chunking is behavior-neutral — the same
    // events fire at the same times whether telemetry is attached or not.
    TimeNs boundary = telemetry_->NextBoundaryAfter(sim_->Now());
    while (boundary < target) {
      sim_->RunUntil(boundary);
      SampleCadence(boundary);
      boundary += telemetry_->window_ns();
    }
  }
  sim_->RunUntil(target);
  SettleAllCpus();
}

void Machine::SampleCadence(TimeNs at) {
  int waiting = 0;
  int running = 0;
  for (const auto& vcpu : vcpus_) {
    if (vcpu->state_ == VcpuState::kRunnable) {
      ++waiting;
    } else if (vcpu->state_ == VcpuState::kRunning) {
      ++running;
    }
  }
  telemetry_->OnCadenceSample(at, waiting, running);
}

void Machine::Start() {
  if (telemetry_ != nullptr && !telemetry_->bound()) {
    telemetry_->Bind(config_.num_cpus, static_cast<int>(vcpus_.size()),
                     scheduler_->table_driven(), sim_->Now());
  }
  scheduler_->Start();
  for (CpuId cpu = 0; cpu < config_.num_cpus; ++cpu) {
    sim_->Arm(cpu_[static_cast<std::size_t>(cpu)].resched_timer, sim_->Now());
  }
}

template <typename Fn>
auto Machine::TraceOp(SchedOp op, CpuId cpu, Fn&& fn) {
  TABLEAU_CHECK(!op_active_);
  op_active_ = true;
  op_cost_ = carryover_cost_;
  carryover_cost_ = 0;
  auto finish = [&]() {
    op_active_ = false;
    op_stats_.Record(op, op_cost_);
    m_op_ns_[static_cast<int>(op)]->Record(op_cost_);
    CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
    state.overhead_debt += op_cost_;
  };
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    finish();
  } else {
    auto result = fn();
    finish();
    return result;
  }
}

void Machine::AddOpCost(TimeNs cost) {
  TABLEAU_CHECK(cost >= 0);
  if (fault_injector_ != nullptr && cost > 0) {
    cost = fault_injector_->ScaleSchedOpCost(sim_->Now(), cost);
  }
  if (op_active_) {
    op_cost_ += cost;
  } else {
    carryover_cost_ += cost;
  }
}

void Machine::ChargeBackground(CpuId cpu, TimeNs cost) {
  TABLEAU_CHECK(cost >= 0);
  cpu_[static_cast<std::size_t>(cpu)].overhead_debt += cost;
}

void Machine::KickCpu(CpuId cpu, bool remote) {
  CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
  if (state.kick_pending) {
    return;
  }
  state.kick_pending = true;
  if (remote) {
    AddOpCost(config_.costs.ipi_send);
  }
  TimeNs delay = remote ? config_.costs.ipi_latency : 0;
  if (remote && fault_injector_ != nullptr) {
    // Dropped IPIs re-send after a bounded retry interval: delivery becomes
    // later, never lost, so kick_pending still dedups correctly.
    delay = fault_injector_->PerturbIpiDelay(sim_->Now(), delay);
  }
  sim_->Arm(state.kick_timer, sim_->Now() + delay);
}

void Machine::SettleService(CpuId cpu) {
  CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
  Vcpu* vcpu = state.current;
  if (vcpu == nullptr) {
    return;
  }
  const TimeNs now = sim_->Now();
  // Guest-visible service excludes the overhead window before service_start_.
  const TimeNs served = std::max<TimeNs>(0, now - vcpu->service_start_);
  if (served > 0) {
    vcpu->total_service_ += served;
    state.busy_ns += served;
    if (vcpu->remaining_burst_ != kTimeNever) {
      vcpu->remaining_burst_ = std::max<TimeNs>(0, vcpu->remaining_burst_ - served);
    }
    if (telemetry_ != nullptr) {
      telemetry_->OnServiceRange(vcpu->id(), cpu, now - served, now);
    }
  }
  vcpu->service_start_ = std::max(vcpu->service_start_, now);
  // Scheduler accounting (credits, budgets) burns assigned *wall* time, as
  // Xen does: overhead and context-switch time are charged to the vCPU that
  // was scheduled. This also guarantees forward progress when a slice is
  // shorter than the dispatch overhead.
  const TimeNs wall = std::max<TimeNs>(0, now - state.last_accrual);
  state.last_accrual = now;
  if (wall > 0) {
    scheduler_->OnServiceAccrued(vcpu, cpu, wall);
  }
}

void Machine::Wake(VcpuId id) {
  Vcpu* vcpu = vcpus_[static_cast<std::size_t>(id)].get();
  if (vcpu->state_ != VcpuState::kBlocked) {
    return;
  }
  vcpu->state_ = VcpuState::kRunnable;
  vcpu->wake_time_ = sim_->Now();
  vcpu->woke_since_dispatch_ = true;
  trace_.Record(sim_->Now(), TraceEvent::kWakeup, vcpu->last_cpu_, vcpu->id());
  if (telemetry_ != nullptr) {
    telemetry_->OnWakeup(vcpu->id(), sim_->Now());
  }
  // Wakeups are processed on the vCPU's last CPU (where the event-channel
  // interrupt lands); the charged cost lands there as overhead debt.
  const CpuId processing = vcpu->last_cpu_ == kNoCpu ? 0 : vcpu->last_cpu_;
  AddOpCost(config_.costs.wakeup_entry);
  TraceOp(SchedOp::kWakeup, processing, [&] { scheduler_->OnWakeup(vcpu); });
  if (fault_injector_ != nullptr) {
    // Wakeup storm: spurious event-channel notifications. Each burns a full
    // wakeup-processing pass and a spurious local kick, but never re-enters
    // the scheduler's OnWakeup (the vCPU is already runnable; re-enqueueing
    // it would corrupt every scheduler's runqueue invariants).
    const int storm = fault_injector_->NextWakeupStormCount(sim_->Now());
    for (int i = 0; i < storm; ++i) {
      AddOpCost(config_.costs.wakeup_entry);
      TraceOp(SchedOp::kWakeup, processing, [] {});
      KickCpu(processing, /*remote=*/false);
    }
  }
}

void Machine::Block(Vcpu* vcpu) {
  const CpuId cpu = vcpu->running_on_;
  TABLEAU_CHECK_MSG(cpu != kNoCpu, "Block() on a non-running vCPU %d", vcpu->id());
  CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
  TABLEAU_CHECK(state.current == vcpu);
  SettleService(cpu);
  vcpu->state_ = VcpuState::kBlocked;
  vcpu->running_on_ = kNoCpu;
  vcpu->last_cpu_ = cpu;
  vcpu->last_service_end_ = sim_->Now();
  trace_.Record(sim_->Now(), TraceEvent::kBlock, cpu, vcpu->id());
  if (telemetry_ != nullptr) {
    telemetry_->OnBlock(vcpu->id(), sim_->Now());
  }
  state.current = nullptr;
  sim_->Disarm(state.pending);
  state.pending = kInvalidEvent;
  scheduler_->OnBlock(vcpu, cpu);
  Reschedule(cpu, DeschedReason::kBlocked);
}

void Machine::Reschedule(CpuId cpu, DeschedReason reason) {
  CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
  // Disarm, not Cancel: the pending timer is persistent and re-armed below.
  // When Reschedule *is* the pending timer's own callback, this just
  // suppresses its re-arm — the seed engine leaked a tombstone here.
  sim_->Disarm(state.pending);
  state.pending = kInvalidEvent;
  const TimeNs now = sim_->Now();

  Vcpu* prev = state.current;
  if (prev != nullptr) {
    SettleService(cpu);
    prev->state_ = VcpuState::kRunnable;
    prev->running_on_ = kNoCpu;
    prev->last_cpu_ = cpu;
    prev->last_service_end_ = now;
    state.current = nullptr;
    trace_.Record(now, TraceEvent::kDeschedule, cpu, prev->id(),
                  static_cast<std::int64_t>(reason));
    if (telemetry_ != nullptr) {
      telemetry_->OnDeschedule(prev->id(), now);
    }
    TraceOp(SchedOp::kMigrate, cpu, [&] { scheduler_->OnDeschedule(prev, cpu, reason); });
  }

  ++schedule_invocations_;
  m_schedule_invocations_->Increment();
  AddOpCost(config_.costs.sched_entry);
  Decision decision =
      TraceOp(SchedOp::kSchedule, cpu, [&] { return scheduler_->PickNext(cpu); });
  TABLEAU_CHECK_MSG(decision.until > now,
                    "scheduler returned a non-advancing decision (until=%lld, now=%lld)",
                    static_cast<long long>(decision.until), static_cast<long long>(now));
  state.decision_until = decision.until;

  TimeNs start_delay = state.overhead_debt;
  state.overhead_debt = 0;

  if (decision.vcpu == kIdleVcpu) {
    trace_.Record(now, TraceEvent::kIdle, cpu, kIdleVcpu);
    state.overhead_ns += start_delay;
    m_overhead_ns_->Increment(start_delay);
    if (decision.until != kTimeNever) {
      sim_->Arm(state.resched_timer, std::max(now, PerturbFire(decision.until)));
      state.pending = state.resched_timer;
    }
    return;
  }

  Vcpu* next = vcpus_[static_cast<std::size_t>(decision.vcpu)].get();
  TABLEAU_CHECK_MSG(next->runnable(), "scheduler picked blocked vCPU %d", next->id());
  TABLEAU_CHECK_MSG(next->running_on_ == kNoCpu,
                    "scheduler picked vCPU %d already running on cpu %d", next->id(),
                    next->running_on_);
  if (next != prev) {
    TimeNs switch_cost = config_.costs.context_switch;
    if (fault_injector_ != nullptr) {
      switch_cost = fault_injector_->ScaleContextSwitchCost(now, switch_cost);
    }
    start_delay += switch_cost;
    ++context_switches_;
    m_context_switches_->Increment();
    if (next->last_cpu_ != kNoCpu && next->last_cpu_ != cpu) {
      m_migrations_->Increment();
    }
  }
  state.overhead_ns += start_delay;
  m_overhead_ns_->Increment(start_delay);

  next->state_ = VcpuState::kRunning;
  next->running_on_ = cpu;
  next->service_start_ = now + start_delay;
  state.current = next;
  state.last_accrual = now;
  state.dispatches++;
  vcpu_dispatches_[static_cast<std::size_t>(next->id())]++;
  if (decision.second_level) {
    state.second_level_dispatches++;
    vcpu_second_level_[static_cast<std::size_t>(next->id())]++;
  }

  if (next->woke_since_dispatch_) {
    const TimeNs latency = next->service_start_ - next->wake_time_;
    m_dispatch_latency_->Record(latency);
    if (next->instrumented_) {
      next->wakeup_latency_.Record(latency);
    }
  } else if (next->instrumented_ && next->dispatch_count_ > 0) {
    next->service_gaps_.Record(next->service_start_ - next->last_service_end_);
  }
  next->woke_since_dispatch_ = false;
  next->dispatch_count_++;
  trace_.Record(now, TraceEvent::kDispatch, cpu, next->id(),
                decision.second_level ? 1 : 0);
  if (telemetry_ != nullptr) {
    telemetry_->OnDispatch(next->id(), now);
  }

  TimeNs event_time = decision.until;
  if (next->remaining_burst_ != kTimeNever) {
    event_time = std::min(event_time, next->service_start_ + next->remaining_burst_);
  }
  TABLEAU_CHECK(event_time != kTimeNever);
  sim_->Arm(state.cpu_event_timer, std::max(now, PerturbFire(event_time)));
  state.pending = state.cpu_event_timer;
}

void Machine::OnCpuEvent(CpuId cpu) {
  CpuState& state = cpu_[static_cast<std::size_t>(cpu)];
  state.pending = kInvalidEvent;
  Vcpu* vcpu = state.current;
  const TimeNs now = sim_->Now();

  if (vcpu == nullptr || now >= state.decision_until) {
    Reschedule(cpu, DeschedReason::kSliceEnd);
    return;
  }

  // Burst completion: let the guest decide what happens next.
  SettleService(cpu);
  TABLEAU_CHECK(vcpu->remaining_burst_ == 0);
  if (fault_injector_ != nullptr) {
    // Guest budget overrun: the burst refuses to end (interrupts disabled in
    // the guest) and keeps computing for a bounded extra stretch before the
    // completion handler finally runs.
    const TimeNs overrun = fault_injector_->NextBurstOverrun(now);
    if (overrun > 0) {
      vcpu->remaining_burst_ = overrun;
      TimeNs event_time = std::min(state.decision_until, now + overrun);
      sim_->Arm(state.cpu_event_timer, std::max(now, PerturbFire(event_time)));
      state.pending = state.cpu_event_timer;
      return;
    }
  }
  TABLEAU_CHECK_MSG(static_cast<bool>(vcpu->on_burst_complete),
                    "vCPU %d has no on_burst_complete handler", vcpu->id());
  vcpu->on_burst_complete();

  if (state.current == vcpu && vcpu->state_ == VcpuState::kRunning) {
    // Guest continued with a new burst; no scheduler involvement needed.
    TABLEAU_CHECK_MSG(vcpu->remaining_burst_ > 0,
                      "vCPU %d continued running with an empty burst", vcpu->id());
    TimeNs event_time = state.decision_until;
    if (vcpu->remaining_burst_ != kTimeNever) {
      event_time = std::min(event_time, now + vcpu->remaining_burst_);
    }
    TABLEAU_CHECK(event_time != kTimeNever);
    sim_->Arm(state.cpu_event_timer, std::max(now, event_time));
    state.pending = state.cpu_event_timer;
  }
  // Otherwise the guest blocked and Block() already rescheduled this CPU.
}

obs::MetricsSnapshot Machine::SnapshotMetrics() {
  if (telemetry_ != nullptr) {
    telemetry_->PublishMetrics(&metrics_);
  }
  TimeNs busy = 0;
  TimeNs overhead = 0;
  for (const CpuState& state : cpu_) {
    busy += state.busy_ns;
    overhead += state.overhead_ns;
  }
  metrics_.GetGauge("machine.cpu_busy_ns")->Set(static_cast<double>(busy));
  metrics_.GetGauge("machine.cpu_overhead_ns")->Set(static_cast<double>(overhead));
  metrics_.GetGauge("trace.records")->Set(static_cast<double>(trace_.total_recorded()));
  metrics_.GetGauge("trace.dropped")->Set(static_cast<double>(trace_.dropped()));
  if (config_.report_engine_stats) {
    const Simulation::EngineStats& engine = sim_->engine_stats();
    metrics_.GetGauge("sim.events_executed")->Set(static_cast<double>(sim_->events_executed()));
    metrics_.GetGauge("sim.wheel_cascades")->Set(static_cast<double>(engine.wheel_cascades));
    metrics_.GetGauge("sim.wheel_slot_drains")->Set(static_cast<double>(engine.slot_drains));
    metrics_.GetGauge("sim.overflow_reloads")->Set(static_cast<double>(engine.overflow_reloads));
    metrics_.GetGauge("sim.pool_capacity")->Set(static_cast<double>(sim_->pool_capacity()));
    metrics_.GetGauge("sim.live_events")->Set(static_cast<double>(sim_->live_events()));
    metrics_.GetGauge("sim.peak_live_events")->Set(static_cast<double>(engine.peak_live_nodes));
  }
  return metrics_.Snapshot();
}

double Machine::SecondLevelFraction(VcpuId vcpu) const {
  const auto v = static_cast<std::size_t>(vcpu);
  if (vcpu_dispatches_[v] == 0) {
    return 0;
  }
  return static_cast<double>(vcpu_second_level_[v]) /
         static_cast<double>(vcpu_dispatches_[v]);
}

}  // namespace tableau
