// Virtual CPU state, as seen by the hypervisor substrate.
//
// Each VM in the paper's evaluation has exactly one vCPU; we keep a VM id on
// the vCPU for grouping but model scheduling per vCPU, as Xen does.
#ifndef SRC_HYPERVISOR_VCPU_H_
#define SRC_HYPERVISOR_VCPU_H_

#include <functional>
#include <string>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"
#include "src/stats/histogram.h"

namespace tableau {

using CpuId = int;
inline constexpr CpuId kNoCpu = -1;

enum class VcpuState { kBlocked, kRunnable, kRunning };

// Static scheduling parameters of a vCPU, interpreted by the scheduler in
// use: Credit uses weight and cap; RTDS and Tableau use the reservation.
struct VcpuParams {
  int weight = 256;
  // CPU cap as a fraction of one core (0 = uncapped). E.g. 0.25 for the
  // paper's four-VMs-per-core setup.
  double cap = 0.0;
  // Reservation for RTDS/Tableau: minimum utilization and latency goal.
  double utilization = 0.0;
  TimeNs latency_goal = 0;
  std::string name;
};

class Vcpu {
 public:
  Vcpu(VcpuId id, VcpuParams params) : id_(id), params_(std::move(params)) {}

  VcpuId id() const { return id_; }
  const VcpuParams& params() const { return params_; }

  VcpuState state() const { return state_; }
  bool runnable() const { return state_ != VcpuState::kBlocked; }
  CpuId running_on() const { return running_on_; }
  CpuId last_cpu() const { return last_cpu_; }

  // --- Guest-side burst control (driven by workloads) ---

  // Remaining CPU demand before the guest's next voluntary action;
  // kTimeNever means CPU-bound.
  TimeNs remaining_burst() const { return remaining_burst_; }
  void set_remaining_burst(TimeNs burst) { remaining_burst_ = burst; }

  // Invoked by the machine when the current burst completes. The handler
  // must either set a new burst or block the vCPU.
  std::function<void()> on_burst_complete;

  // --- Accounting (maintained by the machine) ---

  TimeNs total_service() const { return total_service_; }
  std::uint64_t dispatch_count() const { return dispatch_count_; }
  // End of the previous service interval and time of the last
  // block->runnable edge (for blackout/latency instrumentation).
  TimeNs last_service_end() const { return last_service_end_; }
  TimeNs wake_time() const { return wake_time_; }

  // Enables per-vCPU latency instrumentation (the "vantage VM").
  void EnableInstrumentation() { instrumented_ = true; }
  bool instrumented() const { return instrumented_; }

  // Gaps between consecutive service intervals while continuously runnable
  // (redis-cli --intrinsic-latency, Fig. 5).
  Histogram& service_gaps() { return service_gaps_; }
  // Delay from wake-up to first subsequent dispatch (ping, Fig. 6).
  Histogram& wakeup_latency() { return wakeup_latency_; }

 private:
  friend class Machine;

  const VcpuId id_;
  const VcpuParams params_;

  VcpuState state_ = VcpuState::kBlocked;
  CpuId running_on_ = kNoCpu;
  CpuId last_cpu_ = kNoCpu;
  TimeNs remaining_burst_ = 0;

  TimeNs service_start_ = 0;       // Valid while running.
  TimeNs last_service_end_ = 0;    // End of the previous service interval.
  TimeNs wake_time_ = 0;           // Time of the last block->runnable edge.
  bool woke_since_dispatch_ = false;

  TimeNs total_service_ = 0;
  std::uint64_t dispatch_count_ = 0;

  bool instrumented_ = false;
  Histogram service_gaps_;
  Histogram wakeup_latency_;
};

}  // namespace tableau

#endif  // SRC_HYPERVISOR_VCPU_H_
