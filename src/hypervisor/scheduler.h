// The VM-scheduler interface of the hypervisor substrate.
//
// Mirrors the shape of Xen's scheduler hooks: a per-CPU pick-next entry
// point, wake/block notifications, and a post-deschedule hook (the "Migrate"
// operation of Tables 1-2, where e.g. RTDS does its lock-protected
// load-balancing and Tableau occasionally sends a hand-off IPI).
//
// Implementations charge their runtime costs through Machine::AddOpCost()
// while inside a hook; the machine turns the charged nanoseconds into
// consumed CPU time and tracepoint samples.
#ifndef SRC_HYPERVISOR_SCHEDULER_H_
#define SRC_HYPERVISOR_SCHEDULER_H_

#include <string>

#include "src/common/time.h"
#include "src/hypervisor/vcpu.h"

namespace tableau {

class Machine;

// What a scheduler tells a CPU to do next.
struct Decision {
  // vCPU to run, or kIdleVcpu to idle.
  VcpuId vcpu = kIdleVcpu;
  // Absolute time of the next mandatory scheduler invocation on this CPU
  // (slice end, budget depletion, table-slot boundary). kTimeNever to wait
  // for a kick.
  TimeNs until = kTimeNever;
  // True if the decision came from a second-level / work-conserving path
  // (used to reproduce the paper's Sec. 7.4 decision-source trace).
  bool second_level = false;
};

// Why a vCPU is being descheduled.
enum class DeschedReason { kSliceEnd, kPreempted, kBlocked };

class VcpuScheduler {
 public:
  virtual ~VcpuScheduler() = default;

  virtual std::string Name() const = 0;

  // Called once, after the machine is constructed.
  virtual void Attach(Machine* machine) { machine_ = machine; }

  // Registers a vCPU (initially blocked).
  virtual void AddVcpu(Vcpu* vcpu) = 0;

  // Picks the next vCPU for `cpu`. The previous vCPU (if any) has already
  // been settled and reported via OnDeschedule.
  virtual Decision PickNext(CpuId cpu) = 0;

  // `vcpu` transitioned blocked -> runnable.
  virtual void OnWakeup(Vcpu* vcpu) = 0;

  // `vcpu` blocked while running on `cpu`.
  virtual void OnBlock(Vcpu* vcpu, CpuId cpu) = 0;

  // `vcpu` was descheduled on `cpu` but remains runnable (slice end or
  // preemption). Post-schedule work is charged here ("Migrate").
  virtual void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) = 0;

  // Service accounting: `vcpu` consumed `amount` ns of CPU on `cpu`.
  virtual void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) {
    (void)vcpu;
    (void)cpu;
    (void)amount;
  }

  // Called by the machine after all vCPUs are added, before simulation
  // starts. Schedulers set up periodic timers (accounting ticks) here.
  virtual void Start() {}

  // True for table-driven schedulers (Tableau): runnable-but-descheduled
  // time is a table *blackout* rather than work-conserving preemption. The
  // telemetry layer uses this to classify attribution (src/obs/attribution.h).
  virtual bool table_driven() const { return false; }

 protected:
  Machine* machine_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_HYPERVISOR_SCHEDULER_H_
