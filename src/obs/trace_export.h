// Converts a TraceBuffer into Chrome/Perfetto `trace_event` JSON — the
// format ui.perfetto.dev and chrome://tracing load directly. One track per
// pCPU (tid = cpu + 1 under pid 1), "X" complete slices for vCPU service
// intervals, "i" instant events for wakeups and table switches.
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <map>
#include <string>

#include "src/hypervisor/trace.h"

namespace tableau::obs {

struct PerfettoExportOptions {
  // process_name metadata for the single emitted process.
  std::string process_name = "tableau-sim";
  // Emit "i" instant events for kWakeup records (dense; off for huge traces).
  bool include_wakeups = true;
  // Emit flow events ("s"/"t"/"f") linking each wakeup instant to the first
  // service slice that follows it: "s" at the wakeup, "t" at the dispatch,
  // "f" (binding point "e") where that slice closes — rendering wakeup→
  // service latency as an arrow in the Perfetto UI. Off by default so
  // existing exports are byte-stable.
  bool include_flows = false;
  // Optional display names per vCPU; unnamed vCPUs render as "vCPU <id>".
  std::map<VcpuId, std::string> vcpu_names;
};

// Renders the retained records as one JSON document (object form, with
// "traceEvents" and "displayTimeUnit"). Slices straddling the ring's edges
// are closed at the edge and tagged {"truncated": true} in args, mirroring
// TraceBuffer::ServiceTimeline semantics. Deterministic: output depends only
// on the retained records and options.
std::string TraceToPerfettoJson(const TraceBuffer& trace, int num_cpus,
                                const PerfettoExportOptions& options = {});

// Minimal schema check for a document produced above (also accepts any
// structurally valid trace_event JSON): top-level object with a
// "traceEvents" array whose entries carry a string "ph" plus the fields that
// phase requires ("X" needs name/ts/dur, "i" needs name/ts, "M" needs name,
// flow phases "s"/"t"/"f" need an "id").
// On failure returns false and, when `error` is non-null, a one-line reason.
bool ValidatePerfettoJson(const std::string& json, std::string* error);

}  // namespace tableau::obs

#endif  // SRC_OBS_TRACE_EXPORT_H_
