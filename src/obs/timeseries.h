// Windowed time-series recording: fixed-capacity, zero-allocation ring
// windows sampled on the deterministic simulation clock.
//
// A TimeSeriesRecorder owns a set of named series. Each series is a ring of
// `window_capacity` aggregation windows of `window_ns` simulated time each;
// window w covers [w * window_ns, (w + 1) * window_ns). Recording into a
// window past the newest opens the intervening windows (bounded by the ring
// capacity) and evicts the oldest; evictions are counted, never silently
// lost. The hot path (Observe / AddRange) performs no heap allocation — the
// rings are sized once, at DefineSeries time — and never touches the
// simulation engine, so recording is a pure observer: traces are
// bit-identical with a recorder attached or not (see DESIGN.md "Telemetry &
// SLO tracking").
//
// Snapshots are plain data. TimeSeriesSnapshot::Merge aligns windows by
// start time and adds counts/sums (min/max combine accordingly), which is
// commutative and associative — merging per-shard or per-bench-thread
// snapshots in any order yields bit-identical results.
#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace tableau::obs {

// One aggregation window of one series.
struct TimeSeriesWindow {
  TimeNs start = 0;  // Inclusive window start, a multiple of window_ns.
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // Meaningful only when count > 0.
  std::int64_t max = 0;

  bool operator==(const TimeSeriesWindow&) const = default;
};

// Snapshot of one series: retained windows ascending by start, plus loss
// accounting (windows evicted from the ring, samples older than the ring).
struct TimeSeriesData {
  std::uint64_t dropped_windows = 0;
  std::uint64_t late_samples = 0;
  std::vector<TimeSeriesWindow> windows;

  bool operator==(const TimeSeriesData&) const = default;
};

struct TimeSeriesSnapshot {
  // Versioned like MetricsSnapshot (see DESIGN.md "Versioned JSON schema").
  static const char* SchemaVersion();  // "1.0"

  TimeNs window_ns = 0;
  std::map<std::string, TimeSeriesData> series;

  bool empty() const { return series.empty(); }

  // Order-independent aggregation: series union by name; windows with equal
  // start add count/sum and combine min/max; loss counters add. Both
  // snapshots must agree on window_ns (empty snapshots adopt the other's).
  void Merge(const TimeSeriesSnapshot& other);

  // {"schema_version": "1.0", "window_ns": N, "series": {name:
  // {"dropped_windows": N, "late_samples": N, "windows":
  // [[start, count, sum, min, max], ...]}}}.
  std::string ToJson(int indent = 0) const;
  // One row per (series, window): series,window_start_ns,count,sum,min,max,
  // mean. Series names are CSV-escaped (see CsvEscapeField).
  std::string ToCsv() const;

  bool operator==(const TimeSeriesSnapshot&) const = default;
};

class TimeSeriesRecorder {
 public:
  struct Options {
    TimeNs window_ns = 10 * kMillisecond;
    int window_capacity = 256;
  };

  using SeriesId = int;
  static constexpr SeriesId kNoSeries = -1;

  explicit TimeSeriesRecorder(Options options);

  TimeNs window_ns() const { return options_.window_ns; }
  int window_capacity() const { return options_.window_capacity; }
  int num_series() const { return static_cast<int>(series_.size()); }

  // Recording is on by default; disabling turns the hot paths into cheap
  // no-ops (retained windows stay readable).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Registers a series and sizes its ring. Setup-time only (allocates);
  // returns a dense id for the hot-path calls below.
  SeriesId DefineSeries(std::string name);

  // --- Hot path: zero allocation ---

  // Adds one sample to the window containing `at`.
  void Observe(SeriesId series, TimeNs at, std::int64_t value);

  // Spreads the duration [from, to) across the windows it overlaps: each
  // touched window gains one sample whose value is the overlap in ns. The
  // canonical way to window service/wait intervals exactly, independent of
  // where the interval's endpoints fall.
  void AddRange(SeriesId series, TimeNs from, TimeNs to);

  // Explicit no-data lookup: the retained window containing `at`, or
  // nullptr when that window was never opened, was evicted from the ring,
  // or holds zero samples. Consumers making control decisions (the adaptive
  // reservation controller) must distinguish "no samples" from "samples
  // summing to 0" — a briefly-idle VM reads as nullptr here, never as a
  // window claiming zero demand.
  const TimeSeriesWindow* DataAt(SeriesId series, TimeNs at) const;

  TimeSeriesSnapshot Snapshot() const;

 private:
  struct Series {
    std::string name;
    std::vector<TimeSeriesWindow> ring;  // Indexed by window_index % capacity.
    std::int64_t oldest = 0;   // Oldest retained window index.
    std::int64_t newest = -1;  // Newest opened window index; -1 = empty.
    std::uint64_t dropped_windows = 0;
    std::uint64_t late_samples = 0;
  };

  // Opens (and if needed evicts up to) window index `w`; returns its slot,
  // or nullptr for a sample older than the retained range.
  TimeSeriesWindow* SlotFor(Series& series, std::int64_t w);

  Options options_;
  bool enabled_ = true;
  std::vector<Series> series_;
};

}  // namespace tableau::obs

#endif  // SRC_OBS_TIMESERIES_H_
