#include "src/obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace tableau::obs {

const char* TimeSeriesSnapshot::SchemaVersion() { return "1.0"; }

TimeSeriesRecorder::TimeSeriesRecorder(Options options) : options_(options) {
  TABLEAU_CHECK(options_.window_ns > 0);
  TABLEAU_CHECK(options_.window_capacity > 0);
}

TimeSeriesRecorder::SeriesId TimeSeriesRecorder::DefineSeries(std::string name) {
  Series series;
  series.name = std::move(name);
  series.ring.resize(static_cast<std::size_t>(options_.window_capacity));
  series_.push_back(std::move(series));
  return static_cast<SeriesId>(series_.size()) - 1;
}

TimeSeriesWindow* TimeSeriesRecorder::SlotFor(Series& series, std::int64_t w) {
  const auto capacity = static_cast<std::int64_t>(series.ring.size());
  const auto slot = [&](std::int64_t index) -> TimeSeriesWindow& {
    return series.ring[static_cast<std::size_t>(index % capacity)];
  };
  if (series.newest < 0) {
    series.oldest = w;
    series.newest = w;
    slot(w) = TimeSeriesWindow{w * options_.window_ns, 0, 0, 0, 0};
    return &slot(w);
  }
  if (w > series.newest) {
    // Open the intervening windows (bounded by the ring capacity: anything
    // older than w - capacity + 1 is evicted wholesale, never touched).
    const std::int64_t new_oldest = std::max(series.oldest, w - capacity + 1);
    if (new_oldest > series.oldest) {
      // Windows [oldest, min(newest, new_oldest - 1)] had been opened and
      // are now lost to the ring.
      const std::int64_t evicted =
          std::min(series.newest, new_oldest - 1) - series.oldest + 1;
      series.dropped_windows += static_cast<std::uint64_t>(evicted);
      series.oldest = new_oldest;
    }
    for (std::int64_t k = std::max(series.newest + 1, new_oldest); k <= w; ++k) {
      slot(k) = TimeSeriesWindow{k * options_.window_ns, 0, 0, 0, 0};
    }
    series.newest = w;
    return &slot(w);
  }
  if (w < series.oldest) {
    ++series.late_samples;
    return nullptr;
  }
  return &slot(w);
}

void TimeSeriesRecorder::Observe(SeriesId series, TimeNs at, std::int64_t value) {
  if (!enabled_ || series == kNoSeries) {
    return;
  }
  Series& s = series_[static_cast<std::size_t>(series)];
  TimeSeriesWindow* window = SlotFor(s, at / options_.window_ns);
  if (window == nullptr) {
    return;
  }
  window->min = window->count == 0 ? value : std::min(window->min, value);
  window->max = window->count == 0 ? value : std::max(window->max, value);
  window->count += 1;
  window->sum += value;
}

void TimeSeriesRecorder::AddRange(SeriesId series, TimeNs from, TimeNs to) {
  if (!enabled_ || series == kNoSeries || to <= from) {
    return;
  }
  Series& s = series_[static_cast<std::size_t>(series)];
  const TimeNs W = options_.window_ns;
  const std::int64_t last = (to - 1) / W;
  // Clamp the walk to the ring capacity: older windows would be evicted by
  // the time the walk reaches `last` anyway, so account them as late.
  std::int64_t first = from / W;
  const auto capacity = static_cast<std::int64_t>(s.ring.size());
  if (last - first + 1 > capacity) {
    s.late_samples += static_cast<std::uint64_t>(last - first + 1 - capacity);
    first = last - capacity + 1;
  }
  for (std::int64_t w = first; w <= last; ++w) {
    TimeSeriesWindow* window = SlotFor(s, w);
    if (window == nullptr) {
      continue;
    }
    const TimeNs overlap =
        std::min(to, (w + 1) * W) - std::max(from, w * W);
    window->min = window->count == 0 ? overlap : std::min(window->min, overlap);
    window->max = window->count == 0 ? overlap : std::max(window->max, overlap);
    window->count += 1;
    window->sum += overlap;
  }
}

const TimeSeriesWindow* TimeSeriesRecorder::DataAt(SeriesId series,
                                                   TimeNs at) const {
  if (series == kNoSeries || at < 0) {
    return nullptr;
  }
  const Series& s = series_[static_cast<std::size_t>(series)];
  const std::int64_t w = at / options_.window_ns;
  if (s.newest < 0 || w < s.oldest || w > s.newest) {
    return nullptr;  // Never opened, or already evicted from the ring.
  }
  const TimeSeriesWindow& window =
      s.ring[static_cast<std::size_t>(w % static_cast<std::int64_t>(s.ring.size()))];
  return window.count == 0 ? nullptr : &window;
}

TimeSeriesSnapshot TimeSeriesRecorder::Snapshot() const {
  TimeSeriesSnapshot snapshot;
  snapshot.window_ns = options_.window_ns;
  for (const Series& series : series_) {
    TimeSeriesData data;
    data.dropped_windows = series.dropped_windows;
    data.late_samples = series.late_samples;
    if (series.newest >= 0) {
      const auto capacity = static_cast<std::int64_t>(series.ring.size());
      data.windows.reserve(
          static_cast<std::size_t>(series.newest - series.oldest + 1));
      for (std::int64_t w = series.oldest; w <= series.newest; ++w) {
        data.windows.push_back(
            series.ring[static_cast<std::size_t>(w % capacity)]);
      }
    }
    snapshot.series.emplace(series.name, std::move(data));
  }
  return snapshot;
}

namespace {

// Returns the existing entry for `name`, or nullptr after inserting a fresh
// copy of `incoming` (nothing left to combine).
TimeSeriesData* FindOrInsert(std::map<std::string, TimeSeriesData>& series,
                             const std::string& name,
                             const TimeSeriesData& incoming) {
  const auto it = series.find(name);
  if (it == series.end()) {
    series.emplace(name, incoming);
    return nullptr;
  }
  return &it->second;
}

}  // namespace

void TimeSeriesSnapshot::Merge(const TimeSeriesSnapshot& other) {
  if (window_ns == 0) {
    window_ns = other.window_ns;
  }
  if (other.series.empty()) {
    return;
  }
  TABLEAU_CHECK_MSG(other.window_ns == window_ns,
                    "merging time series with mismatched cadence (%lld vs %lld)",
                    static_cast<long long>(other.window_ns),
                    static_cast<long long>(window_ns));
  for (const auto& [name, incoming] : other.series) {
    TimeSeriesData* const it = FindOrInsert(series, name, incoming);
    if (it == nullptr) {
      continue;  // Fresh copy inserted.
    }
    TimeSeriesData& mine = *it;
    mine.dropped_windows += incoming.dropped_windows;
    mine.late_samples += incoming.late_samples;
    // Two-pointer merge by window start: both lists are ascending, the
    // result is ascending and independent of merge order (+ and min/max
    // commute and associate).
    std::vector<TimeSeriesWindow> merged;
    merged.reserve(mine.windows.size() + incoming.windows.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < mine.windows.size() || b < incoming.windows.size()) {
      if (b >= incoming.windows.size() ||
          (a < mine.windows.size() &&
           mine.windows[a].start < incoming.windows[b].start)) {
        merged.push_back(mine.windows[a++]);
      } else if (a >= mine.windows.size() ||
                 incoming.windows[b].start < mine.windows[a].start) {
        merged.push_back(incoming.windows[b++]);
      } else {
        TimeSeriesWindow window = mine.windows[a++];
        const TimeSeriesWindow& in = incoming.windows[b++];
        if (in.count > 0) {
          window.min = window.count == 0 ? in.min : std::min(window.min, in.min);
          window.max = window.count == 0 ? in.max : std::max(window.max, in.max);
        }
        window.count += in.count;
        window.sum += in.sum;
        merged.push_back(window);
      }
    }
    mine.windows = std::move(merged);
  }
}

namespace {

std::string Pad(int indent) {
  return std::string(static_cast<std::size_t>(indent), ' ');
}

}  // namespace

std::string TimeSeriesSnapshot::ToJson(int indent) const {
  const std::string p0 = Pad(indent);
  const std::string p1 = Pad(indent + 2);
  const std::string p2 = Pad(indent + 4);
  std::string out = "{\n";
  out += p1 + "\"schema_version\": \"" + SchemaVersion() + "\",\n";
  out += p1 + "\"window_ns\": " + std::to_string(window_ns) + ",\n";
  out += p1 + "\"series\": {";
  bool first = true;
  for (const auto& [name, data] : series) {
    out += first ? "\n" : ",\n";
    first = false;
    out += p2 + "\"" + JsonEscape(name) + "\": {\"dropped_windows\": " +
           std::to_string(data.dropped_windows) + ", \"late_samples\": " +
           std::to_string(data.late_samples) + ", \"windows\": [";
    bool first_window = true;
    for (const TimeSeriesWindow& window : data.windows) {
      if (!first_window) {
        out += ", ";
      }
      first_window = false;
      out += "[" + std::to_string(window.start) + ", " +
             std::to_string(window.count) + ", " + std::to_string(window.sum) +
             ", " + std::to_string(window.count == 0 ? 0 : window.min) + ", " +
             std::to_string(window.count == 0 ? 0 : window.max) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n" + p1 + "}\n";
  out += p0 + "}";
  return out;
}

std::string TimeSeriesSnapshot::ToCsv() const {
  std::string out = "series,window_start_ns,count,sum,min,max,mean\n";
  char mean[64];
  for (const auto& [name, data] : series) {
    const std::string escaped = CsvEscapeField(name);
    for (const TimeSeriesWindow& window : data.windows) {
      std::snprintf(mean, sizeof(mean), "%.6g",
                    window.count == 0
                        ? 0.0
                        : static_cast<double>(window.sum) /
                              static_cast<double>(window.count));
      out += escaped + "," + std::to_string(window.start) + "," +
             std::to_string(window.count) + "," + std::to_string(window.sum) +
             "," + std::to_string(window.count == 0 ? 0 : window.min) + "," +
             std::to_string(window.count == 0 ? 0 : window.max) + "," + mean +
             "\n";
    }
  }
  return out;
}

}  // namespace tableau::obs
