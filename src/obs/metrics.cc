#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/json.h"

namespace tableau::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::int64_t LatencyHistogram::BucketUpperEdge(int index) {
  TABLEAU_CHECK(index >= 0 && index < kBuckets);
  if (index == 0) {
    return 0;
  }
  if (index == 63) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << index) - 1;
}

std::int64_t HistogramValue::Percentile(double q) const {
  if (count == 0) {
    return 0;
  }
  if (q >= 1.0) {
    return max;
  }
  if (q < 0) {
    q = 0;
  }
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (const auto& [index, bucket_count] : buckets) {
    if (seen + bucket_count >= rank) {
      // Interpolate by rank within the winning bucket: the rank-th sample of
      // `bucket_count` spread uniformly over [lower, upper]. fraction is in
      // (0, 1], so a full-bucket rank lands on the upper edge (the old
      // convention) and the result is never below the bucket's lower edge.
      // Clamping to the exact [min, max] keeps degenerate cases (single
      // sample, extreme quantiles) exact; the residual error is bounded by
      // the winning bucket's width (upper - lower < true value for log2
      // buckets).
      const std::int64_t lower =
          index == 0 ? 0 : std::int64_t{1} << (index - 1);
      const std::int64_t upper = LatencyHistogram::BucketUpperEdge(index);
      const double fraction = static_cast<double>(rank - seen) /
                              static_cast<double>(bucket_count);
      const auto value = static_cast<std::int64_t>(
          static_cast<double>(lower) +
          (static_cast<double>(upper) - static_cast<double>(lower)) * fraction);
      return std::clamp(value, min, max);
    }
    seen += bucket_count;
  }
  return max;
}

std::string CsvEscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

std::vector<std::string> SplitCsvRow(const std::string& row) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const char c = row[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < row.size() && row[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(const std::string& name,
                                                      MetricKind kind) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    TABLEAU_CHECK_MSG(it->second.kind == kind,
                      "metric '%s' already registered as a %s", name.c_str(),
                      MetricKindName(it->second.kind));
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter.reset(new Counter(&enabled_));
      break;
    case MetricKind::kGauge:
      entry.gauge.reset(new Gauge(&enabled_));
      break;
    case MetricKind::kHistogram:
      entry.hist.reset(new LatencyHistogram(&enabled_));
      break;
  }
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, MetricKind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, MetricKind::kGauge).gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, MetricKind::kHistogram).hist.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {
    MetricValue value;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        value.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        value.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram& hist = *entry.hist;
        value.hist.count = hist.Count();
        value.hist.sum = hist.Sum();
        value.hist.min = hist.Min();
        value.hist.max = hist.Max();
        // Two passes: count occupied buckets, reserve exactly, then fill —
        // one allocation per histogram instead of push_back growth.
        int occupied = 0;
        std::uint64_t counts[LatencyHistogram::kBuckets];
        for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
          counts[i] = hist.buckets_[i].load(std::memory_order_relaxed);
          occupied += counts[i] > 0 ? 1 : 0;
        }
        value.hist.buckets.reserve(static_cast<std::size_t>(occupied));
        for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
          if (counts[i] > 0) {
            value.hist.buckets.emplace_back(i, counts[i]);
          }
        }
        break;
      }
    }
    snapshot.values.emplace(name, std::move(value));
  }
  return snapshot;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& since) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.values) {
    const auto it = since.values.find(name);
    if (it == since.values.end() || it->second.kind != value.kind) {
      continue;
    }
    const MetricValue& old = it->second;
    switch (value.kind) {
      case MetricKind::kCounter:
        value.counter -= old.counter;
        break;
      case MetricKind::kGauge:
        break;  // Gauges keep the newer reading.
      case MetricKind::kHistogram: {
        value.hist.count -= std::min(value.hist.count, old.hist.count);
        value.hist.sum -= old.hist.sum;
        // Both bucket lists are ascending by index: subtract with a linear
        // two-pointer merge (no per-bucket map nodes), dropping emptied
        // buckets in place.
        std::vector<std::pair<int, std::uint64_t>> merged;
        merged.reserve(value.hist.buckets.size());
        std::size_t oi = 0;
        for (const auto& [index, n] : value.hist.buckets) {
          while (oi < old.hist.buckets.size() &&
                 old.hist.buckets[oi].first < index) {
            ++oi;
          }
          std::uint64_t remaining = n;
          if (oi < old.hist.buckets.size() &&
              old.hist.buckets[oi].first == index) {
            remaining -= std::min(remaining, old.hist.buckets[oi].second);
          }
          if (remaining > 0) {
            merged.emplace_back(index, remaining);
          }
        }
        value.hist.buckets = std::move(merged);
        // min/max are not invertible over an interval; keep the newer ones.
        break;
      }
    }
  }
  return delta;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, incoming] : other.values) {
    const auto it = values.find(name);
    if (it == values.end()) {
      values.emplace(name, incoming);
      continue;
    }
    MetricValue& mine = it->second;
    if (mine.kind != incoming.kind) {
      continue;  // Name collision across kinds: keep the first registration.
    }
    switch (mine.kind) {
      case MetricKind::kCounter:
        mine.counter += incoming.counter;
        break;
      case MetricKind::kGauge:
        mine.gauge = std::max(mine.gauge, incoming.gauge);
        break;
      case MetricKind::kHistogram: {
        HistogramValue& h = mine.hist;
        const HistogramValue& o = incoming.hist;
        if (o.count > 0) {
          h.min = h.count == 0 ? o.min : std::min(h.min, o.min);
          h.max = std::max(h.max, o.max);
        }
        h.count += o.count;
        h.sum += o.sum;
        // Sorted-vector union (both ascending by index) — one reserve, no
        // per-bucket map nodes.
        std::vector<std::pair<int, std::uint64_t>> merged;
        merged.reserve(h.buckets.size() + o.buckets.size());
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < h.buckets.size() || b < o.buckets.size()) {
          if (b >= o.buckets.size() ||
              (a < h.buckets.size() && h.buckets[a].first < o.buckets[b].first)) {
            merged.push_back(h.buckets[a++]);
          } else if (a >= h.buckets.size() ||
                     o.buckets[b].first < h.buckets[a].first) {
            merged.push_back(o.buckets[b++]);
          } else {
            merged.emplace_back(h.buckets[a].first,
                                h.buckets[a].second + o.buckets[b].second);
            ++a;
            ++b;
          }
        }
        h.buckets = std::move(merged);
        break;
      }
    }
  }
}

namespace {

std::string Pad(int indent) { return std::string(static_cast<std::size_t>(indent), ' '); }

// %.17g round-trips doubles exactly; trims to a clean integer form when one.
std::string FormatDouble(double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

}  // namespace

const char* MetricsSnapshot::SchemaVersion() {
  static_assert(MetricsSnapshot::kSchemaVersionMajor == 1 &&
                MetricsSnapshot::kSchemaVersionMinor == 0);
  return "1.0";
}

std::string MetricsSnapshot::ToJson(int indent) const {
  const std::string p0 = Pad(indent);
  const std::string p1 = Pad(indent + 2);
  const std::string p2 = Pad(indent + 4);
  std::string out = "{\n";
  out += p1 + "\"schema_version\": \"" + SchemaVersion() + "\",\n";

  const auto EmitSection = [&](MetricKind kind, const char* title,
                               const auto& emit_value, bool last) {
    out += p1 + "\"" + title + "\": {";
    bool first = true;
    for (const auto& [name, value] : values) {
      if (value.kind != kind) {
        continue;
      }
      out += first ? "\n" : ",\n";
      first = false;
      out += p2 + "\"" + JsonEscape(name) + "\": " + emit_value(value);
    }
    out += first ? "}" : "\n" + p1 + "}";
    out += last ? "\n" : ",\n";
  };

  EmitSection(
      MetricKind::kCounter, "counters",
      [](const MetricValue& v) { return std::to_string(v.counter); }, false);
  EmitSection(
      MetricKind::kGauge, "gauges",
      [](const MetricValue& v) { return FormatDouble(v.gauge); }, false);
  EmitSection(
      MetricKind::kHistogram, "histograms",
      [](const MetricValue& v) {
        std::string h = "{\"count\": " + std::to_string(v.hist.count) +
                        ", \"sum\": " + std::to_string(v.hist.sum) +
                        ", \"min\": " + std::to_string(v.hist.min) +
                        ", \"max\": " + std::to_string(v.hist.max) +
                        ", \"buckets\": [";
        bool first = true;
        for (const auto& [index, n] : v.hist.buckets) {
          if (!first) {
            h += ", ";
          }
          first = false;
          h += "[" + std::to_string(LatencyHistogram::BucketUpperEdge(index)) +
               ", " + std::to_string(n) + "]";
        }
        h += "]}";
        return h;
      },
      true);

  out += p0 + "}";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "kind,name,count,sum,min,max,mean,p50,p99,value\n";
  for (const auto& [name, value] : values) {
    out += MetricKindName(value.kind);
    out += ",";
    out += CsvEscapeField(name);
    switch (value.kind) {
      case MetricKind::kCounter:
        out += ",,,,,,,," + std::to_string(value.counter);
        break;
      case MetricKind::kGauge:
        out += ",,,,,,,," + FormatDouble(value.gauge);
        break;
      case MetricKind::kHistogram:
        out += "," + std::to_string(value.hist.count) + "," +
               std::to_string(value.hist.sum) + "," +
               std::to_string(value.hist.min) + "," +
               std::to_string(value.hist.max) + "," +
               FormatDouble(value.hist.Mean()) + "," +
               std::to_string(value.hist.Percentile(0.5)) + "," +
               std::to_string(value.hist.Percentile(0.99)) + ",";
        break;
    }
    out += "\n";
  }
  return out;
}

std::optional<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  const std::optional<JsonValue> doc = ParseJson(json);
  if (!doc.has_value() || !doc->is_object()) {
    return std::nullopt;
  }
  // Version gate: an absent schema_version is the pre-versioned format and
  // parses as major 1; a present one must be a "major.minor" string whose
  // major we know. Unknown minors are fine (additive changes only).
  const JsonValue* version = doc->Find("schema_version");
  if (version != nullptr) {
    if (!version->is_string()) {
      return std::nullopt;
    }
    const std::string& text = version->str();
    const std::size_t dot = text.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= text.size()) {
      return std::nullopt;
    }
    int major = 0;
    for (std::size_t i = 0; i < dot; ++i) {
      if (text[i] < '0' || text[i] > '9') {
        return std::nullopt;
      }
      major = major * 10 + (text[i] - '0');
    }
    if (major != kSchemaVersionMajor) {
      return std::nullopt;
    }
  }
  MetricsSnapshot snapshot;

  const JsonValue* counters = doc->Find("counters");
  if (counters != nullptr) {
    if (!counters->is_object()) {
      return std::nullopt;
    }
    for (const auto& [name, v] : counters->object()) {
      if (!v.is_number()) {
        return std::nullopt;
      }
      MetricValue value;
      value.kind = MetricKind::kCounter;
      value.counter = static_cast<std::int64_t>(v.number());
      snapshot.values.emplace(name, value);
    }
  }

  const JsonValue* gauges = doc->Find("gauges");
  if (gauges != nullptr) {
    if (!gauges->is_object()) {
      return std::nullopt;
    }
    for (const auto& [name, v] : gauges->object()) {
      if (!v.is_number()) {
        return std::nullopt;
      }
      MetricValue value;
      value.kind = MetricKind::kGauge;
      value.gauge = v.number();
      snapshot.values.emplace(name, value);
    }
  }

  const JsonValue* histograms = doc->Find("histograms");
  if (histograms != nullptr) {
    if (!histograms->is_object()) {
      return std::nullopt;
    }
    for (const auto& [name, v] : histograms->object()) {
      const JsonValue* count = v.Find("count");
      const JsonValue* sum = v.Find("sum");
      const JsonValue* min = v.Find("min");
      const JsonValue* max = v.Find("max");
      const JsonValue* buckets = v.Find("buckets");
      if (count == nullptr || !count->is_number() || sum == nullptr ||
          !sum->is_number() || min == nullptr || !min->is_number() ||
          max == nullptr || !max->is_number() || buckets == nullptr ||
          !buckets->is_array()) {
        return std::nullopt;
      }
      MetricValue value;
      value.kind = MetricKind::kHistogram;
      value.hist.count = static_cast<std::uint64_t>(count->number());
      value.hist.sum = static_cast<std::int64_t>(sum->number());
      value.hist.min = static_cast<std::int64_t>(min->number());
      value.hist.max = static_cast<std::int64_t>(max->number());
      for (const JsonValue& pair : buckets->array()) {
        if (!pair.is_array() || pair.array().size() != 2 ||
            !pair.array()[0].is_number() || !pair.array()[1].is_number()) {
          return std::nullopt;
        }
        const auto edge = static_cast<std::int64_t>(pair.array()[0].number());
        if (edge < 0) {
          return std::nullopt;
        }
        // Recover the bucket index from the upper edge. Edges small enough to
        // be exact in a double must be of the 2^i - 1 form; larger ones lose
        // low bits in transit, so only the bit width can be checked.
        if (edge < (std::int64_t{1} << 53) &&
            (static_cast<std::uint64_t>(edge) &
             (static_cast<std::uint64_t>(edge) + 1)) != 0) {
          return std::nullopt;
        }
        const int index =
            edge == 0 ? 0
                      : std::bit_width(static_cast<std::uint64_t>(edge));
        if (index >= LatencyHistogram::kBuckets) {
          return std::nullopt;
        }
        value.hist.buckets.emplace_back(
            index, static_cast<std::uint64_t>(pair.array()[1].number()));
      }
      snapshot.values.emplace(name, std::move(value));
    }
  }

  return snapshot;
}

}  // namespace tableau::obs
