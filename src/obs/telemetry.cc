#include "src/obs/telemetry.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/json.h"

namespace tableau::obs {

Telemetry::Telemetry(Config config) : config_(config) {
  TABLEAU_CHECK(config_.window_ns > 0);
}

void Telemetry::SetVcpuName(int vcpu, std::string name) {
  TABLEAU_CHECK(!bound_);
  if (static_cast<std::size_t>(vcpu) >= vcpu_names_.size()) {
    vcpu_names_.resize(static_cast<std::size_t>(vcpu) + 1);
  }
  vcpu_names_[static_cast<std::size_t>(vcpu)] = std::move(name);
}

void Telemetry::SetVmOf(std::vector<int> vm_of) {
  TABLEAU_CHECK(!bound_);
  vm_of_ = std::move(vm_of);
}

void Telemetry::Bind(int num_cpus, int num_vcpus, bool table_driven,
                     TimeNs start) {
  TABLEAU_CHECK(!bound_);
  bound_ = true;

  if (vm_of_.empty()) {
    vm_of_.resize(static_cast<std::size_t>(num_vcpus));
    for (int i = 0; i < num_vcpus; ++i) {
      vm_of_[static_cast<std::size_t>(i)] = i;
    }
  }
  TABLEAU_CHECK(static_cast<int>(vm_of_.size()) == num_vcpus);
  num_vms_ = 0;
  for (const int vm : vm_of_) {
    num_vms_ = std::max(num_vms_, vm + 1);
  }

  vcpu_names_.resize(static_cast<std::size_t>(num_vcpus));
  for (int i = 0; i < num_vcpus; ++i) {
    auto& name = vcpu_names_[static_cast<std::size_t>(i)];
    if (name.empty()) {
      name = "vcpu" + std::to_string(i);
    }
  }

  recorder_ = std::make_unique<TimeSeriesRecorder>(TimeSeriesRecorder::Options{
      config_.window_ns, config_.window_capacity});
  attributor_.Bind(num_vcpus, table_driven, start);
  SloConfig slo = config_.slo;
  slo.window_ns = config_.window_ns;  // SLO windows share the cadence.
  slo_.Bind(num_vms_, slo);

  const std::string& prefix = config_.series_prefix;
  const int vcpu_series_limit =
      config_.max_vcpu_series < 0 ? num_vcpus
                                  : std::min(config_.max_vcpu_series, num_vcpus);
  vcpu_series_.resize(static_cast<std::size_t>(num_vcpus));
  for (int i = 0; i < vcpu_series_limit; ++i) {
    const std::string name =
        prefix + vcpu_names_[static_cast<std::size_t>(i)];
    VcpuSeries& s = vcpu_series_[static_cast<std::size_t>(i)];
    s.demand = recorder_->DefineSeries(name + ".demand_ns");
    s.supply = recorder_->DefineSeries(name + ".supply_ns");
    s.latency = recorder_->DefineSeries(name + ".latency_ns");
    s.misses = recorder_->DefineSeries(name + ".misses");
  }
  cpu_busy_series_.reserve(static_cast<std::size_t>(num_cpus));
  for (int c = 0; c < num_cpus; ++c) {
    cpu_busy_series_.push_back(
        recorder_->DefineSeries(prefix + "cpu" + std::to_string(c) + ".busy_ns"));
  }
  machine_queue_ = recorder_->DefineSeries(prefix + "machine.queue_ns");
  machine_preempt_ = recorder_->DefineSeries(prefix + "machine.preempt_ns");
  machine_blackout_ = recorder_->DefineSeries(prefix + "machine.blackout_ns");
  machine_slip_ = recorder_->DefineSeries(prefix + "machine.slip_ns");
  machine_waiting_ = recorder_->DefineSeries(prefix + "machine.runnable_waiting");
  machine_running_ = recorder_->DefineSeries(prefix + "machine.running");

  view_prev_totals_.resize(static_cast<std::size_t>(num_vcpus));
  for (int v = 0; v < num_vcpus; ++v) {
    view_prev_totals_[static_cast<std::size_t>(v)] = attributor_.TotalsAt(v, start);
  }
  window_views_.resize(static_cast<std::size_t>(num_vcpus));

  attribution_hists_.resize(static_cast<std::size_t>(num_vms_));
  latency_hists_.resize(static_cast<std::size_t>(num_vms_));
}

void Telemetry::IngestInterval(int vcpu, const AttributedInterval& interval) {
  if (interval.empty()) {
    return;
  }
  TimeSeriesRecorder::SeriesId machine_series = TimeSeriesRecorder::kNoSeries;
  switch (interval.component) {
    case LatencyComponent::kWakeQueue:
      machine_series = machine_queue_;
      break;
    case LatencyComponent::kPreempt:
      machine_series = machine_preempt_;
      break;
    case LatencyComponent::kBlackout:
      machine_series = machine_blackout_;
      break;
    case LatencyComponent::kSwitchSlip:
      machine_series = machine_slip_;
      break;
    default:
      break;  // Service is ingested via OnServiceRange; blocked is idle.
  }
  if (machine_series != TimeSeriesRecorder::kNoSeries) {
    recorder_->AddRange(machine_series, interval.from, interval.to);
    recorder_->AddRange(vcpu_series_[static_cast<std::size_t>(vcpu)].demand,
                        interval.from, interval.to);
  }
}

void Telemetry::OnWakeup(int vcpu, TimeNs now) {
  if (!enabled_ || !bound_) {
    return;
  }
  IngestInterval(vcpu, attributor_.OnWakeup(vcpu, now));
}

void Telemetry::OnBlock(int vcpu, TimeNs now) {
  if (!enabled_ || !bound_) {
    return;
  }
  IngestInterval(vcpu, attributor_.OnBlock(vcpu, now));
}

void Telemetry::OnDispatch(int vcpu, TimeNs now) {
  if (!enabled_ || !bound_) {
    return;
  }
  IngestInterval(vcpu, attributor_.OnDispatch(vcpu, now));
}

void Telemetry::OnDeschedule(int vcpu, TimeNs now) {
  if (!enabled_ || !bound_) {
    return;
  }
  IngestInterval(vcpu, attributor_.OnDeschedule(vcpu, now));
}

void Telemetry::OnServiceRange(int vcpu, int cpu, TimeNs from, TimeNs to) {
  if (!enabled_ || !bound_ || to <= from) {
    return;
  }
  const VcpuSeries& s = vcpu_series_[static_cast<std::size_t>(vcpu)];
  recorder_->AddRange(s.supply, from, to);
  recorder_->AddRange(s.demand, from, to);  // Demand = waiting + served.
  recorder_->AddRange(cpu_busy_series_[static_cast<std::size_t>(cpu)], from,
                      to);
}

void Telemetry::OnTableSwitch(TimeNs now, TimeNs slip) {
  if (!enabled_ || !bound_ || slip <= 0) {
    return;
  }
  for (int v = 0; v < attributor_.num_vcpus(); ++v) {
    const SlipSplit split = attributor_.ReattributeSlip(v, now, slip);
    IngestInterval(v, split.head);
    IngestInterval(v, split.tail);
  }
}

void Telemetry::OnCadenceSample(TimeNs at, int runnable_waiting, int running) {
  if (!enabled_ || !bound_) {
    return;
  }
  recorder_->Observe(machine_waiting_, at, runnable_waiting);
  recorder_->Observe(machine_running_, at, running);
  if (at <= last_view_at_) {
    return;  // Re-sample of the same boundary: the views are already closed.
  }
  last_view_at_ = at;
  for (int v = 0; v < attributor_.num_vcpus(); ++v) {
    const LatencyBreakdown totals = attributor_.TotalsAt(v, at);
    const LatencyBreakdown delta =
        totals - view_prev_totals_[static_cast<std::size_t>(v)];
    view_prev_totals_[static_cast<std::size_t>(v)] = totals;
    VcpuWindowView& view = window_views_[static_cast<std::size_t>(v)];
    view.supply_ns = delta[LatencyComponent::kService];
    view.demand_ns = view.supply_ns + delta[LatencyComponent::kWakeQueue] +
                     delta[LatencyComponent::kPreempt] +
                     delta[LatencyComponent::kBlackout] +
                     delta[LatencyComponent::kSwitchSlip];
    view.has_data = view.demand_ns > 0;
  }
}

Telemetry::RequestMark Telemetry::BeginRequest(int vcpu, TimeNs at) const {
  RequestMark mark;
  mark.at = at;
  if (enabled_ && bound_) {
    mark.totals = attributor_.TotalsAt(vcpu, at);
  }
  return mark;
}

void Telemetry::EndRequest(int vcpu, const RequestMark& mark, TimeNs end,
                           TimeNs network_extra_ns) {
  if (!enabled_ || !bound_) {
    return;
  }
  LatencyBreakdown breakdown = attributor_.TotalsAt(vcpu, end) - mark.totals;
  breakdown[LatencyComponent::kNetwork] += network_extra_ns;
  const TimeNs latency = breakdown.Total();  // == (end - mark.at) + extra.

  const int vm = vm_of_[static_cast<std::size_t>(vcpu)];
  auto& hists = attribution_hists_[static_cast<std::size_t>(vm)];
  for (int c = 0; c < kNumLatencyComponents; ++c) {
    hists[static_cast<std::size_t>(c)].Record(
        breakdown.ns[static_cast<std::size_t>(c)]);
  }
  latency_hists_[static_cast<std::size_t>(vm)].Record(latency);
  slo_.Record(vm, end, latency);

  const VcpuSeries& s = vcpu_series_[static_cast<std::size_t>(vcpu)];
  recorder_->Observe(s.latency, end, latency);
  if (latency > slo_.config().target_latency_ns) {
    recorder_->Observe(s.misses, end, 1);
  }
  if (span_observer_) {
    span_observer_(vcpu, mark.at, end, breakdown);
  }
}

TimeSeriesSnapshot Telemetry::TimeSeries() const {
  if (recorder_ == nullptr) {
    return TimeSeriesSnapshot{};
  }
  return recorder_->Snapshot();
}

HistogramValue Telemetry::AttributionHistogram(int vm,
                                               LatencyComponent c) const {
  return attribution_hists_[static_cast<std::size_t>(vm)]
                           [static_cast<std::size_t>(static_cast<int>(c))]
                               .ToValue();
}

HistogramValue Telemetry::RequestLatencyHistogram(int vm) const {
  return latency_hists_[static_cast<std::size_t>(vm)].ToValue();
}

namespace {

std::string Pad(int indent) {
  return std::string(static_cast<std::size_t>(indent), ' ');
}

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string HistJson(const HistogramValue& h) {
  return "{\"count\": " + std::to_string(h.count) +
         ", \"sum\": " + std::to_string(h.sum) +
         ", \"min\": " + std::to_string(h.min) +
         ", \"max\": " + std::to_string(h.max) +
         ", \"mean\": " + Num(h.Mean()) +
         ", \"p50\": " + std::to_string(h.Percentile(0.5)) +
         ", \"p99\": " + std::to_string(h.Percentile(0.99)) + "}";
}

}  // namespace

std::string Telemetry::ToJson(int indent) const {
  const std::string p0 = Pad(indent);
  const std::string p1 = Pad(indent + 2);
  const std::string p2 = Pad(indent + 4);
  const std::string p3 = Pad(indent + 6);
  std::string out = "{\n";
  out += p1 + "\"schema_version\": \"1.0\",\n";

  out += p1 + "\"slo\": {";
  for (int vm = 0; vm < num_vms_; ++vm) {
    const SloVerdict v = slo_.VerdictFor(vm);
    out += vm == 0 ? "\n" : ",\n";
    out += p2 + "\"vm" + std::to_string(vm) + "\": {";
    out += "\"requests\": " + std::to_string(v.requests);
    out += ", \"misses\": " + std::to_string(v.misses);
    out += ", \"attainment\": " + Num(v.attainment);
    out += ", \"slo_met\": " + std::string(v.slo_met ? "true" : "false");
    out += ", \"burn_rate\": " + Num(v.burn_rate);
    out += ", \"windows_closed\": " + std::to_string(v.windows_closed);
    out += ", \"windows_over_budget\": " +
           std::to_string(v.windows_over_budget);
    out += ", \"longest_streak\": " + std::to_string(v.longest_streak);
    out += ", \"burst_detected\": " +
           std::string(v.burst_detected ? "true" : "false");
    out += "}";
  }
  out += num_vms_ == 0 ? "},\n" : "\n" + p1 + "},\n";

  out += p1 + "\"attribution\": {";
  for (int vm = 0; vm < num_vms_; ++vm) {
    out += vm == 0 ? "\n" : ",\n";
    out += p2 + "\"vm" + std::to_string(vm) + "\": {\n";
    out += p3 + "\"latency\": " + HistJson(RequestLatencyHistogram(vm));
    for (int c = 0; c < kNumLatencyComponents; ++c) {
      const auto component = static_cast<LatencyComponent>(c);
      out += ",\n" + p3 + "\"" + LatencyComponentName(component) +
             "\": " + HistJson(AttributionHistogram(vm, component));
    }
    out += "\n" + p2 + "}";
  }
  out += num_vms_ == 0 ? "},\n" : "\n" + p1 + "},\n";

  out += p1 + "\"timeseries\": " + TimeSeries().ToJson(indent + 2) + "\n";
  out += p0 + "}";
  return out;
}

void Telemetry::PublishMetrics(MetricsRegistry* registry) const {
  for (int vm = 0; vm < num_vms_; ++vm) {
    const SloVerdict v = slo_.VerdictFor(vm);
    const std::string prefix = "slo.vm" + std::to_string(vm) + ".";
    registry->GetGauge(prefix + "requests")
        ->Set(static_cast<double>(v.requests));
    registry->GetGauge(prefix + "misses")->Set(static_cast<double>(v.misses));
    registry->GetGauge(prefix + "attainment")->Set(v.attainment);
    registry->GetGauge(prefix + "slo_met")->Set(v.slo_met ? 1 : 0);
    registry->GetGauge(prefix + "burn_rate")->Set(v.burn_rate);
    registry->GetGauge(prefix + "longest_streak")
        ->Set(static_cast<double>(v.longest_streak));
    registry->GetGauge(prefix + "burst_detected")
        ->Set(v.burst_detected ? 1 : 0);
  }
}

}  // namespace tableau::obs
