// Causal latency attribution: an exact time-partitioning state machine per
// vCPU. Every simulated nanosecond of a vCPU's life is assigned to exactly
// one latency component — service, wakeup→first-dispatch queueing, runnable
// preemption, table blackout, table-switch slip, or blocked — so the
// component breakdown of any interval [a, b) sums to exactly b - a. Request
// spans subtract the breakdown captured at request arrival from the one at
// completion (plus a workload-supplied network component), which is how the
// telemetry layer proves "components sum to measured latency" as an exact
// integer identity rather than an approximation (see DESIGN.md "Telemetry &
// SLO tracking").
//
// The attributor is driven from Machine's trace hooks and is a pure
// observer: it never schedules simulation events and never allocates after
// Bind.
#ifndef SRC_OBS_ATTRIBUTION_H_
#define SRC_OBS_ATTRIBUTION_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/time.h"
#include "src/obs/metrics.h"

namespace tableau::obs {

// Where a vCPU's (or a request's) time went. kService through kBlocked are
// the attributor's machine states; kSwitchSlip is a reattribution-only
// bucket (time a waiting vCPU lost to a late table switch); kNetwork is
// supplied by the workload for the wire legs outside the machine.
enum class LatencyComponent : int {
  kService = 0,
  kWakeQueue,   // Wakeup to first dispatch.
  kPreempt,     // Runnable but descheduled, work-conserving scheduler.
  kBlackout,    // Runnable but descheduled, table-driven scheduler.
  kSwitchSlip,  // Waiting time re-attributed to a late table switch.
  kBlocked,
  kNetwork,
};

inline constexpr int kNumLatencyComponents = 7;

const char* LatencyComponentName(LatencyComponent component);

// Nanoseconds per component. Closed under += and -; Total() of a breakdown
// produced by subtracting two TotalsAt captures equals the elapsed time
// between them exactly.
struct LatencyBreakdown {
  std::array<TimeNs, kNumLatencyComponents> ns = {};

  TimeNs& operator[](LatencyComponent c) { return ns[static_cast<int>(c)]; }
  TimeNs operator[](LatencyComponent c) const {
    return ns[static_cast<int>(c)];
  }

  TimeNs Total() const {
    TimeNs total = 0;
    for (const TimeNs v : ns) {
      total += v;
    }
    return total;
  }

  LatencyBreakdown& operator+=(const LatencyBreakdown& other) {
    for (int i = 0; i < kNumLatencyComponents; ++i) {
      ns[static_cast<std::size_t>(i)] += other.ns[static_cast<std::size_t>(i)];
    }
    return *this;
  }
  friend LatencyBreakdown operator-(LatencyBreakdown a,
                                    const LatencyBreakdown& b) {
    for (int i = 0; i < kNumLatencyComponents; ++i) {
      a.ns[static_cast<std::size_t>(i)] -= b.ns[static_cast<std::size_t>(i)];
    }
    return a;
  }

  bool operator==(const LatencyBreakdown&) const = default;
};

// Single-writer log2 histogram with the same bucket layout as
// LatencyHistogram but no atomics and no enable flag — cheap enough to keep
// one per (VM, component) and hit several times per request on the
// telemetry hot path. Zero-allocation; ToValue() exports the standard
// sparse HistogramValue.
class CompactHistogram {
 public:
  void Record(TimeNs value) {
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    buckets_[std::bit_width(v)] += 1;
    count_ += 1;
    sum_ += static_cast<std::int64_t>(v);
    min_ = std::min(min_, static_cast<std::int64_t>(v));
    max_ = std::max(max_, static_cast<std::int64_t>(v));
  }

  std::uint64_t count() const { return count_; }

  HistogramValue ToValue() const;

 private:
  std::uint64_t buckets_[LatencyHistogram::kBuckets] = {};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
};

// One settled interval, reported back to the caller so windowed series can
// ingest it (AddRange) at the moment it closes. Empty (from == to) when a
// hook had nothing to settle.
struct AttributedInterval {
  LatencyComponent component = LatencyComponent::kBlocked;
  TimeNs from = 0;
  TimeNs to = 0;

  TimeNs duration() const { return to - from; }
  bool empty() const { return to <= from; }
};

// The two pieces a slip reattribution splits a waiting interval into: the
// head keeps the waiting state's component, the tail becomes kSwitchSlip.
struct SlipSplit {
  AttributedInterval head;
  AttributedInterval tail;
};

class LatencyAttributor {
 public:
  // Allocates per-vCPU state (the only allocation). `table_driven` selects
  // how runnable-but-descheduled time is classified: kBlackout under a
  // table-driven scheduler, kPreempt under a work-conserving one. All vCPUs
  // start kBlocked as of `start`.
  void Bind(int num_vcpus, bool table_driven, TimeNs start);
  bool bound() const { return !states_.empty(); }
  int num_vcpus() const { return static_cast<int>(states_.size()); }

  // --- Machine hooks (hot path, zero allocation) ---
  // Each settles the vCPU's current state up to `now`, transitions, and
  // returns the interval just settled.

  // Blocked -> wake queue. A wakeup in any other state is a no-op (the vCPU
  // is already runnable or running); returns an empty interval.
  AttributedInterval OnWakeup(int vcpu, TimeNs now);
  // Any state -> service.
  AttributedInterval OnDispatch(int vcpu, TimeNs now);
  // Service -> blackout (table-driven) or preempt (work-conserving): the
  // vCPU is still runnable but loses the pCPU.
  AttributedInterval OnDeschedule(int vcpu, TimeNs now);
  // Any state -> blocked.
  AttributedInterval OnBlock(int vcpu, TimeNs now);

  // Table switch committed at `now`, `slip` ns late: for a vCPU currently
  // waiting (wake queue or blackout), the trailing min(slip, waited) ns of
  // its wait were caused by the slip — re-attribute them to kSwitchSlip.
  // Other states are untouched (empty split). The vCPU's state machine
  // continues in its waiting state with since = now.
  SlipSplit ReattributeSlip(int vcpu, TimeNs now, TimeNs slip);

  // Cumulative per-component totals as of `t`, including the in-progress
  // state's [since, t) partial. For any t2 >= t1,
  // (TotalsAt(v, t2) - TotalsAt(v, t1)).Total() == t2 - t1 exactly.
  LatencyBreakdown TotalsAt(int vcpu, TimeNs t) const;

  LatencyComponent StateOf(int vcpu) const {
    return states_[static_cast<std::size_t>(vcpu)].component;
  }

 private:
  struct VcpuState {
    LatencyComponent component = LatencyComponent::kBlocked;
    TimeNs since = 0;
    LatencyBreakdown totals;
  };

  AttributedInterval SettleAndSwitch(int vcpu, TimeNs now,
                                     LatencyComponent next);

  bool table_driven_ = false;
  std::vector<VcpuState> states_;
};

}  // namespace tableau::obs

#endif  // SRC_OBS_ATTRIBUTION_H_
