#include "src/obs/trace_export.h"

#include <cstdio>
#include <vector>

#include "src/obs/json.h"

namespace tableau::obs {

namespace {

// trace_event timestamps are microseconds; keep ns precision as fractions.
std::string Micros(TimeNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

struct OpenSlice {
  bool open = false;
  TimeNs start = 0;
  VcpuId vcpu = kIdleVcpu;
  bool second_level = false;
  std::int64_t flow_id = 0;  // Nonzero: wake→service flow ends with this slice.
};

}  // namespace

std::string TraceToPerfettoJson(const TraceBuffer& trace, int num_cpus,
                                const PerfettoExportOptions& options) {
  const auto vcpu_name = [&options](VcpuId vcpu) {
    const auto it = options.vcpu_names.find(vcpu);
    if (it != options.vcpu_names.end()) {
      return JsonEscape(it->second);
    }
    return "vCPU " + std::to_string(vcpu);
  };
  const auto tid_of = [](int cpu) { return cpu < 0 ? 0 : cpu + 1; };

  std::vector<std::string> events;
  // Upper bound: each retained record emits at most one event string, plus
  // one close-out slice per track at the end.
  events.reserve(trace.size() + static_cast<std::size_t>(num_cpus) + 1);
  bool used_unplaced_track = false;
  // Hoisted out of the per-record loop below.
  const bool include_wakeups = options.include_wakeups;
  const bool include_flows = options.include_flows;

  // Wake→service flows: vCPU -> flow id opened at the wakeup ("s") and
  // still awaiting its first dispatch ("t"). The earliest pending wakeup
  // wins; the flow finishes ("f", binding point "e") where that service
  // slice closes.
  std::map<VcpuId, std::int64_t> pending_flow;
  std::int64_t next_flow_id = 1;
  const auto emit_flow = [&](char phase, std::int64_t id, TimeNs time,
                             int cpu) {
    std::string event = std::string("{\"name\": \"wake latency\", \"cat\": "
                                    "\"latency\", \"ph\": \"") +
                        phase + "\", \"id\": " + std::to_string(id) +
                        ", \"ts\": " + Micros(time) + ", \"pid\": 1, \"tid\": ";
    event += std::to_string(cpu < 0 ? 0 : cpu + 1);
    if (phase == 'f') {
      event += ", \"bp\": \"e\"";
    }
    event += "}";
    if (cpu < 0) {
      used_unplaced_track = true;
    }
    events.push_back(std::move(event));
  };

  const auto emit_slice = [&](int cpu, const OpenSlice& slice, TimeNs end,
                              bool truncated_start, bool truncated_end) {
    std::string args = "{\"vcpu\": " + std::to_string(slice.vcpu) +
                       ", \"second_level\": " +
                       (slice.second_level ? "true" : "false");
    if (truncated_start || truncated_end) {
      args += ", \"truncated\": true";
    }
    args += "}";
    events.push_back("{\"name\": \"" + vcpu_name(slice.vcpu) +
                     "\", \"cat\": \"service\", \"ph\": \"X\", \"ts\": " +
                     Micros(slice.start) + ", \"dur\": " +
                     Micros(end - slice.start) + ", \"pid\": 1, \"tid\": " +
                     std::to_string(tid_of(cpu)) + ", \"args\": " + args + "}");
    if (slice.flow_id != 0) {
      emit_flow('f', slice.flow_id, end, cpu);
    }
  };
  const auto emit_instant = [&](const std::string& name, TimeNs time, int cpu,
                                const std::string& args) {
    if (cpu < 0) {
      used_unplaced_track = true;
    }
    std::string event = "{\"name\": \"" + name +
                        "\", \"cat\": \"event\", \"ph\": \"i\", \"s\": \"t\", "
                        "\"ts\": " + Micros(time) + ", \"pid\": 1, \"tid\": " +
                        std::to_string(tid_of(cpu));
    if (!args.empty()) {
      event += ", \"args\": " + args;
    }
    event += "}";
    events.push_back(std::move(event));
  };

  const TimeNs window_start = trace.oldest_retained_time();
  TimeNs newest = window_start;
  std::vector<OpenSlice> open(static_cast<std::size_t>(num_cpus) + 1);
  std::vector<bool> saw_cpu(open.size(), false);
  const bool wrapped = trace.dropped() > 0;

  trace.ForEach([&](const TraceRecord& record) {
    newest = record.time;
    const int cpu = record.cpu;
    const auto slot = static_cast<std::size_t>(cpu < 0 ? num_cpus : cpu);
    if (slot >= open.size()) {
      return;  // Record from a CPU outside [0, num_cpus): skip defensively.
    }
    switch (record.event) {
      case TraceEvent::kDispatch:
        if (open[slot].open) {
          // Deschedule lost to the ring (or tracing toggled): close at the
          // next dispatch rather than inventing an overlap.
          emit_slice(cpu, open[slot], record.time, false, true);
        }
        open[slot] = OpenSlice{true, record.time, record.vcpu,
                               record.arg != 0};
        if (include_flows) {
          const auto it = pending_flow.find(record.vcpu);
          if (it != pending_flow.end()) {
            open[slot].flow_id = it->second;
            emit_flow('t', it->second, record.time, cpu);
            pending_flow.erase(it);
          }
        }
        break;
      case TraceEvent::kDeschedule:
      case TraceEvent::kBlock:
        if (open[slot].open && open[slot].vcpu == record.vcpu) {
          emit_slice(cpu, open[slot], record.time, false, false);
          open[slot].open = false;
        } else if (!open[slot].open && !saw_cpu[slot] && wrapped) {
          // Oldest retained records start mid-interval on this CPU.
          OpenSlice head{true, window_start, record.vcpu, false};
          emit_slice(cpu, head, record.time, true, false);
        }
        break;
      case TraceEvent::kIdle:
        if (open[slot].open) {
          emit_slice(cpu, open[slot], record.time, false, true);
          open[slot].open = false;
        }
        break;
      case TraceEvent::kWakeup:
        if (include_wakeups) {
          emit_instant("wakeup " + vcpu_name(record.vcpu), record.time, cpu,
                       "");
        }
        if (include_flows &&
            pending_flow.find(record.vcpu) == pending_flow.end()) {
          const std::int64_t id = next_flow_id++;
          pending_flow.emplace(record.vcpu, id);
          emit_flow('s', id, record.time, cpu);
        }
        break;
      case TraceEvent::kTableSwitch:
        emit_instant("table switch", record.time, cpu,
                     "{\"generation\": " + std::to_string(record.arg) + "}");
        break;
    }
    saw_cpu[slot] = true;
  });
  for (std::size_t slot = 0; slot < open.size(); ++slot) {
    if (open[slot].open) {
      const int cpu = slot == static_cast<std::size_t>(num_cpus)
                          ? -1
                          : static_cast<int>(slot);
      emit_slice(cpu, open[slot], newest, false, true);
    }
  }

  std::string out = "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  std::vector<std::string> metadata;
  metadata.reserve(static_cast<std::size_t>(num_cpus) + 2);
  metadata.push_back(
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"args\": "
      "{\"name\": \"" + JsonEscape(options.process_name) + "\"}}");
  if (used_unplaced_track) {
    metadata.push_back(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"name\": \"(unplaced)\"}}");
  }
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    metadata.push_back(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
        std::to_string(cpu + 1) + ", \"args\": {\"name\": \"pCPU " +
        std::to_string(cpu) + "\"}}");
  }
  std::size_t total = out.size() + 16;
  for (const auto* group : {&metadata, &events}) {
    for (const std::string& event : *group) {
      total += event.size() + 6;  // indent + ",\n".
    }
  }
  out.reserve(total);
  bool first = true;
  for (const auto* group : {&metadata, &events}) {
    for (const std::string& event : *group) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      out += "    " + event;
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

bool ValidatePerfettoJson(const std::string& json, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  const std::optional<JsonValue> doc = ParseJson(json);
  if (!doc.has_value()) {
    return fail("not valid JSON");
  }
  if (!doc->is_object()) {
    return fail("top level is not an object");
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }
  std::size_t index = 0;
  for (const JsonValue& event : events->array()) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!event.is_object()) {
      return fail(where + " is not an object");
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str().size() != 1) {
      return fail(where + " has no single-char ph");
    }
    const JsonValue* pid = event.Find("pid");
    if (pid == nullptr || !pid->is_number()) {
      return fail(where + " has no numeric pid");
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || !name->is_string()) {
      return fail(where + " has no string name");
    }
    const char phase = ph->str()[0];
    if (phase == 'M') {
      continue;  // Metadata needs no timestamp.
    }
    const JsonValue* ts = event.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail(where + " has no numeric ts");
    }
    if (phase == 's' || phase == 't' || phase == 'f') {
      const JsonValue* id = event.Find("id");
      if (id == nullptr || !(id->is_number() || id->is_string())) {
        return fail(where + " (flow event) has no id");
      }
    }
    if (phase == 'X') {
      const JsonValue* dur = event.Find("dur");
      if (dur == nullptr || !dur->is_number()) {
        return fail(where + " (complete slice) has no numeric dur");
      }
      if (dur->number() < 0) {
        return fail(where + " has negative dur");
      }
    }
  }
  return true;
}

}  // namespace tableau::obs
