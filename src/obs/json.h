// Minimal JSON document model + recursive-descent parser, used by the
// observability layer for its own artifacts: parsing metric snapshots back
// (round-trip tests, tooling) and schema-checking emitted Perfetto traces.
// Not a general-purpose JSON library — no streaming, no \uXXXX surrogate
// pairs — but strict enough to reject malformed output.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tableau::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses `text` as one JSON document (trailing whitespace allowed, trailing
// garbage rejected). Returns nullopt on any syntax error.
std::optional<JsonValue> ParseJson(const std::string& text);

// Escapes a string for embedding in a JSON document (quotes not included).
std::string JsonEscape(const std::string& text);

}  // namespace tableau::obs

#endif  // SRC_OBS_JSON_H_
