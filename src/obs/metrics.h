// Unified metrics registry: named counters, gauges, and fixed-bucket latency
// histograms shared by the simulator, the schedulers, and the planner.
//
// Hot-path cost budget (see DESIGN.md "Observability"): a Record/Increment is
// one relaxed atomic load (the enabled flag) plus one or a few relaxed
// atomic read-modify-writes — no locks, no allocation, no branches on the
// metric name. Callers obtain a handle (a stable pointer) once, at setup
// time, and use the handle on the hot path; handle lookup takes the registry
// mutex and is O(log #metrics).
//
// Metrics are pure observers: recording never feeds back into simulated
// behaviour, so a run with metrics enabled is bit-identical to one with them
// disabled (enforced by tests/obs_test.cc and `tableau_tracedump
// --check-determinism`).
//
// Snapshot/delta semantics: Snapshot() captures every metric's current value
// into a plain-data MetricsSnapshot; Delta(older) subtracts counter and
// histogram contents (gauges keep the newer value), so callers can meter an
// interval of a long run. Snapshots merge (for aggregating across machines),
// serialize to JSON/CSV, and parse back from their own JSON.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace tableau::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// RFC 4180 field quoting: a field containing a comma, double quote, or
// newline is wrapped in double quotes with embedded quotes doubled; any
// other field passes through unchanged.
std::string CsvEscapeField(const std::string& field);

// Splits one CSV row (without its trailing newline) back into fields,
// undoing CsvEscapeField — the round-trip inverse used by the CSV tests.
std::vector<std::string> SplitCsvRow(const std::string& row);

// Monotonic integer counter.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<std::int64_t> value_{0};
};

// Last-write-wins scalar (end-of-run totals, configuration echoes).
class Gauge {
 public:
  void Set(double value) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0};
};

// Fixed-bucket latency histogram: 64 power-of-two buckets (bucket i counts
// values whose bit width is i, i.e. [2^(i-1), 2^i - 1]; bucket 0 counts
// zeros), exact count/sum/min/max on the side. Record is O(1): a bit-width
// computation and relaxed atomic updates, safe for concurrent recorders
// (planner worker threads).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(TimeNs value) {
    if (!enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    const std::uint64_t v =
        value < 0 ? 0 : static_cast<std::uint64_t>(value);
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<std::int64_t>(v), std::memory_order_relaxed);
    AtomicMin(min_, static_cast<std::int64_t>(v));
    AtomicMax(max_, static_cast<std::int64_t>(v));
  }

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t Min() const { return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed); }
  std::int64_t Max() const { return Count() == 0 ? 0 : max_.load(std::memory_order_relaxed); }

  // Inclusive upper edge of bucket `index` (2^index - 1; bucket 0 -> 0).
  static std::int64_t BucketUpperEdge(int index);

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  static void AtomicMin(std::atomic<std::int64_t>& slot, std::int64_t v) {
    std::int64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<std::int64_t>& slot, std::int64_t v) {
    std::int64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{0};
};

// Plain-data capture of one histogram (sparse: only occupied buckets).
struct HistogramValue {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  // (bucket index, count) pairs, ascending by index; the bucket's inclusive
  // upper edge is LatencyHistogram::BucketUpperEdge(index).
  std::vector<std::pair<int, std::uint64_t>> buckets;

  double Mean() const {
    return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Approximate quantile from the bucket counts, linearly interpolated by
  // rank within the winning bucket and clamped to the exact [min, max]. The
  // error is at most the winning bucket's width — for log2 buckets, less
  // than the true value itself (relative error < 100%, typically far less;
  // exact whenever the winning bucket is degenerate or holds min or max).
  // q >= 1 returns the exact maximum.
  std::int64_t Percentile(double q) const;

  bool operator==(const HistogramValue&) const = default;
};

struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::int64_t counter = 0;
  double gauge = 0;
  HistogramValue hist;

  bool operator==(const MetricValue&) const = default;
};

struct MetricsSnapshot {
  // JSON schema version, "major.minor" (see DESIGN.md "Versioned JSON
  // schema"). Major bumps on breaking layout changes; FromJson rejects
  // documents whose major it does not know. Minor bumps on additive changes
  // and is accepted regardless.
  static constexpr int kSchemaVersionMajor = 1;
  static constexpr int kSchemaVersionMinor = 0;
  static const char* SchemaVersion();  // "1.0"

  std::map<std::string, MetricValue> values;

  bool empty() const { return values.empty(); }

  // This minus `since`: counters and histogram contents subtract (clamped at
  // zero for counts); gauges keep this snapshot's value; metrics absent from
  // `since` pass through unchanged.
  MetricsSnapshot Delta(const MetricsSnapshot& since) const;

  // Aggregation across registries (e.g. one machine per bench cell):
  // counters and histograms add; gauges keep the maximum, so the merge is
  // order-independent and thus deterministic under parallel collection.
  void Merge(const MetricsSnapshot& other);

  // JSON document: {"schema_version": "1.0", "counters": {...}, "gauges":
  // {...}, "histograms": {name: {count, sum, min, max, buckets:
  // [[upper_edge, count], ...]}}}.
  // `indent` shifts every line right (for embedding in a larger document).
  std::string ToJson(int indent = 0) const;
  // One line per metric: kind,name,count,sum,min,max,mean,p50,p99 (scalar
  // metrics fill only the columns that apply).
  std::string ToCsv() const;

  // Parses a document produced by ToJson. Returns nullopt on malformed input
  // (including bucket edges that are not of the 2^i - 1 form) and on an
  // unknown schema_version major. Documents without a schema_version (the
  // pre-versioned format) are accepted.
  static std::optional<MetricsSnapshot> FromJson(const std::string& json);

  bool operator==(const MetricsSnapshot&) const = default;
};

// Thread-safe named-metric registry. Handle getters find-or-create; asking
// for an existing name with a different kind aborts (names are global within
// a registry).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Disabling stops all recording through previously returned handles (one
  // relaxed load on the hot path); values retained so far stay readable.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> hist;
  };

  Entry& FindOrCreate(const std::string& name, MetricKind kind);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tableau::obs

#endif  // SRC_OBS_METRICS_H_
