// Per-VM SLO tracking: a latency target plus quantile ("99% of requests
// under 10 ms"), evaluated both cumulatively (attainment, miss-budget burn
// rate) and per deterministic sim-time window (miss streaks → burst
// detection). Recording is zero-allocation after Bind and never touches the
// simulation engine — like the rest of the telemetry layer it is a pure
// observer (DESIGN.md "Telemetry & SLO tracking").
//
// Window semantics: requests land in window floor(at / window_ns). When a
// request arrives in a later window, every window since the last one closes;
// a closed window with miss_fraction > miss_budget extends the current
// over-budget streak, one within budget (including an empty gap window)
// resets it. A streak reaching burst_streak_windows flags a burst.
#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"

namespace tableau::obs {

struct SloConfig {
  TimeNs target_latency_ns = 10 * kMillisecond;
  // Required fraction of requests at or under target: attainment >=
  // target_quantile means the SLO is met (p<quantile> <= target).
  double target_quantile = 0.99;
  // Per-window allowed miss fraction; windows above it burn the budget and
  // feed the streak detector.
  double miss_budget = 0.01;
  int burst_streak_windows = 3;
  TimeNs window_ns = 10 * kMillisecond;
};

struct SloVerdict {
  std::uint64_t requests = 0;
  std::uint64_t misses = 0;
  double attainment = 1.0;   // Fraction of requests at or under target.
  bool slo_met = true;       // attainment >= target_quantile.
  double burn_rate = 0.0;    // (miss fraction) / miss_budget; >1 = burning.
  std::uint64_t windows_closed = 0;
  std::uint64_t windows_over_budget = 0;
  std::uint64_t current_streak = 0;
  std::uint64_t longest_streak = 0;
  bool burst_detected = false;  // longest_streak >= burst_streak_windows.
};

class SloTracker {
 public:
  // Allocates per-VM state (the only allocation).
  void Bind(int num_vms, SloConfig config);
  bool bound() const { return !vms_.empty(); }
  int num_vms() const { return static_cast<int>(vms_.size()); }
  const SloConfig& config() const { return config_; }

  // Hot path: classifies one completed request against the target and rolls
  // the window machinery forward to the window containing `at`.
  void Record(int vm, TimeNs at, TimeNs latency_ns);

  // Cumulative verdict including the still-open window (evaluated as if it
  // closed now). Const — snapshotting does not perturb the tracker.
  SloVerdict VerdictFor(int vm) const;

 private:
  struct VmState {
    std::uint64_t requests = 0;
    std::uint64_t misses = 0;
    std::int64_t window = -1;  // Open window index; -1 = none yet.
    std::uint64_t window_requests = 0;
    std::uint64_t window_misses = 0;
    std::uint64_t windows_closed = 0;
    std::uint64_t windows_over_budget = 0;
    std::uint64_t streak = 0;
    std::uint64_t longest_streak = 0;
  };

  bool OverBudget(std::uint64_t requests, std::uint64_t misses) const;
  void CloseWindow(VmState& vm) const;

  SloConfig config_;
  std::vector<VmState> vms_;
};

}  // namespace tableau::obs

#endif  // SRC_OBS_SLO_H_
