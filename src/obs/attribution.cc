#include "src/obs/attribution.h"

#include "src/common/check.h"

namespace tableau::obs {

const char* LatencyComponentName(LatencyComponent component) {
  switch (component) {
    case LatencyComponent::kService:
      return "service";
    case LatencyComponent::kWakeQueue:
      return "wake_queue";
    case LatencyComponent::kPreempt:
      return "preempt";
    case LatencyComponent::kBlackout:
      return "blackout";
    case LatencyComponent::kSwitchSlip:
      return "switch_slip";
    case LatencyComponent::kBlocked:
      return "blocked";
    case LatencyComponent::kNetwork:
      return "network";
  }
  return "?";
}

HistogramValue CompactHistogram::ToValue() const {
  HistogramValue value;
  value.count = count_;
  value.sum = sum_;
  value.min = count_ == 0 ? 0 : min_;
  value.max = count_ == 0 ? 0 : max_;
  int occupied = 0;
  for (const std::uint64_t n : buckets_) {
    occupied += n > 0 ? 1 : 0;
  }
  value.buckets.reserve(static_cast<std::size_t>(occupied));
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (buckets_[i] > 0) {
      value.buckets.emplace_back(i, buckets_[i]);
    }
  }
  return value;
}

void LatencyAttributor::Bind(int num_vcpus, bool table_driven, TimeNs start) {
  TABLEAU_CHECK(states_.empty());
  table_driven_ = table_driven;
  states_.resize(static_cast<std::size_t>(num_vcpus));
  for (VcpuState& state : states_) {
    state.component = LatencyComponent::kBlocked;
    state.since = start;
  }
}

AttributedInterval LatencyAttributor::SettleAndSwitch(int vcpu, TimeNs now,
                                                      LatencyComponent next) {
  VcpuState& state = states_[static_cast<std::size_t>(vcpu)];
  const AttributedInterval settled{state.component, state.since, now};
  state.totals[state.component] += now - state.since;
  state.component = next;
  state.since = now;
  return settled;
}

AttributedInterval LatencyAttributor::OnWakeup(int vcpu, TimeNs now) {
  if (states_[static_cast<std::size_t>(vcpu)].component !=
      LatencyComponent::kBlocked) {
    return AttributedInterval{LatencyComponent::kBlocked, now, now};
  }
  return SettleAndSwitch(vcpu, now, LatencyComponent::kWakeQueue);
}

AttributedInterval LatencyAttributor::OnDispatch(int vcpu, TimeNs now) {
  return SettleAndSwitch(vcpu, now, LatencyComponent::kService);
}

AttributedInterval LatencyAttributor::OnDeschedule(int vcpu, TimeNs now) {
  return SettleAndSwitch(vcpu, now,
                         table_driven_ ? LatencyComponent::kBlackout
                                       : LatencyComponent::kPreempt);
}

AttributedInterval LatencyAttributor::OnBlock(int vcpu, TimeNs now) {
  return SettleAndSwitch(vcpu, now, LatencyComponent::kBlocked);
}

SlipSplit LatencyAttributor::ReattributeSlip(int vcpu, TimeNs now,
                                             TimeNs slip) {
  VcpuState& state = states_[static_cast<std::size_t>(vcpu)];
  SlipSplit split;
  if (slip <= 0 || (state.component != LatencyComponent::kWakeQueue &&
                    state.component != LatencyComponent::kBlackout)) {
    split.head = AttributedInterval{state.component, now, now};
    split.tail = AttributedInterval{LatencyComponent::kSwitchSlip, now, now};
    return split;
  }
  const TimeNs boundary = std::max(state.since, now - slip);
  split.head = AttributedInterval{state.component, state.since, boundary};
  split.tail = AttributedInterval{LatencyComponent::kSwitchSlip, boundary, now};
  state.totals[state.component] += boundary - state.since;
  state.totals[LatencyComponent::kSwitchSlip] += now - boundary;
  state.since = now;
  return split;
}

LatencyBreakdown LatencyAttributor::TotalsAt(int vcpu, TimeNs t) const {
  const VcpuState& state = states_[static_cast<std::size_t>(vcpu)];
  LatencyBreakdown totals = state.totals;
  totals[state.component] += t - state.since;
  return totals;
}

}  // namespace tableau::obs
