#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>

namespace tableau::obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

// Not in an anonymous namespace: JsonValue befriends tableau::obs::JsonParser.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    JsonValue value;
    if (!ParseValue(value)) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // Trailing garbage.
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) {
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default: return false;  // \uXXXX unsupported; our emitters never use it.
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // Unterminated.
  }

  bool ParseValue(JsonValue& value) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      value.type_ = JsonValue::Type::kObject;
      SkipSpace();
      if (Consume('}')) {
        return true;
      }
      while (true) {
        std::string key;
        SkipSpace();
        if (!ParseString(key) || !Consume(':')) {
          return false;
        }
        JsonValue member;
        if (!ParseValue(member)) {
          return false;
        }
        value.object_[key] = std::move(member);
        if (Consume(',')) {
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      value.type_ = JsonValue::Type::kArray;
      SkipSpace();
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue element;
        if (!ParseValue(element)) {
          return false;
        }
        value.array_.push_back(std::move(element));
        if (Consume(',')) {
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      value.type_ = JsonValue::Type::kString;
      return ParseString(value.string_);
    }
    if (c == 't') {
      value.type_ = JsonValue::Type::kBool;
      value.bool_ = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      value.type_ = JsonValue::Type::kBool;
      value.bool_ = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      value.type_ = JsonValue::Type::kNull;
      return ConsumeLiteral("null");
    }
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double number = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = number;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace tableau::obs
