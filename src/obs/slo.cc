#include "src/obs/slo.h"

#include <algorithm>

#include "src/common/check.h"

namespace tableau::obs {

void SloTracker::Bind(int num_vms, SloConfig config) {
  TABLEAU_CHECK(vms_.empty());
  TABLEAU_CHECK(config.window_ns > 0);
  TABLEAU_CHECK(config.burst_streak_windows > 0);
  config_ = config;
  vms_.resize(static_cast<std::size_t>(num_vms));
}

bool SloTracker::OverBudget(std::uint64_t requests,
                            std::uint64_t misses) const {
  if (requests == 0) {
    return false;  // An empty window cannot burn budget.
  }
  return static_cast<double>(misses) >
         config_.miss_budget * static_cast<double>(requests);
}

void SloTracker::CloseWindow(VmState& vm) const {
  vm.windows_closed += 1;
  if (OverBudget(vm.window_requests, vm.window_misses)) {
    vm.windows_over_budget += 1;
    vm.streak += 1;
    vm.longest_streak = std::max(vm.longest_streak, vm.streak);
  } else {
    vm.streak = 0;
  }
  vm.window_requests = 0;
  vm.window_misses = 0;
}

void SloTracker::Record(int vm_id, TimeNs at, TimeNs latency_ns) {
  VmState& vm = vms_[static_cast<std::size_t>(vm_id)];
  const std::int64_t window = at / config_.window_ns;
  if (vm.window < 0) {
    vm.window = window;
  } else if (window > vm.window) {
    CloseWindow(vm);
    if (window > vm.window + 1) {
      vm.streak = 0;  // Empty gap windows are in-budget by definition.
    }
    vm.window = window;
  }
  vm.requests += 1;
  vm.window_requests += 1;
  if (latency_ns > config_.target_latency_ns) {
    vm.misses += 1;
    vm.window_misses += 1;
  }
}

SloVerdict SloTracker::VerdictFor(int vm_id) const {
  VmState vm = vms_[static_cast<std::size_t>(vm_id)];  // Copy: const view.
  if (vm.window >= 0) {
    CloseWindow(vm);  // Evaluate the open window as if it closed now.
  }
  SloVerdict verdict;
  verdict.requests = vm.requests;
  verdict.misses = vm.misses;
  verdict.attainment =
      vm.requests == 0
          ? 1.0
          : 1.0 - static_cast<double>(vm.misses) /
                      static_cast<double>(vm.requests);
  verdict.slo_met = verdict.attainment >= config_.target_quantile;
  verdict.burn_rate =
      vm.requests == 0 || config_.miss_budget <= 0
          ? 0.0
          : (static_cast<double>(vm.misses) /
             static_cast<double>(vm.requests)) /
                config_.miss_budget;
  verdict.windows_closed = vm.windows_closed;
  verdict.windows_over_budget = vm.windows_over_budget;
  verdict.current_streak = vm.streak;
  verdict.longest_streak = vm.longest_streak;
  verdict.burst_detected =
      vm.longest_streak >=
      static_cast<std::uint64_t>(config_.burst_streak_windows);
  return verdict;
}

}  // namespace tableau::obs
