// Telemetry bundle: wires the windowed TimeSeriesRecorder, the causal
// LatencyAttributor, the per-VM SloTracker, and per-VM attribution
// histograms behind the single pointer Machine carries. All hooks are pure
// observers (no simulation events, no feedback into scheduling) and — after
// Bind — zero-allocation, so a run with telemetry attached is bit-identical
// to one without (proved by tests/telemetry_test.cc fingerprint checks and
// `tableau_obsctl --check-determinism`).
//
// Lifecycle: construct with a Config, optionally SetVcpuName/SetVmOf, then
// Machine::Start calls Bind once vCPU/pCPU counts are known. Machine drives
// the On* hooks from its trace points; workloads bracket each guest request
// with BeginRequest/EndRequest. Export via TimeSeries(), VerdictFor-backed
// JSON, or PublishMetrics into the machine's MetricsRegistry.
#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"

namespace tableau::obs {

class Telemetry {
 public:
  struct Config {
    TimeNs window_ns = 10 * kMillisecond;
    int window_capacity = 256;
    SloConfig slo;
    // Per-vCPU series are created for vCPU ids < max_vcpu_series only
    // (vantage vCPUs come first in every scenario); -1 = all, 0 = none.
    // Machine-wide and per-pCPU series are always created.
    int max_vcpu_series = -1;
    // Prepended to every series name (e.g. "capped.tableau.io_bg."), so
    // telemetry from many bench cells can merge into one snapshot without
    // colliding.
    std::string series_prefix;
  };

  // Captured at request arrival; EndRequest subtracts it from the totals at
  // completion, which decomposes the span exactly (attribution.h).
  struct RequestMark {
    TimeNs at = 0;
    LatencyBreakdown totals;
  };

  Telemetry() : Telemetry(Config{}) {}
  explicit Telemetry(Config config);

  // --- Setup (before Bind) ---
  void SetVcpuName(int vcpu, std::string name);
  // Maps vCPU id -> VM id for SLO tracking and attribution histograms;
  // defaults to identity (every vCPU its own VM).
  void SetVmOf(std::vector<int> vm_of);
  // Test hook: called at every EndRequest with the exact span breakdown.
  using SpanObserver = std::function<void(int vcpu, TimeNs start, TimeNs end,
                                          const LatencyBreakdown& breakdown)>;
  void set_span_observer(SpanObserver observer) {
    span_observer_ = std::move(observer);
  }

  // Master switch: disabling turns every hook into an immediate return
  // (state retained, nothing recorded).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Allocates all recording state; called by Machine::Start. `table_driven`
  // classifies runnable-descheduled time (blackout vs preempt).
  void Bind(int num_cpus, int num_vcpus, bool table_driven, TimeNs start);
  bool bound() const { return bound_; }

  // --- Machine hooks (hot path, zero allocation after Bind) ---
  void OnWakeup(int vcpu, TimeNs now);
  void OnBlock(int vcpu, TimeNs now);
  void OnDispatch(int vcpu, TimeNs now);
  void OnDeschedule(int vcpu, TimeNs now);
  // One contiguous slice of granted service on `cpu` (from SettleService).
  void OnServiceRange(int vcpu, int cpu, TimeNs from, TimeNs to);
  // Table switch committed `slip` ns late: re-attributes the tail of every
  // waiting vCPU's current wait to kSwitchSlip.
  void OnTableSwitch(TimeNs now, TimeNs slip);
  // Deterministic cadence sample taken by Machine::RunFor at every window
  // boundary: instantaneous runnable-waiting and running vCPU counts. Also
  // closes the per-vCPU window views below (idempotent per boundary).
  void OnCadenceSample(TimeNs at, int runnable_waiting, int running);

  // Per-vCPU view of the telemetry window that closed at the last cadence
  // sample, computed from LatencyAttributor::TotalsAt deltas so it is exact
  // even for a starved vCPU whose waiting interval has not settled into the
  // recorder yet. has_data == false means the vCPU saw no runnable or
  // running time at all in the window ("no data", distinct from zero
  // demand) — the adaptive controller's hold signal.
  struct VcpuWindowView {
    bool has_data = false;
    TimeNs demand_ns = 0;  // Service + wake-queue + preempt + blackout + slip.
    TimeNs supply_ns = 0;  // Service actually granted.
  };
  const VcpuWindowView& LastWindowView(int vcpu) const {
    return window_views_[static_cast<std::size_t>(vcpu)];
  }

  // First window boundary strictly after `t` (Machine::RunFor chunking).
  TimeNs NextBoundaryAfter(TimeNs t) const {
    return (t / config_.window_ns + 1) * config_.window_ns;
  }
  TimeNs window_ns() const { return config_.window_ns; }

  // --- Workload span hooks ---
  RequestMark BeginRequest(int vcpu, TimeNs at) const;
  // Completes a span: end-to-end latency is (end - mark.at) +
  // network_extra_ns, and the recorded component breakdown sums to exactly
  // that. `network_extra_ns` covers the wire legs outside the machine.
  void EndRequest(int vcpu, const RequestMark& mark, TimeNs end,
                  TimeNs network_extra_ns);

  // --- Export ---
  int num_vms() const { return num_vms_; }
  const SloTracker& slo() const { return slo_; }
  const LatencyAttributor& attributor() const { return attributor_; }
  TimeSeriesSnapshot TimeSeries() const;
  HistogramValue AttributionHistogram(int vm, LatencyComponent c) const;
  HistogramValue RequestLatencyHistogram(int vm) const;
  // {"schema_version", "slo": {vm: verdict...}, "attribution": {vm:
  // {component: histogram summary...}}, "timeseries": {...}}.
  std::string ToJson(int indent = 0) const;
  // Surfaces per-VM SLO verdicts as slo.vm<k>.* gauges in `registry`
  // (snapshot-time only; allocates registry entries on first call).
  void PublishMetrics(MetricsRegistry* registry) const;

 private:
  struct VcpuSeries {
    TimeSeriesRecorder::SeriesId demand = TimeSeriesRecorder::kNoSeries;
    TimeSeriesRecorder::SeriesId supply = TimeSeriesRecorder::kNoSeries;
    TimeSeriesRecorder::SeriesId latency = TimeSeriesRecorder::kNoSeries;
    TimeSeriesRecorder::SeriesId misses = TimeSeriesRecorder::kNoSeries;
  };

  // Routes a settled waiting/service interval into the machine-wide
  // component series and the vCPU's demand series.
  void IngestInterval(int vcpu, const AttributedInterval& interval);

  Config config_;
  bool enabled_ = true;
  bool bound_ = false;
  int num_vms_ = 0;

  std::vector<std::string> vcpu_names_;
  std::vector<int> vm_of_;

  std::unique_ptr<TimeSeriesRecorder> recorder_;
  LatencyAttributor attributor_;
  SloTracker slo_;

  std::vector<VcpuSeries> vcpu_series_;
  // Window-view state: cumulative totals at the previous cadence sample and
  // the view of the last closed window, per vCPU.
  std::vector<LatencyBreakdown> view_prev_totals_;
  std::vector<VcpuWindowView> window_views_;
  TimeNs last_view_at_ = -1;
  std::vector<TimeSeriesRecorder::SeriesId> cpu_busy_series_;
  TimeSeriesRecorder::SeriesId machine_queue_ = TimeSeriesRecorder::kNoSeries;
  TimeSeriesRecorder::SeriesId machine_preempt_ =
      TimeSeriesRecorder::kNoSeries;
  TimeSeriesRecorder::SeriesId machine_blackout_ =
      TimeSeriesRecorder::kNoSeries;
  TimeSeriesRecorder::SeriesId machine_slip_ = TimeSeriesRecorder::kNoSeries;
  TimeSeriesRecorder::SeriesId machine_waiting_ =
      TimeSeriesRecorder::kNoSeries;
  TimeSeriesRecorder::SeriesId machine_running_ =
      TimeSeriesRecorder::kNoSeries;

  // Indexed [vm][component]; plus one end-to-end latency histogram per VM.
  std::vector<std::array<CompactHistogram, kNumLatencyComponents>>
      attribution_hists_;
  std::vector<CompactHistogram> latency_hists_;

  SpanObserver span_observer_;
};

}  // namespace tableau::obs

#endif  // SRC_OBS_TELEMETRY_H_
