#include "src/core/dispatcher.h"

#include <algorithm>

#include "src/common/check.h"

namespace tableau {

TableauDispatcher::TableauDispatcher(int num_cpus, Config config)
    : num_cpus_(num_cpus), config_(config) {
  TABLEAU_CHECK(num_cpus_ > 0);
  TABLEAU_CHECK(config_.second_level_epoch > 0);
  second_level_.resize(static_cast<std::size_t>(num_cpus_));
}

void TableauDispatcher::InstallTable(std::shared_ptr<const SchedulingTable> table,
                                     TimeNs now) {
  TABLEAU_CHECK(table != nullptr);
  TABLEAU_CHECK(table->num_cpus() >= num_cpus_);
  if (current_ == nullptr) {
    current_ = std::move(table);
    ++generation_;
    BuildTimelines();
    return;
  }
  // Time-synchronized switch: the planner times the next_table pointers to
  // be set in the middle of the next round of the current table, so every
  // core observes them before the wrap that follows — all cores switch at
  // that wrap, two rounds out at most.
  const TimeNs len = current_->length();
  const TimeNs proposed = (now / len + 2) * len;
  if (next_ != nullptr) {
    // Re-install during a pending switch: the new table supersedes the
    // still-pending one, but the switch time may only stay or move later.
    // Cores have already been handed slot_ends clamped to the promised
    // switch_at_; pulling it earlier (possible when `now` runs behind the
    // first install, e.g. observed from a core with a lagging clock) would
    // switch tables inside an interval a core believes it owns.
    switch_at_ = std::max(switch_at_, proposed);
  } else {
    switch_at_ = proposed;
  }
  next_ = std::move(table);
}

void TableauDispatcher::AttachMetrics(obs::MetricsRegistry* registry) {
  TABLEAU_CHECK(registry != nullptr);
  m_table_switches_ = registry->GetCounter("tableau.table_switches");
  m_switch_rearms_ = registry->GetCounter("tableau.switch_rearms");
  m_switch_slip_ns_ = registry->GetHistogram("tableau.switch_slip_ns");
}

const SchedulingTable& TableauDispatcher::ActiveTable(TimeNs now) {
  TABLEAU_CHECK_MSG(current_ != nullptr, "no table installed");
  if (next_ != nullptr && now >= switch_at_) {
    if (config_.switch_slip_tolerance != kTimeNever &&
        now - switch_at_ > config_.switch_slip_tolerance) {
      // Deadline missed by more than the tolerance: promoting now would put
      // this core on the new table mid-round while peers may still be
      // handing out slots from the old one. Re-arm at the next wrap of the
      // current table and switch there, synchronized again.
      const TimeNs len = current_->length();
      switch_at_ = (now / len + 1) * len;
      if (m_switch_rearms_ != nullptr) {
        m_switch_rearms_->Increment();
      }
      return *current_;
    }
    last_switch_slip_ = now - switch_at_;
    if (m_table_switches_ != nullptr) {
      m_table_switches_->Increment();
      m_switch_slip_ns_->Record(last_switch_slip_);
    }
    current_ = std::move(next_);
    next_ = nullptr;
    switch_at_ = kTimeNever;
    ++generation_;
    BuildTimelines();
    // The old table is released here: "garbage collected two rounds after
    // the new table has been uploaded".
  }
  return *current_;
}

void TableauDispatcher::BuildTimelines() {
  timelines_.clear();
  for (int c = 0; c < current_->num_cpus(); ++c) {
    for (const Allocation& alloc : current_->cpu(c).allocations) {
      timelines_[alloc.vcpu].entries.push_back(
          VcpuTimeline::Entry{alloc.start, alloc.end, c});
    }
  }
  for (auto& [vcpu, timeline] : timelines_) {
    std::sort(timeline.entries.begin(), timeline.entries.end(),
              [](const VcpuTimeline::Entry& a, const VcpuTimeline::Entry& b) {
                return a.start < b.start;
              });
    const int first_cpu = timeline.entries.front().cpu;
    timeline.split = std::any_of(
        timeline.entries.begin(), timeline.entries.end(),
        [first_cpu](const VcpuTimeline::Entry& e) { return e.cpu != first_cpu; });
  }
}

TableauDispatcher::SlotInfo TableauDispatcher::LookupSlot(int cpu, TimeNs now) {
  const SchedulingTable& table = ActiveTable(now);
  const TimeNs len = table.length();
  const TimeNs offset = now % len;
  const LookupResult lookup = table.Lookup(cpu, offset);
  SlotInfo slot;
  slot.vcpu = lookup.vcpu;
  slot.slot_end = now - offset + lookup.interval_end;
  if (next_ != nullptr && switch_at_ > now) {
    slot.slot_end = std::min(slot.slot_end, switch_at_);
  }
  return slot;
}

TableauDispatcher::SecondLevelPick TableauDispatcher::PickSecondLevel(
    int cpu, TimeNs now, TimeNs slot_end, const std::function<bool(VcpuId)>& eligible) {
  const SchedulingTable& table = ActiveTable(now);
  const std::vector<VcpuId>& locals = table.cpu(cpu).local_vcpus;
  SecondLevelState& state = second_level_[static_cast<std::size_t>(cpu)];

  SecondLevelPick pick;
  pick.vcpu = kIdleVcpu;
  pick.until = slot_end;
  if (!config_.work_conserving) {
    return pick;
  }

  auto find_best = [&]() {
    VcpuId best = kIdleVcpu;
    TimeNs best_budget = 0;
    for (const VcpuId vcpu : locals) {
      if (!SecondLevelLocal(vcpu, cpu, now) || !eligible(vcpu)) {
        continue;
      }
      const auto it = state.budgets.find(vcpu);
      const TimeNs budget = it == state.budgets.end() ? 0 : it->second;
      if (budget > best_budget) {
        best = vcpu;
        best_budget = budget;
      }
    }
    return std::pair<VcpuId, TimeNs>(best, best_budget);
  };

  auto [best, budget] = find_best();
  if (best == kIdleVcpu) {
    // All eligible budgets exhausted (or first use): replenish by dividing
    // the epoch evenly among the currently eligible vCPUs, then retry.
    int count = 0;
    for (const VcpuId vcpu : locals) {
      if (SecondLevelLocal(vcpu, cpu, now) && eligible(vcpu)) {
        ++count;
      }
    }
    if (count == 0) {
      return pick;  // Nothing runnable: idle.
    }
    const TimeNs share = config_.second_level_epoch / count;
    for (const VcpuId vcpu : locals) {
      if (SecondLevelLocal(vcpu, cpu, now) && eligible(vcpu)) {
        state.budgets[vcpu] = std::max<TimeNs>(share, 1);
      }
    }
    std::tie(best, budget) = find_best();
    TABLEAU_CHECK(best != kIdleVcpu);
  }
  pick.vcpu = best;
  // Floor the grant at the enforceability threshold so dispatch overhead can
  // never outpace budget consumption.
  pick.until = std::min(slot_end, now + std::max(budget, kMinGrantNs));
  return pick;
}

void TableauDispatcher::AccrueSecondLevel(int cpu, VcpuId vcpu, TimeNs amount) {
  SecondLevelState& state = second_level_[static_cast<std::size_t>(cpu)];
  const auto it = state.budgets.find(vcpu);
  if (it != state.budgets.end()) {
    it->second = std::max<TimeNs>(0, it->second - amount);
  }
}

int TableauDispatcher::WakeupTargetCpu(VcpuId vcpu, TimeNs now) {
  const SchedulingTable& table = ActiveTable(now);
  const auto it = timelines_.find(vcpu);
  if (it == timelines_.end() || it->second.entries.empty()) {
    return -1;
  }
  const std::vector<VcpuTimeline::Entry>& entries = it->second.entries;
  const TimeNs offset = now % table.length();
  // Last entry with start <= offset; if none, wrap to the final entry of the
  // previous cycle.
  auto upper = std::upper_bound(
      entries.begin(), entries.end(), offset,
      [](TimeNs t, const VcpuTimeline::Entry& e) { return t < e.start; });
  if (upper == entries.begin()) {
    return entries.back().cpu;
  }
  return std::prev(upper)->cpu;
}

bool TableauDispatcher::InOwnSlot(VcpuId vcpu, int cpu, TimeNs now) {
  const SlotInfo slot = LookupSlot(cpu, now);
  return slot.vcpu == vcpu;
}

bool TableauDispatcher::IsSplit(VcpuId vcpu) {
  const auto it = timelines_.find(vcpu);
  return it != timelines_.end() && it->second.split;
}

bool TableauDispatcher::SecondLevelLocal(VcpuId vcpu, int cpu, TimeNs now) {
  if (!IsSplit(vcpu)) {
    return true;
  }
  if (!config_.split_participation) {
    return false;
  }
  // Trailing-core policy: only where the vCPU last had (or currently has) a
  // guaranteed allocation, avoiding any cross-core synchronization.
  return WakeupTargetCpu(vcpu, now) == cpu;
}

}  // namespace tableau
