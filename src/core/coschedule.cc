#include "src/core/coschedule.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace tableau {
namespace {

TimeNs IntervalOverlap(TimeNs a_start, TimeNs a_end, TimeNs b_start, TimeNs b_end) {
  const TimeNs lo = std::max(a_start, b_start);
  const TimeNs hi = std::min(a_end, b_end);
  return hi > lo ? hi - lo : 0;
}

// Overlap of [start, end) with all of `vcpu`'s allocations anywhere.
TimeNs OverlapWithVcpu(const std::vector<std::vector<Allocation>>& per_core,
                       TimeNs start, TimeNs end, VcpuId vcpu) {
  TimeNs overlap = 0;
  for (const auto& core : per_core) {
    for (const Allocation& alloc : core) {
      if (alloc.vcpu == vcpu) {
        overlap += IntervalOverlap(start, end, alloc.start, alloc.end);
      }
    }
  }
  return overlap;
}

// Computes the legal slide range of allocation `index` on `core`: bounded by
// the neighbouring allocations (idle slack) and by the period window of the
// job the allocation serves. Returns false if the allocation may not move.
bool SlideRange(const std::vector<Allocation>& core,
                const std::map<VcpuId, const PeriodicTask*>& tasks, std::size_t index,
                TimeNs table_length, TimeNs* lo, TimeNs* hi) {
  const Allocation& alloc = core[index];
  const auto it = tasks.find(alloc.vcpu);
  if (it == tasks.end()) {
    return false;
  }
  const PeriodicTask& task = *it->second;
  const TimeNs window = alloc.start / task.period;
  if ((alloc.end - 1) / task.period != window) {
    return false;  // Spans a period boundary (merged jobs): pinned.
  }
  const TimeNs window_lo = window * task.period;
  const TimeNs window_hi = (window + 1) * task.period;
  const TimeNs prev_end = index == 0 ? 0 : core[index - 1].end;
  const TimeNs next_start = index + 1 < core.size() ? core[index + 1].start : table_length;
  *lo = std::max(window_lo, prev_end);
  *hi = std::min(window_hi, next_start) - alloc.Length();
  return *hi >= *lo;
}

}  // namespace

TimeNs PairOverlapNs(const std::vector<std::vector<Allocation>>& per_core, VcpuId a,
                     VcpuId b) {
  TimeNs overlap = 0;
  for (const auto& core : per_core) {
    for (const Allocation& alloc : core) {
      if (alloc.vcpu == a) {
        overlap += OverlapWithVcpu(per_core, alloc.start, alloc.end, b);
      }
    }
  }
  return overlap;
}

CoscheduleStats CoschedulePass(std::vector<std::vector<Allocation>>& per_core,
                               const std::vector<std::vector<PeriodicTask>>& core_tasks,
                               const std::vector<CoscheduleHint>& hints,
                               TimeNs table_length) {
  CoscheduleStats stats;
  // Window metadata, per core; cores with split pieces are ineligible.
  std::vector<std::map<VcpuId, const PeriodicTask*>> tasks_by_core(per_core.size());
  std::vector<bool> eligible(per_core.size(), false);
  for (std::size_t c = 0; c < per_core.size() && c < core_tasks.size(); ++c) {
    bool ok = true;
    for (const PeriodicTask& task : core_tasks[c]) {
      if (task.offset != 0 || task.deadline != task.period ||
          tasks_by_core[c].count(task.vcpu) > 0) {
        ok = false;
        break;
      }
      tasks_by_core[c][task.vcpu] = &task;
    }
    eligible[c] = ok && !core_tasks[c].empty();
  }

  for (const CoscheduleHint& hint : hints) {
    stats.overlap_before += PairOverlapNs(per_core, hint.a, hint.b);
  }

  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < 16) {
    improved = false;
    for (const CoscheduleHint& hint : hints) {
      const bool avoid = hint.preference == CoschedulePreference::kAvoid;
      for (std::size_t c = 0; c < per_core.size(); ++c) {
        if (!eligible[c]) {
          continue;
        }
        auto& core = per_core[c];
        for (std::size_t i = 0; i < core.size(); ++i) {
          Allocation& alloc = core[i];
          VcpuId partner;
          if (alloc.vcpu == hint.a) {
            partner = hint.b;
          } else if (alloc.vcpu == hint.b) {
            partner = hint.a;
          } else {
            continue;
          }
          TimeNs lo = 0;
          TimeNs hi = 0;
          if (!SlideRange(core, tasks_by_core[c], i, table_length, &lo, &hi)) {
            continue;
          }
          const TimeNs len = alloc.Length();
          const TimeNs current =
              OverlapWithVcpu(per_core, alloc.start, alloc.end, partner);
          // Candidate positions: the two extremes of the legal range plus
          // the current position; pick the best under the hint's objective.
          TimeNs best_start = alloc.start;
          TimeNs best_overlap = current;
          for (const TimeNs candidate : {lo, hi}) {
            const TimeNs overlap =
                OverlapWithVcpu(per_core, candidate, candidate + len, partner);
            const bool better = avoid ? overlap < best_overlap : overlap > best_overlap;
            if (better) {
              best_overlap = overlap;
              best_start = candidate;
            }
          }
          if (best_start != alloc.start) {
            alloc.start = best_start;
            alloc.end = best_start + len;
            ++stats.moves;
            improved = true;
          }
        }
      }
    }
  }

  for (const CoscheduleHint& hint : hints) {
    stats.overlap_after += PairOverlapNs(per_core, hint.a, hint.b);
  }
  return stats;
}

}  // namespace tableau
