// Peephole table optimization (Sec. 5, "Post-processing": "one might add a
// 'peep-hole' optimization pass to reduce the number of migrations and
// preemptions even further" — left as future work in the paper, implemented
// here).
//
// Within one core's allocation list, EDF simulation can leave a task's job
// served in multiple fragments with other tasks sandwiched between them
// (each fragment boundary is a preemption and a pair of context switches at
// runtime). The pass looks for contiguous A-B-A windows and reorders them to
// A-A-B or B-A-A whenever every moved piece stays inside the period window
// of the job it serves — which preserves, exactly, the per-window service
// guarantee (each job still receives its full budget between release and
// deadline) and therefore the utilization and blackout bounds.
//
// Cores hosting C=D subtasks (offset or constrained-deadline pieces) are
// left untouched: their zero-laxity windows admit no reordering.
#ifndef SRC_CORE_PEEPHOLE_H_
#define SRC_CORE_PEEPHOLE_H_

#include <vector>

#include "src/common/time.h"
#include "src/rt/edf_sim.h"
#include "src/rt/periodic_task.h"

namespace tableau {

struct PeepholeStats {
  int allocations_before = 0;
  int allocations_after = 0;
  int swaps = 0;

  int PreemptionsRemoved() const { return allocations_before - allocations_after; }
};

// Optimizes one core's allocation list in place. `tasks` is the core's task
// assignment (used for period-window safety checks); tasks not found default
// to unmovable. Returns the collected statistics.
PeepholeStats PeepholeOptimizeCore(std::vector<Allocation>& allocations,
                                   const std::vector<PeriodicTask>& tasks);

// Convenience: runs the pass over every core. Cores with split pieces are
// skipped.
PeepholeStats PeepholeOptimize(std::vector<std::vector<Allocation>>& per_core,
                               const std::vector<std::vector<PeriodicTask>>& core_tasks);

// Exact service check used by the optimizer and its tests: true iff every
// task receives exactly `cost` service inside each of its period windows.
bool ServicePerWindowPreserved(const std::vector<Allocation>& allocations,
                               const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

}  // namespace tableau

#endif  // SRC_CORE_PEEPHOLE_H_
