#include "src/core/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/rt/admission.h"
#include "src/rt/cd_split.h"
#include "src/rt/dpfair.h"
#include "src/rt/edf_sim.h"
#include "src/core/peephole.h"
#include "src/rt/partition.h"

namespace tableau {
namespace {

PlanResult Fail(PlanFailure failure, std::string error) {
  PlanResult result;
  result.success = false;
  result.failure = failure;
  result.error = std::move(error);
  return result;
}

// Planner phase timings use wall clock (the planner is control-plane code
// running on real threads, not the DES): steady_clock so suspends/adjustments
// cannot produce negative durations.
std::int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Records the enclosing scope's wall-clock duration into `hist` on
// destruction; a null histogram disables it (and skips the clock reads).
class PhaseTimer {
 public:
  explicit PhaseTimer(obs::LatencyHistogram* hist)
      : hist_(hist), start_(hist != nullptr ? WallNowNs() : 0) {}
  ~PhaseTimer() {
    if (hist_ != nullptr) {
      hist_->Record(WallNowNs() - start_);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::LatencyHistogram* hist_;
  std::int64_t start_;
};

// Handles for the planner.* metrics; all null when no registry is configured.
struct PhaseMetrics {
  obs::LatencyHistogram* partition = nullptr;
  obs::LatencyHistogram* edf_core_sim = nullptr;
  obs::LatencyHistogram* cd_split = nullptr;
  obs::LatencyHistogram* cluster = nullptr;
  obs::LatencyHistogram* coalesce = nullptr;
  obs::LatencyHistogram* plan_total = nullptr;
  obs::Counter* plans = nullptr;
  obs::Counter* incremental_plans = nullptr;
  // Admission fast-path ladder: decisions resolved per rung.
  obs::Counter* admission_utilization = nullptr;
  obs::Counter* admission_density = nullptr;
  obs::Counter* admission_qpa = nullptr;
  obs::Counter* admission_simulation = nullptr;
};

PhaseMetrics ResolvePhaseMetrics(obs::MetricsRegistry* registry,
                                 bool wall_timings) {
  PhaseMetrics m;
  if (registry == nullptr) {
    return m;
  }
  if (wall_timings) {
    m.partition = registry->GetHistogram("planner.partition_ns");
    m.edf_core_sim = registry->GetHistogram("planner.edf_core_sim_ns");
    m.cd_split = registry->GetHistogram("planner.cd_split_ns");
    m.cluster = registry->GetHistogram("planner.cluster_ns");
    m.coalesce = registry->GetHistogram("planner.coalesce_ns");
    m.plan_total = registry->GetHistogram("planner.plan_total_ns");
  }
  m.plans = registry->GetCounter("planner.plans");
  m.incremental_plans = registry->GetCounter("planner.incremental_plans");
  m.admission_utilization = registry->GetCounter("planner.admission.utilization");
  m.admission_density = registry->GetCounter("planner.admission.density");
  m.admission_qpa = registry->GetCounter("planner.admission.qpa");
  m.admission_simulation = registry->GetCounter("planner.admission.simulation");
  return m;
}

AdmissionBreakdown TallyToBreakdown(const AdmissionTally& tally) {
  AdmissionBreakdown b;
  b.utilization = tally.Count(AdmissionRung::kUtilization);
  b.density = tally.Count(AdmissionRung::kDensity);
  b.qpa = tally.Count(AdmissionRung::kQpa);
  b.simulation = tally.Count(AdmissionRung::kSimulation);
  return b;
}

// Folds a solve's ladder breakdown into the planner.admission.* counters.
void ExportAdmissionMetrics(const PhaseMetrics& pm, const AdmissionBreakdown& b) {
  if (pm.admission_utilization == nullptr) {
    return;
  }
  pm.admission_utilization->Increment(b.utilization);
  pm.admission_density->Increment(b.density);
  pm.admission_qpa->Increment(b.qpa);
  pm.admission_simulation->Increment(b.simulation);
}

// Accounting for a core's EDF table materialization: which ladder rung
// already decided the set schedulable. kSimulation means only the simulation
// itself (which runs regardless, to produce the table) could tell.
void TallyCoreAdmission(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod,
                        AdmissionTally& tally) {
  if (const std::optional<AdmissionDecision> analytic =
          AdmitCoreAnalytic(tasks, hyperperiod)) {
    tally.Record(analytic->rung);
  } else {
    tally.Record(AdmissionRung::kSimulation);
  }
}

// Publishes per-execution-slot pool accounting as gauges: slot 0 is the
// calling thread(s), slots 1.. are pool workers. Gauges (not counters) so a
// re-export overwrites rather than double-counts.
void ExportPoolStats(obs::MetricsRegistry* registry, const ThreadPool* pool) {
  if (registry == nullptr || pool == nullptr) {
    return;
  }
  const ThreadPool::Stats stats = pool->GetStats();
  for (std::size_t k = 0; k < stats.indices.size(); ++k) {
    const std::string prefix = "planner.pool.w" + std::to_string(k);
    registry->GetGauge(prefix + ".indices")
        ->Set(static_cast<std::int64_t>(stats.indices[k]));
    registry->GetGauge(prefix + ".busy_ns")->Set(stats.busy_ns[k]);
  }
}

}  // namespace

Planner::Planner(PlannerConfig config) : config_(config) {
  TABLEAU_CHECK(config_.num_cpus > 0);
  TABLEAU_CHECK(config_.hyperperiod > 0);
  if (config_.num_threads > 1) {
    pool_ = std::make_shared<ThreadPool>(config_.num_threads);
  }
}

PlanResult Planner::PlanFull(const std::vector<VcpuRequest>& requests) const {
  const TimeNs h = config_.hyperperiod;
  const PhaseMetrics pm = ResolvePhaseMetrics(config_.metrics, config_.wall_timings);
  PhaseTimer total_timer(pm.plan_total);
  if (pm.plans != nullptr) {
    pm.plans->Increment();
  }
  AdmissionTally admission_tally;

  // --- Validation ---
  std::set<VcpuId> seen;
  for (const VcpuRequest& request : requests) {
    if (std::isnan(request.utilization) || request.utilization <= 0.0 ||
        request.utilization > 1.0) {
      return Fail(PlanFailure::kInvalidRequest,
                  "vCPU " + std::to_string(request.vcpu) + ": utilization out of (0, 1]");
    }
    if (request.latency_goal <= 0) {
      return Fail(PlanFailure::kInvalidRequest,
                  "vCPU " + std::to_string(request.vcpu) + ": non-positive latency goal");
    }
    if (!seen.insert(request.vcpu).second) {
      return Fail(PlanFailure::kInvalidRequest, "duplicate vCPU id " + std::to_string(request.vcpu));
    }
  }

  // --- Dedicated cores for U == 1 vCPUs ---
  std::vector<VcpuId> dedicated;
  std::vector<VcpuRequest> shared;
  for (const VcpuRequest& request : requests) {
    if (request.utilization >= 1.0) {
      dedicated.push_back(request.vcpu);
    } else {
      shared.push_back(request);
    }
  }
  const int shared_cores = config_.num_cpus - static_cast<int>(dedicated.size());
  if (shared_cores < 0 || (shared_cores == 0 && !shared.empty())) {
    return Fail(PlanFailure::kAdmission,
                "not enough cores: " + std::to_string(dedicated.size()) +
                " dedicated vCPUs on " + std::to_string(config_.num_cpus) + " cores");
  }

  // --- Map (U, L) reservations to periodic tasks ---
  PlanResult result;
  std::vector<PeriodicTask> tasks;
  for (const VcpuRequest& request : shared) {
    const std::optional<TaskMapping> mapping = MapRequestToTask(request);
    if (!mapping.has_value()) {
      return Fail(PlanFailure::kAdmission,
                  "vCPU " + std::to_string(request.vcpu) + ": unmappable reservation");
    }
    // A budget below the coalesce threshold cannot be delivered: every one of
    // its allocations is a sub-threshold sliver, so post-processing would
    // donate the entire reservation away and the vCPU would starve despite a
    // "successful" plan. Reject at admission; the stepwise latency-goal
    // degradation (larger T => larger C) can rescue the request.
    if (mapping->task.cost < config_.coalesce_threshold) {
      return Fail(PlanFailure::kAdmission,
                  "vCPU " + std::to_string(request.vcpu) + ": budget " +
                      std::to_string(mapping->task.cost) +
                      " ns below the coalesce threshold " +
                      std::to_string(config_.coalesce_threshold) +
                      " ns; the whole reservation would be coalesced away");
    }
    tasks.push_back(mapping->task);
    VcpuPlan plan;
    plan.vcpu = request.vcpu;
    plan.requested_utilization = request.utilization;
    plan.latency_goal = request.latency_goal;
    plan.cost = mapping->task.cost;
    plan.period = mapping->task.period;
    plan.effective_utilization = mapping->task.Utilization();
    plan.blackout_bound = mapping->blackout_bound;
    plan.latency_goal_met = mapping->latency_goal_met;
    result.vcpus.push_back(plan);
  }
  for (const VcpuId vcpu : dedicated) {
    VcpuPlan plan;
    plan.vcpu = vcpu;
    plan.requested_utilization = 1.0;
    plan.effective_utilization = 1.0;
    plan.dedicated = true;
    plan.latency_goal_met = true;
    result.vcpus.push_back(plan);
  }

  // --- Admission control ---
  // C = ceil(U*T) over-reserves by up to (1 - 1ns/T) per period, so an
  // exactly fully packed machine (e.g. the fair-share U = m/n setup) can
  // exceed capacity by a few ns. Shave 1 ns from rounded-up budgets (largest
  // recovery first) before rejecting: the affected vCPUs still receive their
  // share up to nanosecond quantization.
  TimeNs total_demand = TotalDemand(tasks, h);
  const TimeNs capacity = static_cast<TimeNs>(shared_cores) * h;
  if (total_demand > capacity) {
    std::vector<std::size_t> shavable;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const double exact = shared[i].utilization * static_cast<double>(tasks[i].period);
      if (static_cast<double>(tasks[i].cost) > exact &&
          tasks[i].cost > config_.coalesce_threshold) {
        shavable.push_back(i);
      }
    }
    std::sort(shavable.begin(), shavable.end(), [&](std::size_t a, std::size_t b) {
      return h / tasks[a].period > h / tasks[b].period;  // Most ns recovered first.
    });
    for (const std::size_t i : shavable) {
      if (total_demand <= capacity) {
        break;
      }
      tasks[i].cost -= 1;
      total_demand -= h / tasks[i].period;
      result.vcpus[i].cost = tasks[i].cost;
      result.vcpus[i].effective_utilization = tasks[i].Utilization();
      result.vcpus[i].blackout_bound = 2 * (tasks[i].period - tasks[i].cost);
    }
  }
  // The machine-level capacity verdict is one utilization-rung admission
  // decision, whichever way it goes.
  admission_tally.Record(AdmissionRung::kUtilization);
  if (total_demand > static_cast<TimeNs>(shared_cores) * h) {
    PlanResult rejected =
        Fail(PlanFailure::kAdmission,
             "over-utilized: demand " + std::to_string(total_demand) + " ns > " +
                 std::to_string(shared_cores) + " cores x " + std::to_string(h) + " ns");
    rejected.admission = TallyToBreakdown(admission_tally);
    ExportAdmissionMetrics(pm, rejected.admission);
    return rejected;
  }

  // --- Stage 1: partitioning; Stage 2: C=D semi-partitioning ---
  std::vector<std::vector<Allocation>> per_core(
      static_cast<std::size_t>(config_.num_cpus));
  std::vector<std::vector<PeriodicTask>> core_tasks;
  std::vector<bool> core_is_clustered(static_cast<std::size_t>(shared_cores), false);

  // NUMA affinity constraints, honored by the partitioning stage.
  std::map<VcpuId, int> socket_of;
  const int cores_per_socket =
      config_.cores_per_socket > 0 ? config_.cores_per_socket : shared_cores;
  if (config_.cores_per_socket > 0) {
    for (const VcpuRequest& request : shared) {
      if (request.socket_affinity >= 0) {
        const int sockets = (shared_cores + cores_per_socket - 1) / cores_per_socket;
        if (request.socket_affinity >= sockets) {
          return Fail(PlanFailure::kInvalidRequest,
                      "vCPU " + std::to_string(request.vcpu) +
                          ": socket affinity out of range");
        }
        socket_of[request.vcpu] = request.socket_affinity;
      }
    }
  }
  const auto Partition = [&](const std::vector<PeriodicTask>& task_set) {
    PhaseTimer timer(pm.partition);
    return WorstFitDecreasingNuma(task_set, socket_of, shared_cores, cores_per_socket,
                                  h, pool_.get());
  };

  PartitionResult partition = Partition(tasks);
  if (!partition.complete) {
    // Partitioning can fail purely due to ceil-rounding: e.g. four
    // quarter-share tasks whose C = ceil(T/4) overflow a core by a few ns.
    // Retry with 1 ns shaved from every rounded-up budget before escalating
    // to semi-partitioning; the guarantee degrades only by the nanosecond
    // quantization already inherent in the table format.
    std::vector<PeriodicTask> shaved = tasks;
    bool any_shaved = false;
    for (std::size_t i = 0; i < shaved.size(); ++i) {
      const double exact = shared[i].utilization * static_cast<double>(shaved[i].period);
      if (static_cast<double>(shaved[i].cost) > exact && shaved[i].cost > 1) {
        shaved[i].cost -= 1;
        any_shaved = true;
      }
    }
    if (any_shaved) {
      PartitionResult retry = Partition(shaved);
      if (retry.complete) {
        partition = std::move(retry);
        tasks = std::move(shaved);
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          result.vcpus[i].cost = tasks[i].cost;
          result.vcpus[i].effective_utilization = tasks[i].Utilization();
          result.vcpus[i].blackout_bound = 2 * (tasks[i].period - tasks[i].cost);
        }
      }
    }
  }
  if (partition.complete) {
    result.method = PlanMethod::kPartitioned;
    core_tasks = std::move(partition.core_tasks);
  } else {
    SemiPartitionResult semi;
    {
      PhaseTimer timer(pm.cd_split);
      semi = SemiPartition(tasks, shared_cores, h, config_.split_granularity,
                           pool_.get(), &admission_tally);
    }
    if (semi.complete) {
      result.method = PlanMethod::kSemiPartitioned;
      core_tasks = std::move(semi.core_tasks);
    } else {
      // --- Stage 3: DP-Fair over a growing cluster of cores ---
      result.method = PlanMethod::kClustered;
      core_tasks = std::move(semi.core_tasks);
      // Cores hosting C=D pieces keep their EDF tables; only cores with
      // purely implicit-deadline assignments may join the cluster.
      std::vector<int> mergeable;
      for (int c = 0; c < shared_cores; ++c) {
        const auto& assigned = core_tasks[static_cast<std::size_t>(c)];
        const bool has_split_piece =
            std::any_of(assigned.begin(), assigned.end(), [](const PeriodicTask& t) {
              return t.offset != 0 || t.deadline != t.period;
            });
        if (!has_split_piece) {
          mergeable.push_back(c);
        }
      }
      // Prefer merging the least-loaded cores first (most spare capacity).
      std::sort(mergeable.begin(), mergeable.end(), [&](int a, int b) {
        const TimeNs sa = SpareCapacity(core_tasks[static_cast<std::size_t>(a)], h);
        const TimeNs sb = SpareCapacity(core_tasks[static_cast<std::size_t>(b)], h);
        if (sa != sb) return sa > sb;
        return a < b;
      });

      bool clustered = false;
      for (int k = 2; k <= static_cast<int>(mergeable.size()); ++k) {
        std::vector<PeriodicTask> cluster_tasks = semi.unassigned;
        for (int i = 0; i < k; ++i) {
          const auto& assigned = core_tasks[static_cast<std::size_t>(mergeable[i])];
          cluster_tasks.insert(cluster_tasks.end(), assigned.begin(), assigned.end());
        }
        ClusterScheduleResult cluster;
        {
          PhaseTimer timer(pm.cluster);
          cluster = DpFairSchedule(cluster_tasks, k, h);
        }
        if (!cluster.success) {
          continue;
        }
        for (int i = 0; i < k; ++i) {
          const auto core = static_cast<std::size_t>(mergeable[i]);
          core_tasks[core].clear();
          core_is_clustered[core] = true;
          per_core[core] = std::move(cluster.core_allocations[static_cast<std::size_t>(i)]);
        }
        clustered = true;
        break;
      }
      if (!clustered) {
        // Last resort: DP-Fair over all shared cores with all tasks. This is
        // guaranteed to succeed for any non-over-utilized configuration of
        // implicit-deadline tasks (modulo nanosecond-rounding repair).
        ClusterScheduleResult cluster;
        {
          PhaseTimer timer(pm.cluster);
          cluster = DpFairSchedule(tasks, shared_cores, h);
        }
        if (!cluster.success) {
          return Fail(PlanFailure::kInternal, "cluster scheduling failed (pathological rounding)");
        }
        core_tasks.assign(static_cast<std::size_t>(shared_cores), {});
        for (int c = 0; c < shared_cores; ++c) {
          const auto core = static_cast<std::size_t>(c);
          core_is_clustered[core] = true;
          per_core[core] = std::move(cluster.core_allocations[core]);
        }
      }
    }
  }

  // --- Simulate per-core EDF schedules for non-clustered cores ---
  // Each core's simulation is independent and writes only its own slot of
  // per_core, so the fan-out is deterministic: the merged table does not
  // depend on completion order.
  ParallelFor(pool_.get(), static_cast<std::size_t>(shared_cores), [&](std::size_t core) {
    if (core_is_clustered[core] || core_tasks.empty()) {
      return;
    }
    if (core_tasks[core].empty()) {
      return;
    }
    // On the partitioned path this is the core's admission decision; record
    // which ladder rung could already settle it (semi-partitioned sets were
    // admitted by the C=D probes, which tally their own decisions).
    if (result.method == PlanMethod::kPartitioned) {
      TallyCoreAdmission(core_tasks[core], h, admission_tally);
    }
    // Recorded from whichever pool worker ran this core; the histogram is
    // thread-safe by construction.
    EdfSimResult sim;
    {
      PhaseTimer timer(pm.edf_core_sim);
      sim = SimulateEdf(core_tasks[core], h);
    }
    TABLEAU_CHECK_MSG(sim.schedulable, "EDF simulation failed on core %d for vCPU %d",
                      static_cast<int>(core), sim.missed_vcpu);
    per_core[core] = std::move(sim.allocations);
  });

  // --- Optional peephole pass: defragment jobs within their windows ---
  if (config_.peephole_pass) {
    PeepholeOptimize(per_core, core_tasks);
  }

  // --- Dedicated cores occupy the tail core indices ---
  for (std::size_t i = 0; i < dedicated.size(); ++i) {
    const auto core = static_cast<std::size_t>(shared_cores) + i;
    per_core[core].push_back(Allocation{dedicated[i], 0, h});
  }

  // --- Post-processing: coalescing and table construction ---
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  {
    PhaseTimer timer(pm.coalesce);
    per_core =
        CoalesceAllocations(std::move(per_core), config_.coalesce_threshold, &donated);
  }
  result.table = SchedulingTable::Build(h, std::move(per_core));
  const std::string violation = result.table.Validate();
  TABLEAU_CHECK_MSG(violation.empty(), "planner produced invalid table: %s",
                    violation.c_str());

  std::map<VcpuId, TimeNs> donated_by_vcpu;
  for (const auto& [vcpu, amount] : donated) {
    donated_by_vcpu[vcpu] += amount;
  }
  for (VcpuPlan& plan : result.vcpus) {
    plan.split = result.table.CpusOf(plan.vcpu).size() > 1;
    const auto it = donated_by_vcpu.find(plan.vcpu);
    plan.donated_ns = it == donated_by_vcpu.end() ? 0 : it->second;
  }
  result.core_tasks = std::move(core_tasks);
  result.requests = requests;
  result.dirty_cores.resize(static_cast<std::size_t>(config_.num_cpus));
  for (int c = 0; c < config_.num_cpus; ++c) {
    result.dirty_cores[static_cast<std::size_t>(c)] = c;
  }
  result.success = true;
  result.admission = TallyToBreakdown(admission_tally);
  ExportAdmissionMetrics(pm, result.admission);
  if (config_.wall_timings) {
    ExportPoolStats(config_.metrics, pool_.get());
  }
  return result;
}

PlanResult Planner::PlanDelta(const PlanResult& previous,
                              const std::vector<VcpuRequest>& added,
                              const std::vector<VcpuId>& departed) const {
  const TimeNs h = config_.hyperperiod;

  // Merged request list (used both for fallback and for the result).
  std::set<VcpuId> departing(departed.begin(), departed.end());
  std::vector<VcpuRequest> requests;
  for (const VcpuRequest& request : previous.requests) {
    if (departing.find(request.vcpu) == departing.end()) {
      requests.push_back(request);
    }
  }
  requests.insert(requests.end(), added.begin(), added.end());

  // The fast path handles the common fully partitioned case without
  // dedicated cores; anything else falls back to a full plan.
  const bool fast_path_applicable =
      previous.success && previous.method == PlanMethod::kPartitioned &&
      static_cast<int>(previous.core_tasks.size()) == config_.num_cpus &&
      std::none_of(added.begin(), added.end(),
                   [](const VcpuRequest& r) { return r.utilization >= 1.0; });
  if (!fast_path_applicable) {
    return PlanFull(requests);
  }
  // Instrumented only past this point: the fallback paths above land in
  // Plan(), which carries its own timers (avoids double-counting plan_total).
  const PhaseMetrics pm = ResolvePhaseMetrics(config_.metrics, config_.wall_timings);
  PhaseTimer total_timer(pm.plan_total);
  if (pm.incremental_plans != nullptr) {
    pm.incremental_plans->Increment();
  }
  AdmissionTally admission_tally;

  std::vector<std::vector<PeriodicTask>> core_tasks = previous.core_tasks;
  std::set<int> dirty;

  // Remove departed vCPUs from their cores.
  for (int c = 0; c < config_.num_cpus; ++c) {
    auto& assigned = core_tasks[static_cast<std::size_t>(c)];
    const std::size_t before = assigned.size();
    assigned.erase(std::remove_if(assigned.begin(), assigned.end(),
                                  [&](const PeriodicTask& t) {
                                    return departing.find(t.vcpu) != departing.end();
                                  }),
                   assigned.end());
    if (assigned.size() != before) {
      dirty.insert(c);
    }
  }

  // Place added vCPUs worst-fit over current per-core demand.
  std::vector<VcpuPlan> added_plans;
  for (const VcpuRequest& request : added) {
    const std::optional<TaskMapping> mapping = MapRequestToTask(request);
    if (!mapping.has_value()) {
      return PlanFull(requests);  // Full path produces the proper error.
    }
    PeriodicTask task = mapping->task;
    int best = -1;
    TimeNs best_load = 0;
    for (int c = 0; c < config_.num_cpus; ++c) {
      const TimeNs load = TotalDemand(core_tasks[static_cast<std::size_t>(c)], h);
      if (load + task.DemandPerHyperperiod(h) > h) {
        continue;
      }
      if (best == -1 || load < best_load) {
        best = c;
        best_load = load;
      }
    }
    if (best == -1 && task.cost > 1) {
      // Quantization retry: a 1 ns shave may make it fit (see Plan()).
      const double exact =
          request.utilization * static_cast<double>(task.period);
      if (static_cast<double>(task.cost) > exact) {
        task.cost -= 1;
        for (int c = 0; c < config_.num_cpus; ++c) {
          const TimeNs load = TotalDemand(core_tasks[static_cast<std::size_t>(c)], h);
          if (load + task.DemandPerHyperperiod(h) <= h &&
              (best == -1 || load < best_load)) {
            best = c;
            best_load = load;
          }
        }
      }
    }
    if (best == -1) {
      return PlanFull(requests);  // Needs rebalancing or splitting: full replan.
    }
    // Worst-fit placement admits the task by per-core demand alone: one
    // utilization-rung decision (the fallback paths re-decide in PlanFull).
    admission_tally.Record(AdmissionRung::kUtilization);
    core_tasks[static_cast<std::size_t>(best)].push_back(task);
    dirty.insert(best);

    VcpuPlan plan;
    plan.vcpu = request.vcpu;
    plan.requested_utilization = request.utilization;
    plan.latency_goal = request.latency_goal;
    plan.cost = task.cost;
    plan.period = task.period;
    plan.effective_utilization = task.Utilization();
    plan.blackout_bound = 2 * (task.period - task.cost);
    plan.latency_goal_met =
        mapping->latency_goal_met && plan.blackout_bound <= request.latency_goal;
    added_plans.push_back(plan);
  }

  // Rebuild only the dirty cores; untouched cores keep their previous
  // (already coalesced) allocations verbatim.
  PlanResult result;
  std::vector<std::vector<Allocation>> per_core(
      static_cast<std::size_t>(config_.num_cpus));
  std::vector<std::vector<Allocation>> dirty_alloc(
      static_cast<std::size_t>(config_.num_cpus));
  ParallelFor(pool_.get(), static_cast<std::size_t>(config_.num_cpus),
              [&](std::size_t core) {
                const int c = static_cast<int>(core);
                if (dirty.find(c) == dirty.end()) {
                  per_core[core] = previous.table.cpu(c).allocations;
                  return;
                }
                if (core_tasks[core].empty()) {
                  return;
                }
                // Dirty-core re-admission: record the deciding ladder rung.
                TallyCoreAdmission(core_tasks[core], h, admission_tally);
                EdfSimResult sim;
                {
                  PhaseTimer timer(pm.edf_core_sim);
                  sim = SimulateEdf(core_tasks[core], h);
                }
                TABLEAU_CHECK_MSG(sim.schedulable, "incremental EDF failed on core %d", c);
                dirty_alloc[core] = std::move(sim.allocations);
              });
  if (config_.peephole_pass) {
    PeepholeOptimize(dirty_alloc, core_tasks);
  }
  std::vector<std::pair<VcpuId, TimeNs>> donated;
  {
    PhaseTimer timer(pm.coalesce);
    dirty_alloc = CoalesceAllocations(std::move(dirty_alloc), config_.coalesce_threshold,
                                      &donated);
  }
  for (int c = 0; c < config_.num_cpus; ++c) {
    const auto core = static_cast<std::size_t>(c);
    if (dirty.find(c) != dirty.end()) {
      per_core[core] = std::move(dirty_alloc[core]);
    }
  }

  result.method = PlanMethod::kPartitioned;
  result.table = SchedulingTable::Build(h, std::move(per_core));
  const std::string violation = result.table.Validate();
  TABLEAU_CHECK_MSG(violation.empty(), "incremental plan invalid: %s", violation.c_str());

  // Carry forward unchanged vCPU plans; append the new ones.
  std::map<VcpuId, TimeNs> donated_by_vcpu;
  for (const auto& [vcpu, amount] : donated) {
    donated_by_vcpu[vcpu] += amount;
  }
  for (const VcpuPlan& plan : previous.vcpus) {
    if (departing.find(plan.vcpu) == departing.end()) {
      result.vcpus.push_back(plan);
    }
  }
  result.vcpus.insert(result.vcpus.end(), added_plans.begin(), added_plans.end());
  std::map<VcpuId, int> home_core;
  for (int c = 0; c < config_.num_cpus; ++c) {
    for (const PeriodicTask& task : core_tasks[static_cast<std::size_t>(c)]) {
      home_core[task.vcpu] = c;
    }
  }
  for (VcpuPlan& plan : result.vcpus) {
    const auto core_it = home_core.find(plan.vcpu);
    if (core_it != home_core.end() && dirty.find(core_it->second) != dirty.end()) {
      // Re-coalesced core: replace the donation accounting wholesale.
      const auto it = donated_by_vcpu.find(plan.vcpu);
      plan.donated_ns = it == donated_by_vcpu.end() ? 0 : it->second;
    }
  }

  result.core_tasks = std::move(core_tasks);
  result.requests = std::move(requests);
  result.dirty_cores.assign(dirty.begin(), dirty.end());
  result.success = true;
  result.admission = TallyToBreakdown(admission_tally);
  ExportAdmissionMetrics(pm, result.admission);
  if (config_.wall_timings) {
    ExportPoolStats(config_.metrics, pool_.get());
  }
  return result;
}

namespace {
std::mutex g_audit_mutex;
PlanAuditHook g_audit_hook;
}  // namespace

void SetPlanAuditHook(PlanAuditHook hook) {
  std::lock_guard<std::mutex> lock(g_audit_mutex);
  g_audit_hook = std::move(hook);
}

PlanResult Planner::Solve(const PlanRequest& request) const {
  PlanResult result = SolveImpl(request);
  if (result.success) {
    PlanAuditHook hook;
    {
      std::lock_guard<std::mutex> lock(g_audit_mutex);
      hook = g_audit_hook;
    }
    if (hook) {
      hook(result, config_);
    }
  }
  return result;
}

PlanResult Planner::SolveImpl(const PlanRequest& request) const {
  if (config_.fault_injector != nullptr) {
    switch (config_.fault_injector->NextPlannerOutcome()) {
      case faults::FaultInjector::PlannerOutcome::kFail:
        return Fail(PlanFailure::kInjected, "injected planner failure");
      case faults::FaultInjector::PlannerOutcome::kTimeout:
        return Fail(PlanFailure::kInjected, "injected planner timeout (deadline exceeded)");
      case faults::FaultInjector::PlannerOutcome::kProceed:
        break;
    }
  }

  PlanResult result = request.previous != nullptr
                          ? PlanDelta(*request.previous, request.added, request.departed)
                          : PlanFull(request.requests);
  if (result.success || result.failure != PlanFailure::kAdmission ||
      config_.max_latency_degradations <= 0) {
    return result;
  }

  // Graceful degradation: admission control said no at the requested latency
  // goals. Looser goals map to longer periods with proportionally less
  // ceil-rounding over-reservation (and make tight reservations mappable at
  // all), so relax every goal stepwise before giving up. The result's
  // degradation_steps tells the caller how far its goals were stretched.
  std::vector<VcpuRequest> relaxed;
  if (request.previous != nullptr) {
    std::set<VcpuId> departing(request.departed.begin(), request.departed.end());
    for (const VcpuRequest& r : request.previous->requests) {
      if (departing.find(r.vcpu) == departing.end()) {
        relaxed.push_back(r);
      }
    }
    relaxed.insert(relaxed.end(), request.added.begin(), request.added.end());
  } else {
    relaxed = request.requests;
  }
  obs::Counter* degradations =
      config_.metrics != nullptr ? config_.metrics->GetCounter("planner.latency_degradations")
                                 : nullptr;
  const double factor = std::max(config_.latency_degradation_factor, 1.0 + 1e-9);
  for (int step = 1; step <= config_.max_latency_degradations; ++step) {
    for (VcpuRequest& r : relaxed) {
      r.latency_goal =
          static_cast<TimeNs>(std::ceil(static_cast<double>(r.latency_goal) * factor));
    }
    if (degradations != nullptr) {
      degradations->Increment();
    }
    PlanResult retry = PlanFull(relaxed);
    // The final result's breakdown covers the whole solve, retries included.
    retry.admission.utilization += result.admission.utilization;
    retry.admission.density += result.admission.density;
    retry.admission.qpa += result.admission.qpa;
    retry.admission.simulation += result.admission.simulation;
    if (retry.success) {
      retry.degradation_steps = step;
      return retry;
    }
    result = std::move(retry);
    if (result.failure != PlanFailure::kAdmission) {
      break;  // Degradation can only fix admission rejections.
    }
  }
  return result;
}

PlanResult Planner::Plan(const std::vector<VcpuRequest>& requests) const {
  PlanRequest request;
  request.requests = requests;
  return Solve(request);
}

PlanResult Planner::PlanIncremental(const PlanResult& previous,
                                    const std::vector<VcpuRequest>& added,
                                    const std::vector<VcpuId>& departed) const {
  PlanRequest request;
  request.previous = &previous;
  request.added = added;
  request.departed = departed;
  return Solve(request);
}

}  // namespace tableau
