// The Tableau planner (paper Sec. 5): turns a set of per-vCPU (utilization,
// latency) reservations into a concrete cyclic scheduling table.
//
// Pipeline:
//   1. vCPUs with U >= 1 get dedicated cores.
//   2. Remaining vCPUs are mapped to periodic tasks over the fixed
//      hyperperiod's divisor set (Sec. 5, "Mapping to periodic tasks").
//   3. Admission control rejects over-utilized configurations.
//   4. Worst-fit-decreasing partitioning; per-core EDF simulation yields the
//      table ("Partitioning").
//   5. On failure, C=D semi-partitioning ("Semi-partitioning").
//   6. On failure, DP-Fair cluster scheduling over a growing cluster of
//      cores ("Localized optimal scheduling").
//   7. Post-processing: sub-threshold allocation coalescing and slice-table
//      construction for O(1) dispatch ("Post-processing").
//
// The planner is a pure function of its inputs and can run anywhere (in the
// paper: a dom0 userspace daemon); it shares no state with the dispatcher
// except the produced table.
#ifndef SRC_CORE_PLANNER_H_
#define SRC_CORE_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/time.h"
#include "src/faults/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/rt/hyperperiod.h"
#include "src/rt/periodic_task.h"
#include "src/table/scheduling_table.h"

namespace tableau {

struct PlannerConfig {
  int num_cpus = 16;
  // Allocations shorter than this are coalesced away (Sec. 5 post-processing;
  // determined by context-switch overheads).
  TimeNs coalesce_threshold = 30 * kMicrosecond;
  // Minimum C=D piece size (the 100 us enforceability threshold).
  TimeNs split_granularity = kMinPeriodNs;
  TimeNs hyperperiod = kHyperperiodNs;
  // Enables the peephole reordering pass (src/core/peephole.h), which
  // reduces preemptions by defragmenting jobs within their period windows.
  bool peephole_pass = false;
  // Socket width for NUMA-affine placement (VcpuRequest::socket_affinity).
  // 0 disables affinity handling (the machine is treated as flat).
  int cores_per_socket = 0;
  // Worker threads for table generation (<= 1: fully serial). The parallel
  // pipeline runs the per-core EDF simulations, the worst-fit candidate
  // scans, and the C=D split-point probes concurrently, with deterministic
  // merges: the produced table is byte-identical to the serial one.
  int num_threads = 1;
  // Optional phase-timing sink (planner.* metrics: wall-clock histograms per
  // pipeline stage, plus per-worker pool gauges). Not owned; must outlive the
  // planner. Null disables instrumentation entirely.
  obs::MetricsRegistry* metrics = nullptr;
  // When false, the registry above receives only the deterministic planner
  // counters (plans, admission ladder) — the wall-clock phase histograms and
  // pool gauges are skipped. Fleet hosts use this so merged fleet metrics
  // are byte-identical across runs and execution modes.
  bool wall_timings = true;
  // Optional fault injector (not owned; must outlive the planner). Solve()
  // draws one planner outcome per call; injected failures/timeouts surface
  // as PlanFailure::kInjected results for the caller's degradation policy.
  faults::FaultInjector* fault_injector = nullptr;
  // Graceful degradation on admission-control rejection: Solve() retries the
  // full plan with every latency goal multiplied by
  // latency_degradation_factor, stepwise, up to max_latency_degradations
  // times before giving up (0 disables; failures then surface directly).
  // Each retry increments planner.latency_degradations.
  int max_latency_degradations = 0;
  double latency_degradation_factor = 2.0;
};

enum class PlanMethod { kPartitioned, kSemiPartitioned, kClustered };

inline const char* PlanMethodName(PlanMethod m) {
  switch (m) {
    case PlanMethod::kPartitioned:
      return "partitioned";
    case PlanMethod::kSemiPartitioned:
      return "semi-partitioned";
    case PlanMethod::kClustered:
      return "clustered";
  }
  return "?";
}

// Per-vCPU outcome of planning.
struct VcpuPlan {
  VcpuId vcpu = kIdleVcpu;
  double requested_utilization = 0;
  TimeNs latency_goal = 0;
  // Chosen periodic-task parameters (0/0 for dedicated vCPUs).
  TimeNs cost = 0;
  TimeNs period = 0;
  double effective_utilization = 0;
  // Guaranteed upper bound on scheduling latency: 2 * (T - C).
  TimeNs blackout_bound = 0;
  bool latency_goal_met = false;
  bool dedicated = false;
  bool split = false;  // Received allocations on more than one core.
  // Time per hyperperiod lost to coalescing of sub-threshold slivers
  // (Sec. 5 post-processing). The granted share is at least
  // effective_utilization - donated_ns / hyperperiod.
  TimeNs donated_ns = 0;
};

// Machine-readable failure taxonomy, so degradation policies can react
// without parsing error strings.
enum class PlanFailure {
  kNone,            // success == true
  kInvalidRequest,  // Malformed input (bad utilization, duplicate ids, ...).
  kAdmission,       // Admission control: demand exceeds capacity or a
                    // reservation is unmappable at its latency goal.
                    // Candidate for stepwise latency-goal degradation.
  kInternal,        // Pipeline failure (pathological rounding).
  kInjected,        // FaultInjector-injected failure or timeout.
};

// Per-solve admission fast-path breakdown: how many admission/schedulability
// decisions the analytic ladder (src/rt/admission.h) resolved at each rung.
// `utilization`, `density`, and `qpa` decisions cost a linear or
// pseudo-polynomial analytic test; `simulation` decisions required a full
// EDF table simulation. Mirrored into the planner.admission.* counters when
// a metrics registry is configured.
struct AdmissionBreakdown {
  std::int64_t utilization = 0;
  std::int64_t density = 0;
  std::int64_t qpa = 0;
  std::int64_t simulation = 0;

  std::int64_t analytic() const { return utilization + density + qpa; }
  std::int64_t total() const { return analytic() + simulation; }
};

struct PlanResult {
  bool success = false;
  std::string error;
  PlanFailure failure = PlanFailure::kNone;
  // Which admission ladder rung decided each admission decision of this
  // solve (degradation retries accumulate into the final result).
  AdmissionBreakdown admission;
  // Latency-degradation steps Solve() applied before this plan succeeded
  // (0 = the original goals were met as requested).
  int degradation_steps = 0;
  PlanMethod method = PlanMethod::kPartitioned;
  SchedulingTable table;
  std::vector<VcpuPlan> vcpus;
  // Per-shared-core task assignment (fully populated for partitioned and
  // semi-partitioned plans; empty entries for clustered cores). Consumed by
  // PlanIncremental to avoid replanning untouched cores.
  std::vector<std::vector<PeriodicTask>> core_tasks;
  // Original requests, keyed by vCPU (for incremental replanning).
  std::vector<VcpuRequest> requests;
  // Cores whose allocations changed relative to the previous plan (only set
  // by PlanIncremental; Plan marks every core dirty).
  std::vector<int> dirty_cores;
};

// The planner's single entry-point request (api_redesign): one object covers
// both full and incremental planning.
//
//  - previous == nullptr: a full plan over `requests` (added/departed must be
//    empty).
//  - previous != nullptr: incremental replanning from *previous — `departed`
//    vCPUs leave, `added` ones are placed, and `requests` is ignored (the
//    merged set derives from previous->requests).
struct PlanRequest {
  std::vector<VcpuRequest> requests;
  const PlanResult* previous = nullptr;  // Not owned; may dangle after Solve.
  std::vector<VcpuRequest> added;
  std::vector<VcpuId> departed;

  // Named constructors for the two request shapes.
  static PlanRequest Full(std::vector<VcpuRequest> requests) {
    PlanRequest request;
    request.requests = std::move(requests);
    return request;
  }
  static PlanRequest Delta(const PlanResult& previous,
                           std::vector<VcpuRequest> added = {},
                           std::vector<VcpuId> departed = {}) {
    PlanRequest request;
    request.previous = &previous;
    request.added = std::move(added);
    request.departed = std::move(departed);
    return request;
  }
};

// Debug-mode audit hook: when set, every successful Planner::Solve — from
// tests, benches, tools, and the harness alike — hands its PlanResult and the
// planner's configuration to the hook before returning. The verification
// subsystem (src/check/table_verifier.h) installs a hook that re-derives the
// reservation contract and aborts on violation, turning every planner call in
// the process into a property check. Pass nullptr to uninstall. The hook is
// process-global and mutex-protected; it must be reentrant if planning runs
// on several threads.
using PlanAuditHook = std::function<void(const PlanResult&, const PlannerConfig&)>;
void SetPlanAuditHook(PlanAuditHook hook);

class Planner {
 public:
  explicit Planner(PlannerConfig config);

  // The single planner entry point. All planning — harness, benches, tools —
  // funnels through here: this is where injected planner failures
  // (PlannerConfig::fault_injector) and the stepwise latency-goal
  // degradation policy attach, exactly once per solve. Thread-compatible;
  // Solve() is const and reentrant.
  PlanResult Solve(const PlanRequest& request) const;

  // Thin wrapper: full plan via Solve(). vCPU ids must be unique.
  PlanResult Plan(const std::vector<VcpuRequest>& requests) const;

  // Thin wrapper: incremental replanning via Solve() (the Sec. 7.1
  // optimization: "tables can be incrementally re-computed on a per-core
  // basis"): starting from a previous successful plan, removes `departed`
  // vCPUs and places `added` ones, re-simulating only the cores whose
  // assignments changed; untouched cores keep their previous allocations
  // verbatim. Falls back to a full plan when the previous plan used
  // splitting/clustering, when a new vCPU does not fit on any single core,
  // or when rebalancing is needed.
  PlanResult PlanIncremental(const PlanResult& previous,
                             const std::vector<VcpuRequest>& added,
                             const std::vector<VcpuId>& departed) const;

  const PlannerConfig& config() const { return config_; }

 private:
  // Solve() minus the audit hook: injection draw, pipeline dispatch, and the
  // degradation loop. Split out so the hook observes exactly one final
  // result per Solve (degradation retries are internal).
  PlanResult SolveImpl(const PlanRequest& request) const;
  // The actual pipelines, free of injection and degradation (Solve() owns
  // both). PlanDelta's fallbacks call PlanFull directly, so a single Solve
  // draws at most one injected outcome and degrades at most once.
  PlanResult PlanFull(const std::vector<VcpuRequest>& requests) const;
  PlanResult PlanDelta(const PlanResult& previous,
                       const std::vector<VcpuRequest>& added,
                       const std::vector<VcpuId>& departed) const;

  PlannerConfig config_;
  // Shared by copies of the planner; null when config_.num_threads <= 1.
  // The pool accepts jobs from concurrent Plan() calls, so the planner stays
  // reentrant.
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace tableau

#endif  // SRC_CORE_PLANNER_H_
