#include "src/core/replan.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tableau {

ReplanController::ReplanController(const Planner* planner, Config config)
    : planner_(planner), config_(config) {
  TABLEAU_CHECK(planner_ != nullptr);
  TABLEAU_CHECK(config_.initial_backoff > 0);
  TABLEAU_CHECK(config_.backoff_multiplier >= 1.0);
  TABLEAU_CHECK(config_.max_backoff >= config_.initial_backoff);
}

void ReplanController::AttachMetrics(obs::MetricsRegistry* registry) {
  TABLEAU_CHECK(registry != nullptr);
  m_replans_ = registry->GetCounter("replan.replans");
  m_failures_ = registry->GetCounter("replan.failures");
  m_kept_previous_ = registry->GetCounter("replan.kept_previous");
  m_backoff_suppressed_ = registry->GetCounter("replan.backoff_suppressed");
}

ReplanController::Outcome ReplanController::TryReplan(const PlanRequest& request,
                                                      TimeNs now) {
  Outcome outcome;
  if (now < next_retry_at_) {
    outcome.kept_previous = true;
    outcome.retry_at = next_retry_at_;
    if (m_backoff_suppressed_ != nullptr) {
      m_backoff_suppressed_->Increment();
    }
    return outcome;
  }

  if (m_replans_ != nullptr) {
    m_replans_->Increment();
  }
  outcome.plan = planner_->Solve(request);
  if (outcome.plan.success) {
    consecutive_failures_ = 0;
    next_retry_at_ = 0;
    outcome.installed = true;
    return outcome;
  }

  // Failure (injected, admission past every degradation step, ...): the
  // previous table stays in effect and the next attempt waits out an
  // exponentially growing backoff, capped at max_backoff.
  ++consecutive_failures_;
  const double scale =
      std::pow(config_.backoff_multiplier, consecutive_failures_ - 1);
  const double backoff =
      std::min(static_cast<double>(config_.initial_backoff) * scale,
               static_cast<double>(config_.max_backoff));
  next_retry_at_ = now + static_cast<TimeNs>(backoff);
  outcome.kept_previous = true;
  outcome.retry_at = next_retry_at_;
  if (m_failures_ != nullptr) {
    m_failures_->Increment();
    m_kept_previous_->Increment();
  }
  return outcome;
}

}  // namespace tableau
