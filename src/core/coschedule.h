// Co-scheduling post-processing (Sec. 5, "Post-processing": "one might add a
// pass to encourage or discourage co-scheduling of certain VMs, e.g., due to
// performance-counter-based profiles or for synchronization purposes" —
// future work in the paper, implemented here).
//
// Given pairs of vCPUs with a preference (kAvoid: e.g. two cache-thrashing
// VMs that degrade each other when overlapping in time on different cores;
// kPrefer: e.g. gang-synchronized VMs), the pass slides allocations within
// idle gaps on their own cores — never outside the period window of the job
// they serve, so every utilization and blackout guarantee is preserved
// exactly — to minimize (or maximize) the pairwise temporal overlap.
#ifndef SRC_CORE_COSCHEDULE_H_
#define SRC_CORE_COSCHEDULE_H_

#include <vector>

#include "src/common/time.h"
#include "src/rt/edf_sim.h"
#include "src/rt/periodic_task.h"

namespace tableau {

enum class CoschedulePreference { kAvoid, kPrefer };

struct CoscheduleHint {
  VcpuId a = kIdleVcpu;
  VcpuId b = kIdleVcpu;
  CoschedulePreference preference = CoschedulePreference::kAvoid;
};

struct CoscheduleStats {
  TimeNs overlap_before = 0;
  TimeNs overlap_after = 0;
  int moves = 0;
};

// Total time (per hyperperiod) during which both vCPUs are scheduled
// simultaneously (on any cores).
TimeNs PairOverlapNs(const std::vector<std::vector<Allocation>>& per_core, VcpuId a,
                     VcpuId b);

// Greedy overlap optimization: repeatedly slides single allocations of the
// hinted vCPUs within the idle slack around them (bounded by their job's
// period window) while the hint's objective improves. `core_tasks` supplies
// the window metadata; cores hosting split pieces are skipped. Returns
// aggregate before/after overlap across all hints (kPrefer hints count
// negated improvement in `moves` only; overlap fields always report raw
// overlap sums).
CoscheduleStats CoschedulePass(std::vector<std::vector<Allocation>>& per_core,
                               const std::vector<std::vector<PeriodicTask>>& core_tasks,
                               const std::vector<CoscheduleHint>& hints,
                               TimeNs table_length);

}  // namespace tableau

#endif  // SRC_CORE_COSCHEDULE_H_
