// The Tableau dispatcher (paper Secs. 4 and 6): the hypervisor-resident,
// core-local, table-driven first-level scheduler plus the epoch-based
// round-robin second-level scheduler, the lock-free time-synchronized table
// switch protocol, and table-guided wake-up targeting.
//
// This class holds all Tableau runtime policy but is engine-agnostic: the
// hypervisor adapter (src/schedulers/tableau_scheduler.*) wires it to the
// simulated machine. Runnability is supplied through callbacks so the
// dispatcher can also be unit-tested standalone.
#ifndef SRC_CORE_DISPATCHER_H_
#define SRC_CORE_DISPATCHER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/table/scheduling_table.h"

namespace tableau {

// Minimum second-level grant (matches the 100 us enforceability threshold).
inline constexpr TimeNs kMinGrantNs = 100 * kMicrosecond;

class TableauDispatcher {
 public:
  struct Config {
    // Enables the second-level scheduler (the "uncapped" scenario). When
    // false, idle or blocked table slots stay idle (the "capped" scenario).
    bool work_conserving = true;
    // Epoch length of the second-level fair-share scheduler: the epoch is
    // divided evenly among runnable core-local vCPUs.
    TimeNs second_level_epoch = 10 * kMillisecond;
    // Second-level participation of split (migrating) vCPUs via the
    // "trailing core" policy (Sec. 5): the vCPU takes part only on the pCPU
    // where it last received a guaranteed allocation. The paper's prototype
    // omits this ("not a major limitation"); off by default to match.
    bool split_participation = false;
    // Graceful degradation for a missed table-switch deadline: if the first
    // lookup to observe a pending switch arrives more than this far past the
    // promised switch_at_ (timer jitter, coalescing, a fault-delayed core),
    // the switch re-arms at the next wrap of the *current* table instead of
    // promoting late — keeping the cores' wrap-synchronized switch invariant
    // at the cost of one more round on the old table. kTimeNever (the
    // default) disables the policy: late switches promote immediately,
    // byte-identical to the pre-fault engine.
    TimeNs switch_slip_tolerance = kTimeNever;
  };

  TableauDispatcher(int num_cpus, Config config);

  // Installs a table. The first installation takes effect immediately; later
  // installations follow the time-synchronized switch protocol: the
  // next_table pointer is "set" in the middle of the next round of the
  // current table, and all cores switch together at the wrap after that.
  // Re-installing while a switch is still pending replaces the pending table
  // (the latest install wins) but never moves the promised switch time
  // earlier: switch_at_ keeps the later of the two wrap times.
  void InstallTable(std::shared_ptr<const SchedulingTable> table, TimeNs now);

  // The table currently in effect at `now` (promotes a pending switch).
  const SchedulingTable& ActiveTable(TimeNs now);

  // Absolute time of the pending table switch, or kTimeNever.
  TimeNs pending_switch_time() const { return next_ ? switch_at_ : kTimeNever; }

  // First-level lookup: the reserved vCPU (or kIdleVcpu) covering `now` on
  // `cpu` and the absolute end of the current interval (clamped to a pending
  // table switch). O(1) via the slice table.
  struct SlotInfo {
    VcpuId vcpu = kIdleVcpu;
    TimeNs slot_end = 0;
  };
  SlotInfo LookupSlot(int cpu, TimeNs now);

  // Second-level pick among core-local vCPUs for which `eligible` returns
  // true: highest remaining budget first; budgets replenish to
  // epoch / #eligible when all eligible budgets are exhausted. Returns
  // kIdleVcpu if no eligible vCPU exists. `until` is the absolute time the
  // pick is valid to (budget depletion or slot end, whichever is first).
  struct SecondLevelPick {
    VcpuId vcpu = kIdleVcpu;
    TimeNs until = 0;
  };
  SecondLevelPick PickSecondLevel(int cpu, TimeNs now, TimeNs slot_end,
                                  const std::function<bool(VcpuId)>& eligible);

  // Burns second-level budget for a vCPU that ran `amount` ns on `cpu` from
  // a second-level decision.
  void AccrueSecondLevel(int cpu, VcpuId vcpu, TimeNs amount);

  // Wake-up targeting (Sec. 6, "Efficient wake-ups"): the CPU on which
  // `vcpu` has an allocation covering `now`, or the CPU of its most recent
  // allocation (cyclically) otherwise. Returns -1 for unknown vCPUs.
  int WakeupTargetCpu(VcpuId vcpu, TimeNs now);

  // True if the vCPU's current allocation (in the active table) covers `now`.
  bool InOwnSlot(VcpuId vcpu, int cpu, TimeNs now);

  // Whether the vCPU has allocations on more than one core (split by C=D or
  // cluster scheduling). Split vCPUs take part in second-level scheduling
  // only under the trailing-core policy (config.split_participation).
  bool IsSplit(VcpuId vcpu);

  // True if `vcpu` may take part in second-level scheduling on `cpu` at
  // `now`: always for single-core vCPUs; for split vCPUs only with
  // split_participation enabled and only on the trailing core.
  bool SecondLevelLocal(VcpuId vcpu, int cpu, TimeNs now);

  const Config& config() const { return config_; }

  // Monotonic count of tables that have taken effect (first install = 1).
  // Lets callers detect promotions (e.g. to emit a table-switch trace event).
  std::uint64_t table_generation() const { return generation_; }

  // Slip of the most recent promotion: how far past the promised switch_at_
  // the promoting lookup arrived. Valid after a generation change; used by
  // the telemetry layer to re-attribute waiting time to the late switch.
  TimeNs last_switch_slip() const { return last_switch_slip_; }

  // Registers dispatcher metrics on `registry` (tableau.table_switches,
  // tableau.switch_slip_ns — the lag between the promised switch time and
  // the lookup that promoted it — and tableau.switch_rearms, switches pushed
  // to the next wrap by the slip-tolerance policy). Call once, before the
  // first lookup; without it the dispatcher records nothing.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct VcpuTimeline {
    struct Entry {
      TimeNs start;
      TimeNs end;
      int cpu;
    };
    std::vector<Entry> entries;  // Sorted by start.
    bool split = false;
  };

  struct SecondLevelState {
    std::map<VcpuId, TimeNs> budgets;
  };

  void BuildTimelines();

  const int num_cpus_;
  const Config config_;

  std::shared_ptr<const SchedulingTable> current_;
  std::shared_ptr<const SchedulingTable> next_;
  TimeNs switch_at_ = kTimeNever;
  std::uint64_t generation_ = 0;
  TimeNs last_switch_slip_ = 0;

  std::map<VcpuId, VcpuTimeline> timelines_;  // For the active table.
  std::vector<SecondLevelState> second_level_;

  obs::Counter* m_table_switches_ = nullptr;
  obs::Counter* m_switch_rearms_ = nullptr;
  obs::LatencyHistogram* m_switch_slip_ns_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_CORE_DISPATCHER_H_
