// Graceful-degradation wrapper around runtime replanning: a failed or
// timed-out Planner::Solve keeps the previously installed table in place and
// schedules a retry with exponential backoff, instead of leaving the
// dispatcher tableless or hammering the planner. Used by reconfiguration
// harnesses and the chaos bench; the initial (scenario-build) plan does not
// go through here — without a previous table there is nothing to keep.
#ifndef SRC_CORE_REPLAN_H_
#define SRC_CORE_REPLAN_H_

#include "src/common/time.h"
#include "src/core/planner.h"
#include "src/obs/metrics.h"

namespace tableau {

class ReplanController {
 public:
  struct Config {
    TimeNs initial_backoff = kMillisecond;
    double backoff_multiplier = 2.0;
    TimeNs max_backoff = kSecond;
  };

  // `planner` is not owned and must outlive the controller.
  ReplanController(const Planner* planner, Config config);

  // Registers replan.* metrics (replans, failures, kept_previous,
  // backoff_suppressed). Optional; not owned.
  void AttachMetrics(obs::MetricsRegistry* registry);

  struct Outcome {
    // True: `plan` holds a fresh successful plan; install it.
    bool installed = false;
    // True: Solve failed (or the attempt was suppressed by backoff); the
    // caller keeps its current table and retries at `retry_at`.
    bool kept_previous = false;
    TimeNs retry_at = kTimeNever;
    PlanResult plan;
  };

  // Attempts a replan at simulated time `now`. While a previous failure's
  // backoff window is still open the planner is not consulted at all and the
  // outcome is kept_previous with the standing retry_at.
  Outcome TryReplan(const PlanRequest& request, TimeNs now);

  // Consecutive failed attempts since the last success.
  int consecutive_failures() const { return consecutive_failures_; }
  TimeNs next_retry_at() const { return next_retry_at_; }

 private:
  const Planner* planner_;
  Config config_;
  int consecutive_failures_ = 0;
  TimeNs next_retry_at_ = 0;  // Attempts allowed once now >= this.

  obs::Counter* m_replans_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Counter* m_kept_previous_ = nullptr;
  obs::Counter* m_backoff_suppressed_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_CORE_REPLAN_H_
