// Plan caching (Sec. 7.1: "it is trivially possible to centrally cache
// tables for common configurations that are frequently reused").
//
// Cloud fleets provision from a small set of price-differentiated tiers, so
// hosts keep seeing the same configurations. The cache keys a plan by the
// *multiset* of (utilization, latency-goal) reservations — vCPU identity is
// irrelevant to the schedule's shape — and relabels the cached plan's vCPU
// ids to the caller's on a hit.
#ifndef SRC_CORE_PLAN_CACHE_H_
#define SRC_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/planner.h"

namespace tableau {

// Rewrites every vCPU id in `plan` according to `renaming` (old -> new).
// Ids absent from the map are left unchanged.
PlanResult RelabelPlan(const PlanResult& plan, const std::map<VcpuId, VcpuId>& renaming);

class PlanCache {
 public:
  explicit PlanCache(PlannerConfig config, std::size_t capacity = 64);

  // Returns a plan for the request set, reusing a cached plan for any
  // configuration with the same reservation multiset. Failed plans are not
  // cached. The result is always labeled with the caller's vCPU ids.
  // Requests with NaN or non-positive utilization are rejected up front
  // (they cannot form a canonical key), and -0.0 folds to 0.0 so bitwise
  // twins share an entry. Thread-safe: concurrent callers may share one
  // cache; a miss plans outside the lock and the first publisher wins.
  PlanResult GetOrPlan(const std::vector<VcpuRequest>& requests);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  // Reservations sorted by (utilization, latency): the canonical key.
  using Key = std::vector<std::pair<std::uint64_t, TimeNs>>;

  static Key MakeKey(const std::vector<VcpuRequest>& requests);

  Planner planner_;
  std::size_t capacity_;
  // Guards the LRU structures and counters. Cached entries are shared_ptr
  // to const, so a plan handed out under the lock stays valid after
  // eviction.
  mutable std::mutex mu_;
  // LRU: most recently used at the front.
  std::list<std::pair<Key, std::shared_ptr<const PlanResult>>> lru_;
  std::map<Key, decltype(lru_)::iterator> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tableau

#endif  // SRC_CORE_PLAN_CACHE_H_
