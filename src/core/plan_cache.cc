#include "src/core/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace tableau {
namespace {

std::uint64_t UtilizationBits(double utilization) {
  if (utilization == 0.0) {
    utilization = 0.0;  // Fold -0.0: both compare equal but differ bitwise.
  }
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(utilization));
  std::memcpy(&bits, &utilization, sizeof(bits));
  return bits;
}

VcpuId Renamed(const std::map<VcpuId, VcpuId>& renaming, VcpuId id) {
  const auto it = renaming.find(id);
  return it == renaming.end() ? id : it->second;
}

PlanResult FailedPlan(std::string error) {
  PlanResult result;
  result.success = false;
  result.error = std::move(error);
  return result;
}

}  // namespace

PlanResult RelabelPlan(const PlanResult& plan, const std::map<VcpuId, VcpuId>& renaming) {
  PlanResult result = plan;
  for (VcpuPlan& vcpu : result.vcpus) {
    vcpu.vcpu = Renamed(renaming, vcpu.vcpu);
  }
  for (VcpuRequest& request : result.requests) {
    request.vcpu = Renamed(renaming, request.vcpu);
  }
  for (auto& core : result.core_tasks) {
    for (PeriodicTask& task : core) {
      task.vcpu = Renamed(renaming, task.vcpu);
    }
  }
  // Rebuild the table with renamed allocations (local_vcpus and slice
  // structure depend only on layout, so Build reproduces them).
  std::vector<std::vector<Allocation>> per_cpu(
      static_cast<std::size_t>(plan.table.num_cpus()));
  for (int c = 0; c < plan.table.num_cpus(); ++c) {
    per_cpu[static_cast<std::size_t>(c)] = plan.table.cpu(c).allocations;
    for (Allocation& alloc : per_cpu[static_cast<std::size_t>(c)]) {
      alloc.vcpu = Renamed(renaming, alloc.vcpu);
    }
  }
  result.table = SchedulingTable::Build(plan.table.length(), std::move(per_cpu));
  return result;
}

PlanCache::PlanCache(PlannerConfig config, std::size_t capacity)
    : planner_(config), capacity_(capacity) {
  TABLEAU_CHECK(capacity_ > 0);
}

PlanCache::Key PlanCache::MakeKey(const std::vector<VcpuRequest>& requests) {
  Key key;
  key.reserve(requests.size());
  for (const VcpuRequest& request : requests) {
    key.emplace_back(UtilizationBits(request.utilization), request.latency_goal);
  }
  std::sort(key.begin(), key.end());
  return key;
}

PlanResult PlanCache::GetOrPlan(const std::vector<VcpuRequest>& requests) {
  // Reject keys that cannot be canonicalized before they touch the cache: a
  // NaN utilization never compares equal to itself, so it could neither be
  // planned nor ever be matched again — it would only poison an entry.
  for (const VcpuRequest& request : requests) {
    if (std::isnan(request.utilization)) {
      return FailedPlan("vCPU " + std::to_string(request.vcpu) + ": NaN utilization");
    }
    if (request.utilization <= 0.0) {
      return FailedPlan("vCPU " + std::to_string(request.vcpu) +
                        ": non-positive utilization");
    }
  }

  const Key key = MakeKey(requests);

  // Canonical order of the caller's requests, matching the key's sort, so a
  // cached plan (labeled with canonical ids 0..n-1) can be relabeled.
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::make_pair(UtilizationBits(requests[a].utilization),
                          requests[a].latency_goal) <
           std::make_pair(UtilizationBits(requests[b].utilization),
                          requests[b].latency_goal);
  });
  std::map<VcpuId, VcpuId> renaming;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    renaming[static_cast<VcpuId>(rank)] = requests[order[rank]].vcpu;
  }

  std::shared_ptr<const PlanResult> cached;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // Touch.
      cached = it->second->second;
    } else {
      ++misses_;
    }
  }
  if (cached != nullptr) {
    return RelabelPlan(*cached, renaming);
  }

  // Plan under canonical ids (rank order) outside the lock — Plan() is
  // reentrant, and planning is the expensive part — then publish.
  std::vector<VcpuRequest> canonical;
  canonical.reserve(requests.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    VcpuRequest request = requests[order[rank]];
    request.vcpu = static_cast<VcpuId>(rank);
    canonical.push_back(request);
  }
  PlanResult planned = planner_.Solve(PlanRequest::Full(canonical));
  if (!planned.success) {
    return planned;  // Failures are not cached (and carry the error text).
  }

  cached = std::make_shared<const PlanResult>(std::move(planned));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A concurrent caller may have planned the same key while we did; keep
    // the incumbent entry (its shared_ptr may already be handed out).
    if (entries_.find(key) == entries_.end()) {
      lru_.emplace_front(key, cached);
      entries_[key] = lru_.begin();
      if (entries_.size() > capacity_) {
        entries_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return RelabelPlan(*cached, renaming);
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace tableau
